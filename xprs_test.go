package xprs

import (
	"strings"
	"testing"
	"time"
)

func TestSystemBasics(t *testing.T) {
	s := New(Config{})
	if s.Params().NProcs != 8 {
		t.Fatal("default nprocs")
	}
	if s.Now() != 0 {
		t.Fatal("fresh clock")
	}
	rel, err := s.CreateScanRelation("r", 40, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NTuples() != 1000 {
		t.Fatal("tuples")
	}
	if _, err := s.CreateScanRelation("r", 40, 10); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := s.SelectTask(0, "missing", 0, 10); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := s.BuildIndex("missing", false); err == nil {
		t.Fatal("unknown relation index accepted")
	}
}

func TestLoadRelationAndSelect(t *testing.T) {
	s := New(Config{})
	rows := make([]struct {
		A int32
		B string
	}, 500)
	for i := range rows {
		rows[i].A = int32(i)
		rows[i].B = "payload-payload-payload"
	}
	if _, err := s.LoadRelation("people", rows); err != nil {
		t.Fatal(err)
	}
	spec, err := s.SelectTask(0, "people", 100, 149)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run([]TaskSpec{spec}, InterAdj, SchedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Results[0].Len(); got != 50 {
		t.Fatalf("selected %d rows, want 50", got)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("no time elapsed")
	}
	if s.DiskStats().TotalReads() == 0 {
		t.Fatal("no disk reads recorded")
	}
}

func TestIndexSelectTask(t *testing.T) {
	s := New(Config{})
	if _, err := s.CreateScanRelation("r", 20, 800); err != nil {
		t.Fatal(err)
	}
	ix, err := s.BuildIndex("r", false)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := s.IndexSelectTask(0, ix, 10, 29)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run([]TaskSpec{spec}, IntraOnly, SchedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Results[0].Len(); got != 20 {
		t.Fatalf("index select = %d rows, want 20", got)
	}
}

func TestFig3AndFig4Tables(t *testing.T) {
	rows3 := Fig3Classification(DefaultConfig())
	if len(rows3) == 0 {
		t.Fatal("no fig3 rows")
	}
	for _, r := range rows3 {
		if r.IOBound != (r.Rate > 30) {
			t.Fatalf("rate %f classified %v", r.Rate, r.IOBound)
		}
		if r.IOBound && r.MaxP > 240/r.Rate+1e-6 {
			t.Fatalf("maxp %f exceeds B/C", r.MaxP)
		}
	}
	if !strings.Contains(FormatFig3(rows3), "IO-bound") {
		t.Fatal("fig3 format")
	}

	rows4 := Fig4BalancePoints(DefaultConfig())
	for _, r := range rows4 {
		if r.Xi == 0 {
			continue // pair declined
		}
		if r.Xi+r.Xj < 7.9 || r.Xi+r.Xj > 8.1 {
			t.Fatalf("balance point (%f,%f) does not fill processors", r.Xi, r.Xj)
		}
	}
	if !strings.Contains(FormatFig4(rows4), "B_eff") {
		t.Fatal("fig4 format")
	}
}

func TestTable1AndSeqSeq(t *testing.T) {
	rows := Table1TaskRates()
	if len(rows) != 4 {
		t.Fatal("table1 rows")
	}
	if !strings.Contains(FormatTable1(rows), "extremely IO-bound") {
		t.Fatal("table1 format")
	}
	ss := SeqSeqEffectiveBandwidth(DefaultConfig())
	if ss[0].B < ss[len(ss)-1].B {
		t.Fatal("effective bandwidth must fall as streams interleave")
	}
	p := New(DefaultConfig()).Params()
	if ss[0].B < 239.9 || ss[0].B > 240.1 {
		t.Fatalf("dominant-stream endpoint = %f, want Bs=240", ss[0].B)
	}
	if got := ss[len(ss)-1].B; got < p.Br-0.1 || got > p.Br+0.1 {
		t.Fatalf("even-interleave endpoint = %f, want amortized Br=%f", got, p.Br)
	}
	if p.BrRand < 139 || p.BrRand > 141 {
		t.Fatalf("BrRand = %f, want the raw random floor 140", p.BrRand)
	}
	if !strings.Contains(FormatSeqSeq(ss), "ratio") {
		t.Fatal("seqseq format")
	}
}

// TestFig7Headline asserts the paper's Figure 7 shape on the full
// experiment: ties on uniform workloads, INTER-WITH-ADJ winning on
// mixed ones by a margin in the ballpark of the paper's 25%, and
// INTER-WITHOUT-ADJ never beating INTER-WITH-ADJ.
func TestFig7Headline(t *testing.T) {
	res, err := RunFig7(DefaultConfig(), 1992)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range WorkloadKinds() {
		for _, p := range Policies() {
			if res.Elapsed(k, p) <= 0 {
				t.Fatalf("%v/%v: no elapsed time", k, p)
			}
		}
	}
	// Mixed workloads: the paper's headline ordering. INTER-WITH-ADJ
	// strictly beats INTRA-ONLY; it also at least matches
	// INTER-WITHOUT-ADJ up to the real cost of adjustment rounds (the
	// pause/report/resume barrier), which on favourable draws can let
	// the non-adjusting variant tie within a few percent.
	for _, k := range []WorkloadKind{Extreme, RandomMix} {
		adj := res.Elapsed(k, InterAdj)
		intra := res.Elapsed(k, IntraOnly)
		noadj := res.Elapsed(k, InterNoAdj)
		if !(adj < intra) {
			t.Errorf("%v: INTER-WITH-ADJ %v !< INTRA-ONLY %v", k, adj, intra)
		}
		if float64(adj) > float64(noadj)*1.05 {
			t.Errorf("%v: INTER-WITH-ADJ %v much worse than INTER-WITHOUT-ADJ %v", k, adj, noadj)
		}
	}
	// The extreme mix should show a substantial gain (paper: ~25%).
	if imp := res.Improvement(Extreme); imp < 0.10 {
		t.Errorf("extreme improvement = %.1f%%, want >= 10%%", imp*100)
	}
	// The paper's stated pathology: "INTER-WITHOUT-ADJ loses to
	// INTRA-ONLY because without parallelism adjustment a task may have
	// to run with a low parallelism even when other tasks have finished".
	if !(res.Elapsed(RandomMix, InterNoAdj) > res.Elapsed(RandomMix, IntraOnly)) {
		t.Errorf("random mix: INTER-WITHOUT-ADJ %v did not lose to INTRA-ONLY %v",
			res.Elapsed(RandomMix, InterNoAdj), res.Elapsed(RandomMix, IntraOnly))
	}
	// Uniform workloads: all three algorithms roughly tie (within 20%).
	for _, k := range []WorkloadKind{AllCPU, AllIO} {
		intra := res.Elapsed(k, IntraOnly).Seconds()
		adj := res.Elapsed(k, InterAdj).Seconds()
		if diff := (adj - intra) / intra; diff > 0.20 || diff < -0.20 {
			t.Errorf("%v: INTER-WITH-ADJ %f vs INTRA-ONLY %f (%.1f%%), want rough tie",
				k, adj, intra, diff*100)
		}
	}
	out := FormatFig7(res)
	if !strings.Contains(out, "INTER-WITH-ADJ") {
		t.Fatal("fig7 format")
	}
	t.Logf("\n%s", out)
}

func TestFig7Deterministic(t *testing.T) {
	a, err := RunFig7(DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig7(DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs: %v vs %v", i, a.Cells[i], b.Cells[i])
		}
	}
}

func TestSec4Comparison(t *testing.T) {
	rows, err := RunSec4(DefaultConfig(), []int{4}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	leftDeep, bushy := rows[0], rows[1]
	if leftDeep.Shape != "left-deep" || bushy.Shape != "bushy" {
		t.Fatalf("row order: %+v", rows)
	}
	// The §4 claim: bushy/parcost at least matches left-deep/seqcost in
	// estimated parallel cost.
	if bushy.ParCost > leftDeep.ParCost*1.01 {
		t.Errorf("bushy parcost %f > left-deep %f", bushy.ParCost, leftDeep.ParCost)
	}
	// And the measured single-user execution agrees within a generous
	// margin (estimates are models, not oracles).
	if float64(bushy.Measured) > float64(leftDeep.Measured)*1.25 {
		t.Errorf("bushy measured %v much worse than left-deep %v", bushy.Measured, leftDeep.Measured)
	}
	if !strings.Contains(FormatSec4(rows), "parcost") {
		t.Fatal("sec4 format")
	}
	t.Logf("\n%s", FormatSec4(rows))
}

func TestAblations(t *testing.T) {
	rows, err := RunAblations(DefaultConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Elapsed <= 0 || r.MeanResponse <= 0 {
			t.Fatalf("degenerate ablation row %+v", r)
		}
	}
	if !strings.Contains(FormatAblations(rows), "pairing") {
		t.Fatal("ablation format")
	}
	t.Logf("\n%s", FormatAblations(rows))
}

func TestOptimizeThroughFacade(t *testing.T) {
	s := New(Config{})
	r1, err := s.CreateScanRelation("f1", 10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.CreateScanRelation("f2", 60, 500)
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{
		Rels:  []QueryRel{{Rel: r1}, {Rel: r2}},
		Joins: []JoinPred{{LRel: 0, LCol: 0, RRel: 1, RCol: 0}},
	}
	res, err := s.Optimize(q, OptOptions{Cost: ParCost, Shape: Bushy})
	if err != nil {
		t.Fatal(err)
	}
	if ExplainPlan(res) == "" {
		t.Fatal("explain empty")
	}
	specs, err := s.PlanTasks(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(specs, InterAdj, SchedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var rootID int
	for id := range rep.Results {
		rootID = id
	}
	// Every f1 tuple joins ~1 matching f2 tuple through shared keys 0..499.
	if rep.Results[rootID].Len() == 0 {
		t.Fatal("join produced nothing")
	}
	_ = time.Duration(0)
}

func TestStreamExperiment(t *testing.T) {
	rows, err := RunStream(DefaultConfig(), 3, 12, 2*time.Second, SchedOptions{}, Admission{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Elapsed <= 0 || r.MeanResponse <= 0 || r.P95Response < r.MeanResponse {
			t.Fatalf("degenerate stream row %+v", r)
		}
	}
	// The adaptive policy must not lose badly to intra-only on a stream.
	var intra, adj StreamRow
	for _, r := range rows {
		switch r.Policy {
		case IntraOnly:
			intra = r
		case InterAdj:
			adj = r
		}
	}
	if float64(adj.Elapsed) > float64(intra.Elapsed)*1.10 {
		t.Fatalf("stream: INTER-WITH-ADJ %v much worse than INTRA-ONLY %v", adj.Elapsed, intra.Elapsed)
	}
	if !strings.Contains(FormatStream(rows), "p95") {
		t.Fatal("stream format")
	}
	t.Logf("\n%s", FormatStream(rows))
}

func TestStreamValidation(t *testing.T) {
	if _, err := RunStream(DefaultConfig(), 1, 0, time.Second, SchedOptions{}, Admission{}); err == nil {
		t.Fatal("0-task stream accepted")
	}
}
