package xprs

// The wall-clock serving benchmark behind `xprsbench -fig serve` and
// BENCH_serve.json. Two measurements:
//
//   - The grid: the open-loop serving harness (serve.go) at several
//     session counts, repeated at several GOMAXPROCS values. The
//     virtual statistics must come out byte-identical at every
//     GOMAXPROCS — MeasureServe fails if they do not — while the wall
//     clock shows how fast the host chews through the same virtual
//     schedule.
//
//   - The intake ablation: a Real-clock microbenchmark of the
//     Submit→admission fast path alone (degenerate empty queries, so no
//     fragment ever executes), with parallel submitters, sharded intake
//     versus the serial single-shard configuration. This isolates the
//     sharding win: Submit throughput should scale with GOMAXPROCS,
//     which is the PR's regression gate (>1.5× at 4 procs vs 1).

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"time"

	"xprs/internal/core"
	"xprs/internal/cost"
	"xprs/internal/diskmodel"
	"xprs/internal/exec"
	"xprs/internal/storage"
	"xprs/internal/vclock"
)

// ServeBenchOptions sizes MeasureServe.
type ServeBenchOptions struct {
	// SessionCounts are the grid's session counts (default 1k/10k/100k).
	SessionCounts []int
	// Procs are the GOMAXPROCS values for both the grid and the
	// ablation (default 1/4/8).
	Procs []int
	// IntakeOps is the number of Submits per intake measurement
	// (default 60000); IntakeRounds repeats each measurement and keeps
	// the best round (default 3).
	IntakeOps    int
	IntakeRounds int
}

func (o ServeBenchOptions) withDefaults() ServeBenchOptions {
	if len(o.SessionCounts) == 0 {
		o.SessionCounts = []int{1000, 10000, 100000}
	}
	if len(o.Procs) == 0 {
		o.Procs = []int{1, 4, 8}
	}
	if o.IntakeOps <= 0 {
		o.IntakeOps = 60000
	}
	if o.IntakeRounds <= 0 {
		o.IntakeRounds = 3
	}
	return o
}

// ServeGridRow is one serving run: a session count at a GOMAXPROCS.
type ServeGridRow struct {
	Sessions int     `json:"sessions"`
	Procs    int     `json:"gomaxprocs"`
	WallMs   float64 `json:"wall_ms"`
	// WallQPS is sessions per wall-clock second: how fast the host
	// drives the whole virtual serving schedule.
	WallQPS float64 `json:"wall_qps"`
	// Stats are the run's virtual-time statistics — identical across
	// every Procs value by construction.
	Stats *ServeStats `json:"stats"`
}

// IntakeRow is one intake-microbenchmark measurement.
type IntakeRow struct {
	Procs   int     `json:"gomaxprocs"`
	Shards  int     `json:"intake_shards"`
	Serial  bool    `json:"serial_intake"`
	NsPerOp float64 `json:"ns_per_op"`
	QPS     float64 `json:"submits_per_sec"`
}

// ServeBenchResult is the BENCH_serve.json payload.
type ServeBenchResult struct {
	SessionCounts []int `json:"session_counts"`
	Procs         []int `json:"gomaxprocs"`
	// HostCPUs is runtime.NumCPU() on the measuring host. GOMAXPROCS
	// values above it cannot show wall-clock scaling — on a single-CPU
	// host the speedup field is capped at ~1.0 by physics, and the
	// like-for-like comparison is sharded vs serial at equal procs.
	HostCPUs int `json:"host_cpus"`
	// Serving workload shape (echoed ServeOptions).
	Tenants    int     `json:"tenants"`
	Templates  int     `json:"templates"`
	Rate       float64 `json:"arrival_rate_qps"`
	MaxQueries int     `json:"admission_max_queries"`
	TenantMax  int     `json:"admission_tenant_max_queries"`
	MaxQueued  int     `json:"admission_max_queued"`

	Grid   []ServeGridRow `json:"grid"`
	Intake []IntakeRow    `json:"intake_ablation"`
	// PolicyAblation compares the admission policies (fifo,
	// predicted-SJF with and without aging, deadline) on the shared
	// skewed long/short mix — all in virtual time; see RunPolicyAblation.
	PolicyAblation *PolicyAblation `json:"policy_ablation"`
	// IntakeSpeedup4 is sharded-intake Submit throughput at GOMAXPROCS
	// 4 over GOMAXPROCS 1 — the PR's scaling gate (want > 1.5).
	IntakeSpeedup4 float64 `json:"intake_speedup_p4_vs_p1"`
	// Observed is the sampled-tracing ablation: the largest grid run
	// repeated with the observer on, a bounded span store and 1-in-N
	// head sampling. StatsMatch asserts its virtual stats are
	// byte-identical to the unobserved grid row; SpansKept is bounded by
	// SpanBudget no matter the session count.
	Observed *ObservedServeRow `json:"observed"`
}

// ObservedServeRow reports the sampled-tracing serving run.
type ObservedServeRow struct {
	Sessions     int     `json:"sessions"`
	SampleOneIn  int     `json:"sample_one_in"`
	SpanBudget   int     `json:"span_budget"`
	SpansKept    int     `json:"spans_kept"`
	SpansDropped int64   `json:"spans_dropped"`
	WallMs       float64 `json:"wall_ms"`
	StatsMatch   bool    `json:"stats_match"`
}

// Observed-serving ablation parameters: trace 1 in 16 queries into a
// 4096-span ring.
const (
	serveSampleOneIn = 16
	serveSpanBudget  = 4096
)

// serveBenchOpts is the grid's workload: a tenant mix with quotas and
// shedding live, stable under the arrival rate so most queries
// complete, small templates so large session counts stay affordable on
// the wall clock.
func serveBenchOpts(sessions int) ServeOptions {
	return ServeOptions{
		Sessions:  sessions,
		Tenants:   6,
		Templates: 2,
		Tuples:    120,
		Rate:      6,
		Adm: Admission{
			MaxQueries:       16,
			TenantMaxQueries: 8,
			MaxQueued:        1000,
			// Default response-time SLO for every tenant: the benched
			// tenant_slo block carries real targets and breach counts.
			SLOTarget: 2 * time.Second,
		},
		Seed: 1992,
	}
}

// MeasureServe runs the serving grid and the intake ablation and
// reports the BENCH_serve.json payload. It temporarily adjusts
// GOMAXPROCS; the prior value is restored before returning.
//
//lint:allow vclockpurity — host-timing serving benchmark
func MeasureServe(cfg Config, o ServeBenchOptions) (*ServeBenchResult, error) {
	o = o.withDefaults()
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	sample := serveBenchOpts(0)
	res := &ServeBenchResult{
		SessionCounts: o.SessionCounts,
		Procs:         o.Procs,
		HostCPUs:      runtime.NumCPU(),
		Tenants:       sample.Tenants,
		Templates:     sample.Templates,
		Rate:          sample.Rate,
		MaxQueries:    sample.Adm.MaxQueries,
		TenantMax:     sample.Adm.TenantMaxQueries,
		MaxQueued:     sample.Adm.MaxQueued,
	}

	for _, n := range o.SessionCounts {
		var base *ServeStats
		for _, procs := range o.Procs {
			runtime.GOMAXPROCS(procs)
			start := time.Now()
			stats, err := RunServe(cfg, serveBenchOpts(n))
			if err != nil {
				return nil, fmt.Errorf("serve %d sessions at %d procs: %w", n, procs, err)
			}
			wall := time.Since(start)
			if base == nil {
				base = stats
			} else if !reflect.DeepEqual(base, stats) {
				return nil, fmt.Errorf(
					"determinism violation: %d-session stats at GOMAXPROCS %d differ from GOMAXPROCS %d",
					n, procs, o.Procs[0])
			}
			res.Grid = append(res.Grid, ServeGridRow{
				Sessions: n,
				Procs:    procs,
				WallMs:   float64(wall.Nanoseconds()) / 1e6,
				WallQPS:  float64(n) / wall.Seconds(),
				Stats:    stats,
			})
		}
	}

	// Sampled-tracing ablation: the largest session count again, observer
	// on, bounded span ring, 1-in-N head sampling. The virtual stats must
	// match the unobserved grid row exactly, and the span store must hold
	// at most the budget — the "observation is free" claim under load.
	if n := o.SessionCounts[len(o.SessionCounts)-1]; n > 0 {
		runtime.GOMAXPROCS(o.Procs[len(o.Procs)-1])
		ocfg := cfg
		ocfg.Observe = true
		ocfg.TraceBudget = serveSpanBudget
		oopts := serveBenchOpts(n)
		oopts.Adm.TraceSampleOneIn = serveSampleOneIn
		start := time.Now()
		stats, sys, err := RunServeSystem(ocfg, oopts)
		if err != nil {
			return nil, fmt.Errorf("observed serve %d sessions: %w", n, err)
		}
		wall := time.Since(start)
		var baseline *ServeStats
		for _, row := range res.Grid {
			if row.Sessions == n {
				baseline = row.Stats
				break
			}
		}
		res.Observed = &ObservedServeRow{
			Sessions:     n,
			SampleOneIn:  serveSampleOneIn,
			SpanBudget:   serveSpanBudget,
			SpansKept:    sys.Observer().Trace.Len(),
			SpansDropped: sys.Observer().Trace.Dropped(),
			WallMs:       float64(wall.Nanoseconds()) / 1e6,
			StatsMatch:   reflect.DeepEqual(baseline, stats),
		}
		if !res.Observed.StatsMatch {
			return nil, fmt.Errorf(
				"observed serve %d sessions: stats differ from unobserved run", n)
		}
	}

	var qps1, qps4 float64
	for _, procs := range o.Procs {
		for _, serial := range []bool{false, true} {
			shards := 0
			if serial {
				shards = 1
			}
			row, err := measureIntake(procs, shards, o.IntakeOps, o.IntakeRounds)
			if err != nil {
				return nil, err
			}
			res.Intake = append(res.Intake, row)
			if !serial {
				switch procs {
				case 1:
					qps1 = row.QPS
				case 4:
					qps4 = row.QPS
				}
			}
		}
	}
	if qps1 > 0 && qps4 > 0 {
		res.IntakeSpeedup4 = qps4 / qps1
	}

	// Admission-policy ablation: virtual-time rows, so GOMAXPROCS is
	// irrelevant; run at the host default.
	runtime.GOMAXPROCS(prev)
	abl, err := RunPolicyAblation(cfg, PolicyAblationOptions{})
	if err != nil {
		return nil, fmt.Errorf("policy ablation: %w", err)
	}
	res.PolicyAblation = abl
	return res, nil
}

// intakeSession builds a Real-clock engine and scheduler for the intake
// microbenchmark. Nothing in the session ever executes a fragment —
// the benchmark submits degenerate empty queries — so the store stays
// empty and the disk model idle.
func intakeSession(procs, shards int) (*exec.Scheduler, func() error) {
	clk := vclock.NewReal(1)
	dcfg := diskmodel.DefaultConfig()
	disks := diskmodel.New(clk, dcfg)
	st := storage.NewStore(clk, disks, 0)
	eng := exec.New(clk, st, cost.DefaultParams(dcfg, procs))
	sched := exec.NewScheduler(eng, core.InterAdj, core.Options{}, exec.AdmissionConfig{IntakeShards: shards})
	return sched, sched.Drain
}

// measureIntake times ops Submits of empty queries through the
// scheduler's fast path. Above one proc, one proc is left to the
// master loop — the serial decision maker — and the rest run submitter
// goroutines. Each submitter waits on its latest handle every 64 ops:
// the master settles queries in intake order, so a settled recent
// handle bounds the global number of outstanding queries without
// rendezvousing every op.
//
//lint:allow vclockpurity — host-timing intake microbenchmark
func measureIntake(procs, shards, ops, rounds int) (IntakeRow, error) {
	runtime.GOMAXPROCS(procs)
	row := IntakeRow{Procs: procs, Shards: shards, Serial: shards == 1}
	workers := procs - 1
	if workers < 1 {
		workers = 1
	}
	best := time.Duration(1 << 62)
	for r := 0; r < rounds; r++ {
		sched, drain := intakeSession(procs, shards)
		per := ops / workers
		errs := make([]error, workers)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var last *exec.QueryHandle
				for i := 0; i < per; i++ {
					h, err := sched.Submit(nil)
					if err != nil {
						errs[w] = err
						return
					}
					last = h
					if i%64 == 63 {
						if _, err := last.Wait(); err != nil {
							errs[w] = err
							return
						}
					}
				}
				if last != nil {
					if _, err := last.Wait(); err != nil {
						errs[w] = err
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if err := drain(); err != nil {
			return row, err
		}
		for _, err := range errs {
			if err != nil {
				return row, fmt.Errorf("intake bench (%d procs, %d shards): %w", procs, shards, err)
			}
		}
		if elapsed < best {
			best = elapsed
		}
	}
	n := (ops / workers) * workers // what the workers actually submitted
	row.NsPerOp = float64(best.Nanoseconds()) / float64(n)
	row.QPS = float64(n) / best.Seconds()
	return row, nil
}
