package xprs

// The pipeline micro-benchmark: a canonical scan -> hash-join -> agg
// query over synthetic relations, used by BenchmarkPipelineThroughput
// and by `xprsbench -fig pipeline` to track executor overhead (wall
// time and allocations per run) across PRs. The virtual-time answer is
// fixed; what this measures is the cost of the simulator/executor
// itself, which is exactly the overhead the batch-at-a-time pipeline
// is meant to keep negligible.

import (
	"fmt"
	"runtime"
	"time"
)

// PipelineBenchSize configures the canonical benchmark query.
const (
	pipelineBenchLeftRows  = 30000
	pipelineBenchRightRows = 5000
)

// pipelineBenchSQL joins the probe relation against the build relation
// and aggregates, exercising scan, filter, hash build, hash probe and
// two-phase aggregation — the full batch hot path.
const pipelineBenchSQL = "select bl.a, count(*) from bl, br where bl.a = br.a and bl.a between 0 and 4499 group by bl.a"

// NewPipelineBenchSystem builds a system preloaded with the benchmark
// relations bl (probe side) and br (build side).
func NewPipelineBenchSystem(cfg Config) (*System, error) {
	s := New(cfg)
	left := make([]struct {
		A int32
		B string
	}, pipelineBenchLeftRows)
	for i := range left {
		left[i].A = int32(i) % 9000
		left[i].B = fmt.Sprintf("probe-%05d", i)
	}
	if _, err := s.LoadRelation("bl", left); err != nil {
		return nil, err
	}
	right := make([]struct {
		A int32
		B string
	}, pipelineBenchRightRows)
	for i := range right {
		right[i].A = int32(i) % 9000
		right[i].B = fmt.Sprintf("build-%05d", i)
	}
	if _, err := s.LoadRelation("br", right); err != nil {
		return nil, err
	}
	return s, nil
}

// RunPipelineBenchQuery executes the canonical query once and returns
// the number of driver tuples scanned plus result groups.
func RunPipelineBenchQuery(s *System) (tuples int64, groups int, err error) {
	out, _, err := s.ExecSQL(pipelineBenchSQL, InterAdj)
	if err != nil {
		return 0, 0, err
	}
	return pipelineBenchLeftRows + pipelineBenchRightRows, out.Len(), nil
}

// PipelineBenchResult is one measured run of the pipeline benchmark.
type PipelineBenchResult struct {
	Layout       string  `json:"layout"`
	BatchSize    int     `json:"batch_size"`
	Iterations   int     `json:"iterations"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	Groups       int     `json:"result_groups"`
}

// MeasurePipeline runs the canonical query iters times against a fresh
// system and reports wall-clock throughput and allocation counts. It is
// the JSON-emitting twin of BenchmarkPipelineThroughput.
// It measures real throughput on the wall clock by design, never on
// the virtual clock.
//
//lint:allow vclockpurity — host-timing benchmark
func MeasurePipeline(cfg Config, iters int) (*PipelineBenchResult, error) {
	if iters <= 0 {
		iters = 5
	}
	s, err := NewPipelineBenchSystem(cfg)
	if err != nil {
		return nil, err
	}
	// Warm up after the GC, not before: the collector tears down pool
	// contents, so a pre-GC warm-up would leave the first measured op
	// re-filling every batch and session pool and the alloc figures
	// would track pool construction instead of the steady-state path.
	var before, after runtime.MemStats
	runtime.GC()
	if _, _, err := RunPipelineBenchQuery(s); err != nil {
		return nil, err
	}
	runtime.ReadMemStats(&before)
	start := time.Now()
	var tuples int64
	var groups int
	for i := 0; i < iters; i++ {
		n, g, err := RunPipelineBenchQuery(s)
		if err != nil {
			return nil, err
		}
		tuples += n
		groups = g
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	layout := "columnar"
	if cfg.RowBatches {
		layout = "row"
	}
	res := &PipelineBenchResult{
		Layout:       layout,
		BatchSize:    s.BatchSize(),
		Iterations:   iters,
		TuplesPerSec: float64(tuples) / wall.Seconds(),
		NsPerOp:      float64(wall.Nanoseconds()) / float64(iters),
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:   float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		Groups:       groups,
	}
	return res, nil
}
