module xprs

go 1.22
