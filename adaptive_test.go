package xprs

import (
	"testing"
	"time"
)

// TestAdaptiveLateArrival pins the §2.4 behaviour the adaptive example
// demonstrates: a CPU-bound task arriving mid-run pairs with the running
// IO-bound scan (adjusting it down to the balance point), and the
// survivor is adjusted back up when the newcomer finishes — ending up
// faster than serial execution.
func TestAdaptiveLateArrival(t *testing.T) {
	sys := New(DefaultConfig())
	if _, err := sys.CreateScanRelation("stream", 65, 60000); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateScanRelation("batch", 10, 60000); err != nil {
		t.Fatal(err)
	}
	long, err := sys.SelectTask(0, "stream", 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	late, err := sys.SelectTask(1, "batch", 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	late.Arrival = 10 * time.Second
	rep, err := sys.Run([]TaskSpec{long, late}, InterAdj, SchedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sawDown, sawUp bool
	for _, ev := range rep.Trace {
		if ev.Kind == "adjust" && ev.TaskID == 0 {
			if ev.Time >= 10*time.Second && ev.Time < 11*time.Second && ev.Degree < 4 {
				sawDown = true
			}
			if ev.Time > 11*time.Second && ev.Degree == 4 {
				sawUp = true
			}
		}
	}
	if !sawDown {
		t.Errorf("no downward adjustment at the arrival: %v", rep.Trace)
	}
	if !sawUp {
		t.Errorf("no upward adjustment after the partner finished: %v", rep.Trace)
	}
	// The pairing must beat running the two tasks serially.
	serial := func() time.Duration {
		s2 := New(DefaultConfig())
		_, _ = s2.CreateScanRelation("stream", 65, 60000)
		_, _ = s2.CreateScanRelation("batch", 10, 60000)
		a, _ := s2.SelectTask(0, "stream", 0, 1<<30)
		b, _ := s2.SelectTask(1, "batch", 0, 1<<30)
		rep2, err := s2.Run([]TaskSpec{a, b}, IntraOnly, SchedOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return rep2.Elapsed
	}()
	if rep.Elapsed >= serial+10*time.Second {
		// The late task arrived 10s in, so anything below serial+10s
		// means the overlap paid off.
		t.Errorf("adaptive run %v did not beat serial %v (+10s arrival offset)", rep.Elapsed, serial)
	}
	// Correctness: both tasks produced their full results.
	if rep.Results[0].Len() != 60000 || rep.Results[1].Len() != 60000 {
		t.Fatalf("results = %d, %d", rep.Results[0].Len(), rep.Results[1].Len())
	}
}
