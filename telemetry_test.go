package xprs

// Serving-telemetry integration tests: observation must be invisible in
// the serving stats (sampled tracing included), span retention must
// honor the budget, the timeline and SLO blocks must reconcile with the
// run's totals, and the ops handler must expose the registry.

import (
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

// telemetryServeOpts is a small overloaded mix: quotas live, some
// shedding, multiple tenants — everything the timeline and SLO blocks
// are supposed to show.
func telemetryServeOpts() ServeOptions {
	return ServeOptions{
		Sessions: 120,
		Tenants:  3,
		Rate:     10,
		Adm: Admission{
			MaxQueries:       4,
			TenantMaxQueries: 2,
			MaxQueued:        8,
			SLOTarget:        2 * time.Second,
			TenantSLOTargets: map[string]time.Duration{"t01": 500 * time.Millisecond},
		},
	}
}

// TestObservedServeInvisible is the PR's acceptance property: the same
// serving run with the observer on — sampled tracing into a bounded
// span ring — produces byte-identical stats to the unobserved run, at
// GOMAXPROCS 1 and 4, while span memory stays within the budget.
func TestObservedServeInvisible(t *testing.T) {
	const budget = 256
	opts := telemetryServeOpts()
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	base, err := RunServe(DefaultConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		ocfg := DefaultConfig()
		ocfg.Observe = true
		ocfg.TraceBudget = budget
		oopts := opts
		oopts.Adm.TraceSampleOneIn = 4
		stats, sys, err := RunServeSystem(ocfg, oopts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, stats) {
			t.Fatalf("GOMAXPROCS %d: observed stats differ from unobserved run:\n%+v\n%+v",
				procs, base, stats)
		}
		tr := sys.Observer().Trace
		if tr.Len() > budget {
			t.Fatalf("GOMAXPROCS %d: %d spans retained, budget %d", procs, tr.Len(), budget)
		}
		if tr.Len()+int(tr.Dropped()) < budget {
			t.Fatalf("GOMAXPROCS %d: only %d spans emitted under 1-in-4 sampling of %d sessions — sampling gate stuck closed?",
				procs, tr.Len()+int(tr.Dropped()), opts.Sessions)
		}
	}
}

// TestServeTimelineAndSLO reconciles the timeline and per-tenant SLO
// blocks against the run's totals.
func TestServeTimelineAndSLO(t *testing.T) {
	stats, err := RunServe(DefaultConfig(), telemetryServeOpts())
	if err != nil {
		t.Fatal(err)
	}
	tl := stats.Timeline
	if len(tl.Windows) == 0 {
		t.Fatal("no timeline windows")
	}
	if tl.WindowNs != int64(time.Second) {
		t.Fatalf("default window = %v, want 1s", time.Duration(tl.WindowNs))
	}
	if got := tl.TotalCounter("submitted"); got != int64(stats.Submitted) {
		t.Fatalf("timeline submitted = %d, stats = %d", got, stats.Submitted)
	}
	if got := tl.TotalCounter("completed"); got != int64(stats.Completed) {
		t.Fatalf("timeline completed = %d, stats = %d", got, stats.Completed)
	}
	if got := tl.TotalCounter("shed"); got != int64(stats.Shed) {
		t.Fatalf("timeline shed = %d, stats = %d", got, stats.Shed)
	}
	for i := 1; i < len(tl.Windows); i++ {
		if tl.Windows[i].Index <= tl.Windows[i-1].Index {
			t.Fatalf("window indices not strictly increasing at %d", i)
		}
	}

	if len(stats.TenantSLO) == 0 {
		t.Fatal("no tenant SLO rows")
	}
	var completed, shed int64
	for _, ts := range stats.TenantSLO {
		completed += ts.Completed
		shed += ts.Shed
		want := int64(2 * time.Second)
		if ts.Tenant == "t01" {
			want = int64(500 * time.Millisecond)
		}
		if ts.TargetNs != want {
			t.Fatalf("tenant %s target = %v, want %v",
				ts.Tenant, time.Duration(ts.TargetNs), time.Duration(want))
		}
		if ts.Completed > 0 {
			if ts.RespP50Ns <= 0 || ts.RespP50Ns > ts.RespP95Ns || ts.RespP95Ns > ts.RespP99Ns {
				t.Fatalf("tenant %s percentiles broken: %+v", ts.Tenant, ts)
			}
			if ts.BurnPermille != ts.Breached*1000/ts.Completed {
				t.Fatalf("tenant %s burn %d != breached %d / completed %d",
					ts.Tenant, ts.BurnPermille, ts.Breached, ts.Completed)
			}
		}
	}
	if completed != int64(stats.Completed) || shed != int64(stats.Shed) {
		t.Fatalf("tenant SLO totals completed=%d shed=%d, stats %d/%d",
			completed, shed, stats.Completed, stats.Shed)
	}
}

// TestOpsHandler drives the ops HTTP surface in-process: /metrics must
// expose the observed registry in OpenMetrics form, /healthz must
// answer, and an unobserved system must 503 on /metrics rather than
// pretend to be healthy telemetry.
func TestOpsHandler(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Observe = true
	sys := New(cfg)
	if _, err := sys.CreateScanRelation("ops_rel", 60, 500); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.ExecSQL("SELECT * FROM ops_rel WHERE a < 100", InterAdj); err != nil {
		t.Fatal(err)
	}
	h := sys.OpsHandler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("/metrics body not OpenMetrics-terminated:\n%s", body)
	}
	if !strings.Contains(body, "exec_batches_total") {
		t.Fatalf("/metrics missing executor counters:\n%s", body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("/metrics content type %q", ct)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("/healthz = %d %q", rec.Code, rec.Body.String())
	}

	dark := New(DefaultConfig())
	rec = httptest.NewRecorder()
	dark.OpsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 503 {
		t.Fatalf("unobserved /metrics status %d, want 503", rec.Code)
	}
}

// TestFormatAnalyzeQuantiles checks that EXPLAIN ANALYZE consumes the
// histogram snapshot's quantile estimates instead of recomputing them.
func TestFormatAnalyzeQuantiles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Observe = true
	sys := New(cfg)
	if _, err := sys.CreateScanRelation("q_rel", 60, 2000); err != nil {
		t.Fatal(err)
	}
	_, res, rep, err := sys.ExecSQLReport("SELECT * FROM q_rel WHERE a < 1000", InterAdj)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatAnalyze(res, rep)
	if !strings.Contains(out, "Task latency: p50") {
		t.Fatalf("FormatAnalyze missing task-latency quantiles:\n%s", out)
	}
}
