package xprs

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"xprs/internal/storage"
	"xprs/internal/workload"
)

// The continuous-sequence experiment: §2.5 notes the algorithm "can be
// easily extended to handle a continuous sequence of tasks ... all we
// need to do is to represent S_io and S_cpu as queues". This experiment
// exercises exactly that: a multi-user stream of selection tasks with
// random interarrival times, run under each policy, measuring both
// makespan and per-task response times.

// StreamRow is one policy's result on the task stream.
type StreamRow struct {
	Policy Policy
	// Elapsed is the time from first arrival to last completion.
	Elapsed time.Duration
	// MeanResponse and P95Response summarize task arrival-to-completion
	// latencies.
	MeanResponse time.Duration
	P95Response  time.Duration
}

// RunStream generates n mixed-class selection tasks with uniform random
// interarrival in [0, maxGap) and runs the stream under each policy. SJF
// reports its response-time advantage through the same harness when
// enabled via opts.
func RunStream(cfg Config, seed int64, n int, maxGap time.Duration, opts SchedOptions) ([]StreamRow, error) {
	if n < 1 {
		return nil, fmt.Errorf("xprs: stream needs at least 1 task")
	}
	var rows []StreamRow
	for _, pol := range Policies() {
		s := New(cfg)
		rng := rand.New(rand.NewSource(seed))
		var specs []TaskSpec
		arrival := time.Duration(0)
		arrivals := make(map[int]time.Duration, n)
		for i := 0; i < n; i++ {
			// Alternate class draws like the random-mix workload.
			var rate float64
			if rng.Intn(2) == 0 {
				lo, hi := workload.IOBound.RateRange()
				rate = lo + rng.Float64()*(hi-lo)
			} else {
				lo, hi := workload.CPUBound.RateRange()
				rate = lo + rng.Float64()*(hi-lo)
			}
			targetT := 5 + rng.Float64()*25
			size := s.params.TupleSizeForRate(rate)
			perPage := float64(storage.TuplesPerPage(int(size)))
			ntuples := int64(targetT * perPage * rate)
			if ntuples < 100 {
				ntuples = 100
			}
			name := fmt.Sprintf("s%d_%02d", pol, i)
			if _, err := workload.BuildScanRelation(s.store, s.params, name, rate, ntuples); err != nil {
				return nil, err
			}
			spec, err := s.SelectTask(i, name, 0, 1<<30)
			if err != nil {
				return nil, err
			}
			spec.Arrival = arrival
			arrivals[i] = arrival
			specs = append(specs, spec)
			arrival += time.Duration(rng.Int63n(int64(maxGap)))
		}
		rep, err := s.Run(specs, pol, opts)
		if err != nil {
			return nil, err
		}
		var responses []time.Duration
		var sum time.Duration
		for id, fin := range rep.Finish {
			r := fin - arrivals[id]
			responses = append(responses, r)
			sum += r
		}
		sort.Slice(responses, func(i, j int) bool { return responses[i] < responses[j] })
		row := StreamRow{Policy: pol, Elapsed: rep.Elapsed}
		if len(responses) > 0 {
			row.MeanResponse = sum / time.Duration(len(responses))
			row.P95Response = responses[(len(responses)-1)*95/100]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatStream renders the stream comparison.
func FormatStream(rows []StreamRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Continuous task stream (§2.5 queues) — multi-user arrivals\n")
	fmt.Fprintf(&b, "%-18s  %12s  %14s  %14s\n", "policy", "elapsed (s)", "mean resp (s)", "p95 resp (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s  %12.2f  %14.2f  %14.2f\n",
			r.Policy, r.Elapsed.Seconds(), r.MeanResponse.Seconds(), r.P95Response.Seconds())
	}
	return b.String()
}
