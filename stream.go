package xprs

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"xprs/internal/storage"
	"xprs/internal/workload"
)

// The continuous-sequence experiment: §2.5 notes the algorithm "can be
// easily extended to handle a continuous sequence of tasks ... all we
// need to do is to represent S_io and S_cpu as queues". This experiment
// exercises exactly that through the online path: a multi-user stream of
// selection tasks with random interarrival times, each submitted to a
// live scheduler session at its actual virtual arrival instant, run
// under each policy, measuring makespan, per-task response times, and
// admission queue waits.

// StreamRow is one policy's result on the task stream.
type StreamRow struct {
	Policy Policy
	// Elapsed is the time from first arrival to last completion.
	Elapsed time.Duration
	// MeanResponse and P95Response summarize task arrival-to-completion
	// latencies (nearest-rank percentile).
	MeanResponse time.Duration
	P95Response  time.Duration
	// MeanQueueWait and P95QueueWait summarize time spent in the
	// admission queue before the scheduler accepted each task; zero
	// unless the stream runs with admission limits.
	MeanQueueWait time.Duration
	P95QueueWait  time.Duration
}

// StreamSpecs generates the stream's workload on the given system: n
// mixed-class selection tasks with uniform random interarrival in
// [0, maxGap), their backing relations built in the system's store and
// each spec's Arrival stamped. The schedule is a pure function of the
// seed, so every policy (on its own fresh system) replays the identical
// stream.
func StreamSpecs(s *System, seed int64, n int, maxGap time.Duration) ([]TaskSpec, error) {
	if n < 1 {
		return nil, fmt.Errorf("xprs: stream needs at least 1 task")
	}
	if maxGap <= 0 {
		return nil, fmt.Errorf("xprs: stream needs a positive max interarrival gap")
	}
	rng := rand.New(rand.NewSource(seed))
	specs := make([]TaskSpec, 0, n)
	arrival := time.Duration(0)
	for i := 0; i < n; i++ {
		// Alternate class draws like the random-mix workload.
		var rate float64
		if rng.Intn(2) == 0 {
			lo, hi := workload.IOBound.RateRange()
			rate = lo + rng.Float64()*(hi-lo)
		} else {
			lo, hi := workload.CPUBound.RateRange()
			rate = lo + rng.Float64()*(hi-lo)
		}
		targetT := 5 + rng.Float64()*25
		size := s.params.TupleSizeForRate(rate)
		perPage := float64(storage.TuplesPerPage(int(size)))
		ntuples := int64(targetT * perPage * rate)
		if ntuples < 100 {
			ntuples = 100
		}
		name := fmt.Sprintf("st_%02d", i)
		if _, err := workload.BuildScanRelation(s.store, s.params, name, rate, ntuples); err != nil {
			return nil, err
		}
		spec, err := s.SelectTask(i, name, 0, 1<<30)
		if err != nil {
			return nil, err
		}
		spec.Arrival = arrival
		specs = append(specs, spec)
		arrival += time.Duration(rng.Int63n(int64(maxGap)))
	}
	return specs, nil
}

// RunStream runs the generated stream under each policy through a live
// scheduler session: a driver goroutine sleeps to each task's virtual
// arrival instant and submits it online as a single-task query, so the
// controller re-solves the balance point on every real arrival. SJF
// reports its response-time advantage through the same harness when
// enabled via opts; adm applies admission limits (zero value: none).
func RunStream(cfg Config, seed int64, n int, maxGap time.Duration, opts SchedOptions, adm Admission) ([]StreamRow, error) {
	var rows []StreamRow
	for _, pol := range Policies() {
		s := New(cfg)
		specs, err := StreamSpecs(s, seed, n, maxGap)
		if err != nil {
			return nil, err
		}
		var reps []*Report
		err = s.Serve(pol, opts, adm, func(sc *Scheduler) error {
			base := sc.Now()
			handles := make([]*QueryHandle, 0, len(specs))
			for _, sp := range specs {
				sc.SleepUntil(base + sp.Arrival)
				sp.Arrival = 0 // the submission instant IS the arrival
				h, err := sc.Submit([]TaskSpec{sp})
				if err != nil {
					return err
				}
				handles = append(handles, h)
			}
			for _, h := range handles {
				rep, err := h.Wait()
				if err != nil {
					return err
				}
				reps = append(reps, rep)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Aggregation (mean, nearest-rank percentiles) is shared with the
		// open-loop serving harness: one definition of p95 in the tree.
		row := StreamRow{Policy: pol}
		responses := make([]time.Duration, 0, len(reps))
		waits := make([]time.Duration, 0, len(reps))
		for _, rep := range reps {
			responses = append(responses, rep.Elapsed)
			waits = append(waits, rep.QueueWait)
			if end := rep.SubmittedAt + rep.Elapsed; end > row.Elapsed {
				row.Elapsed = end
			}
		}
		resp := workload.Summarize(responses)
		wait := workload.Summarize(waits)
		row.MeanResponse, row.P95Response = resp.Mean, resp.P95
		row.MeanQueueWait, row.P95QueueWait = wait.Mean, wait.P95
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatStream renders the stream comparison.
func FormatStream(rows []StreamRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Continuous task stream (§2.5 queues) — online multi-user arrivals\n")
	fmt.Fprintf(&b, "%-18s  %12s  %14s  %14s  %14s  %14s\n",
		"policy", "elapsed (s)", "mean resp (s)", "p95 resp (s)", "mean qwait (s)", "p95 qwait (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s  %12.2f  %14.2f  %14.2f  %14.2f  %14.2f\n",
			r.Policy, r.Elapsed.Seconds(), r.MeanResponse.Seconds(), r.P95Response.Seconds(),
			r.MeanQueueWait.Seconds(), r.P95QueueWait.Seconds())
	}
	return b.String()
}
