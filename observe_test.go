package xprs_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"xprs"
)

// observeWorkload builds the multiquery-style task mix: two IO-bound and
// two CPU-bound selections, enough to trigger pairing and dynamic
// adjustment under InterAdj.
func observeWorkload(t *testing.T, sys *xprs.System) []xprs.TaskSpec {
	t.Helper()
	users := []struct {
		name   string
		rate   float64
		tuples int64
		lo, hi int32
	}{
		{"w_bigscan", 65, 40000, 0, 1 << 30},
		{"w_filter", 9, 120000, 500, 90000},
		{"w_report", 55, 30000, 0, 1 << 30},
		{"w_crunch", 12, 100000, 0, 50000},
	}
	var specs []xprs.TaskSpec
	for i, u := range users {
		if _, err := sys.CreateScanRelation(u.name, u.rate, u.tuples); err != nil {
			t.Fatal(err)
		}
		spec, err := sys.SelectTask(i, u.name, u.lo, u.hi)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, spec)
	}
	return specs
}

func runObserveWorkload(t *testing.T, nprocs int, observe bool) *xprs.Report {
	t.Helper()
	cfg := xprs.DefaultConfig()
	cfg.NProcs = nprocs
	cfg.Observe = observe
	sys := xprs.New(cfg)
	rep, err := sys.Run(observeWorkload(t, sys), xprs.InterAdj, xprs.SchedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestTraceDeterministic checks the tentpole invariant: enabling the
// tracer and metrics registry must not perturb the virtual clock. Every
// completion time and the makespan must be identical with observability
// on and off, across processor counts.
func TestTraceDeterministic(t *testing.T) {
	for _, nprocs := range []int{1, 3, 8} {
		off := runObserveWorkload(t, nprocs, false)
		on := runObserveWorkload(t, nprocs, true)
		if off.Elapsed != on.Elapsed {
			t.Errorf("nprocs=%d: elapsed %v unobserved vs %v observed", nprocs, off.Elapsed, on.Elapsed)
		}
		if !reflect.DeepEqual(off.Finish, on.Finish) {
			t.Errorf("nprocs=%d: finish times diverge: %v vs %v", nprocs, off.Finish, on.Finish)
		}
		if len(on.Events) == 0 {
			t.Errorf("nprocs=%d: observed run produced no events", nprocs)
		}
		if len(off.Events) != 0 {
			t.Errorf("nprocs=%d: unobserved run produced %d events", nprocs, len(off.Events))
		}
	}
}

// TestTraceOrdered checks that a run's event slice is sorted by virtual
// time and covers every layer of the stack: scheduler decisions,
// fragment and slave spans, and per-IO disk spans with mode transitions.
func TestTraceOrdered(t *testing.T) {
	rep := runObserveWorkload(t, 8, true)
	cats := make(map[string]int)
	for i, ev := range rep.Events {
		cats[ev.Cat]++
		if i > 0 && ev.Ts < rep.Events[i-1].Ts {
			t.Fatalf("event %d out of order: Ts %v after %v", i, ev.Ts, rep.Events[i-1].Ts)
		}
		if ev.Ts < 0 {
			t.Fatalf("event %d has negative run-relative Ts %v", i, ev.Ts)
		}
	}
	for _, want := range []string{"sched", "frag", "slave", "io", "diskmode"} {
		if cats[want] == 0 {
			t.Errorf("no %q events in trace (got %v)", want, cats)
		}
	}
	var reparts int
	for _, fs := range rep.Frags {
		reparts += fs.Repartitions
	}
	if reparts > 0 && cats["protocol"] == 0 {
		t.Errorf("%d repartitions ran but no protocol events traced", reparts)
	}
	if len(rep.Frags) != 4 {
		t.Errorf("want 4 fragment stats, got %d", len(rep.Frags))
	}
	for id, fs := range rep.Frags {
		if fs.TuplesIn == 0 || fs.Batches == 0 {
			t.Errorf("frag %d: zero tuples/batches: %+v", id, fs)
		}
		if fs.Slaves == 0 || len(fs.Degrees) == 0 {
			t.Errorf("frag %d: no slaves/degree history: %+v", id, fs)
		}
	}
}

// TestChromeTraceExport round-trips the system-level Chrome export
// through a JSON decode and checks the trace-viewer contract.
func TestChromeTraceExport(t *testing.T) {
	cfg := xprs.DefaultConfig()
	cfg.Observe = true
	sys := xprs.New(cfg)
	if _, err := sys.Run(observeWorkload(t, sys), xprs.InterAdj, xprs.SchedOptions{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Name string  `json:"name"`
		} `json:"traceEvents"`
		OtherData struct {
			Metrics *xprs.MetricsSnapshot `json:"metrics"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	var spans, metas int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
		case "M":
			metas++
		}
	}
	if spans == 0 || metas == 0 {
		t.Errorf("want complete spans and metadata records, got %d spans, %d metas", spans, metas)
	}
	if doc.OtherData.Metrics == nil {
		t.Fatal("no metrics snapshot embedded")
	}
	if doc.OtherData.Metrics.Get("disk.reads_almost-sequential") == 0 {
		t.Errorf("metrics snapshot missing disk read counters: %v", doc.OtherData.Metrics.Names())
	}

	// A second system without Observe must refuse the export.
	plain := xprs.New(xprs.DefaultConfig())
	if err := plain.WriteChromeTrace(&buf); err == nil {
		t.Error("WriteChromeTrace succeeded without Config.Observe")
	}
}

// TestExplainAnalyzeRenders runs a SQL query on an observed system and
// checks the EXPLAIN ANALYZE text covers plan, fragments, scheduler
// reasons and the IO profile.
func TestExplainAnalyzeRenders(t *testing.T) {
	cfg := xprs.DefaultConfig()
	cfg.Observe = true
	sys := xprs.New(cfg)
	if _, err := sys.CreateScanRelation("ea_r1", 60, 8000); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateScanRelation("ea_r2", 30, 8000); err != nil {
		t.Fatal(err)
	}
	_, res, rep, err := sys.ExecSQLReport(
		"select * from ea_r1, ea_r2 where ea_r1.a = ea_r2.a", xprs.InterAdj)
	if err != nil {
		t.Fatal(err)
	}
	out := xprs.FormatAnalyze(res, rep)
	for _, want := range []string{
		"Execution (virtual time)",
		"degrees=",
		"Scheduler trace:",
		"Disk reads by service mode:",
		"Executor:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}
	if len(rep.Frags) == 0 {
		t.Error("report has no fragment stats")
	}
}
