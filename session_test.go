package xprs

import (
	"maps"
	"strings"
	"testing"
	"time"
)

// TestSubmitMatchesBatch is the refactor's equivalence sweep: a
// pre-declared batch run through the legacy Run entry point and the same
// workload submitted online — each task a single-query Submit at its
// virtual arrival instant — must produce byte-identical per-task Finish
// times and makespan, at every machine width. The two paths drive the
// controller through the same event sequence at the same virtual
// instants; this pins that property.
func TestSubmitMatchesBatch(t *testing.T) {
	const (
		seed   = 7
		nTasks = 8
		maxGap = 2 * time.Second
	)
	for _, procs := range []int{1, 3, 8} {
		cfg := DefaultConfig()
		cfg.NProcs = procs

		// Legacy path: one pre-declared batch with Arrival stamps.
		bsys := New(cfg)
		bspecs, err := StreamSpecs(bsys, seed, nTasks, maxGap)
		if err != nil {
			t.Fatal(err)
		}
		brep, err := bsys.Run(bspecs, InterAdj, SchedOptions{})
		if err != nil {
			t.Fatal(err)
		}

		// Online path: same workload, each task submitted live at its
		// arrival instant.
		osys := New(cfg)
		ospecs, err := StreamSpecs(osys, seed, nTasks, maxGap)
		if err != nil {
			t.Fatal(err)
		}
		var reps []*Report
		err = osys.Serve(InterAdj, SchedOptions{}, Admission{}, func(sc *Scheduler) error {
			base := sc.Now()
			handles := make([]*QueryHandle, 0, len(ospecs))
			for _, sp := range ospecs {
				sc.SleepUntil(base + sp.Arrival)
				sp.Arrival = 0 // the submission instant is the arrival
				h, err := sc.Submit([]TaskSpec{sp})
				if err != nil {
					return err
				}
				handles = append(handles, h)
			}
			for _, h := range handles {
				rep, err := h.Wait()
				if err != nil {
					return err
				}
				reps = append(reps, rep)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}

		finish := make(map[int]time.Duration)
		var makespan time.Duration
		for _, rep := range reps {
			for id, f := range rep.Finish {
				finish[id] = f
			}
			if end := rep.SubmittedAt + rep.Elapsed; end > makespan {
				makespan = end
			}
		}
		if !maps.Equal(finish, brep.Finish) {
			t.Fatalf("procs=%d: online finish times diverge from batch:\nbatch:  %v\nonline: %v",
				procs, brep.Finish, finish)
		}
		if makespan != brep.Elapsed {
			t.Fatalf("procs=%d: online makespan %v != batch elapsed %v", procs, makespan, brep.Elapsed)
		}
	}
}

// admissionPair builds two single-task queries on a fresh system with
// explicit working-set sizes for admission tests.
func admissionPair(t *testing.T, memA, memB int64) (*System, TaskSpec, TaskSpec) {
	t.Helper()
	sys := New(DefaultConfig())
	for _, name := range []string{"adm_a", "adm_b"} {
		if _, err := sys.CreateScanRelation(name, 60, 8000); err != nil {
			t.Fatal(err)
		}
	}
	specA, err := sys.SelectTask(0, "adm_a", 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	specB, err := sys.SelectTask(1, "adm_b", 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	specA.Task.MemBytes = memA
	specB.Task.MemBytes = memB
	return sys, specA, specB
}

// TestAdmissionMemoryBudget submits two queries whose combined working
// set exceeds the admission memory budget: the second must wait in the
// admission queue and start exactly when the first completes and frees
// the budget.
func TestAdmissionMemoryBudget(t *testing.T) {
	const budget = 1 << 20
	sys, specA, specB := admissionPair(t, budget, budget)
	var repA, repB *Report
	err := sys.Serve(InterAdj, SchedOptions{}, Admission{MemoryBudget: budget}, func(sc *Scheduler) error {
		hA, err := sc.Submit([]TaskSpec{specA})
		if err != nil {
			return err
		}
		hB, err := sc.Submit([]TaskSpec{specB})
		if err != nil {
			return err
		}
		if repA, err = hA.Wait(); err != nil {
			return err
		}
		repB, err = hB.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if repA.QueueWait != 0 {
		t.Fatalf("first query queued %v; want immediate admission", repA.QueueWait)
	}
	if repB.QueueWait <= 0 {
		t.Fatal("second query was not queued despite exceeding the memory budget")
	}
	freed := repA.SubmittedAt + repA.Elapsed
	if repB.AdmittedAt != freed {
		t.Fatalf("second query admitted at %v; budget freed at %v", repB.AdmittedAt, freed)
	}
	if repB.QueueWait != repB.AdmittedAt-repB.SubmittedAt {
		t.Fatalf("QueueWait %v inconsistent with SubmittedAt %v / AdmittedAt %v",
			repB.QueueWait, repB.SubmittedAt, repB.AdmittedAt)
	}
}

// TestAdmissionMaxQueries exercises the concurrent-query cap: with
// MaxQueries=1 the second query starts exactly when the first finishes.
func TestAdmissionMaxQueries(t *testing.T) {
	sys, specA, specB := admissionPair(t, 0, 0)
	var repA, repB *Report
	err := sys.Serve(InterAdj, SchedOptions{}, Admission{MaxQueries: 1}, func(sc *Scheduler) error {
		hA, err := sc.Submit([]TaskSpec{specA})
		if err != nil {
			return err
		}
		hB, err := sc.Submit([]TaskSpec{specB})
		if err != nil {
			return err
		}
		if repA, err = hA.Wait(); err != nil {
			return err
		}
		repB, err = hB.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if repB.AdmittedAt != repA.SubmittedAt+repA.Elapsed {
		t.Fatalf("second query admitted at %v; first finished at %v",
			repB.AdmittedAt, repA.SubmittedAt+repA.Elapsed)
	}
}

// TestSubmitAfterServeFails pins drain semantics: the session a Serve
// callback receives is closed once Serve returns, and late Submits are
// rejected rather than stranded.
func TestSubmitAfterServeFails(t *testing.T) {
	sys, specA, _ := admissionPair(t, 0, 0)
	var leaked *Scheduler
	err := sys.Serve(InterAdj, SchedOptions{}, Admission{}, func(sc *Scheduler) error {
		leaked = sc
		h, err := sc.Submit([]TaskSpec{specA})
		if err != nil {
			return err
		}
		_, err = h.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leaked.Submit([]TaskSpec{specA}); err == nil || !strings.Contains(err.Error(), "drained") {
		t.Fatalf("Submit after Serve returned err=%v; want drained error", err)
	}
}

// TestSubmitTaskIDCollision pins the cross-query ID check: a task ID
// still live in one query cannot be reused by another submission.
func TestSubmitTaskIDCollision(t *testing.T) {
	sys, specA, specB := admissionPair(t, 0, 0)
	specB.Task.ID = specA.Task.ID
	err := sys.Serve(InterAdj, SchedOptions{}, Admission{}, func(sc *Scheduler) error {
		hA, err := sc.Submit([]TaskSpec{specA})
		if err != nil {
			return err
		}
		if _, err := sc.Submit([]TaskSpec{specB}); err == nil || !strings.Contains(err.Error(), "already live") {
			t.Fatalf("colliding submit err=%v; want already-live error", err)
		}
		_, err = hA.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Nearest-rank percentile behaviour (including the n=12 p95 fix) is
// pinned in internal/workload's TestPercentileNearestRank — the one
// definition both the stream and serving harnesses now share.
