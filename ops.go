package xprs

// The live ops surface: a tiny HTTP handler over a running system's
// metrics registry and the Go runtime profiles. The handler itself is
// clock-free — it only snapshots the registry — so it can be mounted
// on a Real-clock session ("live" serving) or driven directly in tests
// with httptest. ServeOps binds it to a real listener together with
// net/http/pprof for heap/CPU/goroutine profiling.

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// opsHandler serves the system's operational endpoints:
//
//	/metrics        OpenMetrics text exposition of the metrics registry
//	/healthz        liveness probe (200 "ok")
//
// Requires a system built with Config.Observe; a nil-observer system
// answers 503 on /metrics so a probe distinguishes "unobserved" from
// "down".
func opsHandler(s *System) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		o := s.Observer()
		if o == nil || o.Metrics == nil {
			http.Error(w, "system built without Config.Observe", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		if err := o.Metrics.WriteOpenMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// OpsHandler returns the system's ops HTTP handler (see opsHandler) so
// callers can mount it on their own server or exercise it in tests
// without opening a socket.
func (s *System) OpsHandler() http.Handler { return opsHandler(s) }

// ServeOps serves the ops surface plus the standard pprof profiles on
// addr, blocking like http.ListenAndServe. It uses the host's real
// clock and network stack and is meant for live inspection of a
// long-running serving process; nothing in the virtual-time engine
// depends on it.
func (s *System) ServeOps(addr string) error {
	mux := http.NewServeMux()
	mux.Handle("/", opsHandler(s))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return http.ListenAndServe(addr, mux)
}
