package xprs

// The production-serving experiment behind `xprsbench -fig serve`: an
// open-loop tenant mix (internal/workload) driven through a live
// scheduler session with per-tenant quotas and load shedding. This file
// is the virtual-time harness; servebench.go wraps it in wall-clock
// measurement for BENCH_serve.json.

import (
	"fmt"
	"strings"
	"time"

	"xprs/internal/workload"
)

// Serving result types, re-exported from the workload package so
// callers of the facade never import internals.
type (
	// ServeStats is the outcome of one open-loop serving run, in
	// virtual time.
	ServeStats = workload.ServeStats
	// LatencySummary aggregates one latency sample.
	LatencySummary = workload.LatencySummary
	// SLOClass names a response-time deadline class; sessions draw one
	// seeded-uniformly at submit when ServeOptions.SLOClasses is set.
	SLOClass = workload.SLOClass
)

// ServeOptions sizes one open-loop serving run.
type ServeOptions struct {
	// Sessions is the number of queries submitted.
	Sessions int
	// Tenants and Templates size the catalog (Tenants × Templates
	// selection templates); Tuples is each template relation's rows.
	Tenants   int
	Templates int
	Tuples    int64
	// Rate is the mean arrival rate in queries per virtual second.
	Rate float64
	// Bursty switches the Poisson arrivals to the two-state MMPP
	// (bursts at 8× Rate).
	Bursty bool
	// Adm applies admission limits: quotas, MaxQueued shedding.
	Adm Admission
	// SLOClasses, when non-empty, tags each session with a deadline
	// drawn seeded-uniformly from the classes; the "deadline" admission
	// policy (Admission.Policy) sheds sessions that provably cannot make
	// theirs.
	SLOClasses []SLOClass
	// Seed makes the run a pure function of its inputs.
	Seed int64
}

// withDefaults fills unset fields with the experiment's defaults.
func (o ServeOptions) withDefaults() ServeOptions {
	if o.Sessions <= 0 {
		o.Sessions = 1000
	}
	if o.Tenants <= 0 {
		o.Tenants = 4
	}
	if o.Templates <= 0 {
		o.Templates = 2
	}
	if o.Tuples <= 0 {
		o.Tuples = 300
	}
	if o.Rate <= 0 {
		o.Rate = 4
	}
	if o.Seed == 0 {
		o.Seed = 1992
	}
	return o
}

// RunServe builds the tenant catalog on a fresh system and drives the
// open-loop arrival schedule through one scheduler session. All
// reported statistics are virtual time, so for a fixed cfg and options
// the result is byte-identical at any GOMAXPROCS and any intake shard
// count — including with Config.Observe on, with or without trace
// sampling (Admission.TraceSampleOneIn): instrumentation is invisible
// in the stats.
func RunServe(cfg Config, o ServeOptions) (*ServeStats, error) {
	stats, _, err := RunServeSystem(cfg, o)
	return stats, err
}

// RunServeSystem is RunServe returning the system too, so callers can
// inspect the observer (span retention, drop counts, OpenMetrics) after
// the run.
func RunServeSystem(cfg Config, o ServeOptions) (*ServeStats, *System, error) {
	o = o.withDefaults()
	s := New(cfg)
	cat, err := workload.BuildTenantCatalog(s.store, s.params, workload.TenantMix{
		Tenants:    o.Tenants,
		Templates:  o.Templates,
		Tuples:     o.Tuples,
		SLOClasses: o.SLOClasses,
	}, o.Seed)
	if err != nil {
		return nil, nil, err
	}
	var arr workload.ArrivalProcess
	if o.Bursty {
		arr = workload.NewBursty(o.Seed+1, o.Rate, o.Rate*8, 0.05, 0.25)
	} else {
		arr = workload.NewPoisson(o.Seed+1, o.Rate)
	}
	var stats *ServeStats
	err = s.Serve(InterAdj, SchedOptions{}, o.Adm, func(sc *Scheduler) error {
		var err error
		stats, err = workload.RunOpenLoop(s.clock, sc.inner, cat, arr, o.Sessions, o.Seed+2)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return stats, s, nil
}

// FormatServe renders one serving run.
func FormatServe(o ServeOptions, st *ServeStats) string {
	o = o.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "Open-loop serving: %d sessions, %d tenants × %d templates, %.1f q/s",
		o.Sessions, o.Tenants, o.Templates, o.Rate)
	if o.Bursty {
		b.WriteString(" (bursty)")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  completed %d, shed %d", st.Completed, st.Shed)
	if st.DeadlineShed > 0 {
		fmt.Fprintf(&b, " (%d hopeless-deadline)", st.DeadlineShed)
	}
	fmt.Fprintf(&b, "; virtual throughput %.2f q/s over %.1fs makespan\n",
		st.Throughput, st.Makespan.Seconds())
	fmt.Fprintf(&b, "  response  mean %.2fs  p50 %.2fs  p95 %.2fs  max %.2fs\n",
		st.Response.Mean.Seconds(), st.Response.P50.Seconds(),
		st.Response.P95.Seconds(), st.Response.Max.Seconds())
	fmt.Fprintf(&b, "  queue wait mean %.2fs  p95 %.2fs\n",
		st.QueueWait.Mean.Seconds(), st.QueueWait.P95.Seconds())
	if n := len(st.Timeline.Windows); n > 0 {
		fmt.Fprintf(&b, "  timeline  %d windows × %.1fs (%d evicted)\n",
			n, (time.Duration(st.Timeline.WindowNs)).Seconds(), st.Timeline.Evicted)
	}
	for _, t := range st.TenantSLO {
		name := t.Tenant
		if name == "" {
			name = "default"
		}
		fmt.Fprintf(&b, "  slo %-8s completed %4d shed %3d  p50 %6.2fs p95 %6.2fs p99 %6.2fs",
			name, t.Completed, t.Shed,
			(time.Duration(t.RespP50Ns)).Seconds(),
			(time.Duration(t.RespP95Ns)).Seconds(),
			(time.Duration(t.RespP99Ns)).Seconds())
		if t.TargetNs > 0 {
			fmt.Fprintf(&b, "  target %.2fs breached %d (%.1f%%)",
				(time.Duration(t.TargetNs)).Seconds(), t.Breached, float64(t.BurnPermille)/10)
		}
		b.WriteString("\n")
	}
	return b.String()
}
