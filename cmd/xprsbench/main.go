// Command xprsbench regenerates every table and figure of the paper's
// evaluation on the simulated machine.
//
// Usage:
//
//	xprsbench -fig 7            # the Figure 7 scheduling experiment
//	xprsbench -fig 3            # IO/CPU classification table
//	xprsbench -fig 4            # IO-CPU balance points
//	xprsbench -fig balance-seq  # §2.3 effective bandwidth of seq pairs
//	xprsbench -fig table1       # §3 task-type IO rates
//	xprsbench -fig sec4         # §4 optimizer comparison
//	xprsbench -fig ablations    # pairing / SJF ablations
//	xprsbench -fig pipeline     # batch-pipeline wall-clock benchmark
//	xprsbench -fig join         # join/sort kernel benchmark -> BENCH_join.json
//	xprsbench -fig serve        # open-loop serving benchmark -> BENCH_serve.json
//	xprsbench -fig all          # everything
//
// Flags -seed, -procs and -disks size the experiment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"xprs"
)

func main() {
	fig := flag.String("fig", "all", "which figure/table to regenerate: 3, 4, 7, table1, balance-seq, sec4, stream, ablations, pipeline, join, serve, all")
	seed := flag.Int64("seed", 1992, "workload seed")
	procs := flag.Int("procs", 8, "number of processors")
	disks := flag.Int("disks", 4, "number of disks")
	batch := flag.Int("batch", 0, "executor batch size (0 = default)")
	// 30 iterations matches TestPipelineAllocGate: enough ops that a
	// stray mid-run GC emptying a sync.Pool does not dominate allocs/op.
	iters := flag.Int("iters", 30, "iterations for the pipeline benchmark")
	out := flag.String("out", "BENCH_pipeline.json", "output file for the pipeline benchmark")
	joinIters := flag.Int("joiniters", 40, "iterations for the join-kernel benchmark")
	joinOut := flag.String("joinout", "BENCH_join.json", "output file for the join-kernel benchmark")
	streamOut := flag.String("streamout", "BENCH_stream.json", "output file for the stream benchmark")
	streamN := flag.Int("streamn", 16, "number of tasks in the stream benchmark")
	streamMaxQ := flag.Int("streammaxq", 2, "admission concurrent-query cap for the limited stream run")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) of one observed pipeline query to this file (with -fig pipeline)")
	traceBudget := flag.Int("tracebudget", 65536, "span-store capacity for -trace: the tracer keeps the most recent N spans and counts the rest as dropped (0 = unbounded)")
	serveOut := flag.String("serveout", "BENCH_serve.json", "output file for the serving benchmark")
	serveSessions := flag.String("servesessions", "", "comma-separated session counts for the serving grid (default 1000,10000,100000)")
	serveProcs := flag.String("serveprocs", "", "comma-separated GOMAXPROCS values for the serving benchmark (default 1,4,8)")
	intakeOps := flag.Int("intakeops", 0, "Submits per intake-ablation measurement (0 = default)")
	flag.Parse()

	cfg := xprs.DefaultConfig()
	cfg.NProcs = *procs
	cfg.Disk.NumDisks = *disks
	cfg.BatchSize = *batch

	run := func(name string, fn func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "xprsbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("3", func() error {
		fmt.Print(xprs.FormatFig3(xprs.Fig3Classification(cfg)))
		return nil
	})
	run("4", func() error {
		fmt.Print(xprs.FormatFig4(xprs.Fig4BalancePoints(cfg)))
		return nil
	})
	run("table1", func() error {
		fmt.Print(xprs.FormatTable1(xprs.Table1TaskRates()))
		return nil
	})
	run("balance-seq", func() error {
		fmt.Print(xprs.FormatSeqSeq(xprs.SeqSeqEffectiveBandwidth(cfg)))
		return nil
	})
	run("7", func() error {
		res, err := xprs.RunFig7(cfg, *seed)
		if err != nil {
			return err
		}
		fmt.Print(xprs.FormatFig7(res))
		return nil
	})
	run("sec4", func() error {
		rows, err := xprs.RunSec4(cfg, []int{3, 4, 5}, *seed)
		if err != nil {
			return err
		}
		fmt.Print(xprs.FormatSec4(rows))
		return nil
	})
	run("stream", func() error {
		// Two passes through the online submission path: admission wide
		// open, then capped at -streammaxq concurrent queries so the
		// queue-wait columns are exercised.
		open, err := xprs.RunStream(cfg, *seed, *streamN, 2e9, xprs.SchedOptions{}, xprs.Admission{})
		if err != nil {
			return err
		}
		fmt.Print(xprs.FormatStream(open))
		limited, err := xprs.RunStream(cfg, *seed, *streamN, 2e9, xprs.SchedOptions{},
			xprs.Admission{MaxQueries: *streamMaxQ})
		if err != nil {
			return err
		}
		fmt.Printf("\nwith admission cap of %d concurrent queries:\n", *streamMaxQ)
		fmt.Print(xprs.FormatStream(limited))
		abl, err := xprs.RunPolicyAblation(cfg, xprs.PolicyAblationOptions{})
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(xprs.FormatPolicyAblation(abl))
		payload := struct {
			Seed           int64                `json:"seed"`
			Tasks          int                  `json:"tasks"`
			MaxQueries     int                  `json:"admission_max_queries"`
			Open           []xprs.StreamRow     `json:"open"`
			Limited        []xprs.StreamRow     `json:"limited"`
			PolicyAblation *xprs.PolicyAblation `json:"policy_ablation"`
		}{Seed: *seed, Tasks: *streamN, MaxQueries: *streamMaxQ, Open: open, Limited: limited, PolicyAblation: abl}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*streamOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("stream: %d tasks via online Submit -> %s\n", *streamN, *streamOut)
		return nil
	})
	run("ablations", func() error {
		rows, err := xprs.RunAblations(cfg, *seed)
		if err != nil {
			return err
		}
		fmt.Print(xprs.FormatAblations(rows))
		return nil
	})
	run("pipeline", func() error {
		res, err := xprs.MeasurePipeline(cfg, *iters)
		if err != nil {
			return err
		}
		// The ablation partner: the identical benchmark with the executor
		// forced onto row-at-a-time batches, so the file always carries a
		// like-for-like columnar-vs-row comparison on the current build.
		rcfg := cfg
		rcfg.RowBatches = true
		rowRes, err := xprs.MeasurePipeline(rcfg, *iters)
		if err != nil {
			return err
		}
		// One extra observed run of the same query supplies the metrics
		// snapshot for the payload and, with -trace, the Chrome trace.
		// MeasurePipeline itself stays unobserved so the perf numbers are
		// not diluted by trace appends.
		ocfg := cfg
		ocfg.Observe = true
		ocfg.TraceBudget = *traceBudget
		osys, err := xprs.NewPipelineBenchSystem(ocfg)
		if err != nil {
			return err
		}
		if _, _, err := xprs.RunPipelineBenchQuery(osys); err != nil {
			return err
		}
		snap := osys.Observer().Metrics.Snapshot()
		// The tuple-at-a-time executor's numbers on the same canonical
		// query (recorded before the batch pipeline landed), kept in the
		// file so regressions are visible without digging through git.
		payload := struct {
			*xprs.PipelineBenchResult
			Baseline struct {
				NsPerOp     float64 `json:"ns_per_op"`
				AllocsPerOp float64 `json:"allocs_per_op"`
				BytesPerOp  float64 `json:"bytes_per_op"`
			} `json:"tuple_at_a_time_baseline"`
			Ablation struct {
				Columnar *xprs.PipelineBenchResult `json:"columnar"`
				Row      *xprs.PipelineBenchResult `json:"row"`
				Speedup  float64                   `json:"columnar_speedup"`
			} `json:"columnar_vs_row"`
			BufferHitRate float64              `json:"buffer_hit_rate"`
			Repartitions  int64                `json:"repartitions"`
			Metrics       xprs.MetricsSnapshot `json:"metrics"`
		}{PipelineBenchResult: res, Metrics: snap}
		payload.Baseline.NsPerOp = 17108129
		payload.Baseline.AllocsPerOp = 128017
		payload.Baseline.BytesPerOp = 10026465
		payload.Ablation.Columnar = res
		payload.Ablation.Row = rowRes
		if res.NsPerOp > 0 {
			payload.Ablation.Speedup = rowRes.NsPerOp / res.NsPerOp
		}
		hits, misses := snap.Get("bufferpool.hits"), snap.Get("bufferpool.misses")
		if hits+misses > 0 {
			payload.BufferHitRate = float64(hits) / float64(hits+misses)
		}
		payload.Repartitions = snap.Get("exec.repartitions")
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				return err
			}
			if err := osys.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			tr := osys.Observer().Trace
			fmt.Printf("pipeline: Chrome trace -> %s (%d spans kept, %d dropped by -tracebudget %d)\n",
				*trace, tr.Len(), tr.Dropped(), *traceBudget)
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		eff := cfg.BatchSize
		if eff <= 0 {
			eff = xprs.DefaultBatchSize
		}
		fmt.Printf("pipeline: %.0f tuples/s, %.0f ns/op, %.0f allocs/op, %.0f B/op (batch=%d) -> %s\n",
			res.TuplesPerSec, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, eff, *out)
		fmt.Printf("pipeline: columnar vs row: %.0f vs %.0f ns/op (%.2fx), %.0f vs %.0f allocs/op\n",
			res.NsPerOp, rowRes.NsPerOp, payload.Ablation.Speedup, res.AllocsPerOp, rowRes.AllocsPerOp)
		return nil
	})
	run("join", func() error {
		res, err := xprs.MeasureJoin(cfg, *joinIters)
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*joinOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("join: build+probe %.2fx (%.0f -> %.0f ns), sort %.2fx (%.0f -> %.0f ns) -> %s\n",
			res.BuildProbeSpeedup, res.BaselineBuildProbeNs, res.KernelBuildProbeNs,
			res.SortSpeedup, res.BaselineSortNs, res.KernelSortNs, *joinOut)
		return nil
	})
	run("serve", func() error {
		opts := xprs.ServeBenchOptions{IntakeOps: *intakeOps}
		var err error
		if opts.SessionCounts, err = parseInts(*serveSessions); err != nil {
			return fmt.Errorf("-servesessions: %w", err)
		}
		if opts.Procs, err = parseInts(*serveProcs); err != nil {
			return fmt.Errorf("-serveprocs: %w", err)
		}
		res, err := xprs.MeasureServe(cfg, opts)
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*serveOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		for _, row := range res.Grid {
			fmt.Printf("serve: %7d sessions @ GOMAXPROCS %d: %8.1f ms wall (%8.0f sessions/s), virtual p95 response %.2fs, shed %d\n",
				row.Sessions, row.Procs, row.WallMs, row.WallQPS,
				row.Stats.Response.P95.Seconds(), row.Stats.Shed)
		}
		for _, row := range res.Intake {
			kind := "sharded"
			if row.Serial {
				kind = "serial "
			}
			fmt.Printf("serve: intake %s @ GOMAXPROCS %d: %6.0f ns/op, %9.0f submits/s\n",
				kind, row.Procs, row.NsPerOp, row.QPS)
		}
		if ob := res.Observed; ob != nil {
			fmt.Printf("serve: observed %d sessions (1-in-%d sampling, %d-span budget): %d spans kept, %d dropped, stats match: %v\n",
				ob.Sessions, ob.SampleOneIn, ob.SpanBudget, ob.SpansKept, ob.SpansDropped, ob.StatsMatch)
		}
		if res.IntakeSpeedup4 > 0 {
			fmt.Printf("serve: sharded intake speedup GOMAXPROCS 4 vs 1: %.2fx -> %s\n",
				res.IntakeSpeedup4, *serveOut)
		} else {
			fmt.Printf("serve: wrote %s (speedup needs GOMAXPROCS 1 and 4 in -serveprocs)\n", *serveOut)
		}
		if res.PolicyAblation != nil {
			fmt.Print(xprs.FormatPolicyAblation(res.PolicyAblation))
		}
		// The largest run's timeline and per-tenant SLO view — the same
		// rendering xprstop uses against the exported JSON.
		if n := len(res.Grid); n > 0 {
			last := res.Grid[n-1]
			fmt.Print(xprs.FormatServe(xprs.ServeOptions{
				Sessions: last.Sessions, Tenants: res.Tenants,
				Templates: res.Templates, Rate: res.Rate,
			}, last.Stats))
		}
		return nil
	})
}

// parseInts parses a comma-separated integer list; empty means nil
// (the benchmark's defaults).
func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
