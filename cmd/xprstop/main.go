// Command xprstop renders the serving telemetry — the windowed
// timeline and the per-tenant SLO table — the way top renders a
// process table. It reads the exported BENCH_serve.json by default, or
// drives a fresh live serving run with -run.
//
// Usage:
//
//	xprstop                          # render BENCH_serve.json
//	xprstop -in other.json           # render another export
//	xprstop -run -sessions 5000      # drive a live run and render it
//	xprstop -run -ops :8089          # ...then serve /metrics and pprof
//
// With -run the system is built observed (sampled tracing under a
// bounded span budget), so -ops can expose the OpenMetrics registry
// and the Go profiles of the process afterwards.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"xprs"
)

func main() {
	in := flag.String("in", "BENCH_serve.json", "exported serving benchmark to render")
	run := flag.Bool("run", false, "drive a fresh live serving run instead of reading -in")
	sessions := flag.Int("sessions", 2000, "sessions for -run")
	tenants := flag.Int("tenants", 6, "tenants for -run")
	rate := flag.Float64("rate", 6, "arrival rate (queries per virtual second) for -run")
	seed := flag.Int64("seed", 1992, "seed for -run")
	sloMs := flag.Int("slo", 2000, "per-tenant response SLO target in milliseconds for -run (0 = none)")
	sample := flag.Int("sample", 16, "trace 1 in N queries for -run (<=1 = all)")
	budget := flag.Int("budget", 4096, "span-store budget for -run (0 = unbounded)")
	windows := flag.Int("windows", 0, "max timeline rows to print (0 = all)")
	ops := flag.String("ops", "", "after -run, serve /metrics (OpenMetrics) and /debug/pprof on this address until interrupted")
	flag.Parse()

	if err := realMain(*in, *run, *sessions, *tenants, *rate, *seed, *sloMs, *sample, *budget, *windows, *ops); err != nil {
		fmt.Fprintf(os.Stderr, "xprstop: %v\n", err)
		os.Exit(1)
	}
}

func realMain(in string, run bool, sessions, tenants int, rate float64, seed int64, sloMs, sample, budget, windows int, ops string) error {
	var stats *xprs.ServeStats
	var abl *xprs.PolicyAblation
	var title string

	if run {
		cfg := xprs.DefaultConfig()
		cfg.Observe = true
		cfg.TraceBudget = budget
		opts := xprs.ServeOptions{
			Sessions: sessions,
			Tenants:  tenants,
			Rate:     rate,
			Seed:     seed,
			Adm: xprs.Admission{
				MaxQueries:       16,
				TenantMaxQueries: 8,
				MaxQueued:        1000,
				SLOTarget:        time.Duration(sloMs) * time.Millisecond,
				TraceSampleOneIn: sample,
			},
		}
		st, sys, err := xprs.RunServeSystem(cfg, opts)
		if err != nil {
			return err
		}
		stats = st
		title = fmt.Sprintf("live run: %d sessions, %d tenants, %.1f q/s (seed %d)",
			sessions, tenants, rate, seed)
		tr := sys.Observer().Trace
		defer func() {
			fmt.Printf("\nspans: %d kept, %d dropped (1-in-%d sampling, budget %d)\n",
				tr.Len(), tr.Dropped(), sample, budget)
			if ops != "" {
				fmt.Printf("ops surface on %s (/metrics, /healthz, /debug/pprof) — ctrl-C to stop\n", ops)
				if err := sys.ServeOps(ops); err != nil {
					fmt.Fprintf(os.Stderr, "xprstop: ops listener: %v\n", err)
				}
			}
		}()
	} else {
		data, err := os.ReadFile(in)
		if err != nil {
			return err
		}
		var res xprs.ServeBenchResult
		if err := json.Unmarshal(data, &res); err != nil {
			return fmt.Errorf("%s: %w", in, err)
		}
		if len(res.Grid) == 0 {
			return fmt.Errorf("%s: no serving grid rows", in)
		}
		// The grid repeats each session count per GOMAXPROCS with
		// identical stats; render the largest run once.
		row := res.Grid[len(res.Grid)-1]
		stats = row.Stats
		abl = res.PolicyAblation
		title = fmt.Sprintf("%s: %d sessions, %d tenants, %.1f q/s",
			in, row.Sessions, res.Tenants, res.Rate)
		if ob := res.Observed; ob != nil {
			defer fmt.Printf("\nobserved ablation: %d sessions, 1-in-%d sampling, %d/%d spans kept (%d dropped), stats match: %v\n",
				ob.Sessions, ob.SampleOneIn, ob.SpansKept, ob.SpanBudget, ob.SpansDropped, ob.StatsMatch)
		}
	}

	fmt.Println(title)
	fmt.Printf("completed %d  shed %d  throughput %.2f q/s  makespan %.1fs\n\n",
		stats.Completed, stats.Shed, stats.Throughput, stats.Makespan.Seconds())
	renderTimeline(stats.Timeline, windows)
	renderTenants(stats.TenantSLO)
	if abl != nil {
		fmt.Println()
		fmt.Print(xprs.FormatPolicyAblation(abl))
	}
	return nil
}

// renderTimeline prints one row per telemetry window: admission flow
// counters, the last queue-depth/running gauges, and the window's p95
// response estimate off its histogram snapshot.
func renderTimeline(tl xprs.SeriesSnapshot, maxRows int) {
	if len(tl.Windows) == 0 {
		fmt.Println("no timeline windows")
		return
	}
	win := time.Duration(tl.WindowNs)
	fmt.Printf("timeline: %d windows × %s (%d evicted, %d late)\n",
		len(tl.Windows), win, tl.Evicted, tl.Late)
	fmt.Printf("%8s %6s %6s %5s %6s %6s %5s %9s\n",
		"t", "submit", "admit", "shed", "done", "queued", "run", "p95 resp")
	rows := tl.Windows
	if maxRows > 0 && len(rows) > maxRows {
		fmt.Printf("  ... %d earlier windows elided by -windows\n", len(rows)-maxRows)
		rows = rows[len(rows)-maxRows:]
	}
	for _, w := range rows {
		p95 := "-"
		if h, ok := w.Dists["response_us"]; ok && h.Count > 0 {
			p95 = (time.Duration(h.P95) * time.Microsecond).String()
		}
		var queued, running int64
		if g, ok := w.Gauges["admit_queue"]; ok {
			queued = g.Last
		}
		if g, ok := w.Gauges["running"]; ok {
			running = g.Last
		}
		fmt.Printf("%7.0fs %6d %6d %5d %6d %6d %5d %9s\n",
			(time.Duration(w.StartNs)).Seconds(),
			w.Counters["submitted"], w.Counters["admitted"],
			w.Counters["shed"], w.Counters["completed"],
			queued, running, p95)
	}
	fmt.Println()
}

// renderTenants prints the per-tenant SLO table sorted by burn rate
// (worst first), then name.
func renderTenants(slos []xprs.TenantSLO) {
	if len(slos) == 0 {
		fmt.Println("no tenant SLO data")
		return
	}
	rows := make([]xprs.TenantSLO, len(slos))
	copy(rows, slos)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].BurnPermille != rows[j].BurnPermille {
			return rows[i].BurnPermille > rows[j].BurnPermille
		}
		return rows[i].Tenant < rows[j].Tenant
	})
	fmt.Printf("%-8s %5s %5s %9s %9s %9s %8s %8s %6s\n",
		"tenant", "done", "shed", "p50", "p95", "p99", "target", "breached", "burn")
	for _, t := range rows {
		target, breached, burn := "-", "-", "-"
		if t.TargetNs > 0 {
			target = (time.Duration(t.TargetNs)).String()
			breached = fmt.Sprintf("%d", t.Breached)
			burn = fmt.Sprintf("%.1f%%", float64(t.BurnPermille)/10)
		}
		fmt.Printf("%-8s %5d %5d %9s %9s %9s %8s %8s %6s\n",
			t.Tenant, t.Completed, t.Shed,
			time.Duration(t.RespP50Ns).String(),
			time.Duration(t.RespP95Ns).String(),
			time.Duration(t.RespP99Ns).String(),
			target, breached, burn)
	}
}
