// Command xprsql is a tiny interactive SQL shell over the XPRS engine.
// It loads a demo database (orders/items/customers with mixed scan
// profiles), builds an index on orders.a, and executes SELECT statements
// through the bushy/parcost optimizer and the adaptive scheduler.
//
// Usage:
//
//	xprsql 'select * from orders where a between 10 and 20'
//	xprsql 'explain analyze select * from orders, items where orders.a = items.a'
//	echo 'select * from orders, items where orders.a = items.a' | xprsql
//	xprsql            # interactive prompt
//
// Prefixing a statement with "explain analyze" executes it and prints
// the per-fragment execution profile (virtual wall time, degree history,
// repartitions, tuple counts), the scheduler's decision trace, and the
// disk/buffer profile instead of the result rows.
//
// Prefixing a statement with "batches" executes it and prints batch
// diagnostics: the batch layout and size, the per-column on-page widths
// of every base relation the plan reads, and the observed
// selection-vector density (the fraction of scanned rows that survive
// residual predicate chains). The -row flag forces the executor onto
// row-at-a-time batches for comparison.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"xprs"
	"xprs/internal/plan"
	"xprs/internal/storage"
)

func main() {
	rowMode := flag.Bool("row", false, "force row-at-a-time batches (default columnar)")
	flag.Parse()
	cfg := xprs.DefaultConfig()
	cfg.Observe = true // enables EXPLAIN ANALYZE metrics; results unchanged
	cfg.RowBatches = *rowMode
	if *rowMode {
		layoutName = "row"
	}
	sys := xprs.New(cfg)
	if err := loadDemo(sys); err != nil {
		fmt.Fprintln(os.Stderr, "xprsql:", err)
		os.Exit(1)
	}

	if args := flag.Args(); len(args) > 0 {
		for _, stmt := range args {
			if err := run(sys, stmt); err != nil {
				fmt.Fprintln(os.Stderr, "xprsql:", err)
				os.Exit(1)
			}
		}
		return
	}

	fmt.Println("xprsql — tables: orders(a,b) [indexed], items(a,b), customers(a,b)")
	fmt.Println(`try: select * from orders, items where orders.a = items.a and orders.a < 50`)
	fmt.Println(`     select items.a, count(*) from items group by a`)
	fmt.Println(`     explain analyze select * from customers, items where customers.a = items.a`)
	fmt.Println(`     batches select * from orders, items where orders.a = items.a and items.a < 500`)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("xprs> ")
	for sc.Scan() {
		stmt := strings.TrimSpace(sc.Text())
		if stmt == "" {
			fmt.Print("xprs> ")
			continue
		}
		if strings.EqualFold(stmt, "quit") || strings.EqualFold(stmt, "exit") {
			return
		}
		if err := run(sys, stmt); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		fmt.Print("xprs> ")
	}
}

func loadDemo(sys *xprs.System) error {
	// orders: 4000 ids, moderate tuples; items: 3000 rows referencing
	// order ids; customers: large IO-bound tuples.
	if _, err := sys.CreateScanRelation("customers", 60, 3000); err != nil {
		return err
	}
	orders := make([]struct {
		A int32
		B string
	}, 4000)
	for i := range orders {
		orders[i].A = int32(i)
		orders[i].B = fmt.Sprintf("order-%04d", i)
	}
	if _, err := sys.LoadRelation("orders", orders); err != nil {
		return err
	}
	items := make([]struct {
		A int32
		B string
	}, 3000)
	for i := range items {
		items[i].A = int32(i) % 1000
		items[i].B = fmt.Sprintf("item-%04d", i)
	}
	if _, err := sys.LoadRelation("items", items); err != nil {
		return err
	}
	_, err := sys.BuildIndex("orders", false)
	return err
}

// layoutName names the batch layout the shell was started with; set
// once in main from the -row flag.
var layoutName = "columnar"

func run(sys *xprs.System, stmt string) error {
	if rest, ok := cutAnalyze(stmt); ok {
		_, pl, rep, err := sys.ExecSQLReport(rest, xprs.InterAdj)
		if err != nil {
			return err
		}
		fmt.Print(xprs.FormatAnalyze(pl, rep))
		return nil
	}
	if rest, ok := cutPrefix(stmt, "batches"); ok {
		return runBatches(sys, rest)
	}
	res, pl, err := sys.ExecSQL(stmt, xprs.InterAdj)
	if err != nil {
		return err
	}
	fmt.Printf("-- plan (seqcost %.2fs, parcost %.2fs, batch %d):\n%s",
		pl.SeqCost, pl.ParCost, sys.BatchSize(), xprs.ExplainPlan(pl))
	n := res.Len()
	for i, t := range res.Tuples() {
		if i >= 10 {
			fmt.Printf("... (%d more rows)\n", n-10)
			break
		}
		var cells []string
		for _, v := range t.Vals {
			cells = append(cells, v.String())
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("(%d rows)\n", n)
	return nil
}

// runBatches executes the statement and prints batch diagnostics
// instead of result rows: the layout and batch size, the per-column
// on-page widths of every base relation the plan scans, and the
// observed selection-vector density across residual predicate chains
// (from the exec.sel_rows_* counters, diffed around the run so earlier
// statements in the session do not pollute the ratio).
func runBatches(sys *xprs.System, stmt string) error {
	before := sys.Observer().Metrics.Snapshot()
	res, pl, err := sys.ExecSQL(stmt, xprs.InterAdj)
	if err != nil {
		return err
	}
	after := sys.Observer().Metrics.Snapshot()
	fmt.Printf("-- batch diagnostics (layout %s, batch %d, %d result rows)\n",
		layoutName, sys.BatchSize(), res.Len())
	seen := make(map[*storage.Relation]bool)
	plan.Walk(pl.Plan, func(n plan.Node) {
		var rel *storage.Relation
		switch x := n.(type) {
		case *plan.SeqScan:
			rel = x.Rel
		case *plan.IndexScan:
			rel = x.Rel
		}
		if rel == nil || seen[rel] {
			return
		}
		seen[rel] = true
		st := rel.Stats()
		fmt.Printf("--  %s: %d tuples, avg %.1f B/tuple, column widths:\n",
			rel.Name, st.NTuples, st.AvgTupleSize)
		for i, c := range rel.Schema.Cols {
			var w float64
			if i < len(st.Cols) {
				w = st.Cols[i].AvgWidth
			}
			fmt.Printf("--    %-8s %-5s %6.1f B\n", c.Name, c.Typ, w)
		}
	})
	in := after.Get("exec.sel_rows_in") - before.Get("exec.sel_rows_in")
	out := after.Get("exec.sel_rows_out") - before.Get("exec.sel_rows_out")
	if in > 0 {
		fmt.Printf("--  selection vectors: %d of %d rows pass residual predicates (density %.1f%%)\n",
			out, in, 100*float64(out)/float64(in))
	} else {
		fmt.Println("--  selection vectors: no residual predicate chains (filters pushed into scans, or row layout)")
	}
	return nil
}

// cutAnalyze strips a case-insensitive "explain analyze" prefix,
// reporting whether the statement had one.
func cutAnalyze(stmt string) (string, bool) {
	fields := strings.Fields(stmt)
	if len(fields) < 3 ||
		!strings.EqualFold(fields[0], "explain") ||
		!strings.EqualFold(fields[1], "analyze") {
		return stmt, false
	}
	return strings.Join(fields[2:], " "), true
}

// cutPrefix strips a case-insensitive one-word prefix, reporting
// whether the statement had one.
func cutPrefix(stmt, word string) (string, bool) {
	fields := strings.Fields(stmt)
	if len(fields) < 2 || !strings.EqualFold(fields[0], word) {
		return stmt, false
	}
	return strings.Join(fields[1:], " "), true
}
