// Command xprsvet runs the repo's determinism analyzer suite
// (internal/lint): vclockpurity, obsnoclock, maporder, atomicmix,
// poollifetime, lockorder, policypurity, tracegate and allowaudit.
// It supports two modes:
//
// Standalone (what `make lint` runs):
//
//	xprsvet ./...
//	xprsvet -json ./...
//
// loads the named packages with `go list -export`, typechecks them
// from source, runs every analyzer and prints findings as
// file:line:col: message [analyzer], or with -json as a JSON array of
// {file, line, col, analyzer, message} objects for CI annotation.
// Exit status 1 means findings.
//
// Vet-tool protocol:
//
//	go build -o /tmp/xprsvet ./cmd/xprsvet
//	go vet -vettool=/tmp/xprsvet ./...
//
// When invoked by cmd/go, the single positional argument is a
// *.cfg JSON file describing one compilation unit (the unitchecker
// protocol); xprsvet typechecks that unit against the export data the
// go command already built and reports findings on stderr with exit
// status 2, which `go vet` relays per package.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"xprs/internal/lint"
)

func main() {
	// cmd/go probes vet tools with `-flags` to learn which options they
	// accept; xprsvet takes none beyond the protocol's own.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	printVersion := flag.String("V", "", "print version and exit (vet-tool protocol)")
	jsonOut := flag.Bool("json", false, "standalone mode: print findings as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xprsvet [package pattern ...]   (default ./...)\n")
		fmt.Fprintf(os.Stderr, "   or: go vet -vettool=$(which xprsvet) ./...\n\nAnalyzers:\n")
		for _, a := range lint.Suite {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *printVersion != "" {
		// cmd/go caches vet results keyed on this line.
		fmt.Println("xprsvet version v1.0.0 buildID=xprsvet-determinism-suite")
		return
	}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	os.Exit(runStandalone(args, *jsonOut))
}

func runStandalone(patterns []string, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xprsvet:", err)
		return 1
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xprsvet:", err)
		return 1
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.Suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xprsvet:", err)
		return 1
	}
	if jsonOut {
		out, err := lint.DiagnosticsJSON(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xprsvet:", err)
			return 1
		}
		os.Stdout.Write(append(out, '\n'))
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "xprsvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// unitConfig is the JSON schema cmd/go writes for vet tools (the
// golang.org/x/tools unitchecker protocol). Only the fields xprsvet
// needs are declared.
type unitConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// runUnit analyzes one compilation unit under `go vet -vettool=`.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xprsvet:", err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "xprsvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Test variants arrive as "path [path.test]"; analyze them under
	// their real import path so the governed-package rules apply.
	if i := strings.Index(cfg.ImportPath, " ["); i >= 0 {
		cfg.ImportPath = cfg.ImportPath[:i]
	}
	// The go command expects the facts file regardless of outcome.
	// xprsvet's analyzers are package-local and export no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("xprsvet: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "xprsvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xprsvet: %v\n", err)
			return 1
		}
		syntax = append(syntax, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, syntax, info)
	if err != nil {
		// Let the compiler report type errors; vet tools stay quiet.
		return 0
	}
	pkg := &lint.Package{
		PkgPath:   cfg.ImportPath,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, lint.Suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xprsvet:", err)
		return 1
	}
	reported := 0
	for _, d := range diags {
		// The invariants guard engine code; tests host-time and
		// randomize on purpose (watchdogs, fuzz seeds), so _test.go
		// findings are dropped — matching standalone mode, which never
		// loads test files.
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		reported++
	}
	if reported > 0 {
		return 2
	}
	return 0
}
