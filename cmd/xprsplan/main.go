// Command xprsplan is the EXPLAIN tool: it builds a k-way chain-join
// query with mixed IO/CPU scan profiles, optimizes it under a chosen
// configuration, and prints the sequential plan, its fragment graph,
// and the predicted schedule.
//
// Usage:
//
//	xprsplan -rels 4 -shape bushy -cost parcost
package main

import (
	"flag"
	"fmt"
	"os"

	"xprs"
	"xprs/internal/cost"
	"xprs/internal/workload"
)

func main() {
	rels := flag.Int("rels", 4, "number of relations in the chain join (2..8)")
	shape := flag.String("shape", "bushy", "plan space: left-deep or bushy")
	costFn := flag.String("cost", "parcost", "cost function: seqcost or parcost")
	ntuples := flag.Int64("tuples", 2000, "tuples per relation")
	seed := flag.Int64("seed", 11, "relation profile seed")
	flag.Parse()

	if *rels < 2 || *rels > 8 {
		fmt.Fprintln(os.Stderr, "xprsplan: -rels must be in 2..8")
		os.Exit(2)
	}
	opts := xprs.OptOptions{}
	switch *shape {
	case "left-deep":
		opts.Shape = xprs.LeftDeep
	case "bushy":
		opts.Shape = xprs.Bushy
	default:
		fmt.Fprintln(os.Stderr, "xprsplan: unknown -shape")
		os.Exit(2)
	}
	switch *costFn {
	case "seqcost":
		opts.Cost = xprs.SeqCost
	case "parcost":
		opts.Cost = xprs.ParCost
	default:
		fmt.Fprintln(os.Stderr, "xprsplan: unknown -cost")
		os.Exit(2)
	}

	s := xprs.New(xprs.DefaultConfig())
	cj, err := workload.BuildChainJoin(s.Store(), s.Params(), "plan", *rels, *ntuples, int32(*ntuples/10), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xprsplan:", err)
		os.Exit(1)
	}
	q := &xprs.Query{}
	for _, rel := range cj.Rels {
		st := rel.Stats()
		fmt.Printf("relation %-8s %7d tuples %6d pages  avg tuple %5.0f B  scan rate %5.1f io/s\n",
			rel.Name, st.NTuples, st.NPages, st.AvgTupleSize, s.Params().SeqScanRate(st.AvgTupleSize))
		q.Rels = append(q.Rels, xprs.QueryRel{Rel: rel})
	}
	for _, j := range cj.Joins {
		q.Joins = append(q.Joins, xprs.JoinPred{LRel: j[0], LCol: j[1], RRel: j[2], RCol: j[3]})
	}

	res, err := s.Optimize(q, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xprsplan:", err)
		os.Exit(1)
	}
	fmt.Printf("\noptimizer: shape=%s cost=%s\n", opts.Shape, opts.Cost)
	fmt.Printf("seqcost(p) = %.2f s   parcost(p, %d) = %.2f s\n\n",
		res.SeqCost, s.Params().NProcs, res.ParCost)
	fmt.Println(xprs.ExplainPlan(res))

	fmt.Println("per-fragment estimates (T_i, D_i, C_i = D_i/T_i):")
	for _, f := range res.Graph.Fragments {
		e := res.Estimates[f.ID]
		fmt.Printf("  f%d: T=%8.2fs  D=%8.0f  C=%6.1f io/s  %s\n",
			f.ID, e.T, e.D, e.Rate(), ioClass(e, s.Params()))
	}
}

func ioClass(e cost.FragEstimate, p xprs.Params) string {
	if e.Rate() > p.B/float64(p.NProcs) {
		return "IO-bound"
	}
	return "CPU-bound"
}
