// Command xprssched is a standalone playground for the paper's
// scheduling algorithm: describe tasks as rate:seconds pairs on the
// command line and watch the schedule the controller produces under
// each policy.
//
// Usage:
//
//	xprssched 65:10 10:10 50:8 12:6
//	xprssched -policy inter-adj -sjf 65:10 10:10
//	xprssched -serve -maxq 2 65:10 10:10 50:8@5 12:6@8
//	xprssched -serve -maxq 1 -adm pred-sjf -aging 60 65:100 10:5@2 10:5@4
//
// Each argument is C:T where C is the task's sequential IO rate (io/s)
// and T its sequential execution time (seconds). Append ":r" to mark a
// random-IO task (an unclustered index scan): 40:5:r.
//
// By default tasks are fed to the analytic simulator. With -serve they
// are materialized as real relations and submitted online — each task
// one query — to a live scheduler session on the full executor; an
// "@sec" suffix (50:8@5) sets the query's arrival time, and -maxq/-mem
// apply admission limits so queue waits become visible.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"xprs"
	"xprs/internal/core"
	"xprs/internal/storage"
)

type taskArg struct {
	raw     string
	c, t    float64
	seq     bool
	arrival time.Duration
}

func parseArgs(args []string) ([]taskArg, error) {
	var tasks []taskArg
	for _, arg := range args {
		spec := arg
		var arrival time.Duration
		if at := strings.IndexByte(spec, '@'); at >= 0 {
			sec, err := strconv.ParseFloat(spec[at+1:], 64)
			if err != nil || sec < 0 {
				return nil, fmt.Errorf("bad arrival in %q", arg)
			}
			arrival = time.Duration(sec * float64(time.Second))
			spec = spec[:at]
		}
		parts := strings.Split(spec, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("bad task %q (want C:T or C:T:r, optional @sec)", arg)
		}
		c, err1 := strconv.ParseFloat(parts[0], 64)
		t, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil || c <= 0 || t <= 0 {
			return nil, fmt.Errorf("bad task %q", arg)
		}
		seq := true
		if len(parts) == 3 {
			if parts[2] != "r" {
				return nil, fmt.Errorf("bad task suffix %q", parts[2])
			}
			seq = false
		}
		tasks = append(tasks, taskArg{raw: arg, c: c, t: t, seq: seq, arrival: arrival})
	}
	return tasks, nil
}

func main() {
	policyName := flag.String("policy", "all", "intra-only, inter-no-adj, inter-adj, or all")
	sjf := flag.Bool("sjf", false, "shortest-job-first queueing")
	fifo := flag.Bool("fifo", false, "FIFO pairing instead of most-extreme")
	procs := flag.Int("procs", 8, "processors")
	bw := flag.Float64("bw", 240, "planning disk bandwidth (io/s)")
	br := flag.Float64("br", 140, "random-interleave bandwidth endpoint (io/s)")
	serve := flag.Bool("serve", false, "submit tasks online to a live scheduler session on the full executor instead of the analytic simulator")
	maxq := flag.Int("maxq", 0, "admission cap on concurrent queries (serve mode; 0 = unlimited)")
	mem := flag.Int64("mem", 0, "admission memory budget in bytes over task working sets (serve mode; 0 = unlimited)")
	queue := flag.String("queue", "", "queue policy for S_io/S_cpu ordering: paper (default), fifo, sjf")
	admPol := flag.String("adm", "", "admission policy (serve mode): fifo (default), pred-sjf, deadline")
	aging := flag.Float64("aging", 0, "aging promotion bound in seconds (serve mode; 0 = off)")
	deadline := flag.Float64("deadline", 0, "per-query response deadline in seconds for -adm deadline (serve mode; 0 = none)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: xprssched [flags] C:T[:r][@sec] ...")
		os.Exit(2)
	}
	args, err := parseArgs(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "xprssched: %v\n", err)
		os.Exit(2)
	}

	opts := core.Options{SJF: *sjf}
	if *fifo {
		opts.Pairing = core.FIFOPairing
	}
	if *queue != "" {
		qp, err := core.QueuePolicyByName(*queue, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xprssched:", err)
			os.Exit(2)
		}
		opts.Queue = qp
	}

	policies := []core.Policy{core.IntraOnly, core.InterNoAdj, core.InterAdj}
	switch *policyName {
	case "all":
	case "intra-only":
		policies = []core.Policy{core.IntraOnly}
	case "inter-no-adj":
		policies = []core.Policy{core.InterNoAdj}
	case "inter-adj":
		policies = []core.Policy{core.InterAdj}
	default:
		fmt.Fprintln(os.Stderr, "xprssched: unknown -policy")
		os.Exit(2)
	}

	if *serve {
		sv := serveConfig{
			maxq: *maxq, mem: *mem, adm: *admPol,
			aging:    time.Duration(*aging * float64(time.Second)),
			deadline: time.Duration(*deadline * float64(time.Second)),
		}
		if err := runServe(args, policies, opts, *procs, sv); err != nil {
			fmt.Fprintln(os.Stderr, "xprssched:", err)
			os.Exit(1)
		}
		return
	}
	if *admPol != "" || *aging > 0 || *deadline > 0 {
		fmt.Fprintln(os.Stderr, "xprssched: -adm/-aging/-deadline are only honored with -serve")
	}

	var tasks []*core.Task
	for i, a := range args {
		if a.arrival > 0 {
			fmt.Fprintf(os.Stderr, "xprssched: %q: @arrival is only honored with -serve\n", a.raw)
		}
		tasks = append(tasks, &core.Task{ID: i, Name: a.raw, T: a.t, D: a.c * a.t, SeqIO: a.seq})
	}
	env := core.Env{NProcs: *procs, B: *bw, Bs: *bw, Br: *br}

	fmt.Printf("machine: N=%d B=%.0f io/s (Br=%.0f); threshold B/N = %.1f io/s\n\n",
		env.NProcs, env.B, env.Br, env.Threshold())
	for _, t := range tasks {
		class := "CPU-bound"
		if env.IOBound(t) {
			class = "IO-bound"
		}
		fmt.Printf("  %-12s C=%5.1f io/s  T=%5.1fs  %-9s  maxp=%.2f\n",
			t.Name, t.Rate(), t.T, class, env.MaxParallelism(t))
	}

	for _, pol := range policies {
		res, err := core.Simulate(env, pol, opts, core.MakeSimTasks(tasks))
		if err != nil {
			fmt.Fprintln(os.Stderr, "xprssched:", err)
			os.Exit(1)
		}
		fmt.Printf("\n%s — elapsed %.3fs\n", pol, res.Elapsed)
		for _, ev := range res.Trace {
			fmt.Printf("  %s\n", ev)
		}
	}
}

// serveConfig bundles the -serve admission knobs.
type serveConfig struct {
	maxq     int
	mem      int64
	adm      string
	aging    time.Duration
	deadline time.Duration
}

// runServe materializes each C:T argument as a real relation sized to
// scan at rate C for T seconds and submits it as a single-task query to
// a live scheduler session at its @arrival instant.
func runServe(args []taskArg, policies []core.Policy, opts core.Options, procs int, sv serveConfig) error {
	adm := xprs.Admission{MaxQueries: sv.maxq, MemoryBudget: sv.mem, Policy: sv.adm, AgingMaxWait: sv.aging}
	for _, a := range args {
		if !a.seq {
			fmt.Fprintf(os.Stderr, "xprssched: %q: the :r (random IO) suffix is ignored in -serve mode (tasks run as sequential scans)\n", a.raw)
		}
	}
	for _, pol := range policies {
		cfg := xprs.DefaultConfig()
		cfg.NProcs = procs
		sys := xprs.New(cfg)
		specs := make([]xprs.TaskSpec, len(args))
		for i, a := range args {
			// Size the relation so a serial scan takes ~T seconds at C io/s.
			size := sys.Params().TupleSizeForRate(a.c)
			perPage := float64(storage.TuplesPerPage(int(size)))
			ntuples := int64(a.t * perPage * a.c)
			if ntuples < 100 {
				ntuples = 100
			}
			name := fmt.Sprintf("t%02d", i)
			if _, err := sys.CreateScanRelation(name, a.c, ntuples); err != nil {
				return err
			}
			spec, err := sys.SelectTask(i, name, 0, 1<<30)
			if err != nil {
				return err
			}
			spec.Task.Name = a.raw
			specs[i] = spec
		}
		reps := make([]*xprs.Report, len(args))
		shedErrs := make([]error, len(args))
		err := sys.Serve(pol, opts, adm, func(sc *xprs.Scheduler) error {
			base := sc.Now()
			handles := make([]*xprs.QueryHandle, len(args))
			for i, a := range args {
				sc.SleepUntil(base + a.arrival)
				h, err := sc.SubmitWith(xprs.SubmitOptions{Deadline: sv.deadline}, []xprs.TaskSpec{specs[i]})
				if err != nil {
					return err
				}
				handles[i] = h
			}
			for i, h := range handles {
				rep, err := h.Wait()
				if err != nil {
					var shed *xprs.ShedError
					var dshed *xprs.DeadlineShedError
					if errors.As(err, &shed) || errors.As(err, &dshed) {
						shedErrs[i] = err
						continue
					}
					return err
				}
				reps[i] = rep
			}
			return nil
		})
		if err != nil {
			return err
		}
		var makespan time.Duration
		for _, rep := range reps {
			if rep == nil {
				continue
			}
			if end := rep.SubmittedAt + rep.Elapsed; end > makespan {
				makespan = end
			}
		}
		fmt.Printf("\n%s — makespan %.3fs (online submission", pol, makespan.Seconds())
		if sv.maxq > 0 || sv.mem > 0 {
			fmt.Printf(", admission maxq=%d mem=%d", sv.maxq, sv.mem)
		}
		if sv.adm != "" {
			fmt.Printf(", policy %s", sv.adm)
			if sv.aging > 0 {
				fmt.Printf("+aging(%v)", sv.aging)
			}
		}
		fmt.Println(")")
		for i, rep := range reps {
			if rep == nil {
				fmt.Printf("  %-14s shed: %v\n", args[i].raw, shedErrs[i])
				continue
			}
			fmt.Printf("  %-14s submitted %7.2fs  queued %7.2fs  response %8.2fs\n",
				args[i].raw, rep.SubmittedAt.Seconds(), rep.QueueWait.Seconds(), rep.Elapsed.Seconds())
			for _, ev := range rep.Trace {
				fmt.Printf("      %v\n", ev)
			}
		}
	}
	return nil
}
