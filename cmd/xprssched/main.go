// Command xprssched is a standalone playground for the paper's
// scheduling algorithm: describe tasks as rate:seconds pairs on the
// command line and watch the schedule the controller produces under
// each policy.
//
// Usage:
//
//	xprssched 65:10 10:10 50:8 12:6
//	xprssched -policy inter-adj -sjf 65:10 10:10
//
// Each argument is C:T where C is the task's sequential IO rate (io/s)
// and T its sequential execution time (seconds). Append ":r" to mark a
// random-IO task (an unclustered index scan): 40:5:r.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"xprs/internal/core"
)

func main() {
	policyName := flag.String("policy", "all", "intra-only, inter-no-adj, inter-adj, or all")
	sjf := flag.Bool("sjf", false, "shortest-job-first queueing")
	fifo := flag.Bool("fifo", false, "FIFO pairing instead of most-extreme")
	procs := flag.Int("procs", 8, "processors")
	bw := flag.Float64("bw", 240, "planning disk bandwidth (io/s)")
	br := flag.Float64("br", 140, "random-interleave bandwidth endpoint (io/s)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: xprssched [flags] C:T[:r] ...")
		os.Exit(2)
	}
	var tasks []*core.Task
	for i, arg := range flag.Args() {
		parts := strings.Split(arg, ":")
		if len(parts) < 2 || len(parts) > 3 {
			fmt.Fprintf(os.Stderr, "xprssched: bad task %q (want C:T or C:T:r)\n", arg)
			os.Exit(2)
		}
		c, err1 := strconv.ParseFloat(parts[0], 64)
		t, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil || c <= 0 || t <= 0 {
			fmt.Fprintf(os.Stderr, "xprssched: bad task %q\n", arg)
			os.Exit(2)
		}
		seq := true
		if len(parts) == 3 {
			if parts[2] != "r" {
				fmt.Fprintf(os.Stderr, "xprssched: bad task suffix %q\n", parts[2])
				os.Exit(2)
			}
			seq = false
		}
		tasks = append(tasks, &core.Task{ID: i, Name: arg, T: t, D: c * t, SeqIO: seq})
	}

	env := core.Env{NProcs: *procs, B: *bw, Bs: *bw, Br: *br}
	opts := core.Options{SJF: *sjf}
	if *fifo {
		opts.Pairing = core.FIFOPairing
	}

	fmt.Printf("machine: N=%d B=%.0f io/s (Br=%.0f); threshold B/N = %.1f io/s\n\n",
		env.NProcs, env.B, env.Br, env.Threshold())
	for _, t := range tasks {
		class := "CPU-bound"
		if env.IOBound(t) {
			class = "IO-bound"
		}
		fmt.Printf("  %-12s C=%5.1f io/s  T=%5.1fs  %-9s  maxp=%.2f\n",
			t.Name, t.Rate(), t.T, class, env.MaxParallelism(t))
	}

	policies := []core.Policy{core.IntraOnly, core.InterNoAdj, core.InterAdj}
	switch *policyName {
	case "all":
	case "intra-only":
		policies = []core.Policy{core.IntraOnly}
	case "inter-no-adj":
		policies = []core.Policy{core.InterNoAdj}
	case "inter-adj":
		policies = []core.Policy{core.InterAdj}
	default:
		fmt.Fprintln(os.Stderr, "xprssched: unknown -policy")
		os.Exit(2)
	}

	for _, pol := range policies {
		res, err := core.Simulate(env, pol, opts, core.MakeSimTasks(tasks))
		if err != nil {
			fmt.Fprintln(os.Stderr, "xprssched:", err)
			os.Exit(1)
		}
		fmt.Printf("\n%s — elapsed %.3fs\n", pol, res.Elapsed)
		for _, ev := range res.Trace {
			fmt.Printf("  %s\n", ev)
		}
	}
}
