// Quickstart: create a relation, run a selection query in parallel, and
// read the results — the minimal tour of the public API.
package main

import (
	"fmt"
	"log"

	"xprs"
)

func main() {
	// An XPRS system: 8 processors, the paper's 4-disk striped array,
	// deterministic virtual time.
	sys := xprs.New(xprs.DefaultConfig())

	// A relation whose sequential scan runs at 40 io/s (the §3 tuple-size
	// methodology picks the text-column width that hits the target rate).
	rel, err := sys.CreateScanRelation("orders", 40, 20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %s: %d tuples on %d striped pages (avg tuple %.0f B), executor batch %d\n",
		rel.Name, rel.NTuples(), rel.NPages(), rel.Stats().AvgTupleSize, sys.BatchSize())

	// A one-variable selection task: select * from orders where 1000 <= a <= 1999.
	task, err := sys.SelectTask(0, "orders", 1000, 1999)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task: T=%.2fs sequential, %0.f IOs, C=%.1f io/s (IO-bound above %.0f)\n",
		task.Task.T, task.Task.D, task.Task.D/task.Task.T,
		sys.Params().B/float64(sys.Params().NProcs))

	// Run it under the paper's scheduler.
	rep, err := sys.Run([]xprs.TaskSpec{task}, xprs.InterAdj, xprs.SchedOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("elapsed (virtual) %v, %d rows selected, %d disk reads\n",
		rep.Elapsed, rep.Results[0].Len(), rep.Disk.TotalReads())
	for i, t := range rep.Results[0].Tuples() {
		if i >= 3 {
			fmt.Printf("  ... and %d more\n", rep.Results[0].Len()-3)
			break
		}
		fmt.Printf("  row %d: a=%v\n", i, t.Vals[0])
	}
	for _, ev := range rep.Trace {
		fmt.Println("  trace:", ev)
	}
}
