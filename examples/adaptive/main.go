// Adaptive: watch the §2.4 dynamic parallelism-adjustment protocols in
// action. A long IO-bound scan starts alone at its maximum parallelism;
// a CPU-bound task arrives later, forcing the master to adjust the
// running scan down to the IO-CPU balance point via the maxpage
// protocol; when the newcomer finishes, the scan is adjusted back up.
package main

import (
	"fmt"
	"log"
	"time"

	"xprs"
)

func main() {
	sys := xprs.New(xprs.DefaultConfig())
	if _, err := sys.CreateScanRelation("stream", 65, 60000); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.CreateScanRelation("batch", 10, 60000); err != nil {
		log.Fatal(err)
	}

	long, err := sys.SelectTask(0, "stream", 0, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	late, err := sys.SelectTask(1, "batch", 0, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	// The CPU-bound task arrives 10 virtual seconds into the run.
	late.Arrival = 10 * time.Second

	rep, err := sys.Run([]xprs.TaskSpec{long, late}, xprs.InterAdj, xprs.SchedOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schedule trace (task 0 = IO-bound scan, task 1 = late CPU-bound arrival):")
	for _, ev := range rep.Trace {
		fmt.Printf("  %v\n", ev)
	}
	fmt.Printf("\ntask 0 finished at %v, task 1 at %v; total %v\n",
		rep.Finish[0], rep.Finish[1], rep.Elapsed)
	fmt.Println()
	fmt.Println("What happened at t=10s: the master signalled all slaves of task 0,")
	fmt.Println("collected their current page positions, computed maxpage, and handed")
	fmt.Println("out new stride assignments (Figure 5's protocol); slaves finished")
	fmt.Println("their old residue classes up to maxpage and re-striped beyond it.")
	fmt.Println("When task 1 completed, the survivor was adjusted back up to maxp.")
}
