// Bushytree: the §4 single-user scenario — a 4-way join optimized twice,
// once as [HONG91] would (left-deep tree, seqcost) and once as this
// paper proposes (bushy tree, parcost), then both plans executed under
// the adaptive scheduler.
package main

import (
	"fmt"
	"log"

	"xprs"
	"xprs/internal/workload"
)

func main() {
	for _, cfg := range []struct {
		label string
		opts  xprs.OptOptions
	}{
		{"[HONG91] left-deep + seqcost", xprs.OptOptions{Cost: xprs.SeqCost, Shape: xprs.LeftDeep}},
		{"this paper: bushy + parcost", xprs.OptOptions{Cost: xprs.ParCost, Shape: xprs.Bushy}},
	} {
		sys := xprs.New(xprs.DefaultConfig())
		// Four relations alternating CPU-bound and IO-bound scan profiles,
		// chained on the join column a.
		cj, err := workload.BuildChainJoin(sys.Store(), sys.Params(), "j", 4, 3000, 300, 7)
		if err != nil {
			log.Fatal(err)
		}
		q := &xprs.Query{}
		for _, rel := range cj.Rels {
			q.Rels = append(q.Rels, xprs.QueryRel{Rel: rel})
		}
		for _, j := range cj.Joins {
			q.Joins = append(q.Joins, xprs.JoinPred{LRel: j[0], LCol: j[1], RRel: j[2], RCol: j[3]})
		}

		res, err := sys.Optimize(q, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", cfg.label)
		fmt.Printf("seqcost %.2fs, parcost(8) %.2fs, %d fragments\n",
			res.SeqCost, res.ParCost, len(res.Graph.Fragments))
		fmt.Println(xprs.ExplainPlan(res))

		specs, err := sys.PlanTasks(res, 0)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.Run(specs, xprs.InterAdj, xprs.SchedOptions{})
		if err != nil {
			log.Fatal(err)
		}
		var rows int
		for _, temp := range rep.Results {
			rows = temp.Len()
		}
		fmt.Printf("executed in %v (single user, INTER-WITH-ADJ), %d result rows\n\n",
			rep.Elapsed, rows)
	}
}
