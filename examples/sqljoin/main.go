// Sqljoin: run SQL against the engine — the optimizer picks access
// paths and join order, the parallelizer decomposes the plan into
// fragments, and the adaptive scheduler runs them.
package main

import (
	"fmt"
	"log"

	"xprs"
)

func main() {
	sys := xprs.New(xprs.DefaultConfig())
	fmt.Printf("executor batch size: %d tuples\n\n", sys.BatchSize())

	orders := make([]struct {
		A int32
		B string
	}, 5000)
	for i := range orders {
		orders[i].A = int32(i)
		orders[i].B = fmt.Sprintf("order-%04d", i)
	}
	if _, err := sys.LoadRelation("orders", orders); err != nil {
		log.Fatal(err)
	}
	items := make([]struct {
		A int32
		B string
	}, 4000)
	for i := range items {
		items[i].A = int32(i) % 800
		items[i].B = fmt.Sprintf("item-%04d", i)
	}
	if _, err := sys.LoadRelation("items", items); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.BuildIndex("orders", false); err != nil {
		log.Fatal(err)
	}

	for _, stmt := range []string{
		"SELECT * FROM orders WHERE a BETWEEN 42 AND 45",
		"SELECT * FROM orders, items WHERE orders.a = items.a AND items.a < 100",
		"SELECT count(*), sum(a), max(a) FROM orders WHERE a < 1000",
		"SELECT items.a, count(*) FROM orders, items WHERE orders.a = items.a GROUP BY items.a",
	} {
		fmt.Println(">>", stmt)
		res, pl, err := sys.ExecSQL(stmt, xprs.InterAdj)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(xprs.ExplainPlan(pl))
		fmt.Printf("%d rows; first: ", res.Len())
		if res.Len() > 0 {
			fmt.Println(res.Tuples()[0].Vals)
		} else {
			fmt.Println("(none)")
		}
		fmt.Println()
	}
}
