// Multiquery: the multi-user scenario of §3 — a mix of IO-bound and
// CPU-bound selection tasks from different "users", each submitted
// online to a live scheduler session at its own arrival time, run under
// all three scheduling algorithms. With an admission cap of two
// concurrent queries, late arrivals queue and their reports carry the
// wait. This is a hands-on miniature of Figure 7 on the §2.5 online
// path.
package main

import (
	"fmt"
	"log"
	"time"

	"xprs"
)

func main() {
	type user struct {
		name    string
		rate    float64 // sequential-scan IO rate (io/s)
		tuples  int64
		lo, hi  int32
		arrival time.Duration // when the user submits
	}
	users := []user{
		{"u1_bigscan", 65, 40000, 0, 1 << 30, 0},              // extremely IO-bound
		{"u2_filter", 9, 120000, 500, 90000, 0},               // extremely CPU-bound
		{"u3_report", 55, 30000, 0, 1 << 30, 2 * time.Second}, // IO-bound, arrives late
		{"u4_crunch", 12, 100000, 0, 50000, 4 * time.Second},  // CPU-bound, arrives later
	}
	adm := xprs.Admission{MaxQueries: 2}

	for _, policy := range []xprs.Policy{xprs.IntraOnly, xprs.InterNoAdj, xprs.InterAdj} {
		// Fresh system per policy so runs are independent and identical
		// in their inputs.
		sys := xprs.New(xprs.DefaultConfig())
		var specs []xprs.TaskSpec
		for i, u := range users {
			if _, err := sys.CreateScanRelation(u.name, u.rate, u.tuples); err != nil {
				log.Fatal(err)
			}
			spec, err := sys.SelectTask(i, u.name, u.lo, u.hi)
			if err != nil {
				log.Fatal(err)
			}
			specs = append(specs, spec)
		}

		// One live session per policy: the driver goroutine sleeps to each
		// user's arrival instant, submits their query online, and collects
		// the per-query reports afterwards.
		reps := make([]*xprs.Report, len(users))
		err := sys.Serve(policy, xprs.SchedOptions{}, adm, func(sc *xprs.Scheduler) error {
			base := sc.Now()
			handles := make([]*xprs.QueryHandle, len(users))
			for i, u := range users {
				sc.SleepUntil(base + u.arrival)
				h, err := sc.Submit([]xprs.TaskSpec{specs[i]})
				if err != nil {
					return err
				}
				handles[i] = h
			}
			for i, h := range handles {
				rep, err := h.Wait()
				if err != nil {
					return err
				}
				reps[i] = rep
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}

		var makespan time.Duration
		for _, rep := range reps {
			if end := rep.SubmittedAt + rep.Elapsed; end > makespan {
				makespan = end
			}
		}
		fmt.Printf("%-18s makespan %8.2fs\n", policy, makespan.Seconds())
		for i, rep := range reps {
			fmt.Printf("    %-12s submitted %6.2fs  queued %6.2fs  response %8.2fs\n",
				users[i].name, rep.SubmittedAt.Seconds(), rep.QueueWait.Seconds(), rep.Elapsed.Seconds())
			for _, ev := range rep.Trace {
				fmt.Printf("        %v\n", ev)
			}
		}
	}
	fmt.Println("\nQueries are submitted online while earlier ones execute; the controller")
	fmt.Println("re-solves the IO-CPU balance point on every arrival and completion. With")
	fmt.Println("the admission cap of 2, u3 and u4 wait in the admission queue and their")
	fmt.Println("reports carry the queue wait. Each trace line carries the scheduler's")
	fmt.Println("reason — the balance-point solve (x_i/x_j → n_i/n_j at B_eff) behind")
	fmt.Println("every pairing, why solo fallbacks fire, and what triggered adjustments.")
}
