// Multiquery: the multi-user scenario of §3 — a mix of IO-bound and
// CPU-bound selection tasks from different "users", run under all three
// scheduling algorithms. This is a hands-on miniature of Figure 7.
package main

import (
	"fmt"
	"log"

	"xprs"
)

func main() {
	type user struct {
		name   string
		rate   float64 // sequential-scan IO rate (io/s)
		tuples int64
		lo, hi int32
	}
	users := []user{
		{"u1_bigscan", 65, 40000, 0, 1 << 30}, // extremely IO-bound
		{"u2_filter", 9, 120000, 500, 90000},  // extremely CPU-bound
		{"u3_report", 55, 30000, 0, 1 << 30},  // IO-bound
		{"u4_crunch", 12, 100000, 0, 50000},   // CPU-bound
	}

	for _, policy := range []xprs.Policy{xprs.IntraOnly, xprs.InterNoAdj, xprs.InterAdj} {
		// Fresh system per policy so runs are independent and identical
		// in their inputs.
		sys := xprs.New(xprs.DefaultConfig())
		var specs []xprs.TaskSpec
		for i, u := range users {
			if _, err := sys.CreateScanRelation(u.name, u.rate, u.tuples); err != nil {
				log.Fatal(err)
			}
			spec, err := sys.SelectTask(i, u.name, u.lo, u.hi)
			if err != nil {
				log.Fatal(err)
			}
			specs = append(specs, spec)
		}
		rep, err := sys.Run(specs, policy, xprs.SchedOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s elapsed %8.2fs  (disk util %.0f%%: %d seq + %d almost-seq + %d random reads)\n",
			policy, rep.Elapsed.Seconds(),
			100*rep.Disk.Busy.Seconds()/(rep.Elapsed.Seconds()*4),
			rep.Disk.Reads[0], rep.Disk.Reads[1], rep.Disk.Reads[2])
		for _, ev := range rep.Trace {
			fmt.Printf("    %v\n", ev)
		}
	}
	fmt.Println("\nINTER-WITH-ADJ pairs the most IO-bound with the most CPU-bound task at")
	fmt.Println("their IO-CPU balance point and re-adjusts the survivor on every completion.")
	fmt.Println("Each trace line carries the scheduler's reason — the balance-point solve")
	fmt.Println("(x_i/x_j → n_i/n_j at B_eff) behind every pairing, why solo fallbacks fire,")
	fmt.Println("and what triggered each dynamic adjustment.")
}
