package xprs

// The join-kernel micro-benchmark behind `xprsbench -fig join` and
// BENCH_join.json: the radix-partitioned open-addressed hash table and
// the parallel merge sort measured head-to-head against inline replicas
// of the kernels they replaced (a Go map behind a mutex fed in batches,
// and sort.SliceStable with a comparison counter — exactly the seed
// executor's code shape), on the pipeline benchmark's data: a 5 000-row
// build side and a 30 000-row probe side with keys i mod 9 000.
//
// Wall-clock only: both sides run the same simulated work, so the
// virtual clock is out of the picture and the numbers isolate kernel
// quality.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"xprs/internal/exec"
	"xprs/internal/plan"
	"xprs/internal/storage"
)

// joinBenchData builds the benchmark relations in memory with the
// pipeline benchmark's shape.
func joinBenchData() (schema storage.Schema, build, probe []storage.Tuple) {
	schema = storage.NewSchema(
		storage.Column{Name: "a", Typ: storage.Int4},
		storage.Column{Name: "b", Typ: storage.Text},
	)
	build = make([]storage.Tuple, pipelineBenchRightRows)
	for i := range build {
		build[i] = storage.NewTuple(
			storage.IntVal(int32(i)%9000),
			storage.TextVal(fmt.Sprintf("build-%05d", i)),
		)
	}
	probe = make([]storage.Tuple, pipelineBenchLeftRows)
	for i := range probe {
		probe[i] = storage.NewTuple(
			storage.IntVal(int32(i)%9000),
			storage.TextVal(fmt.Sprintf("probe-%05d", i)),
		)
	}
	return schema, build, probe
}

// JoinBenchResult is one measured run of the join-kernel benchmark.
type JoinBenchResult struct {
	Iterations     int `json:"iterations"`
	BuildRows      int `json:"build_rows"`
	ProbeRows      int `json:"probe_rows"`
	SortRows       int `json:"sort_rows"`
	HashPartitions int `json:"hash_partitions"`
	SortProcs      int `json:"sort_procs"`

	// Build+probe: map/mutex baseline vs radix-partitioned open table.
	BaselineBuildProbeNs float64 `json:"baseline_build_probe_ns_per_op"`
	KernelBuildProbeNs   float64 `json:"kernel_build_probe_ns_per_op"`
	BuildProbeSpeedup    float64 `json:"build_probe_speedup"`
	BuildProbeTuplesPerS float64 `json:"build_probe_tuples_per_sec"`
	BuildProbeAllocs     float64 `json:"kernel_build_probe_allocs_per_op"`
	BuildProbeBytes      float64 `json:"kernel_build_probe_bytes_per_op"`

	// Finalize sort: sort.SliceStable baseline vs parallel merge sort.
	BaselineSortNs float64 `json:"baseline_sort_ns_per_op"`
	KernelSortNs   float64 `json:"kernel_sort_ns_per_op"`
	SortSpeedup    float64 `json:"sort_speedup"`
	SortRowsPerSec float64 `json:"sort_rows_per_sec"`
	SortAllocs     float64 `json:"kernel_sort_allocs_per_op"`
	SortBytes      float64 `json:"kernel_sort_bytes_per_op"`
}

// MeasureJoin runs both kernel generations iters times and reports
// wall-clock throughput. It is the JSON-emitting source of
// BENCH_join.json.
// It compares kernel generations on the wall clock by design, never on
// the virtual clock.
//
//lint:allow vclockpurity — host-timing benchmark
func MeasureJoin(cfg Config, iters int) (*JoinBenchResult, error) {
	if iters <= 0 {
		iters = 20
	}
	schema, build, probe := joinBenchData()
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	parts := cfg.HashPartitions
	if parts <= 0 {
		parts = plan.SuggestHashParts(float64(len(build)))
	}
	procs := cfg.NProcs
	if procs <= 0 {
		procs = DefaultConfig().NProcs
	}

	// ---- build + probe ----

	// The seed executor's kernel: one shared map behind a mutex, one
	// lock round-trip per inserted batch with per-tuple column checks,
	// per-tuple map lookups on probe. Both rounds consume matches by
	// counting them, so the measured delta is the kernels alone.
	baselineRound := func() int64 {
		var mu sync.Mutex
		buckets := make(map[int32][]storage.Tuple)
		for lo := 0; lo < len(build); lo += batch {
			hi := min(lo+batch, len(build))
			ts := build[lo:hi]
			for i := range ts {
				if len(ts[i].Vals) < 1 {
					return -1
				}
			}
			mu.Lock()
			for _, t := range ts {
				k := t.Vals[0].Int
				buckets[k] = append(buckets[k], t)
			}
			mu.Unlock()
		}
		var sink int64
		for i := range probe {
			sink += int64(len(buckets[probe[i].Vals[0].Int]))
		}
		return sink
	}

	// The radix kernel: private builder, seal, batched lock-free probes.
	kernelRound := func() (int64, error) {
		ht := exec.NewHashTableP(schema, 0, parts, procs)
		hb := ht.Builder()
		hb.Reserve(len(build))
		for lo := 0; lo < len(build); lo += batch {
			hi := min(lo+batch, len(build))
			if err := hb.InsertBatch(build[lo:hi]); err != nil {
				return 0, err
			}
		}
		hb.Flush()
		ht.Seal()
		var sink int64
		matches := make([][]storage.Tuple, 0, batch)
		for lo := 0; lo < len(probe); lo += batch {
			hi := min(lo+batch, len(probe))
			var err error
			matches, err = ht.ProbeTupleBatch(probe[lo:hi], 0, matches[:0])
			if err != nil {
				return 0, err
			}
			for _, ms := range matches {
				sink += int64(len(ms))
			}
		}
		return sink, nil
	}

	// Warm up both and check they agree on the join result.
	wantSink := baselineRound()
	gotSink, err := kernelRound()
	if err != nil {
		return nil, err
	}
	if gotSink != wantSink {
		return nil, fmt.Errorf("joinbench: kernel checksum %d != baseline %d", gotSink, wantSink)
	}

	// Rounds alternate between the two generations and each round is
	// timed on its own; the reported figure is the per-round minimum.
	// Under a preemptible scheduler the minimum is the reproducible
	// cost — sums fold scheduling noise from whichever side the
	// interruption happened to land on.
	baseBP, kernBP := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < iters; i++ {
		start := time.Now()
		baselineRound()
		if d := time.Since(start); d < baseBP {
			baseBP = d
		}
		start = time.Now()
		if _, err := kernelRound(); err != nil {
			return nil, err
		}
		if d := time.Since(start); d < kernBP {
			kernBP = d
		}
	}

	// Allocation profile of the kernel rounds, measured apart from the
	// timing loop so the MemStats reads don't perturb the minima.
	var mBefore, mAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&mBefore)
	for i := 0; i < iters; i++ {
		if _, err := kernelRound(); err != nil {
			return nil, err
		}
	}
	runtime.ReadMemStats(&mAfter)
	bpAllocs := float64(mAfter.Mallocs-mBefore.Mallocs) / float64(iters)
	bpBytes := float64(mAfter.TotalAlloc-mBefore.TotalAlloc) / float64(iters)

	// ---- Finalize sort ----

	// Sort input: the probe relation's rows, appended in executor-sized
	// batches like slave flushes.
	sortRows := probe

	// The seed kernel: sort.SliceStable over the materialized temp with
	// a counting comparator (the counter fed the clock charge).
	baselineSortRound := func() int64 {
		ts := append([]storage.Tuple(nil), sortRows...)
		var cmps int64
		sort.SliceStable(ts, func(i, j int) bool {
			cmps++
			return ts[i].Vals[0].Int < ts[j].Vals[0].Int
		})
		return cmps
	}

	kernelSortRound := func() int64 {
		temp := exec.NewTemp(schema)
		temp.SetSortProcs(procs)
		for lo := 0; lo < len(sortRows); lo += batch {
			hi := min(lo+batch, len(sortRows))
			temp.Append(sortRows[lo:hi])
		}
		return temp.Finalize(0)
	}

	baselineSortRound()
	kernelSortRound()
	baseSort, kernSort := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < iters; i++ {
		start := time.Now()
		baselineSortRound()
		if d := time.Since(start); d < baseSort {
			baseSort = d
		}
		start = time.Now()
		kernelSortRound()
		if d := time.Since(start); d < kernSort {
			kernSort = d
		}
	}

	runtime.GC()
	runtime.ReadMemStats(&mBefore)
	for i := 0; i < iters; i++ {
		kernelSortRound()
	}
	runtime.ReadMemStats(&mAfter)
	sortAllocs := float64(mAfter.Mallocs-mBefore.Mallocs) / float64(iters)
	sortBytes := float64(mAfter.TotalAlloc-mBefore.TotalAlloc) / float64(iters)

	res := &JoinBenchResult{
		Iterations:     iters,
		BuildRows:      len(build),
		ProbeRows:      len(probe),
		SortRows:       len(sortRows),
		HashPartitions: parts,
		SortProcs:      min(procs, runtime.GOMAXPROCS(0)),

		BaselineBuildProbeNs: float64(baseBP.Nanoseconds()),
		KernelBuildProbeNs:   float64(kernBP.Nanoseconds()),
		BuildProbeSpeedup:    float64(baseBP) / float64(kernBP),
		BuildProbeTuplesPerS: float64(len(build)+len(probe)) / kernBP.Seconds(),
		BuildProbeAllocs:     bpAllocs,
		BuildProbeBytes:      bpBytes,

		BaselineSortNs: float64(baseSort.Nanoseconds()),
		KernelSortNs:   float64(kernSort.Nanoseconds()),
		SortSpeedup:    float64(baseSort) / float64(kernSort),
		SortRowsPerSec: float64(len(sortRows)) / kernSort.Seconds(),
		SortAllocs:     sortAllocs,
		SortBytes:      sortBytes,
	}
	return res, nil
}
