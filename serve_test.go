package xprs

// Serving-path tests: concurrent submission through the sharded intake,
// load shedding at the backpressure threshold, per-tenant fair-share
// admission, and determinism of the open-loop harness.

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestConcurrentSubmitRace hammers the sharded intake from many
// clock-registered goroutines at the same virtual instant. Run under
// -race (the race matrix covers GOMAXPROCS 1 and 4) it exercises the
// shard locks, the doorbell counter, and handle settling cross-thread;
// functionally it checks that every submission gets a distinct query ID
// and a clean report.
func TestConcurrentSubmitRace(t *testing.T) {
	const workers, perWorker = 8, 25
	sys := New(DefaultConfig())
	ids := make([][]int, workers)
	errs := make([]error, workers)
	err := sys.Serve(InterAdj, SchedOptions{}, Admission{}, func(sc *Scheduler) error {
		done := make([]chan struct{}, workers)
		for w := range done {
			done[w] = make(chan struct{}, 1)
			w := w
			sc.Go(func() {
				defer sys.clock.Signal(done[w])
				handles := make([]*QueryHandle, 0, perWorker)
				for j := 0; j < perWorker; j++ {
					h, err := sc.Submit(nil) // degenerate query: pure intake round trip
					if err != nil {
						errs[w] = err
						return
					}
					handles = append(handles, h)
				}
				for _, h := range handles {
					if _, err := h.Wait(); err != nil {
						errs[w] = err
						return
					}
					ids[w] = append(ids[w], h.ID())
				}
			})
		}
		for w := range done {
			sys.clock.WaitSignal(done[w])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if len(ids[w]) != perWorker {
			t.Fatalf("worker %d settled %d of %d queries", w, len(ids[w]), perWorker)
		}
		for _, id := range ids[w] {
			if seen[id] {
				t.Fatalf("query ID %d handed out twice", id)
			}
			seen[id] = true
		}
	}
}

// shedSpecs builds n single-task queries with explicit working sets for
// admission tests.
func shedSpecs(t *testing.T, sys *System, n int, mem int64, tuples int64) []TaskSpec {
	t.Helper()
	specs := make([]TaskSpec, n)
	for i := range specs {
		name := "shed_" + string(rune('a'+i))
		if _, err := sys.CreateScanRelation(name, 60, tuples); err != nil {
			t.Fatal(err)
		}
		sp, err := sys.SelectTask(i, name, 0, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		sp.Task.MemBytes = mem
		specs[i] = sp
	}
	return specs
}

// TestShedAtThreshold pins load-shedding semantics. With a memory
// budget that admits one query and MaxQueued=1: A runs, B queues, C is
// shed with a typed *ShedError. The shed must not poison the session
// (a later query completes) and must not free anything it never held —
// B is admitted exactly when A finishes, which it could not be if C's
// rejection had released memory or an admission slot.
func TestShedAtThreshold(t *testing.T) {
	const budget = 2 << 20
	sys := New(DefaultConfig())
	specs := shedSpecs(t, sys, 4, budget, 8000)
	var repA, repB, repD *Report
	var errC error
	err := sys.Serve(InterAdj, SchedOptions{}, Admission{MemoryBudget: budget, MaxQueued: 1}, func(sc *Scheduler) error {
		hA, err := sc.Submit([]TaskSpec{specs[0]})
		if err != nil {
			return err
		}
		hB, err := sc.Submit([]TaskSpec{specs[1]})
		if err != nil {
			return err
		}
		hC, err := sc.Submit([]TaskSpec{specs[2]})
		if err != nil {
			return err
		}
		_, errC = hC.Wait()
		if repA, err = hA.Wait(); err != nil {
			return err
		}
		if repB, err = hB.Wait(); err != nil {
			return err
		}
		// The session must still serve after the shed.
		hD, err := sc.Submit([]TaskSpec{specs[3]})
		if err != nil {
			return err
		}
		repD, err = hD.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	var shed *ShedError
	if !errors.As(errC, &shed) {
		t.Fatalf("third query err = %v; want *ShedError", errC)
	}
	if shed.Limit != 1 || shed.Queued != 1 {
		t.Fatalf("shed error %+v; want queue depth 1 at limit 1", shed)
	}
	if !strings.Contains(shed.Error(), "shed") {
		t.Fatalf("shed error text %q", shed.Error())
	}
	if repA.QueueWait != 0 {
		t.Fatalf("first query queued %v; want immediate admission", repA.QueueWait)
	}
	freed := repA.SubmittedAt + repA.Elapsed
	if repB.AdmittedAt != freed {
		t.Fatalf("queued query admitted at %v; budget freed at %v — the shed moved admission state",
			repB.AdmittedAt, freed)
	}
	if repD == nil || len(repD.Finish) == 0 {
		t.Fatal("post-shed query did not complete; session poisoned by shed")
	}
}

// TestTenantFairShare pins the fair-share admission scan. Tenant a
// floods the queue behind its quota; tenant b's query, though it
// arrived last, must be admitted the moment a slot frees — a tenant at
// TenantMaxQueries cannot starve others by queue position.
func TestTenantFairShare(t *testing.T) {
	sys := New(DefaultConfig())
	// Query 0 (tenant a) is a long IO-bound scan; the rest are short
	// CPU-bound ones (low io/s band), so c1 overlaps a1 on the other
	// §2.5 queue instead of waiting behind it in S_io.
	mk := func(i int, rate float64, tuples int64) TaskSpec {
		name := "fair_" + string(rune('a'+i))
		if _, err := sys.CreateScanRelation(name, rate, tuples); err != nil {
			t.Fatal(err)
		}
		sp, err := sys.SelectTask(i, name, 0, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	a1, c1 := mk(0, 60, 24000), mk(1, 10, 200)
	a2, a3, b1 := mk(2, 10, 400), mk(3, 10, 400), mk(4, 10, 400)
	adm := Admission{MaxQueries: 2, TenantMaxQueries: 1}
	reps := make(map[string]*Report)
	err := sys.Serve(InterAdj, SchedOptions{}, adm, func(sc *Scheduler) error {
		submit := func(tenant string, sp TaskSpec) (*QueryHandle, error) {
			return sc.SubmitTenant(tenant, []TaskSpec{sp})
		}
		hA1, err := submit("a", a1)
		if err != nil {
			return err
		}
		hC1, err := submit("c", c1)
		if err != nil {
			return err
		}
		hA2, err := submit("a", a2)
		if err != nil {
			return err
		}
		hA3, err := submit("a", a3)
		if err != nil {
			return err
		}
		hB1, err := submit("b", b1)
		if err != nil {
			return err
		}
		for name, h := range map[string]*QueryHandle{"a1": hA1, "c1": hC1, "a2": hA2, "a3": hA3, "b1": hB1} {
			rep, err := h.Wait()
			if err != nil {
				return err
			}
			reps[name] = rep
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	finish := func(name string) time.Duration {
		return reps[name].SubmittedAt + reps[name].Elapsed
	}
	if f := finish("c1"); f >= finish("a1") {
		t.Fatalf("fixture broken: c1 finishes at %v, after a1 at %v", f, finish("a1"))
	}
	// b1 arrived last but is the only eligible waiter when c1's slot
	// frees: tenant a is at quota while a1 runs.
	if got, want := reps["b1"].AdmittedAt, finish("c1"); got != want {
		t.Fatalf("b1 admitted at %v; c1's slot freed at %v — fair-share scan skipped it", got, want)
	}
	if reps["b1"].AdmittedAt >= reps["a2"].AdmittedAt {
		t.Fatalf("b1 (admitted %v) should beat a2 (admitted %v) despite arriving later",
			reps["b1"].AdmittedAt, reps["a2"].AdmittedAt)
	}
	// a2 unblocks only when a1 frees tenant a's quota slot.
	if got, want := reps["a2"].AdmittedAt, finish("a1"); got != want {
		t.Fatalf("a2 admitted at %v; tenant quota freed at %v", got, want)
	}
}

// TestRunServeDeterministic runs the full facade harness twice with the
// same options — including bursty arrivals and live admission limits —
// and demands byte-identical stats. This is the property the serving
// benchmark's GOMAXPROCS grid relies on.
func TestRunServeDeterministic(t *testing.T) {
	o := ServeOptions{
		Sessions: 80,
		Rate:     12,
		Bursty:   true,
		Adm:      Admission{MaxQueries: 4, TenantMaxQueries: 2, MaxQueued: 6},
	}
	a, err := RunServe(DefaultConfig(), o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunServe(DefaultConfig(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same options diverged:\n%+v\n%+v", a, b)
	}
	if a.Completed+a.Shed != a.Submitted || a.Submitted != 80 {
		t.Fatalf("accounting broken: %+v", a)
	}
	out := FormatServe(o, a)
	if !strings.Contains(out, "bursty") || !strings.Contains(out, "p95") {
		t.Fatalf("FormatServe output missing fields:\n%s", out)
	}
}
