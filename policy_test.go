package xprs

// Tests of the pluggable scheduling policies: the identity of the
// defaults (the refactor's core promise), the predicted-SJF win over
// FIFO on the skewed mix, the aging wrapper's starvation bound, and the
// deadline policy's typed hopeless-shed.

import (
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"xprs/internal/core"
)

// TestDefaultPolicyIdentity pins the refactor's contract: the unnamed
// defaults (empty queue policy, empty admission policy) and the
// explicitly named ones ("paper" + "fifo") produce byte-identical
// results, at every GOMAXPROCS. If a policy refactor perturbs the
// default schedule by even one decision, the stream rows diverge.
func TestDefaultPolicyIdentity(t *testing.T) {
	adm := Admission{MaxQueries: 3, TenantMaxQueries: 2}
	base, err := RunStream(DefaultConfig(), 7, 24, 2*time.Second, SchedOptions{}, adm)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		opts := SchedOptions{}
		qp, err := core.QueuePolicyByName("paper", opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Queue = qp
		admX := adm
		admX.Policy = "fifo"
		got, err := RunStream(DefaultConfig(), 7, 24, 2*time.Second, opts, admX)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("GOMAXPROCS=%d: explicit paper+fifo diverged from defaults:\n%+v\n%+v",
				procs, base, got)
		}
	}
}

// TestSchedulingPolicyConfigIdentity checks the Config-level default
// route: Config.SchedulingPolicy = "fifo" must reproduce the unnamed
// default serving run byte for byte.
func TestSchedulingPolicyConfigIdentity(t *testing.T) {
	o := ServeOptions{
		Sessions: 60,
		Rate:     10,
		Adm:      Admission{MaxQueries: 4, TenantMaxQueries: 2, MaxQueued: 6},
	}
	base, err := RunServe(DefaultConfig(), o)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SchedulingPolicy = "fifo"
	got, err := RunServe(cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("SchedulingPolicy=fifo diverged from default:\n%+v\n%+v", base, got)
	}
}

// TestUnknownPoliciesRejected: both policy registries must reject
// unknown names with a diagnostic instead of silently running FIFO.
func TestUnknownPoliciesRejected(t *testing.T) {
	s := New(DefaultConfig())
	err := s.Serve(InterAdj, SchedOptions{}, Admission{Policy: "bogus"}, func(*Scheduler) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("bogus admission policy not rejected: %v", err)
	}
	if _, err := core.QueuePolicyByName("bogus", SchedOptions{}); err == nil {
		t.Fatal("bogus queue policy not rejected")
	}
}

// TestPolicyAblation runs the exported ablation end to end and asserts
// the three headline properties the BENCH export and CI pin: predicted
// SJF beats FIFO on mean response over the skewed mix, the aging
// wrapper bounds the starved longs' wait strictly below plain
// predicted-SJF's, and the deadline policy sheds hopeless work with the
// shed accounted.
func TestPolicyAblation(t *testing.T) {
	o := PolicyAblationOptions{}
	abl, err := RunPolicyAblation(DefaultConfig(), o)
	if err != nil {
		t.Fatal(err)
	}
	o = o.withDefaults()
	rows := map[string]PolicyRow{}
	for _, r := range abl.Rows {
		rows[r.Policy] = r
		if r.Completed+r.Shed != abl.Longs+abl.Shorts {
			t.Fatalf("%s: accounting broken: %+v", r.Policy, r)
		}
	}
	for _, name := range []string{"fifo", "pred-sjf", "pred-sjf+aging", "deadline"} {
		if _, ok := rows[name]; !ok {
			t.Fatalf("missing row %q", name)
		}
	}
	if rows["fifo"].Shed != 0 || rows["fifo"].Completed != abl.Longs+abl.Shorts {
		t.Fatalf("fifo row shed work: %+v", rows["fifo"])
	}
	if got, base := rows["pred-sjf"].MeanResponseNs, rows["fifo"].MeanResponseNs; got >= base {
		t.Fatalf("pred-sjf mean response %v not below fifo %v",
			time.Duration(got), time.Duration(base))
	}
	aging, plain := rows["pred-sjf+aging"], rows["pred-sjf"]
	if aging.MaxLongWaitNs >= plain.MaxLongWaitNs {
		t.Fatalf("aging long wait %v not below plain pred-sjf %v",
			time.Duration(aging.MaxLongWaitNs), time.Duration(plain.MaxLongWaitNs))
	}
	// The starvation bound: a promoted long is next in line at the first
	// wake after AgingMaxWait, so its wait is bounded by the promotion
	// bound plus one running query's remaining service (a long's, worst
	// case ~LongTuples/80 io/s, plus slack for startup cost).
	longService := time.Duration(float64(o.LongTuples)/80*float64(time.Second)) * 2
	if bound := o.AgingMaxWait + longService; time.Duration(aging.MaxLongWaitNs) > bound {
		t.Fatalf("aging long wait %v exceeds bound %v",
			time.Duration(aging.MaxLongWaitNs), bound)
	}
	if rows["deadline"].DeadlineShed == 0 {
		t.Fatal("deadline policy shed nothing on the skewed mix")
	}
	if rows["deadline"].Shed < rows["deadline"].DeadlineShed {
		t.Fatalf("deadline shed accounting broken: %+v", rows["deadline"])
	}
	out := FormatPolicyAblation(abl)
	for _, want := range []string{"pred-sjf+aging", "long max", "d-shed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatPolicyAblation missing %q:\n%s", want, out)
		}
	}
}

// TestDeadlineShedTyped: a query whose best-case response provably
// exceeds its deadline is shed at submit with the typed
// *DeadlineShedError carrying the prediction.
func TestDeadlineShedTyped(t *testing.T) {
	s := New(DefaultConfig())
	if _, err := s.CreateScanRelation("dl", 80, 8000); err != nil {
		t.Fatal(err)
	}
	err := s.Serve(InterAdj, SchedOptions{}, Admission{MaxQueries: 1, Policy: "deadline"}, func(sc *Scheduler) error {
		spec, err := s.SelectTask(0, "dl", 0, 8000)
		if err != nil {
			return err
		}
		h, err := sc.SubmitWith(SubmitOptions{Deadline: time.Millisecond}, []TaskSpec{spec})
		if err != nil {
			return err
		}
		_, werr := h.Wait()
		var dshed *DeadlineShedError
		if !errors.As(werr, &dshed) {
			return errors.New("hopeless query not shed with DeadlineShedError: " + werr.Error())
		}
		if dshed.Deadline != time.Millisecond || dshed.Predicted <= dshed.Deadline {
			t.Errorf("shed fields wrong: %+v", dshed)
		}
		if !strings.Contains(dshed.Error(), "hopeless") {
			t.Errorf("shed message: %v", dshed)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAgingPromotionObserved: under predicted-SJF with a short aging
// bound, a starved long query is promoted — the run beats the unaged
// policy's starvation and the sched.aging_promoted counter ticks.
func TestAgingPromotionObserved(t *testing.T) {
	run := func(aging time.Duration) (longWait time.Duration, promoted int64) {
		cfg := DefaultConfig()
		cfg.Observe = true
		s := New(cfg)
		if _, err := s.CreateScanRelation("big", 80, 12000); err != nil {
			t.Fatal(err)
		}
		if _, err := s.CreateScanRelation("small", 80, 600); err != nil {
			t.Fatal(err)
		}
		adm := Admission{MaxQueries: 1, Policy: "pred-sjf", AgingMaxWait: aging}
		var rep *Report
		err := s.Serve(InterAdj, SchedOptions{}, adm, func(sc *Scheduler) error {
			submit := func(id int, rel string, hi int32) (*QueryHandle, error) {
				spec, err := s.SelectTask(id, rel, 0, hi)
				if err != nil {
					return nil, err
				}
				return sc.SubmitWith(SubmitOptions{}, []TaskSpec{spec})
			}
			h0, err := submit(0, "big", 12000)
			if err != nil {
				return err
			}
			hLong, err := submit(1, "big", 12000)
			if err != nil {
				return err
			}
			var shorts []*QueryHandle
			start := sc.Now()
			for i := 0; i < 6; i++ {
				sc.SleepUntil(start + time.Duration(i+1)*2*time.Second)
				h, err := submit(2+i, "small", 600)
				if err != nil {
					return err
				}
				shorts = append(shorts, h)
			}
			if _, err := h0.Wait(); err != nil {
				return err
			}
			r, err := hLong.Wait()
			if err != nil {
				return err
			}
			rep = r
			for _, h := range shorts {
				if _, err := h.Wait(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.QueueWait, s.Observer().Metrics.Counter("sched.aging_promoted").Value()
	}
	starved, promos0 := run(0)
	if promos0 != 0 {
		t.Fatalf("promotions without aging: %d", promos0)
	}
	// A 1s bound is long expired by the first wake round, so the starved
	// long is promoted ahead of every queued short.
	bounded, promos := run(time.Second)
	if promos < 1 {
		t.Fatalf("aging promoted nothing (counter %d)", promos)
	}
	if bounded >= starved {
		t.Fatalf("aging did not reduce starvation: %v with aging vs %v without", bounded, starved)
	}
}

// TestServeSLOClassesDeterministic: the seeded per-session deadline
// classes keep RunServe a pure function of its options, and the
// deadline policy's sheds surface in the DeadlineShed stat.
func TestServeSLOClassesDeterministic(t *testing.T) {
	o := ServeOptions{
		Sessions: 120,
		Rate:     20,
		Adm:      Admission{MaxQueries: 1, Policy: "deadline"},
		SLOClasses: []SLOClass{
			{Name: "gold", Deadline: 2 * time.Second},
			{Name: "batch", Deadline: 5 * time.Minute},
		},
	}
	a, err := RunServe(DefaultConfig(), o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunServe(DefaultConfig(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("SLO-classed runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Completed+a.Shed != a.Submitted {
		t.Fatalf("accounting broken: %+v", a)
	}
	if a.DeadlineShed == 0 {
		t.Fatal("no hopeless-deadline sheds on an overloaded deadline-policy run")
	}
	if a.DeadlineShed > a.Shed {
		t.Fatalf("deadline sheds exceed total sheds: %+v", a)
	}
}
