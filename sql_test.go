package xprs

import (
	"strings"
	"testing"
)

func sqlFixture(t *testing.T) *System {
	t.Helper()
	s := New(DefaultConfig())
	// orders: a = order id 0..1999; items: a = order id mod 500.
	rows := make([]struct {
		A int32
		B string
	}, 2000)
	for i := range rows {
		rows[i].A = int32(i)
		rows[i].B = "order-payload"
	}
	if _, err := s.LoadRelation("orders", rows); err != nil {
		t.Fatal(err)
	}
	items := make([]struct {
		A int32
		B string
	}, 1500)
	for i := range items {
		items[i].A = int32(i) % 500
		items[i].B = "item-payload"
	}
	if _, err := s.LoadRelation("items", items); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExecSQLSelection(t *testing.T) {
	s := sqlFixture(t)
	res, pl, err := s.ExecSQL("SELECT * FROM orders WHERE a BETWEEN 100 AND 149", InterAdj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 50 {
		t.Fatalf("rows = %d, want 50", res.Len())
	}
	if pl.Plan == nil || pl.SeqCost <= 0 {
		t.Fatal("plan missing")
	}
}

func TestExecSQLSelectionWithIndex(t *testing.T) {
	s := sqlFixture(t)
	if _, err := s.BuildIndex("orders", false); err != nil {
		t.Fatal(err)
	}
	res, pl, err := s.ExecSQL("SELECT * FROM orders WHERE a BETWEEN 10 AND 19", IntraOnly)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 10 {
		t.Fatalf("rows = %d, want 10", res.Len())
	}
	// A highly selective range over an indexed column should pick the
	// index scan access path.
	if got := ExplainPlan(pl); !strings.Contains(got, "IndexScan") {
		t.Fatalf("plan did not use the index:\n%s", got)
	}
}

func TestExecSQLJoin(t *testing.T) {
	s := sqlFixture(t)
	res, pl, err := s.ExecSQL(
		"SELECT * FROM orders, items WHERE orders.a = items.a AND orders.a < 500", InterAdj)
	if err != nil {
		t.Fatal(err)
	}
	// Each item matches exactly one order (ids 0..499 each appear once in
	// orders); every one of the 1500 items joins.
	if res.Len() != 1500 {
		t.Fatalf("rows = %d, want 1500", res.Len())
	}
	for _, tp := range res.Tuples() {
		if len(tp.Vals) != 4 {
			t.Fatalf("row width = %d", len(tp.Vals))
		}
	}
	if len(pl.Graph.Fragments) < 2 {
		t.Fatalf("join plan fragments = %d", len(pl.Graph.Fragments))
	}
}

func TestExecSQLErrors(t *testing.T) {
	s := sqlFixture(t)
	cases := []string{
		"DELETE FROM orders",
		"SELECT * FROM missing",
		"SELECT * FROM orders WHERE zz = 1",
		"SELECT * FROM orders, items", // cross product
	}
	for _, sql := range cases {
		if _, _, err := s.ExecSQL(sql, InterAdj); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
}

func TestExecSQLAggregates(t *testing.T) {
	s := sqlFixture(t)
	// Global aggregate: count and sum over a filtered scan.
	res, _, err := s.ExecSQL("SELECT count(*), sum(a), min(a), max(a) FROM orders WHERE a < 100", InterAdj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("global agg rows = %d", res.Len())
	}
	row := res.Tuples()[0]
	if row.Vals[0].Int != 100 {
		t.Fatalf("count = %d, want 100", row.Vals[0].Int)
	}
	if row.Vals[1].Int != 4950 { // sum 0..99
		t.Fatalf("sum = %d, want 4950", row.Vals[1].Int)
	}
	if row.Vals[2].Int != 0 || row.Vals[3].Int != 99 {
		t.Fatalf("min/max = %d/%d", row.Vals[2].Int, row.Vals[3].Int)
	}
}

func TestExecSQLGroupBy(t *testing.T) {
	s := sqlFixture(t)
	// items has a = i mod 500 over 1500 rows: three per group.
	res, _, err := s.ExecSQL("SELECT a, count(*) FROM items GROUP BY a", InterAdj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 500 {
		t.Fatalf("groups = %d, want 500", res.Len())
	}
	for _, tp := range res.Tuples() {
		if tp.Vals[1].Int != 3 {
			t.Fatalf("group %d count = %d, want 3", tp.Vals[0].Int, tp.Vals[1].Int)
		}
	}
	// Output is ordered by group key (deterministic emission).
	prev := int32(-1)
	for _, tp := range res.Tuples() {
		if tp.Vals[0].Int <= prev {
			t.Fatal("group keys not ordered")
		}
		prev = tp.Vals[0].Int
	}
}

func TestExecSQLGroupByOverJoin(t *testing.T) {
	s := sqlFixture(t)
	// Each of the 1500 items joins one order; grouping the join by item
	// key gives 500 groups of 3.
	res, _, err := s.ExecSQL(
		"SELECT items.a, count(*) FROM orders, items WHERE orders.a = items.a GROUP BY items.a", InterAdj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 500 {
		t.Fatalf("groups = %d, want 500", res.Len())
	}
	var total int32
	for _, tp := range res.Tuples() {
		total += tp.Vals[1].Int
	}
	if total != 1500 {
		t.Fatalf("total count = %d, want 1500", total)
	}
}

func TestExecSQLAggregateErrors(t *testing.T) {
	s := sqlFixture(t)
	bad := []string{
		"SELECT a FROM orders",                      // bare column without aggregates
		"SELECT b, count(*) FROM orders GROUP BY a", // select col != group col
		"SELECT count(*) FROM orders GROUP BY b",    // text group col
		"SELECT sum(b) FROM orders",                 // text sum
		"SELECT * FROM orders GROUP BY a",           // star with group by
		"SELECT count(*), a FROM orders",            // bare col, no group by
	}
	for _, sql := range bad {
		if _, _, err := s.ExecSQL(sql, InterAdj); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
}
