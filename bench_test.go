package xprs

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (DESIGN.md §4 maps each to its experiment). Each
// benchmark reports the simulated (virtual-time) metric the paper
// plots; wall-clock ns/op measures the simulator itself. Run with
//
//	go test -bench=. -benchmem
//
// and see cmd/xprsbench for the same experiments as formatted tables.

import (
	"fmt"
	"os"
	"testing"
	"time"

	"xprs/internal/core"
	"xprs/internal/storage"
	"xprs/internal/workload"
)

// BenchmarkFig3Classification prices the §2.2 classification and maxp
// computation across the paper's rate band.
func BenchmarkFig3Classification(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		rows := Fig3Classification(cfg)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig4BalancePoint prices the §2.3 balance-point solve,
// including the effective-bandwidth fixed point.
func BenchmarkFig4BalancePoint(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		rows := Fig4BalancePoints(cfg)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkSeqSeqEffectiveBandwidth tabulates the §2.3 equation.
func BenchmarkSeqSeqEffectiveBandwidth(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		rows := SeqSeqEffectiveBandwidth(cfg)
		if rows[0].B < rows[len(rows)-1].B {
			b.Fatal("shape")
		}
	}
}

// BenchmarkTableTaskIORates regenerates the §3 task-type table and a
// sample workload against it.
func BenchmarkTableTaskIORates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(DefaultConfig())
		_, infos, err := workload.Generate(s.store, s.params, workload.RandomMix, int64(i), fmt.Sprintf("b%d", i), 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(infos) != workload.WorkloadSize {
			b.Fatal("size")
		}
	}
}

// BenchmarkFig7 runs the full Figure 7 experiment (4 workloads x 3
// policies on the simulated machine) and reports the headline virtual
// elapsed times and the INTER-WITH-ADJ improvement.
func BenchmarkFig7(b *testing.B) {
	cfg := DefaultConfig()
	var last *Fig7Result
	for i := 0; i < b.N; i++ {
		res, err := RunFig7(cfg, 1992)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		for _, k := range WorkloadKinds() {
			for _, p := range Policies() {
				b.ReportMetric(last.Elapsed(k, p).Seconds(), fmt.Sprintf("vs_%s_%s", shortKind(k), shortPolicy(p)))
			}
		}
		b.ReportMetric(last.Improvement(Extreme)*100, "extreme_gain_%")
		b.ReportMetric(last.Improvement(RandomMix)*100, "random_gain_%")
	}
}

// Per-workload Figure 7 cells as separate benches, for -bench filtering.
func benchFig7Cell(b *testing.B, kind WorkloadKind, policy Policy) {
	b.Helper()
	var elapsed float64
	for i := 0; i < b.N; i++ {
		s := New(DefaultConfig())
		specs, _, err := workload.Generate(s.store, s.params, kind, 1992+int64(kind), fmt.Sprintf("c%d", i), 0)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := s.Run(specs, policy, SchedOptions{})
		if err != nil {
			b.Fatal(err)
		}
		elapsed = rep.Elapsed.Seconds()
	}
	b.ReportMetric(elapsed, "virtual_s")
}

func BenchmarkFig7AllCPUIntraOnly(b *testing.B)   { benchFig7Cell(b, AllCPU, IntraOnly) }
func BenchmarkFig7AllCPUInterNoAdj(b *testing.B)  { benchFig7Cell(b, AllCPU, InterNoAdj) }
func BenchmarkFig7AllCPUInterAdj(b *testing.B)    { benchFig7Cell(b, AllCPU, InterAdj) }
func BenchmarkFig7AllIOIntraOnly(b *testing.B)    { benchFig7Cell(b, AllIO, IntraOnly) }
func BenchmarkFig7AllIOInterNoAdj(b *testing.B)   { benchFig7Cell(b, AllIO, InterNoAdj) }
func BenchmarkFig7AllIOInterAdj(b *testing.B)     { benchFig7Cell(b, AllIO, InterAdj) }
func BenchmarkFig7ExtremeIntraOnly(b *testing.B)  { benchFig7Cell(b, Extreme, IntraOnly) }
func BenchmarkFig7ExtremeInterNoAdj(b *testing.B) { benchFig7Cell(b, Extreme, InterNoAdj) }
func BenchmarkFig7ExtremeInterAdj(b *testing.B)   { benchFig7Cell(b, Extreme, InterAdj) }
func BenchmarkFig7RandomIntraOnly(b *testing.B)   { benchFig7Cell(b, RandomMix, IntraOnly) }
func BenchmarkFig7RandomInterNoAdj(b *testing.B)  { benchFig7Cell(b, RandomMix, InterNoAdj) }
func BenchmarkFig7RandomInterAdj(b *testing.B)    { benchFig7Cell(b, RandomMix, InterAdj) }

// BenchmarkSec4Parcost runs the §4 optimizer study on a 4-way join and
// reports estimated and measured costs for both optimizer configurations.
func BenchmarkSec4Parcost(b *testing.B) {
	cfg := DefaultConfig()
	var rows []Sec4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunSec4(cfg, []int{4}, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) == 2 {
		b.ReportMetric(rows[0].Measured.Seconds(), "leftdeep_vs")
		b.ReportMetric(rows[1].Measured.Seconds(), "bushy_vs")
		b.ReportMetric(rows[0].ParCost, "leftdeep_parcost_s")
		b.ReportMetric(rows[1].ParCost, "bushy_parcost_s")
	}
}

// BenchmarkAblationPairing compares the most-extreme pairing heuristic
// (the paper's) with FIFO pairing on the random-mix workload.
func BenchmarkAblationPairing(b *testing.B) {
	var extreme, fifo float64
	for i := 0; i < b.N; i++ {
		for _, v := range []struct {
			opts SchedOptions
			out  *float64
		}{
			{SchedOptions{}, &extreme},
			{SchedOptions{Pairing: core.FIFOPairing}, &fifo},
		} {
			s := New(DefaultConfig())
			specs, _, err := workload.Generate(s.store, s.params, workload.RandomMix, 5, fmt.Sprintf("p%d%p", i, v.out), 0)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := s.Run(specs, InterAdj, v.opts)
			if err != nil {
				b.Fatal(err)
			}
			*v.out = rep.Elapsed.Seconds()
		}
	}
	b.ReportMetric(extreme, "most_extreme_vs")
	b.ReportMetric(fifo, "fifo_vs")
}

// BenchmarkAblationSJF measures shortest-job-first's effect on mean
// response time (the §2.5 multi-user heuristic).
func BenchmarkAblationSJF(b *testing.B) {
	var rows []AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunAblations(DefaultConfig(), 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		_ = r
	}
	if len(rows) == 3 {
		b.ReportMetric(rows[0].MeanResponse.Seconds(), "default_mean_resp_s")
		b.ReportMetric(rows[2].MeanResponse.Seconds(), "sjf_mean_resp_s")
	}
}

// BenchmarkSchedulerDecision prices one Submit/Complete round trip of
// the controller (the master backend's hot path).
func BenchmarkSchedulerDecision(b *testing.B) {
	env := core.Env{NProcs: 8, B: 240, Bs: 240, Br: 177, BrRand: 140}
	for i := 0; i < b.N; i++ {
		ctl := core.NewController(env, core.InterAdj, core.Options{})
		io := &core.Task{ID: 1, T: 10, D: 650, SeqIO: true}
		cpu := &core.Task{ID: 2, T: 10, D: 100, SeqIO: true}
		ctl.Submit(io, cpu)
		ctl.Complete(cpu)
		ctl.Complete(io)
	}
}

// BenchmarkSimulate prices the analytic schedule simulation that backs
// parcost(p, n).
func BenchmarkSimulate(b *testing.B) {
	env := core.Env{NProcs: 8, B: 240, Bs: 240, Br: 177, BrRand: 140}
	var tasks []*core.Task
	for i := 0; i < 10; i++ {
		rate := 10.0
		if i%2 == 0 {
			rate = 60
		}
		tasks = append(tasks, &core.Task{ID: i, T: 10, D: rate * 10, SeqIO: true})
	}
	sim := core.MakeSimTasks(tasks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Simulate(env, core.InterAdj, core.Options{}, sim); err != nil {
			b.Fatal(err)
		}
	}
}

func shortKind(k WorkloadKind) string {
	switch k {
	case AllCPU:
		return "allcpu"
	case AllIO:
		return "allio"
	case Extreme:
		return "extreme"
	default:
		return "random"
	}
}

func shortPolicy(p Policy) string {
	switch p {
	case IntraOnly:
		return "intra"
	case InterNoAdj:
		return "noadj"
	default:
		return "adj"
	}
}

// BenchmarkPipelineThroughput prices the executor hot path itself: one
// scan -> hash-join -> aggregate query over 35k tuples. Wall-clock
// ns/op and allocs/op here measure the pipeline interpreter, the
// quantity the batch-at-a-time executor optimizes; BENCH_pipeline.json
// (xprsbench -fig pipeline) tracks the same numbers across PRs.
func BenchmarkPipelineThroughput(b *testing.B) {
	s, err := NewPipelineBenchSystem(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	// Warm-up run so one-time setup is off the clock.
	if _, _, err := RunPipelineBenchQuery(s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var tuples int64
	for i := 0; i < b.N; i++ {
		n, _, err := RunPipelineBenchQuery(s)
		if err != nil {
			b.Fatal(err)
		}
		tuples += n
	}
	b.ReportMetric(float64(tuples)/b.Elapsed().Seconds(), "tuples/s")
}

// pipelineAllocBudget is the CI allocation gate for the executor hot
// path: the steady-state allocs/op of the canonical pipeline query.
// Measured at ~84 allocs/op after the columnar/pooling work; the budget
// leaves headroom for benign churn while catching any regression back
// toward per-tuple or per-batch allocation (the seed executor sat at
// ~6,400 allocs/op, the tuple-at-a-time baseline at ~128,000).
const pipelineAllocBudget = 150

// TestPipelineAllocGate enforces pipelineAllocBudget. It is skipped
// unless XPRS_ALLOC_GATE is set (CI runs it via `make allocgate`) so
// ordinary `go test ./...` stays robust on noisy developer machines.
func TestPipelineAllocGate(t *testing.T) {
	if os.Getenv("XPRS_ALLOC_GATE") == "" {
		t.Skip("set XPRS_ALLOC_GATE=1 to run the allocation gate")
	}
	res, err := MeasurePipeline(DefaultConfig(), 30)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pipeline: %.1f allocs/op, %.0f B/op, %.0f ns/op (budget %d allocs/op)",
		res.AllocsPerOp, res.BytesPerOp, res.NsPerOp, pipelineAllocBudget)
	if res.AllocsPerOp > pipelineAllocBudget {
		t.Fatalf("pipeline hot path allocates %.1f allocs/op, budget is %d — an allocation regression crept into the executor",
			res.AllocsPerOp, pipelineAllocBudget)
	}
}

// BenchmarkBufferPoolParallel hammers the buffer pool from all procs,
// the access pattern of parallel scan slaves. Before the pool was
// sharded this serialized on one mutex.
func BenchmarkBufferPoolParallel(b *testing.B) {
	bp := storage.NewBufferPool(4096)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var p int64
		for pb.Next() {
			bp.Touch(int32(p%8), p%8192)
			p += 37
		}
	})
}

// BenchmarkSchedulerSubmit prices the online submission path end to
// end: a live scheduler session receiving a stream of single-task
// queries via Submit/Wait, including admission, per-query report
// sealing, and drain. This is the §2.5 service loop the session
// refactor added; the CI bench smoke runs it once per push.
func BenchmarkSchedulerSubmit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(DefaultConfig())
		specs, err := StreamSpecs(s, 11, 6, 2*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		var last time.Duration
		err = s.Serve(InterAdj, SchedOptions{}, Admission{}, func(sc *Scheduler) error {
			handles := make([]*QueryHandle, 0, len(specs))
			for _, sp := range specs {
				sp.Arrival = 0 // all queries land at once: worst-case concurrency
				h, err := sc.Submit([]TaskSpec{sp})
				if err != nil {
					return err
				}
				handles = append(handles, h)
			}
			for _, h := range handles {
				rep, err := h.Wait()
				if err != nil {
					return err
				}
				if end := rep.SubmittedAt + rep.Elapsed; end > last {
					last = end
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(last.Seconds(), "virt-s/session")
	}
}
