package sqlmini

import (
	"fmt"
	"strings"

	"xprs/internal/btree"
	"xprs/internal/expr"
	"xprs/internal/opt"
	"xprs/internal/plan"
	"xprs/internal/storage"
)

// Catalog resolves table names and their indexes for compilation.
type Catalog interface {
	// Relation returns the named relation, or false.
	Relation(name string) (*storage.Relation, bool)
}

// IndexCatalog is optionally implemented by catalogs that can offer
// index access paths.
type IndexCatalog interface {
	// IndexOn returns an index over the given column of the relation, or
	// nil.
	IndexOn(rel *storage.Relation, col int) *btree.Index
}

// Binder resolves column references against a compiled query's tables.
type Binder struct {
	rels []opt.QueryRel
	pos  map[string]int
}

// Resolve maps a column reference to (relation index, column index).
func (b *Binder) Resolve(c ColRef) (relIdx, colIdx int, err error) {
	if c.Table != "" {
		i, ok := b.pos[strings.ToLower(c.Table)]
		if !ok {
			return 0, 0, fmt.Errorf("sqlmini: unknown table %q in %s", c.Table, c)
		}
		j := b.rels[i].Rel.Schema.ColIndex(c.Column)
		if j < 0 {
			return 0, 0, fmt.Errorf("sqlmini: no column %q in %q", c.Column, c.Table)
		}
		return i, j, nil
	}
	// Unqualified: must be unambiguous across tables.
	found := -1
	col := -1
	for i, qr := range b.rels {
		if j := qr.Rel.Schema.ColIndex(c.Column); j >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("sqlmini: column %q is ambiguous", c.Column)
			}
			found, col = i, j
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("sqlmini: unknown column %q", c.Column)
	}
	return found, col, nil
}

// Compile turns a parsed query into an optimizer query: base relations
// with their single-table qualifications, plus the equi-join graph.
// Index access paths are attached when the catalog offers one on a
// column constrained by a range or equality predicate.
func Compile(q *Query, cat Catalog) (*opt.Query, error) {
	oq, _, err := CompileWithBinder(q, cat)
	return oq, err
}

// CompileWithBinder is Compile, additionally returning the binder so
// callers can resolve select-list columns (aggregates, GROUP BY).
func CompileWithBinder(q *Query, cat Catalog) (*opt.Query, *Binder, error) {
	oq := &opt.Query{}
	pos := map[string]int{}
	for i, name := range q.Tables {
		rel, ok := cat.Relation(name)
		if !ok {
			return nil, nil, fmt.Errorf("sqlmini: unknown table %q", name)
		}
		oq.Rels = append(oq.Rels, opt.QueryRel{Rel: rel})
		pos[strings.ToLower(name)] = i
	}
	binder := &Binder{rels: oq.Rels, pos: pos}
	resolve := binder.Resolve

	filters := make([]expr.Expr, len(oq.Rels))
	addFilter := func(rel int, e expr.Expr) {
		if filters[rel] == nil {
			filters[rel] = e
			return
		}
		filters[rel] = expr.Logic{Op: expr.And, Kids: []expr.Expr{filters[rel], e}}
	}
	ranges := make([]keyRange, len(oq.Rels))

	for _, pd := range q.Preds {
		li, lc, err := resolve(pd.Left)
		if err != nil {
			return nil, nil, err
		}
		if pd.IsJoin {
			ri, rc, err := resolve(pd.Right)
			if err != nil {
				return nil, nil, err
			}
			if li == ri {
				return nil, nil, fmt.Errorf("sqlmini: join predicate within one table (%s)", pd.Left)
			}
			oq.Joins = append(oq.Joins, opt.JoinPred{LRel: li, LCol: lc, RRel: ri, RCol: rc})
			continue
		}
		schema := oq.Rels[li].Rel.Schema
		colType := schema.Cols[lc].Typ
		name := schema.Cols[lc].Name
		switch pd.Op {
		case "between":
			if colType != storage.Int4 {
				return nil, nil, fmt.Errorf("sqlmini: BETWEEN needs an int4 column (%s)", pd.Left)
			}
			addFilter(li, expr.ColRange(lc, name, pd.Lo, pd.Hi))
			updateRange(&ranges[li], lc, pd.Lo, pd.Hi)
		default:
			var lit storage.Value
			if pd.Val.IsString {
				if colType != storage.Text {
					return nil, nil, fmt.Errorf("sqlmini: string literal against %v column %q", colType, name)
				}
				lit = storage.TextVal(pd.Val.Str)
			} else {
				if colType != storage.Int4 {
					return nil, nil, fmt.Errorf("sqlmini: integer literal against %v column %q", colType, name)
				}
				lit = storage.IntVal(pd.Val.Int)
			}
			op, err := cmpOp(pd.Op)
			if err != nil {
				return nil, nil, err
			}
			addFilter(li, expr.Cmp{Op: op, L: expr.Col{Idx: lc, Name: name}, R: expr.Const{Val: lit}})
			if colType == storage.Int4 && !pd.Val.IsString {
				switch pd.Op {
				case "=":
					updateRange(&ranges[li], lc, pd.Val.Int, pd.Val.Int)
				case "<":
					updateRange(&ranges[li], lc, minKey, pd.Val.Int-1)
				case "<=":
					updateRange(&ranges[li], lc, minKey, pd.Val.Int)
				case ">":
					updateRange(&ranges[li], lc, pd.Val.Int+1, maxKey)
				case ">=":
					updateRange(&ranges[li], lc, pd.Val.Int, maxKey)
				}
			}
		}
	}

	for i := range oq.Rels {
		oq.Rels[i].Filter = filters[i]
		if r := ranges[i]; r.set {
			if ic, ok := cat.(IndexCatalog); ok {
				if ix := ic.IndexOn(oq.Rels[i].Rel, r.col); ix != nil {
					oq.Rels[i].Index = ix
					oq.Rels[i].KeyLo = r.lo
					oq.Rels[i].KeyHi = r.hi
				}
			}
		}
	}
	return oq, binder, nil
}

const (
	minKey = int32(-1 << 31)
	maxKey = int32(1<<31 - 1)
)

// keyRange tracks a closed range on one int4 column of a relation, the
// basis for offering an index access path.
type keyRange struct {
	col    int
	lo, hi int32
	set    bool
}

// updateRange intersects the tracked key range with [lo, hi]; only one
// indexed column per relation is tracked (the first constrained one).
func updateRange(r *keyRange, col int, lo, hi int32) {
	if !r.set {
		r.col, r.lo, r.hi, r.set = col, lo, hi, true
		return
	}
	if r.col != col {
		return // keep the first column's range
	}
	if lo > r.lo {
		r.lo = lo
	}
	if hi < r.hi {
		r.hi = hi
	}
}

func cmpOp(op string) (expr.CmpOp, error) {
	switch op {
	case "=":
		return expr.EQ, nil
	case "<>":
		return expr.NE, nil
	case "<":
		return expr.LT, nil
	case "<=":
		return expr.LE, nil
	case ">":
		return expr.GT, nil
	case ">=":
		return expr.GE, nil
	default:
		return 0, fmt.Errorf("sqlmini: unsupported operator %q", op)
	}
}

// ResolveAggregates maps a parsed aggregate select list onto the output
// schema of a chosen plan. relOrder is the plan's relation order
// (opt.Result.RelOrder); the returned column indexes address the plan's
// concatenated output schema.
func ResolveAggregates(q *Query, b *Binder, relOrder []int) (groupCol int, funcs []plan.AggFunc, err error) {
	offset := func(rel, col int) (int, error) {
		off := 0
		for _, r := range relOrder {
			if r == rel {
				return off + col, nil
			}
			off += b.rels[r].Rel.Schema.Len()
		}
		return 0, fmt.Errorf("sqlmini: relation %d missing from plan order", rel)
	}
	groupCol = -1
	if q.GroupBy != nil {
		rel, col, err := b.Resolve(*q.GroupBy)
		if err != nil {
			return 0, nil, err
		}
		if b.rels[rel].Rel.Schema.Cols[col].Typ != storage.Int4 {
			return 0, nil, fmt.Errorf("sqlmini: GROUP BY column %s is not int4", q.GroupBy)
		}
		groupCol, err = offset(rel, col)
		if err != nil {
			return 0, nil, err
		}
	}
	for _, a := range q.Aggs {
		switch a.Kind {
		case "count":
			funcs = append(funcs, plan.AggFunc{Kind: plan.CountAll})
		case "sum", "min", "max":
			rel, col, err := b.Resolve(a.Col)
			if err != nil {
				return 0, nil, err
			}
			if b.rels[rel].Rel.Schema.Cols[col].Typ != storage.Int4 {
				return 0, nil, fmt.Errorf("sqlmini: %s over non-int4 column %s", a.Kind, a.Col)
			}
			off, err := offset(rel, col)
			if err != nil {
				return 0, nil, err
			}
			kind := plan.Sum
			if a.Kind == "min" {
				kind = plan.Min
			} else if a.Kind == "max" {
				kind = plan.Max
			}
			funcs = append(funcs, plan.AggFunc{Kind: kind, Col: off})
		default:
			return 0, nil, fmt.Errorf("sqlmini: unknown aggregate %q", a.Kind)
		}
	}
	return groupCol, funcs, nil
}
