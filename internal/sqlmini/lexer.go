// Package sqlmini implements a small SQL front end for the XPRS engine:
// SELECT queries over registered relations with equi-joins and simple
// qualifications — enough to express every query in the paper's
// experiments ("one-variable selection queries" and the §4 multi-way
// joins) without hand-building plan trees.
//
// Grammar (case-insensitive keywords):
//
//	query  := SELECT '*' FROM table (',' table)*
//	          (WHERE pred (AND pred)*)?
//	table  := ident
//	pred   := colref op value
//	        | colref BETWEEN int AND int
//	        | colref '=' colref          (join predicate)
//	colref := ident '.' ident | ident
//	op     := '=' | '<>' | '<' | '<=' | '>' | '>='
//	value  := int | string
package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits the input into tokens. Errors carry byte offsets.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			out = append(out, token{kind: tokIdent, text: input[start:i], pos: start})
		case unicode.IsDigit(rune(c)) || (c == '-' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			i++
			for i < n && unicode.IsDigit(rune(input[i])) {
				i++
			}
			out = append(out, token{kind: tokInt, text: input[start:i], pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlmini: unterminated string at offset %d", start)
			}
			out = append(out, token{kind: tokString, text: sb.String(), pos: start})
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				out = append(out, token{kind: tokSymbol, text: input[i : i+2], pos: i})
				i += 2
			} else {
				out = append(out, token{kind: tokSymbol, text: "<", pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				out = append(out, token{kind: tokSymbol, text: ">=", pos: i})
				i += 2
			} else {
				out = append(out, token{kind: tokSymbol, text: ">", pos: i})
				i++
			}
		case c == '=' || c == ',' || c == '.' || c == '*' || c == '(' || c == ')' || c == ';':
			out = append(out, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("sqlmini: unexpected character %q at offset %d", c, i)
		}
	}
	out = append(out, token{kind: tokEOF, pos: n})
	return out, nil
}
