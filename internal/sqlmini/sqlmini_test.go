package sqlmini

import (
	"strings"
	"testing"

	"xprs/internal/btree"
	"xprs/internal/expr"
	"xprs/internal/storage"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT * FROM r1 WHERE a >= 10 AND b = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	if texts[0] != "SELECT" || texts[1] != "*" || texts[5] != "a" || texts[6] != ">=" {
		t.Fatalf("tokens = %v", texts)
	}
	// The escaped string decodes.
	found := false
	for i, k := range kinds {
		if k == tokString && texts[i] == "it's" {
			found = true
		}
	}
	if !found {
		t.Fatalf("string literal not decoded: %v", texts)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("select ?"); err == nil {
		t.Fatal("bad character accepted")
	}
	if _, err := lex("select 'oops"); err == nil {
		t.Fatal("unterminated string accepted")
	}
}

func TestLexNegativeInt(t *testing.T) {
	toks, err := lex("a > -15")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].kind != tokInt || toks[2].text != "-15" {
		t.Fatalf("tokens = %+v", toks)
	}
}

func TestParseSelection(t *testing.T) {
	q, err := Parse("SELECT * FROM r1 WHERE a BETWEEN 10 AND 20;")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 1 || q.Tables[0] != "r1" {
		t.Fatalf("tables = %v", q.Tables)
	}
	if len(q.Preds) != 1 || q.Preds[0].Op != "between" || q.Preds[0].Lo != 10 || q.Preds[0].Hi != 20 {
		t.Fatalf("preds = %+v", q.Preds)
	}
}

func TestParseJoin(t *testing.T) {
	q, err := Parse("select * from r1, r2, r3 where r1.a = r2.a and r2.a = r3.a and r1.a < 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 3 {
		t.Fatalf("tables = %v", q.Tables)
	}
	joins := 0
	for _, p := range q.Preds {
		if p.IsJoin {
			joins++
		}
	}
	if joins != 2 {
		t.Fatalf("join preds = %d", joins)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE r1",
		"SELECT a FROM r1",
		"SELECT * r1",
		"SELECT * FROM",
		"SELECT * FROM r1 WHERE",
		"SELECT * FROM r1 WHERE a ==",
		"SELECT * FROM r1 WHERE a BETWEEN x AND 2",
		"SELECT * FROM r1 WHERE a BETWEEN 1, 2",
		"SELECT * FROM r1 WHERE a < r2.b", // non-equality join
		"SELECT * FROM r1 extra",
		"SELECT * FROM r1, r1", // self join
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
}

// fixture catalog

type cat struct {
	rels    map[string]*storage.Relation
	indexes map[*storage.Relation]map[int]*btree.Index
}

func (c *cat) Relation(name string) (*storage.Relation, bool) {
	r, ok := c.rels[strings.ToLower(name)]
	return r, ok
}

func (c *cat) IndexOn(rel *storage.Relation, col int) *btree.Index {
	return c.indexes[rel][col]
}

func buildCat(t *testing.T) *cat {
	t.Helper()
	c := &cat{rels: map[string]*storage.Relation{}, indexes: map[*storage.Relation]map[int]*btree.Index{}}
	for i, name := range []string{"r1", "r2"} {
		b := storage.NewBuilder(int32(i+1), name, storage.NewSchema(
			storage.Column{Name: "a", Typ: storage.Int4},
			storage.Column{Name: "b", Typ: storage.Text},
		))
		for j := 0; j < 200; j++ {
			_ = b.Append(storage.NewTuple(storage.IntVal(int32(j)), storage.TextVal("x")))
		}
		r := b.Finalize()
		c.rels[name] = r
	}
	ix, err := btree.BuildIndex("r1_a", c.rels["r1"], 0, false)
	if err != nil {
		t.Fatal(err)
	}
	c.indexes[c.rels["r1"]] = map[int]*btree.Index{0: ix}
	return c
}

func TestCompileSelection(t *testing.T) {
	c := buildCat(t)
	q, err := Parse("SELECT * FROM r1 WHERE a BETWEEN 5 AND 15 AND b = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	oq, err := Compile(q, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(oq.Rels) != 1 || oq.Rels[0].Filter == nil {
		t.Fatalf("compiled = %+v", oq)
	}
	// The indexed range is attached.
	if oq.Rels[0].Index == nil || oq.Rels[0].KeyLo != 5 || oq.Rels[0].KeyHi != 15 {
		t.Fatalf("index range = %+v", oq.Rels[0])
	}
	// The filter keeps both conjuncts.
	passed, err := expr.Qualifies(oq.Rels[0].Filter, storage.NewTuple(storage.IntVal(10), storage.TextVal("x")))
	if err != nil || !passed {
		t.Fatal("conjunct eval")
	}
	passed, _ = expr.Qualifies(oq.Rels[0].Filter, storage.NewTuple(storage.IntVal(10), storage.TextVal("y")))
	if passed {
		t.Fatal("text conjunct ignored")
	}
}

func TestCompileRangeIntersection(t *testing.T) {
	c := buildCat(t)
	q, err := Parse("SELECT * FROM r1 WHERE a >= 5 AND a < 15")
	if err != nil {
		t.Fatal(err)
	}
	oq, err := Compile(q, c)
	if err != nil {
		t.Fatal(err)
	}
	if oq.Rels[0].KeyLo != 5 || oq.Rels[0].KeyHi != 14 {
		t.Fatalf("intersected range = [%d,%d]", oq.Rels[0].KeyLo, oq.Rels[0].KeyHi)
	}
}

func TestCompileJoin(t *testing.T) {
	c := buildCat(t)
	q, err := Parse("SELECT * FROM r1, r2 WHERE r1.a = r2.a AND r2.a < 50")
	if err != nil {
		t.Fatal(err)
	}
	oq, err := Compile(q, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(oq.Joins) != 1 || oq.Joins[0].LRel != 0 || oq.Joins[0].RRel != 1 {
		t.Fatalf("joins = %+v", oq.Joins)
	}
	if oq.Rels[1].Filter == nil {
		t.Fatal("r2 filter lost")
	}
	if oq.Rels[0].Index != nil {
		t.Fatal("unconstrained r1 got an index range")
	}
}

func TestCompileUnqualifiedAmbiguous(t *testing.T) {
	c := buildCat(t)
	q, _ := Parse("SELECT * FROM r1, r2 WHERE a = 1")
	if _, err := Compile(q, c); err == nil {
		t.Fatal("ambiguous column accepted")
	}
	q, _ = Parse("SELECT * FROM r1 WHERE a = 1")
	if _, err := Compile(q, c); err != nil {
		t.Fatal("unambiguous single-table column rejected:", err)
	}
}

func TestCompileErrors(t *testing.T) {
	c := buildCat(t)
	cases := []string{
		"SELECT * FROM missing",
		"SELECT * FROM r1 WHERE zz = 1",
		"SELECT * FROM r1 WHERE r9.a = 1",
		"SELECT * FROM r1 WHERE r1.zz = 1",
		"SELECT * FROM r1 WHERE b BETWEEN 1 AND 2", // text between
		"SELECT * FROM r1 WHERE a = 'text'",        // type mismatch
		"SELECT * FROM r1 WHERE b = 5",             // type mismatch
		"SELECT * FROM r1, r2 WHERE r1.a = r1.a",   // same-table join
	}
	for _, sql := range cases {
		q, err := Parse(sql)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := Compile(q, c); err == nil {
			t.Errorf("compiled %q", sql)
		}
	}
}

func TestColRefString(t *testing.T) {
	if (ColRef{Column: "a"}).String() != "a" || (ColRef{Table: "r", Column: "a"}).String() != "r.a" {
		t.Fatal("colref strings")
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse("SELECT a, count(*), sum(a), min(a), max(a) FROM r1 GROUP BY a")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggs) != 4 || q.GroupBy == nil || q.GroupBy.Column != "a" {
		t.Fatalf("parsed = %+v", q)
	}
	if len(q.PlainCols) != 1 || q.PlainCols[0].Column != "a" {
		t.Fatalf("plain cols = %+v", q.PlainCols)
	}
	// Global aggregate without grouping.
	q2, err := Parse("select count(*) from r1")
	if err != nil {
		t.Fatal(err)
	}
	if q2.GroupBy != nil || len(q2.Aggs) != 1 || q2.Aggs[0].Kind != "count" {
		t.Fatalf("parsed = %+v", q2)
	}
	bad := []string{
		"SELECT count(*) FROM r1 GROUP",         // truncated GROUP BY
		"SELECT count(a) FROM r1",               // count takes *
		"SELECT sum(*) FROM r1",                 // sum takes a column
		"SELECT b, count(*) FROM r1 GROUP BY a", // plain col != group col
		"SELECT * FROM r1 GROUP BY a",           // star with group by
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
}

func TestResolveAggregates(t *testing.T) {
	c := buildCat(t)
	q, err := Parse("SELECT r2.a, count(*), sum(r2.a) FROM r1, r2 WHERE r1.a = r2.a GROUP BY r2.a")
	if err != nil {
		t.Fatal(err)
	}
	_, binder, err := CompileWithBinder(q, c)
	if err != nil {
		t.Fatal(err)
	}
	// Plan order r2 (idx 1) before r1 (idx 0): r2.a sits at offset 0.
	groupCol, funcs, err := ResolveAggregates(q, binder, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if groupCol != 0 {
		t.Fatalf("group col = %d", groupCol)
	}
	if len(funcs) != 2 || funcs[1].Col != 0 {
		t.Fatalf("funcs = %+v", funcs)
	}
	// Reverse order shifts the offsets by r1's width.
	groupCol, funcs, err = ResolveAggregates(q, binder, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if groupCol != 2 || funcs[1].Col != 2 {
		t.Fatalf("shifted = %d, %+v", groupCol, funcs)
	}
	// Text grouping is rejected.
	q2, _ := Parse("SELECT count(*) FROM r1 GROUP BY b")
	_, b2, err := CompileWithBinder(q2, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ResolveAggregates(q2, b2, []int{0}); err == nil {
		t.Fatal("text group col accepted")
	}
}
