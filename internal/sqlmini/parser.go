package sqlmini

import (
	"fmt"
	"strconv"
	"strings"
)

// ColRef names a column, optionally qualified by table.
type ColRef struct {
	Table  string // empty when unqualified
	Column string
}

// String implements fmt.Stringer.
func (c ColRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// Value is a literal.
type Value struct {
	IsString bool
	Int      int32
	Str      string
}

// Pred is one WHERE conjunct.
type Pred struct {
	Left ColRef
	Op   string // =, <>, <, <=, >, >=, between
	// For scalar predicates:
	Val Value
	// For BETWEEN:
	Lo, Hi int32
	// For join predicates (col = col):
	Right  ColRef
	IsJoin bool
}

// AggItem is one aggregate in the select list.
type AggItem struct {
	Kind string // "count", "sum", "min", "max"
	Col  ColRef // ignored for count(*)
}

// Query is the parsed statement.
type Query struct {
	Tables []string
	Preds  []Pred
	// Star is true for SELECT *.
	Star bool
	// Aggs holds aggregate select items; PlainCols the bare columns
	// (which must match the GROUP BY column).
	Aggs      []AggItem
	PlainCols []ColRef
	// GroupBy is the single grouping column, when present.
	GroupBy *ColRef
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("sqlmini: offset %d: %s", t.pos, fmt.Sprintf(format, args...))
}

// keyword matches a case-insensitive identifier keyword.
func (p *parser) keyword(word string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(word string) error {
	if !p.keyword(word) {
		return p.errf(p.peek(), "expected %s", strings.ToUpper(word))
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.i++
		return nil
	}
	return p.errf(t, "expected %q", sym)
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf(t, "expected identifier")
	}
	p.i++
	return t.text, nil
}

// Parse parses one SELECT statement.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	if t := p.peek(); t.kind == tokSymbol && t.text == "*" {
		p.i++
		q.Star = true
	} else {
		for {
			if err := p.selectItem(q); err != nil {
				return nil, err
			}
			if t := p.peek(); t.kind == tokSymbol && t.text == "," {
				p.i++
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		q.Tables = append(q.Tables, name)
		t := p.peek()
		if t.kind == tokSymbol && t.text == "," {
			p.i++
			continue
		}
		break
	}
	if p.keyword("where") {
		for {
			pred, err := p.pred()
			if err != nil {
				return nil, err
			}
			q.Preds = append(q.Preds, pred)
			if !p.keyword("and") {
				break
			}
		}
	}
	if p.keyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		c, err := p.colref()
		if err != nil {
			return nil, err
		}
		q.GroupBy = &c
	}
	// Optional trailing semicolon.
	if t := p.peek(); t.kind == tokSymbol && t.text == ";" {
		p.i++
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf(t, "unexpected trailing input %q", t.text)
	}
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("sqlmini: no tables")
	}
	if err := q.checkSelectList(); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, tb := range q.Tables {
		key := strings.ToLower(tb)
		if seen[key] {
			return nil, fmt.Errorf("sqlmini: table %q listed twice (self-joins are unsupported)", tb)
		}
		seen[key] = true
	}
	return q, nil
}

func (p *parser) colref() (ColRef, error) {
	first, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	t := p.peek()
	if t.kind == tokSymbol && t.text == "." {
		p.i++
		col, err := p.ident()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: first, Column: col}, nil
	}
	return ColRef{Column: first}, nil
}

func (p *parser) pred() (Pred, error) {
	left, err := p.colref()
	if err != nil {
		return Pred{}, err
	}
	if p.keyword("between") {
		lo, err := p.intLit()
		if err != nil {
			return Pred{}, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return Pred{}, err
		}
		hi, err := p.intLit()
		if err != nil {
			return Pred{}, err
		}
		return Pred{Left: left, Op: "between", Lo: lo, Hi: hi}, nil
	}
	t := p.peek()
	if t.kind != tokSymbol {
		return Pred{}, p.errf(t, "expected comparison operator")
	}
	switch t.text {
	case "=", "<>", "<", "<=", ">", ">=":
		p.i++
	default:
		return Pred{}, p.errf(t, "unsupported operator %q", t.text)
	}
	op := t.text
	// Either a literal or a column reference (join predicate).
	rt := p.peek()
	switch rt.kind {
	case tokInt:
		p.i++
		v, err := strconv.ParseInt(rt.text, 10, 32)
		if err != nil {
			return Pred{}, p.errf(rt, "integer out of range")
		}
		return Pred{Left: left, Op: op, Val: Value{Int: int32(v)}}, nil
	case tokString:
		p.i++
		return Pred{Left: left, Op: op, Val: Value{IsString: true, Str: rt.text}}, nil
	case tokIdent:
		right, err := p.colref()
		if err != nil {
			return Pred{}, err
		}
		if op != "=" {
			return Pred{}, p.errf(rt, "join predicates must use =")
		}
		return Pred{Left: left, Op: op, Right: right, IsJoin: true}, nil
	default:
		return Pred{}, p.errf(rt, "expected literal or column")
	}
}

func (p *parser) intLit() (int32, error) {
	t := p.peek()
	if t.kind != tokInt {
		return 0, p.errf(t, "expected integer")
	}
	p.i++
	v, err := strconv.ParseInt(t.text, 10, 32)
	if err != nil {
		return 0, p.errf(t, "integer out of range")
	}
	return int32(v), nil
}

// selectItem parses one non-star select-list entry: an aggregate call or
// a bare column.
func (p *parser) selectItem(q *Query) error {
	t := p.peek()
	if t.kind != tokIdent {
		return p.errf(t, "expected select item")
	}
	kw := strings.ToLower(t.text)
	switch kw {
	case "count", "sum", "min", "max":
		// Lookahead for '(' distinguishes an aggregate from a column that
		// happens to share the name.
		if p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
			p.i += 2
			item := AggItem{Kind: kw}
			if kw == "count" {
				if err := p.expectSymbol("*"); err != nil {
					return err
				}
			} else {
				c, err := p.colref()
				if err != nil {
					return err
				}
				item.Col = c
			}
			if err := p.expectSymbol(")"); err != nil {
				return err
			}
			q.Aggs = append(q.Aggs, item)
			return nil
		}
	}
	c, err := p.colref()
	if err != nil {
		return err
	}
	q.PlainCols = append(q.PlainCols, c)
	return nil
}

// checkSelectList enforces the aggregate rules: with aggregates present,
// every bare select column must be the GROUP BY column.
func (q *Query) checkSelectList() error {
	if q.Star {
		if q.GroupBy != nil {
			return fmt.Errorf("sqlmini: SELECT * with GROUP BY is not supported")
		}
		return nil
	}
	if len(q.Aggs) == 0 {
		return fmt.Errorf("sqlmini: only SELECT * or aggregate select lists are supported")
	}
	for _, c := range q.PlainCols {
		if q.GroupBy == nil || !sameCol(c, *q.GroupBy) {
			return fmt.Errorf("sqlmini: column %s in select list must be the GROUP BY column", c)
		}
	}
	return nil
}

func sameCol(a, b ColRef) bool {
	return strings.EqualFold(a.Table, b.Table) && strings.EqualFold(a.Column, b.Column)
}
