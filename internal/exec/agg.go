package exec

import (
	"math"
	"sort"
	"sync"

	"xprs/internal/plan"
	"xprs/internal/storage"
)

// Aggregation executes in the classic parallel two-phase shape: every
// slave backend folds its partition into a private accumulator table
// (no coordination on the hot path), and the partials merge into the
// fragment's shared state when each slave exits. Finalization emits one
// row per group into the output temp, ordered by group key so results
// are deterministic.

// aggState is the shared, merge-side aggregation state of a fragment.
type aggState struct {
	groupCol int // -1 for a single global group
	funcs    []plan.AggFunc

	mu     sync.Mutex
	groups map[int32][]int64
}

func newAggState(a *plan.Agg) *aggState {
	return &aggState{groupCol: a.GroupCol, funcs: a.Funcs, groups: make(map[int32][]int64)}
}

// initAccum returns the identity accumulator for the function list.
func initAccum(funcs []plan.AggFunc) []int64 {
	acc := make([]int64, len(funcs))
	for i, f := range funcs {
		switch f.Kind {
		case plan.Min:
			acc[i] = math.MaxInt64
		case plan.Max:
			acc[i] = math.MinInt64
		}
	}
	return acc
}

// fold adds one input tuple into an accumulator.
func fold(acc []int64, funcs []plan.AggFunc, t storage.Tuple) {
	for i, f := range funcs {
		switch f.Kind {
		case plan.CountAll:
			acc[i]++
		case plan.Sum:
			acc[i] += int64(t.Vals[f.Col].Int)
		case plan.Min:
			if v := int64(t.Vals[f.Col].Int); v < acc[i] {
				acc[i] = v
			}
		case plan.Max:
			if v := int64(t.Vals[f.Col].Int); v > acc[i] {
				acc[i] = v
			}
		}
	}
}

// mergeInto folds a partial accumulator table into the shared state.
func (st *aggState) mergeInto(partial map[int32][]int64) {
	if len(partial) == 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for k, acc := range partial {
		dst, ok := st.groups[k]
		if !ok {
			st.groups[k] = acc
			continue
		}
		for i, f := range st.funcs {
			switch f.Kind {
			case plan.CountAll, plan.Sum:
				dst[i] += acc[i]
			case plan.Min:
				if acc[i] < dst[i] {
					dst[i] = acc[i]
				}
			case plan.Max:
				if acc[i] > dst[i] {
					dst[i] = acc[i]
				}
			}
		}
	}
}

// emit writes the final per-group rows, ordered by group key.
func (st *aggState) emit(out *Temp) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	keys := make([]int32, 0, len(st.groups))
	for k := range st.groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	rows := make([]storage.Tuple, 0, len(keys))
	for _, k := range keys {
		acc := st.groups[k]
		var vals []storage.Value
		if st.groupCol >= 0 {
			vals = append(vals, storage.IntVal(k))
		}
		for _, v := range acc {
			vals = append(vals, storage.IntVal(int32(v)))
		}
		rows = append(rows, storage.Tuple{Vals: vals})
	}
	out.Append(rows)
	return len(rows)
}

// accumulate is the per-tuple slave-side path.
func (sc *slaveCtx) accumulate(st *aggState, t storage.Tuple) {
	if sc.aggLocal == nil {
		sc.aggLocal = make(map[int32][]int64)
	}
	key := int32(0)
	if st.groupCol >= 0 {
		key = t.Vals[st.groupCol].Int
	}
	acc, ok := sc.aggLocal[key]
	if !ok {
		acc = initAccum(st.funcs)
		sc.aggLocal[key] = acc
	}
	fold(acc, st.funcs, t)
}
