package exec

import (
	"math"
	"math/bits"
	"slices"
	"sync"

	"xprs/internal/plan"
	"xprs/internal/storage"
)

// Aggregation executes in the classic parallel two-phase shape: every
// slave backend folds its partition into a private accumulator table
// (no coordination on the hot path), and the partials merge into the
// fragment's shared state when each slave exits. Finalization emits one
// row per group into the output temp, ordered by group key so results
// are deterministic.

// aggState is the shared, merge-side aggregation state of a fragment.
type aggState struct {
	groupCol int // -1 for a single global group
	funcs    []plan.AggFunc

	// eng enables dense-scratch recycling; nil (tests) allocates plainly.
	eng *Engine

	mu     sync.Mutex
	groups map[int32][]int64
	// Dense fast path: group keys inside [denseBase, denseBase+W) fold
	// into a flat accumulator array instead of the map. The window is
	// adopted from the first slave that merges one in; keys outside it
	// fall back to the map, so any key distribution stays correct.
	denseScr  *denseScratch
	denseBase int32
}

func newAggState(a *plan.Agg) *aggState {
	return &aggState{groupCol: a.GroupCol, funcs: a.Funcs, groups: make(map[int32][]int64)}
}

// aggDenseWindow is the dense accumulator window: keys spanning less
// than 64K cover the common group-by shapes while the scratch (W
// accumulators plus a seen bitmap) stays small enough to recycle
// per-slave.
const aggDenseWindow = 1 << 16

// denseScratch is one dense accumulator window: nf accumulator words
// per key slot plus a seen bitmap. Accumulator cells are initialized on
// first touch (the bitmap says which are live), so recycled scratch
// needs only its bitmap cleared.
type denseScratch struct {
	acc  []int64
	seen []uint64
}

// popSeen counts the live keys.
func (d *denseScratch) popSeen() int {
	n := 0
	for _, w := range d.seen {
		n += bits.OnesCount64(w)
	}
	return n
}

// initAccum returns the identity accumulator for the function list.
func initAccum(funcs []plan.AggFunc) []int64 {
	acc := make([]int64, len(funcs))
	for i, f := range funcs {
		switch f.Kind {
		case plan.Min:
			acc[i] = math.MaxInt64
		case plan.Max:
			acc[i] = math.MinInt64
		}
	}
	return acc
}

// fold adds one input tuple into an accumulator.
func fold(acc []int64, funcs []plan.AggFunc, t storage.Tuple) {
	for i, f := range funcs {
		switch f.Kind {
		case plan.CountAll:
			acc[i]++
		case plan.Sum:
			acc[i] += int64(t.Vals[f.Col].Int)
		case plan.Min:
			if v := int64(t.Vals[f.Col].Int); v < acc[i] {
				acc[i] = v
			}
		case plan.Max:
			if v := int64(t.Vals[f.Col].Int); v > acc[i] {
				acc[i] = v
			}
		}
	}
}

// mergeAcc folds src into dst under the function list.
func mergeAcc(dst, src []int64, funcs []plan.AggFunc) {
	for i, f := range funcs {
		switch f.Kind {
		case plan.CountAll, plan.Sum:
			dst[i] += src[i]
		case plan.Min:
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		case plan.Max:
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

// mergeOneLocked folds one group into the shared state, routing keys
// inside the adopted dense window into the flat array so no key ever
// lives in both stores. owned says acc may be stored directly; callers
// whose acc aliases recycled scratch pass false to force a copy.
func (st *aggState) mergeOneLocked(k int32, acc []int64, owned bool) {
	if d := st.denseScr; d != nil {
		if idx := int(k) - int(st.denseBase); 0 <= idx && idx < aggDenseWindow {
			nf := len(st.funcs)
			cell := d.acc[idx*nf : idx*nf+nf]
			w, bit := idx>>6, uint64(1)<<(idx&63)
			if d.seen[w]&bit == 0 {
				d.seen[w] |= bit
				copy(cell, acc)
				return
			}
			mergeAcc(cell, acc, st.funcs)
			return
		}
	}
	dst, ok := st.groups[k]
	if !ok {
		if !owned {
			acc = append([]int64(nil), acc...)
		}
		st.groups[k] = acc
		return
	}
	mergeAcc(dst, acc, st.funcs)
}

// mergeInto folds a partial accumulator table into the shared state.
func (st *aggState) mergeInto(partial map[int32][]int64) {
	if len(partial) == 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for k, acc := range partial {
		st.mergeOneLocked(k, acc, true)
	}
}

// mergeDense folds one slave's dense window into the shared state and
// reports whether the scratch was adopted (the caller must not recycle
// it then). The first window in is adopted wholesale — zero merge cost
// for the common one-window case — and any map keys that already landed
// inside it are pulled in to preserve the one-store-per-key invariant.
// Later windows translate per key, spilling outliers to the map.
func (st *aggState) mergeDense(base int32, d *denseScratch) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	nf := len(st.funcs)
	if st.denseScr == nil {
		st.denseScr, st.denseBase = d, base
		for k, acc := range st.groups {
			idx := int(k) - int(base)
			if idx < 0 || idx >= aggDenseWindow {
				continue
			}
			cell := d.acc[idx*nf : idx*nf+nf]
			w, bit := idx>>6, uint64(1)<<(idx&63)
			if d.seen[w]&bit == 0 {
				d.seen[w] |= bit
				copy(cell, acc)
			} else {
				mergeAcc(cell, acc, st.funcs)
			}
			delete(st.groups, k)
		}
		return true
	}
	for wi, w := range d.seen {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << b
			idx := wi<<6 + b
			st.mergeOneLocked(base+int32(idx), d.acc[idx*nf:idx*nf+nf], false)
		}
	}
	return false
}

// forEachGroupLocked visits every group in ascending key order, merging
// the dense window walk with the sorted map keys. Dense slots ascend in
// key order by construction, and no key lives in both stores.
func (st *aggState) forEachGroupLocked(keys []int32, fn func(k int32, acc []int64)) {
	d := st.denseScr
	if d == nil {
		for _, k := range keys {
			fn(k, st.groups[k])
		}
		return
	}
	nf := len(st.funcs)
	ki := 0
	for wi, w := range d.seen {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << b
			idx := wi<<6 + b
			dk := st.denseBase + int32(idx)
			for ki < len(keys) && keys[ki] < dk {
				fn(keys[ki], st.groups[keys[ki]])
				ki++
			}
			fn(dk, d.acc[idx*nf:idx*nf+nf])
		}
	}
	for ; ki < len(keys); ki++ {
		fn(keys[ki], st.groups[keys[ki]])
	}
}

// releaseDenseLocked recycles the shared dense scratch after emit.
func (st *aggState) releaseDenseLocked() {
	if st.denseScr != nil && st.eng != nil {
		st.eng.putDense(st.denseScr)
	}
	st.denseScr = nil
}

// emit writes the final per-group rows, ordered by group key. Agg
// outputs are all-int4, so rows append straight into the output temp's
// integer vectors — no tuple or Value is ever materialized; a row
// fallback covers any schema that is not (it builds all rows over one
// backing array).
func (st *aggState) emit(out *Temp) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	keys := make([]int32, 0, len(st.groups))
	for k := range st.groups {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	n := len(keys)
	if st.denseScr != nil {
		n += st.denseScr.popSeen()
	}
	if n == 0 {
		st.releaseDenseLocked()
		return 0
	}
	allInt := true
	for _, c := range out.Schema.Cols {
		if c.Typ != storage.Int4 {
			allInt = false
			break
		}
	}
	if allInt {
		out.appendDirect(func(cb *storage.ColBatch) int {
			gv := 0
			if st.groupCol >= 0 {
				gv = 1
				cb.Vecs[0].Ints = slices.Grow(cb.Vecs[0].Ints, n)
			}
			for i := range st.funcs {
				cb.Vecs[gv+i].Ints = slices.Grow(cb.Vecs[gv+i].Ints, n)
			}
			st.forEachGroupLocked(keys, func(k int32, acc []int64) {
				if gv == 1 {
					cb.Vecs[0].Ints = append(cb.Vecs[0].Ints, k)
				}
				for i, v := range acc {
					cb.Vecs[gv+i].Ints = append(cb.Vecs[gv+i].Ints, int32(v))
				}
			})
			return n
		})
		st.releaseDenseLocked()
		return n
	}
	ncols := len(st.funcs)
	if st.groupCol >= 0 {
		ncols++
	}
	vals := make([]storage.Value, 0, n*ncols)
	rows := make([]storage.Tuple, 0, n)
	st.forEachGroupLocked(keys, func(k int32, acc []int64) {
		start := len(vals)
		if st.groupCol >= 0 {
			vals = append(vals, storage.IntVal(k))
		}
		for _, v := range acc {
			vals = append(vals, storage.IntVal(int32(v)))
		}
		rows = append(rows, storage.Tuple{Vals: vals[start:len(vals):len(vals)]})
	})
	out.Append(rows)
	st.releaseDenseLocked()
	return n
}

// accumulateBatch folds one batch into the slave's private accumulator
// table. Consecutive tuples of one group (the common case when the
// input arrives ordered) reuse the last looked-up accumulator.
func (sc *slaveCtx) accumulateBatch(st *aggState, ts []storage.Tuple) {
	if sc.aggLocal == nil {
		sc.aggLocal = make(map[int32][]int64)
	}
	funcs := st.funcs
	gc := st.groupCol
	var lastKey int32
	var lastAcc []int64
	for i := range ts {
		key := int32(0)
		if gc >= 0 {
			key = ts[i].Vals[gc].Int
		}
		acc := lastAcc
		if acc == nil || key != lastKey {
			var ok bool
			acc, ok = sc.aggLocal[key]
			if !ok {
				acc = sc.newAccum(funcs)
				sc.aggLocal[key] = acc
			}
			lastKey, lastAcc = key, acc
		}
		fold(acc, funcs, ts[i])
	}
}

// accumulateBatchCols folds the live rows of a columnar batch into the
// slave's private accumulators. Keys inside a 64K window anchored at the
// first key seen fold into a flat array — one bounds check and no
// hashing per row; outliers fall back to the row path's map + slab, so
// any key distribution stays correct. Accumulator cells initialize on
// first touch via the seen bitmap, which is what lets recycled scratch
// skip a 512KB zeroing pass per slave.
func (sc *slaveCtx) accumulateBatchCols(st *aggState, b *storage.ColBatch) {
	funcs := st.funcs
	nf := len(funcs)
	gc := st.groupCol
	if b.Live() == 0 {
		return
	}
	if gc < 0 || nf == 0 || b.Vecs[gc].Typ != storage.Int4 || b.Vecs[gc].Ints == nil {
		sc.accumulateColsViaMap(st, b)
		return
	}
	keys := b.Vecs[gc].Ints
	if cap(sc.aggSrc) < nf {
		sc.aggSrc = make([][]int32, nf)
	}
	src := sc.aggSrc[:nf]
	for i, f := range funcs {
		src[i] = nil
		if f.Kind != plan.CountAll && f.Col >= 0 && f.Col < len(b.Vecs) && b.Vecs[f.Col].Typ == storage.Int4 {
			src[i] = b.Vecs[f.Col].Ints
		}
	}
	if sc.aggDense == nil {
		first := keys[0]
		if b.Sel != nil {
			first = keys[b.Sel[0]]
		}
		sc.aggBase = first &^ int32(aggDenseWindow-1)
		sc.aggDense = sc.rt.fr.eng.getDense(nf)
	}
	d, base := sc.aggDense, sc.aggBase
	foldRow := func(row int) {
		k := keys[row]
		var acc []int64
		if idx := int(k) - int(base); 0 <= idx && idx < aggDenseWindow {
			off := idx * nf
			acc = d.acc[off : off+nf]
			w, bit := idx>>6, uint64(1)<<(idx&63)
			if d.seen[w]&bit == 0 {
				d.seen[w] |= bit
				for i, f := range funcs {
					switch f.Kind {
					case plan.Min:
						acc[i] = math.MaxInt64
					case plan.Max:
						acc[i] = math.MinInt64
					default:
						acc[i] = 0
					}
				}
			}
		} else {
			if sc.aggLocal == nil {
				sc.aggLocal = make(map[int32][]int64)
			}
			a, ok := sc.aggLocal[k]
			if !ok {
				a = sc.newAccum(funcs)
				sc.aggLocal[k] = a
			}
			acc = a
		}
		for i, f := range funcs {
			var v int64
			if s := src[i]; s != nil {
				v = int64(s[row])
			}
			switch f.Kind {
			case plan.CountAll:
				acc[i]++
			case plan.Sum:
				acc[i] += v
			case plan.Min:
				if v < acc[i] {
					acc[i] = v
				}
			case plan.Max:
				if v > acc[i] {
					acc[i] = v
				}
			}
		}
	}
	if b.Sel == nil {
		for row := 0; row < b.N; row++ {
			foldRow(row)
		}
	} else {
		for _, row := range b.Sel {
			foldRow(int(row))
		}
	}
}

// accumulateColsViaMap is the cold columnar fallback: global groups and
// degenerate key vectors fold through the map path per row, reading
// values the way the row path's zero Value.Int would.
func (sc *slaveCtx) accumulateColsViaMap(st *aggState, b *storage.ColBatch) {
	if sc.aggLocal == nil {
		sc.aggLocal = make(map[int32][]int64)
	}
	funcs := st.funcs
	gc := st.groupCol
	var keys []int32
	if gc >= 0 && gc < len(b.Vecs) && b.Vecs[gc].Typ == storage.Int4 {
		keys = b.Vecs[gc].Ints
	}
	foldRow := func(row int) {
		key := int32(0)
		if keys != nil {
			key = keys[row]
		}
		acc, ok := sc.aggLocal[key]
		if !ok {
			acc = sc.newAccum(funcs)
			sc.aggLocal[key] = acc
		}
		for i, f := range funcs {
			var v int64
			if f.Col >= 0 && f.Col < len(b.Vecs) && b.Vecs[f.Col].Typ == storage.Int4 && b.Vecs[f.Col].Ints != nil {
				v = int64(b.Vecs[f.Col].Ints[row])
			}
			switch f.Kind {
			case plan.CountAll:
				acc[i]++
			case plan.Sum:
				acc[i] += v
			case plan.Min:
				if v < acc[i] {
					acc[i] = v
				}
			case plan.Max:
				if v > acc[i] {
					acc[i] = v
				}
			}
		}
	}
	if b.Sel == nil {
		for row := 0; row < b.N; row++ {
			foldRow(row)
		}
	} else {
		for _, row := range b.Sel {
			foldRow(int(row))
		}
	}
}

// getDense hands out a dense scratch window for nf functions; the seen
// bitmap is clear, the accumulators deliberately dirty (first touch
// initializes them).
func (e *Engine) getDense(nf int) *denseScratch {
	need := aggDenseWindow * nf
	if v := e.densePool.Get(); v != nil {
		d := v.(*denseScratch)
		if cap(d.acc) >= need {
			d.acc = d.acc[:need]
			return d
		}
	}
	if need == 0 {
		need = aggDenseWindow
	}
	return &denseScratch{acc: make([]int64, need), seen: make([]uint64, aggDenseWindow/64)}
}

// putDense recycles a dense scratch window, clearing its bitmap so the
// next user starts empty.
func (e *Engine) putDense(d *denseScratch) {
	if d == nil {
		return
	}
	clear(d.seen)
	e.densePool.Put(d)
}

// aggSlabChunk is the accumulator-slab growth unit (int64 words).
const aggSlabChunk = 1024

// newAccum carves an identity accumulator out of the slave's slab.
func (sc *slaveCtx) newAccum(funcs []plan.AggFunc) []int64 {
	n := len(funcs)
	if n == 0 {
		return []int64{}
	}
	if len(sc.aggSlab)+n > cap(sc.aggSlab) {
		c := aggSlabChunk
		if c < n {
			c = n
		}
		sc.aggSlab = make([]int64, 0, c)
	}
	start := len(sc.aggSlab)
	sc.aggSlab = sc.aggSlab[:start+n]
	acc := sc.aggSlab[start : start+n : start+n]
	for i, f := range funcs {
		switch f.Kind {
		case plan.Min:
			acc[i] = math.MaxInt64
		case plan.Max:
			acc[i] = math.MinInt64
		default:
			acc[i] = 0
		}
	}
	return acc
}
