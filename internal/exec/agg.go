package exec

import (
	"math"
	"slices"
	"sync"

	"xprs/internal/plan"
	"xprs/internal/storage"
)

// Aggregation executes in the classic parallel two-phase shape: every
// slave backend folds its partition into a private accumulator table
// (no coordination on the hot path), and the partials merge into the
// fragment's shared state when each slave exits. Finalization emits one
// row per group into the output temp, ordered by group key so results
// are deterministic.

// aggState is the shared, merge-side aggregation state of a fragment.
type aggState struct {
	groupCol int // -1 for a single global group
	funcs    []plan.AggFunc

	mu     sync.Mutex
	groups map[int32][]int64
}

func newAggState(a *plan.Agg) *aggState {
	return &aggState{groupCol: a.GroupCol, funcs: a.Funcs, groups: make(map[int32][]int64)}
}

// initAccum returns the identity accumulator for the function list.
func initAccum(funcs []plan.AggFunc) []int64 {
	acc := make([]int64, len(funcs))
	for i, f := range funcs {
		switch f.Kind {
		case plan.Min:
			acc[i] = math.MaxInt64
		case plan.Max:
			acc[i] = math.MinInt64
		}
	}
	return acc
}

// fold adds one input tuple into an accumulator.
func fold(acc []int64, funcs []plan.AggFunc, t storage.Tuple) {
	for i, f := range funcs {
		switch f.Kind {
		case plan.CountAll:
			acc[i]++
		case plan.Sum:
			acc[i] += int64(t.Vals[f.Col].Int)
		case plan.Min:
			if v := int64(t.Vals[f.Col].Int); v < acc[i] {
				acc[i] = v
			}
		case plan.Max:
			if v := int64(t.Vals[f.Col].Int); v > acc[i] {
				acc[i] = v
			}
		}
	}
}

// mergeInto folds a partial accumulator table into the shared state.
func (st *aggState) mergeInto(partial map[int32][]int64) {
	if len(partial) == 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for k, acc := range partial {
		dst, ok := st.groups[k]
		if !ok {
			st.groups[k] = acc
			continue
		}
		for i, f := range st.funcs {
			switch f.Kind {
			case plan.CountAll, plan.Sum:
				dst[i] += acc[i]
			case plan.Min:
				if acc[i] < dst[i] {
					dst[i] = acc[i]
				}
			case plan.Max:
				if acc[i] > dst[i] {
					dst[i] = acc[i]
				}
			}
		}
	}
}

// emit writes the final per-group rows, ordered by group key. All row
// values share one backing array: the output is built exactly once, so
// per-row slice allocations would be pure overhead.
func (st *aggState) emit(out *Temp) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	keys := make([]int32, 0, len(st.groups))
	for k := range st.groups {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	ncols := len(st.funcs)
	if st.groupCol >= 0 {
		ncols++
	}
	vals := make([]storage.Value, 0, len(keys)*ncols)
	rows := make([]storage.Tuple, 0, len(keys))
	for _, k := range keys {
		acc := st.groups[k]
		start := len(vals)
		if st.groupCol >= 0 {
			vals = append(vals, storage.IntVal(k))
		}
		for _, v := range acc {
			vals = append(vals, storage.IntVal(int32(v)))
		}
		rows = append(rows, storage.Tuple{Vals: vals[start:len(vals):len(vals)]})
	}
	out.Append(rows)
	return len(rows)
}

// accumulateBatch folds one batch into the slave's private accumulator
// table. Consecutive tuples of one group (the common case when the
// input arrives ordered) reuse the last looked-up accumulator.
func (sc *slaveCtx) accumulateBatch(st *aggState, ts []storage.Tuple) {
	if sc.aggLocal == nil {
		sc.aggLocal = make(map[int32][]int64)
	}
	funcs := st.funcs
	gc := st.groupCol
	var lastKey int32
	var lastAcc []int64
	for i := range ts {
		key := int32(0)
		if gc >= 0 {
			key = ts[i].Vals[gc].Int
		}
		acc := lastAcc
		if acc == nil || key != lastKey {
			var ok bool
			acc, ok = sc.aggLocal[key]
			if !ok {
				acc = sc.newAccum(funcs)
				sc.aggLocal[key] = acc
			}
			lastKey, lastAcc = key, acc
		}
		fold(acc, funcs, ts[i])
	}
}

// aggSlabChunk is the accumulator-slab growth unit (int64 words).
const aggSlabChunk = 1024

// newAccum carves an identity accumulator out of the slave's slab.
func (sc *slaveCtx) newAccum(funcs []plan.AggFunc) []int64 {
	n := len(funcs)
	if n == 0 {
		return []int64{}
	}
	if len(sc.aggSlab)+n > cap(sc.aggSlab) {
		c := aggSlabChunk
		if c < n {
			c = n
		}
		sc.aggSlab = make([]int64, 0, c)
	}
	start := len(sc.aggSlab)
	sc.aggSlab = sc.aggSlab[:start+n]
	acc := sc.aggSlab[start : start+n : start+n]
	for i, f := range funcs {
		switch f.Kind {
		case plan.Min:
			acc[i] = math.MaxInt64
		case plan.Max:
			acc[i] = math.MinInt64
		default:
			acc[i] = 0
		}
	}
	return acc
}
