package exec

import (
	"fmt"
	"sync"
	"time"

	"xprs/internal/plan"
	"xprs/internal/storage"
)

// Page partitioning (§2.4, Figure 5): with n slaves, slave i scans disk
// pages {p | p mod n = i}. During dynamic adjustment the master collects
// every slave's progress, computes maxpage — the highest page any slave
// has scanned — and re-partitions: each old slave finishes its own
// residue-class pages up to maxpage with the old stride, then the region
// beyond maxpage is re-striped with the new degree. Retiring slaves get
// only their leftover (no fresh stride); new slaves get only a fresh
// stride. The invariant maintained across any number of stacked
// adjustments is that the union of all slaves' assignments is exactly
// the set of unscanned pages, each page in exactly one assignment.

// strideSeg is one stride of pages: {p ≡ idx (mod n), next <= p <= limit}.
// A negative limit means "to the end of the relation".
type strideSeg struct {
	idx, n int
	next   int64
	limit  int64
}

// pageAssign is one slave's work: an ordered list of stride segments,
// plus the frontier (highest page this slave has scanned), which the
// master needs to compute maxpage.
type pageAssign struct {
	segs     []strideSeg
	frontier int64
}

// pop returns the next page to scan, advancing the assignment. ok is
// false when the assignment is exhausted.
func (a *pageAssign) pop(npages int64) (int64, bool) {
	for len(a.segs) > 0 {
		s := &a.segs[0]
		limit := s.limit
		if limit < 0 || limit >= npages {
			limit = npages - 1
		}
		if s.next > limit {
			a.segs = a.segs[1:]
			continue
		}
		p := s.next
		s.next += int64(s.n)
		return p, true
	}
	return 0, false
}

// clamp drops every page above m from the assignment (those pages are
// re-striped by the adjustment that supplied m).
func (a *pageAssign) clamp(m int64) {
	var out []strideSeg
	for _, s := range a.segs {
		if s.next > m {
			continue
		}
		if s.limit < 0 || s.limit > m {
			s.limit = m
		}
		out = append(out, s)
	}
	a.segs = out
}

// firstInStride returns the smallest page > m congruent to idx mod n.
func firstInStride(m int64, idx, n int) int64 {
	base := m + 1
	r := base % int64(n)
	delta := (int64(idx) - r + int64(n)) % int64(n)
	return base + delta
}

// pageSource abstracts what a page-partitioned fragment scans: a base
// relation (real disk IO) or a materialized temp (CPU only). The
// enqueue/fetch split supports readahead: a slave posts the next few
// pages of its stride to the disk queue while the CPU processes the
// current one (the OS readahead XPRS scans ran on; without it, x
// synchronous slaves could never generate the x·C_i IO demand the
// paper's balance-point arithmetic assumes).
type pageSource interface {
	npages() int64
	// enqueue reserves the page's IO and returns its availability time.
	enqueue(sc *slaveCtx, p int64) time.Duration
	// fetch returns the page's tuples after it became available,
	// charging per-tuple CPU.
	fetch(sc *slaveCtx, p int64) ([]storage.Tuple, error)
	// fetchCols is the columnar twin of fetch: identical charges, but
	// the page lands as a columnar batch (shared decode cache for
	// physical pages, the slave's reusable buffer for synthetic ones).
	fetchCols(sc *slaveCtx, p int64) (*storage.ColBatch, error)
}

// relSource reads a base relation through the store.
type relSource struct {
	fr       *fragRun
	rel      *storage.Relation
	perTuple float64
}

func (s *relSource) npages() int64 { return s.rel.NPages() }

func (s *relSource) enqueue(sc *slaveCtx, p int64) time.Duration {
	return s.fr.eng.Store.EnqueuePage(s.rel, p, sc.rt.Degree() > 1)
}

func (s *relSource) fetch(sc *slaveCtx, p int64) ([]storage.Tuple, error) {
	var tuples []storage.Tuple
	var err error
	if s.rel.Synthetic() {
		// Generated relations materialize into the slave's reusable page
		// buffer; physical relations return the store's shared decoded
		// page, which must never be fed back as a scratch buffer.
		tuples, err = s.rel.PageTuplesInto(p, sc.pageBuf[:0])
		if err == nil {
			sc.pageBuf = tuples
		}
	} else {
		tuples, err = s.rel.PageTuples(p)
	}
	if err != nil {
		return nil, err
	}
	// A slave backend is a synchronous process: its per-page cycle is the
	// measured sequential cycle 1/C = pageService + tuples·tupleCPU (§3).
	// Readahead keeps parallel service-time inflation from stretching
	// that cycle, but never compresses it — so x slaves generate exactly
	// the x·C_i IO demand the balance-point arithmetic assumes.
	sc.chargeCPU(s.fr.eng.Params.SeqPageService)
	sc.chargeCPU(s.perTuple * float64(len(tuples)))
	return tuples, nil
}

func (s *relSource) fetchCols(sc *slaveCtx, p int64) (*storage.ColBatch, error) {
	var cb *storage.ColBatch
	var err error
	if s.rel.Synthetic() {
		if sc.colPageBuf == nil {
			sc.colPageBuf = s.fr.eng.getColBatch(s.rel.Schema, s.fr.eng.batchSize())
		} else {
			// Init rather than Reset: the buffer survives in the pooled
			// slave context across fragments with different schemas, and
			// Init reshapes it (reusing storage when the shape matches).
			sc.colPageBuf.Init(s.rel.Schema, s.fr.eng.batchSize())
		}
		cb, err = s.rel.PageColsInto(p, sc.colPageBuf)
	} else {
		cb, err = s.rel.PageCols(p)
	}
	if err != nil {
		return nil, err
	}
	sc.chargeCPU(s.fr.eng.Params.SeqPageService)
	sc.chargeCPU(s.perTuple * float64(cb.N))
	return cb, nil
}

// tempSource reads a materialized temp chunk-wise; shared memory, so CPU
// only.
type tempSource struct {
	fr   *fragRun
	temp *Temp
}

func (s *tempSource) npages() int64 { return s.temp.NumChunks() }

func (s *tempSource) enqueue(*slaveCtx, int64) time.Duration { return 0 }

func (s *tempSource) fetch(sc *slaveCtx, p int64) ([]storage.Tuple, error) {
	tuples := s.temp.Chunk(p)
	sc.chargeCPU(s.fr.eng.Params.TempReadCPU * float64(len(tuples)))
	return tuples, nil
}

func (s *tempSource) fetchCols(sc *slaveCtx, p int64) (*storage.ColBatch, error) {
	view, vecs, ok := s.temp.ChunkCols(p, sc.tempVecs)
	sc.tempVecs = vecs
	if !ok {
		view = storage.ColBatch{}
	}
	sc.tempView = view
	sc.chargeCPU(s.fr.eng.Params.TempReadCPU * float64(view.N))
	return &sc.tempView, nil
}

// prefetchDepth returns how many page reads a slave keeps in flight:
// the engine's readahead window (one being consumed plus lookahead).
func (d *pageDriver) prefetchDepth() int {
	if k := d.fr.eng.Params.ReadaheadDepth; k >= 1 {
		return k
	}
	return 1
}

// pageDriver implements page partitioning over a page source.
type pageDriver struct {
	fr  *fragRun
	src pageSource

	// mu guards frontier: the highest page ANY slave of this task has
	// ever scanned, including slaves that already exited. Computing
	// maxpage from live slaves alone would let the post-adjustment
	// re-striping re-cover pages a finished slave had scanned.
	mu       sync.Mutex
	frontier int64
}

// noteScanned advances the task-global frontier.
func (d *pageDriver) noteScanned(p int64) {
	d.mu.Lock()
	if p > d.frontier {
		d.frontier = p
	}
	d.mu.Unlock()
}

// maxFrontier folds the global frontier with the paused slaves' reports.
func (d *pageDriver) maxFrontier(olds []*pageAssign) int64 {
	d.mu.Lock()
	m := d.frontier
	d.mu.Unlock()
	for _, pa := range olds {
		if pa.frontier > m {
			m = pa.frontier
		}
	}
	return m
}

// newPageDriver builds the driver for a fragment whose driving leaf is a
// SeqScan or FragScan.
func newPageDriver(fr *fragRun, leaf plan.Node) (*pageDriver, error) {
	switch x := leaf.(type) {
	case *plan.SeqScan:
		return &pageDriver{fr: fr, frontier: -1, src: &relSource{
			fr:       fr,
			rel:      x.Rel,
			perTuple: fr.eng.Params.TupleCPU(x.Rel.Stats().AvgTupleSize),
		}}, nil
	case *plan.FragScan:
		temp, err := fr.tempOf(x)
		if err != nil {
			return nil, err
		}
		return &pageDriver{fr: fr, frontier: -1, src: &tempSource{fr: fr, temp: temp}}, nil
	default:
		return nil, fmt.Errorf("exec: page driver over %T", leaf)
	}
}

// initial implements driver: page p goes to slave p mod degree. All
// assignments share two backing arrays (each slave's seg slice is
// capacity-clamped, so a repartition append never aliases a neighbor).
func (d *pageDriver) initial(degree int) ([]assignment, error) {
	if degree < 1 {
		return nil, fmt.Errorf("exec: degree %d", degree)
	}
	np := d.src.npages()
	out := make([]assignment, degree)
	n := degree
	if int64(n) > np {
		n = int(np) // more slaves than pages
	}
	pas := make([]pageAssign, n)
	segs := make([]strideSeg, n)
	for i := 0; i < n; i++ {
		segs[i] = strideSeg{idx: i, n: degree, next: int64(i), limit: -1}
		pas[i] = pageAssign{segs: segs[i : i+1 : i+1], frontier: -1}
		out[i] = &pas[i]
	}
	return out, nil
}

// repartition implements driver per the Figure 5 protocol.
func (d *pageDriver) repartition(remaining []report, degree int) ([]assignment, error) {
	if degree < 1 {
		return nil, fmt.Errorf("exec: degree %d", degree)
	}
	// maxpage over all slaves, including ones that already exited.
	olds := make([]*pageAssign, len(remaining))
	for i, r := range remaining {
		pa, ok := r.(*pageAssign)
		if !ok {
			return nil, fmt.Errorf("exec: page driver got report %T", r)
		}
		olds[i] = pa
	}
	m := d.maxFrontier(olds)
	np := d.src.npages()
	if d.fr != nil && d.fr.tracing() {
		d.fr.traceInstant("protocol", "maxpage", fmt.Sprintf(
			"maxpage=%d of %d pages: old slaves finish their strides below it, pages above re-striped mod %d",
			m, np, degree))
	}
	out := make([]assignment, 0, max(len(olds), degree))
	for i, old := range olds {
		na := &pageAssign{frontier: old.frontier}
		na.segs = append(na.segs, old.segs...)
		na.clamp(m)
		if i < degree {
			if first := firstInStride(m, i, degree); first < np {
				na.segs = append(na.segs, strideSeg{idx: i, n: degree, next: first, limit: -1})
			}
		}
		if len(na.segs) == 0 {
			out = append(out, nil) // retired with no leftover: stop now
		} else {
			out = append(out, na)
		}
	}
	for j := len(olds); j < degree; j++ {
		first := firstInStride(m, j, degree)
		if first >= np {
			continue
		}
		out = append(out, &pageAssign{
			segs:     []strideSeg{{idx: j, n: degree, next: first, limit: -1}},
			frontier: -1,
		})
	}
	return out, nil
}

// inflight is one posted-but-unserved page read of a slave's readahead
// queue.
type inflight struct {
	page  int64
	avail time.Duration
}

// serve processes one posted page: settle all simulated work preceding
// the disk wait (invariant 2 in pipeline.go), block until the page is
// available, then feed it through the fragment pipeline batch-wise.
func (d *pageDriver) serve(sc *slaveCtx, head inflight) error {
	sc.flushCPU()
	d.fr.eng.Clock.SleepUntil(head.avail)
	bsz := d.fr.eng.batchSize()
	if d.fr.colRoot != nil {
		cb, err := d.src.fetchCols(sc, head.page)
		if err != nil {
			return err
		}
		for lo := 0; lo < cb.N; lo += bsz {
			hi := lo + bsz
			if hi > cb.N {
				hi = cb.N
			}
			sc.colView, sc.colViewVecs = cb.Slice(lo, hi, sc.colViewVecs)
			if err := d.fr.processColBatch(sc, &sc.colView); err != nil {
				return err
			}
		}
		return nil
	}
	tuples, err := d.src.fetch(sc, head.page)
	if err != nil {
		return err
	}
	for len(tuples) > 0 {
		n := len(tuples)
		if n > bsz {
			n = bsz
		}
		if err := d.fr.processBatch(sc, tuples[:n]); err != nil {
			return err
		}
		tuples = tuples[n:]
	}
	return nil
}

// run implements driver: the slave backend's scan loop with readahead.
// The in-flight queue never survives an adjustment round: when the
// master signals a pause the slave stops refilling, drains what it
// already posted (those pages are processed, keeping the exactly-once
// invariant), and only then reports. The queue lives in the slave
// context's reusable scratch; pops shift the tiny prefix down so the
// backing array survives the whole scan.
func (d *pageDriver) run(sc *slaveCtx) error {
	a, ok := sc.state.assign.(*pageAssign)
	if !ok {
		return fmt.Errorf("exec: page slave got assignment %T", sc.state.assign)
	}
	np := d.src.npages()
	sc.inflightQ = sc.inflightQ[:0]
	for {
		for len(sc.inflightQ) < d.prefetchDepth() {
			p, more := a.pop(np)
			if !more {
				break
			}
			// The frontier advances at issue time: a posted page is
			// committed to this slave, so any re-striping computed while
			// it is in flight must start beyond it.
			if p > a.frontier {
				a.frontier = p
			}
			d.noteScanned(p)
			sc.inflightQ = append(sc.inflightQ, inflight{page: p, avail: d.src.enqueue(sc, p)})
		}
		if len(sc.inflightQ) == 0 {
			return nil
		}
		head := sc.inflightQ[0]
		sc.inflightQ = sc.inflightQ[:copy(sc.inflightQ, sc.inflightQ[1:])]
		if err := d.serve(sc, head); err != nil {
			return err
		}
		next := sc.checkpoint(a)
		if next == nil {
			// Retired; in-flight pages are already committed to us, so
			// they must still be served before exiting.
			for _, head := range sc.inflightQ {
				if err := d.serve(sc, head); err != nil {
					return err
				}
			}
			return nil
		}
		na, ok := next.(*pageAssign)
		if !ok {
			return fmt.Errorf("exec: page slave reassigned %T", next)
		}
		na.frontier = a.frontier
		a = na
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
