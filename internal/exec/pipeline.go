package exec

import (
	"fmt"
	"sync/atomic"

	"xprs/internal/btree"
	"xprs/internal/expr"
	"xprs/internal/obs"
	"xprs/internal/plan"
	"xprs/internal/storage"
)

// The pipeline executes batch-at-a-time: fragments compile to a chain
// of batchProc closures over fixed-size tuple batches, so interpreter
// overhead (closure calls, lock round-trips, clock events) is paid per
// batch instead of per tuple.
//
// Two invariants keep virtual time independent of the batch size:
//
//  1. CPU is charged when the simulated work happens (cheap float adds
//     into the slave's debt counter), at page/group granularity for
//     scans and per emission for joins, never lazily per batch of some
//     other granularity.
//  2. Before every blocking disk wait, all pending work is flushed:
//     the slave's buffered output batches (so downstream charges land)
//     and then its CPU debt. The clock value at every IO point is
//     therefore a pure function of the work preceding that IO.
//
// Batches are read-only views: operators that need a subset (filters)
// or an expansion (joins) write into scratch buffers from the engine's
// batch pool, and joined tuples for non-retaining consumers are built
// in per-operator value arenas owned by the slave, so the hot path
// allocates only when a buffer first grows.

// batchProc consumes one batch of tuples inside a slave. Batches are
// read-only; implementations must not mutate ts or hold it past the
// call (tuple structs may be copied out — their Vals are immutable).
type batchProc func(sc *slaveCtx, ts []storage.Tuple) error

// consumer is a compiled pipeline stage plus the facts its producer
// needs: whether it keeps references to fed tuples beyond the call
// (sinks do; joins and aggregates copy or fold immediately), and
// whether feeding it can block on IO (a nestloop rescan). Producers
// heap-allocate joined tuples for retaining consumers and reuse arena
// memory otherwise; they hand tuples one at a time to blocking
// consumers so clock positions at IO points stay batch-independent.
type consumer struct {
	proc     batchProc
	retains  bool
	blocking bool
}

// fragRun is the runtime of one fragment: the compiled pipeline plus its
// input temps/hash tables and its output.
type fragRun struct {
	eng  *Engine
	frag *plan.Fragment

	// inputs, resolved from the engine's run context at launch
	temps     map[*plan.Fragment]*Temp
	hashes    map[*plan.Fragment]*HashTable
	colHashes map[*plan.Fragment]*ColHashTable

	outTemp    *Temp         // for RootOut / TempOut / SortedOut
	outHash    *HashTable    // for HashOut on the row path
	outColHash *ColHashTable // for HashOut on the columnar path
	agg        *aggState     // non-nil when the fragment root is an Agg

	// Rebind ingredients, fixed at compile time: pooled runtimes recreate
	// the per-run outputs above from these without recompiling (see
	// rebind). aggNode remembers the root Agg so a fresh accumulator state
	// can be built per run.
	outSchema storage.Schema
	hashParts int
	aggNode   *plan.Agg

	// root is the compiled pipeline the drivers feed batches into.
	root consumer
	// colRoot is the compiled columnar pipeline; non-nil when the
	// fragment runs on the columnar path (page drivers then feed columnar
	// batches instead of tuple batches).
	colRoot colProc

	// nArenas counts the per-slave value-arena slots handed out to
	// emitting operators at compile time.
	nArenas int
	// nProbes counts the per-slave probe-scratch slots handed out to
	// hash joins at compile time.
	nProbes int
	// nColOuts and nSels count the per-slave columnar output-batch and
	// selection-scratch slots handed out at compile time.
	nColOuts int
	nSels    int

	// obsTid is the fragment's trace lane (0 when tracing is off).
	obsTid int
	// traced carries the owning query's head-based sampling decision:
	// false suppresses every span and protocol event this fragment (and
	// its slaves) would emit. Set by the scheduler at task start.
	traced bool
	// Always-on execution counters behind FragStat: pure atomic adds
	// that never touch the clock, so they cannot perturb determinism.
	statTuplesIn  atomic.Int64
	statTuplesOut atomic.Int64
	statBatches   atomic.Int64
}

// tracing reports whether this fragment's events should be emitted:
// tracing is on and the owning query was sampled.
func (fr *fragRun) tracing() bool {
	return fr.eng.Trace != nil && fr.traced
}

// traceInstant records a protocol event on the fragment's lane; callers
// guard with `if fr.tracing()` to skip detail formatting when tracing
// is off or the query is unsampled.
func (fr *fragRun) traceInstant(cat, name, detail string) {
	fr.eng.Trace.Instant(fr.eng.now(), obs.PidTasks, fr.obsTid, cat, name, detail)
}

// processBatch feeds one batch of driver tuples through the pipeline.
func (fr *fragRun) processBatch(sc *slaveCtx, ts []storage.Tuple) error {
	fr.statBatches.Add(1)
	fr.statTuplesIn.Add(int64(len(ts)))
	fr.eng.mBatches.Add(1)
	fr.eng.mTuples.Add(int64(len(ts)))
	return fr.root.proc(sc, ts)
}

// newArena reserves a value-arena slot for one emitting operator.
func (fr *fragRun) newArena() int {
	s := fr.nArenas
	fr.nArenas++
	return s
}

// newProbe reserves a probe-scratch slot for one hash join.
func (fr *fragRun) newProbe() int {
	s := fr.nProbes
	fr.nProbes++
	return s
}

// emitLimit is the batch size an emitting operator flushes at: one for
// blocking consumers (see consumer), the engine batch size otherwise.
func (fr *fragRun) emitLimit(cons consumer) int {
	if cons.blocking {
		return 1
	}
	return fr.eng.batchSize()
}

// newFragRun wires a fragment to its materialized inputs and compiles
// the pipeline: columnar when the fragment shape supports it (and the
// engine isn't forced onto row batches), row otherwise.
func newFragRun(eng *Engine, frag *plan.Fragment, temps map[*plan.Fragment]*Temp, hashes map[*plan.Fragment]*HashTable, colHashes map[*plan.Fragment]*ColHashTable) (*fragRun, error) {
	fr := &fragRun{eng: eng, frag: frag, temps: temps, hashes: hashes, colHashes: colHashes}
	useCol := !eng.RowBatches && fr.colSupported()
	fr.outSchema = frag.Root.OutSchema()
	switch frag.Out {
	case plan.HashOut:
		parts := eng.HashPartitions
		if parts <= 0 {
			parts = frag.HashParts
		}
		if parts <= 0 {
			parts = DefaultHashPartitions
		}
		fr.hashParts = parts
		if useCol {
			fr.outColHash = NewColHashTable(eng, fr.outSchema, frag.HashCol, parts, eng.Env.NProcs)
		} else {
			fr.outHash = NewHashTableP(fr.outSchema, frag.HashCol, parts, eng.Env.NProcs)
		}
	default:
		fr.outTemp = NewTemp(fr.outSchema)
		fr.outTemp.sortProcs = eng.Env.NProcs
	}
	if useCol {
		croot, err := fr.compileCol(frag.Root, fr.compileColSink(), true, nil)
		if err != nil {
			return nil, err
		}
		fr.colRoot = croot.proc
		return fr, nil
	}
	root, err := fr.compile(frag.Root, fr.compileSink(), true)
	if err != nil {
		return nil, err
	}
	fr.root = root
	return fr, nil
}

// rebind readies a pooled runtime for another execution of its
// fragment: fresh outputs (the previous run's escaped into its Report
// or were released with its query), this run's input maps, and zeroed
// counters. The compiled closures need no attention — they read all of
// this through the fragRun pointer at call time.
func (fr *fragRun) rebind(temps map[*plan.Fragment]*Temp, hashes map[*plan.Fragment]*HashTable, colHashes map[*plan.Fragment]*ColHashTable) {
	fr.temps, fr.hashes, fr.colHashes = temps, hashes, colHashes
	switch fr.frag.Out {
	case plan.HashOut:
		if fr.colRoot != nil {
			fr.outColHash = NewColHashTable(fr.eng, fr.outSchema, fr.frag.HashCol, fr.hashParts, fr.eng.Env.NProcs)
		} else {
			fr.outHash = NewHashTableP(fr.outSchema, fr.frag.HashCol, fr.hashParts, fr.eng.Env.NProcs)
		}
	default:
		fr.outTemp = NewTemp(fr.outSchema)
		fr.outTemp.sortProcs = fr.eng.Env.NProcs
	}
	if fr.aggNode != nil {
		fr.agg = newAggState(fr.aggNode)
		if fr.colRoot != nil {
			fr.agg.eng = fr.eng
		}
	}
	fr.statTuplesIn.Store(0)
	fr.statTuplesOut.Store(0)
	fr.statBatches.Store(0)
}

// finalize seals the fragment output after all slaves finished, charging
// any residual CPU (the master's k-way merge of a sorted temp) to the
// calling goroutine's clock.
func (fr *fragRun) finalize() {
	if fr.agg != nil {
		groups := fr.agg.emit(fr.outTemp)
		fr.statTuplesOut.Add(int64(groups))
		fr.eng.chargeMasterCPU(float64(groups) * fr.eng.Params.EmitCPU)
	}
	if fr.frag.Out == plan.SortedOut {
		cmps := fr.outTemp.Finalize(fr.frag.SortCol)
		fr.eng.chargeMasterCPU(float64(cmps) * fr.eng.Params.SortCmpCPU)
	}
	if fr.outHash != nil {
		// Seal before publication so every Probe runs lock-free against
		// immutable partitions. The insert CPU was already charged per
		// batch; sealing is wall-clock-only work and leaves the virtual
		// clock untouched.
		fr.outHash.Seal()
	}
	if fr.outColHash != nil {
		fr.outColHash.Seal()
	}
}

// compileSink builds the terminal consumer of the pipeline. Both sinks
// retain the tuples they are fed (the temp and the hash table keep the
// Vals slices), so upstream joins heap-allocate what reaches them.
func (fr *fragRun) compileSink() consumer {
	if fr.outHash != nil {
		insertCPU := fr.eng.Params.HashInsertCPU
		return consumer{retains: true, proc: func(sc *slaveCtx, ts []storage.Tuple) error {
			sc.chargeCPUPer(insertCPU, len(ts))
			fr.statTuplesOut.Add(int64(len(ts)))
			// Each slave partitions into a private builder — no lock per
			// batch; flushAll hands the buffers to the shared table once at
			// slave exit.
			if sc.hb == nil {
				sc.hb = fr.outHash.Builder()
			}
			return sc.hb.InsertBatch(ts)
		}}
	}
	return consumer{retains: true, proc: func(sc *slaveCtx, ts []storage.Tuple) error {
		fr.statTuplesOut.Add(int64(len(ts)))
		sc.bufferBatch(ts)
		return nil
	}}
}

// compile builds the batch-processing chain for the subtree rooted at
// n, feeding cons. The returned consumer is invoked with batches
// produced by the subtree's driver leaf; atRoot marks the fragment root
// (where Sort is absorbed into the output).
func (fr *fragRun) compile(n plan.Node, cons consumer, atRoot bool) (consumer, error) {
	switch x := n.(type) {
	case *plan.SeqScan:
		return fr.compileFilter(x.Filter, cons), nil

	case *plan.IndexScan:
		return fr.compileFilter(x.Filter, cons), nil

	case *plan.FragScan:
		// Driver tuples come straight from the temp; no residual filter.
		return cons, nil

	case *plan.Sort:
		if !atRoot {
			return consumer{}, fmt.Errorf("exec: Sort below fragment root")
		}
		// The batch path of a sort is plain collection; ordering happens
		// in finalize.
		return fr.compile(x.Child, cons, false)

	case *plan.Agg:
		if !atRoot {
			return consumer{}, fmt.Errorf("exec: Agg below fragment root")
		}
		fr.aggNode = x
		fr.agg = newAggState(x)
		foldCPU := fr.eng.Params.HashInsertCPU
		acc := consumer{proc: func(sc *slaveCtx, ts []storage.Tuple) error {
			sc.chargeCPUPer(foldCPU, len(ts))
			sc.accumulateBatch(fr.agg, ts)
			return nil
		}}
		return fr.compile(x.Child, acc, false)

	case *plan.NestLoop:
		rescan, err := fr.compileRescan(x.Inner)
		if err != nil {
			return consumer{}, err
		}
		pred := expr.CompilePred(x.Pred)
		emitCPU := fr.eng.Params.EmitCPU
		rescanCPU := fr.eng.Params.RescanSetupCPU
		slot := fr.newArena()
		outer := consumer{blocking: true, proc: func(sc *slaveCtx, ots []storage.Tuple) error {
			return fr.nestLoopBatch(sc, ots, rescan, pred, slot, cons, rescanCPU, emitCPU)
		}}
		return fr.compile(x.Outer, outer, false)

	case *plan.HashJoin:
		fs, ok := x.Right.(*plan.FragScan)
		if !ok {
			return consumer{}, fmt.Errorf("exec: HashJoin build side is %T, want FragScan (decompose first)", x.Right)
		}
		lcol := x.LCol
		probeCPU := fr.eng.Params.HashProbeCPU
		emitCPU := fr.eng.Params.EmitCPU
		buildFrag := fs.Frag
		slot := fr.newArena()
		pslot := fr.newProbe()
		limit := fr.emitLimit(cons)
		probe := consumer{blocking: cons.blocking, proc: func(sc *slaveCtx, lts []storage.Tuple) error {
			ht := fr.hashes[buildFrag]
			var cht *ColHashTable
			if ht == nil {
				cht = fr.colHashes[buildFrag]
				if cht == nil {
					return fmt.Errorf("exec: hash table for fragment f%d not built", buildFrag.ID)
				}
			}
			sc.chargeCPUPer(probeCPU, len(lts))
			// Resolve the whole batch of probe tuples up front: one fused
			// lock-free pass extracts, hashes and walks with the seal check
			// hoisted out of the loop. A columnar build table bridges by
			// materializing the match rows into the probe scratch — same
			// charges, wall-clock cost only.
			ps := sc.probeScratch(pslot)
			var matches [][]storage.Tuple
			var err error
			if ht != nil {
				matches, err = ht.ProbeTupleBatch(lts, lcol, ps.matches[:0])
			} else {
				matches, err = sc.probeColTable(cht, lts, lcol, ps)
			}
			ps.matches = matches[:0]
			if err != nil {
				return err
			}
			bp := sc.getBatch()
			out := *bp
		probeLoop:
			for i := range lts {
				lt := lts[i]
				for _, bt := range matches[i] {
					sc.chargeCPU(emitCPU)
					if cons.retains {
						out = append(out, lt.Concat(bt))
					} else {
						out = append(out, sc.arenaConcat(slot, lt, bt))
					}
					if len(out) >= limit {
						err = cons.proc(sc, out)
						out = out[:0]
						if !cons.retains {
							sc.arenaReset(slot)
						}
						if err != nil {
							break probeLoop
						}
					}
				}
			}
			if err == nil && len(out) > 0 {
				err = cons.proc(sc, out)
				if !cons.retains {
					sc.arenaReset(slot)
				}
			}
			*bp = out[:0]
			sc.putBatch(bp)
			return err
		}}
		return fr.compile(x.Left, probe, false)

	case *plan.MergeJoin:
		// Merge joins are fragment drivers; their joined tuples are
		// produced by the merge driver directly and enter the chain above
		// them, so compile is only ever called on them at the driver
		// position.
		return cons, nil

	default:
		return consumer{}, fmt.Errorf("exec: cannot compile node %T", n)
	}
}

// compileFilter wraps cons with a leaf qualification. Survivors are
// gathered into a scratch batch; the predicate itself is uncharged (the
// per-tuple scan CPU of §3 covers qualification), so batching here
// defers no clock work.
func (fr *fragRun) compileFilter(filter expr.Expr, cons consumer) consumer {
	pred := expr.CompilePred(filter)
	if pred == nil {
		return cons
	}
	return consumer{retains: cons.retains, blocking: cons.blocking, proc: func(sc *slaveCtx, ts []storage.Tuple) error {
		bp := sc.getBatch()
		kept, err := expr.FilterInto(pred, ts, *bp)
		if err == nil && len(kept) > 0 {
			err = cons.proc(sc, kept)
		}
		*bp = kept[:0]
		sc.putBatch(bp)
		return err
	}}
}

// nestLoopBatch joins one batch of outer tuples against the inner input
// (§2.1: the inner of a nestloop pipelines within the fragment, re-read
// for every outer tuple). Join candidates are built in the operator's
// arena and rolled back on a predicate miss, so only emitted tuples for
// retaining consumers allocate.
func (fr *fragRun) nestLoopBatch(sc *slaveCtx, ots []storage.Tuple, rescan rescanFn, pred expr.Pred, slot int, cons consumer, rescanCPU, emitCPU float64) error {
	bp := sc.getBatch()
	out := *bp
	limit := fr.emitLimit(cons)
	flush := func() error {
		if len(out) == 0 {
			return nil
		}
		err := cons.proc(sc, out)
		out = out[:0]
		if !cons.retains {
			sc.arenaReset(slot)
		}
		return err
	}
	var err error
	for i := range ots {
		ot := ots[i]
		sc.chargeCPU(rescanCPU)
		err = rescan(sc, flush, func(it storage.Tuple) error {
			mark := sc.arenaMark(slot)
			cand := sc.arenaConcat(slot, ot, it)
			if pred != nil {
				ok, perr := pred(cand)
				if perr != nil {
					return perr
				}
				if !ok {
					sc.arenaTrunc(slot, mark)
					return nil
				}
			}
			sc.chargeCPU(emitCPU)
			if cons.retains {
				sc.arenaTrunc(slot, mark)
				out = append(out, ot.Concat(it))
			} else {
				out = append(out, cand)
			}
			if len(out) >= limit {
				return flush()
			}
			return nil
		})
		if err != nil {
			break
		}
	}
	if ferr := flush(); err == nil {
		err = ferr
	}
	*bp = out[:0]
	sc.putBatch(bp)
	return err
}

// rescanFn executes one full scan of a nestloop inner input. beforeIO
// runs ahead of every blocking disk wait so the caller can flush its
// pending output batch (delivering downstream clock charges) before the
// slave's CPU debt is slept off; emit receives each surviving inner
// tuple.
type rescanFn func(sc *slaveCtx, beforeIO func() error, emit func(storage.Tuple) error) error

// compileRescan builds the inner-rescan executor of a nestloop, hoisting
// per-scan constants out of the per-outer-tuple path.
func (fr *fragRun) compileRescan(n plan.Node) (rescanFn, error) {
	switch x := n.(type) {
	case *plan.SeqScan:
		rel := x.Rel
		pred := expr.CompilePred(x.Filter)
		perTuple := fr.eng.Params.TupleCPU(rel.Stats().AvgTupleSize)
		return func(sc *slaveCtx, beforeIO func() error, emit func(storage.Tuple) error) error {
			for p := int64(0); p < rel.NPages(); p++ {
				if err := beforeIO(); err != nil {
					return err
				}
				sc.flushCPU()
				tuples, err := fr.eng.Store.ReadPage(rel, p)
				if err != nil {
					return err
				}
				sc.chargeCPU(perTuple * float64(len(tuples)))
				for i := range tuples {
					if pred != nil {
						ok, err := pred(tuples[i])
						if err != nil {
							return err
						}
						if !ok {
							continue
						}
					}
					if err := emit(tuples[i]); err != nil {
						return err
					}
				}
			}
			return nil
		}, nil

	case *plan.IndexScan:
		rel := x.Rel
		tree := x.Index.Tree
		lo, hi := x.Lo, x.Hi
		pred := expr.CompilePred(x.Filter)
		perTuple := fr.eng.Params.TupleCPU(rel.Stats().AvgTupleSize) + fr.eng.Params.IndexProbeCPU
		return func(sc *slaveCtx, beforeIO func() error, emit func(storage.Tuple) error) error {
			var visitErr error
			tree.Visit(lo, hi, func(_ int32, tid storage.TID) bool {
				if visitErr = beforeIO(); visitErr != nil {
					return false
				}
				sc.flushCPU()
				t, err := fr.eng.Store.ReadTID(rel, tid)
				if err != nil {
					visitErr = err
					return false
				}
				sc.chargeCPU(perTuple)
				if pred != nil {
					ok, err := pred(t)
					if err != nil {
						visitErr = err
						return false
					}
					if !ok {
						return true
					}
				}
				if err := emit(t); err != nil {
					visitErr = err
					return false
				}
				return true
			})
			return visitErr
		}, nil

	case *plan.FragScan:
		readCPU := fr.eng.Params.TempReadCPU
		frag := x.Frag
		return func(sc *slaveCtx, beforeIO func() error, emit func(storage.Tuple) error) error {
			temp := fr.temps[frag]
			if temp == nil {
				return fmt.Errorf("exec: temp for fragment f%d not materialized", frag.ID)
			}
			tuples := temp.Tuples()
			sc.chargeCPU(readCPU * float64(len(tuples)))
			for i := range tuples {
				if err := emit(tuples[i]); err != nil {
					return err
				}
			}
			return nil
		}, nil

	default:
		return nil, fmt.Errorf("exec: node %T is not rescannable", n)
	}
}

// driverInfo resolves the fragment's driving leaf for the partitioners.
func (fr *fragRun) driverInfo() (plan.Node, plan.DriverKind) {
	return fr.frag.Driver()
}

// tempOf returns the materialized temp behind a FragScan.
func (fr *fragRun) tempOf(fs *plan.FragScan) (*Temp, error) {
	t := fr.temps[fs.Frag]
	if t == nil {
		return nil, fmt.Errorf("exec: temp for fragment f%d not materialized", fs.Frag.ID)
	}
	return t, nil
}

// indexOf returns the B-tree behind an IndexScan driver.
func indexOf(x *plan.IndexScan) *btree.Index { return x.Index }
