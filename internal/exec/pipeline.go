package exec

import (
	"fmt"

	"xprs/internal/btree"
	"xprs/internal/expr"
	"xprs/internal/plan"
	"xprs/internal/storage"
)

// fragRun is the runtime of one fragment: the compiled pipeline plus its
// input temps/hash tables and its output.
type fragRun struct {
	eng  *Engine
	frag *plan.Fragment

	// inputs, resolved from the engine's run context at launch
	temps  map[*plan.Fragment]*Temp
	hashes map[*plan.Fragment]*HashTable

	outTemp *Temp      // for RootOut / TempOut / SortedOut
	outHash *HashTable // for HashOut
	agg     *aggState  // non-nil when the fragment root is an Agg

	// process consumes one driver tuple inside a slave.
	process func(sc *slaveCtx, t storage.Tuple) error
}

// newFragRun wires a fragment to its materialized inputs and compiles
// the pipeline.
func newFragRun(eng *Engine, frag *plan.Fragment, temps map[*plan.Fragment]*Temp, hashes map[*plan.Fragment]*HashTable) (*fragRun, error) {
	fr := &fragRun{eng: eng, frag: frag, temps: temps, hashes: hashes}
	outSchema := frag.Root.OutSchema()
	switch frag.Out {
	case plan.HashOut:
		fr.outHash = NewHashTable(outSchema, frag.HashCol)
	default:
		fr.outTemp = NewTemp(outSchema)
	}
	sink, err := fr.compileSink()
	if err != nil {
		return nil, err
	}
	proc, err := fr.compile(frag.Root, sink, true)
	if err != nil {
		return nil, err
	}
	fr.process = proc
	return fr, nil
}

// finalize seals the fragment output after all slaves finished, charging
// any residual CPU (the master's k-way merge of a sorted temp) to the
// calling goroutine's clock.
func (fr *fragRun) finalize() {
	if fr.agg != nil {
		groups := fr.agg.emit(fr.outTemp)
		fr.eng.chargeMasterCPU(float64(groups) * fr.eng.Params.EmitCPU)
	}
	if fr.frag.Out == plan.SortedOut {
		cmps := fr.outTemp.Finalize(fr.frag.SortCol)
		fr.eng.chargeMasterCPU(float64(cmps) * fr.eng.Params.SortCmpCPU)
	}
}

// compileSink builds the terminal consumer of the pipeline.
func (fr *fragRun) compileSink() (func(sc *slaveCtx, t storage.Tuple) error, error) {
	if fr.outHash != nil {
		return func(sc *slaveCtx, t storage.Tuple) error {
			sc.chargeCPU(fr.eng.Params.HashInsertCPU)
			return fr.outHash.Insert(t)
		}, nil
	}
	return func(sc *slaveCtx, t storage.Tuple) error {
		sc.buffer(t)
		return nil
	}, nil
}

// compile builds the per-driver-tuple processing chain for the subtree
// rooted at n. The returned function is invoked with tuples produced by
// the subtree's driver leaf; atRoot marks the fragment root (where Sort
// is absorbed into the output).
func (fr *fragRun) compile(n plan.Node, sink func(*slaveCtx, storage.Tuple) error, atRoot bool) (func(*slaveCtx, storage.Tuple) error, error) {
	switch x := n.(type) {
	case *plan.SeqScan:
		filter := x.Filter
		return func(sc *slaveCtx, t storage.Tuple) error {
			ok, err := expr.Qualifies(filter, t)
			if err != nil {
				return err
			}
			if ok {
				return sink(sc, t)
			}
			return nil
		}, nil

	case *plan.IndexScan:
		filter := x.Filter
		return func(sc *slaveCtx, t storage.Tuple) error {
			ok, err := expr.Qualifies(filter, t)
			if err != nil {
				return err
			}
			if ok {
				return sink(sc, t)
			}
			return nil
		}, nil

	case *plan.FragScan:
		// Driver tuples come straight from the temp; no residual filter.
		return sink, nil

	case *plan.Sort:
		if !atRoot {
			return nil, fmt.Errorf("exec: Sort below fragment root")
		}
		// The per-tuple path of a sort is plain collection; ordering
		// happens in finalize.
		return fr.compile(x.Child, sink, false)

	case *plan.Agg:
		if !atRoot {
			return nil, fmt.Errorf("exec: Agg below fragment root")
		}
		fr.agg = newAggState(x)
		foldCPU := fr.eng.Params.HashInsertCPU
		return fr.compile(x.Child, func(sc *slaveCtx, t storage.Tuple) error {
			sc.chargeCPU(foldCPU)
			sc.accumulate(fr.agg, t)
			return nil
		}, false)

	case *plan.NestLoop:
		inner := x.Inner
		pred := x.Pred
		emitCPU := fr.eng.Params.EmitCPU
		rescanCPU := fr.eng.Params.RescanSetupCPU
		outerProc, err := fr.compile(x.Outer, func(sc *slaveCtx, ot storage.Tuple) error {
			sc.chargeCPU(rescanCPU)
			return fr.scanAll(sc, inner, func(sc *slaveCtx, it storage.Tuple) error {
				joined := ot.Concat(it)
				ok, err := expr.Qualifies(pred, joined)
				if err != nil {
					return err
				}
				if ok {
					sc.chargeCPU(emitCPU)
					return sink(sc, joined)
				}
				return nil
			})
		}, false)
		if err != nil {
			return nil, err
		}
		return outerProc, nil

	case *plan.HashJoin:
		fs, ok := x.Right.(*plan.FragScan)
		if !ok {
			return nil, fmt.Errorf("exec: HashJoin build side is %T, want FragScan (decompose first)", x.Right)
		}
		lcol := x.LCol
		probeCPU := fr.eng.Params.HashProbeCPU
		emitCPU := fr.eng.Params.EmitCPU
		buildFrag := fs.Frag
		return fr.compile(x.Left, func(sc *slaveCtx, lt storage.Tuple) error {
			ht := fr.hashes[buildFrag]
			if ht == nil {
				return fmt.Errorf("exec: hash table for fragment f%d not built", buildFrag.ID)
			}
			sc.chargeCPU(probeCPU)
			if lcol >= len(lt.Vals) {
				return fmt.Errorf("exec: probe column %d out of range", lcol)
			}
			for _, bt := range ht.Probe(lt.Vals[lcol].Int) {
				sc.chargeCPU(emitCPU)
				if err := sink(sc, lt.Concat(bt)); err != nil {
					return err
				}
			}
			return nil
		}, false)

	case *plan.MergeJoin:
		// Merge joins are fragment drivers; their tuples are produced by
		// the merge driver directly and enter the chain above them, so
		// compile is only ever called on them at the driver position.
		return sink, nil

	default:
		return nil, fmt.Errorf("exec: cannot compile node %T", n)
	}
}

// scanAll executes a full rescan of a nestloop inner input, charging the
// appropriate IO and CPU (§2.1: the inner of a nestloop pipelines within
// the fragment, re-read for every outer tuple).
func (fr *fragRun) scanAll(sc *slaveCtx, n plan.Node, emit func(*slaveCtx, storage.Tuple) error) error {
	switch x := n.(type) {
	case *plan.SeqScan:
		perTuple := fr.eng.Params.TupleCPU(x.Rel.Stats().AvgTupleSize)
		for p := int64(0); p < x.Rel.NPages(); p++ {
			tuples, err := fr.eng.Store.ReadPage(x.Rel, p)
			if err != nil {
				return err
			}
			sc.chargeCPU(perTuple * float64(len(tuples)))
			for _, t := range tuples {
				ok, err := expr.Qualifies(x.Filter, t)
				if err != nil {
					return err
				}
				if ok {
					if err := emit(sc, t); err != nil {
						return err
					}
				}
			}
		}
		return nil

	case *plan.IndexScan:
		return fr.indexVisit(sc, x, x.Lo, x.Hi, emit)

	case *plan.FragScan:
		temp := fr.temps[x.Frag]
		if temp == nil {
			return fmt.Errorf("exec: temp for fragment f%d not materialized", x.Frag.ID)
		}
		readCPU := fr.eng.Params.TempReadCPU
		for _, t := range temp.Tuples() {
			sc.chargeCPU(readCPU)
			if err := emit(sc, t); err != nil {
				return err
			}
		}
		return nil

	default:
		return fmt.Errorf("exec: node %T is not rescannable", n)
	}
}

// indexVisit walks an index scan over [lo, hi], fetching each pointed-to
// heap tuple with a (random) page read, applying the residual filter and
// emitting matches.
func (fr *fragRun) indexVisit(sc *slaveCtx, x *plan.IndexScan, lo, hi int32, emit func(*slaveCtx, storage.Tuple) error) error {
	perTuple := fr.eng.Params.TupleCPU(x.Rel.Stats().AvgTupleSize) + fr.eng.Params.IndexProbeCPU
	var visitErr error
	x.Index.Tree.Visit(lo, hi, func(_ int32, tid storage.TID) bool {
		t, err := fr.eng.Store.ReadTID(x.Rel, tid)
		if err != nil {
			visitErr = err
			return false
		}
		sc.chargeCPU(perTuple)
		ok, err := expr.Qualifies(x.Filter, t)
		if err != nil {
			visitErr = err
			return false
		}
		if ok {
			if err := emit(sc, t); err != nil {
				visitErr = err
				return false
			}
		}
		return true
	})
	return visitErr
}

// driverInfo resolves the fragment's driving leaf for the partitioners.
func (fr *fragRun) driverInfo() (plan.Node, plan.DriverKind) {
	return fr.frag.Driver()
}

// tempOf returns the materialized temp behind a FragScan.
func (fr *fragRun) tempOf(fs *plan.FragScan) (*Temp, error) {
	t := fr.temps[fs.Frag]
	if t == nil {
		return nil, fmt.Errorf("exec: temp for fragment f%d not materialized", fs.Frag.ID)
	}
	return t, nil
}

// indexOf returns the B-tree behind an IndexScan driver.
func indexOf(x *plan.IndexScan) *btree.Index { return x.Index }
