package exec

import (
	"fmt"
	"slices"
	"strings"
	"testing"

	"xprs/internal/btree"
	"xprs/internal/core"
	"xprs/internal/expr"
	"xprs/internal/plan"
)

// The batch-at-a-time pipeline must be a pure wall-clock optimization:
// for any batch size, a fragment graph must produce the identical
// result multiset AND the identical virtual-time trajectory (makespan,
// per-task finish times, disk statistics). These tests sweep batch
// sizes including the degenerate tuple-at-a-time case (1), a size that
// never divides page or group boundaries evenly (7), the default (256),
// and one larger than every relation involved.

var sweepSizes = []int{1, 7, 256, 1 << 20}

// canonTuples renders a temp as a sorted multiset of rows.
func canonTuples(temp *Temp) []string {
	rows := make([]string, 0, temp.Len())
	for _, tp := range temp.Tuples() {
		var b strings.Builder
		for i, v := range tp.Vals {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d|%q", v.Int, v.Str)
		}
		rows = append(rows, b.String())
	}
	slices.Sort(rows)
	return rows
}

// sweepOutcome is everything that must not depend on the batch size.
type sweepOutcome struct {
	rows    []string
	elapsed string
	finish  string
	disk    string
}

// runSweep executes the plan built by mk at every sweep size, in both
// batch layouts (columnar and forced row-at-a-time), and asserts
// identical outcomes across the whole grid: the layout, like the batch
// size, must be a pure wall-clock knob. mk receives a fresh engine per
// run (batch size and layout are set after construction) and returns
// the plan root.
func runSweep(t *testing.T, poolPages int, policy core.Policy, mk func(eng *Engine) plan.Node) {
	t.Helper()
	var base *sweepOutcome
	for _, rowMode := range []bool{false, true} {
		layout := "columnar"
		if rowMode {
			layout = "row"
		}
		for _, bs := range sweepSizes {
			v, eng := testEngine(poolPages)
			eng.BatchSize = bs
			eng.RowBatches = rowMode
			root := mk(eng)
			specs, g := specFor(t, eng, root, 0)
			rep := runOne(t, v, eng, specs, policy)
			finish := make([]string, 0, len(rep.Finish))
			for id, at := range rep.Finish {
				finish = append(finish, fmt.Sprintf("%d@%v", id, at))
			}
			slices.Sort(finish)
			got := &sweepOutcome{
				rows:    canonTuples(rep.Results[g.Root.ID]),
				elapsed: rep.Elapsed.String(),
				finish:  strings.Join(finish, " "),
				disk:    fmt.Sprintf("%+v", rep.Disk),
			}
			if base == nil {
				base = got
				if len(got.rows) == 0 {
					t.Fatalf("%s batch=%d produced no rows; sweep is vacuous", layout, bs)
				}
				continue
			}
			if len(got.rows) != len(base.rows) {
				t.Fatalf("%s batch=%d rows = %d, want %d", layout, bs, len(got.rows), len(base.rows))
			}
			for i := range got.rows {
				if got.rows[i] != base.rows[i] {
					t.Fatalf("%s batch=%d row %d = %s, want %s", layout, bs, i, got.rows[i], base.rows[i])
				}
			}
			if got.elapsed != base.elapsed {
				t.Errorf("%s batch=%d elapsed = %s, want %s", layout, bs, got.elapsed, base.elapsed)
			}
			if got.finish != base.finish {
				t.Errorf("%s batch=%d finish times = %s, want %s", layout, bs, got.finish, base.finish)
			}
			if got.disk != base.disk {
				t.Errorf("%s batch=%d disk stats = %s, want %s", layout, bs, got.disk, base.disk)
			}
		}
	}
}

// TestBatchSweepSeqScanFilter covers the page driver with a residual
// qualification (filter batches must not shift IO points).
func TestBatchSweepSeqScanFilter(t *testing.T) {
	runSweep(t, 0, core.InterAdj, func(eng *Engine) plan.Node {
		rel := buildRel(t, eng.Store, "s", 1100, 90, 24)
		return &plan.SeqScan{Rel: rel, Filter: expr.ColRange(0, "a", 10, 69)}
	})
}

// TestBatchSweepIndexScan covers the range driver, whose random reads
// interleave with batch delivery tuple group by tuple group.
func TestBatchSweepIndexScan(t *testing.T) {
	runSweep(t, 0, core.InterAdj, func(eng *Engine) plan.Node {
		rel := buildShuffledRel(t, eng.Store, "ri", 900, 24)
		ix, err := btree.BuildIndex("ri_a", rel, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		return &plan.IndexScan{Rel: rel, Index: ix, Lo: 100, Hi: 399}
	})
}

// TestBatchSweepHashJoinAgg covers hash build (batched inserts), hash
// probe (batched emission) and two-phase aggregation.
func TestBatchSweepHashJoinAgg(t *testing.T) {
	runSweep(t, 0, core.InterAdj, func(eng *Engine) plan.Node {
		l := buildRel(t, eng.Store, "hl", 1200, 80, 20)
		r := buildRel(t, eng.Store, "hr", 400, 80, 20)
		hj := &plan.HashJoin{Left: &plan.SeqScan{Rel: l}, Right: &plan.SeqScan{Rel: r}, LCol: 0, RCol: 0}
		return &plan.Agg{Child: hj, GroupCol: 0, Funcs: []plan.AggFunc{{Kind: plan.CountAll}}}
	})
}

// TestBatchSweepDeepPipeline covers all three join methods stacked:
// MergeJoin feeding a NestLoop (whose inner rescans block on IO between
// emissions) feeding a HashJoin probe — the hardest case for keeping
// the clock batch-independent.
func TestBatchSweepDeepPipeline(t *testing.T) {
	runSweep(t, 64, core.InterAdj, func(eng *Engine) plan.Node {
		r1 := buildRel(t, eng.Store, "b1", 300, 60, 20)
		r2 := buildRel(t, eng.Store, "b2", 240, 60, 20)
		r3 := buildRel(t, eng.Store, "b3", 120, 60, 20)
		r4 := buildRel(t, eng.Store, "b4", 180, 60, 20)
		mj := &plan.MergeJoin{
			Left:  &plan.Sort{Child: &plan.SeqScan{Rel: r1}, Col: 0},
			Right: &plan.Sort{Child: &plan.SeqScan{Rel: r2}, Col: 0},
			LCol:  0, RCol: 0,
		}
		nl := &plan.NestLoop{
			Outer: mj,
			Inner: &plan.Material{Child: &plan.SeqScan{Rel: r3}},
			Pred:  expr.Cmp{Op: expr.EQ, L: expr.Col{Idx: 0}, R: expr.Col{Idx: 4}},
		}
		return &plan.HashJoin{Left: nl, Right: &plan.SeqScan{Rel: r4}, LCol: 0, RCol: 0}
	})
}

// TestBatchSweepNestLoopIndexInner covers the nestloop whose inner is
// an index rescan: every outer tuple triggers random IO, so emitter
// batches ahead of it must flush per emission.
func TestBatchSweepNestLoopIndexInner(t *testing.T) {
	runSweep(t, 32, core.InterAdj, func(eng *Engine) plan.Node {
		outer := buildRel(t, eng.Store, "no", 90, 30, 20)
		inner := buildShuffledRel(t, eng.Store, "ni", 300, 20)
		ix, err := btree.BuildIndex("ni_a", inner, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		return &plan.NestLoop{
			Outer: &plan.SeqScan{Rel: outer},
			Inner: &plan.IndexScan{Rel: inner, Index: ix, Lo: 0, Hi: 49},
			Pred:  expr.Cmp{Op: expr.EQ, L: expr.Col{Idx: 0}, R: expr.Col{Idx: 2}},
		}
	})
}

// TestBatchBufferPoolReuse pins down that pooled batch buffers do not
// leak tuples between queries on one engine.
func TestBatchBufferPoolReuse(t *testing.T) {
	v, eng := testEngine(0)
	rel := buildRel(t, eng.Store, "p", 500, 50, 20)
	root := &plan.SeqScan{Rel: rel, Filter: expr.ColRange(0, "a", 0, 24)}
	var first []string
	for i := 0; i < 3; i++ {
		specs, g := specFor(t, eng, root, i*10)
		rep := runOne(t, v, eng, specs, core.InterAdj)
		rows := canonTuples(rep.Results[g.Root.ID+i*10])
		if first == nil {
			first = rows
			continue
		}
		if len(rows) != len(first) {
			t.Fatalf("run %d rows = %d, want %d", i, len(rows), len(first))
		}
		for j := range rows {
			if rows[j] != first[j] {
				t.Fatalf("run %d row %d = %s, want %s", i, j, rows[j], first[j])
			}
		}
	}
}
