package exec

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"xprs/internal/btree"
	"xprs/internal/plan"
	"xprs/internal/storage"
	"xprs/internal/vclock"
)

// --- pageAssign mechanics ----------------------------------------------------

func drain(a *pageAssign, np int64) []int64 {
	var out []int64
	for {
		p, ok := a.pop(np)
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

func TestPageAssignPop(t *testing.T) {
	a := &pageAssign{segs: []strideSeg{{idx: 1, n: 3, next: 1, limit: -1}}}
	got := drain(a, 10)
	want := []int64{1, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("pages = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pages = %v, want %v", got, want)
		}
	}
	// Limited segment then fresh stride.
	a = &pageAssign{segs: []strideSeg{
		{idx: 0, n: 2, next: 4, limit: 7},
		{idx: 1, n: 2, next: 9, limit: -1},
	}}
	got = drain(a, 12)
	want = []int64{4, 6, 9, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pages = %v, want %v", got, want)
		}
	}
}

func TestPageAssignClamp(t *testing.T) {
	a := &pageAssign{segs: []strideSeg{
		{idx: 0, n: 2, next: 4, limit: -1},
		{idx: 1, n: 3, next: 10, limit: -1},
	}}
	a.clamp(8)
	got := drain(a, 100)
	want := []int64{4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("clamped pages = %v", got)
	}
}

func TestFirstInStride(t *testing.T) {
	cases := []struct {
		m      int64
		idx, n int
		want   int64
	}{
		{-1, 0, 4, 0}, {-1, 3, 4, 3}, {5, 0, 4, 8}, {5, 2, 4, 6}, {7, 0, 4, 8}, {8, 0, 4, 12},
	}
	for _, c := range cases {
		if got := firstInStride(c.m, c.idx, c.n); got != c.want {
			t.Errorf("firstInStride(%d,%d,%d) = %d, want %d", c.m, c.idx, c.n, got, c.want)
		}
	}
}

// simulatePageProtocol emulates the master/slave interplay directly on
// pageAssign values: slaves take turns scanning pages; between steps the
// master may repartition. Returns the multiset of scanned pages.
func simulatePageProtocol(t *testing.T, npages int64, degrees []int, rng *rand.Rand) map[int64]int {
	t.Helper()
	d := &pageDriver{src: &nullSource{np: npages}, frontier: -1}
	assignsAny, err := d.initial(degrees[0])
	if err != nil {
		t.Fatal(err)
	}
	var live []*pageAssign
	for _, a := range assignsAny {
		if a != nil {
			live = append(live, a.(*pageAssign))
		}
	}
	scanned := map[int64]int{}
	step := func(a *pageAssign) bool {
		p, ok := a.pop(npages)
		if !ok {
			return false
		}
		scanned[p]++
		if p > a.frontier {
			a.frontier = p
		}
		d.noteScanned(p)
		return true
	}
	for di := 1; ; di++ {
		// Run a random number of single-page steps on random live slaves.
		for k := 0; k < 1+rng.Intn(int(npages/2)+1); k++ {
			if len(live) == 0 {
				break
			}
			i := rng.Intn(len(live))
			if !step(live[i]) {
				live = append(live[:i], live[i+1:]...)
			}
		}
		if di >= len(degrees) {
			break
		}
		// Master adjustment round: everyone pauses and reports.
		if len(live) == 0 {
			break
		}
		reports := make([]report, len(live))
		for i, a := range live {
			reports[i] = a
		}
		nas, err := d.repartition(reports, degrees[di])
		if err != nil {
			t.Fatal(err)
		}
		var next []*pageAssign
		for i := 0; i < len(live) && i < len(nas); i++ {
			if nas[i] != nil {
				na := nas[i].(*pageAssign)
				na.frontier = live[i].frontier
				next = append(next, na)
			}
		}
		for i := len(live); i < len(nas); i++ {
			if nas[i] != nil {
				next = append(next, nas[i].(*pageAssign))
			}
		}
		live = next
	}
	// Drain everything left.
	for _, a := range live {
		for step(a) {
		}
	}
	return scanned
}

// nullSource is a pageSource for protocol-only tests.
type nullSource struct{ np int64 }

func (s *nullSource) npages() int64                          { return s.np }
func (s *nullSource) enqueue(*slaveCtx, int64) time.Duration { return 0 }
func (s *nullSource) fetch(*slaveCtx, int64) ([]storage.Tuple, error) {
	return nil, nil
}
func (s *nullSource) fetchCols(*slaveCtx, int64) (*storage.ColBatch, error) {
	return &storage.ColBatch{}, nil
}

func TestPageProtocolExactlyOnceGrow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	scanned := simulatePageProtocol(t, 100, []int{2, 5}, rng)
	checkExactlyOnce(t, scanned, 100)
}

func TestPageProtocolExactlyOnceShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	scanned := simulatePageProtocol(t, 100, []int{6, 2}, rng)
	checkExactlyOnce(t, scanned, 100)
}

func TestPageProtocolStackedAdjustments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	scanned := simulatePageProtocol(t, 200, []int{3, 7, 2, 8, 1, 4}, rng)
	checkExactlyOnce(t, scanned, 200)
}

func checkExactlyOnce(t *testing.T, scanned map[int64]int, npages int64) {
	t.Helper()
	for p := int64(0); p < npages; p++ {
		if scanned[p] != 1 {
			t.Fatalf("page %d scanned %d times", p, scanned[p])
		}
	}
	if int64(len(scanned)) != npages {
		t.Fatalf("scanned %d distinct pages, want %d", len(scanned), npages)
	}
}

// Property: the exactly-once invariant holds for arbitrary page counts
// and adjustment sequences.
func TestPropertyPageProtocolExactlyOnce(t *testing.T) {
	f := func(seed int64, npRaw uint8, degRaw []uint8) bool {
		np := int64(npRaw%120) + 1
		d0 := int(seed % 7)
		if d0 < 0 {
			d0 = -d0
		}
		degrees := []int{d0 + 1}
		for _, d := range degRaw {
			degrees = append(degrees, int(d%8)+1)
			if len(degrees) > 6 {
				break
			}
		}
		rng := rand.New(rand.NewSource(seed))
		scanned := simulatePageProtocol(t, np, degrees, rng)
		if int64(len(scanned)) != np {
			return false
		}
		for _, c := range scanned {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// --- live adjustment through the engine ---------------------------------------

// TestLiveAdjustmentMidScan drives a real page-partitioned scan and
// issues an adjustment while it runs, then verifies results and IO
// counts are still exact.
func TestLiveAdjustmentMidScan(t *testing.T) {
	for _, newDeg := range []int{1, 2, 6, 8} {
		v, eng := testEngine(0)
		rel := buildRel(t, eng.Store, "r", 3000, 3000, 400)
		specs, g := specFor(t, eng, &plan.SeqScan{Rel: rel}, 0)
		var rep *Report
		var err error
		v.Run(func() {
			// Launch at degree 3 manually, adjust after a while, then wait.
			fr, ferr := newFragRun(eng, g.Root, map[*plan.Fragment]*Temp{}, map[*plan.Fragment]*HashTable{}, map[*plan.Fragment]*ColHashTable{})
			if ferr != nil {
				t.Error(ferr)
				return
			}
			drv, derr := eng.driverFor(fr)
			if derr != nil {
				t.Error(derr)
				return
			}
			eng.events = vclock.NewMailbox(eng.Clock)
			rt := &runningTask{eng: eng, task: specs[0].Task, fr: fr, drv: drv, slaves: make(map[int]*slaveState)}
			if lerr := rt.launch(3); lerr != nil {
				t.Error(lerr)
				return
			}
			eng.Clock.Sleep(500 * time.Millisecond) // mid-scan
			if aerr := rt.adjust(newDeg); aerr != nil {
				t.Error(aerr)
				return
			}
			if got := rt.Degree(); got != newDeg {
				t.Errorf("degree = %d, want %d", got, newDeg)
			}
			ev := eng.events.Wait().(taskDone)
			if ev.err != nil {
				t.Error(ev.err)
			}
			rep = &Report{Results: map[int]*Temp{0: fr.outTemp}}
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.Results[0].Len(); got != 3000 {
			t.Fatalf("newDeg %d: results = %d rows, want 3000", newDeg, got)
		}
		if got := eng.Store.Disks.Stats().TotalReads(); got != rel.NPages() {
			t.Fatalf("newDeg %d: disk reads = %d, want %d (exactly once)", newDeg, got, rel.NPages())
		}
	}
}

// TestLiveAdjustmentRangeScan does the same for a range-partitioned
// index scan (Figure 6 protocol).
func TestLiveAdjustmentRangeScan(t *testing.T) {
	for _, newDeg := range []int{1, 4, 8} {
		v, eng := testEngine(0)
		rel := buildShuffledRel(t, eng.Store, "r", 2000, 40)
		ix, err := btree.BuildIndex("r_a", rel, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		root := &plan.IndexScan{Rel: rel, Index: ix, Lo: 0, Hi: 1999}
		specs, g := specFor(t, eng, root, 0)
		v.Run(func() {
			fr, ferr := newFragRun(eng, g.Root, map[*plan.Fragment]*Temp{}, map[*plan.Fragment]*HashTable{}, map[*plan.Fragment]*ColHashTable{})
			if ferr != nil {
				t.Error(ferr)
				return
			}
			drv, _ := eng.driverFor(fr)
			eng.events = vclock.NewMailbox(eng.Clock)
			rt := &runningTask{eng: eng, task: specs[0].Task, fr: fr, drv: drv, slaves: make(map[int]*slaveState)}
			if lerr := rt.launch(3); lerr != nil {
				t.Error(lerr)
				return
			}
			eng.Clock.Sleep(2 * time.Second)
			if aerr := rt.adjust(newDeg); aerr != nil {
				t.Error(aerr)
				return
			}
			ev := eng.events.Wait().(taskDone)
			if ev.err != nil {
				t.Error(ev.err)
			}
			if got := fr.outTemp.Len(); got != 2000 {
				t.Errorf("newDeg %d: results = %d rows, want 2000", newDeg, got)
			}
		})
		// Every tuple fetched exactly once through the index.
		if got := eng.Store.Disks.Stats().TotalReads(); got != 2000 {
			t.Fatalf("newDeg %d: disk reads = %d, want 2000", newDeg, got)
		}
	}
}

// TestAdjustmentAfterCompletionIsNoop exercises the race where the
// master adjusts a task whose slaves all finished.
func TestAdjustmentAfterCompletionIsNoop(t *testing.T) {
	v, eng := testEngine(0)
	rel := buildRel(t, eng.Store, "r", 50, 50, 20)
	specs, g := specFor(t, eng, &plan.SeqScan{Rel: rel}, 0)
	v.Run(func() {
		fr, _ := newFragRun(eng, g.Root, map[*plan.Fragment]*Temp{}, map[*plan.Fragment]*HashTable{}, map[*plan.Fragment]*ColHashTable{})
		drv, _ := eng.driverFor(fr)
		eng.events = vclock.NewMailbox(eng.Clock)
		rt := &runningTask{eng: eng, task: specs[0].Task, fr: fr, drv: drv, slaves: make(map[int]*slaveState)}
		if err := rt.launch(8); err != nil {
			t.Error(err)
			return
		}
		ev := eng.events.Wait().(taskDone) // wait until done
		if ev.err != nil {
			t.Error(ev.err)
		}
		if err := rt.adjust(4); err != nil {
			t.Errorf("post-completion adjust errored: %v", err)
		}
	})
}

// TestRangeDealIntervalsBalance checks the repartition balancing helper.
func TestRangeDealIntervalsBalance(t *testing.T) {
	tree := btree.New()
	for i := 0; i < 9000; i++ {
		tree.Insert(int32(i), storage.TID{})
	}
	parts := dealIntervals(tree, []btree.Interval{{Lo: 0, Hi: 8999}}, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	for i, p := range parts {
		var c int64
		for _, iv := range p {
			c += tree.CountRange(iv.Lo, iv.Hi)
		}
		if c < 2000 || c > 4500 {
			t.Fatalf("slave %d holds %d keys of 9000", i, c)
		}
	}
	// Degenerate: empty input.
	empty := dealIntervals(tree, nil, 4)
	if len(empty) != 4 {
		t.Fatal("empty deal shape")
	}
	// No keys in range: intervals still dealt so scans terminate.
	noKeys := dealIntervals(tree, []btree.Interval{{Lo: 20000, Hi: 30000}}, 2)
	total := 0
	for _, p := range noKeys {
		total += len(p)
	}
	if total != 1 {
		t.Fatalf("no-key intervals dealt %d times", total)
	}
}
