package exec

import (
	"fmt"
	"slices"

	"xprs/internal/btree"
	"xprs/internal/plan"
	"xprs/internal/storage"
)

// Range partitioning (§2.4, Figure 6): an index scan's key range is
// split into balanced sub-intervals using the index's key distribution,
// one per slave. During dynamic adjustment each slave reports the
// intervals it still has to scan ("if a slave backend is assigned to
// scan [l,h] and the current value being examined is c, the interval
// sent back is [c,h]"); the master merges and redistributes them over
// the new degree. After adjustment a slave may hold more than one
// interval, exactly as the paper notes.

// rangeAssign is one slave's remaining key intervals, scanned in order.
type rangeAssign struct {
	intervals []btree.Interval
}

// rangeDriver executes an index-scan-driven fragment with range
// partitioning.
type rangeDriver struct {
	fr   *fragRun
	scan *plan.IndexScan
}

func newRangeDriver(fr *fragRun, leaf plan.Node) (*rangeDriver, error) {
	x, ok := leaf.(*plan.IndexScan)
	if !ok {
		return nil, fmt.Errorf("exec: range driver over %T", leaf)
	}
	return &rangeDriver{fr: fr, scan: x}, nil
}

// initial implements driver: a balanced split of [Lo, Hi] from the
// index's distribution ("we try to find a balanced range partition with
// data distribution information ... in the root node of an index").
func (d *rangeDriver) initial(degree int) ([]assignment, error) {
	if degree < 1 {
		return nil, fmt.Errorf("exec: degree %d", degree)
	}
	if d.scan.Index.Tree.CountRange(d.scan.Lo, d.scan.Hi) == 0 {
		return make([]assignment, degree), nil // nothing to scan
	}
	ivs := d.scan.Index.Tree.SplitBalanced(d.scan.Lo, d.scan.Hi, degree)
	out := make([]assignment, degree)
	for i := range ivs {
		out[i] = &rangeAssign{intervals: []btree.Interval{ivs[i]}}
	}
	return out, nil
}

// repartition implements driver: merge all remaining intervals and deal
// them out to the new degree, splitting large intervals on index
// quantiles so the shares balance.
func (d *rangeDriver) repartition(remaining []report, degree int) ([]assignment, error) {
	if degree < 1 {
		return nil, fmt.Errorf("exec: degree %d", degree)
	}
	var all []btree.Interval
	for _, r := range remaining {
		ra, ok := r.(*rangeAssign)
		if !ok {
			return nil, fmt.Errorf("exec: range driver got report %T", r)
		}
		for _, iv := range ra.intervals {
			if !iv.Empty() {
				all = append(all, iv)
			}
		}
	}
	if d.fr.tracing() {
		d.fr.traceInstant("protocol", "interval-redeal", fmt.Sprintf(
			"%d remaining key intervals merged and redealt over %d slaves on index quantiles",
			len(all), degree))
	}
	parts := dealIntervals(d.scan.Index.Tree, all, degree)
	out := make([]assignment, len(parts))
	for i, p := range parts {
		if len(p) > 0 {
			out[i] = &rangeAssign{intervals: p}
		}
	}
	return out, nil
}

// dealIntervals distributes intervals over k slaves with balanced index
// key counts, splitting intervals where necessary.
func dealIntervals(tree *btree.Tree, all []btree.Interval, k int) [][]btree.Interval {
	slices.SortFunc(all, func(a, b btree.Interval) int {
		switch {
		case a.Lo < b.Lo:
			return -1
		case a.Lo > b.Lo:
			return 1
		}
		return 0
	})
	var total int64
	for _, iv := range all {
		total += tree.CountRange(iv.Lo, iv.Hi)
	}
	parts := make([][]btree.Interval, k)
	if total == 0 {
		// No indexed keys left; deal whole intervals round-robin so the
		// (empty) scans still terminate.
		for i, iv := range all {
			parts[i%k] = append(parts[i%k], iv)
		}
		return parts
	}
	target := (total + int64(k) - 1) / int64(k)
	cur, acc := 0, int64(0)
	for _, iv := range all {
		for !iv.Empty() {
			if cur >= k {
				parts[k-1] = append(parts[k-1], iv)
				break
			}
			c := tree.CountRange(iv.Lo, iv.Hi)
			if acc+c <= target || c == 0 {
				parts[cur] = append(parts[cur], iv)
				acc += c
				if acc >= target {
					cur++
					acc = 0
				}
				break
			}
			// Split iv so the current slave receives exactly its missing
			// share.
			need := target - acc
			frac := int(c / need)
			if frac < 2 {
				frac = 2
			}
			sub := tree.SplitBalanced(iv.Lo, iv.Hi, frac)
			first := sub[0]
			parts[cur] = append(parts[cur], first)
			cur++
			acc = 0
			if first.Hi >= iv.Hi {
				break
			}
			iv = btree.Interval{Lo: first.Hi + 1, Hi: iv.Hi}
		}
	}
	return parts
}

// run implements driver: scan assigned intervals key-group by key-group,
// fetching heap tuples through the index (one random IO each), with a
// checkpoint between groups so adjustments pause at clean boundaries.
func (d *rangeDriver) run(sc *slaveCtx) error {
	a, ok := sc.state.assign.(*rangeAssign)
	if !ok {
		return fmt.Errorf("exec: range slave got assignment %T", sc.state.assign)
	}
	tree := d.scan.Index.Tree
	rel := d.scan.Rel
	perTuple := d.fr.eng.Params.TupleCPU(rel.Stats().AvgTupleSize) + d.fr.eng.Params.IndexProbeCPU
	// lastPage tracks the heap page under this slave's hand: consecutive
	// TIDs on the same page (the common case for a clustered index, where
	// key order equals heap order) cost one IO, not one per tuple.
	lastPage := int64(-1)
	bsz := d.fr.eng.batchSize()
	bp := sc.getBatch()
	batch := *bp
	defer func() {
		*bp = batch
		sc.putBatch(bp)
	}()
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := d.fr.processBatch(sc, batch)
		batch = batch[:0]
		return err
	}
	for {
		if len(a.intervals) == 0 {
			return nil
		}
		iv := a.intervals[0]
		if iv.Empty() {
			a.intervals = a.intervals[1:]
			continue
		}
		// Fetch the next complete key group within iv.
		var groupKey int32
		var tids []storage.TID
		tree.Visit(iv.Lo, iv.Hi, func(k int32, tid storage.TID) bool {
			if len(tids) == 0 {
				groupKey = k
			} else if k != groupKey {
				return false
			}
			tids = append(tids, tid)
			return true
		})
		if len(tids) == 0 {
			a.intervals = a.intervals[1:]
			continue
		}
		for _, tid := range tids {
			var t storage.Tuple
			var err error
			if tid.Page == lastPage {
				// The heap page is already at hand; no further IO.
				t, err = rel.TupleAt(tid)
			} else {
				// Drain the pending batch and CPU debt before the random
				// read so the clock at the IO point is batch-independent.
				if err = flush(); err != nil {
					return err
				}
				sc.flushCPU()
				t, err = d.fr.eng.Store.ReadTID(rel, tid)
				lastPage = tid.Page
			}
			if err != nil {
				return err
			}
			sc.chargeCPU(perTuple)
			batch = append(batch, t)
			if len(batch) >= bsz {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		// The group is complete; deliver it before the checkpoint so an
		// adjustment never pauses with undelivered tuples.
		if err := flush(); err != nil {
			return err
		}
		// Advance past the processed group.
		if groupKey >= iv.Hi {
			a.intervals = a.intervals[1:]
		} else {
			a.intervals[0].Lo = groupKey + 1
		}
		next := sc.checkpoint(a)
		if next == nil {
			return nil
		}
		na, ok := next.(*rangeAssign)
		if !ok {
			return fmt.Errorf("exec: range slave reassigned %T", next)
		}
		a = na
	}
}
