// Package exec is the XPRS parallel executor: the master backend /
// slave backend architecture of §2.1, Figure 2. The master applies
// scheduling decisions from internal/core; slave backends (goroutines)
// execute plan-fragment pipelines over partitions of the driving scan,
// with page partitioning for sequential scans and range partitioning for
// index scans (§2.4), including both dynamic parallelism-adjustment
// protocols (Figures 5 and 6).
//
// All CPU work and disk service is charged to the engine's clock;
// under a vclock.Virtual the whole execution is a deterministic
// simulation calibrated to the paper's hardware, while the identical
// code path runs in real time under vclock.Real.
package exec

import (
	"fmt"
	"sort"
	"sync"

	"xprs/internal/storage"
)

// Temp is a materialized fragment result living in shared memory. On the
// paper's shared-memory machine, temporaries are exchanged through the
// buffer pool without crossing disks; accordingly reads of a Temp charge
// CPU but no IO.
type Temp struct {
	Schema storage.Schema

	mu     sync.Mutex
	tuples []storage.Tuple
	// sortedBy is the column the tuples are ordered on, or -1.
	sortedBy int
}

// NewTemp creates an empty temp with the given schema.
func NewTemp(schema storage.Schema) *Temp {
	return &Temp{Schema: schema, sortedBy: -1}
}

// Append adds a batch of tuples (slave backends flush local buffers).
func (t *Temp) Append(batch []storage.Tuple) {
	if len(batch) == 0 {
		return
	}
	t.mu.Lock()
	t.tuples = append(t.tuples, batch...)
	t.mu.Unlock()
}

// Len returns the number of tuples.
func (t *Temp) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.tuples)
}

// SortedBy returns the order column, or -1 when unordered.
func (t *Temp) SortedBy() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sortedBy
}

// Tuples returns the backing slice. Callers must treat it as read-only;
// it is only exposed after the producing fragment has completed.
func (t *Temp) Tuples() []storage.Tuple {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tuples
}

// Finalize sorts the temp on col (-1 keeps arrival order) and seals it.
// It returns the number of comparisons performed so the caller can
// charge CPU for them.
func (t *Temp) Finalize(col int) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if col < 0 {
		t.sortedBy = -1
		return 0
	}
	var cmps int64
	sort.SliceStable(t.tuples, func(i, j int) bool {
		cmps++
		return t.tuples[i].Vals[col].Int < t.tuples[j].Vals[col].Int
	})
	t.sortedBy = col
	return cmps
}

// chunkSize is the virtual page size of a Temp for page partitioning:
// FragScan drivers hand out chunks the way sequential scans hand out
// disk pages.
const chunkSize = 64

// NumChunks returns the number of partitionable chunks.
func (t *Temp) NumChunks() int64 {
	n := int64(t.Len())
	return (n + chunkSize - 1) / chunkSize
}

// Chunk returns the tuples of chunk c.
func (t *Temp) Chunk(c int64) []storage.Tuple {
	t.mu.Lock()
	defer t.mu.Unlock()
	lo := c * chunkSize
	hi := lo + chunkSize
	if lo >= int64(len(t.tuples)) {
		return nil
	}
	if hi > int64(len(t.tuples)) {
		hi = int64(len(t.tuples))
	}
	return t.tuples[lo:hi]
}

// lowerBound returns the first index whose col value is >= key. The temp
// must be sorted on col.
func (t *Temp) lowerBound(col int, key int32) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return sort.Search(len(t.tuples), func(i int) bool {
		return t.tuples[i].Vals[col].Int >= key
	})
}

// upperBound returns the first index whose col value is > key.
func (t *Temp) upperBound(col int, key int32) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return sort.Search(len(t.tuples), func(i int) bool {
		return t.tuples[i].Vals[col].Int > key
	})
}

// CountRange returns the number of tuples with col in [lo, hi]; the temp
// must be sorted on col.
func (t *Temp) CountRange(col int, lo, hi int32) int {
	if lo > hi {
		return 0
	}
	return t.upperBound(col, hi) - t.lowerBound(col, lo)
}

// Bounds returns the min and max of the sort column; ok is false when
// empty.
func (t *Temp) Bounds(col int) (lo, hi int32, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.tuples) == 0 {
		return 0, 0, false
	}
	return t.tuples[0].Vals[col].Int, t.tuples[len(t.tuples)-1].Vals[col].Int, true
}

// HashTable is the shared-memory hash table a HashOut fragment builds
// and a HashJoin probe consumes.
type HashTable struct {
	Schema storage.Schema
	Col    int

	mu      sync.Mutex
	buckets map[int32][]storage.Tuple
	n       int
}

// NewHashTable creates an empty table keyed on the given column of the
// build schema.
func NewHashTable(schema storage.Schema, col int) *HashTable {
	return &HashTable{Schema: schema, Col: col, buckets: make(map[int32][]storage.Tuple)}
}

// Insert adds one build tuple.
func (h *HashTable) Insert(t storage.Tuple) error {
	if h.Col >= len(t.Vals) {
		return fmt.Errorf("exec: hash column %d out of range", h.Col)
	}
	k := t.Vals[h.Col].Int
	h.mu.Lock()
	h.buckets[k] = append(h.buckets[k], t)
	h.n++
	h.mu.Unlock()
	return nil
}

// InsertBatch adds a batch of build tuples under one lock round-trip.
// Column validation happens before the lock so the table never holds a
// partial batch on error.
func (h *HashTable) InsertBatch(ts []storage.Tuple) error {
	for i := range ts {
		if h.Col >= len(ts[i].Vals) {
			return fmt.Errorf("exec: hash column %d out of range", h.Col)
		}
	}
	if len(ts) == 0 {
		return nil
	}
	h.mu.Lock()
	for i := range ts {
		k := ts[i].Vals[h.Col].Int
		h.buckets[k] = append(h.buckets[k], ts[i])
	}
	h.n += len(ts)
	h.mu.Unlock()
	return nil
}

// Probe returns the build tuples matching key. It takes no lock: probes
// only run after the building fragment completed, and that completion
// is published through the master's mailbox, which orders every insert
// before any probe.
func (h *HashTable) Probe(key int32) []storage.Tuple {
	return h.buckets[key]
}

// Len returns the number of inserted tuples.
func (h *HashTable) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}
