// Package exec is the XPRS parallel executor: the master backend /
// slave backend architecture of §2.1, Figure 2. The master applies
// scheduling decisions from internal/core; slave backends (goroutines)
// execute plan-fragment pipelines over partitions of the driving scan,
// with page partitioning for sequential scans and range partitioning for
// index scans (§2.4), including both dynamic parallelism-adjustment
// protocols (Figures 5 and 6).
//
// All CPU work and disk service is charged to the engine's clock;
// under a vclock.Virtual the whole execution is a deterministic
// simulation calibrated to the paper's hardware, while the identical
// code path runs in real time under vclock.Real.
package exec

import (
	"sort"
	"sync"

	"xprs/internal/storage"
)

// Temp is a materialized fragment result living in shared memory. On the
// paper's shared-memory machine, temporaries are exchanged through the
// buffer pool without crossing disks; accordingly reads of a Temp charge
// CPU but no IO.
//
// Internally a Temp is columnar: appends land in one owned ColBatch, so
// neither the columnar pipeline nor Finalize's sort ever touches a tuple
// struct. Row-oriented readers (merge drivers, nestloop rescans, tests)
// go through Tuples/Chunk, which materialize a row cache lazily — one
// backing Value array for the whole temp — and invalidate it on append.
type Temp struct {
	Schema storage.Schema

	mu   sync.Mutex
	cols *storage.ColBatch
	// runs records the end offset of every appended batch, so Finalize
	// can align its parallel sort chunks to append boundaries.
	runs []int
	// sortedBy is the column the tuples are ordered on, or -1.
	sortedBy int
	// sortProcs bounds the goroutines Finalize may use; 0 or 1 sorts
	// inline.
	sortProcs int
	// rows is the lazily materialized row view; nil when stale.
	rows []storage.Tuple
}

// NewTemp creates an empty temp with the given schema.
func NewTemp(schema storage.Schema) *Temp {
	return &Temp{Schema: schema, sortedBy: -1}
}

// SetSortProcs bounds the goroutines Finalize may use. The executor
// sets it from Env.NProcs when it materializes a fragment; benchmarks
// set it directly. Any value yields the identical sorted order.
func (t *Temp) SetSortProcs(p int) {
	t.mu.Lock()
	t.sortProcs = p
	t.mu.Unlock()
}

// ensureColsLocked lazily allocates the columnar store.
func (t *Temp) ensureColsLocked() *storage.ColBatch {
	if t.cols == nil {
		t.cols = storage.NewColBatch(t.Schema, chunkSize)
	}
	return t.cols
}

// Append adds a batch of tuples (slave backends flush local buffers).
// Values are copied into the columnar store, so the caller may reuse the
// batch and its Vals immediately.
func (t *Temp) Append(batch []storage.Tuple) {
	if len(batch) == 0 {
		return
	}
	t.mu.Lock()
	cb := t.ensureColsLocked()
	for i := range batch {
		cb.AppendTuple(batch[i])
	}
	t.runs = append(t.runs, cb.N)
	t.rows = nil
	t.mu.Unlock()
}

// AppendCols adds the live rows of a columnar batch under one lock
// round-trip; the batch (and any storage it views) may be reused
// immediately afterwards.
func (t *Temp) AppendCols(b *storage.ColBatch) {
	live := b.Live()
	if live == 0 {
		return
	}
	t.mu.Lock()
	cb := t.ensureColsLocked()
	if b.Sel == nil {
		for row := 0; row < b.N; row++ {
			cb.AppendRow(b, row)
		}
	} else {
		for _, row := range b.Sel {
			cb.AppendRow(b, int(row))
		}
	}
	t.runs = append(t.runs, cb.N)
	t.rows = nil
	t.mu.Unlock()
}

// appendDirect runs fn with the temp's columnar store locked; fn
// appends values to the vectors itself and returns how many rows it
// added. Aggregation emit uses it to write final rows without ever
// materializing a tuple.
func (t *Temp) appendDirect(fn func(cb *storage.ColBatch) int) {
	t.mu.Lock()
	cb := t.ensureColsLocked()
	if n := fn(cb); n > 0 {
		cb.N += n
		t.runs = append(t.runs, cb.N)
		t.rows = nil
	}
	t.mu.Unlock()
}

// Len returns the number of tuples.
func (t *Temp) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cols == nil {
		return 0
	}
	return t.cols.N
}

// SortedBy returns the order column, or -1 when unordered.
func (t *Temp) SortedBy() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sortedBy
}

// materializeLocked builds (or returns) the row view of the columnar
// store. All rows share one backing Value array.
func (t *Temp) materializeLocked() []storage.Tuple {
	if t.rows != nil || t.cols == nil {
		return t.rows
	}
	n := t.cols.N
	ncols := len(t.cols.Vecs)
	vals := make([]storage.Value, n*ncols)
	rows := make([]storage.Tuple, n)
	for i := 0; i < n; i++ {
		vs := vals[i*ncols : (i+1)*ncols : (i+1)*ncols]
		for c := 0; c < ncols; c++ {
			vs[c] = t.cols.Value(c, i)
		}
		rows[i] = storage.Tuple{Vals: vs}
	}
	t.rows = rows
	return rows
}

// Tuples returns the temp as rows. Callers must treat the result as
// read-only; it is only exposed after the producing fragment completed.
func (t *Temp) Tuples() []storage.Tuple {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.materializeLocked()
}

// Finalize sorts the temp on col (-1 keeps arrival order) and seals it.
// The sort is the parallel merge sort of sortkernel.go: append runs are
// grouped into up to sortProcs chunks, chunk-sorted concurrently, then
// stably merged pairwise, so the result is exactly what a stable sort
// of the arrival order produces regardless of how many goroutines ran.
//
// The returned comparison count is the modeled n·⌈log₂n⌉ — a pure
// function of the row count, matching the optimizer's sort CPU model —
// so the virtual-clock charge is independent of batch size, partition
// count and slave count (real comparison counts would vary with run
// boundaries).
func (t *Temp) Finalize(col int) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	runs := t.runs
	t.runs = nil
	if col < 0 {
		t.sortedBy = -1
		return 0
	}
	if t.cols != nil {
		sortColBatch(t.cols, col, runs, t.sortProcs)
		t.rows = nil
	}
	t.sortedBy = col
	n := 0
	if t.cols != nil {
		n = t.cols.N
	}
	return modeledSortCmps(n)
}

// chunkSize is the virtual page size of a Temp for page partitioning:
// FragScan drivers hand out chunks the way sequential scans hand out
// disk pages.
const chunkSize = 64

// NumChunks returns the number of partitionable chunks.
func (t *Temp) NumChunks() int64 {
	n := int64(t.Len())
	return (n + chunkSize - 1) / chunkSize
}

// chunkRange clamps chunk c to [lo, hi) row offsets; hi == lo when out
// of range. Caller holds t.mu.
func (t *Temp) chunkRangeLocked(c int64) (int, int) {
	n := 0
	if t.cols != nil {
		n = t.cols.N
	}
	lo := int(c * chunkSize)
	if lo >= n {
		return 0, 0
	}
	hi := lo + chunkSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Chunk returns the tuples of chunk c (row view).
func (t *Temp) Chunk(c int64) []storage.Tuple {
	t.mu.Lock()
	defer t.mu.Unlock()
	lo, hi := t.chunkRangeLocked(c)
	if hi == lo {
		return nil
	}
	return t.materializeLocked()[lo:hi]
}

// ChunkCols returns a read-only columnar view of chunk c, using vecs as
// scratch for the view headers. ok is false past the end.
func (t *Temp) ChunkCols(c int64, vecs []storage.Vec) (storage.ColBatch, []storage.Vec, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	lo, hi := t.chunkRangeLocked(c)
	if hi == lo {
		return storage.ColBatch{}, vecs, false
	}
	view, vecs := t.cols.Slice(lo, hi, vecs)
	return view, vecs, true
}

// lowerBound returns the first index whose col value is >= key. The temp
// must be sorted on col.
func (t *Temp) lowerBound(col int, key int32) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cols == nil {
		return 0
	}
	ints := t.cols.Vecs[col].Ints
	return sort.Search(len(ints), func(i int) bool {
		return ints[i] >= key
	})
}

// upperBound returns the first index whose col value is > key.
func (t *Temp) upperBound(col int, key int32) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cols == nil {
		return 0
	}
	ints := t.cols.Vecs[col].Ints
	return sort.Search(len(ints), func(i int) bool {
		return ints[i] > key
	})
}

// CountRange returns the number of tuples with col in [lo, hi]; the temp
// must be sorted on col.
func (t *Temp) CountRange(col int, lo, hi int32) int {
	if lo > hi {
		return 0
	}
	return t.upperBound(col, hi) - t.lowerBound(col, lo)
}

// Bounds returns the min and max of the sort column; ok is false when
// empty.
func (t *Temp) Bounds(col int) (lo, hi int32, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cols == nil || t.cols.N == 0 {
		return 0, 0, false
	}
	ints := t.cols.Vecs[col].Ints
	return ints[0], ints[len(ints)-1], true
}
