// Package exec is the XPRS parallel executor: the master backend /
// slave backend architecture of §2.1, Figure 2. The master applies
// scheduling decisions from internal/core; slave backends (goroutines)
// execute plan-fragment pipelines over partitions of the driving scan,
// with page partitioning for sequential scans and range partitioning for
// index scans (§2.4), including both dynamic parallelism-adjustment
// protocols (Figures 5 and 6).
//
// All CPU work and disk service is charged to the engine's clock;
// under a vclock.Virtual the whole execution is a deterministic
// simulation calibrated to the paper's hardware, while the identical
// code path runs in real time under vclock.Real.
package exec

import (
	"sort"
	"sync"

	"xprs/internal/storage"
)

// Temp is a materialized fragment result living in shared memory. On the
// paper's shared-memory machine, temporaries are exchanged through the
// buffer pool without crossing disks; accordingly reads of a Temp charge
// CPU but no IO.
type Temp struct {
	Schema storage.Schema

	mu     sync.Mutex
	tuples []storage.Tuple
	// runs records the end offset of every appended batch, so Finalize
	// can align its parallel sort chunks to append boundaries.
	runs []int
	// sortedBy is the column the tuples are ordered on, or -1.
	sortedBy int
	// sortProcs bounds the goroutines Finalize may use; 0 or 1 sorts
	// inline.
	sortProcs int
}

// NewTemp creates an empty temp with the given schema.
func NewTemp(schema storage.Schema) *Temp {
	return &Temp{Schema: schema, sortedBy: -1}
}

// SetSortProcs bounds the goroutines Finalize may use. The executor
// sets it from Env.NProcs when it materializes a fragment; benchmarks
// set it directly. Any value yields the identical sorted order.
func (t *Temp) SetSortProcs(p int) {
	t.mu.Lock()
	t.sortProcs = p
	t.mu.Unlock()
}

// Append adds a batch of tuples (slave backends flush local buffers).
func (t *Temp) Append(batch []storage.Tuple) {
	if len(batch) == 0 {
		return
	}
	t.mu.Lock()
	t.tuples = append(t.tuples, batch...)
	t.runs = append(t.runs, len(t.tuples))
	t.mu.Unlock()
}

// Len returns the number of tuples.
func (t *Temp) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.tuples)
}

// SortedBy returns the order column, or -1 when unordered.
func (t *Temp) SortedBy() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sortedBy
}

// Tuples returns the backing slice. Callers must treat it as read-only;
// it is only exposed after the producing fragment has completed.
func (t *Temp) Tuples() []storage.Tuple {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tuples
}

// Finalize sorts the temp on col (-1 keeps arrival order) and seals it.
// The sort is the parallel merge sort of sortkernel.go: append runs are
// grouped into up to sortProcs chunks, chunk-sorted concurrently, then
// stably merged pairwise, so the result is exactly what a stable sort
// of the arrival order produces regardless of how many goroutines ran.
//
// The returned comparison count is the modeled n·⌈log₂n⌉ — a pure
// function of the row count, matching the optimizer's sort CPU model —
// so the virtual-clock charge is independent of batch size, partition
// count and slave count (real comparison counts would vary with run
// boundaries).
func (t *Temp) Finalize(col int) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	runs := t.runs
	t.runs = nil
	if col < 0 {
		t.sortedBy = -1
		return 0
	}
	t.tuples = parallelStableSort(t.tuples, col, runs, t.sortProcs)
	t.sortedBy = col
	return modeledSortCmps(len(t.tuples))
}

// chunkSize is the virtual page size of a Temp for page partitioning:
// FragScan drivers hand out chunks the way sequential scans hand out
// disk pages.
const chunkSize = 64

// NumChunks returns the number of partitionable chunks.
func (t *Temp) NumChunks() int64 {
	n := int64(t.Len())
	return (n + chunkSize - 1) / chunkSize
}

// Chunk returns the tuples of chunk c.
func (t *Temp) Chunk(c int64) []storage.Tuple {
	t.mu.Lock()
	defer t.mu.Unlock()
	lo := c * chunkSize
	hi := lo + chunkSize
	if lo >= int64(len(t.tuples)) {
		return nil
	}
	if hi > int64(len(t.tuples)) {
		hi = int64(len(t.tuples))
	}
	return t.tuples[lo:hi]
}

// lowerBound returns the first index whose col value is >= key. The temp
// must be sorted on col.
func (t *Temp) lowerBound(col int, key int32) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return sort.Search(len(t.tuples), func(i int) bool {
		return t.tuples[i].Vals[col].Int >= key
	})
}

// upperBound returns the first index whose col value is > key.
func (t *Temp) upperBound(col int, key int32) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return sort.Search(len(t.tuples), func(i int) bool {
		return t.tuples[i].Vals[col].Int > key
	})
}

// CountRange returns the number of tuples with col in [lo, hi]; the temp
// must be sorted on col.
func (t *Temp) CountRange(col int, lo, hi int32) int {
	if lo > hi {
		return 0
	}
	return t.upperBound(col, hi) - t.lowerBound(col, lo)
}

// Bounds returns the min and max of the sort column; ok is false when
// empty.
func (t *Temp) Bounds(col int) (lo, hi int32, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.tuples) == 0 {
		return 0, 0, false
	}
	return t.tuples[0].Vals[col].Int, t.tuples[len(t.tuples)-1].Vals[col].Int, true
}
