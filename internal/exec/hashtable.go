package exec

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"xprs/internal/storage"
)

// The build side of a hash join is a radix-partitioned, open-addressed
// table. Each build slave hashes its batches into P = 2^k private
// partition buffers (contiguous tuple arrays, no mutex on the hot
// path); when a slave exits, its buffers are handed to the shared table
// under one short lock. Sealing — which runs once, after the building
// fragment completes and before any probe — builds a per-partition
// open-addressed index: linear probing over power-of-two slot arrays,
// with all build tuples of a partition stored grouped by key in one
// flat slice, so a probe walks contiguous memory. Probes take no lock
// and perform no allocation.
//
// The hash function is an odd-multiplier mix, hence a bijection on 32
// bits: two keys are equal exactly when their hashes are. The table
// exploits that everywhere. Builders cache each tuple's hash next to
// it, so sealing never re-reads tuple values; the probe index packs
// each slot into one uint64 — hash in the top half, the key group's
// flat offset and length in the bottom half — so a probe resolves hit
// or miss, group start and group length from a single 8-byte load.
// Hash 0 doubles as the empty-slot marker; the one key that hashes to
// 0 (key 0) lives in a dedicated per-partition group instead of the
// slot array.
//
// Skew handling: a key whose multiplicity exceeds heavyKeyThreshold is
// evicted from the flat slice into a dedicated heavy-hitter group, so
// the open table's scatter offsets and the per-partition working set
// stay bounded no matter how skewed the build side is (cf. the join
// product skew literature: without a fallback, one hot key serializes
// whatever touches its partition).
//
// Partition count is a pure wall-clock knob: results, virtual-clock
// totals and disk statistics are independent of it (the modeled insert
// and probe CPU charges are per tuple, not per partition), which
// TestBatchSweepHashPartitions proves at counts 1, 4 and 16.

// DefaultHashPartitions is the build-side partition count when neither
// the fragment hint nor Engine.HashPartitions picks one.
const DefaultHashPartitions = 16

// Slot layout: hash(32) | start(24) | count(8).
const (
	slotCountBits = 8
	slotCountMask = 1<<slotCountBits - 1
	slotStartBits = 24
	slotHashShift = slotCountBits + slotStartBits

	// heavyMark in the count field tags a heavy-hitter slot whose start
	// field holds the heavy-group index instead of a flat offset.
	heavyMark = slotCountMask

	// maxPartTuples bounds one partition's tuple count so flat offsets
	// fit the 24-bit start field.
	maxPartTuples = 1<<slotStartBits - 1
)

// heavyKeyThreshold is the key multiplicity beyond which a key's build
// tuples move to a dedicated heavy-hitter group (the largest
// multiplicity the slot's 8-bit inline count can express).
const heavyKeyThreshold = heavyMark - 1

// hashKey is Fibonacci hashing: the top bits select the partition, the
// low bits the slot. The multiplier is odd, so the map is a bijection on
// uint32 — hash equality is key equality.
func hashKey(k int32) uint32 {
	return uint32(k) * 0x9E3779B9
}

// heavyGroup is the fallback home of one heavy-hitter key, identified
// by its (bijective) hash.
type heavyGroup struct {
	hv     uint32
	tuples []storage.Tuple
}

// buildChunk is one flushed build buffer: tuples plus their cached
// hashes, index-aligned.
type buildChunk struct {
	ts  []storage.Tuple
	hvs []uint32
}

// hashPart is one sealed partition. slots is the packed open-addressed
// index (0 = empty). Tuples of the key hashing to 0 sit at
// tuples[zeroStart:zeroStart+zeroCount].
type hashPart struct {
	tuples []storage.Tuple // flat, grouped by key
	slots  []uint64
	heavy  []heavyGroup

	zeroStart int32
	zeroCount int32
}

// HashTable is the shared-memory hash table a HashOut fragment builds
// and a HashJoin probe consumes.
type HashTable struct {
	Schema storage.Schema
	Col    int

	// partShift maps a hash's top bits to a partition index; sealProcs
	// bounds the wall-clock parallelism of Seal.
	partShift uint
	sealProcs int

	mu sync.Mutex
	n  int
	// chunks holds the unsealed build input: per partition, the private
	// buffers flushed by exiting build slaves, in flush order.
	chunks [][]buildChunk
	// direct is the per-partition buffer behind Insert/InsertBatch; nil
	// once sealed.
	direct []buildChunk

	sealOnce sync.Once
	parts    []hashPart
}

// NewHashTable creates an empty table keyed on the given column of the
// build schema, with DefaultHashPartitions partitions.
func NewHashTable(schema storage.Schema, col int) *HashTable {
	return NewHashTableP(schema, col, DefaultHashPartitions, 1)
}

// NewHashTableP creates an empty table with an explicit partition count
// (rounded up to a power of two, minimum 1) and a bound on the
// goroutines Seal may use.
func NewHashTableP(schema storage.Schema, col int, partitions, sealProcs int) *HashTable {
	if partitions < 1 {
		partitions = 1
	}
	p := ceilPow2(partitions)
	if sealProcs < 1 {
		sealProcs = 1
	}
	return &HashTable{
		Schema:    schema,
		Col:       col,
		partShift: uint(32 - bits.Len32(uint32(p)-1)),
		sealProcs: sealProcs,
		chunks:    make([][]buildChunk, p),
		direct:    make([]buildChunk, p),
	}
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len32(uint32(n-1))
}

// nparts returns the partition count.
func (h *HashTable) nparts() int { return len(h.chunks) }

// Insert adds one build tuple through the shared (locking) path.
func (h *HashTable) Insert(t storage.Tuple) error {
	return h.InsertBatch([]storage.Tuple{t})
}

// InsertBatch adds a batch of build tuples under one lock round-trip.
// Column validation happens before the lock so the table never holds a
// partial batch on error. Parallel build slaves should prefer a private
// Builder, which takes no lock per batch at all.
func (h *HashTable) InsertBatch(ts []storage.Tuple) error {
	for i := range ts {
		if h.Col >= len(ts[i].Vals) {
			return fmt.Errorf("exec: hash column %d out of range", h.Col)
		}
	}
	if len(ts) == 0 {
		return nil
	}
	shift := h.partShift
	h.mu.Lock()
	if h.direct == nil {
		h.mu.Unlock()
		return fmt.Errorf("exec: insert into sealed hash table")
	}
	for i := range ts {
		hv := hashKey(ts[i].Vals[h.Col].Int)
		c := &h.direct[hv>>shift]
		c.ts = append(c.ts, ts[i])
		c.hvs = append(c.hvs, hv)
	}
	h.n += len(ts)
	h.mu.Unlock()
	return nil
}

// Len returns the number of inserted tuples.
func (h *HashTable) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Builder is one build slave's private view of the table: batches hash
// into per-partition buffers with no locking; Flush hands the buffers
// to the shared table in one lock round-trip.
type Builder struct {
	ht    *HashTable
	parts []buildChunk
	n     int
}

// Builder creates a private builder for one build slave.
func (h *HashTable) Builder() *Builder {
	return &Builder{ht: h, parts: make([]buildChunk, h.nparts())}
}

// Reserve sizes the builder's partition buffers for about n more
// tuples, spread evenly. Callers with a cardinality estimate (the
// planner's, or a benchmark's exact count) use it to skip the
// doubling-growth copies on the build path; correctness never depends
// on it.
func (b *Builder) Reserve(n int) {
	per := n/len(b.parts) + n/(4*len(b.parts)) + 8
	for p := range b.parts {
		c := &b.parts[p]
		if cap(c.ts)-len(c.ts) < per {
			ts := make([]storage.Tuple, len(c.ts), len(c.ts)+per)
			copy(ts, c.ts)
			c.ts = ts
			hvs := make([]uint32, len(c.hvs), len(c.hvs)+per)
			copy(hvs, c.hvs)
			c.hvs = hvs
		}
	}
}

// InsertBatch partitions one batch into the builder's private buffers,
// caching each tuple's hash so sealing never recomputes it.
func (b *Builder) InsertBatch(ts []storage.Tuple) error {
	col := b.ht.Col
	shift := b.ht.partShift
	parts := b.parts
	for i := range ts {
		if col >= len(ts[i].Vals) {
			return fmt.Errorf("exec: hash column %d out of range", col)
		}
		hv := hashKey(ts[i].Vals[col].Int)
		c := &parts[hv>>shift]
		c.ts = append(c.ts, ts[i])
		c.hvs = append(c.hvs, hv)
	}
	b.n += len(ts)
	return nil
}

// Flush publishes the builder's buffers to the shared table. The
// builder is empty afterwards and may be reused. Flushing after Seal is
// an executor-ordering bug (slaves flush at exit, sealing happens when
// the last slave completes the fragment) and panics loudly.
func (b *Builder) Flush() {
	if b.n == 0 {
		return
	}
	h := b.ht
	h.mu.Lock()
	if h.chunks == nil {
		h.mu.Unlock()
		panic("exec: hash-table builder flushed after seal")
	}
	for p := range b.parts {
		if len(b.parts[p].ts) > 0 {
			h.chunks[p] = append(h.chunks[p], b.parts[p])
		}
	}
	h.n += b.n
	h.mu.Unlock()
	b.parts = make([]buildChunk, h.nparts())
	b.n = 0
}

// Seal builds the per-partition probe indexes. It is idempotent and
// must complete before the first Probe; the executor calls it when the
// building fragment finalizes (whose completion is published through
// the master's mailbox, ordering every insert before any probe).
func (h *HashTable) Seal() {
	h.sealOnce.Do(h.seal)
}

func (h *HashTable) seal() {
	h.mu.Lock()
	// Fold the direct-insert buffers in as final chunks.
	for p := range h.direct {
		if len(h.direct[p].ts) > 0 {
			h.chunks[p] = append(h.chunks[p], h.direct[p])
		}
	}
	chunks := h.chunks
	h.chunks = nil
	h.direct = nil
	h.mu.Unlock()

	h.parts = make([]hashPart, len(chunks))
	procs := h.sealProcs
	if g := runtime.GOMAXPROCS(0); procs > g {
		procs = g
	}
	if procs <= 1 || len(chunks) == 1 {
		for p := range chunks {
			h.parts[p] = sealPartition(chunks[p])
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, len(chunks))
	for p := range chunks {
		next <- p
	}
	close(next)
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range next {
				h.parts[p] = sealPartition(chunks[p])
			}
		}()
	}
	wg.Wait()
}

// sealPartition builds one partition's open-addressed index from its
// flushed chunks. Per-key tuple order is chunk order (the order
// builders flushed), so probe results are deterministic under the
// virtual clock. Tuple values are never read: the cached hashes carry
// both the slot and, being bijective, key identity.
func sealPartition(chunks []buildChunk) hashPart {
	total := 0
	for _, c := range chunks {
		total += len(c.ts)
	}
	if total == 0 {
		return hashPart{}
	}
	if total > maxPartTuples {
		panic(fmt.Sprintf("exec: hash partition holds %d tuples, limit %d — raise the partition count", total, maxPartTuples))
	}
	// capacity > total always holds (ceilPow2(3n/2) > n), so every
	// linear-probe window ends at an empty slot. With packed 8-byte
	// slots a probe cluster spans a cache line, so the shorter chains a
	// sparser table would buy cost more in footprint than they save in
	// compares.
	capacity := ceilPow2(total + total/2)
	if capacity < 4 {
		capacity = 4
	}
	part := hashPart{
		slots: make([]uint64, capacity),
	}
	slots := part.slots
	mask := capacity - 1
	// Pass 1: count key multiplicities into the slot counts (saturating
	// at heavyMark, which already means "heavy"), memoizing each tuple's
	// slot so pass 2 never probes again. ^0 marks the zero-hash key,
	// which cannot live in the slot array (hash 0 is the empty marker)
	// and gets its own group instead.
	slotOf := make([]uint32, total)
	zeroCount := int32(0)
	j := 0
	for _, c := range chunks {
		for _, hv := range c.hvs {
			if hv == 0 {
				zeroCount++
				slotOf[j] = ^uint32(0)
				j++
				continue
			}
			i := int(hv) & mask
			for {
				s := slots[i]
				if uint32(s>>slotHashShift) == hv {
					if s&slotCountMask < heavyMark {
						slots[i] = s + 1
					}
					break
				}
				if s == 0 {
					slots[i] = uint64(hv)<<slotHashShift | 1
					break
				}
				i = (i + 1) & mask
			}
			slotOf[j] = uint32(i)
			j++
		}
	}
	// Carve heavy hitters out and prefix-sum the rest into flat offsets
	// (packed into the slots' start fields).
	light := uint64(0)
	for i := range slots {
		s := slots[i]
		if s == 0 {
			continue
		}
		cnt := s & slotCountMask
		if cnt == heavyMark {
			part.heavy = append(part.heavy, heavyGroup{hv: uint32(s >> slotHashShift)})
			slots[i] = s&^(uint64(maxPartTuples)<<slotCountBits) | uint64(len(part.heavy)-1)<<slotCountBits
			continue
		}
		slots[i] = s | light<<slotCountBits
		light += cnt
	}
	// The zero-hash group (at most one key) sits after the light groups.
	part.zeroStart = int32(light)
	part.zeroCount = zeroCount
	part.tuples = make([]storage.Tuple, int32(light)+zeroCount)
	// Pass 2: scatter tuples in chunk order. The start field is advanced
	// as the group fills and restored afterwards, so no side array is
	// needed.
	zs := part.zeroStart
	j = 0
	for _, c := range chunks {
		for i := range c.ts {
			si := slotOf[j]
			j++
			if si == ^uint32(0) {
				part.tuples[zs] = c.ts[i]
				zs++
				continue
			}
			s := slots[si]
			if s&slotCountMask == heavyMark {
				g := &part.heavy[s>>slotCountBits&maxPartTuples]
				g.tuples = append(g.tuples, c.ts[i])
				continue
			}
			part.tuples[s>>slotCountBits&maxPartTuples] = c.ts[i]
			slots[si] = s + 1<<slotCountBits
		}
	}
	for i := range slots {
		s := slots[i]
		if cnt := s & slotCountMask; s != 0 && cnt != heavyMark {
			slots[i] = s - cnt<<slotCountBits
		}
	}
	return part
}

// lookup returns the build tuples whose key hashes to hv in a sealed
// partition. Hit or miss, group offset and group length all decode from
// a single slot load.
func (p *hashPart) lookup(hv uint32) []storage.Tuple {
	if hv == 0 {
		if p.zeroCount == 0 {
			return nil
		}
		return p.tuples[p.zeroStart : p.zeroStart+p.zeroCount : p.zeroStart+p.zeroCount]
	}
	slots := p.slots
	if len(slots) == 0 {
		return nil
	}
	mask := len(slots) - 1
	for i := int(hv) & mask; ; i = (i + 1) & mask {
		s := slots[i]
		if uint32(s>>slotHashShift) == hv {
			cnt := s & slotCountMask
			if cnt != heavyMark {
				start := s >> slotCountBits & maxPartTuples
				return p.tuples[start : start+cnt : start+cnt]
			}
			return p.heavy[s>>slotCountBits&maxPartTuples].tuples
		}
		if s == 0 {
			return nil
		}
	}
}

// ProbeTupleBatch resolves one probe batch straight from the tuples:
// key extraction, hashing and the slot walk run fused in one pass, with
// no intermediate key array. One match slice per tuple is appended to
// out (nil for misses) and the extended slice returned. This is the
// variant the compiled pipeline consumes; ProbeBatch serves callers
// that already hold a key column.
func (h *HashTable) ProbeTupleBatch(ts []storage.Tuple, col int, out [][]storage.Tuple) ([][]storage.Tuple, error) {
	h.sealOnce.Do(h.seal)
	parts := h.parts
	shift := h.partShift
	for i := range ts {
		if col < 0 || col >= len(ts[i].Vals) {
			return out, fmt.Errorf("exec: probe column %d out of range (tuple has %d)", col, len(ts[i].Vals))
		}
		hv := hashKey(ts[i].Vals[col].Int)
		p := &parts[hv>>shift]
		var ms []storage.Tuple
		if hv == 0 {
			if p.zeroCount > 0 {
				ms = p.tuples[p.zeroStart : p.zeroStart+p.zeroCount : p.zeroStart+p.zeroCount]
			}
		} else if slots := p.slots; len(slots) > 0 {
			mask := len(slots) - 1
			for j := int(hv) & mask; ; j = (j + 1) & mask {
				s := slots[j]
				if uint32(s>>slotHashShift) == hv {
					cnt := s & slotCountMask
					if cnt != heavyMark {
						start := s >> slotCountBits & maxPartTuples
						ms = p.tuples[start : start+cnt : start+cnt]
					} else {
						ms = p.heavy[s>>slotCountBits&maxPartTuples].tuples
					}
					break
				}
				if s == 0 {
					break
				}
			}
		}
		out = append(out, ms)
	}
	return out, nil
}

// Probe returns the build tuples matching key. It takes no lock: probes
// only run after the building fragment completed (and sealed), and that
// completion is published through the master's mailbox, which orders
// every insert before any probe.
func (h *HashTable) Probe(key int32) []storage.Tuple {
	h.sealOnce.Do(h.seal)
	hv := hashKey(key)
	return h.parts[hv>>h.partShift].lookup(hv)
}

// ProbeBatch resolves a whole batch of probe keys, appending one match
// slice per key to out (nil for keys with no match) and returning the
// extended slice. The per-key slices alias the table's sealed storage;
// they stay valid for the table's lifetime. Hoisting the seal check and
// the hash computation out of the per-key loop is what the compiled
// pipeline's probe fast path consumes.
func (h *HashTable) ProbeBatch(keys []int32, out [][]storage.Tuple) [][]storage.Tuple {
	h.sealOnce.Do(h.seal)
	parts := h.parts
	shift := h.partShift
	// The slot walk is lookup() spelled out inline: a per-key call into
	// a loopy function cannot be inlined by the compiler, and at batch
	// sizes the call overhead alone is measurable.
	for _, k := range keys {
		hv := hashKey(k)
		p := &parts[hv>>shift]
		var ms []storage.Tuple
		if hv == 0 {
			if p.zeroCount > 0 {
				ms = p.tuples[p.zeroStart : p.zeroStart+p.zeroCount : p.zeroStart+p.zeroCount]
			}
		} else if slots := p.slots; len(slots) > 0 {
			mask := len(slots) - 1
			for i := int(hv) & mask; ; i = (i + 1) & mask {
				s := slots[i]
				if uint32(s>>slotHashShift) == hv {
					cnt := s & slotCountMask
					if cnt != heavyMark {
						start := s >> slotCountBits & maxPartTuples
						ms = p.tuples[start : start+cnt : start+cnt]
					} else {
						ms = p.heavy[s>>slotCountBits&maxPartTuples].tuples
					}
					break
				}
				if s == 0 {
					break
				}
			}
		}
		out = append(out, ms)
	}
	return out
}
