package exec

import (
	"testing"
	"testing/quick"

	"xprs/internal/plan"
	"xprs/internal/storage"
)

// Property: Temp.CountRange after Finalize(col) agrees with a brute-force
// count for arbitrary values and ranges.
func TestPropertyTempCountRange(t *testing.T) {
	f := func(vals []int32, lo, hi int32) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		temp := NewTemp(storage.NewSchema(storage.Column{Name: "a", Typ: storage.Int4}))
		batch := make([]storage.Tuple, len(vals))
		for i, v := range vals {
			batch[i] = storage.NewTuple(storage.IntVal(v))
		}
		temp.Append(batch)
		temp.Finalize(0)
		want := 0
		for _, v := range vals {
			if v >= lo && v <= hi {
				want++
			}
		}
		return temp.CountRange(0, lo, hi) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: chunking covers every tuple exactly once.
func TestPropertyTempChunksPartition(t *testing.T) {
	f := func(n uint16) bool {
		count := int(n % 1000)
		temp := NewTemp(storage.NewSchema(storage.Column{Name: "a", Typ: storage.Int4}))
		batch := make([]storage.Tuple, count)
		for i := range batch {
			batch[i] = storage.NewTuple(storage.IntVal(int32(i)))
		}
		temp.Append(batch)
		seen := 0
		for c := int64(0); c < temp.NumChunks(); c++ {
			for _, tp := range temp.Chunk(c) {
				if tp.Vals[0].Int != int32(seen) {
					return false
				}
				seen++
			}
		}
		return seen == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: two-phase aggregation (arbitrary partitioning into slave
// partials, then merge) equals single-pass aggregation.
func TestPropertyAggMergeEquivalence(t *testing.T) {
	f := func(keys []uint8, split uint8) bool {
		st := newAggStateForTest()
		// Single-pass reference.
		ref := map[int32][]int64{}
		for _, k := range keys {
			key := int32(k % 7)
			acc, ok := ref[key]
			if !ok {
				acc = initAccum(st.funcs)
				ref[key] = acc
			}
			fold(acc, st.funcs, storage.NewTuple(storage.IntVal(key)))
		}
		// Two-phase: split the stream at an arbitrary point into two
		// partials, merge both.
		cut := 0
		if len(keys) > 0 {
			cut = int(split) % (len(keys) + 1)
		}
		for _, part := range [][]uint8{keys[:cut], keys[cut:]} {
			partial := map[int32][]int64{}
			for _, k := range part {
				key := int32(k % 7)
				acc, ok := partial[key]
				if !ok {
					acc = initAccum(st.funcs)
					partial[key] = acc
				}
				fold(acc, st.funcs, storage.NewTuple(storage.IntVal(key)))
			}
			st.mergeInto(partial)
		}
		if len(st.groups) != len(ref) {
			return false
		}
		for k, want := range ref {
			got := st.groups[k]
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func newAggStateForTest() *aggState {
	return &aggState{
		groupCol: 0,
		funcs: []plan.AggFunc{
			{Kind: plan.CountAll},
			{Kind: plan.Sum, Col: 0},
			{Kind: plan.Min, Col: 0},
			{Kind: plan.Max, Col: 0},
		},
		groups: map[int32][]int64{},
	}
}
