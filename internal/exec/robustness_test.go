package exec

import (
	"strings"
	"testing"
	"time"

	"xprs/internal/btree"
	"xprs/internal/core"
	"xprs/internal/cost"
	"xprs/internal/diskmodel"
	"xprs/internal/plan"
	"xprs/internal/storage"
	"xprs/internal/vclock"
)

// TestSlaveErrorPropagates poisons an index with a TID pointing past the
// relation and checks the failure surfaces as a Run error instead of a
// hang or panic.
func TestSlaveErrorPropagates(t *testing.T) {
	v, eng := testEngine(0)
	rel := buildRel(t, eng.Store, "r", 200, 200, 24)
	ix, err := btree.BuildIndex("r_a", rel, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Poison: a key whose TID points beyond the heap.
	ix.Tree.Insert(500, storage.TID{Page: 9999, Slot: 0})
	root := &plan.IndexScan{Rel: rel, Index: ix, Lo: 0, Hi: 1000}
	specs, _ := specFor(t, eng, root, 0)
	var runErr error
	v.Run(func() {
		_, runErr = eng.Run(specs, core.InterAdj, core.Options{})
	})
	if runErr == nil {
		t.Fatal("poisoned index did not fail the run")
	}
	if !strings.Contains(runErr.Error(), "task 0 failed") {
		t.Fatalf("error = %v", runErr)
	}
}

// TestHashProbeBeforeBuildFails exercises the engine guard against a
// mis-specified dependency graph: a probe fragment whose build
// dependency is omitted must fail cleanly when it finds no hash table.
func TestHashProbeBeforeBuildFails(t *testing.T) {
	v, eng := testEngine(0)
	r1 := buildRel(t, eng.Store, "r1", 100, 100, 24)
	r2 := buildRel(t, eng.Store, "r2", 100, 100, 24)
	root := &plan.HashJoin{Left: &plan.SeqScan{Rel: r1}, Right: &plan.SeqScan{Rel: r2}, LCol: 0, RCol: 0}
	specs, _ := specFor(t, eng, root, 0)
	// Drop the dependency edge so the probe can start first.
	for i := range specs {
		specs[i].DependsOn = nil
	}
	var runErr error
	v.Run(func() {
		_, runErr = eng.Run(specs, core.IntraOnly, core.Options{})
	})
	// Either order may be chosen; when the probe runs first it must
	// error out rather than compute garbage. (IntraOnly runs tasks in
	// submission order, so the build — lower ID — actually goes first;
	// force the probe first by reversing IDs.)
	if runErr == nil {
		specs[0].Task.ID, specs[1].Task.ID = 7, 3 // probe (root) gets the lower ID
		v2 := vclock.NewVirtual()
		disks := diskmodel.New(v2, diskmodel.DefaultConfig())
		store := storage.NewStore(v2, disks, 0)
		_ = store
		v.Run(func() {
			_, runErr = eng.Run(specs, core.IntraOnly, core.Options{})
		})
		if runErr == nil {
			t.Fatal("probe-before-build did not fail")
		}
	}
}

// TestEngineOnRealClock runs a small task set on the wall clock (scaled
// 10000x) to verify the engine is clock-agnostic: the identical code
// path the virtual-time experiments use also executes in real time.
func TestEngineOnRealClock(t *testing.T) {
	clock := vclock.NewReal(100000)
	disks := diskmodel.New(clock, diskmodel.DefaultConfig())
	store := storage.NewStore(clock, disks, 0)
	eng := New(clock, store, cost.DefaultParams(diskmodel.DefaultConfig(), 8))

	b := storage.NewBuilder(store.NextID(), "r", storage.NewSchema(
		storage.Column{Name: "a", Typ: storage.Int4},
		storage.Column{Name: "b", Typ: storage.Text},
	))
	for i := 0; i < 500; i++ {
		if err := b.Append(storage.NewTuple(storage.IntVal(int32(i)), storage.TextVal("real-clock-row"))); err != nil {
			t.Fatal(err)
		}
	}
	rel := b.Finalize()
	if err := store.Add(rel); err != nil {
		t.Fatal(err)
	}
	g, err := plan.Decompose(&plan.SeqScan{Rel: rel})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := cost.EstimateGraph(eng.Params, g)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := QueryTasks(g, ests, 0)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := eng.Run(specs, core.InterAdj, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Len() != 500 {
		t.Fatalf("rows = %d", rep.Results[0].Len())
	}
	if wall := time.Since(start); wall > 30*time.Second {
		t.Fatalf("real-clock run took %v", wall)
	}
}
