package exec

// Unit tests of the admission-policy plumbing — the per-tenant wait
// deque, the policy registry — and the microbenchmark behind the
// fair-share scan rewrite: firstEligibleWaiter's per-tenant O(1) quota
// skip against the historical flat O(queue) rescan, at 1000 tenants.

import (
	"fmt"
	"testing"
	"time"
)

func TestWaitQ(t *testing.T) {
	var w waitQ
	qs := make([]*query, 100)
	for i := range qs {
		qs[i] = &query{id: i}
		w.push(qs[i])
	}
	if w.len() != 100 {
		t.Fatalf("len %d", w.len())
	}
	// Head pops advance the offset without copying.
	for i := 0; i < 40; i++ {
		if got := w.removeAt(0); got != qs[i] {
			t.Fatalf("head pop %d: got id %d", i, got.id)
		}
	}
	if w.len() != 60 || w.at(0) != qs[40] {
		t.Fatalf("after head pops: len %d head %d", w.len(), w.at(0).id)
	}
	// Middle removal splices.
	if got := w.removeAt(5); got != qs[45] {
		t.Fatalf("middle removal: got id %d", got.id)
	}
	if w.len() != 59 || w.at(5) != qs[46] || w.at(4) != qs[44] {
		t.Fatalf("after middle removal: len %d", w.len())
	}
	// Draining to empty resets the offset so capacity is reused.
	for w.len() > 0 {
		w.removeAt(0)
	}
	if w.head != 0 || len(w.items) != 0 {
		t.Fatalf("empty deque kept offset: head=%d len=%d", w.head, len(w.items))
	}
	// The head offset compacts once it dominates the backing slice, so
	// a long-lived deque cannot leak popped slots.
	for i := 0; i < 100; i++ {
		w.push(qs[i])
	}
	for i := 0; i < 70; i++ {
		w.removeAt(0)
	}
	if w.head > 32 && w.head*2 >= len(w.items) {
		t.Fatalf("deque failed to compact: head=%d backing=%d", w.head, len(w.items))
	}
	if w.len() != 30 || w.at(0) != qs[70] {
		t.Fatalf("compaction lost entries: len=%d head id %d", w.len(), w.at(0).id)
	}
}

func TestAdmissionPolicyByName(t *testing.T) {
	cases := []struct {
		name  string
		aging time.Duration
		want  string
	}{
		{"", 0, "fifo"},
		{"fifo", 0, "fifo"},
		{"pred-sjf", 0, "pred-sjf"},
		{"deadline", 0, "deadline"},
		{"pred-sjf", time.Second, "pred-sjf+aging"},
		{"fifo", time.Minute, "fifo+aging"},
	}
	for _, c := range cases {
		pol, err := AdmissionPolicyByName(c.name, c.aging)
		if err != nil {
			t.Fatalf("%q: %v", c.name, err)
		}
		if pol.Name() != c.want {
			t.Fatalf("%q: Name() = %q, want %q", c.name, pol.Name(), c.want)
		}
	}
	if _, err := AdmissionPolicyByName("lifo", 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// benchAdmissionState builds master-side admission state directly: the
// worst case for the historical flat rescan, where every tenant but the
// last sits at its quota with a deep backlog, so the old scan walks
// (tenants-1) × perTenant ineligible waiters (each a map lookup) before
// finding the one eligible query, while the per-tenant structure skips
// each quota-bound tenant in O(1).
func benchAdmissionState(nTenants, perTenant int) *Scheduler {
	s := &Scheduler{
		adm:       AdmissionConfig{TenantMaxQueries: 1},
		tenants:   make(map[string]*tenantState, nTenants),
		nAdmitted: 1,
	}
	id := 0
	for t := 0; t < nTenants; t++ {
		name := fmt.Sprintf("t%04d", t)
		ts := &tenantState{name: name, waitIdx: t, admitted: 1}
		if t == nTenants-1 {
			ts.admitted = 0
		}
		for k := 0; k < perTenant; k++ {
			ts.waitq.push(&query{id: id, tenant: name})
			id++
		}
		s.tenants[name] = ts
		s.waitTenants = append(s.waitTenants, ts)
		s.nWaiting += perTenant
	}
	return s
}

// flatFirstEligible reimplements the pre-refactor fair-share scan: one
// flat admission queue in intake order, a per-query tenant map lookup
// to test the quota. Kept here as the benchmark baseline only.
func flatFirstEligible(s *Scheduler, flat []*query) *query {
	for _, q := range flat {
		if s.nAdmitted > 0 && s.adm.TenantMaxQueries > 0 {
			if ts := s.tenants[q.tenant]; ts != nil && ts.admitted >= s.adm.TenantMaxQueries {
				continue
			}
		}
		if s.admits(q) {
			return q
		}
	}
	return nil
}

// BenchmarkFirstEligibleWaiter1kTenants measures one fair-share pick at
// 1000 tenants × 8 waiters with 999 tenants quota-blocked.
func BenchmarkFirstEligibleWaiter1kTenants(b *testing.B) {
	s := benchAdmissionState(1000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts, bi := s.firstEligibleWaiter()
		if ts == nil || ts.waitq.at(bi).tenant != "t0999" {
			b.Fatal("wrong pick")
		}
	}
}

// BenchmarkFlatAdmissionScan1kTenants is the historical O(queue)
// baseline over the identical state, for the speedup ratio.
func BenchmarkFlatAdmissionScan1kTenants(b *testing.B) {
	s := benchAdmissionState(1000, 8)
	flat := make([]*query, 0, s.nWaiting)
	for _, ts := range s.waitTenants {
		for i := 0; i < ts.waitq.len(); i++ {
			flat = append(flat, ts.waitq.at(i))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := flatFirstEligible(s, flat)
		if q == nil || q.tenant != "t0999" {
			b.Fatal("wrong pick")
		}
	}
}
