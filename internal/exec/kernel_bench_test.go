package exec

import (
	"fmt"
	"testing"

	"xprs/internal/expr"
	"xprs/internal/plan"
	"xprs/internal/storage"
)

// Wall-clock microbenchmarks for the executor kernels, on the pipeline
// benchmark's data shape (5 000-row build side, 30 000-row probe side,
// keys i mod 9 000). `xprsbench -fig join` measures the same kernels
// against replicas of their predecessors; these benchmarks track the
// kernels alone so `go test -bench` catches regressions in isolation.

const (
	benchBuildRows = 5000
	benchProbeRows = 30000
	benchKeyMod    = 9000
	benchBatch     = 1024
)

func benchSchema() storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "a", Typ: storage.Int4},
		storage.Column{Name: "b", Typ: storage.Text},
	)
}

func benchRows(n int, tag string) []storage.Tuple {
	ts := make([]storage.Tuple, n)
	for i := range ts {
		ts[i] = storage.NewTuple(
			storage.IntVal(int32(i)%benchKeyMod),
			storage.TextVal(fmt.Sprintf("%s-%05d", tag, i)),
		)
	}
	return ts
}

// BenchmarkHashTableBuildProbe is the full join-kernel cycle: batched
// inserts through a private builder, seal, then fused batch probes.
func BenchmarkHashTableBuildProbe(b *testing.B) {
	schema := benchSchema()
	build := benchRows(benchBuildRows, "build")
	probe := benchRows(benchProbeRows, "probe")
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for b.Loop() {
		ht := NewHashTableP(schema, 0, DefaultHashPartitions, 1)
		hb := ht.Builder()
		hb.Reserve(len(build))
		for lo := 0; lo < len(build); lo += benchBatch {
			hi := min(lo+benchBatch, len(build))
			if err := hb.InsertBatch(build[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
		hb.Flush()
		ht.Seal()
		matches := make([][]storage.Tuple, 0, benchBatch)
		for lo := 0; lo < len(probe); lo += benchBatch {
			hi := min(lo+benchBatch, len(probe))
			var err error
			matches, err = ht.ProbeTupleBatch(probe[lo:hi], 0, matches[:0])
			if err != nil {
				b.Fatal(err)
			}
			for _, ms := range matches {
				sink += int64(len(ms))
			}
		}
	}
	_ = sink
}

// BenchmarkHashTableProbeBatch isolates the probe side on a sealed
// table, through the two-step key-extraction API (expr.Int4Keys feeding
// HashTable.ProbeBatch).
func BenchmarkHashTableProbeBatch(b *testing.B) {
	schema := benchSchema()
	build := benchRows(benchBuildRows, "build")
	probe := benchRows(benchProbeRows, "probe")
	ht := NewHashTableP(schema, 0, DefaultHashPartitions, 1)
	hb := ht.Builder()
	hb.Reserve(len(build))
	if err := hb.InsertBatch(build); err != nil {
		b.Fatal(err)
	}
	hb.Flush()
	ht.Seal()
	keys := make([]int32, 0, benchBatch)
	matches := make([][]storage.Tuple, 0, benchBatch)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for b.Loop() {
		for lo := 0; lo < len(probe); lo += benchBatch {
			hi := min(lo+benchBatch, len(probe))
			var err error
			keys, err = expr.Int4Keys(probe[lo:hi], 0, keys[:0])
			if err != nil {
				b.Fatal(err)
			}
			matches = ht.ProbeBatch(keys, matches[:0])
			for _, ms := range matches {
				sink += int64(len(ms))
			}
		}
	}
	_ = sink
}

// BenchmarkTempFinalize measures the parallel merge sort behind
// Temp.Finalize, fed with executor-sized append runs.
func BenchmarkTempFinalize(b *testing.B) {
	schema := benchSchema()
	rows := benchRows(benchProbeRows, "sort")
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		temp := NewTemp(schema)
		temp.SetSortProcs(1)
		for lo := 0; lo < len(rows); lo += benchBatch {
			hi := min(lo+benchBatch, len(rows))
			temp.Append(rows[lo:hi])
		}
		temp.Finalize(0)
	}
}

// BenchmarkAggEmit measures final-row emission from a populated
// aggregation state (one group per distinct key, count+sum+min+max).
func BenchmarkAggEmit(b *testing.B) {
	a := &plan.Agg{GroupCol: 0, Funcs: []plan.AggFunc{
		{Kind: plan.CountAll},
		{Kind: plan.Sum, Col: 0},
		{Kind: plan.Min, Col: 0},
		{Kind: plan.Max, Col: 0},
	}}
	st := newAggState(a)
	partial := make(map[int32][]int64, benchKeyMod)
	for i := 0; i < benchProbeRows; i++ {
		k := int32(i) % benchKeyMod
		acc, ok := partial[k]
		if !ok {
			acc = initAccum(a.Funcs)
			partial[k] = acc
		}
		fold(acc, a.Funcs, storage.NewTuple(storage.IntVal(k)))
	}
	st.mergeInto(partial)
	outSchema := storage.NewSchema(
		storage.Column{Name: "k", Typ: storage.Int4},
		storage.Column{Name: "count", Typ: storage.Int4},
		storage.Column{Name: "sum", Typ: storage.Int4},
		storage.Column{Name: "min", Typ: storage.Int4},
		storage.Column{Name: "max", Typ: storage.Int4},
	)
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		out := NewTemp(outSchema)
		if n := st.emit(out); n != benchKeyMod {
			b.Fatalf("emitted %d groups, want %d", n, benchKeyMod)
		}
	}
}
