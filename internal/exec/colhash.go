package exec

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"xprs/internal/storage"
)

// ColHashTable is the columnar twin of HashTable: the same
// radix-partitioned, open-addressed design (identical hash function,
// packed slot layout, heavy-hitter fallback and zero-hash group), but
// the build tuples of each partition live in one flat columnar batch
// grouped by key instead of a []Tuple slice. A probe therefore resolves
// to a (store, start, count) row range, and the join emits by gathering
// column values — no tuple structs, no Vals slices, no per-match
// allocation anywhere.
//
// The flat store is laid out light groups first, then the zero-hash
// group, then the heavy groups — all ranges in the same batch, so the
// probe path is uniform. Sealing computes each input row's destination
// index first (the same two-pass counting scheme sealPartition uses),
// inverts the permutation, and then gathers rows in destination order:
// text columns append sequentially into the store's shared buffer, which
// a scatter could not do.
//
// Per-key row order is chunk order (the order builders flushed), exactly
// like the row table, so switching layouts never reorders join output.

// colChunk is one flushed columnar build buffer: a dense batch plus the
// cached hash of each row's key, index-aligned. The hash slice is boxed
// so it can round-trip through the engine's pool without re-allocating
// its header.
type colChunk struct {
	cb  *storage.ColBatch
	hvs *[]uint32
}

// sealScratch is the transient state of one partition seal, recycled
// through the engine pool: slot memos, the destination permutation and
// its inverse, heavy-group cursors and chunk base offsets.
type sealScratch struct {
	slotOf    []uint32
	perm      []int32
	invDst    []int32
	heavyNext []int32
	bases     []int32
}

// growU32 and growI32 resize pooled scratch to exactly n entries
// without zeroing (callers overwrite every entry they read).
func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// colGroup is the sealed home of one heavy-hitter or zero-hash key: a
// row range of the partition's flat store.
type colGroup struct {
	hv    uint32
	start int32
	count int32
}

// colPart is one sealed partition.
type colPart struct {
	store *storage.ColBatch // flat, grouped by key; nil when empty
	slots []uint64          // packed hash(32)|start(24)|count(8), 0 = empty
	heavy []colGroup

	zeroStart int32
	zeroCount int32
}

// ColHashTable is the shared-memory columnar hash table a HashOut
// fragment builds and a columnar HashJoin probe consumes.
type ColHashTable struct {
	Schema storage.Schema
	Col    int

	eng       *Engine // batch recycling; nil allocates directly
	partShift uint
	sealProcs int

	mu sync.Mutex
	n  int
	// chunks holds the unsealed build input: per partition, the private
	// buffers flushed by exiting build slaves, in flush order. The
	// per-partition slices keep their capacity across queries (the table
	// itself recycles through the engine pool), so steady-state flushes
	// never grow them.
	chunks [][]colChunk
	sealed bool

	sealOnce sync.Once
	parts    []colPart
}

// NewColHashTable creates an empty columnar table keyed on the given
// column of the build schema. eng (optional) supplies batch recycling.
func NewColHashTable(eng *Engine, schema storage.Schema, col int, partitions, sealProcs int) *ColHashTable {
	if partitions < 1 {
		partitions = 1
	}
	p := ceilPow2(partitions)
	if sealProcs < 1 {
		sealProcs = 1
	}
	var h *ColHashTable
	if eng != nil {
		if v := eng.chtPool.Get(); v != nil {
			h = v.(*ColHashTable)
		}
	}
	if h == nil {
		h = &ColHashTable{}
	}
	h.Schema = schema
	h.Col = col
	h.eng = eng
	h.partShift = uint(32 - bits.Len32(uint32(p)-1))
	h.sealProcs = sealProcs
	h.n = 0
	h.sealed = false
	h.sealOnce = sync.Once{}
	if cap(h.chunks) < p {
		h.chunks = make([][]colChunk, p)
	} else {
		h.chunks = h.chunks[:p]
	}
	return h
}

// Len returns the number of inserted rows.
func (h *ColHashTable) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// ColBuilder is one build slave's private view of the table: batches
// partition into per-partition columnar buffers with no locking; Flush
// hands the buffers to the shared table in one lock round-trip.
type ColBuilder struct {
	ht    *ColHashTable
	parts []colChunk
	n     int
}

// Builder creates a private builder for one build slave.
func (h *ColHashTable) Builder() *ColBuilder {
	return h.builderIn(&ColBuilder{})
}

// builderIn initializes b as a private builder for this table, reusing
// its partition-buffer slice when capacity allows (the slave-context
// pool retains one builder per slave across tasks and queries).
func (h *ColHashTable) builderIn(b *ColBuilder) *ColBuilder {
	b.ht = h
	if cap(b.parts) < len(h.chunks) {
		b.parts = make([]colChunk, len(h.chunks))
	} else {
		b.parts = b.parts[:len(h.chunks)]
		clear(b.parts)
	}
	b.n = 0
	return b
}

// InsertBatch partitions the live rows of one batch into the builder's
// private buffers, caching each row's hash so sealing never recomputes
// it. The key column is validated once per batch.
func (b *ColBuilder) InsertBatch(cb *storage.ColBatch) error {
	col := b.ht.Col
	if cb.Live() == 0 {
		return nil
	}
	if col < 0 || col >= len(cb.Vecs) {
		return fmt.Errorf("exec: hash column %d out of range", col)
	}
	if cb.Vecs[col].Typ != storage.Int4 || cb.Vecs[col].Ints == nil {
		return fmt.Errorf("exec: hash column %d is not an int4 vector", col)
	}
	keys := cb.Vecs[col].Ints
	shift := b.ht.partShift
	live := cb.Live()
	for i := 0; i < live; i++ {
		row := cb.RowAt(i)
		hv := hashKey(keys[row])
		c := &b.parts[hv>>shift]
		if c.cb == nil {
			if b.ht.eng != nil {
				c.cb = b.ht.eng.getColBatch(b.ht.Schema, live)
				c.hvs = b.ht.eng.getHvs(live)
			} else {
				c.cb = storage.NewColBatch(b.ht.Schema, live)
				c.hvs = new([]uint32)
			}
		}
		c.cb.AppendRow(cb, row)
		*c.hvs = append(*c.hvs, hv)
	}
	b.n += live
	return nil
}

// Flush publishes the builder's buffers to the shared table. The builder
// is empty afterwards and may be reused. Flushing after Seal panics, as
// with the row builder: slaves flush at exit and sealing happens when
// the last slave completes the fragment.
func (b *ColBuilder) Flush() {
	if b.n == 0 {
		return
	}
	h := b.ht
	h.mu.Lock()
	if h.sealed {
		h.mu.Unlock()
		panic("exec: hash-table builder flushed after seal")
	}
	for p := range b.parts {
		if b.parts[p].cb != nil {
			h.chunks[p] = append(h.chunks[p], b.parts[p])
		}
	}
	h.n += b.n
	h.mu.Unlock()
	clear(b.parts)
	b.n = 0
}

// Seal builds the per-partition probe indexes. Idempotent; must complete
// before the first probe (the executor seals when the building fragment
// finalizes, and fragment completion orders every insert before any
// probe).
func (h *ColHashTable) Seal() {
	h.sealOnce.Do(h.seal)
}

func (h *ColHashTable) seal() {
	h.mu.Lock()
	chunks := h.chunks
	h.sealed = true
	h.mu.Unlock()

	if cap(h.parts) < len(chunks) {
		h.parts = make([]colPart, len(chunks))
	} else {
		h.parts = h.parts[:len(chunks)]
	}
	procs := h.sealProcs
	if g := runtime.GOMAXPROCS(0); procs > g {
		procs = g
	}
	if procs <= 1 || len(chunks) == 1 {
		for p := range chunks {
			h.parts[p] = h.sealColPartition(chunks[p])
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, len(chunks))
	for p := range chunks {
		next <- p
	}
	close(next)
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range next {
				h.parts[p] = h.sealColPartition(chunks[p])
			}
		}()
	}
	wg.Wait()
}

// sealColPartition builds one partition's index and flat columnar store
// from its flushed chunks. The counting pass and slot layout mirror
// sealPartition; the scatter pass is replaced by a permutation + inverse
// + destination-order gather, because text vectors only append.
func (h *ColHashTable) sealColPartition(chunks []colChunk) colPart {
	total := 0
	for _, c := range chunks {
		total += c.cb.N
	}
	if total == 0 {
		return colPart{}
	}
	if total > maxPartTuples {
		panic(fmt.Sprintf("exec: hash partition holds %d tuples, limit %d — raise the partition count", total, maxPartTuples))
	}
	capacity := ceilPow2(total + total/2)
	if capacity < 4 {
		capacity = 4
	}
	part := colPart{slots: make([]uint64, capacity)}
	slots := part.slots
	mask := capacity - 1
	// Transient seal state comes from the engine pool; the standalone
	// (engine-less) path allocates it locally.
	var scr *sealScratch
	if h.eng != nil {
		scr = h.eng.getSealScratch()
	} else {
		scr = &sealScratch{}
	}
	// Pass 1: count key multiplicities into the slot counts (saturating
	// at heavyMark), memoizing each row's slot. ^0 marks the zero-hash
	// key.
	scr.slotOf = growU32(scr.slotOf, total)
	slotOf := scr.slotOf
	zeroCount := int32(0)
	hasHeavy := false
	j := 0
	for _, c := range chunks {
		for _, hv := range *c.hvs {
			if hv == 0 {
				zeroCount++
				slotOf[j] = ^uint32(0)
				j++
				continue
			}
			i := int(hv) & mask
			for {
				s := slots[i]
				if uint32(s>>slotHashShift) == hv {
					if s&slotCountMask < heavyMark {
						slots[i] = s + 1
					} else {
						hasHeavy = true
					}
					break
				}
				if s == 0 {
					slots[i] = uint64(hv)<<slotHashShift | 1
					break
				}
				i = (i + 1) & mask
			}
			slotOf[j] = uint32(i)
			j++
		}
	}
	// Carve heavy hitters and prefix-sum the light groups into flat
	// offsets. Heavy groups need their true multiplicities (the saturated
	// count lost them), so a rare extra pass recounts them.
	light := uint64(0)
	for i := range slots {
		s := slots[i]
		if s == 0 {
			continue
		}
		cnt := s & slotCountMask
		if cnt == heavyMark {
			hasHeavy = true
			part.heavy = append(part.heavy, colGroup{hv: uint32(s >> slotHashShift)})
			slots[i] = s&^(uint64(maxPartTuples)<<slotCountBits) | uint64(len(part.heavy)-1)<<slotCountBits
			continue
		}
		slots[i] = s | light<<slotCountBits
		light += cnt
	}
	part.zeroStart = int32(light)
	part.zeroCount = zeroCount
	if hasHeavy {
		for j := range slotOf {
			si := slotOf[j]
			if si == ^uint32(0) {
				continue
			}
			if s := slots[si]; s&slotCountMask == heavyMark {
				part.heavy[s>>slotCountBits&maxPartTuples].count++
			}
		}
		hstart := part.zeroStart + zeroCount
		for g := range part.heavy {
			part.heavy[g].start = hstart
			hstart += part.heavy[g].count
		}
	}
	// Pass 2: compute each input row's destination (advancing the start
	// fields exactly like the row scatter), then invert.
	scr.perm = growI32(scr.perm, total)
	perm := scr.perm
	scr.heavyNext = growI32(scr.heavyNext, len(part.heavy))
	heavyNext := scr.heavyNext
	clear(heavyNext)
	zs := part.zeroStart
	j = 0
	for _, c := range chunks {
		for range *c.hvs {
			si := slotOf[j]
			if si == ^uint32(0) {
				perm[j] = zs
				zs++
				j++
				continue
			}
			s := slots[si]
			if s&slotCountMask == heavyMark {
				g := s >> slotCountBits & maxPartTuples
				perm[j] = part.heavy[g].start + heavyNext[g]
				heavyNext[g]++
				j++
				continue
			}
			perm[j] = int32(s >> slotCountBits & maxPartTuples)
			slots[si] = s + 1<<slotCountBits
			j++
		}
	}
	for i := range slots {
		s := slots[i]
		if cnt := s & slotCountMask; s != 0 && cnt != heavyMark {
			slots[i] = s - cnt<<slotCountBits
		}
	}
	// Gather in destination order so text buffers fill sequentially.
	scr.invDst = growI32(scr.invDst, total)
	invDst := scr.invDst
	for src, dst := range perm {
		invDst[dst] = int32(src)
	}
	if h.eng != nil {
		part.store = h.eng.getColBatch(h.Schema, total)
	} else {
		part.store = storage.NewColBatch(h.Schema, total)
	}
	// Map a global row index back to (chunk, row) with running bases;
	// chunk counts are tiny (one per flushing slave), so a linear walk
	// beats any index structure.
	scr.bases = growI32(scr.bases, len(chunks)+1)
	bases := scr.bases
	bases[0] = 0
	for i, c := range chunks {
		bases[i+1] = bases[i] + int32(c.cb.N)
	}
	for dst := 0; dst < total; dst++ {
		src := invDst[dst]
		ci := 0
		for int32(src) >= bases[ci+1] {
			ci++
		}
		part.store.AppendRow(chunks[ci].cb, int(src-bases[ci]))
	}
	// The chunk buffers are dead now; recycle them for future builds.
	if h.eng != nil {
		for _, c := range chunks {
			h.eng.putColBatch(c.cb)
			h.eng.putHvs(c.hvs)
		}
		h.eng.putSealScratch(scr)
	}
	return part
}

// ProbeKey resolves one probe key to its build rows: the partition's
// flat store plus a row range (count 0 on a miss). Lock-free; the table
// must be sealed.
func (h *ColHashTable) ProbeKey(key int32) (*storage.ColBatch, int32, int32) {
	hv := hashKey(key)
	p := &h.parts[hv>>h.partShift]
	if hv == 0 {
		return p.store, p.zeroStart, p.zeroCount
	}
	slots := p.slots
	if len(slots) == 0 {
		return nil, 0, 0
	}
	mask := len(slots) - 1
	for i := int(hv) & mask; ; i = (i + 1) & mask {
		s := slots[i]
		if uint32(s>>slotHashShift) == hv {
			cnt := s & slotCountMask
			if cnt != heavyMark {
				return p.store, int32(s >> slotCountBits & maxPartTuples), int32(cnt)
			}
			g := &p.heavy[s>>slotCountBits&maxPartTuples]
			return p.store, g.start, g.count
		}
		if s == 0 {
			return nil, 0, 0
		}
	}
}

// release returns the sealed stores to the engine pool and recycles the
// table itself (its per-partition chunk slices keep their capacity for
// the next build). Only the scheduler calls it, after the consuming
// query fully completed; nothing references the table afterwards.
func (h *ColHashTable) release() {
	if h.eng == nil {
		return
	}
	for i := range h.parts {
		if h.parts[i].store != nil {
			h.eng.putColBatch(h.parts[i].store)
		}
		h.parts[i] = colPart{}
	}
	for p := range h.chunks {
		clear(h.chunks[p])
		h.chunks[p] = h.chunks[p][:0]
	}
	h.eng.chtPool.Put(h)
}
