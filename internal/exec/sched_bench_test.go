package exec

// Microbenchmarks of the scheduler's Submit→admission fast path, on a
// real clock so the numbers are host time. Degenerate empty queries
// keep every op inside the intake machinery: shard push, doorbell,
// master drain-and-decide, settle. The windowed Wait (every 64 ops)
// bounds outstanding handles without rendezvousing each op — the
// master settles in intake order, so a settled recent handle means the
// older ones are settled too.

import (
	"os"
	"runtime"
	"testing"

	"xprs/internal/core"
	"xprs/internal/cost"
	"xprs/internal/diskmodel"
	"xprs/internal/obs"
	"xprs/internal/storage"
	"xprs/internal/vclock"
)

func benchScheduler(b *testing.B, shards int) *Scheduler {
	b.Helper()
	clk := vclock.NewReal(1)
	dcfg := diskmodel.DefaultConfig()
	st := storage.NewStore(clk, diskmodel.New(clk, dcfg), 0)
	eng := New(clk, st, cost.DefaultParams(dcfg, runtime.GOMAXPROCS(0)))
	sched := NewScheduler(eng, core.InterAdj, core.Options{}, AdmissionConfig{IntakeShards: shards})
	b.Cleanup(func() {
		if err := sched.Drain(); err != nil {
			b.Fatal(err)
		}
	})
	return sched
}

// submitLoop is the shared measurement body: n Submits with a windowed
// Wait, final Wait to drain the tail.
func submitLoop(b *testing.B, sched *Scheduler, n int) {
	var last *QueryHandle
	for i := 0; i < n; i++ {
		h, err := sched.Submit(nil)
		if err != nil {
			b.Error(err)
			return
		}
		last = h
		if i%64 == 63 {
			if _, err := last.Wait(); err != nil {
				b.Error(err)
				return
			}
		}
	}
	if last != nil {
		if _, err := last.Wait(); err != nil {
			b.Error(err)
		}
	}
}

// BenchmarkSchedulerSubmit is the serial fast path: one submitter, so
// ns/op is the full client+master round trip and allocs/op is the
// per-query allocation floor the allocation gate watches.
func BenchmarkSchedulerSubmit(b *testing.B) {
	sched := benchScheduler(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	submitLoop(b, sched, b.N)
}

// BenchmarkSchedulerSubmitParallel hammers Submit from every proc at
// once: the number that must scale with GOMAXPROCS, and the one the
// sharded-vs-serial ablation compares.
func BenchmarkSchedulerSubmitParallel(b *testing.B) {
	sched := benchScheduler(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var last *QueryHandle
		i := 0
		for pb.Next() {
			h, err := sched.Submit(nil)
			if err != nil {
				b.Error(err)
				return
			}
			last = h
			if i%64 == 63 {
				if _, err := last.Wait(); err != nil {
					b.Error(err)
					return
				}
			}
			i++
		}
		if last != nil {
			if _, err := last.Wait(); err != nil {
				b.Error(err)
			}
		}
	})
}

// intakeAllocBudget is the CI allocation gate for the Submit fast
// path. The steady state is 5 allocs/op — the report, its three maps,
// and the handle, all of which escape to the caller; the query
// bookkeeping itself recycles through a pool. The budget leaves a
// little headroom while catching any regression toward per-submit
// rebuilding of the bookkeeping maps (which alone would roughly double
// it).
const intakeAllocBudget = 8

// TestIntakeAllocGate enforces intakeAllocBudget. Skipped unless
// XPRS_ALLOC_GATE is set (CI runs it via `make servegate`) so ordinary
// `go test ./...` stays robust on noisy machines.
func TestIntakeAllocGate(t *testing.T) {
	if os.Getenv("XPRS_ALLOC_GATE") == "" {
		t.Skip("set XPRS_ALLOC_GATE=1 to run the allocation gate")
	}
	r := testing.Benchmark(BenchmarkSchedulerSubmit)
	t.Logf("intake: %d allocs/op, %d B/op, %d ns/op (budget %d allocs/op)",
		r.AllocsPerOp(), r.AllocedBytesPerOp(), r.NsPerOp(), intakeAllocBudget)
	if r.AllocsPerOp() > intakeAllocBudget {
		t.Fatalf("Submit fast path allocates %d allocs/op, budget is %d — an allocation regression crept into intake",
			r.AllocsPerOp(), intakeAllocBudget)
	}
}

// benchSchedulerObserved is benchScheduler with the observer attached
// the way the serving path runs it: a budget-bounded tracer, a metrics
// registry, and 1-in-16 head sampling. This is the "observation is
// free" price list — what turning telemetry on costs per Submit.
func benchSchedulerObserved(b *testing.B) *Scheduler {
	b.Helper()
	clk := vclock.NewReal(1)
	dcfg := diskmodel.DefaultConfig()
	st := storage.NewStore(clk, diskmodel.New(clk, dcfg), 0)
	eng := New(clk, st, cost.DefaultParams(dcfg, runtime.GOMAXPROCS(0)))
	eng.Trace = obs.NewTracerBudget(4096)
	eng.Metrics = obs.NewRegistry()
	sched := NewScheduler(eng, core.InterAdj, core.Options{}, AdmissionConfig{
		TraceSampleOneIn: 16,
		TraceSampleSeed:  1992,
	})
	b.Cleanup(func() {
		if err := sched.Drain(); err != nil {
			b.Fatal(err)
		}
	})
	return sched
}

// BenchmarkSchedulerSubmitObserved prices the same fast path with
// sampled tracing and metrics live — the observability overhead gate's
// benchmark.
func BenchmarkSchedulerSubmitObserved(b *testing.B) {
	sched := benchSchedulerObserved(b)
	b.ReportAllocs()
	b.ResetTimer()
	submitLoop(b, sched, b.N)
}

// obsAllocBudget is the CI allocation gate for the observed Submit fast
// path: the unobserved floor plus slack for the per-window telemetry
// aggregates (series windows, histogram buckets, metric interning) that
// amortize across submits. What it catches is per-submit span or label
// allocation sneaking into the hot path — that alone would blow the
// budget immediately.
const obsAllocBudget = intakeAllocBudget + 6

// TestObsAllocGate enforces obsAllocBudget. Skipped unless
// XPRS_ALLOC_GATE is set (CI runs it via `make obsgate`).
func TestObsAllocGate(t *testing.T) {
	if os.Getenv("XPRS_ALLOC_GATE") == "" {
		t.Skip("set XPRS_ALLOC_GATE=1 to run the allocation gate")
	}
	r := testing.Benchmark(BenchmarkSchedulerSubmitObserved)
	t.Logf("observed intake: %d allocs/op, %d B/op, %d ns/op (budget %d allocs/op)",
		r.AllocsPerOp(), r.AllocedBytesPerOp(), r.NsPerOp(), obsAllocBudget)
	if r.AllocsPerOp() > obsAllocBudget {
		t.Fatalf("observed Submit fast path allocates %d allocs/op, budget is %d — sampled tracing or telemetry started allocating per submit",
			r.AllocsPerOp(), obsAllocBudget)
	}
}

// BenchmarkSchedulerSubmitSerialIntake is the ablation partner of the
// parallel benchmark: identical load through a single intake shard.
func BenchmarkSchedulerSubmitSerialIntake(b *testing.B) {
	sched := benchScheduler(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var last *QueryHandle
		i := 0
		for pb.Next() {
			h, err := sched.Submit(nil)
			if err != nil {
				b.Error(err)
				return
			}
			last = h
			if i%64 == 63 {
				if _, err := last.Wait(); err != nil {
					b.Error(err)
					return
				}
			}
			i++
		}
		if last != nil {
			if _, err := last.Wait(); err != nil {
				b.Error(err)
			}
		}
	})
}
