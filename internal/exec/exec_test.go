package exec

import (
	"fmt"
	"slices"
	"strings"
	"testing"
	"time"

	"xprs/internal/btree"
	"xprs/internal/core"
	"xprs/internal/cost"
	"xprs/internal/diskmodel"
	"xprs/internal/expr"
	"xprs/internal/plan"
	"xprs/internal/storage"
	"xprs/internal/vclock"
)

// testEngine builds an engine on a fresh virtual clock with the paper's
// disk array and 8 processors.
func testEngine(poolPages int) (*vclock.Virtual, *Engine) {
	v := vclock.NewVirtual()
	disks := diskmodel.New(v, diskmodel.DefaultConfig())
	store := storage.NewStore(v, disks, poolPages)
	eng := New(v, store, cost.DefaultParams(diskmodel.DefaultConfig(), 8))
	return v, eng
}

// buildRel creates a physical relation r(a int4, b text) with n tuples,
// a = i mod distinct, b = padding of padLen bytes.
func buildRel(t *testing.T, st *storage.Store, name string, n int, distinct int32, padLen int) *storage.Relation {
	return buildRelWith(t, st, name, n, padLen, func(i int) int32 { return int32(i) % distinct })
}

// buildShuffledRel creates a relation whose a column is a permutation of
// 0..n-1 decorrelated from heap order (what a genuinely unclustered
// index sees). The stride is a prime co-prime to n.
func buildShuffledRel(t *testing.T, st *storage.Store, name string, n int, padLen int) *storage.Relation {
	return buildRelWith(t, st, name, n, padLen, func(i int) int32 {
		return int32((int64(i) * 733) % int64(n))
	})
}

func buildRelWith(t *testing.T, st *storage.Store, name string, n int, padLen int, key func(int) int32) *storage.Relation {
	t.Helper()
	b := storage.NewBuilder(st.NextID(), name, storage.NewSchema(
		storage.Column{Name: "a", Typ: storage.Int4},
		storage.Column{Name: "b", Typ: storage.Text},
	))
	pad := strings.Repeat("x", padLen)
	for i := 0; i < n; i++ {
		if err := b.Append(storage.NewTuple(storage.IntVal(key(i)), storage.TextVal(pad))); err != nil {
			t.Fatal(err)
		}
	}
	r := b.Finalize()
	if err := st.Add(r); err != nil {
		t.Fatal(err)
	}
	return r
}

// specFor wraps a single plan into estimated TaskSpecs.
func specFor(t *testing.T, eng *Engine, root plan.Node, baseID int) ([]TaskSpec, *plan.Graph) {
	t.Helper()
	g, err := plan.Decompose(root)
	if err != nil {
		t.Fatal(err)
	}
	ests, err := cost.EstimateGraph(eng.Params, g)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := QueryTasks(g, ests, baseID)
	if err != nil {
		t.Fatal(err)
	}
	return specs, g
}

// runOne executes specs and returns the report.
func runOne(t *testing.T, v *vclock.Virtual, eng *Engine, specs []TaskSpec, policy core.Policy) *Report {
	t.Helper()
	var rep *Report
	var err error
	v.Run(func() {
		rep, err = eng.Run(specs, policy, core.Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// expectInts asserts that the temp's column col holds exactly the given
// multiset of values.
func expectInts(t *testing.T, temp *Temp, col int, want []int32) {
	t.Helper()
	got := make([]int32, 0, temp.Len())
	for _, tp := range temp.Tuples() {
		got = append(got, tp.Vals[col].Int)
	}
	slices.Sort(got)
	w := append([]int32(nil), want...)
	slices.Sort(w)
	if len(got) != len(w) {
		t.Fatalf("result has %d tuples, want %d", len(got), len(w))
	}
	for i := range got {
		if got[i] != w[i] {
			t.Fatalf("result[%d] = %d, want %d", i, got[i], w[i])
		}
	}
}

func TestSeqScanFragmentCorrectness(t *testing.T) {
	v, eng := testEngine(0)
	rel := buildRel(t, eng.Store, "r", 2000, 2000, 30)
	root := &plan.SeqScan{Rel: rel, Filter: expr.ColRange(0, "a", 100, 199)}
	specs, _ := specFor(t, eng, root, 0)
	rep := runOne(t, v, eng, specs, core.InterAdj)
	want := make([]int32, 0, 100)
	for i := int32(100); i <= 199; i++ {
		want = append(want, i)
	}
	expectInts(t, rep.Results[0], 0, want)
	if rep.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if rep.Disk.TotalReads() != rel.NPages() {
		t.Fatalf("disk reads = %d, want %d (every page exactly once)", rep.Disk.TotalReads(), rel.NPages())
	}
}

func TestSeqScanParallelSpeedup(t *testing.T) {
	// The same scan on a CPU-heavy relation must run ~k times faster at
	// degree k (intra-operation speedup, [HONG91] behaviour our substrate
	// must reproduce).
	elapsedAt := func(nprocs int) time.Duration {
		v := vclock.NewVirtual()
		disks := diskmodel.New(v, diskmodel.DefaultConfig())
		store := storage.NewStore(v, disks, 0)
		params := cost.DefaultParams(diskmodel.DefaultConfig(), nprocs)
		eng := New(v, store, params)
		rel := buildRel(t, store, "r", 3000, 3000, 20)
		specs, _ := specFor(t, eng, &plan.SeqScan{Rel: rel}, 0)
		rep := runOne(t, v, eng, specs, core.IntraOnly)
		return rep.Elapsed
	}
	e1 := elapsedAt(1)
	e4 := elapsedAt(4)
	speedup := float64(e1) / float64(e4)
	if speedup < 3.0 || speedup > 4.6 {
		t.Fatalf("speedup at 4 procs = %.2f, want near 4 (near-linear)", speedup)
	}
}

func TestIndexScanFragmentCorrectness(t *testing.T) {
	v, eng := testEngine(0)
	rel := buildShuffledRel(t, eng.Store, "r", 1500, 30)
	ix, err := btree.BuildIndex("r_a", rel, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	root := &plan.IndexScan{Rel: rel, Index: ix, Lo: 200, Hi: 299}
	specs, _ := specFor(t, eng, root, 0)
	rep := runOne(t, v, eng, specs, core.InterAdj)
	want := make([]int32, 0, 100)
	for i := int32(200); i <= 299; i++ {
		want = append(want, i)
	}
	expectInts(t, rep.Results[0], 0, want)
	// One (mostly random) IO per fetched tuple.
	if rep.Disk.TotalReads() != 100 {
		t.Fatalf("disk reads = %d, want 100", rep.Disk.TotalReads())
	}
}

func TestIndexScanWithResidualFilter(t *testing.T) {
	v, eng := testEngine(0)
	rel := buildRel(t, eng.Store, "r", 1000, 10, 30) // a = i mod 10
	ix, err := btree.BuildIndex("r_a", rel, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Key range [2,3] with residual filter a = 2: only the 100 a=2 rows.
	root := &plan.IndexScan{Rel: rel, Index: ix, Lo: 2, Hi: 3, Filter: expr.ColEqConst(0, "a", 2)}
	specs, _ := specFor(t, eng, root, 0)
	rep := runOne(t, v, eng, specs, core.IntraOnly)
	if got := rep.Results[0].Len(); got != 100 {
		t.Fatalf("result = %d rows, want 100", got)
	}
}

func TestHashJoinQuery(t *testing.T) {
	v, eng := testEngine(0)
	r1 := buildRel(t, eng.Store, "r1", 600, 200, 24) // a = i mod 200
	r2 := buildRel(t, eng.Store, "r2", 200, 200, 24) // a = i (all distinct)
	root := &plan.HashJoin{
		Left:  &plan.SeqScan{Rel: r1},
		Right: &plan.SeqScan{Rel: r2},
		LCol:  0, RCol: 0,
	}
	specs, g := specFor(t, eng, root, 0)
	if len(specs) != 2 {
		t.Fatalf("specs = %d", len(specs))
	}
	rep := runOne(t, v, eng, specs, core.InterAdj)
	res := rep.Results[g.Root.ID]
	// Every r1 tuple matches exactly one r2 tuple: 600 output rows with
	// equal join keys.
	if res.Len() != 600 {
		t.Fatalf("join produced %d rows, want 600", res.Len())
	}
	for _, tp := range res.Tuples() {
		if tp.Vals[0].Int != tp.Vals[2].Int {
			t.Fatalf("join key mismatch in %v", tp)
		}
		if len(tp.Vals) != 4 {
			t.Fatalf("join row width %d", len(tp.Vals))
		}
	}
	// Build fragment must have completed before the probe started.
	if !(rep.Finish[0] <= rep.Finish[g.Root.ID]) {
		t.Fatal("probe finished before build")
	}
}

func TestMergeJoinQuery(t *testing.T) {
	v, eng := testEngine(0)
	r1 := buildRel(t, eng.Store, "r1", 500, 100, 24)
	r2 := buildRel(t, eng.Store, "r2", 300, 100, 24)
	root := &plan.MergeJoin{
		Left:  &plan.Sort{Child: &plan.SeqScan{Rel: r1}, Col: 0},
		Right: &plan.Sort{Child: &plan.SeqScan{Rel: r2}, Col: 0},
		LCol:  0, RCol: 0,
	}
	specs, g := specFor(t, eng, root, 0)
	if len(specs) != 3 {
		t.Fatalf("specs = %d", len(specs))
	}
	rep := runOne(t, v, eng, specs, core.InterAdj)
	res := rep.Results[g.Root.ID]
	// r1 has 5 tuples per key (500/100), r2 has 3: 100 keys x 15 rows.
	if res.Len() != 1500 {
		t.Fatalf("merge join produced %d rows, want 1500", res.Len())
	}
	for _, tp := range res.Tuples() {
		if tp.Vals[0].Int != tp.Vals[2].Int {
			t.Fatalf("join key mismatch in %v", tp)
		}
	}
}

func TestNestLoopQuery(t *testing.T) {
	v, eng := testEngine(128)
	r1 := buildRel(t, eng.Store, "r1", 60, 60, 24)
	r2 := buildRel(t, eng.Store, "r2", 40, 40, 24)
	pred := expr.Cmp{Op: expr.EQ, L: expr.Col{Idx: 0}, R: expr.Col{Idx: 2}}
	root := &plan.NestLoop{
		Outer: &plan.SeqScan{Rel: r1},
		Inner: &plan.SeqScan{Rel: r2},
		Pred:  pred,
	}
	specs, g := specFor(t, eng, root, 0)
	if len(specs) != 1 {
		t.Fatalf("specs = %d (nestloop pipelines)", len(specs))
	}
	rep := runOne(t, v, eng, specs, core.IntraOnly)
	// Keys 0..39 match once each.
	want := make([]int32, 40)
	for i := range want {
		want[i] = int32(i)
	}
	expectInts(t, rep.Results[g.Root.ID], 0, want)
}

func TestNestLoopMaterializedInner(t *testing.T) {
	v, eng := testEngine(0)
	r1 := buildRel(t, eng.Store, "r1", 50, 50, 24)
	r2 := buildRel(t, eng.Store, "r2", 30, 30, 24)
	pred := expr.Cmp{Op: expr.EQ, L: expr.Col{Idx: 0}, R: expr.Col{Idx: 2}}
	root := &plan.NestLoop{
		Outer: &plan.SeqScan{Rel: r1},
		Inner: &plan.Material{Child: &plan.SeqScan{Rel: r2}},
		Pred:  pred,
	}
	specs, g := specFor(t, eng, root, 0)
	if len(specs) != 2 {
		t.Fatalf("specs = %d", len(specs))
	}
	rep := runOne(t, v, eng, specs, core.InterAdj)
	if got := rep.Results[g.Root.ID].Len(); got != 30 {
		t.Fatalf("rows = %d, want 30", got)
	}
	// The inner relation is read exactly once (materialized), so disk
	// reads = pages(r1) + pages(r2).
	if want := r1.NPages() + r2.NPages(); rep.Disk.TotalReads() != want {
		t.Fatalf("disk reads = %d, want %d", rep.Disk.TotalReads(), want)
	}
}

func TestBushyPlanIndependentBuildsOverlap(t *testing.T) {
	v, eng := testEngine(0)
	r1 := buildRel(t, eng.Store, "r1", 400, 100, 24)
	r2 := buildRel(t, eng.Store, "r2", 400, 100, 24)
	r3 := buildRel(t, eng.Store, "r3", 400, 100, 24)
	r4 := buildRel(t, eng.Store, "r4", 400, 100, 24)
	left := &plan.HashJoin{Left: &plan.SeqScan{Rel: r1}, Right: &plan.SeqScan{Rel: r2}, LCol: 0, RCol: 0}
	right := &plan.HashJoin{Left: &plan.SeqScan{Rel: r3}, Right: &plan.SeqScan{Rel: r4}, LCol: 0, RCol: 0}
	root := &plan.HashJoin{Left: left, Right: right, LCol: 0, RCol: 0}
	specs, g := specFor(t, eng, root, 0)
	if len(specs) != 4 {
		t.Fatalf("specs = %d", len(specs))
	}
	rep := runOne(t, v, eng, specs, core.InterAdj)
	if rep.Results[g.Root.ID].Len() == 0 {
		t.Fatal("bushy join empty")
	}
	// All four fragments completed; root last.
	if len(rep.Finish) != 4 {
		t.Fatalf("finished %d tasks", len(rep.Finish))
	}
	rootID := g.Root.ID
	for id, ft := range rep.Finish {
		if id != rootID && ft > rep.Finish[rootID] {
			t.Fatalf("fragment %d finished after root", id)
		}
	}
}

func TestEmptyRelation(t *testing.T) {
	v, eng := testEngine(0)
	b := storage.NewBuilder(eng.Store.NextID(), "empty", storage.NewSchema(
		storage.Column{Name: "a", Typ: storage.Int4},
		storage.Column{Name: "b", Typ: storage.Text},
	))
	rel := b.Finalize()
	if err := eng.Store.Add(rel); err != nil {
		t.Fatal(err)
	}
	specs, g := specFor(t, eng, &plan.SeqScan{Rel: rel}, 0)
	rep := runOne(t, v, eng, specs, core.InterAdj)
	if rep.Results[g.Root.ID].Len() != 0 {
		t.Fatal("empty relation produced rows")
	}
}

func TestRunValidation(t *testing.T) {
	v, eng := testEngine(0)
	rel := buildRel(t, eng.Store, "r", 10, 10, 10)
	specs, _ := specFor(t, eng, &plan.SeqScan{Rel: rel}, 0)
	v.Run(func() {
		if _, err := eng.Run([]TaskSpec{{}}, core.InterAdj, core.Options{}); err == nil {
			t.Error("empty spec accepted")
		}
		dup := []TaskSpec{specs[0], specs[0]}
		if _, err := eng.Run(dup, core.InterAdj, core.Options{}); err == nil {
			t.Error("duplicate IDs accepted")
		}
		bad := specs[0]
		bad.DependsOn = []int{42}
		if _, err := eng.Run([]TaskSpec{bad}, core.InterAdj, core.Options{}); err == nil {
			t.Error("unknown dependency accepted")
		}
	})
}

func TestArrivalsRespected(t *testing.T) {
	v, eng := testEngine(0)
	rel := buildRel(t, eng.Store, "r", 400, 400, 60)
	specsA, _ := specFor(t, eng, &plan.SeqScan{Rel: rel}, 0)
	specsB, _ := specFor(t, eng, &plan.SeqScan{Rel: rel}, 100)
	specsB[0].Arrival = 2 * time.Second
	all := append(specsA, specsB...)
	rep := runOne(t, v, eng, all, core.InterAdj)
	if rep.Finish[100] < 2*time.Second {
		t.Fatalf("late task finished at %v, before its arrival", rep.Finish[100])
	}
}

func TestDeterministicElapsed(t *testing.T) {
	run := func() time.Duration {
		v, eng := testEngine(0)
		r1 := buildRel(t, eng.Store, "r1", 800, 800, 500)
		r2 := buildRel(t, eng.Store, "r2", 800, 800, 20)
		specs1, _ := specFor(t, eng, &plan.SeqScan{Rel: r1}, 0)
		specs2, _ := specFor(t, eng, &plan.SeqScan{Rel: r2}, 10)
		rep := runOne(t, v, eng, append(specs1, specs2...), core.InterAdj)
		return rep.Elapsed
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d: %v != %v", i, got, first)
		}
	}
}

func TestTraceAndReportShape(t *testing.T) {
	v, eng := testEngine(0)
	rel := buildRel(t, eng.Store, "r", 200, 200, 30)
	specs, _ := specFor(t, eng, &plan.SeqScan{Rel: rel}, 0)
	rep := runOne(t, v, eng, specs, core.IntraOnly)
	if len(rep.Trace) < 2 {
		t.Fatalf("trace = %v", rep.Trace)
	}
	if rep.Trace[0].Kind != "start" || rep.Trace[len(rep.Trace)-1].Kind != "complete" {
		t.Fatalf("trace order: %v", rep.Trace)
	}
	for _, ev := range rep.Trace {
		if ev.String() == "" {
			t.Fatal("empty trace string")
		}
	}
}

func TestQueryTasksErrors(t *testing.T) {
	_, eng := testEngine(0)
	rel := buildRel(t, eng.Store, "r", 10, 10, 10)
	g, err := plan.Decompose(&plan.SeqScan{Rel: rel})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := QueryTasks(g, map[int]cost.FragEstimate{}, 0); err == nil {
		t.Fatal("missing estimates accepted")
	}
}

func TestTempHelpers(t *testing.T) {
	temp := NewTemp(storage.NewSchema(storage.Column{Name: "a", Typ: storage.Int4}))
	var batch []storage.Tuple
	for _, v := range []int32{5, 3, 9, 3, 1} {
		batch = append(batch, storage.NewTuple(storage.IntVal(v)))
	}
	temp.Append(batch)
	temp.Append(nil)
	if temp.Len() != 5 || temp.SortedBy() != -1 {
		t.Fatal("temp basics")
	}
	if cmps := temp.Finalize(0); cmps <= 0 {
		t.Fatal("no comparisons charged")
	}
	if temp.SortedBy() != 0 {
		t.Fatal("not marked sorted")
	}
	if temp.CountRange(0, 3, 5) != 3 {
		t.Fatalf("CountRange = %d", temp.CountRange(0, 3, 5))
	}
	if temp.CountRange(0, 9, 3) != 0 {
		t.Fatal("inverted range")
	}
	lo, hi, ok := temp.Bounds(0)
	if !ok || lo != 1 || hi != 9 {
		t.Fatalf("bounds = %d,%d,%v", lo, hi, ok)
	}
	if temp.NumChunks() != 1 || len(temp.Chunk(0)) != 5 || temp.Chunk(5) != nil {
		t.Fatal("chunking")
	}
	if n := temp.Finalize(-1); n != 0 {
		t.Fatal("finalize(-1) sorted")
	}
	empty := NewTemp(storage.Schema{})
	if _, _, ok := empty.Bounds(0); ok {
		t.Fatal("empty bounds")
	}
}

func TestHashTableHelpers(t *testing.T) {
	h := NewHashTable(storage.NewSchema(storage.Column{Name: "a", Typ: storage.Int4}), 0)
	for i := int32(0); i < 10; i++ {
		if err := h.Insert(storage.NewTuple(storage.IntVal(i % 3))); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 10 {
		t.Fatalf("len = %d", h.Len())
	}
	if got := len(h.Probe(0)); got != 4 {
		t.Fatalf("probe(0) = %d", got)
	}
	if got := len(h.Probe(99)); got != 0 {
		t.Fatalf("probe(99) = %d", got)
	}
	if err := h.Insert(storage.Tuple{}); err == nil {
		t.Fatal("bad insert accepted")
	}
}

func TestFig7StyleComparison(t *testing.T) {
	// A small version of the §3 experiment: 6 selection tasks, half
	// extremely IO-bound, half extremely CPU-bound, on the real executor.
	// INTER-WITH-ADJ must beat INTRA-ONLY; INTER-WITHOUT-ADJ must not
	// beat INTER-WITH-ADJ.
	elapsed := map[core.Policy]time.Duration{}
	for _, pol := range []core.Policy{core.IntraOnly, core.InterNoAdj, core.InterAdj} {
		v, eng := testEngine(0)
		var specs []TaskSpec
		for i := 0; i < 6; i++ {
			var pad int
			if i%2 == 0 {
				pad = int(eng.Params.TupleSizeForRate(65)) - 8 // IO-bound
			} else {
				pad = int(eng.Params.TupleSizeForRate(8)) - 8 // CPU-bound
			}
			rel := buildRel(t, eng.Store, fmt.Sprintf("r%d", i), 700, 700, pad)
			s, _ := specFor(t, eng, &plan.SeqScan{Rel: rel}, i*10)
			specs = append(specs, s...)
		}
		rep := runOne(t, v, eng, specs, pol)
		elapsed[pol] = rep.Elapsed
	}
	if !(elapsed[core.InterAdj] < elapsed[core.IntraOnly]) {
		t.Fatalf("INTER-WITH-ADJ %v !< INTRA-ONLY %v", elapsed[core.InterAdj], elapsed[core.IntraOnly])
	}
	if !(elapsed[core.InterAdj] <= elapsed[core.InterNoAdj]) {
		t.Fatalf("INTER-WITH-ADJ %v > INTER-WITHOUT-ADJ %v", elapsed[core.InterAdj], elapsed[core.InterNoAdj])
	}
}

func TestClusteredKeyOrderSavesIO(t *testing.T) {
	// When key order matches heap order (a clustered index), consecutive
	// TIDs share pages and the range driver charges roughly one IO per
	// page, not per tuple (§3: clustered index scans behave like
	// sequential scans).
	v, eng := testEngine(0)
	rel := buildRel(t, eng.Store, "r", 1500, 1500, 30) // a = i: key-ordered heap
	ix, err := btree.BuildIndex("r_a", rel, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	specs, _ := specFor(t, eng, &plan.IndexScan{Rel: rel, Index: ix, Lo: 0, Hi: 1499}, 0)
	rep := runOne(t, v, eng, specs, core.IntraOnly)
	if rep.Results[0].Len() != 1500 {
		t.Fatalf("rows = %d", rep.Results[0].Len())
	}
	// One IO per touched page (plus one per slave-partition boundary),
	// far below one per tuple.
	maxReads := rel.NPages() + 16
	if got := rep.Disk.TotalReads(); got > maxReads {
		t.Fatalf("clustered-order scan read %d pages, want <= %d", got, maxReads)
	}
}

func TestAggFragmentParallelPartials(t *testing.T) {
	// A grouped aggregate over a parallel scan: slave-local partials must
	// merge into exact totals whatever the degree.
	v, eng := testEngine(0)
	rel := buildRel(t, eng.Store, "r", 3000, 50, 24) // 60 tuples per group
	root := &plan.Agg{
		Child:    &plan.SeqScan{Rel: rel},
		GroupCol: 0,
		Funcs: []plan.AggFunc{
			{Kind: plan.CountAll},
			{Kind: plan.Sum, Col: 0},
			{Kind: plan.Min, Col: 0},
			{Kind: plan.Max, Col: 0},
		},
	}
	specs, g := specFor(t, eng, root, 0)
	if len(specs) != 1 {
		t.Fatalf("specs = %d (agg absorbs into the scan fragment)", len(specs))
	}
	rep := runOne(t, v, eng, specs, core.InterAdj)
	res := rep.Results[g.Root.ID]
	if res.Len() != 50 {
		t.Fatalf("groups = %d, want 50", res.Len())
	}
	for _, tp := range res.Tuples() {
		k := tp.Vals[0].Int
		if tp.Vals[1].Int != 60 {
			t.Fatalf("group %d count = %d", k, tp.Vals[1].Int)
		}
		if tp.Vals[2].Int != 60*k {
			t.Fatalf("group %d sum = %d, want %d", k, tp.Vals[2].Int, 60*k)
		}
		if tp.Vals[3].Int != k || tp.Vals[4].Int != k {
			t.Fatalf("group %d min/max = %d/%d", k, tp.Vals[3].Int, tp.Vals[4].Int)
		}
	}
}

func TestAggGlobalEmptyInput(t *testing.T) {
	v, eng := testEngine(0)
	rel := buildRel(t, eng.Store, "r", 100, 100, 24)
	root := &plan.Agg{
		Child:    &plan.SeqScan{Rel: rel, Filter: expr.ColEqConst(0, "a", -5)}, // matches nothing
		GroupCol: -1,
		Funcs:    []plan.AggFunc{{Kind: plan.CountAll}},
	}
	specs, g := specFor(t, eng, root, 0)
	rep := runOne(t, v, eng, specs, core.IntraOnly)
	// No input rows: no groups at all (SQL would say COUNT=0; the engine
	// reports an empty grouping, which the facade can interpret).
	if got := rep.Results[g.Root.ID].Len(); got != 0 {
		t.Fatalf("rows = %d", got)
	}
}
