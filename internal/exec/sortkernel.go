package exec

import (
	"math/bits"
	"runtime"
	"slices"
	"sync"

	"xprs/internal/storage"
)

// Parallel stable merge sort for Temp.Finalize.
//
// The kernel never compares tuples directly: each row's sort key and
// arrival index pack into one uint64 (key in the high 32 bits with the
// sign bit flipped so unsigned order matches signed order, index in the
// low 32), so comparisons touch dense 8-byte words instead of chasing
// every tuple's Vals pointer, and the arrival index makes all packed
// values distinct — ascending uint64 order IS the stable order, with no
// tie-break logic anywhere in the hot path.
//
// The merge structure follows the append runs recorded by Temp: slave
// flushes frequently arrive pre-ordered (scans drive pipelines in key
// order), so each run is first checked and only sorted if needed, runs
// that happen to extend each other coalesce for free, and the remaining
// sorted spans merge pairwise through one scratch buffer in ping-pong
// rounds — concurrently when more than one processor is available. A
// final gather permutes the tuples into sorted order in one pass.
//
// Any chunking and any degree of parallelism yields the identical
// result: the packed values are totally ordered, so the sorted array is
// unique.

// modeledSortCmps is the comparison count charged to the virtual clock
// for sorting n tuples: n·⌈log₂n⌉, matching the optimizer's
// rows·log₂(rows)·SortCmpCPU estimate. A modeled count (rather than a
// measured one) keeps the clock independent of run boundaries, which
// shift with batch size and slave count.
func modeledSortCmps(n int) int64 {
	if n < 2 {
		return 0
	}
	return int64(n) * int64(bits.Len(uint(n-1)))
}

// parallelSortMinRows is the size under which chunking and goroutine
// fan-out cost more than they save.
const parallelSortMinRows = 4096

// packKey encodes (key, arrival index) as one order-preserving uint64.
func packKey(key int32, idx int) uint64 {
	return uint64(uint32(key)^0x80000000)<<32 | uint64(uint32(idx))
}

// parallelStableSort stably sorts ts on col, returning the sorted
// slice (a fresh backing array — the final gather permutes into it, so
// no copy-back pass is ever paid; ts itself is returned unchanged for
// degenerate sizes). runs holds ascending end offsets of the append
// runs (the last equal to len(ts)); procs bounds the worker
// goroutines. Both are advisory: any runs shape and procs value
// produce the identical final order.
func parallelStableSort(ts []storage.Tuple, col int, runs []int, procs int) []storage.Tuple {
	n := len(ts)
	if n < 2 {
		return ts
	}
	packed := make([]uint64, n)
	for i := range ts {
		packed[i] = packKey(ts[i].Vals[col].Int, i)
	}
	if procs > runtime.GOMAXPROCS(0) {
		procs = runtime.GOMAXPROCS(0)
	}
	if n < parallelSortMinRows {
		slices.Sort(packed)
	} else {
		var offs []int
		if procs <= 1 {
			// Natural merge: every append run is a span; pre-sorted runs
			// cost one verification pass and no sort.
			offs = normalizeRuns(runs, n)
		} else {
			// Parallel merge: at most procs spans so round 0 saturates the
			// processors without oversubscribing them.
			offs = chunkOffsets(n, runs, procs)
		}
		sortSpans(packed, offs, procs)
		offs = coalesceSpans(packed, offs)
		mergeSpans(packed, offs, procs)
	}
	// Gather pass: permute the tuples into sorted order.
	sorted := make([]storage.Tuple, n)
	for i, p := range packed {
		sorted[i] = ts[p&0xffffffff]
	}
	return sorted
}

// sortColBatch stably sorts an owned columnar batch in place on col,
// through the same packed-key span machinery as parallelStableSort: the
// packed order is a pure function of (keys, arrival order), so the row
// and columnar paths produce the identical permutation. The gather pass
// permutes every column; text buffers rebuild by appending in
// destination order.
func sortColBatch(cb *storage.ColBatch, col int, runs []int, procs int) {
	n := cb.N
	if n < 2 {
		return
	}
	keys := cb.Vecs[col].Ints
	packed := make([]uint64, n)
	for i, k := range keys {
		packed[i] = packKey(k, i)
	}
	if procs > runtime.GOMAXPROCS(0) {
		procs = runtime.GOMAXPROCS(0)
	}
	if n < parallelSortMinRows {
		slices.Sort(packed)
	} else {
		var offs []int
		if procs <= 1 {
			offs = normalizeRuns(runs, n)
		} else {
			offs = chunkOffsets(n, runs, procs)
		}
		sortSpans(packed, offs, procs)
		offs = coalesceSpans(packed, offs)
		mergeSpans(packed, offs, procs)
	}
	for c := range cb.Vecs {
		v := &cb.Vecs[c]
		if v.Pruned() {
			continue
		}
		switch v.Typ {
		case storage.Int4:
			ni := make([]int32, n)
			for i, p := range packed {
				ni[i] = v.Ints[p&0xffffffff]
			}
			v.Ints = ni
		case storage.Text:
			// Spans are absolute into Buf, so reordering rows only
			// permutes the (start, end) arrays; the payload bytes stay
			// where they are and aliased runs stay shared.
			no := make([]int32, n)
			ne := make([]int32, n)
			for i, p := range packed {
				r := int(p & 0xffffffff)
				no[i] = v.Off[r]
				ne[i] = v.End[r]
			}
			v.Off, v.End = no, ne
		}
	}
}

// normalizeRuns turns recorded run ends into span offsets: ascending,
// starting at 0, ending at n, tolerating missing or stale entries.
func normalizeRuns(runs []int, n int) []int {
	offs := make([]int, 0, len(runs)+2)
	offs = append(offs, 0)
	for _, r := range runs {
		if r > offs[len(offs)-1] && r < n {
			offs = append(offs, r)
		}
	}
	return append(offs, n)
}

// sortSpans makes every span [offs[i], offs[i+1]) ascending, skipping
// spans that already are; concurrent when procs > 1.
func sortSpans(packed []uint64, offs []int, procs int) {
	one := func(lo, hi int) {
		s := packed[lo:hi]
		for i := 1; i < len(s); i++ {
			if s[i-1] > s[i] {
				slices.Sort(s)
				return
			}
		}
	}
	if procs <= 1 {
		for i := 0; i+1 < len(offs); i++ {
			one(offs[i], offs[i+1])
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i+1 < len(offs); i++ {
		lo, hi := offs[i], offs[i+1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			one(lo, hi)
		}()
	}
	wg.Wait()
}

// coalesceSpans drops boundaries where adjacent sorted spans already
// extend each other, so runs appended in key order merge for free.
func coalesceSpans(packed []uint64, offs []int) []int {
	out := offs[:1]
	for i := 1; i < len(offs)-1; i++ {
		if packed[offs[i]-1] > packed[offs[i]] {
			out = append(out, offs[i])
		}
	}
	return append(out, offs[len(offs)-1])
}

// mergeSpans merges sorted spans pairwise through one scratch buffer,
// ping-ponging between the two backings until one span remains;
// concurrent when procs > 1.
func mergeSpans(packed []uint64, offs []int, procs int) {
	if len(offs) <= 2 {
		return
	}
	scratch := make([]uint64, len(packed))
	src, dst := packed, scratch
	var wg sync.WaitGroup
	for len(offs) > 2 {
		next := make([]int, 0, len(offs)/2+2)
		next = append(next, 0)
		for i := 0; i+1 < len(offs); i += 2 {
			if i+2 < len(offs) {
				lo, mid, hi := offs[i], offs[i+1], offs[i+2]
				if procs <= 1 {
					mergePacked(dst[lo:hi], src[lo:mid], src[mid:hi])
				} else {
					wg.Add(1)
					go func() {
						defer wg.Done()
						mergePacked(dst[lo:hi], src[lo:mid], src[mid:hi])
					}()
				}
				next = append(next, hi)
			} else {
				// Odd span out: carry it to the next round unchanged.
				lo, hi := offs[i], offs[i+1]
				copy(dst[lo:hi], src[lo:hi])
				next = append(next, hi)
			}
		}
		wg.Wait()
		offs = next
		src, dst = dst, src
	}
	if &src[0] != &packed[0] {
		copy(packed, src)
	}
}

// chunkOffsets partitions [0, n) into at most k contiguous chunks with
// edges drawn from the run boundaries nearest the ideal equal splits.
// The result is ascending offsets beginning with 0 and ending with n.
func chunkOffsets(n int, runs []int, k int) []int {
	offs := make([]int, 0, k+1)
	offs = append(offs, 0)
	ri := 0
	for c := 1; c < k; c++ {
		target := n * c / k
		// Advance to the first run end >= target; it is the boundary
		// closest to the ideal split that we can use without splitting a
		// run.
		for ri < len(runs) && runs[ri] < target {
			ri++
		}
		if ri >= len(runs) {
			break
		}
		b := runs[ri]
		if b > offs[len(offs)-1] && b < n {
			offs = append(offs, b)
		}
	}
	return append(offs, n)
}

// mergePacked merges two sorted runs into out (len(out) ==
// len(a)+len(b)). Packed values are distinct, so plain < ordering
// carries stability.
func mergePacked(out, a, b []uint64) {
	i, j, o := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j] < a[i] {
			out[o] = b[j]
			j++
		} else {
			out[o] = a[i]
			i++
		}
		o++
	}
	o += copy(out[o:], a[i:])
	copy(out[o:], b[j:])
}
