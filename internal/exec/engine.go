package exec

import (
	"fmt"
	"sync"
	"time"

	"xprs/internal/core"
	"xprs/internal/cost"
	"xprs/internal/diskmodel"
	"xprs/internal/obs"
	"xprs/internal/plan"
	"xprs/internal/storage"
	"xprs/internal/vclock"
)

// DefaultBatchSize is the executor's tuple-batch granularity when
// Engine.BatchSize is unset: big enough to amortize per-batch costs
// (lock round-trips, virtual-clock events) over the hot path, small
// enough that batches of joined tuples stay cache-resident.
const DefaultBatchSize = 256

// Engine is the XPRS parallel executor: one master backend (the
// goroutine that calls Run) plus slave backends it spawns per task.
type Engine struct {
	Clock  vclock.Clock
	Store  *storage.Store
	Params cost.Params
	Env    core.Env

	// BatchSize is the number of tuples per pipeline batch; 0 means
	// DefaultBatchSize. Set before Run. Results and virtual-clock totals
	// are independent of the value — it is purely a wall-clock
	// efficiency knob (and a correctness-test lever).
	BatchSize int

	// HashPartitions overrides the build-side partition count of every
	// hash table; 0 defers to the per-fragment hint (or
	// DefaultHashPartitions). Like BatchSize, it is purely a wall-clock
	// knob: results, virtual-clock totals and disk statistics are
	// independent of the value.
	HashPartitions int

	// RowBatches forces every fragment onto the row-at-a-time batch
	// pipeline instead of the columnar one. Like BatchSize it is purely a
	// wall-clock knob — both layouts charge the identical per-tuple work
	// at the identical points, so results and virtual-clock totals do not
	// move. The columnar/row ablation benchmark and the layout sweep
	// tests flip it; production paths leave it false.
	RowBatches bool

	// Trace receives structured span/instant events when set. The tracer
	// only appends under its own mutex with timestamps read from the
	// virtual clock, so enabling it cannot change Finish/Elapsed results;
	// nil disables tracing at the cost of one branch per event site.
	Trace *obs.Tracer

	// Metrics receives counters and histograms when set; nil disables
	// them the same way.
	Metrics *obs.Registry

	// cpuQuantumPs batches per-tuple CPU charges into clock sleeps
	// (picoseconds); purely a simulation-efficiency knob.
	cpuQuantumPs int64

	// batchPool recycles batch buffers across slaves and tasks; entries
	// are pointers so Put does not re-box the slice header.
	batchPool sync.Pool

	// colPools recycles columnar batches across slaves, tasks and
	// queries — one free list per column shape. A single pool would hand
	// Int4-shaped batches to text-heavy fragments and back, forcing
	// ColBatch.Init to reallocate every vector on each Get (pool thrash);
	// keyed by shape, the steady state allocates nothing per batch.
	colPoolMu sync.Mutex
	colPools  map[uint64]*sync.Pool

	// hvsPool recycles the cached-hash slices of columnar build chunks
	// (boxed so Get/Put never re-allocate the slice header).
	hvsPool sync.Pool

	// sealPool recycles the transient scratch of ColHashTable partition
	// seals (permutations, slot memos, chunk bases).
	sealPool sync.Pool

	// chtPool recycles columnar hash tables across queries; release()
	// feeds it once the consuming query settles.
	chtPool sync.Pool

	// scPool recycles slave execution contexts across slaves, tasks and
	// queries: the capacity-bearing scratch (selection buffers, arenas,
	// probe slabs, page buffers) is what makes the hot path allocation-
	// free in steady state.
	scPool sync.Pool

	// densePool recycles dense aggregation windows (accumulator array +
	// seen bitmap) across slaves and queries.
	densePool sync.Pool

	// frFree recycles compiled fragment runtimes across executions of the
	// same (cached) plan: the compiled pipeline closures all read their
	// mutable per-run state dynamically through the fragRun pointer, so a
	// pooled runtime only needs its input maps and outputs rebound. Keyed
	// by fragment identity — a cached plan keeps stable fragment pointers.
	frMu   sync.Mutex
	frFree map[*plan.Fragment][]*fragRun

	events *vclock.Mailbox

	// sched is the live scheduler session, if any; an Engine hosts at
	// most one at a time. schedFree parks the last drained session for
	// reuse — its maps, mailbox and admission queue keep their capacity.
	sched     *Scheduler
	schedFree *Scheduler

	// Session-scoped observability state (anchored by NewScheduler).
	runStart time.Duration
	schedTid int
	mBatches *obs.Counter
	mTuples  *obs.Counter
	mReparts *obs.Counter
	mSlaves  *obs.Counter
	mTasks   *obs.Counter
	mSelIn   *obs.Counter
	mSelOut  *obs.Counter
	hTaskUs  *obs.Histogram
}

// now returns virtual time relative to the current run's start (a pure
// clock read; safe whether or not tracing is enabled).
func (e *Engine) now() time.Duration { return e.Clock.Now() - e.runStart }

// schedEvent records an instant on the scheduler lane.
func (e *Engine) schedEvent(name, detail string) {
	if e.Trace == nil {
		return
	}
	e.Trace.Instant(e.now(), obs.PidSched, e.schedTid, "sched", name, detail)
}

// batchSize returns the effective pipeline batch size.
func (e *Engine) batchSize() int {
	if e.BatchSize > 0 {
		return e.BatchSize
	}
	return DefaultBatchSize
}

// getBatch hands out an empty batch buffer with capacity batchSize.
func (e *Engine) getBatch() *[]storage.Tuple {
	if v := e.batchPool.Get(); v != nil {
		b := v.(*[]storage.Tuple)
		if cap(*b) >= e.batchSize() {
			*b = (*b)[:0]
			return b
		}
	}
	b := make([]storage.Tuple, 0, e.batchSize())
	return &b
}

// putBatch returns a batch buffer to the pool. Buffers whose capacity
// fell below the current batch size (possible after a mid-run BatchSize
// change) are dropped instead of re-pooled: getBatch would reject them
// on every Get, so re-pooling would make the pool churn forever.
func (e *Engine) putBatch(b *[]storage.Tuple) {
	if cap(*b) < e.batchSize() {
		return
	}
	*b = (*b)[:0]
	e.batchPool.Put(b)
}

// The batch pools are keyed by column shape: the column count plus two
// bits per column (type, prunedness). Pruned columns key separately
// because they carry no storage — mixing them with full batches of the
// same schema would make Init allocate the missing vectors on every
// Get. Shapes beyond 16 columns share low-bit buckets, which only
// costs a rare Init reshape, never correctness.

// sigOfSchema keys a schema shape, marking the indices in prune
// (ascending) as pruned.
func sigOfSchema(s storage.Schema, prune []int) uint64 {
	sig := uint64(len(s.Cols)) << 32
	pi := 0
	for i := range s.Cols {
		c := uint64(0)
		if s.Cols[i].Typ == storage.Text {
			c = 1
		}
		if pi < len(prune) && prune[pi] == i {
			pi++
			c |= 2
		}
		sig |= c << uint(2*i&31)
	}
	return sig
}

// sigOfVecs keys an existing batch's shape for Put.
func sigOfVecs(vecs []storage.Vec) uint64 {
	sig := uint64(len(vecs)) << 32
	for i := range vecs {
		c := uint64(0)
		if vecs[i].Typ == storage.Text {
			c = 1
		}
		if vecs[i].Pruned() {
			c |= 2
		}
		sig |= c << uint(2*i&31)
	}
	return sig
}

// colPoolFor returns the batch free list for one column shape.
func (e *Engine) colPoolFor(sig uint64) *sync.Pool {
	e.colPoolMu.Lock()
	p := e.colPools[sig]
	if p == nil {
		if e.colPools == nil {
			e.colPools = make(map[uint64]*sync.Pool)
		}
		p = &sync.Pool{}
		e.colPools[sig] = p
	}
	e.colPoolMu.Unlock()
	return p
}

// getColBatch hands out an owned, empty columnar batch shaped for the
// schema with at least capRows of row capacity.
func (e *Engine) getColBatch(s storage.Schema, capRows int) *storage.ColBatch {
	if v := e.colPoolFor(sigOfSchema(s, nil)).Get(); v != nil {
		b := v.(*storage.ColBatch)
		b.Init(s, capRows)
		return b
	}
	return storage.NewColBatch(s, capRows)
}

// getColBatchPruned is getColBatch for a projection output: the listed
// columns (ascending) come out pruned, with no storage allocated for
// them.
func (e *Engine) getColBatchPruned(s storage.Schema, capRows int, prune []int) *storage.ColBatch {
	if v := e.colPoolFor(sigOfSchema(s, prune)).Get(); v != nil {
		b := v.(*storage.ColBatch)
		b.InitPruned(s, capRows, prune)
		return b
	}
	b := &storage.ColBatch{}
	b.InitPruned(s, capRows, prune)
	return b
}

// putColBatch returns a columnar batch to its shape's pool. Views must
// never be pooled — only owned batches whose vectors the next Init may
// reuse.
func (e *Engine) putColBatch(b *storage.ColBatch) {
	if b == nil {
		return
	}
	e.colPoolFor(sigOfVecs(b.Vecs)).Put(b)
}

// getHvs hands out an empty cached-hash slice (boxed) for one build
// chunk; putHvs returns it after sealing consumed the chunk.
func (e *Engine) getHvs(capHint int) *[]uint32 {
	if v := e.hvsPool.Get(); v != nil {
		h := v.(*[]uint32)
		*h = (*h)[:0]
		return h
	}
	h := make([]uint32, 0, capHint)
	return &h
}

func (e *Engine) putHvs(h *[]uint32) {
	if h == nil {
		return
	}
	e.hvsPool.Put(h)
}

// getSealScratch and putSealScratch recycle the transient slices of one
// partition seal.
func (e *Engine) getSealScratch() *sealScratch {
	if v := e.sealPool.Get(); v != nil {
		return v.(*sealScratch)
	}
	return &sealScratch{}
}

func (e *Engine) putSealScratch(s *sealScratch) { e.sealPool.Put(s) }

// getSlaveCtx hands out a slave execution context with its goroutine
// body pre-bound, so spawning a slave allocates nothing in steady
// state; putSlaveCtx resets and recycles it after the slave's work is
// fully flushed.
func (e *Engine) getSlaveCtx() *slaveCtx {
	if v := e.scPool.Get(); v != nil {
		return v.(*slaveCtx)
	}
	sc := &slaveCtx{}
	sc.goFn = sc.run
	return sc
}

func (e *Engine) putSlaveCtx(sc *slaveCtx) {
	sc.reset()
	e.scPool.Put(sc)
}

// getFragRun returns a compiled runtime for the fragment: a pooled one
// rebound to this run's inputs when the fragment was executed before
// (plan-cache hit), a freshly compiled one otherwise.
func (e *Engine) getFragRun(frag *plan.Fragment, temps map[*plan.Fragment]*Temp, hashes map[*plan.Fragment]*HashTable, colHashes map[*plan.Fragment]*ColHashTable) (*fragRun, error) {
	e.frMu.Lock()
	var fr *fragRun
	if frs := e.frFree[frag]; len(frs) > 0 {
		fr = frs[len(frs)-1]
		e.frFree[frag] = frs[:len(frs)-1]
	}
	e.frMu.Unlock()
	if fr == nil {
		return newFragRun(e, frag, temps, hashes, colHashes)
	}
	fr.rebind(temps, hashes, colHashes)
	return fr, nil
}

// putFragRun drops a finished run's output references (the root temp
// may have escaped into the caller's Report) and parks the compiled
// runtime for the fragment's next execution.
func (e *Engine) putFragRun(fr *fragRun) {
	fr.temps, fr.hashes, fr.colHashes = nil, nil, nil
	fr.outTemp, fr.outHash, fr.outColHash = nil, nil, nil
	fr.agg = nil
	e.frMu.Lock()
	if e.frFree == nil {
		e.frFree = make(map[*plan.Fragment][]*fragRun)
	}
	e.frFree[fr.frag] = append(e.frFree[fr.frag], fr)
	e.frMu.Unlock()
}

// InvalidateCompiled drops every pooled fragment runtime. Callers
// invalidating their plan cache (catalog changes) must call it too:
// the pool is keyed by fragment pointers that die with the plans.
func (e *Engine) InvalidateCompiled() {
	e.frMu.Lock()
	e.frFree = nil
	e.frMu.Unlock()
}

// New creates an engine over the given store, deriving the scheduling
// environment from the cost parameters.
func New(clock vclock.Clock, store *storage.Store, params cost.Params) *Engine {
	return &Engine{
		Clock:  clock,
		Store:  store,
		Params: params,
		Env: core.Env{
			NProcs: params.NProcs,
			B:      params.B,
			Bs:     params.Bs,
			Br:     params.Br,
			BrRand: params.BrRand,
		},
		cpuQuantumPs: 2e9, // 2 ms
	}
}

// chargeMasterCPU charges CPU to the calling goroutine's virtual time.
func (e *Engine) chargeMasterCPU(seconds float64) {
	if seconds > 0 {
		e.Clock.Sleep(cost.Seconds(seconds))
	}
}

// TaskSpec is one schedulable fragment: the analytic task the controller
// reasons about plus the fragment to execute and its constraints.
type TaskSpec struct {
	Task *core.Task
	Frag *plan.Fragment
	// DependsOn lists task IDs that must complete before this one runs
	// (the producing fragments of the Frag's inputs).
	DependsOn []int
	// Arrival is when the task enters the system.
	Arrival time.Duration
}

// QueryTasks converts a decomposed, estimated query into TaskSpecs with
// dependencies. Task IDs are baseID + fragment ID; baseID values of
// distinct queries must be spaced by at least the fragment count.
func QueryTasks(g *plan.Graph, ests map[int]cost.FragEstimate, baseID int) ([]TaskSpec, error) {
	specs := make([]TaskSpec, 0, len(g.Fragments))
	for _, f := range g.Fragments {
		est, ok := ests[f.ID]
		if !ok {
			return nil, fmt.Errorf("exec: fragment f%d has no estimate", f.ID)
		}
		t := est.T
		if t <= 0 {
			t = 1e-6 // degenerate empty fragments still need a positive T
		}
		spec := TaskSpec{
			Task: &core.Task{
				ID:       baseID + f.ID,
				Name:     fmt.Sprintf("q%d.f%d", baseID, f.ID),
				T:        t,
				D:        est.D,
				SeqIO:    est.SeqIO,
				MemBytes: est.MemBytes,
			},
			Frag: f,
		}
		for _, in := range f.Inputs {
			spec.DependsOn = append(spec.DependsOn, baseID+in.ID)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// TraceEvent records one master action during a run.
type TraceEvent struct {
	Time   time.Duration
	Kind   string // "start", "adjust", "complete"
	TaskID int
	Degree int
	// Reason carries the controller's explanation of the action: the
	// balance-point solve behind a paired start, why a task runs solo, or
	// what triggered an adjustment. Empty on completions.
	Reason string
}

// String implements fmt.Stringer. The prefix is the historical format;
// the reason, when present, is appended after a dash.
func (ev TraceEvent) String() string {
	s := fmt.Sprintf("t=%10v %-8s task %d (degree %d)", ev.Time, ev.Kind, ev.TaskID, ev.Degree)
	if ev.Reason != "" {
		s += " — " + ev.Reason
	}
	return s
}

// FragStat is the per-fragment execution summary for EXPLAIN ANALYZE.
type FragStat struct {
	// Name is the task's display name (q<base>.f<id>).
	Name string
	// Start and Finish are run-relative virtual times.
	Start, Finish time.Duration
	// Degrees is the degree history: the launch degree followed by one
	// entry per dynamic adjustment.
	Degrees []int
	// Slaves is the total number of slave backends ever spawned.
	Slaves int
	// Repartitions counts completed §2.4 adjustment rounds.
	Repartitions int
	// TuplesIn / TuplesOut / Batches count driver tuples fed into the
	// pipeline, tuples delivered to the fragment output, and pipeline
	// batches processed.
	TuplesIn, TuplesOut, Batches int64
}

// Elapsed is the fragment's wall (virtual) time.
func (s FragStat) Elapsed() time.Duration { return s.Finish - s.Start }

// Report is the outcome of one query (a Run call or a Scheduler
// Submit).
type Report struct {
	// Elapsed is the query's response time: submission to completion of
	// its last task, queue wait included.
	Elapsed time.Duration
	// SubmittedAt and AdmittedAt are session-relative instants: when the
	// query entered the scheduler and when it passed admission. Both are
	// zero for the one-shot Run path.
	SubmittedAt, AdmittedAt time.Duration
	// QueueWait is the time spent in the admission queue
	// (AdmittedAt - SubmittedAt).
	QueueWait time.Duration
	// Finish maps task ID to completion time (session-relative, like
	// SubmittedAt).
	Finish map[int]time.Duration
	// Results holds the output temp of every RootOut fragment, by task
	// ID.
	Results map[int]*Temp
	// Disk is the disk-array statistics accumulated during the run.
	Disk diskmodel.Stats
	// Trace lists scheduling actions in time order.
	Trace []TraceEvent
	// Frags maps task ID to its per-fragment execution summary.
	Frags map[int]FragStat
	// Events is this run's slice of the engine's structured trace
	// (empty when Engine.Trace is nil), sorted by virtual time.
	Events []obs.Event
	// Metrics is the metrics snapshot taken at the end of the run (zero
	// when Engine.Metrics is nil).
	Metrics obs.Snapshot
}

// taskDone is posted to the session mailbox when the last slave of a
// task exits.
type taskDone struct {
	task *core.Task
	rt   *runningTask
	err  error
}

// Run executes one pre-declared task set under the given policy and
// returns its report: it opens a scheduler session, submits the specs as
// a single query, waits for it, and drains. The calling goroutine is
// the client backend; under a virtual clock it must execute inside
// clock.Run (the xprs facade does this). An Engine runs one session at
// a time; use NewScheduler directly for online multi-query submission.
func (e *Engine) Run(specs []TaskSpec, policy core.Policy, opts core.Options) (*Report, error) {
	s := NewScheduler(e, policy, opts, AdmissionConfig{})
	h, err := s.Submit(specs)
	if err != nil {
		s.Drain()
		return nil, err
	}
	rep, err := h.Wait()
	if derr := s.Drain(); err == nil {
		err = derr
	}
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// driverFor picks the partitioner matching the fragment's driving leaf
// (§2.4: page partitioning for sequential scans, range partitioning for
// index scans, merge-range partitioning for merge joins).
func (e *Engine) driverFor(fr *fragRun) (driver, error) {
	leaf, kind := fr.driverInfo()
	switch kind {
	case plan.PageDriver:
		return newPageDriver(fr, leaf)
	case plan.RangeDriver:
		return newRangeDriver(fr, leaf)
	case plan.MergeDriver:
		return newMergeDriver(fr, leaf)
	default:
		return nil, fmt.Errorf("exec: unknown driver kind %v", kind)
	}
}
