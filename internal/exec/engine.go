package exec

import (
	"fmt"
	"sync"
	"time"

	"xprs/internal/core"
	"xprs/internal/cost"
	"xprs/internal/diskmodel"
	"xprs/internal/obs"
	"xprs/internal/plan"
	"xprs/internal/storage"
	"xprs/internal/vclock"
)

// DefaultBatchSize is the executor's tuple-batch granularity when
// Engine.BatchSize is unset: big enough to amortize per-batch costs
// (lock round-trips, virtual-clock events) over the hot path, small
// enough that batches of joined tuples stay cache-resident.
const DefaultBatchSize = 256

// Engine is the XPRS parallel executor: one master backend (the
// goroutine that calls Run) plus slave backends it spawns per task.
type Engine struct {
	Clock  vclock.Clock
	Store  *storage.Store
	Params cost.Params
	Env    core.Env

	// BatchSize is the number of tuples per pipeline batch; 0 means
	// DefaultBatchSize. Set before Run. Results and virtual-clock totals
	// are independent of the value — it is purely a wall-clock
	// efficiency knob (and a correctness-test lever).
	BatchSize int

	// HashPartitions overrides the build-side partition count of every
	// hash table; 0 defers to the per-fragment hint (or
	// DefaultHashPartitions). Like BatchSize, it is purely a wall-clock
	// knob: results, virtual-clock totals and disk statistics are
	// independent of the value.
	HashPartitions int

	// Trace receives structured span/instant events when set. The tracer
	// only appends under its own mutex with timestamps read from the
	// virtual clock, so enabling it cannot change Finish/Elapsed results;
	// nil disables tracing at the cost of one branch per event site.
	Trace *obs.Tracer

	// Metrics receives counters and histograms when set; nil disables
	// them the same way.
	Metrics *obs.Registry

	// cpuQuantumPs batches per-tuple CPU charges into clock sleeps
	// (picoseconds); purely a simulation-efficiency knob.
	cpuQuantumPs int64

	// batchPool recycles batch buffers across slaves and tasks; entries
	// are pointers so Put does not re-box the slice header.
	batchPool sync.Pool

	events *vclock.Mailbox

	// sched is the live scheduler session, if any; an Engine hosts at
	// most one at a time.
	sched *Scheduler

	// Session-scoped observability state (anchored by NewScheduler).
	runStart time.Duration
	schedTid int
	mBatches *obs.Counter
	mTuples  *obs.Counter
	mReparts *obs.Counter
	mSlaves  *obs.Counter
	mTasks   *obs.Counter
	hTaskUs  *obs.Histogram
}

// now returns virtual time relative to the current run's start (a pure
// clock read; safe whether or not tracing is enabled).
func (e *Engine) now() time.Duration { return e.Clock.Now() - e.runStart }

// schedEvent records an instant on the scheduler lane.
func (e *Engine) schedEvent(name, detail string) {
	if e.Trace == nil {
		return
	}
	e.Trace.Instant(e.now(), obs.PidSched, e.schedTid, "sched", name, detail)
}

// batchSize returns the effective pipeline batch size.
func (e *Engine) batchSize() int {
	if e.BatchSize > 0 {
		return e.BatchSize
	}
	return DefaultBatchSize
}

// getBatch hands out an empty batch buffer with capacity batchSize.
func (e *Engine) getBatch() *[]storage.Tuple {
	if v := e.batchPool.Get(); v != nil {
		b := v.(*[]storage.Tuple)
		if cap(*b) >= e.batchSize() {
			*b = (*b)[:0]
			return b
		}
	}
	b := make([]storage.Tuple, 0, e.batchSize())
	return &b
}

// putBatch returns a batch buffer to the pool. Buffers whose capacity
// fell below the current batch size (possible after a mid-run BatchSize
// change) are dropped instead of re-pooled: getBatch would reject them
// on every Get, so re-pooling would make the pool churn forever.
func (e *Engine) putBatch(b *[]storage.Tuple) {
	if cap(*b) < e.batchSize() {
		return
	}
	*b = (*b)[:0]
	e.batchPool.Put(b)
}

// New creates an engine over the given store, deriving the scheduling
// environment from the cost parameters.
func New(clock vclock.Clock, store *storage.Store, params cost.Params) *Engine {
	return &Engine{
		Clock:  clock,
		Store:  store,
		Params: params,
		Env: core.Env{
			NProcs: params.NProcs,
			B:      params.B,
			Bs:     params.Bs,
			Br:     params.Br,
			BrRand: params.BrRand,
		},
		cpuQuantumPs: 2e9, // 2 ms
	}
}

// chargeMasterCPU charges CPU to the calling goroutine's virtual time.
func (e *Engine) chargeMasterCPU(seconds float64) {
	if seconds > 0 {
		e.Clock.Sleep(cost.Seconds(seconds))
	}
}

// TaskSpec is one schedulable fragment: the analytic task the controller
// reasons about plus the fragment to execute and its constraints.
type TaskSpec struct {
	Task *core.Task
	Frag *plan.Fragment
	// DependsOn lists task IDs that must complete before this one runs
	// (the producing fragments of the Frag's inputs).
	DependsOn []int
	// Arrival is when the task enters the system.
	Arrival time.Duration
}

// QueryTasks converts a decomposed, estimated query into TaskSpecs with
// dependencies. Task IDs are baseID + fragment ID; baseID values of
// distinct queries must be spaced by at least the fragment count.
func QueryTasks(g *plan.Graph, ests map[int]cost.FragEstimate, baseID int) ([]TaskSpec, error) {
	specs := make([]TaskSpec, 0, len(g.Fragments))
	for _, f := range g.Fragments {
		est, ok := ests[f.ID]
		if !ok {
			return nil, fmt.Errorf("exec: fragment f%d has no estimate", f.ID)
		}
		t := est.T
		if t <= 0 {
			t = 1e-6 // degenerate empty fragments still need a positive T
		}
		spec := TaskSpec{
			Task: &core.Task{
				ID:       baseID + f.ID,
				Name:     fmt.Sprintf("q%d.f%d", baseID, f.ID),
				T:        t,
				D:        est.D,
				SeqIO:    est.SeqIO,
				MemBytes: est.MemBytes,
			},
			Frag: f,
		}
		for _, in := range f.Inputs {
			spec.DependsOn = append(spec.DependsOn, baseID+in.ID)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// TraceEvent records one master action during a run.
type TraceEvent struct {
	Time   time.Duration
	Kind   string // "start", "adjust", "complete"
	TaskID int
	Degree int
	// Reason carries the controller's explanation of the action: the
	// balance-point solve behind a paired start, why a task runs solo, or
	// what triggered an adjustment. Empty on completions.
	Reason string
}

// String implements fmt.Stringer. The prefix is the historical format;
// the reason, when present, is appended after a dash.
func (ev TraceEvent) String() string {
	s := fmt.Sprintf("t=%10v %-8s task %d (degree %d)", ev.Time, ev.Kind, ev.TaskID, ev.Degree)
	if ev.Reason != "" {
		s += " — " + ev.Reason
	}
	return s
}

// FragStat is the per-fragment execution summary for EXPLAIN ANALYZE.
type FragStat struct {
	// Name is the task's display name (q<base>.f<id>).
	Name string
	// Start and Finish are run-relative virtual times.
	Start, Finish time.Duration
	// Degrees is the degree history: the launch degree followed by one
	// entry per dynamic adjustment.
	Degrees []int
	// Slaves is the total number of slave backends ever spawned.
	Slaves int
	// Repartitions counts completed §2.4 adjustment rounds.
	Repartitions int
	// TuplesIn / TuplesOut / Batches count driver tuples fed into the
	// pipeline, tuples delivered to the fragment output, and pipeline
	// batches processed.
	TuplesIn, TuplesOut, Batches int64
}

// Elapsed is the fragment's wall (virtual) time.
func (s FragStat) Elapsed() time.Duration { return s.Finish - s.Start }

// Report is the outcome of one query (a Run call or a Scheduler
// Submit).
type Report struct {
	// Elapsed is the query's response time: submission to completion of
	// its last task, queue wait included.
	Elapsed time.Duration
	// SubmittedAt and AdmittedAt are session-relative instants: when the
	// query entered the scheduler and when it passed admission. Both are
	// zero for the one-shot Run path.
	SubmittedAt, AdmittedAt time.Duration
	// QueueWait is the time spent in the admission queue
	// (AdmittedAt - SubmittedAt).
	QueueWait time.Duration
	// Finish maps task ID to completion time (session-relative, like
	// SubmittedAt).
	Finish map[int]time.Duration
	// Results holds the output temp of every RootOut fragment, by task
	// ID.
	Results map[int]*Temp
	// Disk is the disk-array statistics accumulated during the run.
	Disk diskmodel.Stats
	// Trace lists scheduling actions in time order.
	Trace []TraceEvent
	// Frags maps task ID to its per-fragment execution summary.
	Frags map[int]FragStat
	// Events is this run's slice of the engine's structured trace
	// (empty when Engine.Trace is nil), sorted by virtual time.
	Events []obs.Event
	// Metrics is the metrics snapshot taken at the end of the run (zero
	// when Engine.Metrics is nil).
	Metrics obs.Snapshot
}

// taskDone is posted to the session mailbox when the last slave of a
// task exits.
type taskDone struct {
	task *core.Task
	rt   *runningTask
	err  error
}

// Run executes one pre-declared task set under the given policy and
// returns its report: it opens a scheduler session, submits the specs as
// a single query, waits for it, and drains. The calling goroutine is
// the client backend; under a virtual clock it must execute inside
// clock.Run (the xprs facade does this). An Engine runs one session at
// a time; use NewScheduler directly for online multi-query submission.
func (e *Engine) Run(specs []TaskSpec, policy core.Policy, opts core.Options) (*Report, error) {
	s := NewScheduler(e, policy, opts, AdmissionConfig{})
	h, err := s.Submit(specs)
	if err != nil {
		s.Drain()
		return nil, err
	}
	rep, err := h.Wait()
	if derr := s.Drain(); err == nil {
		err = derr
	}
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// driverFor picks the partitioner matching the fragment's driving leaf
// (§2.4: page partitioning for sequential scans, range partitioning for
// index scans, merge-range partitioning for merge joins).
func (e *Engine) driverFor(fr *fragRun) (driver, error) {
	leaf, kind := fr.driverInfo()
	switch kind {
	case plan.PageDriver:
		return newPageDriver(fr, leaf)
	case plan.RangeDriver:
		return newRangeDriver(fr, leaf)
	case plan.MergeDriver:
		return newMergeDriver(fr, leaf)
	default:
		return nil, fmt.Errorf("exec: unknown driver kind %v", kind)
	}
}
