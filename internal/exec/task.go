package exec

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"xprs/internal/core"
	"xprs/internal/obs"
	"xprs/internal/storage"
)

// driver is the partitioning strategy of one fragment's driving scan
// (§2.4): page partitioning, range partitioning, or merge-range
// partitioning. Implementations are stateless beyond construction; all
// mutable state lives in assignments and reports.
type driver interface {
	// initial splits the whole scan into degree assignments. An
	// assignment may be nil (more slaves than work); such slaves exit
	// immediately.
	initial(degree int) ([]assignment, error)
	// repartition redistributes the remaining work reported by paused
	// slaves over degree new assignments.
	repartition(remaining []report, degree int) ([]assignment, error)
	// run executes one slave over its (possibly re-assigned) work,
	// honoring the pause protocol through sc.checkpoint.
	run(sc *slaveCtx) error
}

// assignment is a driver-specific work share handed to one slave.
type assignment interface{}

// report is a driver-specific description of one paused slave's
// remaining work.
type report interface{}

// slaveState is the master-visible state of one slave backend.
type slaveState struct {
	slot    int
	assign  assignment
	pending assignment // next assignment, set by the master during a round
	// curProgress is published by the slave at every checkpoint so the
	// master can compute maxpage / remaining intervals.
	progress report
	reported bool
	done     bool
	reportCh chan struct{}
	resumeCh chan struct{}
	// startAt / obsTid back the slave's lifetime span in the trace.
	startAt time.Duration
	obsTid  int
}

// runningTask is one executing fragment: its slaves, degree, and the
// §2.4 adjustment protocol state.
type runningTask struct {
	eng  *Engine
	task *core.Task
	fr   *fragRun
	drv  driver

	mu        sync.Mutex
	slaves    map[int]*slaveState
	nextSlot  int
	degree    int
	round     bool // an adjustment round is active
	active    int  // number of live slaves
	completed bool // completion has been posted
	failure   error

	// Observability state (guarded by mu): run-relative launch time,
	// degree history and completed-adjustment count for FragStat.
	startAt time.Duration
	degrees []int
	reparts int
}

// fragStat summarizes the task's execution for Report.Frags.
func (rt *runningTask) fragStat(finish time.Duration) FragStat {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return FragStat{
		Name:         rt.task.Name,
		Start:        rt.startAt,
		Finish:       finish,
		Degrees:      slices.Clone(rt.degrees),
		Slaves:       rt.nextSlot,
		Repartitions: rt.reparts,
		TuplesIn:     rt.fr.statTuplesIn.Load(),
		TuplesOut:    rt.fr.statTuplesOut.Load(),
		Batches:      rt.fr.statBatches.Load(),
	}
}

// launch starts the task's slave backends at the given degree.
func (rt *runningTask) launch(degree int) error {
	assigns, err := rt.drv.initial(degree)
	if err != nil {
		return err
	}
	rt.mu.Lock()
	rt.degree = degree
	rt.degrees = append(rt.degrees, degree)
	for _, a := range assigns {
		if a == nil {
			continue
		}
		rt.spawnLocked(a)
	}
	empty := rt.active == 0
	rt.mu.Unlock()
	if empty {
		// Nothing to scan (empty relation): complete immediately.
		rt.complete(nil)
	}
	return nil
}

// spawnLocked registers and starts one slave goroutine. Caller holds
// rt.mu.
func (rt *runningTask) spawnLocked(a assignment) {
	sc := rt.eng.getSlaveCtx()
	s := &sc.stateVal
	*s = slaveState{slot: rt.nextSlot, assign: a}
	rt.nextSlot++
	rt.slaves[s.slot] = s
	rt.active++
	rt.eng.mSlaves.Inc()
	if rt.fr.tracing() {
		s.startAt = rt.eng.now()
		s.obsTid = rt.eng.Trace.Lane(obs.PidTasks, fmt.Sprintf("%s/s%d", rt.task.Name, s.slot))
	}
	sc.rt, sc.state = rt, s
	rt.eng.Clock.Go(sc.goFn)
}

// run is the slave goroutine body, pre-bound into goFn when the context
// is first created so a spawn allocates neither a closure nor scratch.
func (sc *slaveCtx) run() {
	rt, s := sc.rt, sc.state
	// Park before any side effect so simultaneously spawned slaves
	// touch the disk queues in a deterministic order.
	rt.eng.Clock.YieldOrdered(slaveKey(rt.task.ID, s.slot))
	err := rt.drv.run(sc)
	sc.flushAll()
	// The slave's state is embedded in the context, so the context can
	// only recycle once the master provably holds no reference: slaveExit
	// reports whether an adjustment round might still read the state.
	if rt.slaveExit(s, err) {
		rt.eng.putSlaveCtx(sc)
	}
}

// slaveExit removes a finished slave, feeding any active adjustment
// round and posting task completion when the last slave leaves. It
// returns whether the slave's state is safe to recycle: with no round
// active at removal the master cannot collect this slave as a
// participant anymore (it is out of rt.slaves), and a finished round
// never revisits its participants, so the state is unreferenced. During
// an active round the master may still read done/progress after the
// report signal, so the context is abandoned to the GC instead.
func (rt *runningTask) slaveExit(s *slaveState, err error) bool {
	rt.mu.Lock()
	if err != nil && rt.failure == nil {
		rt.failure = err
	}
	delete(rt.slaves, s.slot)
	rt.active--
	last := rt.active == 0 && !rt.completed
	if last {
		rt.completed = true
	}
	var reportCh chan struct{}
	if rt.round && !s.reported {
		s.reported = true
		s.done = true
		reportCh = s.reportCh
	}
	recycle := !rt.round
	failure := rt.failure
	rt.mu.Unlock()
	if rt.fr.tracing() {
		now := rt.eng.now()
		rt.eng.Trace.Span(s.startAt, now-s.startAt, obs.PidTasks, s.obsTid, "slave",
			fmt.Sprintf("%s/s%d", rt.task.Name, s.slot), "")
	}
	if reportCh != nil {
		rt.eng.Clock.Signal(reportCh)
	}
	if last {
		rt.complete(failure)
	}
	return recycle
}

// complete finalizes the fragment output and posts the completion event.
func (rt *runningTask) complete(err error) {
	if err == nil {
		rt.fr.finalize()
	}
	rt.eng.events.Post(taskDone{task: rt.task, rt: rt, err: err})
}

// adjust runs the §2.4 dynamic parallelism-adjustment protocol
// (Figures 5 and 6): signal all participating slaves, collect their
// progress, compute the new partition, and resume them under the new
// degree, starting or retiring slaves as needed. It is called only from
// the master backend.
func (rt *runningTask) adjust(newDegree int) error {
	rt.mu.Lock()
	if rt.active == 0 || rt.round {
		rt.mu.Unlock()
		return nil // task already finished (or being adjusted)
	}
	rt.round = true
	// Phase 1: the master "sends a signal to all participating slave
	// backends" — materialized as per-slave report/resume channels the
	// slaves observe at their next checkpoint. Participants are ordered
	// by slot: the repartition below assigns fresh strides by position,
	// and map iteration order must not leak into the partition.
	participants := make([]*slaveState, 0, len(rt.slaves))
	for _, s := range rt.slaves {
		s.reported = false
		s.done = false
		s.reportCh = make(chan struct{}, 1)
		s.resumeCh = make(chan struct{}, 1)
		participants = append(participants, s)
	}
	oldDegree := rt.degree
	slices.SortFunc(participants, func(a, b *slaveState) int { return a.slot - b.slot })
	rt.mu.Unlock()
	if rt.fr.tracing() {
		rt.fr.traceInstant("protocol", "adjust-signal", fmt.Sprintf(
			"degree %d → %d: pause signalled to %d slaves", oldDegree, newDegree, len(participants)))
	}

	// Phase 2: wait for every participant to report its progress (or
	// exit). Slaves blocked in a disk read report at their next page
	// boundary; virtual time advances underneath this wait.
	for _, s := range participants {
		rt.eng.Clock.WaitSignal(s.reportCh)
	}

	rt.mu.Lock()
	var remaining []report
	var live []*slaveState
	for _, s := range participants {
		if s.done {
			continue
		}
		remaining = append(remaining, s.progress)
		live = append(live, s)
	}
	if len(live) == 0 {
		// Everyone finished while we were collecting; nothing to adjust.
		rt.round = false
		rt.mu.Unlock()
		return nil
	}
	assigns, err := rt.drv.repartition(remaining, newDegree)
	if err != nil {
		// Abort the round: resume everyone with their old assignments.
		for _, s := range live {
			s.pending = s.assign
		}
		rt.round = false
		resumes := resumeChannels(live)
		rt.mu.Unlock()
		for _, ch := range resumes {
			rt.eng.Clock.Signal(ch)
		}
		return fmt.Errorf("exec: adjusting task %d: %w", rt.task.ID, err)
	}

	// Phase 3: hand the first len(live) non-nil assignments to the
	// surviving slaves (nil retires them) and spawn new slaves for the
	// rest.
	idx := 0
	for _, s := range live {
		if idx < len(assigns) {
			s.pending = assigns[idx]
			idx++
		} else {
			s.pending = nil // retire
		}
	}
	for ; idx < len(assigns); idx++ {
		if assigns[idx] != nil {
			rt.spawnLocked(assigns[idx])
		}
	}
	rt.degree = newDegree
	rt.degrees = append(rt.degrees, newDegree)
	rt.reparts++
	spawned := rt.nextSlot
	rt.round = false
	resumes := resumeChannels(live)
	rt.mu.Unlock()
	rt.eng.mReparts.Inc()
	if rt.fr.tracing() {
		rt.fr.traceInstant("protocol", "resume", fmt.Sprintf(
			"repartitioned over degree %d: %d surviving slaves resumed, %d slaves ever spawned",
			newDegree, len(live), spawned))
	}
	for _, ch := range resumes {
		rt.eng.Clock.Signal(ch)
	}
	return nil
}

func resumeChannels(live []*slaveState) []chan struct{} {
	out := make([]chan struct{}, len(live))
	for i, s := range live {
		out[i] = s.resumeCh
	}
	return out
}

// slaveKey builds a stable ordering identity for a slave goroutine.
func slaveKey(taskID, slot int) int64 {
	return int64(taskID)<<20 | int64(slot)
}

// Degree returns the task's current degree of parallelism.
func (rt *runningTask) Degree() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.degree
}

// slaveCtx is the per-slave execution context: CPU accounting, output
// buffering, batch scratch space, and the slave side of the adjustment
// protocol.
type slaveCtx struct {
	rt    *runningTask
	state *slaveState

	// stateVal is the embedded backing for state: one spawn's
	// master-visible slave state rides in the pooled context instead of
	// a per-spawn heap allocation. See slaveExit for when it may be
	// reused.
	stateVal slaveState

	// goFn is the slave goroutine body bound to this context once at
	// creation; pooled contexts hand the same func value to Clock.Go on
	// every reuse, so spawning allocates no closure.
	goFn func()

	// cpuDebtPs is accumulated CPU picoseconds not yet slept. Debt is
	// integral so that total slept time is a pure function of the total
	// charge, however the charges were grouped into batches: flushes
	// sleep whole nanoseconds and carry the sub-nanosecond remainder.
	cpuDebtPs int64
	outBuf    []storage.Tuple
	// aggLocal is this slave's private accumulator table when the
	// fragment root is an Agg (two-phase parallel aggregation).
	aggLocal map[int32][]int64
	// aggSlab backs aggLocal's accumulators: groups slice out of shared
	// chunks instead of allocating per group. Full chunks are simply
	// abandoned to the live accumulators and a fresh one started.
	aggSlab []int64
	// arenas are per-emitting-operator value arenas (slot indexes are
	// assigned at pipeline compile time). Compiled closures are shared
	// by every slave of the fragment, so their mutable scratch lives
	// here.
	arenas [][]storage.Value
	// pageBuf is the reusable tuple buffer for generator-backed page
	// reads; physical pages come from the relation's decode cache
	// instead.
	pageBuf []storage.Tuple
	// hb is this slave's private hash-table builder when the fragment
	// output is a hash table: batches partition without locking, and
	// flushAll publishes the buffers at slave exit.
	hb *Builder
	// probes are per-hash-join probe scratch buffers (slot indexes are
	// assigned at pipeline compile time, like arenas).
	probes []probeScratch

	// Columnar-pipeline scratch. colPageBuf is the reusable decode target
	// for generator-backed page reads; colView/colViewVecs back the
	// sub-batch views the driver slices a fetched page into; tempView/
	// tempVecs back temp-chunk views the same way.
	colPageBuf  *storage.ColBatch
	colView     storage.ColBatch
	colViewVecs []storage.Vec
	tempView    storage.ColBatch
	tempVecs    []storage.Vec
	// sels holds two selection-scratch buffers per filter slot (the
	// ping-pong pair); colOuts holds one output batch per emitting slot.
	sels    [][]int32
	colOuts []*storage.ColBatch
	// colHb is the columnar twin of hb; colHbScratch is its pooled
	// backing storage (builderIn re-targets it per table, keeping the
	// partition-buffer slice).
	colHb        *ColBuilder
	colHbScratch ColBuilder
	// aggDense is this slave's dense aggregation window (with aggBase its
	// anchor); aggSrc is per-function source-vector scratch.
	aggDense *denseScratch
	aggBase  int32
	aggSrc   [][]int32
	// inflightQ is the page driver's readahead queue scratch.
	inflightQ []inflight
}

// reset clears the context for pooling: references to the finished run
// drop, capacity-bearing scratch survives. The aggregation slab must
// not survive — mergeInto adopts slab-backed accumulator slices into
// the fragment's shared state.
func (sc *slaveCtx) reset() {
	sc.rt, sc.state = nil, nil
	sc.stateVal = slaveState{}
	sc.cpuDebtPs = 0
	sc.outBuf = sc.outBuf[:0]
	sc.aggLocal = nil
	sc.aggSlab = nil
	for i := range sc.arenas {
		sc.arenas[i] = sc.arenas[i][:0]
	}
	sc.pageBuf = sc.pageBuf[:0]
	sc.hb = nil
	for i := range sc.probes {
		p := &sc.probes[i]
		p.matches = p.matches[:0]
		p.vals = p.vals[:0]
		p.tuples = p.tuples[:0]
	}
	// colPageBuf is retained: fetchCols re-Inits it per relation schema.
	sc.colView = storage.ColBatch{}
	sc.tempView = storage.ColBatch{}
	clear(sc.colViewVecs)
	clear(sc.tempVecs)
	sc.colHb = nil
	sc.colHbScratch.ht = nil
	sc.aggDense = nil
	sc.aggBase = 0
	sc.inflightQ = sc.inflightQ[:0]
}

// probeScratch is one hash join's per-slave batch-probe buffer. vals and
// tuples are the materialization slabs of the columnar-build bridge.
type probeScratch struct {
	matches [][]storage.Tuple
	vals    []storage.Value
	tuples  []storage.Tuple
}

// selScratch returns pointers to the slot's two selection buffers.
func (sc *slaveCtx) selScratch(slot int) (*[]int32, *[]int32) {
	for len(sc.sels) < 2*(slot+1) {
		sc.sels = append(sc.sels, nil)
	}
	return &sc.sels[2*slot], &sc.sels[2*slot+1]
}

// colOutBatch returns the slot's output batch, creating it from the
// engine pool (with the dead columns pruned) on first use.
func (sc *slaveCtx) colOutBatch(slot int, eng *Engine, s storage.Schema, prune []int) *storage.ColBatch {
	for len(sc.colOuts) <= slot {
		sc.colOuts = append(sc.colOuts, nil)
	}
	if sc.colOuts[slot] == nil {
		sc.colOuts[slot] = eng.getColBatchPruned(s, eng.batchSize(), prune)
	}
	return sc.colOuts[slot]
}

// probeColTable resolves a batch of probe tuples against a columnar
// build table, materializing the match rows into the probe scratch's
// slabs. The per-key slices stay valid until the scratch's next use;
// value and tuple slabs may grow mid-batch, in which case earlier slices
// keep their old backing alive.
func (sc *slaveCtx) probeColTable(cht *ColHashTable, lts []storage.Tuple, col int, ps *probeScratch) ([][]storage.Tuple, error) {
	matches := ps.matches[:0]
	ps.vals = ps.vals[:0]
	ps.tuples = ps.tuples[:0]
	for i := range lts {
		if col < 0 || col >= len(lts[i].Vals) {
			return matches, fmt.Errorf("exec: probe column %d out of range (tuple has %d)", col, len(lts[i].Vals))
		}
		store, start, cnt := cht.ProbeKey(lts[i].Vals[col].Int)
		var ms []storage.Tuple
		if cnt > 0 {
			ncols := len(store.Vecs)
			tstart := len(ps.tuples)
			for m := int32(0); m < cnt; m++ {
				row := int(start + m)
				vstart := len(ps.vals)
				for c := 0; c < ncols; c++ {
					ps.vals = append(ps.vals, store.Value(c, row))
				}
				ps.tuples = append(ps.tuples, storage.Tuple{Vals: ps.vals[vstart:len(ps.vals):len(ps.vals)]})
			}
			ms = ps.tuples[tstart:len(ps.tuples):len(ps.tuples)]
		}
		matches = append(matches, ms)
	}
	return matches, nil
}

// probeScratch returns the scratch of a probe slot, growing the table
// on first use.
func (sc *slaveCtx) probeScratch(slot int) *probeScratch {
	for len(sc.probes) <= slot {
		sc.probes = append(sc.probes, probeScratch{})
	}
	return &sc.probes[slot]
}

// getBatch and putBatch hand batch scratch buffers through the engine
// pool.
func (sc *slaveCtx) getBatch() *[]storage.Tuple  { return sc.rt.eng.getBatch() }
func (sc *slaveCtx) putBatch(b *[]storage.Tuple) { sc.rt.eng.putBatch(b) }

// arenaMark returns the current fill of arena slot; arenaTrunc rolls it
// back to a mark; arenaReset empties it. A reset (or trunc) is only
// legal once no live tuple references the region — i.e. after the batch
// built from it has been fully consumed downstream.
func (sc *slaveCtx) arenaMark(slot int) int {
	if slot < len(sc.arenas) {
		return len(sc.arenas[slot])
	}
	return 0
}

func (sc *slaveCtx) arenaTrunc(slot, mark int) {
	if slot < len(sc.arenas) {
		sc.arenas[slot] = sc.arenas[slot][:mark]
	}
}

func (sc *slaveCtx) arenaReset(slot int) {
	if slot < len(sc.arenas) {
		sc.arenas[slot] = sc.arenas[slot][:0]
	}
}

// arenaConcat builds the concatenation of l and r with its Vals sliced
// out of the slot's arena. If the arena grows mid-batch the old backing
// stays alive through the tuples already built from it, so previously
// returned tuples remain valid until the next reset.
func (sc *slaveCtx) arenaConcat(slot int, l, r storage.Tuple) storage.Tuple {
	for len(sc.arenas) <= slot {
		sc.arenas = append(sc.arenas, nil)
	}
	a := sc.arenas[slot]
	start := len(a)
	a = append(a, l.Vals...)
	a = append(a, r.Vals...)
	sc.arenas[slot] = a
	return storage.Tuple{Vals: a[start:len(a):len(a)]}
}

// checkpoint is called by drivers at safe pause points (page boundaries
// for page partitioning, key boundaries for range partitioning). It
// publishes progress, and if the master has signalled an adjustment
// round it reports and blocks until resumed. The return value is the
// slave's assignment to continue with; nil means the slave was retired
// (or its work is exhausted) and must exit.
func (sc *slaveCtx) checkpoint(progress report) assignment {
	rt := sc.rt
	rt.mu.Lock()
	s := sc.state
	s.progress = progress
	if !rt.round || s.reported {
		a := s.assign
		rt.mu.Unlock()
		return a
	}
	// Participate in the round: flush buffered CPU/output first so the
	// master's view of virtual time is consistent.
	s.reported = true
	reportCh := s.reportCh
	resumeCh := s.resumeCh
	rt.mu.Unlock()

	sc.flushCPU()
	rt.eng.Clock.Signal(reportCh)
	rt.eng.Clock.WaitSignal(resumeCh)
	// All participants are released together; park so they reorder
	// deterministically before touching the disks again.
	rt.eng.Clock.YieldOrdered(slaveKey(rt.task.ID, sc.state.slot))

	rt.mu.Lock()
	s.assign = s.pending
	s.pending = nil
	a := s.assign
	rt.mu.Unlock()
	return a
}

// pausePending reports whether the master has opened an adjustment
// round this slave has not answered yet; drivers stop refilling their
// readahead queues and head for the next safe point when it turns true.
func (sc *slaveCtx) pausePending() bool {
	rt := sc.rt
	rt.mu.Lock()
	p := rt.round && !sc.state.reported
	rt.mu.Unlock()
	return p
}

// chargeCPU accrues seconds of CPU work, sleeping when the debt passes
// the engine's charge quantum (batching keeps the event count low).
// picosPerSecond converts charge amounts to the integral debt unit.
const picosPerSecond = 1e12

func (sc *slaveCtx) chargeCPU(seconds float64) {
	sc.addCPUDebt(int64(seconds*picosPerSecond + 0.5))
}

// chargeCPUPer charges a per-tuple cost n times. The unit is quantized
// before multiplying, so the total is identical however the n tuples
// were split into batches.
func (sc *slaveCtx) chargeCPUPer(seconds float64, n int) {
	sc.addCPUDebt(int64(seconds*picosPerSecond+0.5) * int64(n))
}

func (sc *slaveCtx) addCPUDebt(ps int64) {
	sc.cpuDebtPs += ps
	if sc.cpuDebtPs >= sc.rt.eng.cpuQuantumPs {
		sc.flushCPU()
	}
}

func (sc *slaveCtx) flushCPU() {
	if ns := sc.cpuDebtPs / 1000; ns > 0 {
		sc.cpuDebtPs -= ns * 1000
		sc.rt.eng.Clock.Sleep(time.Duration(ns))
	}
}

// bufferBatch queues a batch of output tuples, flushing to the shared
// temp one lock round-trip per batch. The buffer is reused after each
// flush (Temp.Append copies the tuple structs out).
func (sc *slaveCtx) bufferBatch(ts []storage.Tuple) {
	if sc.outBuf == nil {
		sc.outBuf = make([]storage.Tuple, 0, sc.rt.eng.batchSize())
	}
	sc.outBuf = append(sc.outBuf, ts...)
	if len(sc.outBuf) >= sc.rt.eng.batchSize() {
		sc.flushOut()
	}
}

func (sc *slaveCtx) flushOut() {
	if len(sc.outBuf) == 0 {
		return
	}
	if sc.rt.fr.outTemp != nil {
		sc.rt.fr.outTemp.Append(sc.outBuf)
	}
	sc.outBuf = sc.outBuf[:0]
}

// flushAll drains all buffers at slave exit, merging aggregation
// partials into the fragment's shared state and recycling the slave's
// columnar scratch through the engine pools.
func (sc *slaveCtx) flushAll() {
	eng := sc.rt.eng
	if sc.rt.fr.agg != nil {
		if sc.aggLocal != nil {
			sc.rt.fr.agg.mergeInto(sc.aggLocal)
			sc.aggLocal = nil
		}
		if sc.aggDense != nil {
			if !sc.rt.fr.agg.mergeDense(sc.aggBase, sc.aggDense) {
				eng.putDense(sc.aggDense)
			}
			sc.aggDense = nil
		}
	}
	if sc.hb != nil {
		sc.hb.Flush()
		sc.hb = nil
	}
	if sc.colHb != nil {
		sc.colHb.Flush()
		sc.colHb = nil
	}
	sc.flushOut()
	sc.flushCPU()
	// colPageBuf stays with the context (it re-Inits per schema); the
	// per-slot output batches are fragment-shaped and go back to their
	// shape pools.
	for i, b := range sc.colOuts {
		if b != nil {
			eng.putColBatch(b)
			sc.colOuts[i] = nil
		}
	}
}
