package exec

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"xprs/internal/core"
	"xprs/internal/obs"
	"xprs/internal/plan"
	"xprs/internal/vclock"
)

// This file is the long-lived scheduler service: the §2.5 "continuous
// sequence of tasks" execution model. Where the original Engine.Run
// accepted one pre-declared task set and blocked until it drained, a
// Scheduler stays alive across queries: clients Submit work at any time
// (each Submit is one query — a set of dependent task specs), the
// controller re-solves the IO/CPU balance point on every arrival and
// completion, and each query's caller Waits on its own QueryHandle. An
// admission controller sits in front of the §2.5 S_io/S_cpu queues:
// queries that would blow the memory budget (or the concurrent-query
// cap) wait in a FIFO admission queue, and the time they spend there is
// reported as Report.QueueWait and as instants on the scheduler's trace
// lane.

// AdmissionConfig gates whole queries before their tasks reach the
// controller's S_io/S_cpu queues. This is coarser than — and composes
// with — core.Options.MemoryBudget, which vetoes pairing two admitted
// memory-hungry tasks side by side.
type AdmissionConfig struct {
	// MemoryBudget caps the combined MemBytes of every task of all
	// admitted (running or controller-queued) queries; 0 disables the
	// constraint. A query too big for the budget on an idle system is
	// still admitted alone — like the §5 memory rule, the constraint only
	// gates adding more work.
	MemoryBudget int64
	// MaxQueries caps the number of concurrently admitted queries; 0
	// disables the constraint.
	MaxQueries int
}

// QueryHandle is a client's ticket for one submitted query.
type QueryHandle struct {
	id    int
	sched *Scheduler
	done  chan struct{}

	mu      sync.Mutex
	settled bool
	rep     *Report
	err     error
}

// ID returns the scheduler-assigned query ID.
func (h *QueryHandle) ID() int { return h.id }

// Wait blocks (accounted to the clock) until the query completes and
// returns its Report. At most one goroutine may block in Wait per
// handle; once the first Wait returns, further calls return immediately
// with the same result.
func (h *QueryHandle) Wait() (*Report, error) {
	h.mu.Lock()
	if h.settled {
		rep, err := h.rep, h.err
		h.mu.Unlock()
		return rep, err
	}
	h.mu.Unlock()
	h.sched.eng.Clock.WaitSignal(h.done)
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rep, h.err
}

// settle publishes the query outcome and wakes the waiter. Signal
// latches, so a settle before the first Wait is not lost.
func (h *QueryHandle) settle(rep *Report, err error) {
	h.mu.Lock()
	h.settled = true
	h.rep, h.err = rep, err
	h.mu.Unlock()
	h.sched.eng.Clock.Signal(h.done)
}

// query is the master-side state of one submitted query.
type query struct {
	id     int
	handle *QueryHandle
	specs  map[int]*TaskSpec
	ids    []int // task IDs in ascending order
	mem    int64 // sum of task MemBytes, the admission charge

	submitRel time.Duration // session-relative submission instant
	admitRel  time.Duration
	admitted  bool
	traceMark int

	arrived   map[int]bool
	submitted map[int]bool // handed to the controller
	done      map[int]bool
	started   int // tasks handed to the controller
	finished  int // completions observed (real or synthesized)
	failed    error

	// frs are the fragment runtimes this query started; they return to
	// the engine's compiled-runtime pool when the query settles (every
	// slave has exited by then, so nothing references them).
	frs []*fragRun

	rep *Report
}

// complete reports whether nothing the controller owns is still pending.
// A healthy query finishes when every task is done; a failed one once
// every task already handed to the controller has drained (tasks never
// submitted stay unrun).
func (q *query) complete() bool {
	if q.failed != nil {
		return q.finished == q.started
	}
	return q.finished == len(q.specs)
}

// Events posted to the scheduler's mailbox (taskDone, posted by slave
// exits, is declared next to the running-task machinery in engine.go).
type submitMsg struct{ q *query }

type drainMsg struct{ ack chan struct{} }

// arrivalTick carries the session generation that scheduled it: a
// poisoned query can settle with its arrival timers still pending, and
// a recycled session must not mistake such a stale tick (same mailbox,
// possibly a reused query ID) for its own.
type arrivalTick struct{ gen, qid, id int }

// Scheduler is the persistent scheduling service. Create one with
// NewScheduler (which spawns the master backend on a clock-registered
// goroutine), Submit queries from any clock-registered goroutine, and
// Drain before leaving the clock's scope. An Engine hosts at most one
// live Scheduler at a time.
type Scheduler struct {
	eng *Engine
	ctl *core.Controller
	adm AdmissionConfig

	events *vclock.Mailbox
	start  time.Duration
	// gen counts the sessions this (pooled) scheduler has served; loopFn
	// is the master-loop body bound once at creation.
	gen    int
	loopFn func()

	// mu guards the client-facing state (query-ID allocation, live task
	// IDs, the drained flag) and orders client Posts against Drain's.
	mu      sync.Mutex
	nextQID int
	closed  bool
	liveIDs map[int]int // task ID -> query ID, for cross-query collisions
	// qFree recycles query bookkeeping (spec/arrival/completion maps)
	// across queries; guarded by mu because Submit runs on client
	// goroutines while finishQuery recycles on the master loop.
	qFree []*query

	// Master-owned state (touched only by the loop goroutine).
	queries   map[int]*query
	byTask    map[int]*query
	admitQ    []*query // FIFO admission queue
	nAdmitted int
	memInUse  int64
	inflight  int
	running   map[int]*runningTask
	temps     map[*plan.Fragment]*Temp
	hashes    map[*plan.Fragment]*HashTable
	colHashes map[*plan.Fragment]*ColHashTable
	draining  bool
	drainAck  chan struct{}

	// Admission observability (nil when metrics are off; methods no-op).
	gQDepthIO *obs.Gauge
	gQDepthCP *obs.Gauge
	gAdmitQ   *obs.Gauge
	gInflight *obs.Gauge
	hWaitUs   *obs.Histogram
}

// NewScheduler starts a scheduler service on the engine. The engine's
// disk statistics are reset and its observability hooks re-anchored at
// the session start, exactly as the one-shot Engine.Run used to do per
// run; a session therefore reports Disk statistics cumulative from its
// own start.
func NewScheduler(e *Engine, policy core.Policy, opts core.Options, adm AdmissionConfig) *Scheduler {
	if e.sched != nil {
		panic("exec: engine already hosts a live scheduler (Drain the previous one first)")
	}
	s := e.schedFree
	e.schedFree = nil
	if s == nil {
		s = &Scheduler{
			eng:       e,
			events:    vclock.NewMailbox(e.Clock),
			liveIDs:   make(map[int]int),
			queries:   make(map[int]*query),
			byTask:    make(map[int]*query),
			running:   make(map[int]*runningTask),
			temps:     make(map[*plan.Fragment]*Temp),
			hashes:    make(map[*plan.Fragment]*HashTable),
			colHashes: make(map[*plan.Fragment]*ColHashTable),
		}
		s.loopFn = s.loop
	} else {
		s.resetSession()
	}
	s.gen++
	s.ctl = core.NewController(e.Env, policy, opts)
	s.adm = adm
	e.sched = s
	e.events = s.events
	e.Store.Disks.ResetStats()
	s.start = e.Clock.Now()
	e.runStart = s.start
	e.schedTid = e.Trace.Lane(obs.PidSched, "master")
	e.mBatches = e.Metrics.Counter("exec.batches")
	e.mTuples = e.Metrics.Counter("exec.tuples_in")
	e.mReparts = e.Metrics.Counter("exec.repartitions")
	e.mSlaves = e.Metrics.Counter("exec.slaves_spawned")
	e.mTasks = e.Metrics.Counter("exec.tasks_completed")
	e.mSelIn = e.Metrics.Counter("exec.sel_rows_in")
	e.mSelOut = e.Metrics.Counter("exec.sel_rows_out")
	e.hTaskUs = e.Metrics.Histogram("exec.task_micros")
	e.Store.Disks.SetObserver(e.Trace, e.Metrics, s.start)
	e.Store.RegisterMetrics(e.Metrics)
	s.gQDepthIO = e.Metrics.Gauge("sched.queue_depth_io")
	s.gQDepthCP = e.Metrics.Gauge("sched.queue_depth_cpu")
	s.gAdmitQ = e.Metrics.Gauge("sched.admission_queued")
	s.gInflight = e.Metrics.Gauge("sched.queries_running")
	s.hWaitUs = e.Metrics.Histogram("sched.queue_wait_micros")
	e.Clock.Go(s.loopFn)
	return s
}

// resetSession readies a drained scheduler for another session. Every
// collection is already empty after a clean Drain (the loop only exits
// with no queries in flight); the clears are insurance against a
// poisoned session leaving residue, and keep map capacity either way.
func (s *Scheduler) resetSession() {
	s.nextQID = 0
	s.closed = false
	clear(s.liveIDs)
	clear(s.queries)
	clear(s.byTask)
	s.admitQ = s.admitQ[:0]
	s.nAdmitted = 0
	s.memInUse = 0
	s.inflight = 0
	clear(s.running)
	clear(s.temps)
	clear(s.hashes)
	clear(s.colHashes)
	s.draining = false
	s.drainAck = nil
}

// now returns session-relative virtual time.
func (s *Scheduler) now() time.Duration { return s.eng.Clock.Now() - s.start }

// Submit registers one query — a set of dependent task specs — with the
// service and returns its handle. Validation errors are synchronous; the
// query itself is admitted and executed asynchronously. Task IDs must be
// unique within the query and against every in-flight query. A spec's
// Arrival is relative to the query's admission instant (zero, the
// common case for online submission, means "run as soon as admitted").
func (s *Scheduler) Submit(specs []TaskSpec) (*QueryHandle, error) {
	q := s.getQuery()
	byID := q.specs
	ids := q.ids[:0]
	var mem int64
	for i := range specs {
		sp := &specs[i]
		if sp.Task == nil || sp.Frag == nil {
			s.putQuery(q)
			return nil, fmt.Errorf("exec: spec %d missing task or fragment", i)
		}
		if _, dup := byID[sp.Task.ID]; dup {
			s.putQuery(q)
			return nil, fmt.Errorf("exec: duplicate task ID %d", sp.Task.ID)
		}
		byID[sp.Task.ID] = sp
		ids = append(ids, sp.Task.ID)
		mem += sp.Task.MemBytes
	}
	for _, sp := range byID {
		for _, dep := range sp.DependsOn {
			if _, ok := byID[dep]; !ok {
				s.putQuery(q)
				return nil, fmt.Errorf("exec: task %d depends on unknown %d", sp.Task.ID, dep)
			}
		}
	}
	slices.Sort(ids)

	q.ids = ids
	q.mem = mem
	// The report and handle escape to the caller, so they are the one
	// per-query allocation that cannot recycle.
	q.rep = &Report{
		Finish:  make(map[int]time.Duration),
		Results: make(map[int]*Temp),
		Frags:   make(map[int]FragStat),
	}

	// Register and post under mu: a Submit that passes the closed check
	// must enqueue its message ahead of Drain's, or the loop could exit
	// with the query unprocessed and strand the waiter.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("exec: scheduler is drained")
	}
	for _, id := range ids {
		if qid, live := s.liveIDs[id]; live {
			s.mu.Unlock()
			return nil, fmt.Errorf("exec: task ID %d already live in query %d", id, qid)
		}
	}
	q.id = s.nextQID
	s.nextQID++
	for _, id := range ids {
		s.liveIDs[id] = q.id
	}
	q.traceMark = s.eng.Trace.Mark()
	q.handle = &QueryHandle{id: q.id, sched: s, done: make(chan struct{}, 1)}
	s.events.Post(submitMsg{q: q})
	s.mu.Unlock()
	return q.handle, nil
}

// getQuery hands out recycled query bookkeeping; putQuery clears and
// reclaims it. A query recycles when it settles (finishQuery) — its
// handle and report have escaped to the caller by then and are detached
// first — or when Submit rejects it before registration.
func (s *Scheduler) getQuery() *query {
	s.mu.Lock()
	var q *query
	if n := len(s.qFree); n > 0 {
		q = s.qFree[n-1]
		s.qFree = s.qFree[:n-1]
	}
	s.mu.Unlock()
	if q == nil {
		q = &query{specs: make(map[int]*TaskSpec)}
	}
	return q
}

func (s *Scheduler) putQuery(q *query) {
	clear(q.specs)
	q.ids = q.ids[:0]
	q.mem = 0
	q.submitRel, q.admitRel = 0, 0
	q.admitted = false
	q.traceMark = 0
	clear(q.arrived)
	clear(q.submitted)
	clear(q.done)
	q.started, q.finished = 0, 0
	q.failed = nil
	q.frs = nil
	q.rep = nil
	q.handle = nil
	q.id = 0
	s.mu.Lock()
	s.qFree = append(s.qFree, q)
	s.mu.Unlock()
}

// Drain blocks until every submitted query has completed, then stops the
// master loop and releases the engine for a future session. The
// scheduler accepts no submissions afterwards; calls after the first
// return immediately.
func (s *Scheduler) Drain() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ack := make(chan struct{}, 1)
	s.events.Post(drainMsg{ack: ack})
	s.mu.Unlock()
	s.eng.Clock.WaitSignal(ack)
	s.eng.sched = nil
	// The loop goroutine has exited; park the session (maps, mailbox,
	// admission queue keep their capacity) for the next NewScheduler.
	s.eng.schedFree = s
	return nil
}

// loop is the master backend: the single consumer of the event mailbox
// and the only goroutine that touches the controller.
func (s *Scheduler) loop() {
	for {
		if s.draining && s.inflight == 0 {
			break
		}
		switch ev := s.events.Wait().(type) {
		case submitMsg:
			s.onSubmit(ev.q)
		case arrivalTick:
			if ev.gen != s.gen {
				break // stale timer from a drained session
			}
			if q, ok := s.queries[ev.qid]; ok {
				q.arrived[ev.id] = true
				s.submitReady()
			}
		case taskDone:
			s.onTaskDone(ev)
		case drainMsg:
			s.draining = true
			s.drainAck = ev.ack
		default:
			panic(fmt.Sprintf("exec: unexpected event %T", ev))
		}
	}
	if s.drainAck != nil {
		s.eng.Clock.Signal(s.drainAck)
	}
}

// onSubmit records a freshly submitted query and either admits it or
// parks it in the admission queue.
func (s *Scheduler) onSubmit(q *query) {
	q.submitRel = s.now()
	if q.arrived == nil {
		q.arrived = make(map[int]bool, len(q.ids))
		q.submitted = make(map[int]bool, len(q.ids))
		q.done = make(map[int]bool, len(q.ids))
	}
	s.queries[q.id] = q
	for _, id := range q.ids {
		s.byTask[id] = q
	}
	s.inflight++
	s.gInflight.Set(int64(s.inflight))
	if s.eng.Trace != nil {
		s.eng.schedEvent("submit", fmt.Sprintf(
			"query %d: %d tasks, %d B working set", q.id, len(q.ids), q.mem))
	}
	if s.admits(q) {
		s.admit(q)
		return
	}
	s.admitQ = append(s.admitQ, q)
	s.gAdmitQ.Set(int64(len(s.admitQ)))
	if s.eng.Trace != nil {
		s.eng.schedEvent("admission-wait", fmt.Sprintf(
			"query %d queued: %d B in use of %d budget, %d/%d queries admitted",
			q.id, s.memInUse, s.adm.MemoryBudget, s.nAdmitted, s.adm.MaxQueries))
	}
}

// admits reports whether the query fits the admission budget right now.
// Like the §5 memory rule, a lone query always fits: the constraint only
// gates adding work next to what is already admitted.
func (s *Scheduler) admits(q *query) bool {
	if s.nAdmitted == 0 {
		return true
	}
	if s.adm.MaxQueries > 0 && s.nAdmitted >= s.adm.MaxQueries {
		return false
	}
	if s.adm.MemoryBudget > 0 && s.memInUse+q.mem > s.adm.MemoryBudget {
		return false
	}
	return true
}

// admit moves a query past the admission controller: stamps its
// queue-wait, registers its arrival timers, and hands its ready tasks to
// the controller.
func (s *Scheduler) admit(q *query) {
	q.admitted = true
	q.admitRel = s.now()
	s.nAdmitted++
	s.memInUse += q.mem
	wait := q.admitRel - q.submitRel
	s.hWaitUs.Observe(int64(wait / time.Microsecond))
	if s.eng.Trace != nil {
		if wait > 0 {
			s.eng.schedEvent("admit", fmt.Sprintf(
				"query %d admitted after %v in the admission queue", q.id, wait))
		} else {
			s.eng.schedEvent("admit", fmt.Sprintf("query %d admitted immediately", q.id))
		}
	}
	// Arrival timers post ticks through the mailbox, exactly as the
	// one-shot batch path registered them. Iterate in ID order so timer
	// registration order — and therefore equal-instant tie-breaking in
	// the virtual clock's timer heap — is deterministic.
	for _, id := range q.ids {
		sp := q.specs[id]
		if sp.Arrival <= 0 {
			q.arrived[id] = true
			continue
		}
		at := s.eng.Clock.Now() + sp.Arrival
		gen, qid, tid := s.gen, q.id, id
		s.eng.Clock.Go(func() {
			if v, ok := s.eng.Clock.(*vclock.Virtual); ok {
				v.SleepUntil(at)
			} else {
				s.eng.Clock.Sleep(at - s.eng.Clock.Now())
			}
			s.events.Post(arrivalTick{gen: gen, qid: qid, id: tid})
		})
	}
	if len(q.specs) == 0 {
		// Degenerate empty query: complete on the spot.
		s.finishQuery(q)
		return
	}
	s.submitReady()
}

// ready reports whether a task can be handed to the controller.
func (s *Scheduler) ready(q *query, sp *TaskSpec) bool {
	if q.failed != nil || !q.admitted {
		return false
	}
	id := sp.Task.ID
	if q.submitted[id] || !q.arrived[id] {
		return false
	}
	for _, dep := range sp.DependsOn {
		if !q.done[dep] {
			return false
		}
	}
	return true
}

// submitReady hands every newly ready task — across all admitted
// queries, in global task-ID order — to the controller in one batch and
// applies the resulting decision.
func (s *Scheduler) submitReady() {
	ids := make([]int, 0, len(s.byTask))
	for id := range s.byTask {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	var batch []*core.Task
	for _, id := range ids {
		q := s.byTask[id]
		if sp := q.specs[id]; s.ready(q, sp) {
			q.submitted[id] = true
			q.started++
			batch = append(batch, sp.Task)
		}
	}
	if len(batch) == 0 {
		return
	}
	s.apply(s.ctl.Submit(batch...))
}

// observeQueues publishes the controller's S_io/S_cpu depths as gauges.
func (s *Scheduler) observeQueues() {
	if s.eng.Metrics == nil {
		return
	}
	nio, ncpu := s.ctl.QueueLengths()
	s.gQDepthIO.Set(int64(nio))
	s.gQDepthCP.Set(int64(ncpu))
}

// apply executes a controller decision: adjust running tasks, launch
// started ones. A failure poisons the owning query rather than the whole
// service.
func (s *Scheduler) apply(d core.Decision) {
	e := s.eng
	defer s.observeQueues()
	if e.Trace != nil {
		for _, n := range d.Notes {
			e.schedEvent(n.Kind, fmt.Sprintf("task %d: %s", n.TaskID, n.Detail))
		}
	}
	for _, a := range d.Adjusts {
		rt := s.running[a.Task.ID]
		if rt == nil {
			s.poison(s.byTask[a.Task.ID], fmt.Errorf("exec: adjust for task %d which is not running", a.Task.ID))
			continue
		}
		q := s.byTask[a.Task.ID]
		q.rep.Trace = append(q.rep.Trace, TraceEvent{Time: s.now(), Kind: "adjust", TaskID: a.Task.ID, Degree: a.Degree, Reason: a.Reason})
		if e.Trace != nil {
			e.schedEvent("adjust", fmt.Sprintf("task %d to degree %d: %s", a.Task.ID, a.Degree, a.Reason))
		}
		if err := rt.adjust(a.Degree); err != nil {
			// The round was aborted; the slaves keep running with their old
			// assignments and will still post a completion.
			s.poison(q, err)
		}
	}
	for _, st := range d.Starts {
		q := s.byTask[st.Task.ID]
		spec := q.specs[st.Task.ID]
		fr, err := e.getFragRun(spec.Frag, s.temps, s.hashes, s.colHashes)
		if err != nil {
			s.abortStart(q, st.Task, err)
			continue
		}
		q.frs = append(q.frs, fr)
		drv, err := e.driverFor(fr)
		if err != nil {
			s.abortStart(q, st.Task, err)
			continue
		}
		fr.obsTid = e.Trace.Lane(obs.PidTasks, st.Task.Name)
		rt := &runningTask{eng: e, task: st.Task, fr: fr, drv: drv, slaves: make(map[int]*slaveState), startAt: e.now()}
		s.running[st.Task.ID] = rt
		q.rep.Trace = append(q.rep.Trace, TraceEvent{Time: s.now(), Kind: "start", TaskID: st.Task.ID, Degree: st.Degree, Reason: st.Reason})
		if e.Trace != nil {
			e.schedEvent("start", fmt.Sprintf("task %d (%s) at degree %d: %s", st.Task.ID, st.Task.Name, st.Degree, st.Reason))
		}
		if err := rt.launch(st.Degree); err != nil {
			// launch only fails before any slave spawns, so no completion
			// will ever be posted for this task.
			delete(s.running, st.Task.ID)
			s.abortStart(q, st.Task, err)
		}
	}
}

// poison marks a query failed with the first error observed. Tasks it
// already handed to the controller drain normally; unsubmitted ones
// never run.
func (s *Scheduler) poison(q *query, err error) {
	if q != nil && q.failed == nil {
		q.failed = err
	}
}

// abortStart handles a task the controller just started but which could
// never launch a slave: no completion event will arrive, so it
// synthesizes one to keep the controller's running-set bookkeeping (and
// the query's drain accounting) consistent.
func (s *Scheduler) abortStart(q *query, t *core.Task, err error) {
	s.poison(q, err)
	q.done[t.ID] = true
	q.finished++
	s.apply(s.ctl.Complete(t))
	s.settleIfComplete(q)
}

// onTaskDone is the completion path: bookkeeping, output publication,
// controller notification, admission of waiting queries, and new-task
// submission — in the same order the one-shot loop used.
func (s *Scheduler) onTaskDone(ev taskDone) {
	e := s.eng
	id := ev.task.ID
	q := s.byTask[id]
	if q == nil || q.done[id] {
		return
	}
	if ev.err != nil {
		s.poison(q, fmt.Errorf("exec: task %d failed: %w", id, ev.err))
	}
	q.done[id] = true
	q.finished++
	delete(s.running, id)
	now := s.now()
	if ev.err == nil {
		q.rep.Finish[id] = now
		q.rep.Trace = append(q.rep.Trace, TraceEvent{Time: now, Kind: "complete", TaskID: id, Degree: 0})
		st := ev.rt.fragStat(now)
		q.rep.Frags[id] = st
		e.mTasks.Inc()
		e.hTaskUs.Observe(int64(st.Elapsed() / time.Microsecond))
		if e.Trace != nil {
			detail := fmt.Sprintf("degrees %v; %d slaves, %d repartitions; in=%d out=%d tuples, %d batches",
				st.Degrees, st.Slaves, st.Repartitions, st.TuplesIn, st.TuplesOut, st.Batches)
			e.Trace.Span(st.Start, st.Elapsed(), obs.PidTasks, ev.rt.fr.obsTid, "frag", ev.task.Name, detail)
			e.schedEvent("complete", fmt.Sprintf("task %d (%s): %s", id, ev.task.Name, detail))
		}
		// Publish the fragment's output for consumers.
		frag := q.specs[id].Frag
		switch frag.Out {
		case plan.HashOut:
			if ev.rt.fr.outColHash != nil {
				s.colHashes[frag] = ev.rt.fr.outColHash
			} else {
				s.hashes[frag] = ev.rt.fr.outHash
			}
		case plan.RootOut:
			s.temps[frag] = ev.rt.fr.outTemp
			q.rep.Results[id] = ev.rt.fr.outTemp
		default:
			s.temps[frag] = ev.rt.fr.outTemp
		}
	}
	// Tell the controller about the completion before admitting or
	// submitting the tasks it unblocked, so its running-set is
	// consistent.
	s.apply(s.ctl.Complete(ev.task))
	s.settleIfComplete(q)
	s.submitReady()
}

// settleIfComplete finalizes a query whose controller-owned work has
// fully drained.
func (s *Scheduler) settleIfComplete(q *query) {
	if q.complete() && s.queries[q.id] != nil {
		s.finishQuery(q)
	}
}

// finishQuery seals the query's report, releases its admission charge,
// wakes its waiter, and admits queued queries that now fit.
func (s *Scheduler) finishQuery(q *query) {
	e := s.eng
	now := s.now()
	rep := q.rep
	rep.SubmittedAt = q.submitRel
	rep.AdmittedAt = q.admitRel
	rep.QueueWait = q.admitRel - q.submitRel
	rep.Elapsed = now - q.submitRel
	rep.Disk = e.Store.Disks.Stats()
	if e.Trace != nil {
		rep.Events = e.Trace.Since(q.traceMark)
	}
	if e.Metrics != nil {
		rep.Metrics = e.Metrics.Snapshot()
	}

	// Release master-side state.
	delete(s.queries, q.id)
	for _, id := range q.ids {
		delete(s.byTask, id)
		delete(s.temps, q.specs[id].Frag)
		delete(s.hashes, q.specs[id].Frag)
		if cht := s.colHashes[q.specs[id].Frag]; cht != nil {
			cht.release()
			delete(s.colHashes, q.specs[id].Frag)
		}
	}
	for _, fr := range q.frs {
		e.putFragRun(fr)
	}
	q.frs = nil
	s.inflight--
	s.nAdmitted--
	s.memInUse -= q.mem
	s.gInflight.Set(int64(s.inflight))
	s.mu.Lock()
	for _, id := range q.ids {
		delete(s.liveIDs, id)
	}
	s.mu.Unlock()
	if e.Trace != nil {
		e.schedEvent("query-done", fmt.Sprintf(
			"query %d: %d tasks in %v (queue wait %v)", q.id, len(q.ids), rep.Elapsed, rep.QueueWait))
	}

	if q.failed != nil {
		q.handle.settle(nil, q.failed)
	} else {
		q.handle.settle(rep, nil)
	}

	// Head-of-line admission: wake queued queries in FIFO order until the
	// head no longer fits, so the oldest waiter starts exactly when the
	// budget frees.
	for len(s.admitQ) > 0 && s.admits(s.admitQ[0]) {
		next := s.admitQ[0]
		s.admitQ = s.admitQ[1:]
		s.gAdmitQ.Set(int64(len(s.admitQ)))
		s.admit(next)
	}

	s.putQuery(q)
}
