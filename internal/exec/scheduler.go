package exec

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"xprs/internal/core"
	"xprs/internal/obs"
	"xprs/internal/plan"
	"xprs/internal/vclock"
)

// This file is the long-lived scheduler service: the §2.5 "continuous
// sequence of tasks" execution model. Where the original Engine.Run
// accepted one pre-declared task set and blocked until it drained, a
// Scheduler stays alive across queries: clients Submit work at any time
// (each Submit is one query — a set of dependent task specs), the
// controller re-solves the IO/CPU balance point on every arrival and
// completion, and each query's caller Waits on its own QueryHandle. An
// admission controller sits in front of the §2.5 S_io/S_cpu queues:
// queries that would blow the memory budget (or the concurrent-query
// cap) wait in a FIFO admission queue, and the time they spend there is
// reported as Report.QueueWait and as instants on the scheduler's trace
// lane.
//
// Intake is sharded. Submit never serializes on a global lock: a query
// claims its task IDs in per-shard live tables, takes a sequence number
// from one atomic counter, and appends itself to one of several
// mutex-guarded intake queues. The master loop stays the single
// decision maker — it drains every shard into one batch, sorts the
// batch by sequence number, and runs the same per-query admission logic
// as before — so shard count and batch boundaries are invisible in the
// results: admission order is intake-sequence order, full stop. See
// DESIGN.md §13 for the determinism argument.

// AdmissionConfig gates whole queries before their tasks reach the
// controller's S_io/S_cpu queues. This is coarser than — and composes
// with — core.Options.MemoryBudget, which vetoes pairing two admitted
// memory-hungry tasks side by side.
type AdmissionConfig struct {
	// MemoryBudget caps the combined MemBytes of every task of all
	// admitted (running or controller-queued) queries; 0 disables the
	// constraint. A query too big for the budget on an idle system is
	// still admitted alone — like the §5 memory rule, the constraint only
	// gates adding more work.
	MemoryBudget int64
	// MaxQueries caps the number of concurrently admitted queries; 0
	// disables the constraint.
	MaxQueries int
	// MaxQueued caps the admission queue depth: a query that does not
	// fit while MaxQueued others already wait is shed — its handle
	// settles with a *ShedError and the session stays healthy. 0
	// disables shedding (the queue grows without bound).
	MaxQueued int
	// TenantMaxQueries caps concurrently admitted queries per tenant
	// and switches the admission wake from strict head-of-line FIFO to
	// a fair-share scan: a tenant at its quota cannot block other
	// tenants' queries queued behind it. 0 disables per-tenant caps.
	TenantMaxQueries int
	// IntakeShards overrides the number of intake shards (rounded up to
	// a power of two, clamped to [1,64]); 0 means GOMAXPROCS. Shard
	// count is a pure contention knob: results are byte-identical at
	// any value, including 1 (the serial-intake ablation).
	IntakeShards int
	// TraceSampleOneIn enables head-based trace sampling on an observed
	// session: one in N queries (decided at submission from a seeded
	// hash of tenant and query ID, see obs.Sampler) carries spans,
	// scheduler instants and a per-query metrics snapshot; the rest run
	// with tracing suppressed. 0 or 1 traces every query. Sampling is
	// deterministic: qids are intake order, so the sampled set is
	// byte-identical across reruns and GOMAXPROCS.
	TraceSampleOneIn int
	// TraceSampleSeed seeds the sampling hash; 0 is a fixed default.
	TraceSampleSeed int64
	// SLOTarget is the default per-tenant response-time target: a
	// completed query whose response (submit to finish) exceeds it
	// counts as an SLO breach for its tenant. 0 disables breach
	// accounting (the per-tenant percentiles are still tracked).
	SLOTarget time.Duration
	// TenantSLOTargets overrides SLOTarget per tenant name.
	TenantSLOTargets map[string]time.Duration
	// TelemetryWindow is the width of one windowed-telemetry bucket
	// (admission/shed/latency timeline and the SLO percentile horizon);
	// 0 means one second of virtual time.
	TelemetryWindow time.Duration
	// TelemetryWindows is the number of windows the timeline ring
	// retains; 0 means 240.
	TelemetryWindows int
	// Policy names the admission policy that orders the wait queue:
	// "fifo" (or empty, the identity default — strict head-of-line,
	// fair-share scan under TenantMaxQueries), "pred-sjf" (admit the
	// waiter with the earliest parcost-predicted completion under the
	// current mix), or "deadline" (least-slack-first against per-query
	// deadlines or tenant SLO targets, shedding provably-hopeless
	// queries with a *DeadlineShedError). See admission.go.
	Policy string
	// AgingMaxWait, when positive, wraps the admission policy so a
	// waiter older than this is promoted to strict head-of-line: no
	// other query is admitted before it, bounding starvation under
	// ordering policies that would otherwise skip it forever. Promotions
	// count on the sched.aging_promoted metric.
	AgingMaxWait time.Duration
}

// ShedError is the typed rejection a query receives when it cannot be
// admitted and the admission queue already holds MaxQueued waiters. A
// shed query acquired no admission charge, so there is nothing to leak
// or release; the session keeps serving.
type ShedError struct {
	Tenant string // tenant of the shed query
	Queued int    // admission-queue depth at the shed decision
	Limit  int    // the MaxQueued threshold
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("exec: query shed: admission queue at %d (limit %d)", e.Queued, e.Limit)
}

// DeadlineShedError is the typed rejection of the "deadline" admission
// policy: the query's best-case predicted completion — simulated as if
// it ran alone, the most optimistic schedule the machine admits —
// already misses its deadline, so running it would only steal capacity
// from queries that can still make theirs. Like a *ShedError, the query
// acquired no admission charge and the session keeps serving.
type DeadlineShedError struct {
	Tenant string // tenant of the shed query
	// Deadline is the query's response-time target relative to its
	// submission; Predicted is the best-case predicted response.
	Deadline  time.Duration
	Predicted time.Duration
}

func (e *DeadlineShedError) Error() string {
	return fmt.Sprintf("exec: query shed as hopeless: best-case response %v exceeds deadline %v",
		e.Predicted, e.Deadline)
}

// QueryHandle is a client's ticket for one submitted query.
type QueryHandle struct {
	id    int
	sched *Scheduler

	mu      sync.Mutex
	done    chan struct{} // allocated by the first Wait that has to block
	waiting bool
	settled bool
	rep     *Report
	err     error
}

// ID returns the scheduler-assigned query ID.
func (h *QueryHandle) ID() int { return h.id }

// Wait blocks (accounted to the clock) until the query completes and
// returns its Report. At most one goroutine may block in Wait per
// handle; once the first Wait returns, further calls return immediately
// with the same result.
func (h *QueryHandle) Wait() (*Report, error) {
	h.mu.Lock()
	if h.settled {
		rep, err := h.rep, h.err
		h.mu.Unlock()
		return rep, err
	}
	if h.done == nil {
		h.done = make(chan struct{}, 1)
	}
	h.waiting = true
	ch := h.done
	h.mu.Unlock()
	h.sched.eng.Clock.WaitSignal(ch)
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rep, h.err
}

// Done reports, without blocking, whether the query has settled. A true
// result means Wait returns immediately; open-loop drivers use it to
// reap completed queries between arrivals without stalling the arrival
// process.
func (h *QueryHandle) Done() bool {
	h.mu.Lock()
	d := h.settled
	h.mu.Unlock()
	return d
}

// settle publishes the query outcome and wakes a blocked waiter. The
// settled flag latches under the mutex, so a Wait that checks it after
// this point returns without blocking, and a Wait already committed to
// blocking has set waiting (and allocated the channel) first — the
// signal is sent exactly when someone needs it.
func (h *QueryHandle) settle(rep *Report, err error) {
	h.mu.Lock()
	h.settled = true
	h.rep, h.err = rep, err
	wake, ch := h.waiting, h.done
	h.mu.Unlock()
	if wake {
		h.sched.eng.Clock.Signal(ch)
	}
}

// query is the master-side state of one submitted query.
type query struct {
	id     int
	tenant string
	handle *QueryHandle
	specs  map[int]*TaskSpec
	ids    []int // task IDs in ascending order
	mem    int64 // sum of task MemBytes, the admission charge

	submitRel time.Duration // session-relative submission instant
	admitRel  time.Duration
	admitted  bool
	traced    bool // head-based sampling decision, made at Submit
	traceMark int
	// deadline is the query's response-time target relative to its
	// submission (SubmitOptions.Deadline); 0 means none. promoted
	// latches the aging wrapper's head-of-line promotion so each query
	// counts at most one promotion.
	deadline time.Duration
	promoted bool
	// bestCase caches the deadline policy's best-case prediction (the
	// query simulated alone, a state-independent value); bestCaseSet
	// latches it so the simulation runs at most once per query.
	bestCase    time.Duration
	bestCaseSet bool

	arrived   map[int]bool
	submitted map[int]bool // handed to the controller
	done      map[int]bool
	started   int // tasks handed to the controller
	finished  int // completions observed (real or synthesized)
	failed    error

	// frs are the fragment runtimes this query started; they return to
	// the engine's compiled-runtime pool when the query settles (every
	// slave has exited by then, so nothing references them).
	frs []*fragRun

	rep *Report
}

// complete reports whether nothing the controller owns is still pending.
// A healthy query finishes when every task is done; a failed one once
// every task already handed to the controller has drained (tasks never
// submitted stay unrun).
func (q *query) complete() bool {
	if q.failed != nil {
		return q.finished == q.started
	}
	return q.finished == len(q.specs)
}

// queryPool recycles query bookkeeping (spec/arrival/completion maps)
// across queries and schedulers. Submit runs on client goroutines while
// finishQuery recycles on the master loop; sync.Pool replaces the
// mutex-guarded free list the intake path used to serialize on.
var queryPool = sync.Pool{New: func() any { return &query{specs: make(map[int]*TaskSpec)} }}

func getQuery() *query { return queryPool.Get().(*query) }

// putQuery clears and reclaims query bookkeeping. A query recycles when
// it settles — its handle and report have escaped to the caller by then
// and are detached first — or when Submit rejects it before intake.
func putQuery(q *query) {
	clear(q.specs)
	q.ids = q.ids[:0]
	q.mem = 0
	q.tenant = ""
	q.submitRel, q.admitRel = 0, 0
	q.admitted = false
	q.traced = false
	q.traceMark = 0
	q.deadline = 0
	q.promoted = false
	q.bestCase = 0
	q.bestCaseSet = false
	clear(q.arrived)
	clear(q.submitted)
	clear(q.done)
	q.started, q.finished = 0, 0
	q.failed = nil
	q.frs = nil
	q.rep = nil
	q.handle = nil
	q.id = 0
	queryPool.Put(q)
}

// Events posted to the scheduler's mailbox (taskDone, posted by slave
// exits, is declared next to the running-task machinery in engine.go).
// intakeNote is the sharded-intake doorbell: posted only on the
// empty→non-empty transition of the global pending count, so a burst of
// Submits costs one mailbox wakeup, not one per query.
type intakeNote struct{}

type drainMsg struct{ ack chan struct{} }

// arrivalTick carries the session generation that scheduled it: a
// poisoned query can settle with its arrival timers still pending, and
// a recycled session must not mistake such a stale tick (same mailbox,
// possibly a reused query ID) for its own.
type arrivalTick struct{ gen, qid, id int }

// intakeShard is one stripe of the Submit fast path: a slice of the
// live task-ID table and an intake queue, under a shard-private mutex.
// The atomic counters are contention-free bookkeeping the master (and
// the metrics snapshotter) reconcile at decision points; the trailing
// pad keeps neighbouring shards off one cache line.
type intakeShard struct {
	mu     sync.Mutex
	queue  []*query
	live   map[int]int // task ID -> query ID, for cross-query collisions
	closed bool

	queued  atomic.Int64 // accepted, not yet admitted or shed
	submits atomic.Int64 // accepted submissions this session
	contend atomic.Int64 // lock acquisitions that had to wait

	_ [64]byte
}

// Scheduler is the persistent scheduling service. Create one with
// NewScheduler (which spawns the master backend on a clock-registered
// goroutine), Submit queries from any goroutine, and Drain before
// leaving the clock's scope. An Engine hosts at most one live Scheduler
// at a time.
type Scheduler struct {
	eng *Engine
	ctl *core.Controller
	adm AdmissionConfig

	events *vclock.Mailbox
	start  time.Duration
	// gen counts the sessions this (pooled) scheduler has served; loopFn
	// is the master-loop body bound once at creation.
	gen    int
	loopFn func()

	// Sharded client-facing state. submitSeq allocates query IDs, which
	// double as the global intake order; intakeCount is the pending-
	// entry count behind the intakeNote doorbell; closedFlag makes
	// Drain idempotent.
	shards     []intakeShard
	shardMask  uint32
	submitSeq  atomic.Int64
	intakeLive atomic.Int64
	closedFlag atomic.Bool

	// Master-owned state (touched only by the loop goroutine).
	intakeBatch []*query // drain-and-decide scratch
	queries     map[int]*query
	byTask      map[int]*query
	tenants     map[string]*tenantState
	defTenant   *tenantState // cached s.tenants[""]
	// Admission waiters live in per-tenant FIFO deques (tenantState.waitq)
	// so the fair-share wake skips a quota-blocked tenant in O(1) instead
	// of rescanning its queued queries — the old single FIFO slice made
	// every wake round O(tenants × queue). waitTenants lists the tenants
	// with at least one waiter (unordered; picks minimize query ID, which
	// is intake order, so slice order is invisible in results); nWaiting
	// is the total waiter count (the MaxQueued threshold and the
	// admission-queue gauges). admPol orders the waiters; admEpoch bumps
	// on every admission-state change and keys the prediction caches.
	waitTenants []*tenantState
	nWaiting    int
	admPol      AdmissionPolicy
	admEpoch    uint64
	nAdmitted   int
	memInUse    int64
	inflight    int
	running     map[int]*runningTask
	temps       map[*plan.Fragment]*Temp
	hashes      map[*plan.Fragment]*HashTable
	colHashes   map[*plan.Fragment]*ColHashTable
	draining    bool
	drainAck    chan struct{}

	// Admission observability (nil when metrics are off; methods no-op).
	gQDepthIO *obs.Gauge
	gQDepthCP *obs.Gauge
	gAdmitQ   *obs.Gauge
	gInflight *obs.Gauge
	hWaitUs   *obs.Histogram
	mShed     *obs.Counter
	mAging    *obs.Counter

	// Serving telemetry, always on (bounded memory, master-loop writes
	// only): the windowed admission/shed/latency timeline and the
	// per-tenant SLO tracker. sampler is nil unless TraceSampleOneIn > 1.
	series  *obs.Series
	slo     *obs.SLO
	sampler *obs.Sampler
}

// tenantState is the master's per-tenant admission bookkeeping.
type tenantState struct {
	name     string
	admitted int   // queries currently past admission
	waitq    waitQ // admission waiters of this tenant, in intake order
	// waitIdx is this tenant's position in Scheduler.waitTenants while
	// it has waiters, -1 otherwise.
	waitIdx int

	gRun  *obs.Gauge
	gWait *obs.Gauge
	cShed *obs.Counter
}

// waitQ is one tenant's FIFO of admission waiters. Pushes append in
// intake order; the common pop is the head (FIFO admission), kept O(1)
// amortized by a head offset, while policy-ordered admission may remove
// from the middle (per-tenant queues are short; the splice is cheap).
type waitQ struct {
	items []*query
	head  int
}

func (w *waitQ) len() int        { return len(w.items) - w.head }
func (w *waitQ) at(i int) *query { return w.items[w.head+i] }
func (w *waitQ) push(q *query)   { w.items = append(w.items, q) }

// removeAt removes and returns the waiter at logical index i.
func (w *waitQ) removeAt(i int) *query {
	j := w.head + i
	q := w.items[j]
	if i == 0 {
		w.items[j] = nil
		w.head++
		if w.head == len(w.items) {
			w.items = w.items[:0]
			w.head = 0
		} else if w.head > 32 && w.head*2 >= len(w.items) {
			n := copy(w.items, w.items[w.head:])
			clear(w.items[n:])
			w.items = w.items[:n]
			w.head = 0
		}
	} else {
		copy(w.items[j:], w.items[j+1:])
		w.items[len(w.items)-1] = nil
		w.items = w.items[:len(w.items)-1]
	}
	return q
}

// reset drops every waiter (poisoned-session insurance; keeps capacity).
func (w *waitQ) reset() {
	clear(w.items)
	w.items = w.items[:0]
	w.head = 0
}

// NewScheduler starts a scheduler service on the engine. The engine's
// disk statistics are reset and its observability hooks re-anchored at
// the session start, exactly as the one-shot Engine.Run used to do per
// run; a session therefore reports Disk statistics cumulative from its
// own start.
func NewScheduler(e *Engine, policy core.Policy, opts core.Options, adm AdmissionConfig) *Scheduler {
	if e.sched != nil {
		panic("exec: engine already hosts a live scheduler (Drain the previous one first)")
	}
	s := e.schedFree
	e.schedFree = nil
	if s == nil {
		s = &Scheduler{
			eng:       e,
			events:    vclock.NewMailbox(e.Clock),
			queries:   make(map[int]*query),
			byTask:    make(map[int]*query),
			tenants:   make(map[string]*tenantState),
			running:   make(map[int]*runningTask),
			temps:     make(map[*plan.Fragment]*Temp),
			hashes:    make(map[*plan.Fragment]*HashTable),
			colHashes: make(map[*plan.Fragment]*ColHashTable),
		}
		s.loopFn = s.loop
	} else {
		s.resetSession()
	}
	s.gen++
	s.ctl = core.NewController(e.Env, policy, opts)
	s.adm = adm
	pol, err := AdmissionPolicyByName(adm.Policy, adm.AgingMaxWait)
	if err != nil {
		panic(err.Error()) // facades validate names up front
	}
	s.admPol = pol
	s.ensureShards(adm.IntakeShards)
	// Serving telemetry. The series' now-func is a pure clock read —
	// reads never advance the virtual clock (obsnoclock allows them) —
	// so the timeline buckets on virtual time without perturbing it. The
	// SLO percentile horizon is the full timeline span.
	window := adm.TelemetryWindow
	if window <= 0 {
		window = time.Second
	}
	nwin := adm.TelemetryWindows
	if nwin <= 0 {
		nwin = 240
	}
	s.series = obs.NewSeries(window, nwin, s.now)
	targets := map[string]time.Duration{"": adm.SLOTarget}
	for name, d := range adm.TenantSLOTargets {
		targets[name] = d
	}
	s.slo = obs.NewSLO(window*time.Duration(nwin), 0, targets)
	s.sampler = obs.NewSampler(adm.TraceSampleSeed, adm.TraceSampleOneIn)
	e.sched = s
	e.events = s.events
	e.Store.Disks.ResetStats()
	s.start = e.Clock.Now()
	e.runStart = s.start
	e.schedTid = e.Trace.Lane(obs.PidSched, "master")
	e.mBatches = e.Metrics.Counter("exec.batches")
	e.mTuples = e.Metrics.Counter("exec.tuples_in")
	e.mReparts = e.Metrics.Counter("exec.repartitions")
	e.mSlaves = e.Metrics.Counter("exec.slaves_spawned")
	e.mTasks = e.Metrics.Counter("exec.tasks_completed")
	e.mSelIn = e.Metrics.Counter("exec.sel_rows_in")
	e.mSelOut = e.Metrics.Counter("exec.sel_rows_out")
	e.hTaskUs = e.Metrics.Histogram("exec.task_micros")
	e.Store.Disks.SetObserver(e.Trace, e.Metrics, s.start)
	e.Store.RegisterMetrics(e.Metrics)
	s.gQDepthIO = e.Metrics.Gauge("sched.queue_depth_io")
	s.gQDepthCP = e.Metrics.Gauge("sched.queue_depth_cpu")
	s.gAdmitQ = e.Metrics.Gauge("sched.admission_queued")
	s.gInflight = e.Metrics.Gauge("sched.queries_running")
	s.hWaitUs = e.Metrics.Histogram("sched.queue_wait_micros")
	s.mShed = e.Metrics.Counter("sched.shed_total")
	s.mAging = e.Metrics.Counter("sched.aging_promoted")
	if e.Metrics != nil {
		// Intake health, sampled straight off the per-shard atomics at
		// snapshot time (no clock interaction: obsnoclock-clean).
		e.Metrics.RegisterFunc("sched.intake_queued", func() int64 { return s.sumShards(func(sh *intakeShard) int64 { return sh.queued.Load() }) })
		e.Metrics.RegisterFunc("sched.intake_submits", func() int64 { return s.sumShards(func(sh *intakeShard) int64 { return sh.submits.Load() }) })
		e.Metrics.RegisterFunc("sched.intake_contention", func() int64 { return s.sumShards(func(sh *intakeShard) int64 { return sh.contend.Load() }) })
	}
	e.Clock.Go(s.loopFn)
	return s
}

// ensureShards sizes the intake shard array: an explicit override, or
// GOMAXPROCS, rounded up to a power of two in [1,64]. The count only
// moves lock contention around — drained batches are sorted by intake
// sequence, so results do not depend on it.
func (s *Scheduler) ensureShards(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := 1
	for p < n && p < 64 {
		p <<= 1
	}
	if len(s.shards) == p {
		return
	}
	s.shards = make([]intakeShard, p)
	for i := range s.shards {
		s.shards[i].live = make(map[int]int)
	}
	s.shardMask = uint32(p - 1)
}

// sumShards folds one per-shard atomic across the shard array.
func (s *Scheduler) sumShards(f func(*intakeShard) int64) int64 {
	var total int64
	for i := range s.shards {
		total += f(&s.shards[i])
	}
	return total
}

// intakeShardOf maps a query (by its intake sequence) to a shard.
// Consecutive sequences land on consecutive shards, so a burst of
// parallel Submits naturally stripes across every intake lock.
func (s *Scheduler) intakeShardOf(qid int) *intakeShard {
	return &s.shards[uint32(qid)&s.shardMask]
}

// liveIndex maps a task ID to the shard holding its live-table slice.
func (s *Scheduler) liveIndex(id int) uint32 {
	return (uint32(id) * 0x9e3779b9 >> 16) & s.shardMask
}

// resetSession readies a drained scheduler for another session. Every
// collection is already empty after a clean Drain (the loop only exits
// with no queries in flight); the clears are insurance against a
// poisoned session leaving residue, and keep map capacity either way.
func (s *Scheduler) resetSession() {
	s.submitSeq.Store(0)
	s.intakeLive.Store(0)
	s.closedFlag.Store(false)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.queue = sh.queue[:0]
		clear(sh.live)
		sh.closed = false
		sh.mu.Unlock()
		sh.queued.Store(0)
		sh.submits.Store(0)
		sh.contend.Store(0)
	}
	clear(s.queries)
	clear(s.byTask)
	clear(s.tenants)
	s.defTenant = nil
	s.waitTenants = s.waitTenants[:0]
	s.nWaiting = 0
	s.admEpoch = 0
	s.nAdmitted = 0
	s.memInUse = 0
	s.inflight = 0
	clear(s.running)
	clear(s.temps)
	clear(s.hashes)
	clear(s.colHashes)
	s.draining = false
	s.drainAck = nil
}

// now returns session-relative virtual time.
func (s *Scheduler) now() time.Duration { return s.eng.Clock.Now() - s.start }

// Submit registers one query — a set of dependent task specs — with the
// service and returns its handle. It is SubmitTenant under the default
// (empty) tenant.
func (s *Scheduler) Submit(specs []TaskSpec) (*QueryHandle, error) {
	return s.SubmitWith(SubmitOptions{}, specs)
}

// SubmitTenant registers one query on behalf of a tenant.
func (s *Scheduler) SubmitTenant(tenant string, specs []TaskSpec) (*QueryHandle, error) {
	return s.SubmitWith(SubmitOptions{Tenant: tenant}, specs)
}

// SubmitOptions carries per-query submission metadata beyond the specs.
type SubmitOptions struct {
	// Tenant attributes the query for admission quotas and SLO tracking;
	// empty is the default tenant.
	Tenant string
	// Deadline is the query's response-time target relative to its
	// submission instant; 0 means none (the tenant's SLO target, if any,
	// stands in). Only the "deadline" admission policy acts on it.
	Deadline time.Duration
}

// SubmitWith registers one query with explicit submission options.
// Validation errors are synchronous; the query itself is admitted and
// executed asynchronously. Task IDs must be unique within the query and
// against every in-flight query. A spec's Arrival is relative to the
// query's admission instant (zero, the common case for online
// submission, means "run as soon as admitted").
//
// The fast path is sharded: concurrent callers contend only on their
// task-ID and intake shards plus two atomic increments, never on a
// global lock or on the master loop.
func (s *Scheduler) SubmitWith(o SubmitOptions, specs []TaskSpec) (*QueryHandle, error) {
	tenant := o.Tenant
	q := getQuery()
	byID := q.specs
	ids := q.ids[:0]
	var mem int64
	for i := range specs {
		sp := &specs[i]
		if sp.Task == nil || sp.Frag == nil {
			putQuery(q)
			return nil, fmt.Errorf("exec: spec %d missing task or fragment", i)
		}
		if _, dup := byID[sp.Task.ID]; dup {
			putQuery(q)
			return nil, fmt.Errorf("exec: duplicate task ID %d", sp.Task.ID)
		}
		byID[sp.Task.ID] = sp
		ids = append(ids, sp.Task.ID)
		mem += sp.Task.MemBytes
	}
	for _, sp := range byID {
		for _, dep := range sp.DependsOn {
			if _, ok := byID[dep]; !ok {
				putQuery(q)
				return nil, fmt.Errorf("exec: task %d depends on unknown %d", sp.Task.ID, dep)
			}
		}
	}
	slices.Sort(ids)

	q.ids = ids
	q.mem = mem
	q.tenant = tenant
	q.deadline = o.Deadline
	// The query ID doubles as the global intake sequence number: the
	// master sorts every drained batch by it, so admission order is
	// exactly the order of these Add calls no matter how entries spread
	// across shards or batches. A rejected submission leaves a hole in
	// the sequence, which nothing downstream minds.
	q.id = int(s.submitSeq.Add(1) - 1)
	if err := s.registerIDs(q); err != nil {
		putQuery(q)
		return nil, err
	}
	// The report and handle escape to the caller, so they are the one
	// per-query allocation that cannot recycle.
	q.rep = &Report{
		Finish:  make(map[int]time.Duration),
		Results: make(map[int]*Temp),
		Frags:   make(map[int]FragStat),
	}
	// The head-based sampling decision is made here, once, from the
	// intake sequence: every span site downstream checks q.traced, so an
	// unsampled query emits nothing and captures no per-query snapshot —
	// the O(budget) guarantee for serving-scale observed runs.
	q.traced = s.sampler.Sample(tenant, q.id)
	if q.traced {
		q.traceMark = s.eng.Trace.Mark()
	}
	q.handle = &QueryHandle{id: q.id, sched: s}
	// Keep a local reference: once the query is published to its shard
	// the master may shed, finish and recycle it (putQuery nils
	// q.handle) before this goroutine returns.
	h := q.handle

	sh := s.intakeShardOf(q.id)
	if !sh.mu.TryLock() {
		sh.contend.Add(1)
		sh.mu.Lock()
	}
	if sh.closed {
		sh.mu.Unlock()
		s.deregisterIDs(q)
		putQuery(q)
		return nil, fmt.Errorf("exec: scheduler is drained")
	}
	sh.queue = append(sh.queue, q)
	sh.queued.Add(1)
	sh.submits.Add(1)
	// Doorbell on the empty→non-empty transition only. The count moves
	// inside the shard critical section, so Drain's closed sweep (which
	// takes every shard lock) strictly follows every accepted entry's
	// push and notification — no straggler can ring after drainMsg.
	// Posting under the shard lock is therefore deliberate, and safe:
	// Post is a buffered append + Signal, never a Wait, so the holder
	// cannot stall on the consumer.
	if s.intakeLive.Add(1) == 1 {
		//lint:allow lockorder — doorbell Post is ordered by design (above)
		s.events.Post(intakeNote{})
	}
	sh.mu.Unlock()
	return h, nil
}

// registerIDs claims the query's task IDs in the sharded live tables,
// rejecting cross-query collisions. The shards involved are locked in
// ascending index order, so concurrent multi-shard registrations cannot
// deadlock; queries wider than the scratch array fall back to locking
// every shard (still ascending).
func (s *Scheduler) registerIDs(q *query) error {
	if len(q.ids) == 0 {
		return nil
	}
	var scratch [16]uint32
	idxs := scratch[:0]
	for _, id := range q.ids {
		ix := s.liveIndex(id)
		if !slices.Contains(idxs, ix) {
			if len(idxs) == cap(idxs) {
				idxs = idxs[:0]
				for i := range s.shards {
					idxs = append(idxs, uint32(i))
				}
				break
			}
			idxs = append(idxs, ix)
		}
	}
	slices.Sort(idxs)
	for _, ix := range idxs {
		s.shards[ix].mu.Lock()
	}
	var err error
	for _, id := range q.ids {
		if qid, live := s.shards[s.liveIndex(id)].live[id]; live {
			err = fmt.Errorf("exec: task ID %d already live in query %d", id, qid)
			break
		}
	}
	if err == nil {
		for _, id := range q.ids {
			s.shards[s.liveIndex(id)].live[id] = q.id
		}
	}
	for _, ix := range idxs {
		s.shards[ix].mu.Unlock()
	}
	return err
}

// deregisterIDs releases the query's task-ID claims.
func (s *Scheduler) deregisterIDs(q *query) {
	for _, id := range q.ids {
		sh := &s.shards[s.liveIndex(id)]
		sh.mu.Lock()
		delete(sh.live, id)
		sh.mu.Unlock()
	}
}

// Drain blocks until every submitted query has completed, then stops the
// master loop and releases the engine for a future session. The
// scheduler accepts no submissions afterwards; calls after the first
// return immediately.
func (s *Scheduler) Drain() error {
	if s.closedFlag.Swap(true) {
		return nil
	}
	// Close every shard. A Submit that passed its closed check held the
	// shard lock first, so by the end of this sweep every accepted query
	// is pushed and its doorbell (if any) posted — the drainMsg below is
	// therefore ordered after the last intake event in the mailbox.
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.closed = true
		sh.mu.Unlock()
	}
	ack := make(chan struct{}, 1)
	s.events.Post(drainMsg{ack: ack})
	s.eng.Clock.WaitSignal(ack)
	s.eng.sched = nil
	// The loop goroutine has exited; park the session (maps, shards,
	// mailbox, admission queue keep their capacity) for the next
	// NewScheduler.
	s.eng.schedFree = s
	return nil
}

// loop is the master backend: the single consumer of the event mailbox
// and the only goroutine that touches the controller.
func (s *Scheduler) loop() {
	for {
		if s.draining && s.inflight == 0 {
			break
		}
		switch ev := s.events.Wait().(type) {
		case intakeNote:
			s.drainIntake()
		case arrivalTick:
			if ev.gen != s.gen {
				break // stale timer from a drained session
			}
			if q, ok := s.queries[ev.qid]; ok {
				q.arrived[ev.id] = true
				s.submitReady()
			}
		case taskDone:
			s.onTaskDone(ev)
		case drainMsg:
			// Belt and braces: every accepted query's doorbell precedes
			// drainMsg in the mailbox, so the queues are normally empty
			// here, but one extra sweep makes the invariant local.
			s.drainIntake()
			s.draining = true
			s.drainAck = ev.ack
		default:
			panic(fmt.Sprintf("exec: unexpected event %T", ev))
		}
	}
	if s.drainAck != nil {
		s.eng.Clock.Signal(s.drainAck)
	}
}

// drainIntake is the drain-and-decide step: sweep every shard into one
// batch, order the batch by intake sequence, and run per-query
// admission. The pending counter bounds the work: a positive read
// guarantees the next sweep collects something (entries are pushed
// before the counter moves, inside the same critical section), and
// entries pushed after the final zero read ring their own doorbell —
// the first of any concurrent group sees the empty→non-empty
// transition. Checking the counter instead of sweeping-until-empty
// saves a full lock sweep per drain and makes stale doorbells free.
func (s *Scheduler) drainIntake() {
	for s.intakeLive.Load() > 0 {
		batch := s.intakeBatch[:0]
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			batch = append(batch, sh.queue...)
			for j := range sh.queue {
				sh.queue[j] = nil
			}
			sh.queue = sh.queue[:0]
			sh.mu.Unlock()
		}
		s.intakeBatch = batch[:0]
		if len(batch) == 0 {
			continue
		}
		slices.SortFunc(batch, func(a, b *query) int { return a.id - b.id })
		// One clock read per batch: the master never blocks while
		// processing it, so under the virtual clock every entry sees this
		// instant anyway; on a real clock it drops two clock reads from
		// the per-query fast path.
		now := s.now()
		for _, q := range batch {
			s.onSubmit(q, now)
		}
		s.intakeLive.Add(-int64(len(batch)))
	}
}

// tenant returns (creating on first sight) the master's bookkeeping for
// a tenant name. The default tenant — every plain Submit — bypasses the
// map through a cached pointer.
func (s *Scheduler) tenant(name string) *tenantState {
	if name == "" && s.defTenant != nil {
		return s.defTenant
	}
	ts := s.tenants[name]
	if ts == nil {
		ts = &tenantState{name: name, waitIdx: -1}
		if m := s.eng.Metrics; m != nil {
			ts.gRun = m.Gauge(obs.Label("sched.tenant_running", name))
			ts.gWait = m.Gauge(obs.Label("sched.tenant_waiting", name))
			ts.cShed = m.Counter(obs.Label("sched.tenant_shed", name))
			// Burn-rate numerator as a read-at-snapshot gauge: a pure
			// read of the SLO tracker's counter (obsnoclock-clean).
			tenant := name
			m.RegisterFunc(obs.Label("slo.breached", tenant), func() int64 { return s.slo.Breached(tenant) })
		}
		s.tenants[name] = ts
		if name == "" {
			s.defTenant = ts
		}
	}
	return ts
}

// onSubmit records a freshly submitted query and admits it, parks it in
// the admission queue, or — past the MaxQueued backpressure threshold —
// sheds it.
func (s *Scheduler) onSubmit(q *query, now time.Duration) {
	q.submitRel = now
	if q.arrived == nil {
		q.arrived = make(map[int]bool, len(q.ids))
		q.submitted = make(map[int]bool, len(q.ids))
		q.done = make(map[int]bool, len(q.ids))
	}
	s.queries[q.id] = q
	for _, id := range q.ids {
		s.byTask[id] = q
	}
	s.inflight++
	s.gInflight.Set(int64(s.inflight))
	s.series.Count("submitted", 1)
	if s.eng.Trace != nil && q.traced {
		s.eng.schedEvent("submit", fmt.Sprintf(
			"query %d: %d tasks, %d B working set", q.id, len(q.ids), q.mem))
	}
	// Policies with a submission screen (deadline) can reject a query
	// before it ever waits: a provably-hopeless query sheds immediately.
	if sc, ok := s.admPol.(admissionScreener); ok {
		if err := sc.screen(s, q, now); err != nil {
			s.shedWith(q, err)
			return
		}
	}
	if s.admits(q) {
		s.admit(q, now)
		return
	}
	if lim := s.adm.MaxQueued; lim > 0 && s.nWaiting >= lim {
		s.shedWith(q, &ShedError{Tenant: q.tenant, Queued: s.nWaiting, Limit: s.adm.MaxQueued})
		return
	}
	s.enqueueWaiter(q)
	s.seriesGauges()
	if s.eng.Trace != nil && q.traced {
		s.eng.schedEvent("admission-wait", fmt.Sprintf(
			"query %d queued: %d B in use of %d budget, %d/%d queries admitted",
			q.id, s.memInUse, s.adm.MemoryBudget, s.nAdmitted, s.adm.MaxQueries))
	}
}

// enqueueWaiter parks a query in its tenant's wait deque, registering
// the tenant in waitTenants on its empty→non-empty transition.
func (s *Scheduler) enqueueWaiter(q *query) {
	ts := s.tenant(q.tenant)
	if ts.waitq.len() == 0 {
		ts.waitIdx = len(s.waitTenants)
		s.waitTenants = append(s.waitTenants, ts)
	}
	ts.waitq.push(q)
	s.nWaiting++
	ts.gWait.Set(int64(ts.waitq.len()))
	s.gAdmitQ.Set(int64(s.nWaiting))
}

// takeWaiter removes the waiter at index i of a tenant's deque,
// deregistering the tenant from waitTenants when it empties (swap with
// the last entry; waitTenants order is never observable). The caller
// decides the query's fate — admission or a policy shed — and performs
// the matching bookkeeping (intake-shard queued counts move there).
func (s *Scheduler) takeWaiter(ts *tenantState, i int) *query {
	q := ts.waitq.removeAt(i)
	s.nWaiting--
	ts.gWait.Set(int64(ts.waitq.len()))
	s.gAdmitQ.Set(int64(s.nWaiting))
	if ts.waitq.len() == 0 {
		last := len(s.waitTenants) - 1
		moved := s.waitTenants[last]
		s.waitTenants[ts.waitIdx] = moved
		moved.waitIdx = ts.waitIdx
		s.waitTenants[last] = nil
		s.waitTenants = s.waitTenants[:last]
		ts.waitIdx = -1
	}
	return q
}

// oldestWaiter returns the globally oldest waiter (minimum query ID =
// intake order) and its tenant, or nil when nothing waits. Each
// tenant's deque is ID-ordered, so only the heads compete.
func (s *Scheduler) oldestWaiter() (*tenantState, *query) {
	var bts *tenantState
	var bq *query
	for _, ts := range s.waitTenants {
		if q := ts.waitq.at(0); bq == nil || q.id < bq.id {
			bts, bq = ts, q
		}
	}
	return bts, bq
}

// firstEligibleWaiter is the fair-share scan: the oldest waiter (global
// intake order) that fits the admission budget right now, skipping a
// tenant's whole deque in O(1) when the tenant sits at its quota. It
// reproduces the historical first-eligible-in-FIFO-order pick exactly —
// including admitting a younger query of the SAME tenant when an older
// one is memory-blocked — while replacing the O(tenants × queue) flat
// rescan. The ID prune stops each deque at the first candidate older
// than the best so far; deques are ID-ordered so nothing eligible is
// missed.
func (s *Scheduler) firstEligibleWaiter() (*tenantState, int) {
	// Admission-wide gates first: if the query cap is hot no waiter fits
	// (the lone-query rule in admits only applies at nAdmitted == 0).
	if s.nAdmitted > 0 && s.adm.MaxQueries > 0 && s.nAdmitted >= s.adm.MaxQueries {
		return nil, -1
	}
	var bts *tenantState
	bi := -1
	for _, ts := range s.waitTenants {
		if s.nAdmitted > 0 && s.adm.TenantMaxQueries > 0 && ts.admitted >= s.adm.TenantMaxQueries {
			continue
		}
		for i := 0; i < ts.waitq.len(); i++ {
			q := ts.waitq.at(i)
			if bq := bestWaiter(bts, bi); bq != nil && q.id > bq.id {
				break
			}
			if s.admits(q) {
				bts, bi = ts, i
				break
			}
		}
	}
	return bts, bi
}

// bestWaiter dereferences a (tenant, index) pick, nil when unset.
func bestWaiter(ts *tenantState, i int) *query {
	if ts == nil {
		return nil
	}
	return ts.waitq.at(i)
}

// seriesGauges samples the admission state into the timeline's current
// window after every state change the timeline should see.
func (s *Scheduler) seriesGauges() {
	s.series.Sample("admit_queue", int64(s.nWaiting))
	s.series.Sample("running", int64(s.nAdmitted))
}

// shedWith rejects a query with a typed shed error — the MaxQueued
// backpressure *ShedError, or a policy rejection like the deadline
// policy's *DeadlineShedError. The query never acquired an admission
// charge, so nothing is released — memInUse and nAdmitted are untouched
// — and the session keeps serving; only this handle settles with the
// error.
func (s *Scheduler) shedWith(q *query, err error) {
	s.mShed.Inc()
	s.tenant(q.tenant).cShed.Inc()
	s.series.Count("shed", 1)
	s.slo.RecordShed(q.tenant)
	s.intakeShardOf(q.id).queued.Add(-1)
	if s.eng.Trace != nil && q.traced {
		s.eng.schedEvent("shed", fmt.Sprintf("query %d shed: %v", q.id, err))
	}
	delete(s.queries, q.id)
	for _, id := range q.ids {
		delete(s.byTask, id)
	}
	s.deregisterIDs(q)
	s.inflight--
	s.gInflight.Set(int64(s.inflight))
	q.handle.settle(nil, err)
	putQuery(q)
}

// admits reports whether the query fits the admission budget right now.
// Like the §5 memory rule, a lone query always fits: the constraint only
// gates adding work next to what is already admitted.
func (s *Scheduler) admits(q *query) bool {
	if s.nAdmitted == 0 {
		return true
	}
	if s.adm.MaxQueries > 0 && s.nAdmitted >= s.adm.MaxQueries {
		return false
	}
	if s.adm.MemoryBudget > 0 && s.memInUse+q.mem > s.adm.MemoryBudget {
		return false
	}
	if s.adm.TenantMaxQueries > 0 {
		if ts := s.tenants[q.tenant]; ts != nil && ts.admitted >= s.adm.TenantMaxQueries {
			return false
		}
	}
	return true
}

// admit moves a query past the admission controller: stamps its
// queue-wait, registers its arrival timers, and hands its ready tasks to
// the controller. now is the caller's already-read clock.
func (s *Scheduler) admit(q *query, now time.Duration) {
	q.admitted = true
	q.admitRel = now
	s.admEpoch++ // the admitted mix changed; cached predictions are stale
	s.nAdmitted++
	s.memInUse += q.mem
	ts := s.tenant(q.tenant)
	ts.admitted++
	ts.gRun.Set(int64(ts.admitted))
	s.intakeShardOf(q.id).queued.Add(-1)
	wait := q.admitRel - q.submitRel
	s.hWaitUs.Observe(int64(wait / time.Microsecond))
	s.series.Count("admitted", 1)
	s.series.Observe("queue_wait_us", int64(wait/time.Microsecond))
	s.seriesGauges()
	if s.eng.Trace != nil && q.traced {
		if wait > 0 {
			s.eng.schedEvent("admit", fmt.Sprintf(
				"query %d admitted after %v in the admission queue", q.id, wait))
		} else {
			s.eng.schedEvent("admit", fmt.Sprintf("query %d admitted immediately", q.id))
		}
	}
	// Arrival timers post ticks through the mailbox, exactly as the
	// one-shot batch path registered them. Iterate in ID order so timer
	// registration order — and therefore equal-instant tie-breaking in
	// the virtual clock's timer heap — is deterministic.
	for _, id := range q.ids {
		sp := q.specs[id]
		if sp.Arrival <= 0 {
			q.arrived[id] = true
			continue
		}
		at := s.eng.Clock.Now() + sp.Arrival
		gen, qid, tid := s.gen, q.id, id
		s.eng.Clock.Go(func() {
			if v, ok := s.eng.Clock.(*vclock.Virtual); ok {
				v.SleepUntil(at)
			} else {
				s.eng.Clock.Sleep(at - s.eng.Clock.Now())
			}
			s.events.Post(arrivalTick{gen: gen, qid: qid, id: tid})
		})
	}
	if len(q.specs) == 0 {
		// Degenerate empty query: complete on the spot.
		s.finishQuery(q)
		return
	}
	s.submitReady()
}

// ready reports whether a task can be handed to the controller.
func (s *Scheduler) ready(q *query, sp *TaskSpec) bool {
	if q.failed != nil || !q.admitted {
		return false
	}
	id := sp.Task.ID
	if q.submitted[id] || !q.arrived[id] {
		return false
	}
	for _, dep := range sp.DependsOn {
		if !q.done[dep] {
			return false
		}
	}
	return true
}

// submitReady hands every newly ready task — across all admitted
// queries, in global task-ID order — to the controller in one batch and
// applies the resulting decision.
func (s *Scheduler) submitReady() {
	ids := make([]int, 0, len(s.byTask))
	for id := range s.byTask {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	var batch []*core.Task
	for _, id := range ids {
		q := s.byTask[id]
		if sp := q.specs[id]; s.ready(q, sp) {
			q.submitted[id] = true
			q.started++
			batch = append(batch, sp.Task)
		}
	}
	if len(batch) == 0 {
		return
	}
	s.apply(s.ctl.Submit(batch...))
}

// observeQueues publishes the controller's S_io/S_cpu depths as gauges.
func (s *Scheduler) observeQueues() {
	if s.eng.Metrics == nil {
		return
	}
	nio, ncpu := s.ctl.QueueLengths()
	s.gQDepthIO.Set(int64(nio))
	s.gQDepthCP.Set(int64(ncpu))
}

// apply executes a controller decision: adjust running tasks, launch
// started ones. A failure poisons the owning query rather than the whole
// service.
func (s *Scheduler) apply(d core.Decision) {
	e := s.eng
	defer s.observeQueues()
	if e.Trace != nil {
		for _, n := range d.Notes {
			// Notes attach to a task; suppress those of unsampled
			// queries (unattributed notes always trace).
			if q := s.byTask[n.TaskID]; q == nil || q.traced {
				e.schedEvent(n.Kind, fmt.Sprintf("task %d: %s", n.TaskID, n.Detail))
			}
		}
	}
	for _, a := range d.Adjusts {
		rt := s.running[a.Task.ID]
		if rt == nil {
			s.poison(s.byTask[a.Task.ID], fmt.Errorf("exec: adjust for task %d which is not running", a.Task.ID))
			continue
		}
		q := s.byTask[a.Task.ID]
		q.rep.Trace = append(q.rep.Trace, TraceEvent{Time: s.now(), Kind: "adjust", TaskID: a.Task.ID, Degree: a.Degree, Reason: a.Reason})
		if e.Trace != nil && q.traced {
			e.schedEvent("adjust", fmt.Sprintf("task %d to degree %d: %s", a.Task.ID, a.Degree, a.Reason))
		}
		if err := rt.adjust(a.Degree); err != nil {
			// The round was aborted; the slaves keep running with their old
			// assignments and will still post a completion.
			s.poison(q, err)
		}
	}
	for _, st := range d.Starts {
		q := s.byTask[st.Task.ID]
		spec := q.specs[st.Task.ID]
		fr, err := e.getFragRun(spec.Frag, s.temps, s.hashes, s.colHashes)
		if err != nil {
			s.abortStart(q, st.Task, err)
			continue
		}
		q.frs = append(q.frs, fr)
		drv, err := e.driverFor(fr)
		if err != nil {
			s.abortStart(q, st.Task, err)
			continue
		}
		fr.traced = q.traced
		if q.traced {
			fr.obsTid = e.Trace.Lane(obs.PidTasks, st.Task.Name)
		} else {
			fr.obsTid = 0
		}
		rt := &runningTask{eng: e, task: st.Task, fr: fr, drv: drv, slaves: make(map[int]*slaveState), startAt: e.now()}
		s.running[st.Task.ID] = rt
		q.rep.Trace = append(q.rep.Trace, TraceEvent{Time: s.now(), Kind: "start", TaskID: st.Task.ID, Degree: st.Degree, Reason: st.Reason})
		if e.Trace != nil && q.traced {
			e.schedEvent("start", fmt.Sprintf("task %d (%s) at degree %d: %s", st.Task.ID, st.Task.Name, st.Degree, st.Reason))
		}
		if err := rt.launch(st.Degree); err != nil {
			// launch only fails before any slave spawns, so no completion
			// will ever be posted for this task.
			delete(s.running, st.Task.ID)
			s.abortStart(q, st.Task, err)
		}
	}
}

// poison marks a query failed with the first error observed. Tasks it
// already handed to the controller drain normally; unsubmitted ones
// never run.
func (s *Scheduler) poison(q *query, err error) {
	if q != nil && q.failed == nil {
		q.failed = err
	}
}

// abortStart handles a task the controller just started but which could
// never launch a slave: no completion event will arrive, so it
// synthesizes one to keep the controller's running-set bookkeeping (and
// the query's drain accounting) consistent.
func (s *Scheduler) abortStart(q *query, t *core.Task, err error) {
	s.poison(q, err)
	q.done[t.ID] = true
	q.finished++
	s.apply(s.ctl.Complete(t))
	s.settleIfComplete(q)
}

// onTaskDone is the completion path: bookkeeping, output publication,
// controller notification, admission of waiting queries, and new-task
// submission — in the same order the one-shot loop used.
func (s *Scheduler) onTaskDone(ev taskDone) {
	e := s.eng
	id := ev.task.ID
	q := s.byTask[id]
	if q == nil || q.done[id] {
		return
	}
	if ev.err != nil {
		s.poison(q, fmt.Errorf("exec: task %d failed: %w", id, ev.err))
	}
	q.done[id] = true
	q.finished++
	delete(s.running, id)
	s.admEpoch++ // remaining admitted work changed; predictions are stale
	now := s.now()
	if ev.err == nil {
		q.rep.Finish[id] = now
		q.rep.Trace = append(q.rep.Trace, TraceEvent{Time: now, Kind: "complete", TaskID: id, Degree: 0})
		st := ev.rt.fragStat(now)
		q.rep.Frags[id] = st
		e.mTasks.Inc()
		e.hTaskUs.Observe(int64(st.Elapsed() / time.Microsecond))
		if e.Trace != nil && q.traced {
			detail := fmt.Sprintf("degrees %v; %d slaves, %d repartitions; in=%d out=%d tuples, %d batches",
				st.Degrees, st.Slaves, st.Repartitions, st.TuplesIn, st.TuplesOut, st.Batches)
			e.Trace.Span(st.Start, st.Elapsed(), obs.PidTasks, ev.rt.fr.obsTid, "frag", ev.task.Name, detail)
			e.schedEvent("complete", fmt.Sprintf("task %d (%s): %s", id, ev.task.Name, detail))
		}
		// Publish the fragment's output for consumers.
		frag := q.specs[id].Frag
		switch frag.Out {
		case plan.HashOut:
			if ev.rt.fr.outColHash != nil {
				s.colHashes[frag] = ev.rt.fr.outColHash
			} else {
				s.hashes[frag] = ev.rt.fr.outHash
			}
		case plan.RootOut:
			s.temps[frag] = ev.rt.fr.outTemp
			q.rep.Results[id] = ev.rt.fr.outTemp
		default:
			s.temps[frag] = ev.rt.fr.outTemp
		}
	}
	// Tell the controller about the completion before admitting or
	// submitting the tasks it unblocked, so its running-set is
	// consistent.
	s.apply(s.ctl.Complete(ev.task))
	s.settleIfComplete(q)
	s.submitReady()
}

// settleIfComplete finalizes a query whose controller-owned work has
// fully drained.
func (s *Scheduler) settleIfComplete(q *query) {
	if q.complete() && s.queries[q.id] != nil {
		s.finishQuery(q)
	}
}

// finishQuery seals the query's report, releases its admission charge,
// wakes its waiter, and admits queued queries that now fit.
func (s *Scheduler) finishQuery(q *query) {
	e := s.eng
	now := s.now()
	rep := q.rep
	rep.SubmittedAt = q.submitRel
	rep.AdmittedAt = q.admitRel
	rep.QueueWait = q.admitRel - q.submitRel
	rep.Elapsed = now - q.submitRel
	rep.Disk = e.Store.Disks.Stats()
	// Per-query event slices and metrics snapshots are captured only for
	// sampled queries: at serving scale these copies — not the span ring
	// itself — would dominate memory and master-loop time.
	if e.Trace != nil && q.traced {
		rep.Events = e.Trace.Since(q.traceMark)
	}
	if e.Metrics != nil && q.traced {
		rep.Metrics = e.Metrics.Snapshot()
	}
	if q.failed != nil {
		s.series.Count("failed", 1)
	} else {
		s.series.Count("completed", 1)
	}
	s.series.Observe("response_us", int64(rep.Elapsed/time.Microsecond))
	s.slo.Record(q.tenant, now, rep.Elapsed, rep.QueueWait)

	// Release master-side state.
	delete(s.queries, q.id)
	for _, id := range q.ids {
		delete(s.byTask, id)
		delete(s.temps, q.specs[id].Frag)
		delete(s.hashes, q.specs[id].Frag)
		if cht := s.colHashes[q.specs[id].Frag]; cht != nil {
			cht.release()
			delete(s.colHashes, q.specs[id].Frag)
		}
	}
	for _, fr := range q.frs {
		e.putFragRun(fr)
	}
	q.frs = nil
	s.inflight--
	s.admEpoch++ // the admitted mix changed; cached predictions are stale
	s.nAdmitted--
	s.memInUse -= q.mem
	ts := s.tenant(q.tenant)
	ts.admitted--
	ts.gRun.Set(int64(ts.admitted))
	s.gInflight.Set(int64(s.inflight))
	s.seriesGauges()
	s.deregisterIDs(q)
	if e.Trace != nil && q.traced {
		e.schedEvent("query-done", fmt.Sprintf(
			"query %d: %d tasks in %v (queue wait %v)", q.id, len(q.ids), rep.Elapsed, rep.QueueWait))
	}

	if q.failed != nil {
		q.handle.settle(nil, q.failed)
	} else {
		q.handle.settle(rep, nil)
	}

	s.wakeAdmitQ()
	putQuery(q)
}

// wakeAdmitQ admits waiting queries that now fit, in the order the
// admission policy dictates. The default "fifo" policy reproduces the
// historical behavior exactly: strict head-of-line FIFO without
// per-tenant caps (wake in intake order until the oldest waiter no
// longer fits), fair-share first-eligible scan with them. Each round
// re-asks the policy from fresh state because admitting a degenerate
// empty query can recursively finish it — and recursively re-enter this
// wake — mutating the wait queues mid-loop. A policy may also return a
// shed verdict (the deadline policy giving up on a hopeless waiter);
// the round then continues with the next pick.
func (s *Scheduler) wakeAdmitQ() {
	if s.nWaiting == 0 {
		return
	}
	now := s.now()
	for s.nWaiting > 0 {
		q, shedErr := s.admPol.next(s, now)
		if q == nil {
			return
		}
		if shedErr != nil {
			s.shedWith(q, shedErr)
			continue
		}
		s.admit(q, now)
	}
}

// Timeline snapshots the scheduler's windowed telemetry: per-window
// submitted/admitted/shed/completed counters, admission-queue and
// running-query gauge samples, and queue-wait/response distributions.
// Safe to call at any time; the timeline is fed only by the master
// loop, so for a deterministic run the snapshot at a quiescent point is
// byte-identical across reruns and GOMAXPROCS.
func (s *Scheduler) Timeline() obs.SeriesSnapshot { return s.series.Snapshot() }

// TenantSLOs snapshots per-tenant SLO state (windowed nearest-rank
// response/queue-wait percentiles, breach and shed counters), sorted by
// tenant name.
func (s *Scheduler) TenantSLOs() []obs.TenantSLO { return s.slo.Snapshot() }
