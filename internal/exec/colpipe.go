package exec

import (
	"fmt"

	"xprs/internal/expr"
	"xprs/internal/plan"
	"xprs/internal/storage"
)

// The columnar pipeline is the default execution path: drivers decode
// pages straight into column vectors, filters produce selection vectors
// instead of copying survivors, hash joins emit by appending column
// values, and aggregation folds through a dense accumulator window. The
// row pipeline (pipeline.go) remains fully supported — Engine.RowBatches
// forces it, and any fragment shape the columnar compiler does not cover
// (nestloops, index scans, merge joins) falls back to it per fragment.
//
// Both layouts charge the identical per-tuple CPU at the identical
// points (probe per live tuple, emit per match, fold per live tuple,
// insert per built row), so the virtual clock cannot tell them apart:
// switching layouts moves wall-clock time and allocations only.
//
// A query can mix layouts per fragment, so a hash join must be able to
// probe whichever table kind its build fragment produced: the columnar
// probe bridges to a row HashTable by materializing match tuples, and
// the row probe bridges to a ColHashTable the same way. The bridges
// charge exactly what the native paths charge.

// colProc consumes one columnar batch inside a slave. Batches are
// read-only apart from Sel, which filter stages swap and restore; rows
// must be copied out, never retained (driver batches are per-slave
// scratch or shared page-cache views).
type colProc func(sc *slaveCtx, b *storage.ColBatch) error

// colConsumer is a compiled columnar stage. Columnar chains never
// contain blocking operators (nestloops compile to the row path), so
// unlike consumer there are no retains/blocking facts to carry.
type colConsumer struct {
	proc colProc
}

// colSupported reports whether the fragment can run on the columnar
// pipeline: a page-partitioned driver and a tree of the vectorized
// operators only.
func (fr *fragRun) colSupported() bool {
	if _, kind := fr.frag.Driver(); kind != plan.PageDriver {
		return false
	}
	return colNodeSupported(fr.frag.Root, true)
}

func colNodeSupported(n plan.Node, atRoot bool) bool {
	switch x := n.(type) {
	case *plan.SeqScan:
		return true
	case *plan.FragScan:
		return true
	case *plan.Sort:
		return atRoot && colNodeSupported(x.Child, false)
	case *plan.Agg:
		return atRoot && colNodeSupported(x.Child, false)
	case *plan.HashJoin:
		if _, ok := x.Right.(*plan.FragScan); !ok {
			return false
		}
		return colNodeSupported(x.Left, false)
	default:
		return false
	}
}

// processColBatch feeds one driver batch through the columnar pipeline,
// keeping the same stat totals the row path records.
func (fr *fragRun) processColBatch(sc *slaveCtx, b *storage.ColBatch) error {
	fr.statBatches.Add(1)
	fr.statTuplesIn.Add(int64(b.N))
	fr.eng.mBatches.Add(1)
	fr.eng.mTuples.Add(int64(b.N))
	return fr.colRoot(sc, b)
}

// newColOut reserves a per-slave output-batch slot for one emitting
// operator (the columnar analogue of newArena).
func (fr *fragRun) newColOut() int {
	s := fr.nColOuts
	fr.nColOuts++
	return s
}

// newSel reserves a per-slave selection-scratch slot (a ping-pong buffer
// pair) for one filter stage.
func (fr *fragRun) newSel() int {
	s := fr.nSels
	fr.nSels++
	return s
}

// compileColSink builds the terminal columnar consumer: batches append
// into the output temp under one lock round-trip, or partition into the
// slave's private columnar hash builder.
func (fr *fragRun) compileColSink() colConsumer {
	if fr.outColHash != nil {
		insertCPU := fr.eng.Params.HashInsertCPU
		return colConsumer{proc: func(sc *slaveCtx, b *storage.ColBatch) error {
			live := b.Live()
			if live == 0 {
				return nil
			}
			sc.chargeCPUPer(insertCPU, live)
			fr.statTuplesOut.Add(int64(live))
			if sc.colHb == nil {
				sc.colHb = fr.outColHash.builderIn(&sc.colHbScratch)
			}
			return sc.colHb.InsertBatch(b)
		}}
	}
	return colConsumer{proc: func(sc *slaveCtx, b *storage.ColBatch) error {
		live := b.Live()
		if live == 0 {
			return nil
		}
		fr.statTuplesOut.Add(int64(live))
		fr.outTemp.AppendCols(b)
		return nil
	}}
}

// compileCol builds the columnar chain for the subtree rooted at n,
// feeding cons. need, when non-nil, lists the joined-output columns the
// consumer actually reads (a root aggregate's group and argument
// columns); emitting joins prune the rest so dead text columns are
// never copied.
func (fr *fragRun) compileCol(n plan.Node, cons colConsumer, atRoot bool, need map[int]bool) (colConsumer, error) {
	switch x := n.(type) {
	case *plan.SeqScan:
		return fr.compileColFilter(x.Filter, cons), nil

	case *plan.FragScan:
		return cons, nil

	case *plan.Sort:
		if !atRoot {
			return colConsumer{}, fmt.Errorf("exec: Sort below fragment root")
		}
		return fr.compileCol(x.Child, cons, false, nil)

	case *plan.Agg:
		if !atRoot {
			return colConsumer{}, fmt.Errorf("exec: Agg below fragment root")
		}
		fr.aggNode = x
		fr.agg = newAggState(x)
		fr.agg.eng = fr.eng
		foldCPU := fr.eng.Params.HashInsertCPU
		acc := colConsumer{proc: func(sc *slaveCtx, b *storage.ColBatch) error {
			live := b.Live()
			if live == 0 {
				return nil
			}
			sc.chargeCPUPer(foldCPU, live)
			sc.accumulateBatchCols(fr.agg, b)
			return nil
		}}
		childNeed := make(map[int]bool)
		if x.GroupCol >= 0 {
			childNeed[x.GroupCol] = true
		}
		for _, f := range x.Funcs {
			if f.Col >= 0 {
				childNeed[f.Col] = true
			}
		}
		return fr.compileCol(x.Child, acc, false, childNeed)

	case *plan.HashJoin:
		fs, ok := x.Right.(*plan.FragScan)
		if !ok {
			return colConsumer{}, fmt.Errorf("exec: HashJoin build side is %T, want FragScan (decompose first)", x.Right)
		}
		lcol := x.LCol
		probeCPU := fr.eng.Params.HashProbeCPU
		emitCPU := fr.eng.Params.EmitCPU
		buildFrag := fs.Frag
		slot := fr.newColOut()
		outSchema := x.OutSchema()
		var prune []int
		if need != nil {
			for c := range outSchema.Cols {
				if !need[c] {
					prune = append(prune, c)
				}
			}
		}
		limit := fr.eng.batchSize()
		proc := func(sc *slaveCtx, b *storage.ColBatch) error {
			live := b.Live()
			if live == 0 {
				return nil
			}
			cht := fr.colHashes[buildFrag]
			var rht *HashTable
			if cht == nil {
				rht = fr.hashes[buildFrag]
				if rht == nil {
					return fmt.Errorf("exec: hash table for fragment f%d not built", buildFrag.ID)
				}
			}
			if lcol < 0 || lcol >= len(b.Vecs) {
				return fmt.Errorf("exec: probe column %d out of range (tuple has %d)", lcol, len(b.Vecs))
			}
			sc.chargeCPUPer(probeCPU, live)
			out := sc.colOutBatch(slot, fr.eng, outSchema, prune)
			flush := func() error {
				if out.N == 0 {
					return nil
				}
				err := cons.proc(sc, out)
				out.Reset()
				return err
			}
			var keys []int32
			if b.Vecs[lcol].Typ == storage.Int4 {
				keys = b.Vecs[lcol].Ints
			}
			emitRow := func(row int) error {
				key := int32(0)
				if keys != nil {
					key = keys[row]
				}
				if cht != nil {
					store, start, cnt := cht.ProbeKey(key)
					for m := int32(0); m < cnt; m++ {
						sc.chargeCPU(emitCPU)
						out.AppendJoined(b, row, store, int(start+m))
						if out.N >= limit {
							if err := flush(); err != nil {
								return err
							}
						}
					}
					return nil
				}
				for _, bt := range rht.Probe(key) {
					sc.chargeCPU(emitCPU)
					out.AppendJoinedTuple(b, row, bt)
					if out.N >= limit {
						if err := flush(); err != nil {
							return err
						}
					}
				}
				return nil
			}
			if b.Sel == nil {
				for row := 0; row < b.N; row++ {
					if err := emitRow(row); err != nil {
						return err
					}
				}
			} else {
				for _, row := range b.Sel {
					if err := emitRow(int(row)); err != nil {
						return err
					}
				}
			}
			return flush()
		}
		return fr.compileCol(x.Left, colConsumer{proc: proc}, false, nil)

	default:
		return colConsumer{}, fmt.Errorf("exec: cannot compile node %T on the columnar path", n)
	}
}

// compileColFilter wraps cons with a leaf qualification compiled to a
// selection-vector chain: the top-level AND factors apply in sequence,
// each narrowing the previous selection, ping-ponging between the
// slave's two scratch buffers. The batch's own selection vector is
// swapped in for the downstream call and restored after — driver batches
// are per-slave views, so the mutation is invisible outside the chain.
func (fr *fragRun) compileColFilter(filter expr.Expr, cons colConsumer) colConsumer {
	chain := expr.CompileColPredChain(filter)
	if len(chain) == 0 {
		return cons
	}
	slot := fr.newSel()
	return colConsumer{proc: func(sc *slaveCtx, b *storage.ColBatch) error {
		fr.eng.mSelIn.Add(int64(b.Live()))
		a, bbuf := sc.selScratch(slot)
		cur := b.Sel
		parity := 0
		for _, p := range chain {
			dst := *a
			if parity == 1 {
				dst = *bbuf
			}
			res, err := p(b, cur, dst[:0])
			if parity == 0 {
				*a = res
			} else {
				*bbuf = res
			}
			if err != nil {
				return err
			}
			if len(res) == 0 {
				return nil
			}
			cur = res
			parity ^= 1
		}
		fr.eng.mSelOut.Add(int64(len(cur)))
		save := b.Sel
		b.Sel = cur
		err := cons.proc(sc, b)
		b.Sel = save
		return err
	}}
}
