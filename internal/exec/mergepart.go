package exec

import (
	"fmt"
	"slices"

	"xprs/internal/btree"
	"xprs/internal/plan"
	"xprs/internal/storage"
)

// Merge-range partitioning: a MergeJoin fragment reads two temps sorted
// on the join keys; the key domain is split into balanced intervals and
// each slave merges one interval ("joins are parallelized using either
// page partitioning or range partitioning depending on the type of
// scans in their inner and outer plans" — a merge of two sorted streams
// is the range-partitioned case). Adjustment reuses the Figure 6 idea:
// paused slaves report their remaining key intervals, the master
// redistributes them using the left temp's key distribution.

// mergeAssign is one slave's remaining join-key intervals.
type mergeAssign struct {
	intervals []btree.Interval
}

type mergeDriver struct {
	fr          *fragRun
	join        *plan.MergeJoin
	left, right *Temp
	lcol, rcol  int
	// slot is the per-slave value arena joined tuples are built in when
	// the consumer does not retain them.
	slot int
}

func newMergeDriver(fr *fragRun, leaf plan.Node) (*mergeDriver, error) {
	mj, ok := leaf.(*plan.MergeJoin)
	if !ok {
		return nil, fmt.Errorf("exec: merge driver over %T", leaf)
	}
	lf, ok := mj.Left.(*plan.FragScan)
	if !ok {
		return nil, fmt.Errorf("exec: merge join left input is %T, want sorted FragScan", mj.Left)
	}
	rf, ok := mj.Right.(*plan.FragScan)
	if !ok {
		return nil, fmt.Errorf("exec: merge join right input is %T, want sorted FragScan", mj.Right)
	}
	left, err := fr.tempOf(lf)
	if err != nil {
		return nil, err
	}
	right, err := fr.tempOf(rf)
	if err != nil {
		return nil, err
	}
	if left.SortedBy() != mj.LCol || right.SortedBy() != mj.RCol {
		return nil, fmt.Errorf("exec: merge join inputs not sorted on join columns")
	}
	return &mergeDriver{fr: fr, join: mj, left: left, right: right, lcol: mj.LCol, rcol: mj.RCol, slot: fr.newArena()}, nil
}

// keyBounds returns the union of both inputs' key ranges.
func (d *mergeDriver) keyBounds() (int32, int32, bool) {
	llo, lhi, lok := d.left.Bounds(d.lcol)
	rlo, rhi, rok := d.right.Bounds(d.rcol)
	switch {
	case lok && rok:
		if rlo < llo {
			llo = rlo
		}
		if rhi > lhi {
			lhi = rhi
		}
		return llo, lhi, true
	case lok:
		return llo, lhi, true
	case rok:
		return rlo, rhi, true
	default:
		return 0, 0, false
	}
}

// splitByLeftQuantiles splits [lo, hi] into up to k intervals holding
// roughly equal numbers of left-input tuples.
func (d *mergeDriver) splitByLeftQuantiles(lo, hi int32, k int) []btree.Interval {
	if k <= 1 || lo > hi {
		return []btree.Interval{{Lo: lo, Hi: hi}}
	}
	tuples := d.left.Tuples()
	start := d.left.lowerBound(d.lcol, lo)
	end := d.left.upperBound(d.lcol, hi)
	n := end - start
	if n == 0 {
		return []btree.Interval{{Lo: lo, Hi: hi}}
	}
	var out []btree.Interval
	curLo := lo
	for part := 1; part < k; part++ {
		idx := start + n*part/k
		if idx >= end {
			break
		}
		b := tuples[idx].Vals[d.lcol].Int
		if b >= hi {
			break
		}
		if b < curLo {
			continue
		}
		out = append(out, btree.Interval{Lo: curLo, Hi: b})
		curLo = b + 1
	}
	out = append(out, btree.Interval{Lo: curLo, Hi: hi})
	return out
}

func (d *mergeDriver) initial(degree int) ([]assignment, error) {
	if degree < 1 {
		return nil, fmt.Errorf("exec: degree %d", degree)
	}
	lo, hi, ok := d.keyBounds()
	out := make([]assignment, degree)
	if !ok {
		return out, nil // both inputs empty
	}
	ivs := d.splitByLeftQuantiles(lo, hi, degree)
	for i := range ivs {
		if i < degree {
			out[i] = &mergeAssign{intervals: []btree.Interval{ivs[i]}}
		}
	}
	return out, nil
}

func (d *mergeDriver) repartition(remaining []report, degree int) ([]assignment, error) {
	if degree < 1 {
		return nil, fmt.Errorf("exec: degree %d", degree)
	}
	var all []btree.Interval
	for _, r := range remaining {
		ma, ok := r.(*mergeAssign)
		if !ok {
			return nil, fmt.Errorf("exec: merge driver got report %T", r)
		}
		for _, iv := range ma.intervals {
			if !iv.Empty() {
				all = append(all, iv)
			}
		}
	}
	slices.SortFunc(all, func(a, b btree.Interval) int {
		switch {
		case a.Lo < b.Lo:
			return -1
		case a.Lo > b.Lo:
			return 1
		}
		return 0
	})
	if d.fr.tracing() {
		d.fr.traceInstant("protocol", "interval-redeal", fmt.Sprintf(
			"%d remaining merge-key intervals split on left-input quantiles over %d slaves",
			len(all), degree))
	}
	// Split each remaining interval into degree quantile parts and deal
	// them round-robin; with the common case of one big remaining
	// interval this reproduces a balanced split.
	parts := make([][]btree.Interval, degree)
	for n, iv := range all {
		subs := d.splitByLeftQuantiles(iv.Lo, iv.Hi, degree)
		for i, sub := range subs {
			slot := (i + n) % degree
			parts[slot] = append(parts[slot], sub)
		}
	}
	out := make([]assignment, degree)
	for i, p := range parts {
		if len(p) > 0 {
			out[i] = &mergeAssign{intervals: p}
		}
	}
	return out, nil
}

// run merges the assigned key intervals, emitting joined tuples through
// the fragment pipeline, with checkpoints between key groups.
func (d *mergeDriver) run(sc *slaveCtx) error {
	a, ok := sc.state.assign.(*mergeAssign)
	if !ok {
		return fmt.Errorf("exec: merge slave got assignment %T", sc.state.assign)
	}
	p := d.fr.eng.Params
	lt := d.left.Tuples()
	rt := d.right.Tuples()
	cons := d.fr.root
	limit := d.fr.emitLimit(cons)
	bp := sc.getBatch()
	out := *bp
	defer func() {
		*bp = out
		sc.putBatch(bp)
	}()
	flush := func() error {
		if len(out) == 0 {
			return nil
		}
		err := cons.proc(sc, out)
		out = out[:0]
		if !cons.retains {
			sc.arenaReset(d.slot)
		}
		return err
	}
	for {
		if len(a.intervals) == 0 {
			return nil
		}
		iv := a.intervals[0]
		if iv.Empty() {
			a.intervals = a.intervals[1:]
			continue
		}
		li := d.left.lowerBound(d.lcol, iv.Lo)
		ri := d.right.lowerBound(d.rcol, iv.Lo)
		// Find the next key group with any tuple in the interval.
		var key int32
		switch {
		case li < len(lt) && lt[li].Vals[d.lcol].Int <= iv.Hi:
			key = lt[li].Vals[d.lcol].Int
			if ri < len(rt) && rt[ri].Vals[d.rcol].Int <= iv.Hi && rt[ri].Vals[d.rcol].Int < key {
				key = rt[ri].Vals[d.rcol].Int
			}
		case ri < len(rt) && rt[ri].Vals[d.rcol].Int <= iv.Hi:
			key = rt[ri].Vals[d.rcol].Int
		default:
			a.intervals = a.intervals[1:]
			continue
		}
		// Consume the full group `key` on both sides.
		lg := d.group(lt, d.lcol, li, key)
		rg := d.group(rt, d.rcol, ri, key)
		sc.chargeCPU(p.MergeStepCPU * float64(len(lg)+len(rg)))
		for _, l := range lg {
			for _, r := range rg {
				sc.chargeCPU(p.EmitCPU)
				if cons.retains {
					out = append(out, l.Concat(r))
				} else {
					out = append(out, sc.arenaConcat(d.slot, l, r))
				}
				if len(out) >= limit {
					if err := flush(); err != nil {
						return err
					}
				}
			}
		}
		// Deliver the group before the checkpoint so adjustments pause
		// with no buffered output in flight.
		if err := flush(); err != nil {
			return err
		}
		if key >= iv.Hi {
			a.intervals = a.intervals[1:]
		} else {
			a.intervals[0].Lo = key + 1
		}
		next := sc.checkpoint(a)
		if next == nil {
			return nil
		}
		na, ok := next.(*mergeAssign)
		if !ok {
			return fmt.Errorf("exec: merge slave reassigned %T", next)
		}
		a = na
	}
}

// group returns the run of tuples with col == key starting at or after
// idx.
func (d *mergeDriver) group(tuples []storage.Tuple, col, idx int, key int32) []storage.Tuple {
	for idx < len(tuples) && tuples[idx].Vals[col].Int < key {
		idx++
	}
	start := idx
	for idx < len(tuples) && tuples[idx].Vals[col].Int == key {
		idx++
	}
	return tuples[start:idx]
}
