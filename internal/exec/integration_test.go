package exec

import (
	"fmt"
	"slices"
	"testing"

	"xprs/internal/core"
	"xprs/internal/expr"
	"xprs/internal/plan"
	"xprs/internal/storage"
)

// refJoin computes the expected multiset of (l.a, r.a) join results by
// brute force over the base relations.
func refJoin(t *testing.T, l, r *storage.Relation, lcol, rcol int) map[[2]int32]int {
	t.Helper()
	read := func(rel *storage.Relation, col int) []int32 {
		var out []int32
		for p := int64(0); p < rel.NPages(); p++ {
			tuples, err := rel.PageTuples(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, tp := range tuples {
				out = append(out, tp.Vals[col].Int)
			}
		}
		return out
	}
	lv, rv := read(l, lcol), read(r, rcol)
	counts := map[int32]int{}
	for _, v := range rv {
		counts[v]++
	}
	out := map[[2]int32]int{}
	for _, v := range lv {
		if c := counts[v]; c > 0 {
			out[[2]int32{v, v}] += c
		}
	}
	return out
}

// TestDeepPipelineQuery drives a three-join bushy plan mixing all three
// join methods through the engine and compares against brute force:
//
//	Sort( NestLoop( MergeJoin(sort(r1), sort(r2)), Material(r3) ) )
//	         ... joined by HashJoin with r4 on top.
func TestDeepPipelineQuery(t *testing.T) {
	v, eng := testEngine(64)
	r1 := buildRel(t, eng.Store, "d1", 300, 60, 20)
	r2 := buildRel(t, eng.Store, "d2", 240, 60, 20)
	r3 := buildRel(t, eng.Store, "d3", 120, 60, 20)
	r4 := buildRel(t, eng.Store, "d4", 180, 60, 20)

	mj := &plan.MergeJoin{
		Left:  &plan.Sort{Child: &plan.SeqScan{Rel: r1}, Col: 0},
		Right: &plan.Sort{Child: &plan.SeqScan{Rel: r2}, Col: 0},
		LCol:  0, RCol: 0,
	}
	nl := &plan.NestLoop{
		Outer: mj,
		Inner: &plan.Material{Child: &plan.SeqScan{Rel: r3}},
		Pred:  expr.Cmp{Op: expr.EQ, L: expr.Col{Idx: 0}, R: expr.Col{Idx: 4}},
	}
	top := &plan.HashJoin{
		Left:  nl,
		Right: &plan.SeqScan{Rel: r4},
		LCol:  0, RCol: 0,
	}
	if err := plan.Validate(top); err != nil {
		t.Fatal(err)
	}
	specs, g := specFor(t, eng, top, 0)
	// Fragments: sort(r1), sort(r2), temp(r3), build(r4), root = 5.
	if len(specs) != 5 {
		t.Fatalf("specs = %d", len(specs))
	}
	rep := runOne(t, v, eng, specs, core.InterAdj)
	res := rep.Results[g.Root.ID]

	// Expected row count: multiply per-key multiplicities.
	count := func(rel *storage.Relation) map[int32]int {
		m := map[int32]int{}
		for p := int64(0); p < rel.NPages(); p++ {
			tuples, _ := rel.PageTuples(p)
			for _, tp := range tuples {
				m[tp.Vals[0].Int]++
			}
		}
		return m
	}
	c1, c2, c3, c4 := count(r1), count(r2), count(r3), count(r4)
	want := 0
	for k, n1 := range c1 {
		want += n1 * c2[k] * c3[k] * c4[k]
	}
	if res.Len() != want {
		t.Fatalf("deep pipeline rows = %d, want %d", res.Len(), want)
	}
	// Every output row agrees on all four join keys.
	for _, tp := range res.Tuples() {
		if len(tp.Vals) != 8 {
			t.Fatalf("row width %d", len(tp.Vals))
		}
		k := tp.Vals[0].Int
		if tp.Vals[2].Int != k || tp.Vals[4].Int != k || tp.Vals[6].Int != k {
			t.Fatalf("key mismatch in %v", tp.Vals)
		}
	}
}

// TestTwoQueriesShareMachine runs two independent queries' fragments as
// one task set (the multi-user case): both must produce exactly their
// single-user results.
func TestTwoQueriesShareMachine(t *testing.T) {
	v, eng := testEngine(0)
	a1 := buildRel(t, eng.Store, "a1", 500, 100, 24)
	a2 := buildRel(t, eng.Store, "a2", 300, 100, 24)
	b1 := buildRel(t, eng.Store, "b1", 400, 80, 600)
	b2 := buildRel(t, eng.Store, "b2", 200, 80, 600)

	q1 := &plan.HashJoin{Left: &plan.SeqScan{Rel: a1}, Right: &plan.SeqScan{Rel: a2}, LCol: 0, RCol: 0}
	q2 := &plan.HashJoin{Left: &plan.SeqScan{Rel: b1}, Right: &plan.SeqScan{Rel: b2}, LCol: 0, RCol: 0}
	specs1, g1 := specFor(t, eng, q1, 0)
	specs2, g2 := specFor(t, eng, q2, 100)
	rep := runOne(t, v, eng, append(specs1, specs2...), core.InterAdj)

	ref1 := refJoin(t, a1, a2, 0, 0)
	ref2 := refJoin(t, b1, b2, 0, 0)
	checkJoin := func(res *Temp, want map[[2]int32]int, label string) {
		got := map[[2]int32]int{}
		for _, tp := range res.Tuples() {
			got[[2]int32{tp.Vals[0].Int, tp.Vals[2].Int}]++
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d distinct pairs, want %d", label, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("%s: pair %v count %d, want %d", label, k, got[k], n)
			}
		}
	}
	checkJoin(rep.Results[g1.Root.ID], ref1, "q1")
	checkJoin(rep.Results[100+g2.Root.ID], ref2, "q2")
}

// TestResultsIndependentOfPolicy asserts the engine's answers are
// policy-invariant: scheduling changes timing, never semantics.
func TestResultsIndependentOfPolicy(t *testing.T) {
	collect := func(pol core.Policy) []string {
		v, eng := testEngine(0)
		r1 := buildRel(t, eng.Store, "r1", 400, 50, 24)
		r2 := buildRel(t, eng.Store, "r2", 150, 50, 900)
		q := &plan.HashJoin{Left: &plan.SeqScan{Rel: r1}, Right: &plan.SeqScan{Rel: r2}, LCol: 0, RCol: 0}
		specs, g := specFor(t, eng, q, 0)
		sel, _ := specFor(t, eng, &plan.SeqScan{Rel: r2, Filter: expr.ColRange(0, "a", 0, 24)}, 50)
		rep := runOne(t, v, eng, append(specs, sel...), pol)
		var rows []string
		for _, tp := range rep.Results[g.Root.ID].Tuples() {
			rows = append(rows, fmt.Sprintf("%d|%d", tp.Vals[0].Int, tp.Vals[2].Int))
		}
		for _, tp := range rep.Results[50].Tuples() {
			rows = append(rows, fmt.Sprintf("s%d", tp.Vals[0].Int))
		}
		slices.Sort(rows)
		return rows
	}
	base := collect(core.IntraOnly)
	for _, pol := range []core.Policy{core.InterNoAdj, core.InterAdj} {
		got := collect(pol)
		if len(got) != len(base) {
			t.Fatalf("%v: %d rows, want %d", pol, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("%v: row %d = %s, want %s", pol, i, got[i], base[i])
			}
		}
	}
}

// TestMemoryBudgetEndToEnd runs two hash-join queries under a budget too
// small for both hash tables: they must serialize their build fragments
// yet still produce correct results.
func TestMemoryBudgetEndToEnd(t *testing.T) {
	v, eng := testEngine(0)
	a1 := buildRel(t, eng.Store, "a1", 500, 100, 24)
	a2 := buildRel(t, eng.Store, "a2", 300, 100, 24)
	b1 := buildRel(t, eng.Store, "b1", 400, 80, 24)
	b2 := buildRel(t, eng.Store, "b2", 200, 80, 24)
	q1 := &plan.HashJoin{Left: &plan.SeqScan{Rel: a1}, Right: &plan.SeqScan{Rel: a2}, LCol: 0, RCol: 0}
	q2 := &plan.HashJoin{Left: &plan.SeqScan{Rel: b1}, Right: &plan.SeqScan{Rel: b2}, LCol: 0, RCol: 0}
	specs1, g1 := specFor(t, eng, q1, 0)
	specs2, g2 := specFor(t, eng, q2, 100)
	// Budget below the combined build-side estimates.
	var budget int64
	for _, s := range append(append([]TaskSpec{}, specs1...), specs2...) {
		if s.Task.MemBytes > budget {
			budget = s.Task.MemBytes
		}
	}
	var rep *Report
	var err error
	v.Run(func() {
		rep, err = eng.Run(append(specs1, specs2...), core.InterAdj, core.Options{MemoryBudget: budget})
	})
	if err != nil {
		t.Fatal(err)
	}
	checkRef := func(res *Temp, l, r *storage.Relation, label string) {
		want := refJoin(t, l, r, 0, 0)
		total := 0
		for _, n := range want {
			total += n
		}
		if res.Len() != total {
			t.Fatalf("%s rows = %d, want %d", label, res.Len(), total)
		}
	}
	checkRef(rep.Results[g1.Root.ID], a1, a2, "q1")
	checkRef(rep.Results[100+g2.Root.ID], b1, b2, "q2")
}
