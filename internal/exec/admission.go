package exec

import (
	"fmt"
	"math"
	"slices"
	"time"

	"xprs/internal/core"
)

// Pluggable admission ordering. The scheduler's wake loop (wakeAdmitQ)
// used to hardwire the two historical behaviors — strict head-of-line
// FIFO, and the fair-share first-eligible scan under per-tenant quotas;
// an AdmissionPolicy factors that decision out, following the same
// identity-default contract as core.QueuePolicy: the default "fifo"
// policy reproduces the historical wake order bit for bit, so every
// report produced before the abstraction existed is unchanged by it
// (DESIGN.md §15).
//
// The predictive policies lean on the repo's own completion-time
// predictor: parcost's analytic fragment-schedule simulation
// (core.Simulate), a pure function of task descriptions — no wall
// clock, no randomness — so predictions are deterministic and
// vclockpurity-clean by construction. "pred-sjf" admits the waiter the
// simulation says would finish first next to the currently admitted
// mix; "deadline" admits least-slack-first against per-query deadlines
// (SubmitOptions.Deadline) or tenant SLO targets, and sheds a waiter
// whose best-case schedule — simulated alone on an idle machine —
// already misses its deadline. Any policy composes with the aging
// wrapper (AdmissionConfig.AgingMaxWait), which bounds starvation by
// promoting the oldest waiter to strict head-of-line once it has
// waited too long.

// AdmissionPolicy orders the scheduler's admission waiters: each call
// picks which waiting query the scheduler acts on next. The interface
// has an unexported method on purpose — policies see master-owned
// scheduler state, so implementations live in this package and are
// selected by name (AdmissionConfig.Policy).
type AdmissionPolicy interface {
	// Name identifies the policy in bench output and ops surfaces.
	Name() string
	// next picks the next waiter and removes it from the wait queues
	// (takeWaiter), or returns (nil, nil) to end the wake round. A
	// non-nil error means "shed this waiter with this error" instead of
	// admitting it; the wake round then continues.
	next(s *Scheduler, now time.Duration) (*query, error)
}

// admissionScreener is an optional policy hook run at submission,
// before a query is admitted or parked: a non-nil error sheds the
// query immediately (the deadline policy's hopeless check).
type admissionScreener interface {
	screen(s *Scheduler, q *query, now time.Duration) error
}

// AdmissionPolicyByName resolves AdmissionConfig.Policy: "fifo" (or
// empty) is the identity default, "pred-sjf" ranks waiters by predicted
// completion, "deadline" is least-slack-first with hopeless shedding.
// A positive aging duration wraps the policy with max-wait promotion.
func AdmissionPolicyByName(name string, aging time.Duration) (AdmissionPolicy, error) {
	var pol AdmissionPolicy
	switch name {
	case "", "fifo":
		pol = fifoAdmission{}
	case "pred-sjf":
		pol = &predSJFAdmission{cache: make(map[int]time.Duration)}
	case "deadline":
		pol = &deadlineAdmission{pred: predSJFAdmission{cache: make(map[int]time.Duration)}}
	default:
		return nil, fmt.Errorf("exec: unknown admission policy %q (want fifo, pred-sjf or deadline)", name)
	}
	if aging > 0 {
		pol = &agingAdmission{inner: pol, maxWait: aging}
	}
	return pol, nil
}

// fifoAdmission is the identity default: the exact wake order the
// scheduler used before AdmissionPolicy existed. Without per-tenant
// caps it is strict head-of-line — the globally oldest waiter admits
// or nothing does; with TenantMaxQueries it is the fair-share scan —
// the oldest waiter whose admission passes, skipping quota-blocked
// tenants.
type fifoAdmission struct{}

func (fifoAdmission) Name() string { return "fifo" }

func (fifoAdmission) next(s *Scheduler, now time.Duration) (*query, error) {
	if s.adm.TenantMaxQueries <= 0 {
		ts, q := s.oldestWaiter()
		if q == nil || !s.admits(q) {
			return nil, nil
		}
		return s.takeWaiter(ts, 0), nil
	}
	ts, i := s.firstEligibleWaiter()
	if ts == nil {
		return nil, nil
	}
	return s.takeWaiter(ts, i), nil
}

// predSJFAdmission is predicted shortest-job-first: among the waiters
// that fit the admission budget, admit the one parcost's simulation
// predicts would complete earliest if run next to the currently
// admitted queries' remaining work. Predictions are cached per query
// and invalidated wholesale whenever the admission state changes
// (admEpoch: admissions, query finishes, task completions) — within
// one epoch the mix is fixed, so a waiter's prediction cannot change.
type predSJFAdmission struct {
	epoch uint64
	cache map[int]time.Duration // query ID -> predicted completion
}

func (p *predSJFAdmission) Name() string { return "pred-sjf" }

func (p *predSJFAdmission) next(s *Scheduler, now time.Duration) (*query, error) {
	var bts *tenantState
	bi := -1
	var bq *query
	var bp time.Duration
	for _, ts := range s.waitTenants {
		for i := 0; i < ts.waitq.len(); i++ {
			q := ts.waitq.at(i)
			if !s.admits(q) {
				continue
			}
			pd := p.predict(s, q)
			if bq == nil || pd < bp || (pd == bp && q.id < bq.id) {
				bts, bi, bq, bp = ts, i, q, pd
			}
		}
	}
	if bq == nil {
		return nil, nil
	}
	return s.takeWaiter(bts, bi), nil
}

// predict returns the cached mix prediction for a waiter, refreshing
// the cache on epoch change.
func (p *predSJFAdmission) predict(s *Scheduler, q *query) time.Duration {
	if p.epoch != s.admEpoch {
		clear(p.cache)
		p.epoch = s.admEpoch
	}
	if d, ok := p.cache[q.id]; ok {
		return d
	}
	d := s.predictCompletion(q)
	p.cache[q.id] = d
	return d
}

// deadlineAdmission is least-slack-first: each eligible waiter's slack
// is its remaining deadline budget minus its predicted completion
// under the current mix, and the smallest slack admits first. A waiter
// whose best-case schedule (alone on an idle machine) already misses
// its deadline is provably hopeless — running it could only steal
// capacity from queries that can still make theirs — and is shed with
// a *DeadlineShedError, both at submission (screen) and while waiting
// (its budget only shrinks). Queries without a deadline (no
// SubmitOptions.Deadline and no tenant SLO target) have infinite slack
// and admit last, in intake order.
type deadlineAdmission struct {
	pred predSJFAdmission // shared mix predictor + epoch cache
}

func (d *deadlineAdmission) Name() string { return "deadline" }

// queryDeadline resolves a waiter's response-time target: its own
// submission deadline, else its tenant's SLO target, else the default
// SLO target; 0 means none.
func (d *deadlineAdmission) queryDeadline(s *Scheduler, q *query) time.Duration {
	if q.deadline > 0 {
		return q.deadline
	}
	if t, ok := s.adm.TenantSLOTargets[q.tenant]; ok && t > 0 {
		return t
	}
	return s.adm.SLOTarget
}

// bestCase returns the query's state-independent best-case response
// (simulated alone), computed at most once per query.
func bestCase(s *Scheduler, q *query) time.Duration {
	if !q.bestCaseSet {
		q.bestCase = s.predictAlone(q)
		q.bestCaseSet = true
	}
	return q.bestCase
}

func (d *deadlineAdmission) screen(s *Scheduler, q *query, now time.Duration) error {
	dl := d.queryDeadline(s, q)
	if dl <= 0 {
		return nil
	}
	if bc := bestCase(s, q); bc > dl {
		return &DeadlineShedError{Tenant: q.tenant, Deadline: dl, Predicted: bc}
	}
	return nil
}

func (d *deadlineAdmission) next(s *Scheduler, now time.Duration) (*query, error) {
	// Hopeless sweep first: a waiter's deadline budget shrinks while it
	// waits, so a query that passed the submission screen can become
	// hopeless in the queue. Shed the oldest such waiter; the wake loop
	// re-enters for the rest.
	for _, ts := range s.waitTenants {
		for i := 0; i < ts.waitq.len(); i++ {
			q := ts.waitq.at(i)
			dl := d.queryDeadline(s, q)
			if dl <= 0 {
				continue
			}
			if bc := bestCase(s, q); bc > q.submitRel+dl-now {
				s.takeWaiter(ts, i)
				return q, &DeadlineShedError{Tenant: q.tenant, Deadline: dl, Predicted: bc}
			}
		}
	}
	var bts *tenantState
	bi := -1
	var bq *query
	var bslack time.Duration
	for _, ts := range s.waitTenants {
		for i := 0; i < ts.waitq.len(); i++ {
			q := ts.waitq.at(i)
			if !s.admits(q) {
				continue
			}
			slack := time.Duration(math.MaxInt64)
			if dl := d.queryDeadline(s, q); dl > 0 {
				slack = q.submitRel + dl - now - d.pred.predict(s, q)
			}
			if bq == nil || slack < bslack || (slack == bslack && q.id < bq.id) {
				bts, bi, bq, bslack = ts, i, q, slack
			}
		}
	}
	if bq == nil {
		return nil, nil
	}
	return s.takeWaiter(bts, bi), nil
}

// agingAdmission bounds starvation under any ordering policy: once the
// globally oldest waiter has waited maxWait, it is promoted to strict
// head-of-line — no other waiter is admitted before it, even if the
// inner policy would rank others first — so a query waits at most
// maxWait plus the time for enough capacity to free. Each promotion
// counts once on the sched.aging_promoted metric.
type agingAdmission struct {
	inner   AdmissionPolicy
	maxWait time.Duration
}

func (a *agingAdmission) Name() string { return a.inner.Name() + "+aging" }

func (a *agingAdmission) next(s *Scheduler, now time.Duration) (*query, error) {
	if ts, q := s.oldestWaiter(); q != nil && now-q.submitRel >= a.maxWait {
		if !q.promoted {
			q.promoted = true
			s.mAging.Inc()
			if s.eng.Trace != nil && q.traced {
				s.eng.schedEvent("aging-promote", fmt.Sprintf(
					"query %d promoted to head-of-line after %v waiting", q.id, now-q.submitRel))
			}
		}
		if !s.admits(q) {
			return nil, nil // head-of-line block: nothing younger passes it
		}
		return s.takeWaiter(ts, 0), nil
	}
	return a.inner.next(s, now)
}

func (a *agingAdmission) screen(s *Scheduler, q *query, now time.Duration) error {
	if sc, ok := a.inner.(admissionScreener); ok {
		return sc.screen(s, q, now)
	}
	return nil
}

// predictCompletion estimates when a waiting query would finish if it
// were admitted right now, by replaying the controller's scheduling
// against parcost's analytic machine model (core.Simulate) over the
// admitted queries' remaining work plus the candidate. Remaining work
// approximates each not-yet-done task by its full sequential time T —
// the simulation has no visibility into a running task's progress, and
// the approximation is pessimistic uniformly across candidates, which
// is what a ranking needs. The result is the candidate's predicted
// response measured from now (max finish over its tasks).
func (s *Scheduler) predictCompletion(q *query) time.Duration {
	return s.predictSim(q, s.simMix(q))
}

// predictAlone is the best-case variant: the candidate simulated alone
// on an idle machine, the most optimistic schedule the model admits.
func (s *Scheduler) predictAlone(q *query) time.Duration {
	sims := make([]core.SimTask, 0, len(q.ids))
	for _, id := range q.ids {
		sims = append(sims, simSpec(q, id))
	}
	return s.predictSim(q, sims)
}

// predictSim runs the simulation and extracts the candidate's finish.
// A simulation error (a degenerate task the analytic model rejects)
// yields an effectively-infinite prediction: such a query ranks last
// rather than failing the wake round.
func (s *Scheduler) predictSim(q *query, sims []core.SimTask) time.Duration {
	if len(sims) == 0 {
		return 0
	}
	res, err := core.Simulate(s.ctl.Env(), s.ctl.Policy(), s.ctl.Options(), sims)
	if err != nil {
		return time.Duration(math.MaxInt64)
	}
	var worst float64
	for _, id := range q.ids {
		if f, ok := res.Finish[id]; ok && f > worst {
			worst = f
		}
	}
	return time.Duration(worst * float64(time.Second))
}

// simMix builds the simulation input: every admitted query's
// not-yet-done tasks (dependencies filtered to the not-yet-done set),
// in global task-ID order for determinism, plus the candidate's tasks.
func (s *Scheduler) simMix(q *query) []core.SimTask {
	ids := make([]int, 0, len(s.byTask))
	for id := range s.byTask {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	sims := make([]core.SimTask, 0, len(ids)+len(q.ids))
	for _, id := range ids {
		oq := s.byTask[id]
		if !oq.admitted || oq.done[id] {
			continue
		}
		sims = append(sims, simSpec(oq, id))
	}
	for _, id := range q.ids {
		sims = append(sims, simSpec(q, id))
	}
	return sims
}

// simSpec converts one task spec into its simulation form, dropping
// dependencies on already-done tasks (they would reference IDs absent
// from the simulation set).
func simSpec(q *query, id int) core.SimTask {
	sp := q.specs[id]
	var deps []int
	for _, dep := range sp.DependsOn {
		if !q.done[dep] {
			deps = append(deps, dep)
		}
	}
	return core.SimTask{Task: sp.Task, DependsOn: deps}
}
