package exec

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
	"testing"

	"xprs/internal/core"
	"xprs/internal/cost"
	"xprs/internal/diskmodel"
	"xprs/internal/plan"
	"xprs/internal/storage"
	"xprs/internal/vclock"
)

// The join and sort kernels must be pure wall-clock optimizations, like
// the batch size: partition counts and slave counts may change how the
// work is laid out in memory, never what the query answers or when the
// virtual clock says it finished.

// hashAggPlan is the canonical hash-build + probe + aggregation shape
// used by the partition sweeps.
func hashAggPlan(t *testing.T, eng *Engine) plan.Node {
	l := buildRel(t, eng.Store, "hl", 1200, 80, 20)
	r := buildRel(t, eng.Store, "hr", 400, 80, 20)
	hj := &plan.HashJoin{Left: &plan.SeqScan{Rel: l}, Right: &plan.SeqScan{Rel: r}, LCol: 0, RCol: 0}
	return &plan.Agg{Child: hj, GroupCol: 0, Funcs: []plan.AggFunc{{Kind: plan.CountAll}}}
}

// TestBatchSweepHashPartitions extends the batch-size sweep proof to the
// radix partition count: identical result multisets, virtual-clock
// totals and disk statistics at partition counts 1, 4 and 16.
func TestBatchSweepHashPartitions(t *testing.T) {
	var base *sweepOutcome
	var basePartitions int
	for _, parts := range []int{1, 4, 16} {
		v, eng := testEngine(0)
		eng.HashPartitions = parts
		root := hashAggPlan(t, eng)
		specs, g := specFor(t, eng, root, 0)
		rep := runOne(t, v, eng, specs, core.InterAdj)
		finish := make([]string, 0, len(rep.Finish))
		for id, at := range rep.Finish {
			finish = append(finish, fmt.Sprintf("%d@%v", id, at))
		}
		slices.Sort(finish)
		got := &sweepOutcome{
			rows:    canonTuples(rep.Results[g.Root.ID]),
			elapsed: rep.Elapsed.String(),
			finish:  strings.Join(finish, " "),
			disk:    fmt.Sprintf("%+v", rep.Disk),
		}
		if base == nil {
			base, basePartitions = got, parts
			if len(got.rows) == 0 {
				t.Fatal("partition sweep is vacuous")
			}
			continue
		}
		if len(got.rows) != len(base.rows) {
			t.Fatalf("partitions=%d rows = %d, want %d (partitions=%d)", parts, len(got.rows), len(base.rows), basePartitions)
		}
		for i := range got.rows {
			if got.rows[i] != base.rows[i] {
				t.Fatalf("partitions=%d row %d = %s, want %s", parts, i, got.rows[i], base.rows[i])
			}
		}
		if got.elapsed != base.elapsed {
			t.Errorf("partitions=%d elapsed = %s, want %s", parts, got.elapsed, base.elapsed)
		}
		if got.finish != base.finish {
			t.Errorf("partitions=%d finish times = %s, want %s", parts, got.finish, base.finish)
		}
		if got.disk != base.disk {
			t.Errorf("partitions=%d disk stats = %s, want %s", parts, got.disk, base.disk)
		}
	}
}

// TestSweepSlaveCountResults pins the kernel outputs against the degree
// of parallelism: the same query at 1, 3 and 8 processors must produce
// the identical result multiset (virtual times legitimately differ —
// that is the point of parallelism).
func TestSweepSlaveCountResults(t *testing.T) {
	var base []string
	for _, procs := range []int{1, 3, 8} {
		v := vclock.NewVirtual()
		disks := diskmodel.New(v, diskmodel.DefaultConfig())
		store := storage.NewStore(v, disks, 0)
		eng := New(v, store, cost.DefaultParams(diskmodel.DefaultConfig(), procs))
		root := hashAggPlan(t, eng)
		specs, g := specFor(t, eng, root, 0)
		rep := runOne(t, v, eng, specs, core.InterAdj)
		rows := canonTuples(rep.Results[g.Root.ID])
		if base == nil {
			base = rows
			if len(base) == 0 {
				t.Fatal("slave-count sweep is vacuous")
			}
			continue
		}
		if len(rows) != len(base) {
			t.Fatalf("procs=%d rows = %d, want %d", procs, len(rows), len(base))
		}
		for i := range rows {
			if rows[i] != base[i] {
				t.Fatalf("procs=%d row %d = %s, want %s", procs, i, rows[i], base[i])
			}
		}
	}
}

// tagged builds a build-side tuple (key, tag) so tests can check match
// identity and order.
func tagged(key, tag int32) storage.Tuple {
	return storage.NewTuple(storage.IntVal(key), storage.IntVal(tag))
}

var twoIntSchema = storage.NewSchema(
	storage.Column{Name: "a", Typ: storage.Int4},
	storage.Column{Name: "t", Typ: storage.Int4},
)

// TestHashTableDuplicatesAcrossPartitions inserts duplicated keys spread
// over many partitions through several builders and checks every group
// comes back complete and in insertion order.
func TestHashTableDuplicatesAcrossPartitions(t *testing.T) {
	h := NewHashTableP(twoIntSchema, 0, 16, 4)
	const keys, dups = 300, 5
	builders := []*Builder{h.Builder(), h.Builder(), h.Builder()}
	tag := int32(0)
	for d := 0; d < dups; d++ {
		for k := int32(0); k < keys; k++ {
			b := builders[int(k)%len(builders)]
			if err := b.InsertBatch([]storage.Tuple{tagged(k, tag)}); err != nil {
				t.Fatal(err)
			}
			tag++
		}
	}
	// Builders flush in order, so per-key match order is flush order.
	for _, b := range builders {
		b.Flush()
	}
	if h.Len() != keys*dups {
		t.Fatalf("len = %d, want %d", h.Len(), keys*dups)
	}
	h.Seal()
	for k := int32(0); k < keys; k++ {
		ms := h.Probe(k)
		if len(ms) != dups {
			t.Fatalf("probe(%d) = %d matches, want %d", k, len(ms), dups)
		}
		for i := 1; i < len(ms); i++ {
			if ms[i-1].Vals[1].Int >= ms[i].Vals[1].Int {
				t.Fatalf("probe(%d) out of insertion order: tags %d then %d", k, ms[i-1].Vals[1].Int, ms[i].Vals[1].Int)
			}
		}
	}
	if got := h.Probe(keys + 7); got != nil {
		t.Fatalf("probe(miss) = %d matches", len(got))
	}
}

// TestHashTableEmptyBuild seals a table nothing was inserted into.
func TestHashTableEmptyBuild(t *testing.T) {
	h := NewHashTableP(twoIntSchema, 0, 4, 2)
	h.Seal()
	if h.Len() != 0 {
		t.Fatalf("len = %d", h.Len())
	}
	for _, k := range []int32{0, 1, -5, 1 << 30} {
		if got := h.Probe(k); got != nil {
			t.Fatalf("probe(%d) on empty table = %d matches", k, len(got))
		}
	}
	out := h.ProbeBatch([]int32{3, 1, 4}, nil)
	if len(out) != 3 || out[0] != nil || out[1] != nil || out[2] != nil {
		t.Fatalf("ProbeBatch on empty table = %v", out)
	}
}

// TestHashTableHeavyHitter drives one key past heavyKeyThreshold and
// checks it lands on the fallback list with every duplicate intact and
// in insertion order, while light keys stay in the flat slice.
func TestHashTableHeavyHitter(t *testing.T) {
	h := NewHashTableP(twoIntSchema, 0, 4, 2)
	const hot, hotCount = int32(77), heavyKeyThreshold + 200
	batch := make([]storage.Tuple, 0, 256)
	tag := int32(0)
	flush := func() {
		if err := h.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		batch = batch[:0]
	}
	for i := 0; i < hotCount; i++ {
		batch = append(batch, tagged(hot, tag))
		tag++
		if len(batch) == 256 {
			flush()
		}
	}
	for k := int32(0); k < 50; k++ {
		batch = append(batch, tagged(k, tag))
		tag++
	}
	flush()
	h.Seal()
	heavyGroups := 0
	for _, p := range h.parts {
		heavyGroups += len(p.heavy)
	}
	if heavyGroups != 1 {
		t.Fatalf("heavy groups = %d, want exactly 1", heavyGroups)
	}
	ms := h.Probe(hot)
	if len(ms) != hotCount {
		t.Fatalf("probe(hot) = %d, want %d", len(ms), hotCount)
	}
	for i := range ms {
		if ms[i].Vals[1].Int != int32(i) {
			t.Fatalf("hot match %d has tag %d (insertion order broken)", i, ms[i].Vals[1].Int)
		}
	}
	for k := int32(0); k < 50; k++ {
		if k != hot && len(h.Probe(k)) != 1 {
			t.Fatalf("light key %d = %d matches", k, len(h.Probe(k)))
		}
	}
}

// TestHashTableProbeWindowTerminates fills a minimum-capacity partition
// so occupied slots cluster, then probes absent keys whose home slot
// falls inside the cluster: the linear probe must walk through to an
// empty slot and report a miss (load <= 1/2 guarantees one exists).
func TestHashTableProbeWindowTerminates(t *testing.T) {
	h := NewHashTableP(twoIntSchema, 0, 1, 1)
	// Two tuples -> capacity 4, mask 3: half the slots occupied, which is
	// the tightest packing seal ever produces.
	k1 := int32(1)
	// Find a second key landing on the same home slot as k1.
	k2 := k1 + 1
	for hashKey(k2)&3 != hashKey(k1)&3 {
		k2++
	}
	if err := h.InsertBatch([]storage.Tuple{tagged(k1, 0), tagged(k2, 1)}); err != nil {
		t.Fatal(err)
	}
	h.Seal()
	if len(h.Probe(k1)) != 1 || len(h.Probe(k2)) != 1 {
		t.Fatal("colliding keys lost")
	}
	// Every absent key must terminate with a miss, wherever it hashes —
	// including keys whose window starts on the occupied cluster.
	misses := 0
	for k := int32(0); k < 1000; k++ {
		if k == k1 || k == k2 {
			continue
		}
		if got := h.Probe(k); got != nil {
			t.Fatalf("probe(%d) = %d matches, want miss", k, len(got))
		}
		misses++
	}
	if misses == 0 {
		t.Fatal("no misses exercised")
	}
}

// TestTempFinalizeMatchesStableSort checks the parallel merge sort
// against the single-threaded stable reference: identical order,
// including arrival order among equal keys, at a size that exercises
// the parallel path and with ragged append runs.
func TestTempFinalizeMatchesStableSort(t *testing.T) {
	temp := NewTemp(twoIntSchema)
	temp.sortProcs = 8
	const n = 10000
	var batch []storage.Tuple
	tag := int32(0)
	for i := 0; i < n; i++ {
		key := int32((i * 733) % 101) // heavy duplication, shuffled
		batch = append(batch, tagged(key, tag))
		tag++
		// Ragged run lengths so chunk edges land on uneven boundaries.
		if len(batch) >= 137+i%61 {
			temp.Append(batch)
			batch = nil
		}
	}
	temp.Append(batch)
	want := append([]storage.Tuple(nil), temp.Tuples()...)
	slices.SortStableFunc(want, func(a, b storage.Tuple) int { return cmp.Compare(a.Vals[0].Int, b.Vals[0].Int) })
	if cmps := temp.Finalize(0); cmps <= 0 {
		t.Fatal("no comparisons charged")
	}
	got := temp.Tuples()
	if len(got) != n {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if got[i].Vals[0].Int != want[i].Vals[0].Int || got[i].Vals[1].Int != want[i].Vals[1].Int {
			t.Fatalf("row %d = (%d,%d), want (%d,%d): parallel sort diverged from stable reference",
				i, got[i].Vals[0].Int, got[i].Vals[1].Int, want[i].Vals[0].Int, want[i].Vals[1].Int)
		}
	}
}

// TestModeledSortCmpsIsPure pins the sort charge to a pure function of
// the row count (the batch/partition/slave-independence of the clock
// rests on it).
func TestModeledSortCmpsIsPure(t *testing.T) {
	if modeledSortCmps(0) != 0 || modeledSortCmps(1) != 0 {
		t.Fatal("degenerate sizes must charge nothing")
	}
	if got := modeledSortCmps(8); got != 8*3 {
		t.Fatalf("modeledSortCmps(8) = %d, want 24", got)
	}
	if got := modeledSortCmps(1000); got != 1000*10 {
		t.Fatalf("modeledSortCmps(1000) = %d, want 10000", got)
	}
}

// TestPutBatchDropsUndersized is the regression test for re-pooling a
// buffer that became too small after a mid-run BatchSize change: the
// pool must not hold buffers getBatch would reject forever.
func TestPutBatchDropsUndersized(t *testing.T) {
	_, eng := testEngine(0)
	eng.BatchSize = 4
	small := eng.getBatch()
	if cap(*small) != 4 {
		t.Fatalf("cap = %d", cap(*small))
	}
	eng.BatchSize = 64
	eng.putBatch(small)
	if v := eng.batchPool.Get(); v != nil {
		t.Fatalf("undersized buffer (cap %d) was re-pooled", cap(*v.(*[]storage.Tuple)))
	}
	// And a conforming buffer still round-trips. The race-enabled
	// runtime makes sync.Pool drop a random fraction of Puts, so allow
	// retries before declaring the buffer rejected.
	roundTripped := false
	for i := 0; i < 20 && !roundTripped; i++ {
		big := eng.getBatch()
		if cap(*big) != 64 {
			t.Fatalf("new buffer cap = %d", cap(*big))
		}
		eng.putBatch(big)
		roundTripped = eng.batchPool.Get() != nil
	}
	if !roundTripped {
		t.Fatal("conforming buffer was dropped")
	}
}

// TestHashTableInsertAfterSeal pins the misuse diagnostic: the executor
// never inserts after publication, and the table reports (rather than
// corrupts) if a future caller does.
func TestHashTableInsertAfterSeal(t *testing.T) {
	h := NewHashTable(twoIntSchema, 0)
	if err := h.Insert(tagged(1, 0)); err != nil {
		t.Fatal(err)
	}
	h.Seal()
	if err := h.Insert(tagged(2, 1)); err == nil {
		t.Fatal("insert after seal accepted")
	}
}
