package obs

import (
	"encoding/json"
	"io"
	"time"
)

// Chrome trace-event export: the JSON object format understood by
// Perfetto (ui.perfetto.dev) and chrome://tracing. Each (Pid, Tid) lane
// becomes a named track; spans render as boxes, instants as arrows.
// Timestamps are virtual microseconds.

// chromeEvent is one record of the Chrome trace-event format.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope: "t" = thread
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level trace object.
type chromeFile struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"otherData,omitempty"`
}

// processNames labels the Pid groups in the exported trace.
var processNames = map[int]string{
	PidSched: "scheduler",
	PidTasks: "tasks",
	PidDisks: "disks",
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// ChromeTrace assembles the trace file from events, lane names and an
// optional metrics snapshot (embedded as trace metadata).
func ChromeTrace(events []Event, lanes []LaneName, snap *Snapshot) ([]byte, error) {
	out := chromeFile{
		TraceEvents:     make([]chromeEvent, 0, len(events)+2*len(lanes)+len(processNames)),
		DisplayTimeUnit: "ms",
	}
	seen := map[int]bool{}
	addProcess := func(pid int) {
		if seen[pid] {
			return
		}
		seen[pid] = true
		name := processNames[pid]
		if name == "" {
			name = "xprs"
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	for _, ln := range lanes {
		addProcess(ln.Pid)
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", Pid: ln.Pid, Tid: ln.Tid,
			Args: map[string]any{"name": ln.Name},
		})
	}
	for _, ev := range events {
		addProcess(ev.Pid)
		ce := chromeEvent{
			Name:  ev.Name,
			Cat:   ev.Cat,
			Phase: string(ev.Phase),
			Ts:    micros(ev.Ts),
			Pid:   ev.Pid,
			Tid:   ev.Tid,
		}
		if ev.Phase == PhaseSpan {
			d := micros(ev.Dur)
			ce.Dur = &d
		}
		if ev.Phase == PhaseInstant {
			ce.Scope = "t"
		}
		if ev.Detail != "" {
			ce.Args = map[string]any{"detail": ev.Detail}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	if snap != nil {
		out.Metadata = map[string]any{"metrics": snap}
	}
	return json.MarshalIndent(out, "", " ")
}

// WriteChromeTrace writes the trace file to w.
func WriteChromeTrace(w io.Writer, events []Event, lanes []LaneName, snap *Snapshot) error {
	data, err := ChromeTrace(events, lanes, snap)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
