package obs

// Deterministic head-based trace sampling. The decision to trace a
// query is made once at submission from a seeded hash of (tenant, qid):
// no clock, no global RNG, no mutable state. Because qids are assigned
// in intake order — itself deterministic under the virtual clock — the
// sampled set is byte-identical across reruns and GOMAXPROCS settings,
// which is what lets a sampled trace participate in the repo's
// determinism proofs instead of breaking them.

// Sampler decides which queries get traced. A nil Sampler samples
// everything, so callers can hold a nil pointer when sampling is off.
type Sampler struct {
	seed  uint64
	oneIn uint64
}

// NewSampler returns a sampler tracing one in oneIn queries, keyed on
// seed. oneIn <= 1 returns nil: every query is sampled.
func NewSampler(seed int64, oneIn int) *Sampler {
	if oneIn <= 1 {
		return nil
	}
	return &Sampler{seed: uint64(seed), oneIn: uint64(oneIn)}
}

// OneIn returns the sampling rate denominator (1 for a nil sampler).
func (s *Sampler) OneIn() int {
	if s == nil {
		return 1
	}
	return int(s.oneIn)
}

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Sample reports whether the query identified by (tenant, qid) is
// traced. The decision is a pure function of the sampler seed and the
// identity — no allocation, no state — so it can sit on the sharded
// submit fast path.
func (s *Sampler) Sample(tenant string, qid int) bool {
	if s == nil {
		return true
	}
	h := uint64(fnvOffset64)
	v := s.seed
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= fnvPrime64
	}
	v = uint64(qid)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h%s.oneIn == 0
}
