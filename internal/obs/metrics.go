package obs

import (
	"math"
	"math/bits"
	"slices"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The hot path is one
// atomic add; all methods are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of a Histogram: bucket i counts
// observations whose value needs i significant bits, i.e. value 0 lands
// in bucket 0 and value v > 0 in bucket bits.Len64(v). Exponential
// buckets cover the full int64 range with no configuration and keep
// Observe a single atomic add.
const histBuckets = 65

// Histogram records a distribution of non-negative int64 observations
// in power-of-two buckets. Construct through Registry.Histogram (or
// newHistogram); all methods are no-ops on a nil receiver.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 until the first observation
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	// P50/P95/P99 are nearest-rank quantile estimates resolved to the
	// power-of-two bucket upper bound and clamped to [Min, Max]; exact
	// when the rank lands in the first or last occupied bucket, at most
	// one bucket (2×) coarse otherwise.
	P50 int64 `json:"p50"`
	P95 int64 `json:"p95"`
	P99 int64 `json:"p99"`
	// Buckets maps the inclusive upper bound of each non-empty
	// power-of-two bucket to its count, in increasing bound order.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one non-empty bucket of a histogram snapshot.
type HistogramBucket struct {
	UpperBound int64 `json:"le"` // inclusive; -1 means +Inf
	Count      int64 `json:"count"`
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// NearestRank returns the 1-based nearest-rank index of the p-th
// percentile of n ascending samples: ceil(p*n/100), clamped to [1, n].
// This is the single rank definition shared by the workload driver's
// Percentile, the SLO tracker and the histogram quantile estimate, so
// every "p95" in the tree means the same thing.
func NearestRank(n, p int) int {
	r := (p*n + 99) / 100
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r
}

// Quantile estimates the p-th percentile observation: the upper bound
// of the power-of-two bucket holding the nearest-rank sample, clamped
// to [Min, Max]. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(p int) int64 {
	if s.Count == 0 {
		return 0
	}
	n := s.Count
	rank := (int64(p)*n + 99) / 100 // ceil(p*n/100)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			ub := b.UpperBound
			if ub < 0 || ub > s.Max {
				ub = s.Max
			}
			if ub < s.Min {
				ub = s.Min
			}
			return ub
		}
	}
	return s.Max
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
	}
	if s.Count == 0 {
		s.Min = 0
	}
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		ub := int64(-1) // bucket 64 holds values needing all 64 bits
		if i == 0 {
			ub = 0
		} else if i < 64 {
			ub = int64(1)<<i - 1
		}
		s.Buckets = append(s.Buckets, HistogramBucket{UpperBound: ub, Count: n})
	}
	s.P50 = s.Quantile(50)
	s.P95 = s.Quantile(95)
	s.P99 = s.Quantile(99)
	return s
}

// Label builds a per-entity metric name — "sched.tenant_waiting" plus
// a tenant, say — as base.label, mapping the empty label to "default"
// so the name stays well-formed.
func Label(base, label string) string {
	if label == "" {
		label = "default"
	}
	return base + "." + label
}

// Registry is a named collection of metrics. Metric lookup takes a
// mutex and is meant for setup paths; callers cache the returned
// pointers and hit only the atomics afterwards. A nil *Registry hands
// out nil metrics, whose methods no-op, so disabled observability costs
// one predictable branch per update.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers a read-on-snapshot gauge backed by fn —
// the bridge for subsystems that already keep their own atomic
// counters (the buffer pool's hit/miss pair, the disk array's per-class
// read counts). fn must be safe to call from any goroutine.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Snapshot is a point-in-time view of every metric in a registry,
// suitable for embedding in reports and benchmark JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Get returns a counter, gauge or func metric by name (0 when absent).
func (s Snapshot) Get(name string) int64 {
	if v, ok := s.Counters[name]; ok {
		return v
	}
	return s.Gauges[name]
}

// Names returns every metric name in the snapshot, sorted.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// Snapshot captures the current value of every registered metric. Func
// metrics land in Gauges. A nil registry yields the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.funcs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, fn := range r.funcs {
		s.Gauges[n] = fn()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.snapshot()
	}
	return s
}
