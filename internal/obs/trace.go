package obs

import (
	"cmp"
	"slices"
	"sync"
	"time"
)

// Lane process groups. Chrome-trace viewers (Perfetto, chrome://tracing)
// render one horizontal track per (Pid, Tid); the exporter names them so
// the scheduler, every slave backend and every disk get their own lane.
const (
	// PidSched is the controller/master lane group (decisions, submits).
	PidSched = 1
	// PidTasks groups fragment lanes and their slave lanes.
	PidTasks = 2
	// PidDisks groups one lane per simulated disk.
	PidDisks = 3
)

// Event phases, following the Chrome trace-event format.
const (
	// PhaseSpan is a complete span: Ts is the start, Dur the length.
	PhaseSpan = 'X'
	// PhaseInstant is a zero-duration marker.
	PhaseInstant = 'i'
)

// Event is one trace record. Timestamps are virtual time as supplied by
// the caller; the tracer itself never reads any clock.
type Event struct {
	// Ts is the event's (span's start) virtual time.
	Ts time.Duration
	// Dur is the span length; zero for instants.
	Dur time.Duration
	// Phase is PhaseSpan or PhaseInstant.
	Phase byte
	// Pid/Tid place the event on a lane (see the Pid constants and
	// Tracer.Lane).
	Pid, Tid int
	// Cat classifies the event ("sched", "frag", "slave", "io",
	// "protocol", "diskmode").
	Cat string
	// Name is the short label viewers render on the track.
	Name string
	// Detail is the free-form "why": balance-point solves, maxpage
	// values, repartition intervals, fallback reasons.
	Detail string
	// Seq is the tracer-assigned emission sequence, used as a stable
	// tie-break when sorting by Ts.
	Seq uint64
}

// laneKey identifies a named lane within a process group.
type laneKey struct {
	pid  int
	name string
}

// Tracer collects events from concurrently running goroutines. The hot
// path is one mutex-protected append; there is no channel, no clock
// access and no allocation beyond slice growth, so enabling it cannot
// change virtual-time behavior. All methods no-op on a nil receiver.
//
// A tracer built with NewTracerBudget retains at most budget events in
// a ring: once full, each new event overwrites the oldest and bumps the
// drop counter, so serving-scale runs observe O(budget) memory no
// matter how many spans they emit. Sequence numbers keep counting the
// total ever emitted, which is what Mark/Since key on.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	seq     uint64
	budget  int // max retained events; 0 = unbounded
	next    int // ring write index once len(events) == budget
	dropped int64
	lanes   map[laneKey]int
	names   []LaneName
}

// LaneName is the human label of one (Pid, Tid) lane.
type LaneName struct {
	Pid, Tid int
	Name     string
}

// NewTracer creates an empty tracer with unbounded retention.
func NewTracer() *Tracer {
	return &Tracer{lanes: make(map[laneKey]int)}
}

// NewTracerBudget creates a tracer that retains at most budget events,
// overwriting the oldest once full. budget <= 0 means unbounded.
func NewTracerBudget(budget int) *Tracer {
	if budget < 0 {
		budget = 0
	}
	return &Tracer{budget: budget, lanes: make(map[laneKey]int)}
}

// Budget returns the retention cap (0 = unbounded).
func (t *Tracer) Budget() int {
	if t == nil {
		return 0
	}
	return t.budget
}

// Dropped returns how many events were overwritten because the
// retention budget was exhausted.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Lane returns the Tid for the named lane inside a process group,
// allocating it on first use. Tids start at 1 and are assigned in
// creation order per group.
func (t *Tracer) Lane(pid int, name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	k := laneKey{pid: pid, name: name}
	if tid, ok := t.lanes[k]; ok {
		return tid
	}
	tid := 1
	for k2 := range t.lanes {
		if k2.pid == pid {
			tid++
		}
	}
	t.lanes[k] = tid
	t.names = append(t.names, LaneName{Pid: pid, Tid: tid, Name: name})
	return tid
}

// Instant records a zero-duration event.
func (t *Tracer) Instant(ts time.Duration, pid, tid int, cat, name, detail string) {
	if t == nil {
		return
	}
	t.emit(Event{Ts: ts, Phase: PhaseInstant, Pid: pid, Tid: tid, Cat: cat, Name: name, Detail: detail})
}

// Span records a complete span starting at ts and lasting dur.
func (t *Tracer) Span(ts, dur time.Duration, pid, tid int, cat, name, detail string) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	t.emit(Event{Ts: ts, Dur: dur, Phase: PhaseSpan, Pid: pid, Tid: tid, Cat: cat, Name: name, Detail: detail})
}

func (t *Tracer) emit(ev Event) {
	t.mu.Lock()
	t.seq++
	ev.Seq = t.seq
	if t.budget > 0 && len(t.events) >= t.budget {
		t.events[t.next] = ev
		t.next++
		if t.next == len(t.events) {
			t.next = 0
		}
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Len returns the number of retained events (at most the budget).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Mark returns a position usable with Since to slice off the events of
// one run when several runs share a tracer. The position is the total
// number of events ever emitted, so it stays meaningful on a bounded
// tracer whose ring has wrapped: Since then returns whichever of the
// newer events still survive.
func (t *Tracer) Mark() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(t.seq)
}

// Since returns a copy of the retained events emitted after mark (a
// Mark result), sorted by virtual time (emission sequence breaks ties).
// Sorting happens on the copy; the tracer's internal order is emission
// order. On a bounded tracer, events past mark that were overwritten by
// the ring are gone and simply absent from the result.
func (t *Tracer) Since(mark int) []Event {
	if t == nil {
		return nil
	}
	if mark < 0 {
		mark = 0
	}
	t.mu.Lock()
	out := make([]Event, 0, len(t.events))
	for _, ev := range t.events {
		if ev.Seq > uint64(mark) {
			out = append(out, ev)
		}
	}
	t.mu.Unlock()
	slices.SortStableFunc(out, func(a, b Event) int {
		if a.Ts != b.Ts {
			return cmp.Compare(a.Ts, b.Ts)
		}
		return cmp.Compare(a.Seq, b.Seq)
	})
	return out
}

// Events returns every recorded event, sorted by virtual time.
func (t *Tracer) Events() []Event { return t.Since(0) }

// Lanes returns the named lanes in creation order.
func (t *Tracer) Lanes() []LaneName {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]LaneName, len(t.names))
	copy(out, t.names)
	return out
}

// Reset drops all retained events and the drop count, keeping lane
// assignments and the emission sequence (outstanding Marks stay valid).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.next = 0
	t.dropped = 0
	t.mu.Unlock()
}
