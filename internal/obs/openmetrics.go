package obs

// OpenMetrics text exposition. WriteOpenMetrics renders a registry (or
// a frozen Snapshot) in the OpenMetrics text format so any Prometheus-
// compatible scraper can consume the live registry from the ops
// listener. The writer is a clock-pure leaf: it formats values it is
// handed and never reads time.

import (
	"fmt"
	"io"
	"strings"
)

// sanitizeMetricName maps a registry metric name ("sched.queue_wait_micros",
// "slo.breached.tenant-7") onto the OpenMetrics name charset
// [a-zA-Z0-9_:], replacing every other byte with '_' and prefixing
// names that start with a digit.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteOpenMetrics renders the current state of every registered metric
// in OpenMetrics text format, ending with the required "# EOF" marker.
// A nil registry writes an empty (but well-formed) exposition.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.Snapshot().WriteOpenMetrics(w)
}

// WriteOpenMetrics renders the snapshot in OpenMetrics text format.
// Counters become "<name>_total", gauges (including func metrics) plain
// gauges, and histograms cumulative-bucket histograms with "+Inf",
// "_sum" and "_count" series. Metric families are emitted in sorted
// name order so the output is deterministic.
func (s Snapshot) WriteOpenMetrics(w io.Writer) error {
	var b strings.Builder
	for _, name := range s.Names() {
		om := sanitizeMetricName(name)
		if v, ok := s.Counters[name]; ok {
			fmt.Fprintf(&b, "# TYPE %s counter\n%s_total %d\n", om, om, v)
			continue
		}
		if v, ok := s.Gauges[name]; ok {
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", om, om, v)
			continue
		}
		h, ok := s.Histograms[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "# TYPE %s histogram\n", om)
		var cum int64
		for _, bk := range h.Buckets {
			if bk.UpperBound < 0 {
				// The top power-of-two bucket has no finite bound; its
				// observations are covered by the +Inf series below.
				continue
			}
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", om, bk.UpperBound, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", om, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", om, h.Sum, om, h.Count)
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}
