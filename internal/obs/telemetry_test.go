package obs

// Tests for the serving-telemetry primitives: the deterministic trace
// sampler, the bounded span ring, the windowed series, the per-tenant
// SLO tracker, histogram quantile estimates, and the OpenMetrics
// writer.

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSamplerDeterministic(t *testing.T) {
	a := NewSampler(1992, 16)
	b := NewSampler(1992, 16)
	sampled := 0
	for qid := 0; qid < 10000; qid++ {
		tenant := fmt.Sprintf("t%02d", qid%7)
		da, db := a.Sample(tenant, qid), b.Sample(tenant, qid)
		if da != db {
			t.Fatalf("sampler decision diverged at (%s, %d): %v vs %v", tenant, qid, da, db)
		}
		if da {
			sampled++
		}
	}
	// 1-in-16 over 10k draws: the hash should land within a loose band
	// around 625. A collapse to 0 or to everything is the real bug.
	if sampled < 300 || sampled > 1200 {
		t.Fatalf("1-in-16 sampler kept %d of 10000 — hash badly skewed", sampled)
	}
}

func TestSamplerSeedChangesSet(t *testing.T) {
	a := NewSampler(1, 8)
	b := NewSampler(2, 8)
	diff := 0
	for qid := 0; qid < 1000; qid++ {
		if a.Sample("t", qid) != b.Sample("t", qid) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical sampling sets")
	}
}

func TestSamplerDisabled(t *testing.T) {
	if s := NewSampler(7, 1); s != nil {
		t.Fatalf("oneIn<=1 should return a nil sampler, got %v", s)
	}
	if s := NewSampler(7, 0); s != nil {
		t.Fatalf("oneIn<=1 should return a nil sampler, got %v", s)
	}
	var s *Sampler
	if !s.Sample("t", 3) {
		t.Fatal("nil sampler must sample everything")
	}
}

func TestTracerBudgetWrap(t *testing.T) {
	tr := NewTracerBudget(4)
	if tr.Budget() != 4 {
		t.Fatalf("Budget() = %d, want 4", tr.Budget())
	}
	for i := 0; i < 10; i++ {
		tr.Instant(time.Duration(i)*time.Millisecond, PidSched, 0, "test", fmt.Sprintf("ev%d", i), "")
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len() = %d after 10 emits into budget 4, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() returned %d events, want 4", len(evs))
	}
	// The ring keeps the most recent four, returned in time order.
	for i, ev := range evs {
		if want := fmt.Sprintf("ev%d", 6+i); ev.Name != want {
			t.Fatalf("Events()[%d].Name = %q, want %q", i, ev.Name, want)
		}
	}
}

func TestTracerBudgetMarkSinceAcrossWrap(t *testing.T) {
	tr := NewTracerBudget(4)
	tr.Instant(0, PidSched, 0, "test", "before", "")
	mark := tr.Mark()
	for i := 0; i < 6; i++ {
		tr.Instant(time.Duration(i+1)*time.Millisecond, PidSched, 0, "test", fmt.Sprintf("after%d", i), "")
	}
	evs := tr.Since(mark)
	// 6 post-mark events, ring keeps 4 total; everything retained is
	// post-mark here, and "before" was overwritten.
	if len(evs) != 4 {
		t.Fatalf("Since(mark) returned %d events, want 4", len(evs))
	}
	for _, ev := range evs {
		if ev.Name == "before" {
			t.Fatal("Since(mark) returned a pre-mark event")
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("Reset left Len=%d Dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestSeriesWindows(t *testing.T) {
	var now time.Duration
	s := NewSeries(time.Second, 3, func() time.Duration { return now })

	s.Count("submitted", 2)
	s.Sample("queue", 5)
	s.Sample("queue", 1)
	s.Observe("lat", 100)

	now = 1500 * time.Millisecond
	s.Count("submitted", 1)

	snap := s.Snapshot()
	if len(snap.Windows) != 2 {
		t.Fatalf("got %d windows, want 2", len(snap.Windows))
	}
	w0, w1 := snap.Windows[0], snap.Windows[1]
	if w0.Index != 0 || w1.Index != 1 {
		t.Fatalf("window indices = %d,%d, want 0,1", w0.Index, w1.Index)
	}
	if w0.Counter("submitted") != 2 || w1.Counter("submitted") != 1 {
		t.Fatalf("submitted per window = %d,%d, want 2,1", w0.Counter("submitted"), w1.Counter("submitted"))
	}
	g := w0.Gauges["queue"]
	if g.Last != 1 || g.Min != 1 || g.Max != 5 || g.Count != 2 {
		t.Fatalf("gauge stat = %+v, want Last=1 Min=1 Max=5 Count=2", g)
	}
	if h := w0.Dists["lat"]; h.Count != 1 || h.Sum != 100 {
		t.Fatalf("dist = %+v, want one observation of 100", h)
	}
	if got := snap.TotalCounter("submitted"); got != 3 {
		t.Fatalf("TotalCounter = %d, want 3", got)
	}
	if names := snap.CounterNames(); len(names) != 1 || names[0] != "submitted" {
		t.Fatalf("CounterNames = %v", names)
	}
}

func TestSeriesEviction(t *testing.T) {
	var now time.Duration
	s := NewSeries(time.Second, 3, func() time.Duration { return now })
	for i := 0; i < 5; i++ {
		now = time.Duration(i) * time.Second
		s.Count("c", 1)
	}
	snap := s.Snapshot()
	if len(snap.Windows) != 3 {
		t.Fatalf("got %d windows, want capacity 3", len(snap.Windows))
	}
	if snap.Evicted != 2 {
		t.Fatalf("Evicted = %d, want 2", snap.Evicted)
	}
	if snap.Windows[0].Index != 2 || snap.Windows[2].Index != 4 {
		t.Fatalf("retained windows %d..%d, want 2..4",
			snap.Windows[0].Index, snap.Windows[2].Index)
	}
}

func TestSeriesNonMonotoneClock(t *testing.T) {
	var now time.Duration
	s := NewSeries(time.Second, 3, func() time.Duration { return now })
	now = 2 * time.Second
	s.Count("c", 1)
	// A stale record from window 1 folds into... nothing older is
	// retained that covers it — there is no window <= 1, so it counts
	// late only when older than every retained window.
	now = 1 * time.Second
	s.Count("c", 1)
	snap := s.Snapshot()
	if snap.Late != 1 {
		t.Fatalf("Late = %d, want 1 (no retained window covers index 1)", snap.Late)
	}
	// A stale record still covered by a retained window folds into it.
	now = 3 * time.Second
	s.Count("c", 1)
	now = 2500 * time.Millisecond
	s.Count("c", 1)
	snap = s.Snapshot()
	if got := snap.Windows[0].Counter("c"); got != 2 {
		t.Fatalf("window 2 counter = %d, want 2 (stale record folded in)", got)
	}
}

func TestSeriesNil(t *testing.T) {
	var s *Series
	s.Count("c", 1)
	s.Sample("g", 1)
	s.Observe("h", 1)
	if snap := s.Snapshot(); len(snap.Windows) != 0 {
		t.Fatal("nil series snapshot must be empty")
	}
}

func TestSLOTracker(t *testing.T) {
	s := NewSLO(0, 0, map[string]time.Duration{
		"":   2 * time.Second,
		"t1": 500 * time.Millisecond,
	})
	// t0 inherits the 2s default: one breach out of four.
	for i, d := range []time.Duration{
		100 * time.Millisecond, 1 * time.Second, 3 * time.Second, 900 * time.Millisecond,
	} {
		s.Record("t0", time.Duration(i)*time.Second, d, d/10)
	}
	// t1 has the tight 500ms target: both breach.
	s.Record("t1", 0, time.Second, 0)
	s.Record("t1", time.Second, 2*time.Second, 0)
	s.RecordShed("t1")

	if got := s.Breached("t0"); got != 1 {
		t.Fatalf("t0 breached = %d, want 1", got)
	}
	if got := s.Completed("t1"); got != 2 {
		t.Fatalf("t1 completed = %d, want 2", got)
	}
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].Tenant != "t0" || snap[1].Tenant != "t1" {
		t.Fatalf("snapshot order = %v", snap)
	}
	t0 := snap[0]
	if t0.BurnPermille != 250 {
		t.Fatalf("t0 burn = %d permille, want 250", t0.BurnPermille)
	}
	// Nearest-rank over {100ms, 900ms, 1s, 3s}: p50 = 2nd = 900ms,
	// p95 = p99 = 4th = 3s.
	if t0.RespP50Ns != int64(900*time.Millisecond) {
		t.Fatalf("t0 p50 = %v, want 900ms", time.Duration(t0.RespP50Ns))
	}
	if t0.RespP99Ns != int64(3*time.Second) {
		t.Fatalf("t0 p99 = %v, want 3s", time.Duration(t0.RespP99Ns))
	}
	t1 := snap[1]
	if t1.Shed != 1 || t1.Breached != 2 || t1.BurnPermille != 1000 {
		t.Fatalf("t1 = %+v, want shed 1, breached 2, burn 1000", t1)
	}
}

func TestSLORingAndHorizon(t *testing.T) {
	s := NewSLO(5*time.Second, 4, nil)
	// 10 completions, 1s apart, responses 1..10ms: the ring keeps the
	// last 4 (at 6..9s, resp 7..10ms), all inside the 5s horizon.
	for i := 0; i < 10; i++ {
		s.Record("t", time.Duration(i)*time.Second, time.Duration(i+1)*time.Millisecond, 0)
	}
	snap := s.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d tenants", len(snap))
	}
	ts := snap[0]
	if ts.Completed != 10 {
		t.Fatalf("completed = %d, want 10 (cumulative, not ring-bounded)", ts.Completed)
	}
	if ts.WindowCount != 4 {
		t.Fatalf("window count = %d, want ring cap 4", ts.WindowCount)
	}
	if ts.RespP50Ns != int64(8*time.Millisecond) {
		t.Fatalf("p50 = %v, want 8ms (2nd of 7,8,9,10ms)", time.Duration(ts.RespP50Ns))
	}
	// Tighten the horizon: only the newest sample (at 9s) survives a 0s
	// horizon... horizon 1s keeps at >= 8s: samples at 8s and 9s.
	s2 := NewSLO(time.Second, 0, nil)
	for i := 0; i < 10; i++ {
		s2.Record("t", time.Duration(i)*time.Second, time.Duration(i+1)*time.Millisecond, 0)
	}
	if wc := s2.Snapshot()[0].WindowCount; wc != 2 {
		t.Fatalf("1s-horizon window count = %d, want 2", wc)
	}
}

func TestNearestRank(t *testing.T) {
	cases := []struct{ n, p, want int }{
		{1, 50, 1}, {1, 99, 1},
		{4, 50, 2}, {4, 95, 4}, {4, 99, 4},
		{100, 50, 50}, {100, 95, 95}, {100, 99, 99},
		{200, 99, 198},
		{10, 0, 1}, // clamped to the first rank
	}
	for _, c := range cases {
		if got := NearestRank(c.n, c.p); got != c.want {
			t.Errorf("NearestRank(%d, %d) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.snapshot()
	if s.P50 <= 0 || s.P95 <= 0 || s.P99 <= 0 {
		t.Fatalf("quantiles unset: %+v", s)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not monotone: p50=%d p95=%d p99=%d", s.P50, s.P95, s.P99)
	}
	// Bucket-upper-bound estimates are clamped into the observed range.
	if s.P50 < s.Min || s.P99 > s.Max {
		t.Fatalf("quantiles escape [Min,Max]: p50=%d p99=%d min=%d max=%d", s.P50, s.P99, s.Min, s.Max)
	}
	// Uniform 1..1000: p50's power-of-two bucket bound must land within
	// a factor of two of the true median.
	if s.P50 < 500 || s.P50 > 1000 {
		t.Fatalf("p50 = %d, want within [500,1000] for uniform 1..1000", s.P50)
	}
	// Single observation: every quantile is that value.
	h2 := newHistogram()
	h2.Observe(42)
	s2 := h2.snapshot()
	if s2.P50 != 42 || s2.P99 != 42 {
		t.Fatalf("single-sample quantiles = %d/%d, want 42", s2.P50, s2.P99)
	}
}

func TestWriteOpenMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("sched.submitted").Add(7)
	r.Gauge("sched.queue-depth").Set(3)
	r.Histogram("lat").Observe(5)
	r.Histogram("lat").Observe(100)
	r.RegisterFunc("slo.breached.t0", func() int64 { return 2 })

	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sched_submitted counter\nsched_submitted_total 7\n",
		"# TYPE sched_queue_depth gauge\nsched_queue_depth 3\n",
		"# TYPE lat histogram\n",
		"lat_bucket{le=\"+Inf\"} 2\n",
		"lat_sum 105\nlat_count 2\n",
		"slo_breached_t0 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("output does not end with # EOF:\n%s", out)
	}
	// Cumulative buckets: counts must be non-decreasing in le order.
	lastCum := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "lat_bucket{") {
			var cum int64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &cum); err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if cum < lastCum {
				t.Fatalf("bucket counts not cumulative: %q after %d", line, lastCum)
			}
			lastCum = cum
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"sched.queue_wait_micros": "sched_queue_wait_micros",
		"slo.breached.tenant-7":   "slo_breached_tenant_7",
		"7up":                     "_7up",
		"ok:name_Z9":              "ok:name_Z9",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}
