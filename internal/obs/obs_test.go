package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: every operation on nil observers, tracers, registries
// and metrics must be a no-op, since that is how disabled observability
// runs through fully instrumented code.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Instant(0, PidSched, 1, "c", "n", "d")
	tr.Span(0, time.Second, PidTasks, 1, "c", "n", "d")
	if tr.Lane(PidSched, "x") != 0 || tr.Len() != 0 || tr.Events() != nil || tr.Lanes() != nil {
		t.Fatal("nil tracer must observe nothing")
	}
	tr.Reset()

	var r *Registry
	r.Counter("a").Add(5)
	r.Counter("a").Inc()
	r.Gauge("b").Set(7)
	r.Gauge("b").Add(1)
	r.Histogram("c").Observe(3)
	r.RegisterFunc("d", func() int64 { return 1 })
	if got := r.Snapshot(); len(got.Counters) != 0 || len(got.Gauges) != 0 {
		t.Fatalf("nil registry snapshot = %+v", got)
	}
	if r.Counter("a").Value() != 0 || r.Gauge("b").Value() != 0 {
		t.Fatal("nil metrics must read zero")
	}
}

// TestRegistryConcurrent hammers one counter, gauge and histogram from
// many goroutines; run under -race this is the registry's data-race
// proof, and the final values check the arithmetic.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Exercise the lookup path concurrently too, not just the
			// atomics.
			c := r.Counter("hits")
			g := r.Gauge("depth")
			h := r.Histogram("lat")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counters["hits"]; got != workers*perWorker {
		t.Fatalf("hits = %d, want %d", got, workers*perWorker)
	}
	if got := snap.Gauges["depth"]; got != workers*perWorker {
		t.Fatalf("depth = %d, want %d", got, workers*perWorker)
	}
	h := snap.Histograms["lat"]
	if h.Count != workers*perWorker {
		t.Fatalf("hist count = %d", h.Count)
	}
	if h.Min != 0 || h.Max != workers*perWorker-1 {
		t.Fatalf("hist min/max = %d/%d", h.Min, h.Max)
	}
	var n int64
	for _, b := range h.Buckets {
		n += b.Count
	}
	if n != h.Count {
		t.Fatalf("bucket sum %d != count %d", n, h.Count)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x")
	for _, v := range []int64{0, 1, 1, 3, 100, -5} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["x"]
	if s.Count != 6 || s.Min != 0 || s.Max != 100 || s.Sum != 105 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Mean() != 105.0/6 {
		t.Fatalf("mean = %f", s.Mean())
	}
	_ = r.Histogram("x2")
	empty := r.Snapshot().Histograms["x2"]
	if empty.Count != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Fatalf("empty snapshot = %+v", empty)
	}
}

func TestRegistryFuncMetrics(t *testing.T) {
	r := NewRegistry()
	v := int64(41)
	r.RegisterFunc("external", func() int64 { return v })
	v++
	if got := r.Snapshot().Gauges["external"]; got != 42 {
		t.Fatalf("func metric = %d", got)
	}
}

// TestTracerConcurrent emits from many goroutines (the slave-backend
// pattern) and checks the sorted view is monotone in time with no lost
// events; under -race it doubles as the tracer's data-race proof.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := tr.Lane(PidTasks, laneName(w))
			for i := 0; i < perWorker; i++ {
				ts := time.Duration(i) * time.Millisecond
				if i%2 == 0 {
					tr.Instant(ts, PidTasks, tid, "t", "tick", "")
				} else {
					tr.Span(ts, time.Millisecond, PidTasks, tid, "t", "work", "")
				}
			}
		}(w)
	}
	wg.Wait()
	evs := tr.Events()
	if len(evs) != workers*perWorker {
		t.Fatalf("got %d events, want %d", len(evs), workers*perWorker)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Ts < evs[i-1].Ts {
			t.Fatalf("events not monotone at %d: %v < %v", i, evs[i].Ts, evs[i-1].Ts)
		}
	}
	if got := len(tr.Lanes()); got != workers {
		t.Fatalf("lanes = %d, want %d", got, workers)
	}
}

func laneName(w int) string {
	return string(rune('a' + w))
}

func TestTracerMarkSince(t *testing.T) {
	tr := NewTracer()
	tr.Instant(1, PidSched, 1, "s", "one", "")
	m := tr.Mark()
	tr.Instant(2, PidSched, 1, "s", "two", "")
	evs := tr.Since(m)
	if len(evs) != 1 || evs[0].Name != "two" {
		t.Fatalf("Since(mark) = %+v", evs)
	}
	if got := tr.Since(-1); len(got) != 2 {
		t.Fatalf("Since(-1) = %d events", len(got))
	}
	if got := tr.Since(99); len(got) != 0 {
		t.Fatalf("Since(past end) = %d events", len(got))
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset did not clear events")
	}
}

func TestLaneAssignment(t *testing.T) {
	tr := NewTracer()
	a := tr.Lane(PidTasks, "q0.f0")
	b := tr.Lane(PidTasks, "q0.f0/s0")
	if a == b {
		t.Fatalf("distinct lanes share tid %d", a)
	}
	if again := tr.Lane(PidTasks, "q0.f0"); again != a {
		t.Fatalf("lane not stable: %d then %d", a, again)
	}
	// Same name under a different pid is a different lane id space.
	if d := tr.Lane(PidDisks, "q0.f0"); d != 1 {
		t.Fatalf("first lane of a fresh pid = %d, want 1", d)
	}
}

// TestChromeExport round-trips the export through encoding/json the way
// the CI smoke test does, and checks lanes and metadata survive.
func TestChromeExport(t *testing.T) {
	tr := NewTracer()
	disk := tr.Lane(PidDisks, "disk0")
	task := tr.Lane(PidTasks, "q0.f0")
	tr.Span(10*time.Millisecond, 5*time.Millisecond, PidDisks, disk, "io", "sequential", "rel 1 block 4")
	tr.Instant(12*time.Millisecond, PidTasks, task, "protocol", "maxpage", "m=17")
	reg := NewRegistry()
	reg.Counter("exec.batches").Add(3)
	snap := reg.Snapshot()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events(), tr.Lanes(), &snap); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Ts    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			Pid   int            `json:"pid"`
			Tid   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var haveSpan, haveInstant, haveThreadName, haveProcName bool
	for _, ev := range parsed.TraceEvents {
		switch ev.Phase {
		case "X":
			haveSpan = true
			if ev.Ts != 10000 || ev.Dur != 5000 {
				t.Fatalf("span ts/dur = %v/%v µs", ev.Ts, ev.Dur)
			}
		case "i":
			haveInstant = true
			if ev.Args["detail"] != "m=17" {
				t.Fatalf("instant args = %v", ev.Args)
			}
		case "M":
			switch ev.Name {
			case "thread_name":
				haveThreadName = true
			case "process_name":
				haveProcName = true
			}
		}
	}
	if !haveSpan || !haveInstant || !haveThreadName || !haveProcName {
		t.Fatalf("export missing record kinds: span=%v instant=%v thread=%v proc=%v",
			haveSpan, haveInstant, haveThreadName, haveProcName)
	}
	if parsed.OtherData["metrics"] == nil {
		t.Fatal("metrics snapshot not embedded")
	}
}
