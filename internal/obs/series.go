package obs

// Windowed time-series: a fixed-size ring of per-window aggregates over
// virtual time. Where the Registry answers "what happened over the whole
// run", a Series answers "what was happening around t" — queue depth,
// admission and shed waves, latency per window — which is the view a
// serving operator needs.
//
// Clock purity: the series never reads any clock itself. Construction
// injects a now-func — a pure read of whatever clock the caller owns
// (virtual in simulation, wall on a live listener) — and every record is
// bucketed into the window floor(now/window). Pure reads cannot advance
// the virtual clock, so enabling a series cannot perturb the execution
// it observes (the obsnoclock analyzer pins this).

import (
	"slices"
	"sync"
	"time"
)

// seriesDefaultWindows is the ring capacity when the caller passes 0.
const seriesDefaultWindows = 240

// Series aggregates counters, gauge samples and distributions into
// fixed-width time windows, retaining the most recent capacity windows.
// All methods are safe for concurrent use and no-op on a nil receiver.
type Series struct {
	mu       sync.Mutex
	window   time.Duration
	capacity int
	now      func() time.Duration
	wins     []*seriesWindow // chronological, wins[i].index strictly increasing
	evicted  int64           // windows pushed out of the ring
	late     int64           // records older than the oldest retained window
}

// seriesWindow is the live aggregate of one window.
type seriesWindow struct {
	index    int64 // window start = index * s.window
	counters map[string]int64
	gauges   map[string]GaugeStat
	dists    map[string]*Histogram
}

// GaugeStat summarizes the gauge samples of one window.
type GaugeStat struct {
	Last  int64 `json:"last"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	Count int64 `json:"count"`
}

// NewSeries creates a series of capacity windows of the given width,
// timestamped through now — a pure clock read supplied by the caller.
// window <= 0 defaults to one second, capacity <= 0 to 240 windows.
func NewSeries(window time.Duration, capacity int, now func() time.Duration) *Series {
	if window <= 0 {
		window = time.Second
	}
	if capacity <= 0 {
		capacity = seriesDefaultWindows
	}
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Series{window: window, capacity: capacity, now: now}
}

// Window returns the configured window width (0 for a nil series).
func (s *Series) Window() time.Duration {
	if s == nil {
		return 0
	}
	return s.window
}

// current returns the live window for the present instant, creating and
// evicting as needed. Caller holds s.mu.
func (s *Series) current() *seriesWindow {
	idx := int64(s.now() / s.window)
	if n := len(s.wins); n > 0 {
		if last := s.wins[n-1]; last.index == idx {
			return last
		} else if last.index > idx {
			// A record from before the newest window (possible only with
			// a non-monotone clock); fold it into the oldest window that
			// still covers it, or count it as late.
			for i := n - 1; i >= 0; i-- {
				if s.wins[i].index <= idx {
					return s.wins[i]
				}
			}
			s.late++
			return nil
		}
	}
	w := &seriesWindow{
		index:    idx,
		counters: make(map[string]int64),
		gauges:   make(map[string]GaugeStat),
		dists:    make(map[string]*Histogram),
	}
	s.wins = append(s.wins, w)
	for len(s.wins) > s.capacity {
		s.wins = s.wins[1:]
		s.evicted++
	}
	return w
}

// Count adds delta to the named per-window counter.
func (s *Series) Count(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if w := s.current(); w != nil {
		w.counters[name] += delta
	}
	s.mu.Unlock()
}

// Sample records a gauge observation (last/min/max per window).
func (s *Series) Sample(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if w := s.current(); w != nil {
		g, ok := w.gauges[name]
		if !ok {
			g = GaugeStat{Last: v, Min: v, Max: v}
		} else {
			g.Last = v
			if v < g.Min {
				g.Min = v
			}
			if v > g.Max {
				g.Max = v
			}
		}
		g.Count++
		w.gauges[name] = g
	}
	s.mu.Unlock()
}

// Observe records a distribution observation into the window's
// power-of-two histogram.
func (s *Series) Observe(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if w := s.current(); w != nil {
		h, ok := w.dists[name]
		if !ok {
			h = newHistogram()
			w.dists[name] = h
		}
		h.Observe(v)
	}
	s.mu.Unlock()
}

// SeriesSnapshot is a point-in-time copy of a series, ordered oldest
// window first. It is fully deterministic for a deterministic record
// sequence: window indices derive from virtual time and all maps are
// value copies.
type SeriesSnapshot struct {
	WindowNs int64            `json:"window_ns"`
	Evicted  int64            `json:"evicted_windows"`
	Late     int64            `json:"late_records,omitempty"`
	Windows  []WindowSnapshot `json:"windows"`
}

// WindowSnapshot is one window of a series snapshot.
type WindowSnapshot struct {
	// Index is the window number; the window covers virtual time
	// [Index*WindowNs, (Index+1)*WindowNs). Gaps between successive
	// indices are windows in which nothing was recorded.
	Index    int64                        `json:"index"`
	StartNs  int64                        `json:"start_ns"`
	Counters map[string]int64             `json:"counters,omitempty"`
	Gauges   map[string]GaugeStat         `json:"gauges,omitempty"`
	Dists    map[string]HistogramSnapshot `json:"dists,omitempty"`
}

// Counter returns a named counter of the window (0 when absent).
func (w WindowSnapshot) Counter(name string) int64 { return w.Counters[name] }

// Snapshot copies the retained windows. A nil series yields the zero
// snapshot.
func (s *Series) Snapshot() SeriesSnapshot {
	if s == nil {
		return SeriesSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := SeriesSnapshot{
		WindowNs: int64(s.window),
		Evicted:  s.evicted,
		Late:     s.late,
		Windows:  make([]WindowSnapshot, 0, len(s.wins)),
	}
	for _, w := range s.wins {
		ws := WindowSnapshot{
			Index:   w.index,
			StartNs: w.index * int64(s.window),
		}
		if len(w.counters) > 0 {
			ws.Counters = make(map[string]int64, len(w.counters))
			for n, v := range w.counters {
				ws.Counters[n] = v
			}
		}
		if len(w.gauges) > 0 {
			ws.Gauges = make(map[string]GaugeStat, len(w.gauges))
			for n, g := range w.gauges {
				ws.Gauges[n] = g
			}
		}
		if len(w.dists) > 0 {
			ws.Dists = make(map[string]HistogramSnapshot, len(w.dists))
			for n, h := range w.dists {
				ws.Dists[n] = h.snapshot()
			}
		}
		out.Windows = append(out.Windows, ws)
	}
	return out
}

// TotalCounter sums a named counter across every retained window.
func (s SeriesSnapshot) TotalCounter(name string) int64 {
	var total int64
	for _, w := range s.Windows {
		total += w.Counters[name]
	}
	return total
}

// CounterNames returns every counter name appearing in any window,
// sorted.
func (s SeriesSnapshot) CounterNames() []string {
	seen := make(map[string]bool)
	var names []string
	for _, w := range s.Windows {
		for n := range w.Counters {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	slices.Sort(names)
	return names
}
