package obs

// Per-tenant SLO tracking. Each tenant keeps a bounded ring of its most
// recent completions (response time, queue wait, completion instant)
// plus cumulative completed/breached/shed counters. Percentiles are
// nearest-rank over the samples inside the sliding horizon — the same
// rank definition the workload driver's Percentile uses (NearestRank),
// so a tenant's p95 here and the run-level p95 there agree on what
// "p95" means. Timestamps are supplied by the caller; the tracker never
// reads a clock.

import (
	"cmp"
	"slices"
	"sync"
	"time"
)

// sloDefaultCap bounds the per-tenant sample ring when the caller
// passes 0.
const sloDefaultCap = 2048

// SLO tracks per-tenant response/queue-wait distributions against
// target thresholds. All methods are safe for concurrent use and no-op
// on a nil receiver.
type SLO struct {
	mu        sync.Mutex
	horizon   time.Duration // samples older than newest-horizon are ignored; 0 = unbounded
	sampleCap int
	defTarget time.Duration
	targets   map[string]time.Duration
	tenants   map[string]*sloTenant
}

type sloSample struct {
	at, resp, wait time.Duration
}

type sloTenant struct {
	target    time.Duration
	ring      []sloSample // ring of the most recent sampleCap completions
	next      int         // write index once the ring is full
	completed int64
	breached  int64
	shed      int64
}

// NewSLO creates a tracker. horizon bounds the percentile window
// (0 = no age bound, ring capacity only); sampleCap bounds per-tenant
// retained samples (<= 0 defaults to 2048). targets maps tenant name to
// its response-time target; the "" entry is the default for tenants not
// listed. A zero target disables breach accounting for that tenant.
func NewSLO(horizon time.Duration, sampleCap int, targets map[string]time.Duration) *SLO {
	if sampleCap <= 0 {
		sampleCap = sloDefaultCap
	}
	s := &SLO{
		horizon:   horizon,
		sampleCap: sampleCap,
		defTarget: targets[""],
		targets:   make(map[string]time.Duration, len(targets)),
		tenants:   make(map[string]*sloTenant),
	}
	for name, d := range targets {
		if name != "" {
			s.targets[name] = d
		}
	}
	return s
}

// tenant returns the named tenant state, creating it on first use.
// Caller holds s.mu.
func (s *SLO) tenant(name string) *sloTenant {
	t, ok := s.tenants[name]
	if !ok {
		target, set := s.targets[name]
		if !set {
			target = s.defTarget
		}
		t = &sloTenant{target: target}
		s.tenants[name] = t
	}
	return t
}

// Record logs one completed query: its completion instant, response
// time (submit to finish) and queue wait.
func (s *SLO) Record(tenant string, at, resp, wait time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	t := s.tenant(tenant)
	t.completed++
	if t.target > 0 && resp > t.target {
		t.breached++
	}
	sm := sloSample{at: at, resp: resp, wait: wait}
	if len(t.ring) < s.sampleCap {
		t.ring = append(t.ring, sm)
	} else {
		t.ring[t.next] = sm
		t.next++
		if t.next == len(t.ring) {
			t.next = 0
		}
	}
	s.mu.Unlock()
}

// RecordShed logs one shed (rejected) query for the tenant.
func (s *SLO) RecordShed(tenant string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tenant(tenant).shed++
	s.mu.Unlock()
}

// Breached returns the tenant's cumulative breach count — the burn-rate
// numerator, suitable for a RegisterFunc gauge.
func (s *SLO) Breached(tenant string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[tenant]; ok {
		return t.breached
	}
	return 0
}

// Completed returns the tenant's cumulative completion count.
func (s *SLO) Completed(tenant string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[tenant]; ok {
		return t.completed
	}
	return 0
}

// TenantSLO is the snapshot of one tenant's SLO state. Percentiles are
// nearest-rank over the samples inside the horizon; Burn is the
// cumulative breach rate in permille (breached*1000/completed).
type TenantSLO struct {
	Tenant       string `json:"tenant"`
	Completed    int64  `json:"completed"`
	Shed         int64  `json:"shed"`
	TargetNs     int64  `json:"target_ns,omitempty"`
	Breached     int64  `json:"breached"`
	BurnPermille int64  `json:"burn_permille"`
	WindowCount  int    `json:"window_count"`
	RespP50Ns    int64  `json:"resp_p50_ns"`
	RespP95Ns    int64  `json:"resp_p95_ns"`
	RespP99Ns    int64  `json:"resp_p99_ns"`
	WaitP50Ns    int64  `json:"wait_p50_ns"`
	WaitP95Ns    int64  `json:"wait_p95_ns"`
	WaitP99Ns    int64  `json:"wait_p99_ns"`
}

// Snapshot returns every tenant's state, sorted by tenant name. A nil
// tracker yields nil.
func (s *SLO) Snapshot() []TenantSLO {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantSLO, 0, len(s.tenants))
	for name, t := range s.tenants {
		ts := TenantSLO{
			Tenant:    name,
			Completed: t.completed,
			Shed:      t.shed,
			TargetNs:  int64(t.target),
			Breached:  t.breached,
		}
		if t.completed > 0 {
			ts.BurnPermille = t.breached * 1000 / t.completed
		}
		// Horizon filter: keep samples no older than newest-horizon.
		var newest time.Duration
		for _, sm := range t.ring {
			if sm.at > newest {
				newest = sm.at
			}
		}
		resp := make([]time.Duration, 0, len(t.ring))
		wait := make([]time.Duration, 0, len(t.ring))
		for _, sm := range t.ring {
			if s.horizon > 0 && sm.at < newest-s.horizon {
				continue
			}
			resp = append(resp, sm.resp)
			wait = append(wait, sm.wait)
		}
		slices.SortFunc(resp, func(a, b time.Duration) int { return cmp.Compare(a, b) })
		slices.SortFunc(wait, func(a, b time.Duration) int { return cmp.Compare(a, b) })
		ts.WindowCount = len(resp)
		if n := len(resp); n > 0 {
			ts.RespP50Ns = int64(resp[NearestRank(n, 50)-1])
			ts.RespP95Ns = int64(resp[NearestRank(n, 95)-1])
			ts.RespP99Ns = int64(resp[NearestRank(n, 99)-1])
			ts.WaitP50Ns = int64(wait[NearestRank(n, 50)-1])
			ts.WaitP95Ns = int64(wait[NearestRank(n, 95)-1])
			ts.WaitP99Ns = int64(wait[NearestRank(n, 99)-1])
		}
		out = append(out, ts)
	}
	slices.SortFunc(out, func(a, b TenantSLO) int { return cmp.Compare(a.Tenant, b.Tenant) })
	return out
}
