// Package obs is the run-observability layer: a metrics registry
// (counters, gauges, histograms with atomic hot paths) and a structured
// span/event tracer, shared by the scheduler, the executor, the disk
// model and the buffer pool.
//
// Two properties govern every API in this package:
//
//  1. Nil safety. All methods are no-ops on nil receivers, so
//     instrumented code writes `eng.Trace.Instant(...)` or
//     `counter.Add(1)` unconditionally and pays a predictable branch
//     when observability is disabled.
//  2. Clock neutrality. Nothing here touches the virtual clock: events
//     carry timestamps supplied by the caller and are appended under a
//     plain mutex. Enabling tracing therefore cannot perturb the
//     deterministic virtual-time execution it observes (proven by
//     TestTraceDeterministic at the facade level).
package obs

// Observer bundles one run's tracer and metrics registry. The facade
// hands it to every subsystem; a nil Observer (or nil fields) disables
// the corresponding instrumentation.
type Observer struct {
	Trace   *Tracer
	Metrics *Registry
}

// NewObserver creates an observer with a fresh tracer and registry.
func NewObserver() *Observer {
	return &Observer{Trace: NewTracer(), Metrics: NewRegistry()}
}

// NewObserverBudget creates an observer whose tracer retains at most
// spanBudget events (see NewTracerBudget); spanBudget <= 0 means
// unbounded, matching NewObserver.
func NewObserverBudget(spanBudget int) *Observer {
	return &Observer{Trace: NewTracerBudget(spanBudget), Metrics: NewRegistry()}
}
