package expr

import (
	"fmt"

	"xprs/internal/storage"
)

// Batch-level selection. Qualification expressions are compiled once per
// pipeline into a Pred, so batches filter through FilterInto without
// re-walking the expression tree or dispatching through the Expr
// interface per tuple. The compiled forms reproduce Eval's semantics
// exactly, including error messages, so switching the executor between
// the interpreted and compiled paths is unobservable.

// Pred is a compiled boolean predicate over one tuple.
type Pred func(t storage.Tuple) (bool, error)

// CompilePred compiles a boolean expression. A nil expression compiles
// to nil (pass everything); callers skip filtering entirely in that
// case. Comparison shapes the workloads use — column against int4
// constant, column against column, and AND/OR/NOT of those — get direct
// closures; anything else falls back to interpreted evaluation.
func CompilePred(e Expr) Pred {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case Cmp:
		if p := compileCmp(x); p != nil {
			return p
		}
	case Logic:
		switch x.Op {
		case And, Or:
			kids := make([]Pred, len(x.Kids))
			for i, k := range x.Kids {
				kids[i] = CompilePred(k)
			}
			stopOn := x.Op == Or // OR short-circuits on true, AND on false
			return func(t storage.Tuple) (bool, error) {
				for _, k := range kids {
					ok, err := k(t)
					if err != nil {
						return false, err
					}
					if ok == stopOn {
						return stopOn, nil
					}
				}
				return !stopOn, nil
			}
		case Not:
			if len(x.Kids) == 1 {
				kid := CompilePred(x.Kids[0])
				return func(t storage.Tuple) (bool, error) {
					ok, err := kid(t)
					return !ok && err == nil, err
				}
			}
		}
	}
	return func(t storage.Tuple) (bool, error) {
		return Qualifies(e, t)
	}
}

// compileCmp builds a direct closure for the common comparison shapes,
// or nil when the shape needs the interpreted fallback.
func compileCmp(c Cmp) Pred {
	if lc, ok := c.L.(Col); ok {
		if rc, ok := c.R.(Col); ok {
			return colColPred(c.Op, lc.Idx, rc.Idx)
		}
		if k, ok := c.R.(Const); ok && k.Val.Typ == storage.Int4 {
			return colConstPred(c.Op, lc.Idx, k.Val.Int)
		}
	}
	if k, ok := c.L.(Const); ok && k.Val.Typ == storage.Int4 {
		if rc, ok := c.R.(Col); ok {
			return colConstPred(swapOp(c.Op), rc.Idx, k.Val.Int)
		}
	}
	return nil
}

// swapOp mirrors an operator across its operands: const OP col becomes
// col swapOp(OP) const.
func swapOp(op CmpOp) CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default: // EQ, NE are symmetric
		return op
	}
}

func cmpHolds(op CmpOp, cmp int) (bool, error) {
	switch op {
	case EQ:
		return cmp == 0, nil
	case NE:
		return cmp != 0, nil
	case LT:
		return cmp < 0, nil
	case LE:
		return cmp <= 0, nil
	case GT:
		return cmp > 0, nil
	case GE:
		return cmp >= 0, nil
	default:
		return false, fmt.Errorf("expr: unknown comparison %v", op)
	}
}

func colConstPred(op CmpOp, idx int, k int32) Pred {
	return func(t storage.Tuple) (bool, error) {
		if idx < 0 || idx >= len(t.Vals) {
			return false, fmt.Errorf("expr: column %d out of range (tuple has %d)", idx, len(t.Vals))
		}
		v := t.Vals[idx]
		if v.Typ != storage.Int4 {
			return false, fmt.Errorf("expr: comparing %v with %v", v.Typ, storage.Int4)
		}
		switch op {
		case EQ:
			return v.Int == k, nil
		case NE:
			return v.Int != k, nil
		case LT:
			return v.Int < k, nil
		case LE:
			return v.Int <= k, nil
		case GT:
			return v.Int > k, nil
		case GE:
			return v.Int >= k, nil
		default:
			return false, fmt.Errorf("expr: unknown comparison %v", op)
		}
	}
}

func colColPred(op CmpOp, li, ri int) Pred {
	return func(t storage.Tuple) (bool, error) {
		if li < 0 || li >= len(t.Vals) {
			return false, fmt.Errorf("expr: column %d out of range (tuple has %d)", li, len(t.Vals))
		}
		if ri < 0 || ri >= len(t.Vals) {
			return false, fmt.Errorf("expr: column %d out of range (tuple has %d)", ri, len(t.Vals))
		}
		l, r := t.Vals[li], t.Vals[ri]
		if l.Typ != r.Typ {
			return false, fmt.Errorf("expr: comparing %v with %v", l.Typ, r.Typ)
		}
		if l.Typ == storage.Int4 {
			return cmpHolds(op, int(l.Int)-int(r.Int))
		}
		return cmpHolds(op, l.Compare(r))
	}
}

// Int4Keys appends the int4 value of column col for every tuple of ts
// to out and returns the extended slice. It is the batch key-extraction
// fast path of hash probes: the column bound is checked once per tuple
// here so the join's per-match loop runs without validation.
func Int4Keys(ts []storage.Tuple, col int, out []int32) ([]int32, error) {
	for i := range ts {
		if col < 0 || col >= len(ts[i].Vals) {
			return out, fmt.Errorf("expr: column %d out of range (tuple has %d)", col, len(ts[i].Vals))
		}
		out = append(out, ts[i].Vals[col].Int)
	}
	return out, nil
}

// FilterInto appends the tuples of ts that satisfy p to out and returns
// the extended slice. A nil predicate keeps everything. out is caller
// scratch: the appended tuples alias ts, so out must not outlive the
// batch it filtered.
func FilterInto(p Pred, ts []storage.Tuple, out []storage.Tuple) ([]storage.Tuple, error) {
	if p == nil {
		return append(out, ts...), nil
	}
	for i := range ts {
		ok, err := p(ts[i])
		if err != nil {
			return out, err
		}
		if ok {
			out = append(out, ts[i])
		}
	}
	return out, nil
}
