// Package expr implements qualification expressions over tuples: column
// references, constants, comparisons and boolean connectives. The paper's
// workloads are one-variable selections ("a selection on r1.a", §3), but
// the optimizer (§4) needs join predicates and selectivity estimation as
// well, so the package carries the standard System-R selectivity rules.
package expr

import (
	"fmt"
	"strings"

	"xprs/internal/storage"
)

// CmpOp is a comparison operator.
type CmpOp int

const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String implements fmt.Stringer.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Expr is a boolean or scalar expression evaluated against one tuple.
type Expr interface {
	// Eval computes the expression over t.
	Eval(t storage.Tuple) (storage.Value, error)
	// String renders the expression for EXPLAIN output.
	String() string
}

// Col references a column of the input tuple by position.
type Col struct {
	Idx  int
	Name string // for display only
}

// Eval implements Expr.
func (c Col) Eval(t storage.Tuple) (storage.Value, error) {
	if c.Idx < 0 || c.Idx >= len(t.Vals) {
		return storage.Value{}, fmt.Errorf("expr: column %d out of range (tuple has %d)", c.Idx, len(t.Vals))
	}
	return t.Vals[c.Idx], nil
}

// String implements Expr.
func (c Col) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Idx)
}

// Const is a literal value.
type Const struct {
	Val storage.Value
}

// Eval implements Expr.
func (c Const) Eval(storage.Tuple) (storage.Value, error) { return c.Val, nil }

// String implements Expr.
func (c Const) String() string { return c.Val.String() }

// Cmp compares two sub-expressions. Both sides must evaluate to the same
// type.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr; it yields int4 1 or 0 (boolean).
func (c Cmp) Eval(t storage.Tuple) (storage.Value, error) {
	l, err := c.L.Eval(t)
	if err != nil {
		return storage.Value{}, err
	}
	r, err := c.R.Eval(t)
	if err != nil {
		return storage.Value{}, err
	}
	if l.Typ != r.Typ {
		return storage.Value{}, fmt.Errorf("expr: comparing %v with %v", l.Typ, r.Typ)
	}
	cmp := l.Compare(r)
	var ok bool
	switch c.Op {
	case EQ:
		ok = cmp == 0
	case NE:
		ok = cmp != 0
	case LT:
		ok = cmp < 0
	case LE:
		ok = cmp <= 0
	case GT:
		ok = cmp > 0
	case GE:
		ok = cmp >= 0
	default:
		return storage.Value{}, fmt.Errorf("expr: unknown comparison %v", c.Op)
	}
	return boolVal(ok), nil
}

// String implements Expr.
func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L.String(), c.Op.String(), c.R.String())
}

// LogicOp is a boolean connective.
type LogicOp int

const (
	And LogicOp = iota
	Or
	Not
)

// Logic combines boolean sub-expressions. Not takes exactly one child.
type Logic struct {
	Op   LogicOp
	Kids []Expr
}

// Eval implements Expr.
func (l Logic) Eval(t storage.Tuple) (storage.Value, error) {
	switch l.Op {
	case Not:
		if len(l.Kids) != 1 {
			return storage.Value{}, fmt.Errorf("expr: NOT takes 1 child, has %d", len(l.Kids))
		}
		v, err := l.Kids[0].Eval(t)
		if err != nil {
			return storage.Value{}, err
		}
		return boolVal(!truthy(v)), nil
	case And:
		for _, k := range l.Kids {
			v, err := k.Eval(t)
			if err != nil {
				return storage.Value{}, err
			}
			if !truthy(v) {
				return boolVal(false), nil
			}
		}
		return boolVal(true), nil
	case Or:
		for _, k := range l.Kids {
			v, err := k.Eval(t)
			if err != nil {
				return storage.Value{}, err
			}
			if truthy(v) {
				return boolVal(true), nil
			}
		}
		return boolVal(false), nil
	default:
		return storage.Value{}, fmt.Errorf("expr: unknown connective %d", int(l.Op))
	}
}

// String implements Expr.
func (l Logic) String() string {
	if l.Op == Not {
		if len(l.Kids) == 1 {
			return "NOT (" + l.Kids[0].String() + ")"
		}
		return "NOT(?)"
	}
	word := " AND "
	if l.Op == Or {
		word = " OR "
	}
	parts := make([]string, len(l.Kids))
	for i, k := range l.Kids {
		parts[i] = "(" + k.String() + ")"
	}
	return strings.Join(parts, word)
}

func boolVal(b bool) storage.Value {
	if b {
		return storage.IntVal(1)
	}
	return storage.IntVal(0)
}

func truthy(v storage.Value) bool {
	if v.Typ == storage.Int4 {
		return v.Int != 0
	}
	return v.Str != ""
}

// Qualifies evaluates a boolean expression and reports whether the tuple
// passes. A nil expression passes everything.
func Qualifies(e Expr, t storage.Tuple) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := e.Eval(t)
	if err != nil {
		return false, err
	}
	return truthy(v), nil
}

// Convenience constructors used pervasively by tests and the optimizer.

// ColEqConst builds "col = const".
func ColEqConst(idx int, name string, v int32) Expr {
	return Cmp{Op: EQ, L: Col{Idx: idx, Name: name}, R: Const{Val: storage.IntVal(v)}}
}

// ColRange builds "lo <= col AND col <= hi".
func ColRange(idx int, name string, lo, hi int32) Expr {
	return Logic{Op: And, Kids: []Expr{
		Cmp{Op: GE, L: Col{Idx: idx, Name: name}, R: Const{Val: storage.IntVal(lo)}},
		Cmp{Op: LE, L: Col{Idx: idx, Name: name}, R: Const{Val: storage.IntVal(hi)}},
	}}
}
