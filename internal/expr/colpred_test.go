package expr

import (
	"fmt"
	"math/rand"
	"testing"

	"xprs/internal/storage"
)

// Differential oracle: the columnar predicate path must agree with the
// row-at-a-time reference evaluator — same selected rows, same errors —
// over random schemas, random int4/text data, random expression trees,
// and every selection density (empty, sparse, ~50%, full).

// randSchema builds a random NULL-free int4/text schema of 1..6 columns
// with at least one int4 column (comparison targets).
func randSchema(rng *rand.Rand) storage.Schema {
	n := 1 + rng.Intn(6)
	cols := make([]storage.Column, n)
	intAt := rng.Intn(n)
	for i := range cols {
		typ := storage.Int4
		if i != intAt && rng.Intn(2) == 0 {
			typ = storage.Text
		}
		cols[i] = storage.Column{Name: fmt.Sprintf("c%d", i), Typ: typ}
	}
	return storage.NewSchema(cols...)
}

// randRows generates rows with small int domains (so predicates hit all
// densities) and short text values (so col-col text compares collide).
func randRows(rng *rand.Rand, s storage.Schema, n int) []storage.Tuple {
	words := []string{"", "a", "ab", "b", "ba", "abc", "zz"}
	out := make([]storage.Tuple, n)
	for i := range out {
		vals := make([]storage.Value, s.Len())
		for c := range vals {
			if s.Cols[c].Typ == storage.Int4 {
				vals[c] = storage.IntVal(int32(rng.Intn(10) - 5))
			} else {
				vals[c] = storage.TextVal(words[rng.Intn(len(words))])
			}
		}
		out[i] = storage.Tuple{Vals: vals}
	}
	return out
}

// randExpr builds a random predicate tree. Depth-0 leaves are
// comparisons; interior nodes are AND/OR/NOT. mismatch injects
// deliberately ill-typed comparisons so the error paths get compared
// too.
func randExpr(rng *rand.Rand, s storage.Schema, depth int, mismatch bool) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		op := CmpOp(rng.Intn(6))
		li := rng.Intn(s.Len())
		switch rng.Intn(4) {
		case 0: // col OP const
			if s.Cols[li].Typ == storage.Text && !mismatch {
				// retarget to an int4 column for a compilable shape
				for s.Cols[li].Typ != storage.Int4 {
					li = rng.Intn(s.Len())
				}
			}
			return Cmp{Op: op, L: Col{Idx: li}, R: Const{Val: storage.IntVal(int32(rng.Intn(10) - 5))}}
		case 1: // const OP col
			if s.Cols[li].Typ == storage.Text && !mismatch {
				for s.Cols[li].Typ != storage.Int4 {
					li = rng.Intn(s.Len())
				}
			}
			return Cmp{Op: op, L: Const{Val: storage.IntVal(int32(rng.Intn(10) - 5))}, R: Col{Idx: li}}
		case 2: // col OP col
			ri := rng.Intn(s.Len())
			if !mismatch && s.Cols[li].Typ != s.Cols[ri].Typ {
				ri = li
			}
			return Cmp{Op: op, L: Col{Idx: li}, R: Col{Idx: ri}}
		default: // uncompiled shape: const OP const forces interpreted fallback
			return Cmp{Op: op, L: Const{Val: storage.IntVal(int32(rng.Intn(4)))},
				R: Const{Val: storage.IntVal(int32(rng.Intn(4)))}}
		}
	}
	switch rng.Intn(3) {
	case 0:
		return Logic{Op: Not, Kids: []Expr{randExpr(rng, s, depth-1, mismatch)}}
	case 1:
		k := 2 + rng.Intn(2)
		kids := make([]Expr, k)
		for i := range kids {
			kids[i] = randExpr(rng, s, depth-1, mismatch)
		}
		return Logic{Op: And, Kids: kids}
	default:
		k := 2 + rng.Intn(2)
		kids := make([]Expr, k)
		for i := range kids {
			kids[i] = randExpr(rng, s, depth-1, mismatch)
		}
		return Logic{Op: Or, Kids: kids}
	}
}

// rowReference runs the compiled row path over the selected rows and
// returns the surviving physical row indexes (the oracle).
func rowReference(e Expr, rows []storage.Tuple, sel []int32) ([]int32, error) {
	p := CompilePred(e)
	var out []int32
	n := len(rows)
	if sel != nil {
		n = len(sel)
	}
	for pos := 0; pos < n; pos++ {
		row := pos
		if sel != nil {
			row = int(sel[pos])
		}
		ok, err := p(rows[row])
		if err != nil {
			return out, err
		}
		if ok {
			out = append(out, int32(row))
		}
	}
	return out, nil
}

func toColBatch(s storage.Schema, rows []storage.Tuple) *storage.ColBatch {
	b := storage.NewColBatch(s, len(rows))
	for _, t := range rows {
		b.AppendTuple(t)
	}
	return b
}

// selOfDensity builds an input selection vector: nil (all rows), empty,
// every other row, or a random subset.
func selOfDensity(rng *rand.Rand, n, mode int) []int32 {
	switch mode {
	case 0:
		return nil // 100% density, implicit
	case 1:
		return []int32{} // 0%
	case 2:
		var s []int32
		for i := 0; i < n; i += 2 { // ~50%
			s = append(s, int32(i))
		}
		return s
	default:
		var s []int32
		for i := 0; i < n; i++ {
			if rng.Intn(3) > 0 {
				s = append(s, int32(i))
			}
		}
		return s
	}
}

func selsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestColPredDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC01BA7))
	for iter := 0; iter < 400; iter++ {
		s := randSchema(rng)
		rows := randRows(rng, s, rng.Intn(40))
		cb := toColBatch(s, rows)
		mismatch := iter%5 == 4
		e := randExpr(rng, s, 1+rng.Intn(2), mismatch)
		cp := CompileColPred(e)
		for mode := 0; mode < 4; mode++ {
			sel := selOfDensity(rng, len(rows), mode)
			want, wantErr := rowReference(e, rows, sel)
			got, gotErr := cp(cb, sel, nil)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("iter %d mode %d: error mismatch: row=%v col=%v\nexpr: %s",
					iter, mode, wantErr, gotErr, e)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("iter %d mode %d: error text: row=%q col=%q\nexpr: %s",
						iter, mode, wantErr, gotErr, e)
				}
				continue
			}
			if !selsEqual(want, got) {
				t.Fatalf("iter %d mode %d: selection mismatch\nexpr: %s\nrow: %v\ncol: %v",
					iter, mode, e, want, got)
			}
		}
	}
}

// TestColPredChainDifferential pins the executor-facing AND-chain API to
// the same oracle: applying the factors in sequence equals the full
// conjunction.
func TestColPredChainDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0xFEED5))
	for iter := 0; iter < 200; iter++ {
		s := randSchema(rng)
		rows := randRows(rng, s, rng.Intn(40))
		cb := toColBatch(s, rows)
		// Build a top-level AND (sometimes nested) of clean predicates.
		k := 1 + rng.Intn(3)
		kids := make([]Expr, k)
		for i := range kids {
			kids[i] = randExpr(rng, s, 1, false)
		}
		var e Expr = Logic{Op: And, Kids: kids}
		want, wantErr := rowReference(e, rows, nil)
		chain := CompileColPredChain(e)
		var a, b []int32
		var sel []int32
		var gotErr error
		for i, p := range chain {
			dst := a[:0]
			if i%2 == 1 {
				dst = b[:0]
			}
			res, err := p(cb, sel, dst)
			if err != nil {
				gotErr = err
				break
			}
			if i%2 == 0 {
				a = res
			} else {
				b = res
			}
			sel = res
			if len(res) == 0 {
				break
			}
		}
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("iter %d: error mismatch row=%v chain=%v expr=%s", iter, wantErr, gotErr, e)
		}
		if wantErr != nil {
			continue
		}
		got := sel
		if got == nil {
			got = []int32{}
		}
		if want == nil {
			want = []int32{}
		}
		if !selsEqual(want, got) {
			t.Fatalf("iter %d: mismatch\nexpr %s\nrow %v\nchain %v", iter, e, want, got)
		}
	}
}

// TestInt4KeysColsMatchesRows pins batch key extraction against the row
// helper at every density.
func TestInt4KeysColsMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := storage.NewSchema(
		storage.Column{Name: "a", Typ: storage.Int4},
		storage.Column{Name: "b", Typ: storage.Text},
		storage.Column{Name: "c", Typ: storage.Int4},
	)
	rows := randRows(rng, s, 64)
	cb := toColBatch(s, rows)
	for mode := 0; mode < 4; mode++ {
		sel := selOfDensity(rng, len(rows), mode)
		for col := 0; col < s.Len(); col++ {
			if s.Cols[col].Typ != storage.Int4 {
				continue
			}
			var wantRows []storage.Tuple
			n := len(rows)
			if sel != nil {
				n = len(sel)
			}
			for pos := 0; pos < n; pos++ {
				row := pos
				if sel != nil {
					row = int(sel[pos])
				}
				wantRows = append(wantRows, rows[row])
			}
			want, err := Int4Keys(wantRows, col, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Int4KeysCols(cb, col, sel, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !selsEqual(want, got) {
				t.Fatalf("mode %d col %d: %v != %v", mode, col, want, got)
			}
		}
	}
}
