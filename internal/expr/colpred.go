package expr

import (
	"bytes"
	"fmt"

	"xprs/internal/storage"
)

// Columnar selection. A ColPred evaluates a qualification over a
// columnar batch and produces a selection vector: the ascending physical
// row indexes of the passing rows. Filtering never moves tuple data —
// downstream operators consume the batch through the selection vector.
//
// The compiled forms reproduce the row path's semantics exactly
// (including error messages), which the differential oracle in
// colpred_test.go pins down; the executor can therefore switch between
// the row and columnar paths without observable differences.

// ColPred appends the passing physical row indexes of b, drawn from the
// input selection sel (nil = all b.N rows), to out and returns the
// extended slice. out must not alias sel.
type ColPred func(b *storage.ColBatch, sel []int32, out []int32) ([]int32, error)

// CompileColPred compiles a boolean expression to a columnar predicate.
// A nil expression compiles to nil (pass everything). The comparison
// shapes the workloads use — column against int4 constant, column
// against column, and AND/OR/NOT of those — become tight loops over the
// column vectors; anything else falls back to row-at-a-time interpreted
// evaluation over materialized values.
func CompileColPred(e Expr) ColPred {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case Cmp:
		if p := compileColCmp(x); p != nil {
			return p
		}
	case Logic:
		switch x.Op {
		case And:
			if len(x.Kids) > 0 {
				kids := make([]ColPred, len(x.Kids))
				for i, k := range x.Kids {
					kids[i] = CompileColPred(k)
				}
				return andColPred(kids)
			}
		case Or:
			if len(x.Kids) > 0 {
				kids := make([]ColPred, len(x.Kids))
				for i, k := range x.Kids {
					kids[i] = CompileColPred(k)
				}
				return orColPred(kids)
			}
		case Not:
			if len(x.Kids) == 1 {
				return notColPred(CompileColPred(x.Kids[0]))
			}
		}
	}
	return interpColPred(e)
}

// CompileColPredChain compiles e's top-level AND factors individually:
// applying the returned predicates in order, each narrowing the previous
// selection, is equivalent to the conjunction. Callers that own their
// selection scratch (the executor's filter stage) use this to ping-pong
// between two reusable buffers instead of paying andColPred's internal
// scratch. A nil expression returns nil.
func CompileColPredChain(e Expr) []ColPred {
	if e == nil {
		return nil
	}
	if x, ok := e.(Logic); ok && x.Op == And && len(x.Kids) > 0 {
		var out []ColPred
		for _, k := range x.Kids {
			out = append(out, CompileColPredChain(k)...)
		}
		return out
	}
	return []ColPred{CompileColPred(e)}
}

// andColPred chains the kids: each narrows the previous selection,
// ping-ponging between two internal buffers so only the final result
// lands in out.
func andColPred(kids []ColPred) ColPred {
	return func(b *storage.ColBatch, sel []int32, out []int32) ([]int32, error) {
		var bufA, bufB []int32
		cur := sel
		for i, k := range kids {
			if i == len(kids)-1 {
				return k(b, cur, out)
			}
			// cur aliases the buffer written two rounds ago (or the
			// caller's sel); write this round into the other buffer.
			dst := bufA[:0]
			res, err := k(b, cur, dst)
			if err != nil {
				return out, err
			}
			bufA = res
			if len(res) == 0 {
				return out, nil
			}
			cur = res
			bufA, bufB = bufB, bufA
		}
		return out, nil
	}
}

// orColPred reproduces the row evaluator's left-to-right short-circuit:
// each kid evaluates only the rows every earlier kid rejected, so a row
// that errors in a later kid after an earlier kid matched it does not
// error here either.
func orColPred(kids []ColPred) ColPred {
	return func(b *storage.ColBatch, sel []int32, out []int32) ([]int32, error) {
		var remA, remB, res []int32
		cur := sel
		base := len(out)
		for i, k := range kids {
			var err error
			res, err = k(b, cur, res[:0])
			if err != nil {
				return out, err
			}
			out = append(out, res...)
			if i == len(kids)-1 {
				break
			}
			// next = cur \ res (both ascending), into the buffer cur does
			// not alias.
			dst := remA[:0]
			if i%2 == 1 {
				dst = remB[:0]
			}
			j := 0
			n := b.N
			if cur != nil {
				n = len(cur)
			}
			for pos := 0; pos < n; pos++ {
				row := int32(pos)
				if cur != nil {
					row = cur[pos]
				}
				if j < len(res) && res[j] == row {
					j++
					continue
				}
				dst = append(dst, row)
			}
			if i%2 == 0 {
				remA = dst
			} else {
				remB = dst
			}
			if len(dst) == 0 {
				break
			}
			cur = dst
		}
		sortSel(out[base:])
		return out, nil
	}
}

// notColPred complements the kid's selection over the input rows.
func notColPred(kid ColPred) ColPred {
	return func(b *storage.ColBatch, sel []int32, out []int32) ([]int32, error) {
		var scratch []int32
		res, err := kid(b, sel, scratch)
		if err != nil {
			return out, err
		}
		j := 0
		n := b.N
		if sel != nil {
			n = len(sel)
		}
		for pos := 0; pos < n; pos++ {
			row := int32(pos)
			if sel != nil {
				row = sel[pos]
			}
			if j < len(res) && res[j] == row {
				j++
				continue
			}
			out = append(out, row)
		}
		return out, nil
	}
}

// sortSel insertion-sorts a small selection slice in place (OR results
// are nearly sorted already: each kid's block is ascending).
func sortSel(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// compileColCmp builds the tight-loop form for the common comparison
// shapes, or nil when the shape needs the interpreted fallback.
func compileColCmp(c Cmp) ColPred {
	if lc, ok := c.L.(Col); ok {
		if rc, ok := c.R.(Col); ok {
			return colColColPred(c.Op, lc.Idx, rc.Idx)
		}
		if k, ok := c.R.(Const); ok && k.Val.Typ == storage.Int4 {
			return colConstColPred(c.Op, lc.Idx, k.Val.Int)
		}
	}
	if k, ok := c.L.(Const); ok && k.Val.Typ == storage.Int4 {
		if rc, ok := c.R.(Col); ok {
			return colConstColPred(swapOp(c.Op), rc.Idx, k.Val.Int)
		}
	}
	return nil
}

// checkInt4Col validates a column reference once per batch, mirroring
// the row path's per-tuple errors.
func checkInt4Col(b *storage.ColBatch, idx int) error {
	if idx < 0 || idx >= len(b.Vecs) {
		return fmt.Errorf("expr: column %d out of range (tuple has %d)", idx, len(b.Vecs))
	}
	if b.Vecs[idx].Typ != storage.Int4 {
		return fmt.Errorf("expr: comparing %v with %v", b.Vecs[idx].Typ, storage.Int4)
	}
	return nil
}

func colConstColPred(op CmpOp, idx int, k int32) ColPred {
	return func(b *storage.ColBatch, sel []int32, out []int32) ([]int32, error) {
		if b.N == 0 && sel == nil || sel != nil && len(sel) == 0 {
			return out, nil
		}
		if err := checkInt4Col(b, idx); err != nil {
			return out, err
		}
		col := b.Vecs[idx].Ints
		// One tight loop per operator; the branch on op is hoisted out.
		switch op {
		case EQ:
			if sel == nil {
				for i, v := range col {
					if v == k {
						out = append(out, int32(i))
					}
				}
			} else {
				for _, r := range sel {
					if col[r] == k {
						out = append(out, r)
					}
				}
			}
		case NE:
			if sel == nil {
				for i, v := range col {
					if v != k {
						out = append(out, int32(i))
					}
				}
			} else {
				for _, r := range sel {
					if col[r] != k {
						out = append(out, r)
					}
				}
			}
		case LT:
			if sel == nil {
				for i, v := range col {
					if v < k {
						out = append(out, int32(i))
					}
				}
			} else {
				for _, r := range sel {
					if col[r] < k {
						out = append(out, r)
					}
				}
			}
		case LE:
			if sel == nil {
				for i, v := range col {
					if v <= k {
						out = append(out, int32(i))
					}
				}
			} else {
				for _, r := range sel {
					if col[r] <= k {
						out = append(out, r)
					}
				}
			}
		case GT:
			if sel == nil {
				for i, v := range col {
					if v > k {
						out = append(out, int32(i))
					}
				}
			} else {
				for _, r := range sel {
					if col[r] > k {
						out = append(out, r)
					}
				}
			}
		case GE:
			if sel == nil {
				for i, v := range col {
					if v >= k {
						out = append(out, int32(i))
					}
				}
			} else {
				for _, r := range sel {
					if col[r] >= k {
						out = append(out, r)
					}
				}
			}
		default:
			return out, fmt.Errorf("expr: unknown comparison %v", op)
		}
		return out, nil
	}
}

func colColColPred(op CmpOp, li, ri int) ColPred {
	return func(b *storage.ColBatch, sel []int32, out []int32) ([]int32, error) {
		if b.N == 0 && sel == nil || sel != nil && len(sel) == 0 {
			return out, nil
		}
		if li < 0 || li >= len(b.Vecs) {
			return out, fmt.Errorf("expr: column %d out of range (tuple has %d)", li, len(b.Vecs))
		}
		if ri < 0 || ri >= len(b.Vecs) {
			return out, fmt.Errorf("expr: column %d out of range (tuple has %d)", ri, len(b.Vecs))
		}
		l, r := &b.Vecs[li], &b.Vecs[ri]
		if l.Typ != r.Typ {
			return out, fmt.Errorf("expr: comparing %v with %v", l.Typ, r.Typ)
		}
		n := b.N
		if sel != nil {
			n = len(sel)
		}
		for pos := 0; pos < n; pos++ {
			row := pos
			if sel != nil {
				row = int(sel[pos])
			}
			var cmp int
			if l.Typ == storage.Int4 {
				cmp = int(l.Ints[row]) - int(r.Ints[row])
			} else {
				cmp = bytes.Compare(l.Bytes(row), r.Bytes(row))
			}
			ok, err := cmpHolds(op, cmp)
			if err != nil {
				return out, err
			}
			if ok {
				out = append(out, int32(row))
			}
		}
		return out, nil
	}
}

// interpColPred is the row-at-a-time fallback for shapes without a
// compiled form: each live row is materialized and fed to the
// interpreted evaluator. Correctness path only.
func interpColPred(e Expr) ColPred {
	return func(b *storage.ColBatch, sel []int32, out []int32) ([]int32, error) {
		n := b.N
		if sel != nil {
			n = len(sel)
		}
		vals := make([]storage.Value, 0, len(b.Vecs))
		for pos := 0; pos < n; pos++ {
			row := pos
			if sel != nil {
				row = int(sel[pos])
			}
			t := b.TupleTo(row, vals)
			vals = t.Vals
			ok, err := Qualifies(e, t)
			if err != nil {
				return out, err
			}
			if ok {
				out = append(out, int32(row))
			}
		}
		return out, nil
	}
}

// Int4KeysCols appends the int4 values of column col for every selected
// row (sel nil = all rows) to out. Batch key extraction for hash probes:
// the column is validated once here so the join's per-match loop runs
// without checks.
func Int4KeysCols(b *storage.ColBatch, col int, sel []int32, out []int32) ([]int32, error) {
	n := b.N
	if sel != nil {
		n = len(sel)
	}
	if n == 0 {
		return out, nil
	}
	if col < 0 || col >= len(b.Vecs) {
		return out, fmt.Errorf("expr: column %d out of range (tuple has %d)", col, len(b.Vecs))
	}
	ints := b.Vecs[col].Ints
	if sel == nil {
		return append(out, ints...), nil
	}
	for _, r := range sel {
		out = append(out, ints[r])
	}
	return out, nil
}
