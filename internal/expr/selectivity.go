package expr

import (
	"xprs/internal/storage"
)

// Default selectivities follow the classic System-R constants, used when
// no statistics can pin down a predicate.
const (
	defaultEqSel    = 0.005
	defaultRangeSel = 1.0 / 3.0
	defaultNeSel    = 0.995
)

// Selectivity estimates the fraction of tuples from a relation with the
// given statistics that satisfy e. The schema maps column indexes of e to
// stats columns. A nil expression has selectivity 1.
func Selectivity(e Expr, stats storage.RelStats) float64 {
	if e == nil {
		return 1
	}
	switch x := e.(type) {
	case Cmp:
		return cmpSelectivity(x, stats)
	case Logic:
		switch x.Op {
		case And:
			s := 1.0
			for _, k := range x.Kids {
				s *= Selectivity(k, stats)
			}
			return s
		case Or:
			s := 0.0
			for _, k := range x.Kids {
				sk := Selectivity(k, stats)
				s = s + sk - s*sk // independence assumption
			}
			return s
		case Not:
			if len(x.Kids) == 1 {
				return clampSel(1 - Selectivity(x.Kids[0], stats))
			}
		}
	}
	return defaultRangeSel
}

func cmpSelectivity(c Cmp, stats storage.RelStats) float64 {
	col, cst, op, ok := normalizeCmp(c)
	if !ok {
		return defaultRangeSel
	}
	if col.Idx < 0 || col.Idx >= len(stats.Cols) {
		return defaultSelFor(op)
	}
	cs := stats.Cols[col.Idx]
	if cst.Typ != storage.Int4 || cs.NDistinct == 0 || cs.Max < cs.Min {
		return defaultSelFor(op)
	}
	v := float64(cst.Int)
	lo, hi := float64(cs.Min), float64(cs.Max)
	// Integer-uniform model: the column takes hi-lo+1 equally likely
	// values, so strict and non-strict comparisons differ by one value's
	// worth of probability. The boundary cases fall out naturally,
	// including degenerate single-value columns (lo == hi).
	span := hi - lo + 1
	switch op {
	case EQ:
		return clampSel(1 / float64(cs.NDistinct))
	case NE:
		return clampSel(1 - 1/float64(cs.NDistinct))
	case LT:
		if v <= lo {
			return 0
		}
		if v > hi {
			return 1
		}
		return clampSel((v - lo) / span)
	case LE:
		if v < lo {
			return 0
		}
		if v >= hi {
			return 1
		}
		return clampSel((v - lo + 1) / span)
	case GT:
		if v >= hi {
			return 0
		}
		if v < lo {
			return 1
		}
		return clampSel((hi - v) / span)
	case GE:
		if v > hi {
			return 0
		}
		if v <= lo {
			return 1
		}
		return clampSel((hi - v + 1) / span)
	}
	return defaultRangeSel
}

// normalizeCmp rewrites "const op col" into "col op' const" so the
// estimator only handles one shape.
func normalizeCmp(c Cmp) (Col, storage.Value, CmpOp, bool) {
	if col, ok := c.L.(Col); ok {
		if cst, ok2 := c.R.(Const); ok2 {
			return col, cst.Val, c.Op, true
		}
	}
	if col, ok := c.R.(Col); ok {
		if cst, ok2 := c.L.(Const); ok2 {
			return col, cst.Val, flipOp(c.Op), true
		}
	}
	return Col{}, storage.Value{}, c.Op, false
}

func flipOp(op CmpOp) CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return op
	}
}

func defaultSelFor(op CmpOp) float64 {
	switch op {
	case EQ:
		return defaultEqSel
	case NE:
		return defaultNeSel
	default:
		return defaultRangeSel
	}
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// JoinSelectivity estimates the selectivity of an equi-join between two
// columns using 1/max(d1, d2), the textbook rule.
func JoinSelectivity(left storage.ColStats, right storage.ColStats) float64 {
	d := left.NDistinct
	if right.NDistinct > d {
		d = right.NDistinct
	}
	if d <= 0 {
		return defaultEqSel
	}
	return clampSel(1 / float64(d))
}
