package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"xprs/internal/storage"
)

func row(a int32, b string) storage.Tuple {
	return storage.NewTuple(storage.IntVal(a), storage.TextVal(b))
}

func TestColEval(t *testing.T) {
	v, err := Col{Idx: 0, Name: "a"}.Eval(row(7, "x"))
	if err != nil || v.Int != 7 {
		t.Fatalf("col eval: %v %v", v, err)
	}
	if _, err := (Col{Idx: 5}).Eval(row(1, "x")); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if (Col{Idx: 2}).String() != "$2" || (Col{Idx: 0, Name: "a"}).String() != "a" {
		t.Fatal("col strings")
	}
}

func TestCmpOperators(t *testing.T) {
	cases := []struct {
		op   CmpOp
		a, b int32
		want bool
	}{
		{EQ, 1, 1, true}, {EQ, 1, 2, false},
		{NE, 1, 2, true}, {NE, 1, 1, false},
		{LT, 1, 2, true}, {LT, 2, 2, false},
		{LE, 2, 2, true}, {LE, 3, 2, false},
		{GT, 3, 2, true}, {GT, 2, 2, false},
		{GE, 2, 2, true}, {GE, 1, 2, false},
	}
	for _, c := range cases {
		e := Cmp{Op: c.op, L: Const{storage.IntVal(c.a)}, R: Const{storage.IntVal(c.b)}}
		got, err := Qualifies(e, storage.Tuple{})
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%d %s %d = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestCmpTypeMismatch(t *testing.T) {
	e := Cmp{Op: EQ, L: Const{storage.IntVal(1)}, R: Const{storage.TextVal("x")}}
	if _, err := e.Eval(storage.Tuple{}); err == nil {
		t.Fatal("cross-type comparison accepted")
	}
	bad := Cmp{Op: CmpOp(99), L: Const{storage.IntVal(1)}, R: Const{storage.IntVal(1)}}
	if _, err := bad.Eval(storage.Tuple{}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestTextComparison(t *testing.T) {
	e := Cmp{Op: LT, L: Col{Idx: 1}, R: Const{storage.TextVal("m")}}
	ok, err := Qualifies(e, row(0, "apple"))
	if err != nil || !ok {
		t.Fatalf("apple < m: %v %v", ok, err)
	}
	ok, _ = Qualifies(e, row(0, "zebra"))
	if ok {
		t.Fatal("zebra < m")
	}
}

func TestLogic(t *testing.T) {
	lt := Cmp{Op: LT, L: Col{Idx: 0}, R: Const{storage.IntVal(10)}}
	gt := Cmp{Op: GT, L: Col{Idx: 0}, R: Const{storage.IntVal(5)}}
	and := Logic{Op: And, Kids: []Expr{lt, gt}}
	or := Logic{Op: Or, Kids: []Expr{lt, gt}}
	not := Logic{Op: Not, Kids: []Expr{lt}}

	if ok, _ := Qualifies(and, row(7, "")); !ok {
		t.Fatal("7 in (5,10) AND")
	}
	if ok, _ := Qualifies(and, row(3, "")); ok {
		t.Fatal("3 in (5,10) AND")
	}
	if ok, _ := Qualifies(or, row(3, "")); !ok {
		t.Fatal("3 OR")
	}
	if ok, _ := Qualifies(not, row(3, "")); ok {
		t.Fatal("NOT(3<10)")
	}
	if ok, _ := Qualifies(not, row(30, "")); !ok {
		t.Fatal("NOT(30<10)")
	}
	// Empty AND is true, empty OR is false.
	if ok, _ := Qualifies(Logic{Op: And}, row(0, "")); !ok {
		t.Fatal("empty AND")
	}
	if ok, _ := Qualifies(Logic{Op: Or}, row(0, "")); ok {
		t.Fatal("empty OR")
	}
	if _, err := (Logic{Op: Not, Kids: []Expr{lt, gt}}).Eval(row(0, "")); err == nil {
		t.Fatal("binary NOT accepted")
	}
	if _, err := (Logic{Op: LogicOp(9)}).Eval(row(0, "")); err == nil {
		t.Fatal("unknown connective accepted")
	}
}

func TestLogicErrorPropagation(t *testing.T) {
	bad := Col{Idx: 99}
	for _, op := range []LogicOp{And, Or, Not} {
		if _, err := (Logic{Op: op, Kids: []Expr{bad}}).Eval(row(0, "")); err == nil {
			t.Fatalf("op %d swallowed child error", op)
		}
	}
	if _, err := (Cmp{Op: EQ, L: bad, R: Const{storage.IntVal(0)}}).Eval(row(0, "")); err == nil {
		t.Fatal("cmp swallowed L error")
	}
	if _, err := (Cmp{Op: EQ, L: Const{storage.IntVal(0)}, R: bad}).Eval(row(0, "")); err == nil {
		t.Fatal("cmp swallowed R error")
	}
}

func TestQualifiesNil(t *testing.T) {
	ok, err := Qualifies(nil, row(0, ""))
	if err != nil || !ok {
		t.Fatal("nil predicate must pass")
	}
}

func TestStrings(t *testing.T) {
	e := ColRange(0, "a", 5, 10)
	s := e.String()
	if !strings.Contains(s, "a >= 5") || !strings.Contains(s, "AND") {
		t.Fatalf("render = %q", s)
	}
	n := Logic{Op: Not, Kids: []Expr{ColEqConst(0, "a", 3)}}
	if !strings.Contains(n.String(), "NOT") {
		t.Fatalf("render = %q", n.String())
	}
	o := Logic{Op: Or, Kids: []Expr{ColEqConst(0, "a", 1), ColEqConst(0, "a", 2)}}
	if !strings.Contains(o.String(), "OR") {
		t.Fatalf("render = %q", o.String())
	}
	if (Logic{Op: Not}).String() != "NOT(?)" {
		t.Fatal("malformed NOT render")
	}
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
		if op.String() == "" {
			t.Fatal("op string empty")
		}
	}
	if CmpOp(42).String() == "" {
		t.Fatal("unknown op string empty")
	}
}

func uniformStats(n int64, lo, hi int32) storage.RelStats {
	return storage.RelStats{
		NTuples: n,
		Cols: []storage.ColStats{
			{Min: lo, Max: hi, NDistinct: int64(hi-lo) + 1},
			{AvgWidth: 20},
		},
	}
}

func TestSelectivityRange(t *testing.T) {
	st := uniformStats(1000, 0, 999)
	cases := []struct {
		e    Expr
		want float64
		tol  float64
	}{
		{ColEqConst(0, "a", 5), 0.001, 1e-9},
		{Cmp{Op: LT, L: Col{Idx: 0}, R: Const{storage.IntVal(500)}}, 0.5005, 0.01},
		{Cmp{Op: GE, L: Col{Idx: 0}, R: Const{storage.IntVal(900)}}, 0.1, 0.01},
		{Cmp{Op: LT, L: Col{Idx: 0}, R: Const{storage.IntVal(-5)}}, 0, 0},
		{Cmp{Op: LT, L: Col{Idx: 0}, R: Const{storage.IntVal(2000)}}, 1, 0},
		{Cmp{Op: GT, L: Col{Idx: 0}, R: Const{storage.IntVal(2000)}}, 0, 0},
		{Cmp{Op: GT, L: Col{Idx: 0}, R: Const{storage.IntVal(-5)}}, 1, 0},
		{Cmp{Op: NE, L: Col{Idx: 0}, R: Const{storage.IntVal(1)}}, 0.999, 1e-9},
		{ColRange(0, "a", 0, 99), 0.1, 0.02},
		{nil, 1, 0},
	}
	for i, c := range cases {
		got := Selectivity(c.e, st)
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("case %d: selectivity = %f, want %f±%f", i, got, c.want, c.tol)
		}
	}
}

func TestSelectivityFlippedComparison(t *testing.T) {
	st := uniformStats(1000, 0, 999)
	// "500 > a" is "a < 500"
	e := Cmp{Op: GT, L: Const{storage.IntVal(500)}, R: Col{Idx: 0}}
	got := Selectivity(e, st)
	if got < 0.45 || got > 0.55 {
		t.Fatalf("flipped selectivity = %f", got)
	}
}

func TestSelectivityDefaults(t *testing.T) {
	st := uniformStats(100, 0, 9)
	// Column without int stats (text) falls back to defaults.
	if got := Selectivity(Cmp{Op: EQ, L: Col{Idx: 1}, R: Const{storage.TextVal("x")}}, st); got != defaultEqSel {
		t.Fatalf("text eq = %f", got)
	}
	// Column index out of stats range.
	if got := Selectivity(ColEqConst(9, "z", 1), st); got != defaultEqSel {
		t.Fatalf("missing col = %f", got)
	}
	// Non col-const shape.
	if got := Selectivity(Cmp{Op: EQ, L: Col{Idx: 0}, R: Col{Idx: 0}}, st); got != defaultRangeSel {
		t.Fatalf("col-col = %f", got)
	}
	// Zero-width column with inequality.
	st2 := uniformStats(100, 5, 5)
	if got := Selectivity(Cmp{Op: LT, L: Col{Idx: 0}, R: Const{storage.IntVal(5)}}, st2); got != 0 {
		t.Fatalf("v < min on zero-width = %f", got)
	}
}

func TestSelectivityNotAndOr(t *testing.T) {
	st := uniformStats(1000, 0, 999)
	inner := Cmp{Op: LT, L: Col{Idx: 0}, R: Const{storage.IntVal(250)}}
	if got := Selectivity(Logic{Op: Not, Kids: []Expr{inner}}, st); got < 0.70 || got > 0.80 {
		t.Fatalf("NOT = %f", got)
	}
	or := Logic{Op: Or, Kids: []Expr{
		Cmp{Op: LT, L: Col{Idx: 0}, R: Const{storage.IntVal(500)}},
		Cmp{Op: GE, L: Col{Idx: 0}, R: Const{storage.IntVal(500)}},
	}}
	// Independence assumption gives 0.75, not 1; just require sane range.
	if got := Selectivity(or, st); got <= 0.5 || got > 1 {
		t.Fatalf("OR = %f", got)
	}
	if got := Selectivity(Logic{Op: Not, Kids: []Expr{inner, inner}}, st); got != defaultRangeSel {
		t.Fatalf("malformed NOT = %f", got)
	}
}

func TestJoinSelectivity(t *testing.T) {
	l := storage.ColStats{NDistinct: 100}
	r := storage.ColStats{NDistinct: 1000}
	if got := JoinSelectivity(l, r); got != 0.001 {
		t.Fatalf("join sel = %f", got)
	}
	if got := JoinSelectivity(storage.ColStats{}, storage.ColStats{}); got != defaultEqSel {
		t.Fatalf("join sel no stats = %f", got)
	}
}

// Property: selectivity is always in [0,1] for arbitrary range predicates.
func TestPropertySelectivityBounded(t *testing.T) {
	st := uniformStats(1000, -500, 499)
	f := func(v int32, opRaw uint8) bool {
		op := CmpOp(opRaw % 6)
		s := Selectivity(Cmp{Op: op, L: Col{Idx: 0}, R: Const{storage.IntVal(v % 2000)}}, st)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Qualifies(ColRange(lo,hi)) agrees with direct evaluation.
func TestPropertyRangeAgreement(t *testing.T) {
	f := func(a, lo, hi int32) bool {
		e := ColRange(0, "a", lo, hi)
		got, err := Qualifies(e, row(a, ""))
		if err != nil {
			return false
		}
		return got == (a >= lo && a <= hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
