package btree

import (
	"fmt"

	"xprs/internal/storage"
)

// Index is a named B-tree over one int4 column of a relation, the
// structure behind XPRS index scans. The paper's experiments use an
// unclustered index on r.a; clustered indexes behave like sequential
// scans cost-wise (§3) and are supported for completeness.
type Index struct {
	Name      string
	Rel       *storage.Relation
	Col       int // column position in Rel's schema
	Clustered bool
	Tree      *Tree
}

// BuildIndex scans the relation and indexes the given int4 column.
// Building reads pages directly (no IO charge): XPRS builds indexes at
// load time, outside the measured experiments.
func BuildIndex(name string, rel *storage.Relation, col int, clustered bool) (*Index, error) {
	if col < 0 || col >= rel.Schema.Len() {
		return nil, fmt.Errorf("btree: column %d out of range for %q", col, rel.Name)
	}
	if rel.Schema.Cols[col].Typ != storage.Int4 {
		return nil, fmt.Errorf("btree: column %q is %v; only int4 is indexable",
			rel.Schema.Cols[col].Name, rel.Schema.Cols[col].Typ)
	}
	idx := &Index{Name: name, Rel: rel, Col: col, Clustered: clustered, Tree: New()}
	for p := int64(0); p < rel.NPages(); p++ {
		tuples, err := rel.PageTuples(p)
		if err != nil {
			return nil, fmt.Errorf("btree: building %q: %w", name, err)
		}
		for s, t := range tuples {
			idx.Tree.Insert(t.Vals[col].Int, storage.TID{Page: p, Slot: int32(s)})
		}
	}
	return idx, nil
}

// KeyColumn returns the indexed column's name.
func (ix *Index) KeyColumn() string { return ix.Rel.Schema.Cols[ix.Col].Name }
