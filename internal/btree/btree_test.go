package btree

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"xprs/internal/storage"
)

func tid(i int) storage.TID { return storage.TID{Page: int64(i / 10), Slot: int32(i % 10)} }

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("empty len")
	}
	if _, _, ok := tr.Bounds(); ok {
		t.Fatal("empty bounds ok")
	}
	if tr.CountRange(0, 100) != 0 {
		t.Fatal("empty count")
	}
	called := false
	tr.Visit(0, 100, func(int32, storage.TID) bool { called = true; return true })
	if called {
		t.Fatal("visit on empty called fn")
	}
	if tr.Depth() != 1 {
		t.Fatal("empty depth")
	}
}

func TestInsertAndVisitOrdered(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	const n = 5000
	keys := make([]int32, n)
	for i := range keys {
		keys[i] = int32(rng.Intn(2000) - 1000)
		tr.Insert(keys[i], tid(i))
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	var got []int32
	tr.Visit(-1000, 1000, func(k int32, _ storage.TID) bool {
		got = append(got, k)
		return true
	})
	slices.Sort(keys)
	if len(got) != n {
		t.Fatalf("visited %d of %d", len(got), n)
	}
	for i := range got {
		if got[i] != keys[i] {
			t.Fatalf("key %d = %d, want %d", i, got[i], keys[i])
		}
	}
	if tr.Depth() < 2 {
		t.Fatalf("depth = %d for %d keys", tr.Depth(), n)
	}
}

func TestVisitSubrangeAndEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(int32(i), tid(i))
	}
	var got []int32
	tr.Visit(10, 19, func(k int32, _ storage.TID) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("subrange = %v", got)
	}
	count := 0
	stopped := tr.Visit(0, 99, func(k int32, _ storage.TID) bool {
		count++
		return count < 5
	})
	if stopped || count != 5 {
		t.Fatalf("early stop: stopped=%v count=%d", stopped, count)
	}
	if !tr.Visit(50, 40, func(int32, storage.TID) bool { return true }) {
		t.Fatal("inverted range should be a complete no-op visit")
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i++ {
		tr.Insert(7, tid(i))
	}
	tr.Insert(3, tid(999))
	tr.Insert(11, tid(998))
	if got := tr.CountRange(7, 7); got != 500 {
		t.Fatalf("count dup = %d", got)
	}
	seen := 0
	tr.Visit(7, 7, func(k int32, _ storage.TID) bool {
		if k != 7 {
			t.Fatalf("visited key %d", k)
		}
		seen++
		return true
	})
	if seen != 500 {
		t.Fatalf("visited %d dups", seen)
	}
}

func TestCountRange(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(int32(i*2), tid(i)) // even keys 0..1998
	}
	cases := []struct {
		lo, hi int32
		want   int64
	}{
		{0, 1998, 1000},
		{1, 1998, 999},
		{0, 0, 1},
		{1, 1, 0},
		{500, 999, 250},
		{-100, -1, 0},
		{2000, 3000, 0},
		{10, 5, 0},
	}
	for _, c := range cases {
		if got := tr.CountRange(c.lo, c.hi); got != c.want {
			t.Errorf("CountRange(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestBounds(t *testing.T) {
	tr := New()
	for _, k := range []int32{5, -3, 99, 0, 42} {
		tr.Insert(k, storage.TID{})
	}
	lo, hi, ok := tr.Bounds()
	if !ok || lo != -3 || hi != 99 {
		t.Fatalf("bounds = %d,%d,%v", lo, hi, ok)
	}
}

func TestSplitBalancedUniform(t *testing.T) {
	tr := New()
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Insert(int32(i), tid(i))
	}
	for _, k := range []int{2, 3, 4, 7, 8} {
		ivs := tr.SplitBalanced(0, n-1, k)
		if len(ivs) != k {
			t.Fatalf("k=%d: got %d intervals: %v", k, len(ivs), ivs)
		}
		// Coverage: contiguous, disjoint, spanning [0, n-1].
		if ivs[0].Lo != 0 || ivs[len(ivs)-1].Hi != n-1 {
			t.Fatalf("k=%d: span %v", k, ivs)
		}
		total := int64(0)
		for i, iv := range ivs {
			if i > 0 && iv.Lo != ivs[i-1].Hi+1 {
				t.Fatalf("k=%d: gap between %v and %v", k, ivs[i-1], iv)
			}
			c := tr.CountRange(iv.Lo, iv.Hi)
			total += c
			// Balanced within 20% of ideal for uniform data.
			ideal := float64(n) / float64(k)
			if float64(c) < ideal*0.8 || float64(c) > ideal*1.2 {
				t.Fatalf("k=%d: interval %v holds %d keys, ideal %f", k, iv, c, ideal)
			}
		}
		if total != n {
			t.Fatalf("k=%d: intervals cover %d keys", k, total)
		}
	}
}

func TestSplitBalancedSkewed(t *testing.T) {
	// 90% of keys at the low end: splits must still balance counts.
	tr := New()
	for i := 0; i < 9000; i++ {
		tr.Insert(int32(i%10), tid(i))
	}
	for i := 0; i < 1000; i++ {
		tr.Insert(int32(1000+i), tid(i))
	}
	ivs := tr.SplitBalanced(0, 1999, 4)
	var counts []int64
	for _, iv := range ivs {
		counts = append(counts, tr.CountRange(iv.Lo, iv.Hi))
	}
	// With duplicates a perfect split may be impossible, but no interval
	// may hold more than half the data when 4 were requested.
	for i, c := range counts {
		if c > 5500 {
			t.Fatalf("interval %d (%v) holds %d of 10000 keys: %v", i, ivs[i], c, counts)
		}
	}
}

func TestSplitBalancedEdgeCases(t *testing.T) {
	tr := New()
	tr.Insert(5, storage.TID{})
	if ivs := tr.SplitBalanced(0, 10, 1); len(ivs) != 1 {
		t.Fatalf("k=1: %v", ivs)
	}
	if ivs := tr.SplitBalanced(10, 0, 4); len(ivs) != 1 {
		t.Fatalf("inverted: %v", ivs)
	}
	if ivs := tr.SplitBalanced(100, 200, 4); len(ivs) != 1 {
		t.Fatalf("empty range: %v", ivs)
	}
	// One key cannot be split into 4 non-empty parts.
	ivs := tr.SplitBalanced(0, 10, 4)
	total := int64(0)
	for _, iv := range ivs {
		total += tr.CountRange(iv.Lo, iv.Hi)
	}
	if total != 1 {
		t.Fatalf("single-key split lost keys: %v", ivs)
	}
}

func TestIntervalHelpers(t *testing.T) {
	if (Interval{1, 0}).Empty() != true || (Interval{0, 0}).Empty() != false {
		t.Fatal("Empty()")
	}
	if (Interval{1, 2}).String() != "[1,2]" {
		t.Fatal("String()")
	}
}

// Property: CountRange always equals the number of keys Visit yields.
func TestPropertyCountMatchesVisit(t *testing.T) {
	f := func(keys []int32, lo, hi int32) bool {
		if len(keys) > 500 {
			keys = keys[:500]
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := New()
		for i, k := range keys {
			tr.Insert(k, tid(i))
		}
		var visited int64
		tr.Visit(lo, hi, func(k int32, _ storage.TID) bool {
			if k < lo || k > hi {
				t.Fatalf("visited %d outside [%d,%d]", k, lo, hi)
			}
			visited++
			return true
		})
		return visited == tr.CountRange(lo, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: SplitBalanced partitions cover the range exactly with no
// overlap, for arbitrary key sets.
func TestPropertySplitPartition(t *testing.T) {
	f := func(keys []int32, kRaw uint8) bool {
		if len(keys) > 400 {
			keys = keys[:400]
		}
		k := int(kRaw%8) + 1
		tr := New()
		for i, key := range keys {
			tr.Insert(key%1000, tid(i))
		}
		lo, hi := int32(-1000), int32(1000)
		ivs := tr.SplitBalanced(lo, hi, k)
		if ivs[0].Lo != lo || ivs[len(ivs)-1].Hi != hi {
			return false
		}
		var total int64
		for i, iv := range ivs {
			if i > 0 && iv.Lo != ivs[i-1].Hi+1 {
				return false
			}
			total += tr.CountRange(iv.Lo, iv.Hi)
		}
		return total == tr.CountRange(lo, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: insertion order of duplicate keys is preserved (stability),
// which the executor relies on for deterministic results.
func TestPropertyDuplicateStability(t *testing.T) {
	tr := New()
	const n = 300
	for i := 0; i < n; i++ {
		tr.Insert(1, storage.TID{Page: int64(i)})
	}
	prev := int64(-1)
	tr.Visit(1, 1, func(_ int32, td storage.TID) bool {
		if td.Page <= prev {
			t.Fatalf("duplicate order violated: %d after %d", td.Page, prev)
		}
		prev = td.Page
		return true
	})
}
