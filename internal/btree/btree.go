// Package btree implements the in-memory B-tree used as XPRS's index
// structure. The paper's experiments create an unclustered index on the
// int4 attribute r.a to make index scans possible (§3); index scans use
// range partitioning for intra-operation parallelism, and the master
// backend repartitions key intervals during dynamic parallelism
// adjustment (§2.4, Figure 6). That repartitioning needs the index to
// answer "how many keys fall in [lo, hi]" and "split [lo, hi] into k
// equal-weight intervals", which this package provides.
//
// Keys are int32 (the only indexed type in the experiments); duplicates
// are allowed. Values are storage TIDs.
package btree

import (
	"fmt"
	"sort"

	"xprs/internal/storage"
)

// degree is the minimum number of children of an internal node (except
// the root). Nodes hold between degree-1 and 2*degree-1 keys.
const degree = 32

// item is one key/TID pair.
type item struct {
	key int32
	tid storage.TID
}

type node struct {
	items    []item
	children []*node // nil for leaves
	// subtreeLen caches the number of items at or below this node, which
	// makes count and split-by-weight queries O(log n).
	subtreeLen int64
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is a B-tree multimap from int32 keys to TIDs. It is not safe for
// concurrent mutation; the engine builds indexes before running queries
// and only reads them afterwards, matching XPRS's read-only experiments.
type Tree struct {
	root *node
	size int64
}

// New creates an empty tree.
func New() *Tree { return &Tree{root: &node{}} }

// Len returns the number of stored items.
func (t *Tree) Len() int64 { return t.size }

// Insert adds a key/TID pair. Duplicate keys are kept; among equal keys,
// insertion order is preserved left to right.
func (t *Tree) Insert(key int32, tid storage.TID) {
	r := t.root
	if len(r.items) == 2*degree-1 {
		newRoot := &node{children: []*node{r}, subtreeLen: r.subtreeLen}
		newRoot.splitChild(0)
		t.root = newRoot
	}
	t.root.insertNonFull(item{key: key, tid: tid})
	t.size++
}

// splitChild splits the full child at index i, lifting its median into n.
func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := degree - 1
	median := child.items[mid]

	right := &node{}
	right.items = append(right.items, child.items[mid+1:]...)
	child.items = child.items[:mid]
	if !child.leaf() {
		right.children = append(right.children, child.children[degree:]...)
		child.children = child.children[:degree]
	}
	child.recount()
	right.recount()

	n.items = append(n.items, item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *node) recount() {
	total := int64(len(n.items))
	for _, c := range n.children {
		total += c.subtreeLen
	}
	n.subtreeLen = total
}

// insertPos finds the position after all items with key <= k would sit...
// For duplicate stability we insert after existing equal keys.
func insertPos(items []item, k int32) int {
	return sort.Search(len(items), func(i int) bool { return items[i].key > k })
}

func (n *node) insertNonFull(it item) {
	n.subtreeLen++
	if n.leaf() {
		i := insertPos(n.items, it.key)
		n.items = append(n.items, item{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = it
		return
	}
	i := insertPos(n.items, it.key)
	if len(n.children[i].items) == 2*degree-1 {
		n.splitChild(i)
		// The freshly lifted median sits at position i. Descend right on
		// equal keys too: duplicates must land after existing ones to
		// keep insertion order stable under Visit.
		if it.key >= n.items[i].key {
			i++
		}
	}
	n.children[i].insertNonFull(it)
}

// Visit calls fn for every item with lo <= key <= hi, in ascending key
// order, until fn returns false. It returns false if the scan stopped
// early.
func (t *Tree) Visit(lo, hi int32, fn func(key int32, tid storage.TID) bool) bool {
	if lo > hi {
		return true
	}
	return t.root.visit(lo, hi, fn)
}

func (n *node) visit(lo, hi int32, fn func(int32, storage.TID) bool) bool {
	// first item with key >= lo
	start := sort.Search(len(n.items), func(i int) bool { return n.items[i].key >= lo })
	if n.leaf() {
		for i := start; i < len(n.items) && n.items[i].key <= hi; i++ {
			if !fn(n.items[i].key, n.items[i].tid) {
				return false
			}
		}
		return true
	}
	for i := start; i <= len(n.items); i++ {
		if !n.children[i].visit(lo, hi, fn) {
			return false
		}
		if i < len(n.items) {
			if n.items[i].key > hi {
				return true
			}
			if n.items[i].key >= lo {
				if !fn(n.items[i].key, n.items[i].tid) {
					return false
				}
			}
		}
	}
	return true
}

// CountRange returns the number of items with lo <= key <= hi in
// O(log n) time using subtree counts.
func (t *Tree) CountRange(lo, hi int32) int64 {
	if lo > hi {
		return 0
	}
	return t.root.countLE(hi) - t.root.countLT(lo)
}

// countLE counts items with key <= k.
func (n *node) countLE(k int32) int64 {
	if n == nil {
		return 0
	}
	// position of first item with key > k
	i := sort.Search(len(n.items), func(j int) bool { return n.items[j].key > k })
	total := int64(i)
	if n.leaf() {
		return total
	}
	for j := 0; j < i; j++ {
		total += n.children[j].subtreeLen
	}
	total += n.children[i].countLE(k)
	return total
}

// countLT counts items with key < k.
func (n *node) countLT(k int32) int64 {
	if n == nil {
		return 0
	}
	i := sort.Search(len(n.items), func(j int) bool { return n.items[j].key >= k })
	total := int64(i)
	if n.leaf() {
		return total
	}
	for j := 0; j < i; j++ {
		total += n.children[j].subtreeLen
	}
	total += n.children[i].countLT(k)
	return total
}

// Bounds returns the smallest and largest keys. ok is false when empty.
func (t *Tree) Bounds() (lo, hi int32, ok bool) {
	if t.size == 0 {
		return 0, 0, false
	}
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	lo = n.items[0].key
	n = t.root
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	hi = n.items[len(n.items)-1].key
	return lo, hi, true
}

// Interval is a closed key range [Lo, Hi].
type Interval struct {
	Lo, Hi int32
}

// String implements fmt.Stringer.
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// Empty reports whether the interval contains no keys.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// SplitBalanced divides [lo, hi] into up to k sub-intervals with roughly
// equal numbers of indexed keys, using the tree's distribution. This is
// how the master backend builds range partitions for parallel index
// scans (§2.4: "we try to find a balanced range partition with data
// distribution information ... in the root node of an index").
// Sub-intervals are contiguous, disjoint, and cover [lo, hi] exactly.
// Fewer than k intervals are returned when the range holds fewer than k
// distinct split points.
func (t *Tree) SplitBalanced(lo, hi int32, k int) []Interval {
	if k <= 1 || lo > hi {
		return []Interval{{Lo: lo, Hi: hi}}
	}
	total := t.CountRange(lo, hi)
	if total == 0 {
		return []Interval{{Lo: lo, Hi: hi}}
	}
	out := make([]Interval, 0, k)
	curLo := lo
	served := t.root.countLT(lo) // items with key < current boundary
	for part := 1; part < k; part++ {
		// Find the smallest key b such that count(key <= b) - countLT(lo)
		// >= part * total / k; the part ends at b.
		target := served + (total*int64(part))/int64(k)
		b := t.searchCountLE(target)
		if b < curLo {
			b = curLo
		}
		if b >= hi {
			break
		}
		out = append(out, Interval{Lo: curLo, Hi: b})
		curLo = b + 1
	}
	out = append(out, Interval{Lo: curLo, Hi: hi})
	return out
}

// searchCountLE returns the smallest key b with countLE(b) >= target.
// It binary-searches the key space using the O(log n) counting query.
func (t *Tree) searchCountLE(target int64) int32 {
	lo, hi, ok := t.Bounds()
	if !ok {
		return 0
	}
	for lo < hi {
		// mid = lo + (hi-lo)/2: overflow-safe, and because hi-lo >= 0 the
		// truncating division floors, so mid < hi and both branches make
		// progress. The naive (lo+hi)/2 truncates toward zero, which for
		// negative key ranges can yield mid == hi and loop forever.
		mid := lo + int32((int64(hi)-int64(lo))/2)
		if t.root.countLE(mid) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Depth returns the height of the tree (1 for a lone root). Exposed for
// tests and for the cost model's index-descent charge.
func (t *Tree) Depth() int {
	d := 1
	for n := t.root; !n.leaf(); n = n.children[0] {
		d++
	}
	return d
}
