package btree

import (
	"math/rand"
	"testing"

	"xprs/internal/storage"
)

// TestSplitBalancedNegativeKeys is a regression test for an infinite
// loop in searchCountLE: with negative key ranges, a truncating midpoint
// computation could stall the binary search (mid == hi forever). Found
// by TestPropertySplitPartition under a randomized quick seed.
func TestSplitBalancedNegativeKeys(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50)
		tr := New()
		for i := 0; i < n; i++ {
			tr.Insert(int32(rng.Intn(2000)-1000), storage.TID{Page: int64(i)})
		}
		k := rng.Intn(8) + 1
		ivs := tr.SplitBalanced(-1000, 1000, k)
		// Coverage invariants (same as the property test).
		if ivs[0].Lo != -1000 || ivs[len(ivs)-1].Hi != 1000 {
			t.Fatalf("seed %d: span %v", seed, ivs)
		}
		var total int64
		for i, iv := range ivs {
			if i > 0 && iv.Lo != ivs[i-1].Hi+1 {
				t.Fatalf("seed %d: gap at %d: %v", seed, i, ivs)
			}
			total += tr.CountRange(iv.Lo, iv.Hi)
		}
		if total != tr.CountRange(-1000, 1000) {
			t.Fatalf("seed %d: covered %d of %d keys", seed, total, tr.Len())
		}
	}
}
