package lint

import (
	"slices"
	"strings"
)

// AllowAudit flags stale `//lint:allow` directives: escapes that no
// longer suppress any finding from the analyzer they name. Suppressions
// are the suite's debt ledger — each one documents a deliberate
// violation — so a directive that outlived its violation is noise that
// hides real rot (the guarded code was fixed, moved, or deleted, and
// the escape now silently blesses whatever lands on those lines next).
//
// AllowAudit is a pseudo-analyzer: it cannot run as an ordinary Pass
// because it needs to observe which directives the *other* analyzers
// consumed. RunAnalyzers runs it last over each package. A directive is
// audited only when the analyzer it names was part of the run (a
// partial run proves nothing about other analyzers' directives), and
// wildcard `*` escapes are never audited. A deliberately retained
// directive can itself be excused with `//lint:allow allowaudit`.
var AllowAudit = &Analyzer{
	Name: "allowaudit",
	Doc: "flag stale //lint:allow directives that no longer suppress any finding " +
		"from the analyzer they name",
	// Run is never invoked: RunAnalyzers special-cases this analyzer and
	// calls auditAllows after every other pass over the package.
	Run: func(*Pass) error { return nil },
}

// auditAllows reports every allow directive naming an analyzer in ran
// whose ranges suppressed nothing. Ranges are grouped by directive
// position and name first: a doc-comment directive contributes both a
// declaration-wide range and a line range, and using either keeps the
// directive live.
func auditAllows(pkg *Package, ran map[string]bool, diags *[]Diagnostic) {
	type key struct {
		file string
		line int
		col  int
		name string
	}
	used := make(map[key]bool)
	ranges := make(map[key]*allowRange)
	for _, file := range pkg.allows() {
		for _, r := range file {
			k := key{r.pos.Filename, r.pos.Line, r.pos.Column, r.name}
			used[k] = used[k] || r.used
			ranges[k] = r
		}
	}
	keys := make([]key, 0, len(ranges))
	for k := range ranges {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b key) int {
		if c := strings.Compare(a.file, b.file); c != 0 {
			return c
		}
		if a.line != b.line {
			return a.line - b.line
		}
		if a.col != b.col {
			return a.col - b.col
		}
		return strings.Compare(a.name, b.name)
	})
	for _, k := range keys {
		r := ranges[k]
		if used[k] || k.name == "*" || k.name == AllowAudit.Name || !ran[k.name] {
			continue
		}
		if excused(pkg, r) {
			continue
		}
		*diags = append(*diags, Diagnostic{
			Pos:      r.pos,
			Analyzer: AllowAudit.Name,
			Message: "stale //lint:allow " + k.name + ": no " + k.name +
				" finding is suppressed by this directive — the violation it excused " +
				"is gone, so delete the directive (or re-justify it with //lint:allow allowaudit)",
		})
	}
}

// excused reports whether an `allowaudit` (or `*`) directive covers the
// stale directive's own line.
func excused(pkg *Package, r *allowRange) bool {
	for _, other := range pkg.allows()[r.pos.Filename] {
		if (other.name == AllowAudit.Name || other.name == "*") &&
			r.pos.Line >= other.from && r.pos.Line <= other.to {
			other.used = true
			return true
		}
	}
	return false
}
