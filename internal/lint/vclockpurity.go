package lint

import (
	"go/ast"
	"go/types"
)

// VclockPurity forbids wall-clock time and global math/rand state in
// the vclock-governed packages. The paper's balance-point arithmetic
// (§3.1) is reproduced on a deterministic virtual clock; results must
// be byte-identical across GOMAXPROCS, batch size and slave count, so
// the only admissible time source is vclock.Clock and the only
// admissible randomness is an explicitly seeded *rand.Rand. The *Real
// wall-clock adapter inside internal/vclock is the one structural
// exception; host-timing benchmark code escapes with
// `//lint:allow vclockpurity`.
var VclockPurity = &Analyzer{
	Name: "vclockpurity",
	Doc: "forbid wall-clock (time.Now/Since/Sleep/Tick/...) and global math/rand " +
		"in vclock-governed packages; determinism requires vclock.Clock and seeded *rand.Rand",
	Run: runVclockPurity,
}

// wallClockFuncs are the package-level functions of "time" that read or
// wait on the host clock. Types and pure conversions (time.Duration,
// time.ParseDuration) are fine.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// seededRandConstructors are the package-level math/rand (and v2)
// functions that do NOT touch the global generator: they build or wrap
// explicitly seeded sources, which is exactly what determinism wants.
var seededRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runVclockPurity(pass *Pass) error {
	if !governedPackage(pass.Pkg.Path()) {
		return nil
	}
	inVclock := pathHasSuffix(pass.Pkg.Path(), "internal/vclock")
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			// The explicit wall-clock adapter: methods on Real and its
			// constructor are the sanctioned bridge to host time.
			if fd, ok := decl.(*ast.FuncDecl); ok && inVclock && isRealAdapter(pass, fd) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() != nil {
					return true // methods (e.g. (*rand.Rand).Intn) are fine
				}
				switch funcPkgPath(fn) {
				case "time":
					if wallClockFuncs[fn.Name()] {
						pass.Reportf(id.Pos(),
							"time.%s reads the wall clock inside vclock-governed package %s: "+
								"virtual-clock determinism requires all time to flow through vclock.Clock "+
								"(DESIGN.md §11); use the engine's clock, or //lint:allow vclockpurity for host-timing code",
							fn.Name(), pass.Pkg.Path())
					}
				case "math/rand", "math/rand/v2":
					if !seededRandConstructors[fn.Name()] {
						pass.Reportf(id.Pos(),
							"%s.%s uses the global random generator inside vclock-governed package %s: "+
								"results must be byte-identical across runs (DESIGN.md §11); "+
								"plumb a seeded *rand.Rand through instead",
							funcPkgPath(fn), fn.Name(), pass.Pkg.Path())
					}
				}
				return true
			})
		}
	}
	return nil
}

// isRealAdapter reports whether fd is part of internal/vclock's Real
// wall-clock adapter: a method with receiver base type Real, or the
// NewReal constructor.
func isRealAdapter(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name == "NewReal" && fd.Recv == nil {
		return true
	}
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return ok && recvBaseName(fn) == "Real"
}
