// Package lint is xprsvet's analyzer suite: four repo-specific static
// checks that mechanically enforce the determinism and virtual-clock
// invariants the XPRS reproduction's simulation methodology depends on
// (DESIGN.md §11). The framework mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is built purely on the standard
// library — go/ast, go/types and `go list -export` — so the module
// stays dependency-free.
//
// Suppression: a finding is dropped when the offending line, the line
// above it, or the doc comment of the enclosing function declaration
// carries `//lint:allow <analyzer>`. The escape is for code that is
// deliberately host-timed (benchmark calibration such as joinbench.go)
// — never for engine code on the virtual clock.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// Analyzer is one static check. Run inspects a single package and
// reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name>` suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// Pass carries one analyzed package to an Analyzer.Run and collects its
// diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// allow maps filename -> line ranges suppressed per analyzer name,
	// cached on the Package so the allowaudit pass can see which
	// directives any analyzer actually used.
	allow map[string][]*allowRange

	pkg   *Package
	diags *[]Diagnostic
}

// CallGraph returns the package's shared call graph (built lazily once
// per package and reused by every interprocedural analyzer).
func (p *Pass) CallGraph() *CallGraph {
	return p.pkg.callGraph()
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// allowRange marks lines [from, to] of a file as suppressed for one
// analyzer (or every analyzer when name is "*"). pos is the directive
// comment itself; used records whether any finding was suppressed by
// this range, which the allowaudit pass inspects to flag stale
// directives.
type allowRange struct {
	name     string
	from, to int
	pos      token.Position
	used     bool
}

// AllowDirective is the comment prefix that suppresses a finding.
const AllowDirective = "//lint:allow"

// Reportf records a finding at pos unless an allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	for _, r := range p.allow[position.Filename] {
		if (r.name == p.Analyzer.Name || r.name == "*") && position.Line >= r.from && position.Line <= r.to {
			r.used = true
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// newPass builds a Pass for one analyzer over one loaded package,
// sharing the package's cached allow-directive line ranges.
func newPass(a *Analyzer, pkg *Package, sink *[]Diagnostic) *Pass {
	p := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		allow:     pkg.allows(),
		pkg:       pkg,
		diags:     sink,
	}
	return p
}

// allows returns the package's allow-directive line ranges, computed
// once and cached so every pass shares (and marks usage on) the same
// range records.
func (pkg *Package) allows() map[string][]*allowRange {
	if pkg.allow == nil {
		pkg.allow = pkg.allowRanges()
	}
	return pkg.allow
}

// callGraph returns the package's call graph, built once on demand.
func (pkg *Package) callGraph() *CallGraph {
	if pkg.graph == nil {
		pkg.graph = NewCallGraph(pkg.Syntax, pkg.TypesInfo)
	}
	return pkg.graph
}

// allowRanges scans every comment in the package for allow directives.
// A directive in a function declaration's doc comment covers the whole
// function body; any other directive covers its own line and the next.
func (pkg *Package) allowRanges() map[string][]*allowRange {
	out := make(map[string][]*allowRange)
	for _, f := range pkg.Syntax {
		// Doc-comment directives: cover the entire declaration.
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			for _, c := range directiveComments(doc) {
				for _, name := range parseDirective(c.Text) {
					from := pkg.Fset.Position(decl.Pos()).Line
					to := pkg.Fset.Position(decl.End()).Line
					file := pkg.Fset.Position(decl.Pos()).Filename
					out[file] = append(out[file], &allowRange{
						name: name, from: from, to: to,
						pos: pkg.Fset.Position(c.Pos()),
					})
				}
			}
		}
		// Line directives: cover the directive's line and the line below,
		// so both `stmt //lint:allow x` and a directive on its own line
		// above the statement work.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, name := range parseDirective(c.Text) {
					pos := pkg.Fset.Position(c.Pos())
					out[pos.Filename] = append(out[pos.Filename], &allowRange{
						name: name, from: pos.Line, to: pos.Line + 1,
						pos: pos,
					})
				}
			}
		}
	}
	return out
}

func directiveComments(doc *ast.CommentGroup) []*ast.Comment {
	if doc == nil {
		return nil
	}
	var out []*ast.Comment
	for _, c := range doc.List {
		if len(parseDirective(c.Text)) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// parseDirective extracts analyzer names from one comment's text, e.g.
// `//lint:allow vclockpurity maporder — calibration loop`.
func parseDirective(text string) []string {
	if !strings.HasPrefix(text, AllowDirective) {
		return nil
	}
	rest := strings.TrimPrefix(text, AllowDirective)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. //lint:allowedthing
	}
	var names []string
	for _, w := range strings.Fields(rest) {
		if w == "—" || w == "-" || strings.HasPrefix(w, "--") {
			break // free-form justification follows
		}
		names = append(names, w)
	}
	return names
}

// RunAnalyzers applies every analyzer to every package and returns the
// combined findings sorted by position. The allowaudit pseudo-analyzer,
// when present, runs last over each package: it inspects which allow
// directives the other analyzers actually consumed, so it cannot run as
// an ordinary Pass.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ran := make(map[string]bool)
	var audit bool
	var checks []*Analyzer
	for _, a := range analyzers {
		if a.Name == AllowAudit.Name {
			audit = true
			continue
		}
		checks = append(checks, a)
		ran[a.Name] = true
	}
	for _, pkg := range pkgs {
		for _, a := range checks {
			if err := a.Run(newPass(a, pkg, &diags)); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		if audit {
			auditAllows(pkg, ran, &diags)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	slices.SortFunc(diags, func(a, b Diagnostic) int {
		if c := strings.Compare(a.Pos.Filename, b.Pos.Filename); c != 0 {
			return c
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line - b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column - b.Pos.Column
		}
		return strings.Compare(a.Analyzer, b.Analyzer)
	})
}

// jsonDiagnostic is the stable machine-readable finding schema emitted
// by `xprsvet -json` for CI annotation tooling.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// DiagnosticsJSON renders findings as a JSON array (always an array —
// `[]`, never null — so downstream parsers need no special case).
func DiagnosticsJSON(diags []Diagnostic) ([]byte, error) {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
