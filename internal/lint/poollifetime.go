package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"
)

// PoolLifetime enforces the pooled-object lifetime discipline around
// the engine's ~8 sync.Pools (batch, column-batch, hash-vector, seal
// scratch, slave context, query, wake channel, go-runner pools): a
// value obtained from a pool must not outlive its recycle point. Three
// rules, checked per function over the shared call graph (getters and
// putters are classified transitively, so `q := getQuery()` and
// `s.finishQuery(q)` count the same as direct Pool.Get/Put):
//
//  1. use-after-recycle — once a pooled value is handed back (Put, or
//     any call that transitively recycles it), no later statement on
//     that path may touch it. This is the PR 8 Submit race shape: the
//     pool may have re-issued the object to another goroutine.
//  2. escape-then-recycle — a pooled value stored into a field, global,
//     or channel must not be recycled later in the same function: the
//     escaped alias would dangle into the pool.
//  3. publish-then-read — a pooled value published into shared state
//     under a mutex must not be read after the lock is released; the
//     new owner may recycle it concurrently. Capture what you need
//     (`h := q.handle`) before publishing.
//
// Only locals bound directly from a getter call are tracked, so
// ownership handoffs through parameters (the master loop's recycling)
// stay out of scope — those are the owner's calls by construction.
var PoolLifetime = &Analyzer{
	Name: "poollifetime",
	Doc: "pooled values must not escape past their recycle point: no use after Put, " +
		"no recycle after escaping, no read after publishing under a released lock",
	Run: runPoolLifetime,
}

// poolRecv reports whether fn is a method of sync.Pool.
func poolRecv(fn *types.Func) bool {
	return funcPkgPath(fn) == "sync" && recvBaseName(fn) == "Pool"
}

// poolClassify holds the package's transitive getter/putter sets.
type poolClassify struct {
	g *CallGraph
	// getters return a pooled value (directly or through another getter).
	getters map[*types.Func]bool
	// putters recycle one of their inputs: the value set holds the
	// parameter indices recycled, with -1 for the receiver.
	putters map[*types.Func]map[int]bool
}

func classifyPools(g *CallGraph) *poolClassify {
	c := &poolClassify{
		g:       g,
		getters: make(map[*types.Func]bool),
		putters: make(map[*types.Func]map[int]bool),
	}
	// Fixpoint: getter/putter-ness flows through in-package wrappers
	// (getQuery -> queryPool.Get, finishQuery -> putQuery -> Put). The
	// wrapper depth bounds the iteration count.
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs() {
			decl := g.Decl(fn)
			if decl == nil || decl.Body == nil {
				continue
			}
			if !c.getters[fn] && c.returnsPooled(decl) {
				c.getters[fn] = true
				changed = true
			}
			for idx := range c.recycledInputs(fn, decl) {
				if c.putters[fn] == nil {
					c.putters[fn] = make(map[int]bool)
				}
				if !c.putters[fn][idx] {
					c.putters[fn][idx] = true
					changed = true
				}
			}
		}
	}
	return c
}

// getterExpr reports whether e produces a pooled value: a Pool.Get or
// classified-getter call, possibly wrapped in a type assertion, or an
// identifier already known tainted.
func (c *poolClassify) getterExpr(e ast.Expr, tainted map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.TypeAssertExpr:
		return c.getterExpr(e.X, tainted)
	case *ast.CallExpr:
		callee := c.g.Callee(e)
		if callee == nil {
			return false
		}
		return (poolRecv(callee) && callee.Name() == "Get") || c.getters[callee]
	case *ast.Ident:
		return tainted != nil && tainted[c.objOf(e)]
	}
	return false
}

func (c *poolClassify) objOf(id *ast.Ident) types.Object {
	if obj := c.g.info.Uses[id]; obj != nil {
		return obj
	}
	return c.g.info.Defs[id]
}

// returnsPooled reports whether some return path of decl yields a
// value tainted from a pool get.
func (c *poolClassify) returnsPooled(decl *ast.FuncDecl) bool {
	tainted := make(map[types.Object]bool)
	// Two passes over the body propagate taint through the straight-line
	// binding chains the getters actually use (v := pool.Get(); b := v.(*T)).
	for range 2 {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				var rhs ast.Expr
				if len(assign.Rhs) == len(assign.Lhs) {
					rhs = assign.Rhs[i]
				} else if i == 0 {
					rhs = assign.Rhs[0] // comma-ok form: value is LHS[0]
				} else {
					continue
				}
				if c.getterExpr(rhs, tainted) {
					tainted[c.objOf(id)] = true
				}
			}
			return true
		})
	}
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return !found
		}
		for _, res := range ret.Results {
			if c.getterExpr(res, tainted) {
				found = true
			}
		}
		return true
	})
	return found
}

// recycledInputs returns the set of fn's input positions (param index,
// -1 = receiver) that the body hands to a pool Put or to another
// putter.
func (c *poolClassify) recycledInputs(fn *types.Func, decl *ast.FuncDecl) map[int]bool {
	inputs := inputObjects(fn)
	if len(inputs) == 0 {
		return nil
	}
	out := make(map[int]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, root := range c.recycledArgs(call) {
			if idx, ok := inputs[root]; ok {
				out[idx] = true
			}
		}
		return true
	})
	return out
}

// recycledArgs resolves the objects a call recycles: Put's argument, a
// putter's recycling arguments, or a receiver-putter's receiver.
func (c *poolClassify) recycledArgs(call *ast.CallExpr) []types.Object {
	callee := c.g.Callee(call)
	if callee == nil {
		return nil
	}
	var roots []ast.Expr
	if poolRecv(callee) && callee.Name() == "Put" && len(call.Args) == 1 {
		roots = append(roots, call.Args[0])
	}
	if rec := c.putters[callee]; rec != nil {
		idxs := make([]int, 0, len(rec))
		for idx := range rec {
			idxs = append(idxs, idx)
		}
		slices.Sort(idxs)
		for _, idx := range idxs {
			if idx == -1 {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					roots = append(roots, sel.X)
				}
			} else if idx < len(call.Args) {
				roots = append(roots, call.Args[idx])
			}
		}
	}
	var out []types.Object
	for _, e := range roots {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := c.objOf(id); obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// inputObjects maps fn's receiver and parameter objects to recycle
// indices (-1 for the receiver).
func inputObjects(fn *types.Func) map[types.Object]int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make(map[types.Object]int)
	if r := sig.Recv(); r != nil {
		out[r] = -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out[sig.Params().At(i)] = i
	}
	return out
}

func runPoolLifetime(pass *Pass) error {
	g := pass.CallGraph()
	c := classifyPools(g)
	for _, fn := range g.Funcs() {
		decl := g.Decl(fn)
		if decl == nil || decl.Body == nil {
			continue
		}
		checkPooledLocals(pass, c, decl)
	}
	return nil
}

// pooledVar is one tracked local bound directly from a getter call.
type pooledVar struct {
	obj types.Object
	// reported caps the walk at one finding per rule per variable.
	usedAfter, escThenPut, pubThenRead bool
}

// checkPooledLocals finds locals bound from getter calls in decl and
// walks the body once per rule family.
func checkPooledLocals(pass *Pass, c *poolClassify, decl *ast.FuncDecl) {
	var tracked []*pooledVar
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures own their bindings; walked separately
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			var rhs ast.Expr
			if len(assign.Rhs) == len(assign.Lhs) {
				rhs = assign.Rhs[i]
			} else if i == 0 {
				rhs = assign.Rhs[0]
			} else {
				continue
			}
			if c.getterExpr(rhs, nil) {
				if obj := c.g.info.Defs[id]; obj != nil {
					tracked = append(tracked, &pooledVar{obj: obj})
				}
			}
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}
	locks := lockEvents(c.g, decl)
	for _, v := range tracked {
		w := &poolWalker{pass: pass, c: c, v: v, locks: locks}
		w.walkList(decl.Body.List, poolState{})
	}
}

// lockEvent is one mutex acquire (locked=true) or release in source
// order, used to decide whether a publication happened under a lock
// and a read after its release.
type lockEvent struct {
	pos    token.Pos
	locked bool
}

func lockEvents(g *CallGraph, decl *ast.FuncDecl) []lockEvent {
	var out []lockEvent
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			fn := g.Callee(n)
			if fn == nil || funcPkgPath(fn) != "sync" {
				return true
			}
			switch fn.Name() {
			case "Lock", "TryLock", "RLock":
				out = append(out, lockEvent{pos: n.Pos(), locked: true})
			case "Unlock", "RUnlock":
				out = append(out, lockEvent{pos: n.Pos(), locked: false})
			}
		}
		return true
	})
	return out
}

// heldAt reports the lock state just before pos: true when the nearest
// preceding lock event is an acquire.
func heldAt(locks []lockEvent, pos token.Pos) (held, any bool) {
	for _, ev := range locks {
		if ev.pos >= pos {
			break
		}
		held, any = ev.locked, true
	}
	return held, any
}

// poolState is the per-path tracking state for one pooled local.
type poolState struct {
	recycledAt  token.Pos // a dominating recycle site, or NoPos
	escapedAt   token.Pos // stored into field/global/channel, or NoPos
	publishedAt token.Pos // escape that happened under a held mutex
}

type poolWalker struct {
	pass  *Pass
	c     *poolClassify
	v     *pooledVar
	locks []lockEvent
}

// walkList processes one statement list. Branch bodies are walked with
// a copy of the state (their recycles are conditional, so they do not
// dominate the fall-through path), while escapes propagate out of
// branches (a may-escape on any path poisons a later unconditional
// recycle).
func (w *poolWalker) walkList(list []ast.Stmt, st poolState) poolState {
	for _, stmt := range list {
		st = w.walkStmt(stmt, st)
	}
	return st
}

func (w *poolWalker) walkStmt(stmt ast.Stmt, st poolState) poolState {
	// Rule 1: anything touching the value after a dominating recycle.
	if st.recycledAt.IsValid() {
		if rebind, usesBefore := w.rebinds(stmt); rebind {
			if usesBefore && !w.v.usedAfter {
				w.v.usedAfter = true
				w.reportUseAfter(stmt.Pos(), st.recycledAt)
			}
			st.recycledAt = token.NoPos // fresh value under the old name
			return st
		}
		if use := w.firstUse(stmt); use.IsValid() && !w.v.usedAfter {
			w.v.usedAfter = true
			w.reportUseAfter(use, st.recycledAt)
		}
		return st
	}

	// Rule 3: a read after the publishing lock was released.
	if st.publishedAt.IsValid() && !w.v.pubThenRead {
		if read := w.firstSharedRead(stmt); read.IsValid() {
			if held, any := heldAt(w.locks, read); any && !held {
				w.v.pubThenRead = true
				w.pass.Reportf(read,
					"pooled %s is read here after being published to shared state under a lock "+
						"(line %d) that has since been released: the consumer may already have recycled "+
						"it (the PR 8 Submit race); capture the needed fields before publishing "+
						"(DESIGN.md §16)",
					w.v.obj.Name(), w.pass.Fset.Position(st.publishedAt).Line)
			}
		}
	}

	// Escapes anywhere in the statement (including branch arms).
	if esc := w.firstEscape(stmt); esc.IsValid() {
		if !st.escapedAt.IsValid() {
			st.escapedAt = esc
		}
		if held, _ := heldAt(w.locks, esc); held && !st.publishedAt.IsValid() {
			st.publishedAt = esc
		}
	}

	// Rule 2 + recycle tracking: only recycles that are direct
	// statements at this level dominate what follows.
	switch s := stmt.(type) {
	case *ast.ExprStmt, *ast.AssignStmt:
		if rec := w.recycleIn(s); rec.IsValid() {
			if st.escapedAt.IsValid() && !w.v.escThenPut {
				w.v.escThenPut = true
				w.pass.Reportf(rec,
					"pooled %s is recycled here but escaped into longer-lived storage at line %d: "+
						"the surviving alias will dangle into the pool and race with the next Get "+
						"(DESIGN.md §16)",
					w.v.obj.Name(), w.pass.Fset.Position(st.escapedAt).Line)
			}
			st.recycledAt = rec
		}
	case *ast.BlockStmt:
		st = w.walkList(s.List, st)
	case *ast.IfStmt:
		w.walkBranch(blockStmts(s.Body), st)
		if s.Else != nil {
			w.walkBranch([]ast.Stmt{s.Else}, st)
		}
	case *ast.ForStmt:
		w.walkBranch(blockStmts(s.Body), st)
	case *ast.RangeStmt:
		w.walkBranch(blockStmts(s.Body), st)
	case *ast.SwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.walkBranch(cc.Body, st)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.walkBranch(cc.Body, st)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				w.walkBranch(cc.Body, st)
			}
		}
	case *ast.LabeledStmt:
		st = w.walkStmt(s.Stmt, st)
	}
	return st
}

func blockStmts(b *ast.BlockStmt) []ast.Stmt {
	if b == nil {
		return nil
	}
	return b.List
}

// walkBranch checks a conditional body with a copy of the state; its
// effects stay inside the branch.
func (w *poolWalker) walkBranch(list []ast.Stmt, st poolState) {
	w.walkList(list, st)
}

// rebinds reports whether stmt assigns a fresh value to the tracked
// variable (clearing recycled state), and whether the RHS still uses
// the old value.
func (w *poolWalker) rebinds(stmt ast.Stmt) (rebind, usesBefore bool) {
	assign, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false, false
	}
	for _, lhs := range assign.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && w.c.objOf(id) == w.v.obj {
			rebind = true
		}
	}
	if rebind {
		for _, rhs := range assign.Rhs {
			if w.usesIn(rhs).IsValid() {
				usesBefore = true
			}
		}
	}
	return rebind, usesBefore
}

// firstUse returns the position of the first mention of the tracked
// variable in stmt (outside closures and defers), or NoPos.
func (w *poolWalker) firstUse(stmt ast.Stmt) token.Pos {
	return w.usesIn(stmt)
}

func (w *poolWalker) usesIn(n ast.Node) token.Pos {
	pos := token.NoPos
	ast.Inspect(n, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.Ident:
			if w.c.objOf(n) == w.v.obj {
				pos = n.Pos()
			}
		}
		return true
	})
	return pos
}

// firstEscape finds a store of the tracked value into something that
// outlives the function: a field, map or slice element, a dereference,
// a package-level variable, or a channel send.
func (w *poolWalker) firstEscape(stmt ast.Stmt) token.Pos {
	pos := token.NoPos
	ast.Inspect(stmt, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			if w.usesIn(n.Value).IsValid() {
				pos = n.Arrow
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if !w.escapingDest(lhs) {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else {
					rhs = n.Rhs[0]
				}
				if p := w.usesIn(rhs); p.IsValid() {
					pos = p
				}
			}
		}
		return true
	})
	return pos
}

// escapingDest reports whether an assignment destination stores beyond
// the frame: a selector, index or dereference whose base is not the
// tracked value itself, or a package-level variable.
func (w *poolWalker) escapingDest(lhs ast.Expr) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		// Stores INTO the tracked value (q.rep = ...) initialize it;
		// stores into anything else publish aliases.
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && w.c.objOf(id) == w.v.obj {
			return false
		}
		return true
	case *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := w.c.objOf(e)
		v, ok := obj.(*types.Var)
		return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() // package-level var
	}
	return false
}

// firstSharedRead finds a field access on the tracked value or a
// return of it — the operations that race once ownership moved.
func (w *poolWalker) firstSharedRead(stmt ast.Stmt) token.Pos {
	pos := token.NoPos
	ast.Inspect(stmt, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && w.c.objOf(id) == w.v.obj {
				pos = n.Pos()
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok && w.c.objOf(id) == w.v.obj {
					pos = res.Pos()
				}
			}
		}
		return true
	})
	return pos
}

// recycleIn returns the position of a call in stmt that recycles the
// tracked value, or NoPos.
func (w *poolWalker) recycleIn(stmt ast.Stmt) token.Pos {
	pos := token.NoPos
	ast.Inspect(stmt, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			for _, obj := range w.c.recycledArgs(n) {
				if obj == w.v.obj {
					pos = n.Pos()
				}
			}
		}
		return true
	})
	return pos
}

func (w *poolWalker) reportUseAfter(use token.Pos, recycled token.Pos) {
	w.pass.Reportf(use,
		"pooled %s is used here after being recycled at line %d: the pool may have "+
			"re-issued it to a concurrent getter, so every later access races with the new "+
			"owner (the PR 8 Submit race shape; DESIGN.md §16)",
		w.v.obj.Name(), w.pass.Fset.Position(recycled).Line)
}
