// Package vclock is a vclockpurity fixture for the Real-adapter
// exemption: wall-clock reads are legal only inside the explicit
// wall-clock bridge (methods on Real, and NewReal).
package vclock

import "time"

// Real mirrors the engine's wall-clock adapter.
type Real struct {
	start time.Time
}

func NewReal() *Real {
	return &Real{start: time.Now()} // sanctioned: the one bridge to host time
}

func (r *Real) Now() time.Duration { return time.Since(r.start) }

func (r *Real) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual code in the same package stays governed.
type Virtual struct{}

func (v *Virtual) leak() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}
