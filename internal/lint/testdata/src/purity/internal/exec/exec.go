// Package exec is a vclockpurity fixture: its import path ends in
// internal/exec, so it is vclock-governed.
package exec

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	return time.Since(start)     // want `time\.Since reads the wall clock`
}

func sleeper() {
	time.Sleep(time.Second)  // want `time\.Sleep reads the wall clock`
	<-time.Tick(time.Second) // want `time\.Tick reads the wall clock`
}

func globalRand() int {
	return rand.Intn(10) // want `math/rand\.Intn uses the global random generator`
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10) // methods on a seeded *rand.Rand are the blessed pattern
}

// durationsOnly shows that pure time types and arithmetic never trip
// the analyzer.
func durationsOnly(d time.Duration) time.Duration {
	return d + 5*time.Millisecond
}

// calibrate is deliberately host-timed; the doc-comment escape covers
// the whole function.
//
//lint:allow vclockpurity — fixture for the doc-comment escape
func calibrate() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func lineEscape() time.Duration {
	return time.Since(time.Now().Add(-time.Second)) //lint:allow vclockpurity
}
