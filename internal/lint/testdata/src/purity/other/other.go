// Package other is outside the vclock-governed set: wall-clock use is
// not the analyzers' business here.
package other

import "time"

func Fine() time.Time { return time.Now() }
