// Package obs is an obsnoclock fixture violating the leaf-package
// rule: observability importing the clock at all is the structural
// failure the analyzer exists to catch.
package obs

import (
	"leafviol/internal/vclock" // want `internal/obs imports leafviol/internal/vclock`
)

type Registry struct {
	clock *vclock.Clock
}
