package vclock

type Clock struct{}
