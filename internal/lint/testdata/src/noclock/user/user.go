// Package user exercises obsnoclock's callback rule: functions handed
// to obs APIs may not reach vclock-advancing calls, directly or through
// same-package helpers.
package user

import (
	"noclock/internal/obs"
	"noclock/internal/vclock"
)

type engine struct {
	clock *vclock.Clock
	mbox  *vclock.Mailbox
	busy  int64
}

func (e *engine) register(reg *obs.Registry) {
	// Reading state is free: the blessed gauge shape.
	reg.RegisterFunc("busy", func() int64 { return e.busy })

	// Reading the clock is free too — Now is not an advancing API.
	reg.RegisterFunc("now", func() int64 { return int64(e.clock.Now()) })

	reg.RegisterFunc("bad_direct", func() int64 { // want `reaches vclock-advancing API vclock\.Clock\.Sleep`
		e.clock.Sleep(1)
		return 0
	})

	reg.RegisterFunc("bad_post", func() int64 { // want `reaches vclock-advancing API vclock\.Mailbox\.Post`
		e.mbox.Post(nil)
		return int64(e.mbox.Len())
	})

	// Transitive reach through a same-package helper.
	reg.RegisterFunc("bad_indirect", e.pump) // want `reaches vclock-advancing API vclock\.Clock\.Sleep`

	// Transitive reach into the executor's CPU-charging helpers.
	reg.RegisterFunc("bad_charge", func() int64 { // want `reaches vclock-advancing API engine\.chargeCPU`
		e.account()
		return 0
	})
}

func (e *engine) watch(tr *obs.Tracer) {
	tr.OnFlush(func() { e.clock.YieldOrdered(1) }) // want `reaches vclock-advancing API vclock\.Clock\.YieldOrdered`
}

func (e *engine) pump() int64 {
	e.clock.Sleep(5)
	return 0
}

func (e *engine) account() { e.chargeCPU(1e-6) }

func (e *engine) chargeCPU(seconds float64) { e.busy++ }
