// Package obs is an obsnoclock fixture: a clean leaf registry/tracer
// stand-in for callback-checking tests.
package obs

type Registry struct{}

func (r *Registry) RegisterFunc(name string, fn func() int64) {}

type Tracer struct{}

func (t *Tracer) OnFlush(fn func()) {}
