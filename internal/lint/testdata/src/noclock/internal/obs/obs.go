// Package obs is an obsnoclock fixture: a clean leaf registry/tracer
// stand-in for callback-checking tests.
package obs

type Registry struct{}

func (r *Registry) RegisterFunc(name string, fn func() int64) {}

type Tracer struct{}

func (t *Tracer) OnFlush(fn func()) {}

// Series mirrors the real package's windowed ring: clock-pure, every
// timestamp flows in through the injected now func. No findings.
type Series struct {
	now func() int64
}

func NewSeries(now func() int64) *Series { return &Series{now: now} }

func (s *Series) Count(name string, delta int64) { _ = s.now() }
