// Package vclock is an obsnoclock fixture: a minimal stand-in for the
// engine's clock and mailbox APIs.
package vclock

import "time"

type Clock struct{ now time.Duration }

func (c *Clock) Now() time.Duration  { return c.now }
func (c *Clock) Sleep(time.Duration) {}
func (c *Clock) YieldOrdered(int64)  {}

type Mailbox struct{}

func (m *Mailbox) Post(interface{}) {}
func (m *Mailbox) Len() int         { return 0 }
