// Package exec exercises lockorder: stripe (sharded) mutexes are leaf
// locks — never hold two distinct stripes, sort multi-acquire index
// loops, and never block under one.
package exec

import (
	"slices"
	"sync"

	"lockorder/internal/vclock"
)

type shard struct {
	mu    sync.Mutex
	queue []int
}

type sched struct {
	shards []shard
	events *vclock.Mailbox
	notify chan struct{}
}

func (s *sched) shardOf(id int) *shard { return &s.shards[id%len(s.shards)] }

// Rule 3: a blocking vclock call under a stripe lock.
func (s *sched) postUnderLock(id int) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	sh.queue = append(sh.queue, id)
	s.events.Post(id) // want `call to vclock\.Mailbox\.Post while stripe mutex sh\.mu is held`
	sh.mu.Unlock()
}

func (s *sched) ring() { s.events.Post(0) }

// Rule 3, transitively through an in-package helper.
func (s *sched) indirectPostUnderLock(id int) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	s.ring() // want `call reaching vclock\.Mailbox\.Post while stripe mutex sh\.mu is held`
	sh.mu.Unlock()
}

// Rule 3: raw channel operations block too.
func (s *sched) sendUnderLock(id int) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	s.notify <- struct{}{} // want `channel send while stripe mutex sh\.mu is held`
	sh.mu.Unlock()
}

// Rule 1: two distinct stripes held at once.
func (s *sched) nested(a, b int) {
	s.shards[a].mu.Lock()
	s.shards[b].mu.Lock() // want `stripe mutex s\.shards\[b\]\.mu acquired while stripe s\.shards\[a\]\.mu is already held`
	s.shards[b].mu.Unlock()
	s.shards[a].mu.Unlock()
}

func (s *sched) lockOne(id int) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	sh.queue = append(sh.queue, id)
	sh.mu.Unlock()
}

// Rule 1, transitively: a callee that acquires a stripe while the
// caller already holds one.
func (s *sched) nestedViaCall(a, b int) {
	s.shards[a].mu.Lock()
	s.lockOne(b) // want `call reaches lockOne, which acquires a stripe mutex`
	s.shards[a].mu.Unlock()
}

// Rule 2: a multi-acquire loop over an unsorted local index slice.
func (s *sched) lockAllUnsorted(idxs []int) {
	for _, ix := range idxs {
		s.shards[ix].mu.Lock() // want `not sorted before the loop`
	}
	for _, ix := range idxs {
		s.shards[ix].mu.Unlock()
	}
}

// Negative: the registerIDs idiom — sort first, then acquire ascending.
func (s *sched) lockAllSorted(idxs []int) {
	slices.Sort(idxs)
	for _, ix := range idxs {
		s.shards[ix].mu.Lock()
	}
	for _, ix := range idxs {
		s.shards[ix].mu.Unlock()
	}
}

// Negative: the Submit TryLock fast path — the fallback Lock
// re-acquires the same stripe, not a second one.
func (s *sched) submit(id int) {
	sh := s.shardOf(id)
	if !sh.mu.TryLock() {
		sh.mu.Lock()
	}
	sh.queue = append(sh.queue, id)
	sh.mu.Unlock()
}

// Negative: an Unlock+return branch does not leak held state into the
// fall-through path (which still holds the lock, correctly).
func (s *sched) closedCheck(id int, closed bool) int {
	sh := s.shardOf(id)
	sh.mu.Lock()
	if closed {
		sh.mu.Unlock()
		return -1
	}
	n := len(sh.queue)
	sh.mu.Unlock()
	return n
}

// Negative: the doorbell shape escapes with a justified allow.
func (s *sched) doorbell(id int) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	sh.queue = append(sh.queue, id)
	//lint:allow lockorder — fixture: doorbell ordering requires Post inside the critical section
	s.events.Post(id)
	sh.mu.Unlock()
}
