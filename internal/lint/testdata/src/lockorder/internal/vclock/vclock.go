// Package vclock is a lockorder fixture stand-in for the virtual
// clock: a Mailbox whose Post/Wait are classified as blocking.
package vclock

type Mailbox struct{}

func (m *Mailbox) Post(ev interface{})  {}
func (m *Mailbox) Wait() interface{}    { return nil }
func (m *Mailbox) TryWait() interface{} { return nil }
