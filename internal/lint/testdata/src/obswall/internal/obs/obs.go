// Package obs is an obsnoclock fixture violating the clock-purity
// rule inside observability itself: telemetry primitives reading the
// wall clock would observe virtual-time runs nondeterministically.
package obs

import "time"

type Series struct {
	last time.Duration
}

// Advance stamps the current window off the host clock instead of an
// injected now func — the exact bug the analyzer exists to catch.
func (s *Series) Advance() {
	s.last = time.Since(time.Unix(0, 0)) // want `time.Since reads the wall clock inside internal/obs`
}

func (s *Series) Wait() {
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock inside internal/obs`
}

// Stamp is clock-pure: the timestamp arrives as an argument, and
// time.Duration arithmetic never touches the host clock. No finding.
func (s *Series) Stamp(now time.Duration) {
	s.last = now + time.Millisecond
}
