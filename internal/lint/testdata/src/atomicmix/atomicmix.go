// Package atomicmix exercises the mixed atomic/plain access check: the
// BufferPool-counter bug class where a field is atomically incremented
// on the hot path but read bare in a snapshot.
package atomicmix

import "sync/atomic"

type mixed struct {
	hits int64
	cold int64
}

func (m *mixed) record() {
	atomic.AddInt64(&m.hits, 1)
}

func (m *mixed) snapshot() int64 {
	return m.hits // want `"hits" is accessed with atomic\.AddInt64 elsewhere but read/written plainly here`
}

func (m *mixed) reset() {
	m.hits = 0 // want `"hits" is accessed with atomic\.AddInt64 elsewhere but read/written plainly here`
}

// consistent uses sync/atomic for every access: fine.
type consistent struct {
	n int64
}

func (c *consistent) bump() { atomic.AddInt64(&c.n, 1) }
func (c *consistent) get() int64 {
	return atomic.LoadInt64(&c.n)
}

// typed uses typed atomics, which the type system keeps honest: fine,
// and it is what the diagnostic tells you to migrate to.
type typed struct {
	n atomic.Int64
}

func (t *typed) bump()      { t.n.Add(1) }
func (t *typed) get() int64 { return t.n.Load() }

// coldPlain is never touched atomically; plain access is fine.
func (m *mixed) bumpCold() { m.cold++ }
