// Package core exercises policypurity: every type satisfying the
// QueuePolicy interface — found by interface satisfaction, not by name
// — is transitively barred from wall-clock reads, global rand,
// goroutine spawns and map-range-ordered picks.
package core

import (
	"math/rand"
	"slices"
	"time"
)

// QueuePolicy mirrors the real scheduling extension point.
type QueuePolicy interface {
	Pick(ready map[int]*Query) *Query
}

type Query struct {
	ID   int
	cost float64
}

// FairPolicy is clean: the blessed collect-append-then-sort pattern.
type FairPolicy struct{}

func (FairPolicy) Pick(ready map[int]*Query) *Query {
	var ids []int
	for id := range ready {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	if len(ids) == 0 {
		return nil
	}
	return ready[ids[0]]
}

// GreedyPolicy picks first-match out of a map range and leans on an
// impure helper.
type GreedyPolicy struct{}

func (GreedyPolicy) Pick(ready map[int]*Query) *Query {
	for _, q := range ready {
		if lucky() {
			return q // want `return from inside a map range in policy code`
		}
	}
	return nil
}

// lucky is impure and reachable from GreedyPolicy.Pick.
func lucky() bool {
	deadline := time.Now() // want `time\.Now reached from a scheduling policy`
	_ = deadline
	return rand.Intn(2) == 0 // want `rand\.Intn reached from a scheduling policy`
}

// AsyncPolicy races its own bookkeeping.
type AsyncPolicy struct{ hits int }

func (p *AsyncPolicy) Pick(ready map[int]*Query) *Query {
	go func() { p.hits++ }() // want `goroutine spawned in code reachable from a scheduling policy`
	return nil
}

// MaxPolicy reduces inside the map range: ties follow iteration order.
type MaxPolicy struct{}

func (MaxPolicy) Pick(ready map[int]*Query) *Query {
	var best *Query
	for _, q := range ready {
		if best == nil || q.cost > best.cost {
			best = q // want `assignment to "best" \(declared outside the loop\) inside a map range`
		}
	}
	return best
}

// SumPolicy carries a justified allow for an order-insensitive reduce.
type SumPolicy struct{}

func (SumPolicy) Pick(ready map[int]*Query) *Query {
	var sum float64
	for _, q := range ready {
		//lint:allow policypurity — fixture: commutative sum, order-insensitive
		sum += q.cost
	}
	if sum <= 0 {
		return nil
	}
	return nil
}

// reporter does NOT satisfy QueuePolicy, so its wall-clock read is out
// of policypurity's scope (vclockpurity owns it in the real tree).
type reporter struct{}

func (reporter) stamp() time.Time { return time.Now() }
