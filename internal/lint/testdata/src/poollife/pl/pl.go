// Package pl exercises poollifetime: pooled values must not be used
// after their recycle point, recycled after escaping, or read after
// being published under a since-released lock. Getters and putters are
// classified transitively (getBuf/putBuf count the same as Get/Put).
package pl

import "sync"

type buf struct {
	n int
}

var bufPool sync.Pool

func getBuf() *buf {
	b, _ := bufPool.Get().(*buf)
	if b == nil {
		b = new(buf)
	}
	return b
}

func putBuf(b *buf) { bufPool.Put(b) }

type server struct {
	mu   sync.Mutex
	cur  *buf
	done chan *buf
}

// Rule 1: use after a direct Put.
func (s *server) useAfterPut() int {
	b := getBuf()
	bufPool.Put(b)
	return b.n // want `used here after being recycled`
}

// Rule 1 through the transitive putter.
func (s *server) useAfterPutter() {
	b := getBuf()
	putBuf(b)
	b.n = 1 // want `used here after being recycled`
}

// Rule 2: the field store keeps an alias alive past the recycle.
func (s *server) escapeThenPut() {
	b := getBuf()
	s.cur = b
	bufPool.Put(b) // want `recycled here but escaped into longer-lived storage`
}

// Rule 2: a channel send is an escape too.
func (s *server) sendThenPut() {
	b := getBuf()
	s.done <- b
	putBuf(b) // want `recycled here but escaped into longer-lived storage`
}

// Rule 3: published under the lock, read after it was released — the
// new owner may already have recycled the value.
func (s *server) publishThenRead() int {
	b := getBuf()
	s.mu.Lock()
	s.cur = b
	s.mu.Unlock()
	return b.n // want `read here after being published to shared state under a lock`
}

// Negative: capture what you need before publishing.
func (s *server) captureFirst() int {
	b := getBuf()
	n := b.n
	s.mu.Lock()
	s.cur = b
	s.mu.Unlock()
	return n
}

// Negative: rebinding installs a fresh value under the old name.
func (s *server) rebind() int {
	b := getBuf()
	bufPool.Put(b)
	b = getBuf()
	n := b.n
	putBuf(b)
	return n
}

// Negative: a recycle on an early-return branch does not dominate the
// fall-through path (the Submit error-branch shape).
func (s *server) branchPut(bad bool) int {
	b := getBuf()
	if bad {
		putBuf(b)
		return 0
	}
	n := b.n
	putBuf(b)
	return n
}

// Negative: closures own their recycle points (the goRunner pattern);
// lifetimes across goroutines are out of scope.
func (s *server) closurePut() {
	b := getBuf()
	go func() {
		b.n++
		putBuf(b)
	}()
}

// Negative: a justified escape suppresses the finding.
func (s *server) allowed() int {
	b := getBuf()
	bufPool.Put(b)
	//lint:allow poollifetime — fixture: deliberate use-after-put
	return b.n
}
