// Package obs is a tracegate fixture stand-in: a Tracer whose
// Span/Instant methods are the gated emission points.
package obs

type Tracer struct{}

func (t *Tracer) Span(at, dur int64, pid, tid int, cat, name, detail string) {}
func (t *Tracer) Instant(at int64, pid, tid int, cat, name, detail string)   {}
