// Package exec exercises tracegate: Tracer.Span/Instant emissions must
// be dominated by a tracing()/traced sampling guard on every in-package
// path that reaches them.
package exec

import "tracegate/internal/obs"

type engine struct {
	Trace *obs.Tracer
}

type fragRun struct {
	eng    *engine
	traced bool
}

func (fr *fragRun) tracing() bool { return fr.eng.Trace != nil && fr.traced }

// Negative: direct emission under the guard.
func (fr *fragRun) step() {
	if fr.tracing() {
		fr.eng.Trace.Instant(0, 0, 0, "protocol", "step", "ok")
	}
}

// Negative: the helper emits unguarded internally, but every reference
// to it is dominated by a guard (the traceInstant idiom).
func (fr *fragRun) traceInstant(name string) {
	fr.eng.Trace.Instant(0, 0, 0, "protocol", name, "")
}

func (fr *fragRun) adjust() {
	if fr.tracing() {
		fr.traceInstant("adjust")
	}
}

// Negative: an early-return guard dominates the rest of the body.
func (fr *fragRun) finish() {
	if !fr.tracing() {
		return
	}
	fr.eng.Trace.Span(0, 1, 0, 0, "frag", "finish", "")
}

// Positive: unguarded emission in an entry function.
func (fr *fragRun) hotLoop() {
	fr.eng.Trace.Instant(0, 0, 0, "protocol", "tick", "") // want `Tracer\.Instant emission reachable with no sampling guard`
}

// Positive: an unguarded call path makes the helper's emission fire.
func (fr *fragRun) drain() {
	fr.leak("drain")
}

func (fr *fragRun) leak(name string) {
	fr.eng.Trace.Instant(0, 0, 0, "protocol", name, "") // want `Tracer\.Instant emission reachable with no sampling guard`
}

// Negative: a justified one-shot emission escapes with an allow.
func (e *engine) banner() {
	//lint:allow tracegate — fixture: one-shot startup banner, not per-fragment
	e.Trace.Instant(0, 0, 0, "sched", "banner", "")
}
