// Package aa exercises allowaudit: a directive that suppresses a real
// finding stays live; one that no longer suppresses anything is flagged
// as stale (unless itself excused with //lint:allow allowaudit).
package aa

var sink []int

// live suppresses a real maporder finding, so its directive is kept.
func live(m map[int]int) {
	for k := range m {
		//lint:allow maporder — fixture: deliberate unsorted append
		sink = append(sink, k)
	}
}

// stale has no violation left under its directive.
func stale() int {
	//lint:allow maporder — fixture gone stale // want `stale //lint:allow maporder`
	return 1
}

// retained is stale too, but deliberately kept and excused.
func retained() int {
	//lint:allow allowaudit — fixture: directive retained on purpose
	//lint:allow maporder — fixture: kept for a pending revert
	return 2
}
