// Package mo exercises maporder: iteration over a map may not feed
// order-sensitive sinks without an intervening deterministic sort.
package mo

import (
	"slices"
	"sort"

	"maporder/internal/core"
	"maporder/internal/obs"
)

type report struct {
	Rows []int
}

// unsortedAppend leaks randomized map order into its result.
func unsortedAppend(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want `append to "out" inside iteration over a map without sorting it afterwards`
	}
	return out
}

// sortedKeys is the blessed pattern: collect, sort, use.
func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b int) int { return a - b })
	return keys
}

// sortPkgAlsoCounts accepts the legacy sort package as the ordering
// step (the fixer's suggestion is slices.SortFunc, but sort.Slice is
// deterministic too).
func sortPkgAlsoCounts(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// loopLocal scratch dies with each iteration: no order escapes.
func loopLocal(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var scratch []int
		scratch = append(scratch, vs...)
		total += len(scratch)
	}
	return total
}

// fieldAppend stores map-ordered data into escaping state.
func fieldAppend(m map[int]int, r *report) {
	for k := range m {
		r.Rows = append(r.Rows, k) // want `append to escaping storage inside iteration over a map`
	}
}

// chanSend publishes map order to a receiver.
func chanSend(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want `channel send inside iteration over a map`
	}
}

// queuePush feeds the scheduler's task queue in map order.
func queuePush(m map[int]*core.Task, q *core.TaskQueue) {
	for _, t := range m {
		q.Push(t) // want `TaskQueue\.Push called inside iteration over a map`
	}
}

// traceEmit emits trace events in map order.
func traceEmit(m map[int]int64, tr *obs.Tracer) {
	for k, ts := range m {
		tr.Instant(ts, "evt") // want `Tracer\.Instant called inside iteration over a map`
		_ = k
	}
}

// mapWrites are order-insensitive: building maps from maps is fine.
func mapWrites(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// allowed acknowledges a deliberate unordered drain.
func allowed(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k //lint:allow maporder
	}
}
