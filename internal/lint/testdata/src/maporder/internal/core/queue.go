// Package core is a maporder fixture: a minimal task queue whose push
// order is observable downstream.
package core

type Task struct{ ID int }

type TaskQueue struct{ items []*Task }

func (q *TaskQueue) Push(t *Task)   { q.items = append(q.items, t) }
func (q *TaskQueue) Len() int       { return len(q.items) }
func (q *TaskQueue) At(i int) *Task { return q.items[i] }
