// Package obs is a maporder fixture: trace emission is an ordered sink.
package obs

type Tracer struct{}

func (t *Tracer) Instant(ts int64, name string) {}
