package lint

import (
	"testing"
)

// TestLintCleanTree is the meta-test behind `make lint`: the whole
// module must produce zero findings from every analyzer. A regression
// here means someone reintroduced a wall-clock read, an unsorted
// map-range feeding a report, a clock-touching observability callback,
// or a mixed atomic/plain counter — exactly the bug classes that break
// the byte-identical virtual-clock invariants (DESIGN.md §11).
func TestLintCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list over the whole module")
	}
	pkgs, err := Load(repoRoot(), "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded (%d): loader regression?", len(pkgs))
	}
	diags, err := RunAnalyzers(pkgs, Suite)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("xprsvet found %d violation(s) in the tree; run `make lint` locally", len(diags))
	}
}
