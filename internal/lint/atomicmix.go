package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicMix flags variables (typically struct counter fields) that are
// accessed both through the sync/atomic function API
// (atomic.AddInt64(&x.n, 1)) and by plain reads or writes (x.n++,
// x.n = 0, fmt.Println(x.n)). Mixed access is a data race the
// -race matrix only catches when the schedule cooperates; the
// BufferPool hit/miss and Report.Frags counters hit exactly this
// pattern before migrating to typed atomics. The fix is to make the
// field an atomic.Int64/Uint64 (typed atomics cannot be mixed) or to
// route every access through sync/atomic.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "forbid mixing sync/atomic access with plain reads/writes of the same variable; " +
		"use typed atomics (atomic.Int64) so the type system enforces consistency",
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// First pass: every variable whose address is taken by a
	// sync/atomic call, and the exact &v nodes used for it.
	atomicVars := make(map[*types.Var]string) // var -> atomic func name seen
	atomicArgs := make(map[ast.Expr]bool)     // the &v argument expressions
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || funcPkgPath(fn) != "sync/atomic" || !isAtomicOpName(fn.Name()) {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // typed-atomic methods are exactly what we want people to use
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				if v := referencedVar(pass.TypesInfo, un.X); v != nil {
					atomicVars[v] = "atomic." + fn.Name()
					atomicArgs[un.X] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Second pass: plain uses of those same variables anywhere else in
	// the package.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var id *ast.Ident
			switch e := n.(type) {
			case *ast.SelectorExpr:
				id = e.Sel
			case *ast.Ident:
				id = e
			default:
				return true
			}
			obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			op, tracked := atomicVars[obj]
			if !tracked {
				return true
			}
			if partOfAtomicArg(n, atomicArgs) {
				return true
			}
			pass.Reportf(n.Pos(),
				"%q is accessed with %s elsewhere but read/written plainly here: mixed atomic and "+
					"plain access is a data race the GOMAXPROCS race matrix can miss (DESIGN.md §11); "+
					"make the field a typed atomic (atomic.Int64) or use sync/atomic everywhere",
				obj.Name(), op)
			return false
		})
	}
	return nil
}

// isAtomicOpName matches the sync/atomic function-API operations.
func isAtomicOpName(name string) bool {
	for _, prefix := range []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// referencedVar resolves x (an ident or a field selector) to the
// variable it names.
func referencedVar(info *types.Info, x ast.Expr) *types.Var {
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}

// partOfAtomicArg reports whether node n is (or is inside) one of the
// &v operands handed to a sync/atomic call.
func partOfAtomicArg(n ast.Node, atomicArgs map[ast.Expr]bool) bool {
	for arg := range atomicArgs {
		if n.Pos() >= arg.Pos() && n.End() <= arg.End() {
			return true
		}
	}
	return false
}
