package lint

import (
	"encoding/json"
	"go/token"
	"go/types"
	"testing"
)

// grabFunc finds a declared function or method by name in the graph.
func grabFunc(t *testing.T, g *CallGraph, name string) *types.Func {
	t.Helper()
	for _, fn := range g.Funcs() {
		if fn.Name() == name {
			return fn
		}
	}
	t.Fatalf("function %q not found in call graph", name)
	return nil
}

func TestCallGraphReach(t *testing.T) {
	pkgs := loadTestdata(t, "noclock/user")
	g := pkgs[0].callGraph()

	register := grabFunc(t, g, "register")
	pump := grabFunc(t, g, "pump")
	account := grabFunc(t, g, "account")
	charge := grabFunc(t, g, "chargeCPU")

	if g.Decl(pump) == nil {
		t.Fatal("Decl(pump) = nil, want its FuncDecl")
	}

	// register hands e.pump to an obs API and calls e.account from a
	// closure; both chains (and chargeCPU behind account) are reachable.
	reach := g.Reach(register)
	for _, fn := range []*types.Func{register, pump, account, charge} {
		if !reach[fn] {
			t.Errorf("Reach(register) misses %s", fn.Name())
		}
	}

	// pump is a leaf on the declared-function graph: it reaches only
	// itself (Clock.Sleep is imported, not declared here).
	leaf := g.Reach(pump)
	if !leaf[pump] || leaf[register] || leaf[account] {
		t.Errorf("Reach(pump) = %d funcs incl. self=%v, want only pump", len(leaf), leaf[pump])
	}
}

func TestReacherClassify(t *testing.T) {
	pkgs := loadTestdata(t, "noclock/user", "poollife/pl")

	g := pkgs[0].callGraph()
	r := g.Reacher(clockAPIName)
	if got := r.FromFunc(grabFunc(t, g, "pump")); got != "vclock.Clock.Sleep" {
		t.Errorf("FromFunc(pump) = %q, want vclock.Clock.Sleep", got)
	}
	if got := r.FromFunc(grabFunc(t, g, "account")); got != "engine.chargeCPU" {
		t.Errorf("FromFunc(account) = %q, want engine.chargeCPU", got)
	}

	// A package with no clock-adjacent code classifies everything clean,
	// and the memo answers repeat queries identically.
	g2 := pkgs[1].callGraph()
	r2 := g2.Reacher(clockAPIName)
	getBuf := grabFunc(t, g2, "getBuf")
	for range 2 {
		if got := r2.FromFunc(getBuf); got != "" {
			t.Errorf("FromFunc(getBuf) = %q, want clean", got)
		}
	}
}

func TestDiagnosticsJSON(t *testing.T) {
	out, err := DiagnosticsJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "[]" {
		t.Errorf("DiagnosticsJSON(nil) = %s, want []", out)
	}

	diags := []Diagnostic{{
		Pos:      token.Position{Filename: "a.go", Line: 3, Column: 7},
		Analyzer: "maporder",
		Message:  "iteration order leaks",
	}}
	out, err = DiagnosticsJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []jsonDiagnostic
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("output does not round-trip: %v\n%s", err, out)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d diagnostics, want 1", len(decoded))
	}
	d := decoded[0]
	if d.File != "a.go" || d.Line != 3 || d.Col != 7 || d.Analyzer != "maporder" || d.Message != "iteration order leaks" {
		t.Errorf("decoded %+v does not match input", d)
	}
}
