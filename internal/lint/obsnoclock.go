package lint

import (
	"go/ast"
	"go/types"
)

// ObsNoClock enforces the "observation is free" invariant structurally
// (DESIGN.md §9): enabling tracing or metrics must not perturb the
// deterministic virtual-time execution it observes. Two checks:
//
//  1. internal/obs must stay a leaf package — it may not import the
//     engine packages (vclock, exec, core, diskmodel), so nothing in it
//     can even name a clock-advancing API.
//  2. Any callback handed to an obs API (Registry.RegisterFunc gauges,
//     or any func-typed argument to an obs function) must not reach a
//     vclock-advancing call — Clock.Sleep/SleepUntil/Go/YieldOrdered/
//     WaitSignal/Signal, Mailbox.Post/Wait, or the executor's CPU
//     charging helpers — directly or through same-package calls.
//  3. internal/obs may not read the wall clock either (time.Now and
//     friends): the telemetry primitives — the series ring, the trace
//     sampler, the OpenMetrics writer — are clock-pure leaves that take
//     every timestamp as an argument (Series' injected now func), so
//     the same code observes virtual-time runs deterministically and
//     Real-clock serving without modification.
var ObsNoClock = &Analyzer{
	Name: "obsnoclock",
	Doc: "observability must never touch the virtual clock: obs stays a leaf package " +
		"and obs callbacks (RegisterFunc gauges) may not reach clock-advancing APIs",
	Run: runObsNoClock,
}

// enginePackages may not be imported by internal/obs.
var enginePackages = []string{
	"internal/vclock",
	"internal/exec",
	"internal/core",
	"internal/diskmodel",
}

// clockAdvancingMethods are the vclock APIs that advance, charge or
// gate virtual time.
var clockAdvancingMethods = map[string]bool{
	"Sleep":        true,
	"SleepUntil":   true,
	"Go":           true,
	"Run":          true,
	"YieldOrdered": true,
	"WaitSignal":   true,
	"Signal":       true,
	"Post":         true, // Mailbox.Post
	"Wait":         true, // Mailbox.Wait
}

// cpuChargingFuncs are the executor's virtual-CPU accounting helpers;
// calling one from an observability callback would make tracing change
// the simulated timeline.
var cpuChargingFuncs = map[string]bool{
	"chargeCPU":    true,
	"chargeCPUPer": true,
	"addCPUDebt":   true,
	"flushCPU":     true,
}

func runObsNoClock(pass *Pass) error {
	if pathHasSuffix(pass.Pkg.Path(), "internal/obs") {
		for _, file := range pass.Files {
			for _, imp := range file.Imports {
				path := importPath(imp)
				for _, engine := range enginePackages {
					if pathHasSuffix(path, engine) {
						pass.Reportf(imp.Pos(),
							"internal/obs imports %s: obs must stay a leaf package so instrumentation "+
								"can never advance the virtual clock (observation-is-free, DESIGN.md §9/§11)",
							path)
					}
				}
			}
			// Clock purity inside obs itself: the telemetry primitives
			// take timestamps as arguments (e.g. the Series now func) and
			// never read the host clock, so they behave identically under
			// the virtual engine and a Real-clock ops listener.
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods are fine; only package funcs read the host clock
				}
				if funcPkgPath(fn) == "time" && wallClockFuncs[fn.Name()] {
					pass.Reportf(id.Pos(),
						"time.%s reads the wall clock inside internal/obs: telemetry primitives are "+
							"clock-pure leaves — take the timestamp as an argument (like Series' now func) "+
							"so observation stays free on the virtual clock (DESIGN.md §9/§11)",
						fn.Name())
				}
				return true
			})
		}
		return nil
	}

	reach := pass.CallGraph().Reacher(clockAPIName)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil || !pathHasSuffix(funcPkgPath(callee), "internal/obs") {
				return true
			}
			for _, arg := range call.Args {
				if culprit := reach.FromCallback(arg); culprit != "" {
					pass.Reportf(arg.Pos(),
						"callback passed to obs.%s reaches vclock-advancing API %s: "+
							"observation must be free — instrumentation cannot advance, charge or gate "+
							"the virtual clock (DESIGN.md §9/§11)",
						callee.Name(), culprit)
				}
			}
			return true
		})
	}
	return nil
}

func importPath(imp *ast.ImportSpec) string {
	path := imp.Path.Value
	if len(path) >= 2 {
		path = path[1 : len(path)-1]
	}
	return path
}

// clockAPIName classifies fn as a clock-advancing API, returning a
// human-readable name, or "".
func clockAPIName(fn *types.Func) string {
	if pathHasSuffix(funcPkgPath(fn), "internal/vclock") && clockAdvancingMethods[fn.Name()] {
		if recv := recvBaseName(fn); recv != "" {
			return "vclock." + recv + "." + fn.Name()
		}
		return "vclock." + fn.Name()
	}
	if cpuChargingFuncs[fn.Name()] && funcPkgPath(fn) != "" {
		if recv := recvBaseName(fn); recv != "" {
			return recv + "." + fn.Name()
		}
		return fn.Name()
	}
	return ""
}
