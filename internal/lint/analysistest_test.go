package lint

// analysistest-style golden harness: fixture packages live under
// testdata/src/<importpath>/, and a trailing comment
//
//	// want `regex`
//
// on a line asserts that exactly one diagnostic matching the regex is
// reported there. Fixtures typecheck for real — imports resolve to
// sibling fixture packages or to the standard library's export data —
// so the analyzers are tested against the same type information they
// see in the tree.

import (
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	stdExportsOnce sync.Once
	stdExportsMap  map[string]string
	stdExportsErr  error
)

// stdExports returns export-data files for the std packages fixtures
// import, resolved once per test binary.
func stdExports(t *testing.T) map[string]string {
	t.Helper()
	stdExportsOnce.Do(func() {
		stdExportsMap, stdExportsErr = listExports(repoRoot(),
			"time", "math/rand", "sync", "sync/atomic", "slices", "sort")
	})
	if stdExportsErr != nil {
		t.Fatalf("resolving std export data: %v", stdExportsErr)
	}
	return stdExportsMap
}

func repoRoot() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return filepath.Join(wd, "..", "..")
}

// loadTestdata typechecks every fixture package under testdata/src and
// returns the ones named by paths.
func loadTestdata(t *testing.T, paths ...string) []*Package {
	t.Helper()
	src := filepath.Join("testdata", "src")
	files := make(map[string][]string)
	err := filepath.WalkDir(src, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(src, dir)
		if err != nil {
			return err
		}
		importPath := filepath.ToSlash(rel)
		abs, err := filepath.Abs(p)
		if err != nil {
			return err
		}
		files[importPath] = append(files[importPath], abs)
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", src, err)
	}
	imp := &sourceImporter{
		fset:    token.NewFileSet(),
		files:   files,
		exports: stdExports(t),
		checked: make(map[string]*Package),
	}
	var pkgs []*Package
	for _, path := range paths {
		pkg, err := imp.check(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile("// want ((?:`[^`]*`\\s*)+)")
var wantLitRE = regexp.MustCompile("`([^`]*)`")

// collectWants scans fixture comments for want assertions.
func collectWants(t *testing.T, pkgs []*Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, lit := range wantLitRE.FindAllStringSubmatch(m[1], -1) {
						re, err := regexp.Compile(lit[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit[1], err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// runGolden applies one analyzer to the named fixture packages and
// matches its diagnostics against the want assertions.
func runGolden(t *testing.T, a *Analyzer, paths ...string) {
	t.Helper()
	runGoldenSuite(t, []*Analyzer{a}, paths...)
}

// runGoldenSuite is runGolden for analyzer combinations (allowaudit
// needs the analyzer it audits in the same run).
func runGoldenSuite(t *testing.T, analyzers []*Analyzer, paths ...string) {
	t.Helper()
	pkgs := loadTestdata(t, paths...)
	diags, err := RunAnalyzers(pkgs, analyzers)
	if err != nil {
		t.Fatalf("%s: %v", analyzers[0].Name, err)
	}
	wants := collectWants(t, pkgs)
	matched := make([]bool, len(wants))
outer:
	for _, d := range diags {
		for i, w := range wants {
			if !matched[i] && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

func TestVclockPurityGolden(t *testing.T) {
	runGolden(t, VclockPurity,
		"purity/internal/exec", "purity/internal/vclock", "purity/other")
}

func TestObsNoClockGolden(t *testing.T) {
	runGolden(t, ObsNoClock,
		"noclock/user", "noclock/internal/obs", "leafviol/internal/obs",
		"obswall/internal/obs")
}

func TestMapOrderGolden(t *testing.T) {
	runGolden(t, MapOrder,
		"maporder/mo", "maporder/internal/core", "maporder/internal/obs")
}

func TestAtomicMixGolden(t *testing.T) {
	runGolden(t, AtomicMix, "atomicmix")
}

func TestPoolLifetimeGolden(t *testing.T) {
	runGolden(t, PoolLifetime, "poollife/pl")
}

func TestLockOrderGolden(t *testing.T) {
	runGolden(t, LockOrder,
		"lockorder/internal/exec", "lockorder/internal/vclock")
}

func TestPolicyPurityGolden(t *testing.T) {
	runGolden(t, PolicyPurity, "policypurity/internal/core")
}

func TestTraceGateGolden(t *testing.T) {
	runGolden(t, TraceGate,
		"tracegate/internal/exec", "tracegate/internal/obs")
}

func TestAllowAuditGolden(t *testing.T) {
	runGoldenSuite(t, []*Analyzer{MapOrder, AllowAudit}, "allowaudit/aa")
}

// TestAllowAuditPartialRun pins the partial-run rule: a directive is
// audited only when the analyzer it names actually ran, so running a
// different analyzer over the same fixture reports nothing.
func TestAllowAuditPartialRun(t *testing.T) {
	pkgs := loadTestdata(t, "allowaudit/aa")
	diags, err := RunAnalyzers(pkgs, []*Analyzer{AtomicMix, AllowAudit})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic in partial run: %s", d)
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//lint:allow vclockpurity", []string{"vclockpurity"}},
		{"//lint:allow vclockpurity maporder", []string{"vclockpurity", "maporder"}},
		{"//lint:allow vclockpurity — host-timing benchmark", []string{"vclockpurity"}},
		{"//lint:allow vclockpurity -- reason", []string{"vclockpurity"}},
		{"//lint:allow *", []string{"*"}},
		{"//lint:allowother", nil},
		{"// ordinary comment", nil},
	}
	for _, c := range cases {
		got := parseDirective(c.text)
		if len(got) != len(c.want) {
			t.Errorf("parseDirective(%q) = %v, want %v", c.text, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseDirective(%q) = %v, want %v", c.text, got, c.want)
			}
		}
	}
}
