package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Suite is every xprsvet analyzer, in reporting order. AllowAudit
// must come last: it is a pseudo-analyzer that inspects which allow
// directives the others consumed (RunAnalyzers special-cases it).
var Suite = []*Analyzer{
	VclockPurity,
	ObsNoClock,
	MapOrder,
	AtomicMix,
	PoolLifetime,
	LockOrder,
	PolicyPurity,
	TraceGate,
	AllowAudit,
}

// governedSuffixes are the import-path suffixes of the vclock-governed
// packages: everything that executes on (or feeds work to) the virtual
// clock, where a single wall-clock read or global-rand draw silently
// breaks the byte-identical-results invariants (TestBatchSweep*,
// TestSubmitMatchesBatch, TestTraceDeterministic).
var governedSuffixes = []string{
	"internal/core",
	"internal/exec",
	"internal/diskmodel",
	"internal/vclock",
	"internal/workload",
}

// moduleRoot is the import path of the facade package, which is also
// governed (stream.go drives deterministic workload sweeps). Benchmark
// calibration code there escapes with //lint:allow vclockpurity.
const moduleRoot = "xprs"

// governedPackage reports whether pkgPath is subject to the
// virtual-clock purity invariants.
func governedPackage(pkgPath string) bool {
	if pkgPath == moduleRoot {
		return true
	}
	for _, s := range governedSuffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// pathHasSuffix reports whether pkgPath is exactly suffix or ends with
// "/"+suffix (so testdata fixtures under synthetic module roots match
// the same way the real tree does).
func pathHasSuffix(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// calleeFunc resolves the static callee of a call expression: a
// package-level function, a method (including interface methods), or
// nil for calls through function values and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package declaring fn, or
// "" for builtins.
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// recvBaseName returns the name of a method's receiver base type
// ("Real" for func (r *Real) Now()), or "" for plain functions.
func recvBaseName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
