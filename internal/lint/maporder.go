package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for range` over a map whose body feeds an
// order-sensitive sink — appending to a slice that is never sorted
// afterwards, sending on a channel, posting to a mailbox or task
// queue, or emitting trace events. Go randomizes map iteration order,
// so any such loop silently breaks the byte-identical-report
// invariants (TestBatchSweep*, TestSubmitMatchesBatch,
// TestTraceDeterministic) in a way that only reproduces occasionally.
// The fix is keyed iteration: collect keys, slices.SortFunc them, then
// iterate — or sort the collected slice before it is consumed.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "forbid map iteration that feeds reports, traces, queues or channels " +
		"without a deterministic order (sort keys or slices.SortFunc the result)",
	Run: runMapOrder,
}

// orderedSinkMethods are in-module methods whose call order is
// observable in reports or the simulated timeline.
var orderedSinkMethods = map[string]bool{
	"Instant":      true, // obs.Tracer
	"Span":         true, // obs.Tracer
	"Post":         true, // vclock.Mailbox
	"Push":         true, // core.TaskQueue
	"PushFront":    true,
	"PushFrontAll": true,
	"Emit":         true,
	"Record":       true,
	"Enqueue":      true,
}

// sortFuncs are the sort/slices package functions that impose a
// deterministic order on a collected slice.
var sortFuncs = map[string]bool{
	"Sort": true, "Slice": true, "SliceStable": true, "Stable": true,
	"Strings": true, "Ints": true, "Float64s": true,
	"SortFunc": true, "SortStableFunc": true,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok || !isMapRange(pass.TypesInfo, rng) {
					return true
				}
				checkMapRangeBody(pass, fd, rng)
				return true
			})
		}
	}
	return nil
}

func isMapRange(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRangeBody scans one map-range body for order-sensitive
// effects and reports them.
func checkMapRangeBody(pass *Pass, enclosing *ast.FuncDecl, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.RangeStmt:
			if stmt != rng && isMapRange(pass.TypesInfo, stmt) {
				return false // the nested map range gets its own visit
			}
		case *ast.SendStmt:
			pass.Reportf(stmt.Arrow,
				"channel send inside iteration over a map: map order is randomized, so receivers "+
					"observe a nondeterministic sequence (DESIGN.md §11); iterate sorted keys instead")
		case *ast.CallExpr:
			fn := calleeFunc(pass.TypesInfo, stmt)
			if fn == nil || !sinkPackage(funcPkgPath(fn)) {
				return true
			}
			if orderedSinkMethods[fn.Name()] && recvBaseName(fn) != "" {
				pass.Reportf(stmt.Pos(),
					"%s.%s called inside iteration over a map: emission order follows the randomized "+
						"map order and breaks byte-identical reports (DESIGN.md §11); iterate sorted keys instead",
					recvBaseName(fn), fn.Name())
			}
		case *ast.AssignStmt:
			checkAppendInMapRange(pass, enclosing, rng, stmt)
		}
		return true
	})
}

// checkAppendInMapRange flags `dst = append(dst, ...)` inside a map
// range when dst outlives the loop and is never sorted afterwards.
func checkAppendInMapRange(pass *Pass, enclosing *ast.FuncDecl, rng *ast.RangeStmt, assign *ast.AssignStmt) {
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass.TypesInfo, call) || i >= len(assign.Lhs) {
			continue
		}
		switch lhs := ast.Unparen(assign.Lhs[i]).(type) {
		case *ast.Ident:
			obj, ok := pass.TypesInfo.Uses[lhs].(*types.Var)
			if !ok {
				if obj, ok = pass.TypesInfo.Defs[lhs].(*types.Var); !ok {
					continue
				}
			}
			if declaredWithin(pass, obj, rng) {
				continue // loop-local scratch; its order dies with the iteration
			}
			if sortedAfter(pass, enclosing, rng, obj) {
				continue // collected then deterministically sorted: the blessed pattern
			}
			pass.Reportf(assign.Pos(),
				"append to %q inside iteration over a map without sorting it afterwards: the slice "+
					"inherits randomized map order and poisons anything it feeds (reports, queues, traces) "+
					"(DESIGN.md §11); sort it with slices.SortFunc after the loop or iterate sorted keys",
				obj.Name())
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			pass.Reportf(assign.Pos(),
				"append to escaping storage inside iteration over a map: the destination inherits "+
					"randomized map order (DESIGN.md §11); collect into a local, slices.SortFunc it, then store")
		}
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredWithin reports whether obj's declaration lies inside the
// range statement.
func declaredWithin(pass *Pass, obj *types.Var, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
}

// sortedAfter reports whether, later in the enclosing function, obj is
// passed to a sort/slices ordering function (or re-assigned from
// slices.Sorted*), which launders the nondeterministic append order.
func sortedAfter(pass *Pass, enclosing *ast.FuncDecl, rng *ast.RangeStmt, obj *types.Var) bool {
	found := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		pkg := funcPkgPath(fn)
		if (pkg != "sort" && pkg != "slices") || !sortFuncs[fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// sinkPackage reports whether methods from this package count as
// ordered sinks (the engine packages whose event/queue order is
// observable in reports and traces).
func sinkPackage(pkgPath string) bool {
	for _, s := range []string{"internal/obs", "internal/vclock", "internal/core", "internal/exec"} {
		if pathHasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}
