package lint

import (
	"go/ast"
	"go/types"
)

// CallGraph indexes the functions declared in one package and resolves
// static call (and function-value reference) edges between them. It is
// the shared interprocedural substrate of the suite: obsnoclock,
// poollifetime, lockorder, policypurity and tracegate all walk it
// rather than re-deriving receiver-method resolution per analyzer
// (DESIGN.md §16). One graph is built lazily per analyzed package and
// shared across passes.
type CallGraph struct {
	info  *types.Info
	decls map[*types.Func]*ast.FuncDecl
	funcs []*types.Func // declaration order: deterministic iteration
}

// NewCallGraph indexes every function and method declared in files.
func NewCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{
		info:  info,
		decls: make(map[*types.Func]*ast.FuncDecl),
	}
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				g.decls[fn] = fd
				g.funcs = append(g.funcs, fn)
			}
		}
	}
	return g
}

// Funcs returns every declared function in declaration order.
func (g *CallGraph) Funcs() []*types.Func { return g.funcs }

// Decl returns the declaration of fn, or nil when fn is declared
// outside the analyzed package (and therefore out of static reach).
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Callee resolves the static callee of a call expression: a
// package-level function, a method (including interface methods), or
// nil for calls through function values and type conversions.
func (g *CallGraph) Callee(call *ast.CallExpr) *types.Func {
	return calleeFunc(g.info, call)
}

// FuncRef resolves an expression that names a function or method value
// (an identifier or selector used as a value, e.g. a callback
// argument), or nil.
func (g *CallGraph) FuncRef(expr ast.Expr) *types.Func {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	fn, _ := g.info.Uses[id].(*types.Func)
	return fn
}

// Reach returns the set of in-package functions transitively reachable
// from roots. An edge is any mention of a declared function — a static
// call, or a bare reference that stores or passes the function as a
// value (the reference may be invoked later, so reachability must be
// conservative about it). Roots themselves are included.
func (g *CallGraph) Reach(roots ...*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if fn == nil || seen[fn] {
			return
		}
		seen[fn] = true
		decl := g.decls[fn]
		if decl == nil || decl.Body == nil {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if ref, ok := g.info.Uses[id].(*types.Func); ok && g.decls[ref] != nil {
				visit(ref)
			}
			return true
		})
	}
	for _, root := range roots {
		visit(root)
	}
	return seen
}

// Reacher answers "does this function (or function body) reach a
// classified API?", following static calls through functions declared
// in the analyzed package. classify maps a callee to a human-readable
// culprit name, or "" for harmless callees; results are memoized per
// function.
type Reacher struct {
	g        *CallGraph
	classify func(*types.Func) string
	memo     map[*types.Func]string // "" = does not reach; else culprit
}

// Reacher builds a memoized reachability query over the graph.
func (g *CallGraph) Reacher(classify func(*types.Func) string) *Reacher {
	return &Reacher{g: g, classify: classify, memo: make(map[*types.Func]string)}
}

// FromCallback inspects a call argument; when it is a function
// (literal, or a reference to a function or method value) that reaches
// a classified API, it returns the culprit name.
func (r *Reacher) FromCallback(arg ast.Expr) string {
	if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
		return r.bodyReaches(lit.Body, make(map[*types.Func]bool))
	}
	if fn := r.g.FuncRef(arg); fn != nil {
		return r.funcReaches(fn, make(map[*types.Func]bool))
	}
	return ""
}

// FromFunc reports the classified API reachable from fn, or "".
func (r *Reacher) FromFunc(fn *types.Func) string {
	return r.funcReaches(fn, make(map[*types.Func]bool))
}

// FromBody reports the classified API reachable from a body, or "".
func (r *Reacher) FromBody(body ast.Node) string {
	return r.bodyReaches(body, make(map[*types.Func]bool))
}

func (r *Reacher) funcReaches(fn *types.Func, seen map[*types.Func]bool) string {
	if culprit := r.classify(fn); culprit != "" {
		return culprit
	}
	if seen[fn] {
		return ""
	}
	seen[fn] = true
	if culprit, ok := r.memo[fn]; ok {
		return culprit
	}
	decl := r.g.decls[fn]
	if decl == nil || decl.Body == nil {
		return "" // declared outside this package: out of static reach
	}
	culprit := r.bodyReaches(decl.Body, seen)
	r.memo[fn] = culprit
	return culprit
}

func (r *Reacher) bodyReaches(body ast.Node, seen map[*types.Func]bool) string {
	var culprit string
	ast.Inspect(body, func(n ast.Node) bool {
		if culprit != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := r.g.Callee(call)
		if callee == nil {
			return true
		}
		if c := r.funcReaches(callee, seen); c != "" {
			culprit = c
			return false
		}
		return true
	})
	return culprit
}
