package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one fully typechecked package ready for analysis.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// Caches shared by every pass over this package: the allow-directive
	// ranges (with usage marks for allowaudit) and the call graph.
	allow map[string][]*allowRange
	graph *CallGraph
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") with
// `go list -export -deps -json` in dir, typechecks every package that
// belongs to the enclosing module from source, and resolves every other
// import (the standard library) from its compiled export data in the
// build cache. Test files are not loaded: the invariants guard engine
// code, and tests routinely host-time or randomize on purpose.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}

	// `go list -deps` emits packages in dependency order (a package
	// only after all its imports), so a single forward walk typechecks
	// module packages against already-checked dependencies.
	exports := make(map[string]string)
	fromSource := make(map[string][]string) // import path -> absolute file names
	var order []string
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Module != nil && !p.Standard {
			files := make([]string, len(p.GoFiles))
			for i, f := range p.GoFiles {
				files[i] = filepath.Join(p.Dir, f)
			}
			fromSource[p.ImportPath] = files
			order = append(order, p.ImportPath)
			continue
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	src := &sourceImporter{
		fset:    fset,
		files:   fromSource,
		exports: exports,
		checked: make(map[string]*Package),
	}
	var pkgs []*Package
	for _, path := range order {
		pkg, err := src.check(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -export -deps -json` in dir and decodes the
// package stream.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,GoFiles,Imports,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		listed = append(listed, &p)
	}
	return listed, nil
}

// listExports resolves patterns (plus their dependency closure) to
// compiled export-data files, for typechecking against packages that
// are not analyzed from source — the golden-test harness uses it to
// give fixtures a real standard library.
func listExports(dir string, patterns ...string) (map[string]string, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// sourceImporter typechecks module packages from source and everything
// else from gc export data, satisfying types.Importer for both.
type sourceImporter struct {
	fset    *token.FileSet
	files   map[string][]string // module packages: path -> source files
	exports map[string]string   // everything else: path -> export data file
	checked map[string]*Package
	gc      types.Importer
}

func (s *sourceImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := s.checked[path]; ok {
		return pkg.Types, nil
	}
	if _, ok := s.files[path]; ok {
		pkg, err := s.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if s.gc == nil {
		s.gc = importer.ForCompiler(s.fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := s.exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		})
	}
	return s.gc.Import(path)
}

// check parses and typechecks one module package from source.
func (s *sourceImporter) check(path string) (*Package, error) {
	if pkg, ok := s.checked[path]; ok {
		return pkg, nil
	}
	files, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %q is not loadable from source", path)
	}
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(s.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		syntax = append(syntax, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: s}
	tpkg, err := conf.Check(path, s.fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", path, err)
	}
	pkg := &Package{
		PkgPath:   path,
		Fset:      s.fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}
	s.checked[path] = pkg
	return pkg, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
