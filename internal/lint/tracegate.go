package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TraceGate enforces the sampled-tracing contract in the executor
// (DESIGN.md §11): every obs.Tracer.Span/Instant emission on the
// per-fragment / per-slave hot path must be dominated by a sampling
// guard — `fr.tracing()` / `q.traced` — so unsampled queries never pay
// for detail formatting or trace-buffer appends. The check is
// interprocedural: an emission inside a helper (traceInstant,
// schedEvent) is fine as long as every in-package path reaching the
// helper is itself guarded; it is flagged when some caller chain can
// reach it with no guard established.
var TraceGate = &Analyzer{
	Name: "tracegate",
	Doc: "Tracer.Span/Instant emissions in the executor must be dominated by a " +
		"tracing()/traced sampling guard on every reaching path",
	Run: runTraceGate,
}

// traceEmitters are the Tracer methods that append to the trace buffer.
var traceEmitters = map[string]bool{
	"Span":    true,
	"Instant": true,
}

// traceEmit is one direct Tracer.Span/Instant call site.
type traceEmit struct {
	pos     token.Pos
	name    string // "Span" or "Instant"
	guarded bool
}

// traceRef is one reference from a function body to an in-package
// declared function (call or bare value reference).
type traceRef struct {
	caller  *types.Func
	guarded bool
}

type traceFuncInfo struct {
	emits []traceEmit
	// refs lists every reference to an in-package declared function, in
	// source order, and whether a sampling guard dominated the site.
	refs []funcRef
}

type funcRef struct {
	callee  *types.Func
	guarded bool
}

func runTraceGate(pass *Pass) error {
	if !pathHasSuffix(pass.Pkg.Path(), "internal/exec") {
		return nil
	}
	g := pass.CallGraph()

	infos := make(map[*types.Func]*traceFuncInfo)
	refsBy := make(map[*types.Func][]traceRef)
	for _, fn := range g.Funcs() {
		decl := g.Decl(fn)
		if decl == nil || decl.Body == nil {
			continue
		}
		w := &traceWalker{pass: pass, g: g, info: &traceFuncInfo{}}
		w.walkBlock(decl.Body.List, false)
		infos[fn] = w.info
		for _, ref := range w.info.refs {
			refsBy[ref.callee] = append(refsBy[ref.callee], traceRef{caller: fn, guarded: ref.guarded})
		}
	}

	// Fixpoint: a function is reachable-unguarded when it has no
	// in-package reference at all (an entry point: called externally,
	// dynamically, or by the scheduler loop itself), or when some
	// unguarded reference site sits in a reachable-unguarded caller.
	unguarded := make(map[*types.Func]bool)
	for fn := range infos {
		if len(refsBy[fn]) == 0 {
			unguarded[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn := range infos {
			if unguarded[fn] {
				continue
			}
			for _, ref := range refsBy[fn] {
				if !ref.guarded && unguarded[ref.caller] {
					unguarded[fn] = true
					changed = true
					break
				}
			}
		}
	}

	for _, fn := range g.Funcs() {
		info := infos[fn]
		if info == nil || !unguarded[fn] {
			continue
		}
		for _, e := range info.emits {
			if e.guarded {
				continue
			}
			pass.Reportf(e.pos,
				"Tracer.%s emission reachable with no sampling guard: per-fragment/per-slave "+
					"trace emission must be dominated by a tracing()/traced check on every path "+
					"so unsampled queries never pay for detail formatting (DESIGN.md §16)", e.name)
		}
	}
	return nil
}

// traceWalker walks one function body tracking whether a sampling
// guard dominates the current statement.
type traceWalker struct {
	pass *Pass
	g    *CallGraph
	info *traceFuncInfo
}

func (w *traceWalker) walkBlock(stmts []ast.Stmt, guarded bool) {
	for _, st := range stmts {
		guarded = w.walkStmt(st, guarded)
	}
}

// walkStmt processes one statement and returns the guard state for the
// statements that follow it (an `if !tracing() { return }` early exit
// leaves the rest of the block guarded).
func (w *traceWalker) walkStmt(st ast.Stmt, guarded bool) bool {
	switch s := st.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, guarded)
		}
		w.scan(s.Cond, guarded)
		g := guarded || hasGuardToken(s.Cond)
		w.walkStmt(s.Body, g)
		if s.Else != nil {
			w.walkStmt(s.Else, guarded)
		}
		if g && !guarded && blockTerminates(s.Body) {
			return true
		}
	case *ast.BlockStmt:
		w.walkBlock(s.List, guarded)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, guarded)
		}
		if s.Cond != nil {
			w.scan(s.Cond, guarded)
		}
		if s.Post != nil {
			w.walkStmt(s.Post, guarded)
		}
		w.walkBlock(s.Body.List, guarded)
	case *ast.RangeStmt:
		w.scan(s.X, guarded)
		w.walkBlock(s.Body.List, guarded)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, guarded)
		}
		if s.Tag != nil {
			w.scan(s.Tag, guarded)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			g := guarded
			for _, e := range cc.List {
				w.scan(e, guarded)
				if hasGuardToken(e) {
					g = true
				}
			}
			w.walkBlock(cc.Body, g)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, guarded)
		}
		w.walkStmt(s.Assign, guarded)
		for _, c := range s.Body.List {
			w.walkBlock(c.(*ast.CaseClause).Body, guarded)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.walkStmt(cc.Comm, guarded)
			}
			w.walkBlock(cc.Body, guarded)
		}
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, guarded)
	default:
		w.scan(st, guarded)
	}
	return guarded
}

// scan records Tracer emissions and in-package function references in a
// leaf statement or expression under the given guard state.
func (w *traceWalker) scan(n ast.Node, guarded bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(w.pass.TypesInfo, n); fn != nil &&
				traceEmitters[fn.Name()] && recvBaseName(fn) == "Tracer" &&
				pathHasSuffix(funcPkgPath(fn), "internal/obs") {
				w.info.emits = append(w.info.emits, traceEmit{pos: n.Pos(), name: fn.Name(), guarded: guarded})
			}
		case *ast.Ident:
			if fn, ok := w.pass.TypesInfo.Uses[n].(*types.Func); ok && w.g.Decl(fn) != nil {
				w.info.refs = append(w.info.refs, funcRef{callee: fn, guarded: guarded})
			}
		}
		return true
	})
}

// hasGuardToken reports whether the expression mentions the sampling
// guard idiom: the `traced` flag (q.traced, fr.traced) or a call to a
// method named `tracing`.
func hasGuardToken(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if n.Name == "traced" {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "tracing" {
				found = true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "tracing" {
				found = true
			}
		}
		return !found
	})
	return found
}
