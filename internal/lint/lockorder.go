package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder enforces the stripe-mutex discipline in exec and storage.
// A "stripe" is a struct carrying a sync.Mutex that appears as a
// slice/array element (intakeShard in the scheduler, poolShard in the
// buffer pool): many instances, hashed into by concurrent callers, so
// lock-ordering bugs between them deadlock only under contention and
// never in deterministic tests. Three rules:
//
//  1. no two distinct stripes held at once — a stripe is a leaf lock.
//     The one sanctioned multi-acquire is registerIDs' idiom: a single
//     loop over an index slice that was slices.Sort-ed first, which
//     makes the textual acquire site identical (and the order globally
//     consistent) across iterations.
//  2. a loop that acquires stripe locks over a local index slice must
//     sort that slice first; otherwise two concurrent multi-acquires
//     can interleave in opposite orders and deadlock.
//  3. no blocking operation under a stripe lock — channel send/recv,
//     select, vclock Mailbox.Post/Wait, Clock.Sleep/WaitSignal,
//     handle.Wait, or any in-package call that transitively reaches
//     one. A blocked stripe holder stalls every submitter hashed to
//     that stripe (and under the virtual clock can deadlock the whole
//     simulation, since the blocked goroutine still holds a lock the
//     waking path needs).
//
// Deliberate exceptions (the Submit doorbell, whose Post must stay
// inside the critical section for the Drain ordering protocol) escape
// with a justified //lint:allow lockorder.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "stripe (sharded) mutexes are leaf locks: never hold two at once, sort " +
		"multi-acquire index loops, and never block (channels, Mailbox, Wait) under one",
	Run: runLockOrder,
}

// blockingVclockMethods are the vclock APIs that can park the calling
// goroutine (or, for Post, hand off through a channel).
var blockingVclockMethods = map[string]bool{
	"Post":         true, // Mailbox.Post
	"Wait":         true, // Mailbox.Wait
	"TryWait":      true,
	"WaitSignal":   true,
	"Sleep":        true,
	"SleepUntil":   true,
	"YieldOrdered": true,
	"Run":          true,
}

func runLockOrder(pass *Pass) error {
	path := pass.Pkg.Path()
	if !pathHasSuffix(path, "internal/exec") && !pathHasSuffix(path, "internal/storage") {
		return nil
	}
	g := pass.CallGraph()
	stripes := stripeTypes(pass.Pkg)
	if len(stripes) == 0 {
		return nil
	}

	// Per-function facts for the interprocedural rules: which declared
	// functions contain a raw channel operation, and which acquire a
	// stripe lock directly.
	chanOp := make(map[*types.Func]bool)
	locksStripe := make(map[*types.Func]bool)
	for _, fn := range g.Funcs() {
		decl := g.Decl(fn)
		if decl == nil || decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
				return false
			case *ast.SendStmt, *ast.SelectStmt:
				chanOp[fn] = true
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					chanOp[fn] = true
				}
			case *ast.CallExpr:
				if op, _, ok := stripeLockOp(pass.TypesInfo, stripes, n); ok && op != "Unlock" {
					locksStripe[fn] = true
				}
			}
			return true
		})
	}
	blockReach := g.Reacher(func(fn *types.Func) string {
		if pathHasSuffix(funcPkgPath(fn), "internal/vclock") && blockingVclockMethods[fn.Name()] {
			if recv := recvBaseName(fn); recv != "" {
				return "vclock." + recv + "." + fn.Name()
			}
			return "vclock." + fn.Name()
		}
		if chanOp[fn] {
			return "a channel operation in " + fn.Name()
		}
		return ""
	})
	stripeReach := g.Reacher(func(fn *types.Func) string {
		if locksStripe[fn] {
			return fn.Name()
		}
		return ""
	})

	for _, fn := range g.Funcs() {
		decl := g.Decl(fn)
		if decl == nil || decl.Body == nil {
			continue
		}
		w := &lockWalker{
			pass:        pass,
			g:           g,
			stripes:     stripes,
			blockReach:  blockReach,
			stripeReach: stripeReach,
			decl:        decl,
		}
		w.walkList(decl.Body.List, map[string]token.Pos{})
	}
	return nil
}

// stripeTypes finds the package's stripe structs: named struct types
// with a sync.Mutex/RWMutex field that some other in-package struct
// embeds as a slice or array element.
func stripeTypes(pkg *types.Package) map[*types.Named]bool {
	var mutexed []*types.Named
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if isSyncMutex(st.Field(i).Type()) {
				mutexed = append(mutexed, named)
				break
			}
		}
	}
	out := make(map[*types.Named]bool)
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			elem := sliceElem(st.Field(i).Type())
			if elem == nil {
				continue
			}
			for _, m := range mutexed {
				if types.Identical(elem, m) {
					out[m] = true
				}
			}
		}
	}
	return out
}

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

func sliceElem(t types.Type) types.Type {
	switch t := t.Underlying().(type) {
	case *types.Slice:
		return t.Elem()
	case *types.Array:
		return t.Elem()
	}
	return nil
}

// stripeLockOp classifies call as a Lock/TryLock/Unlock on a mutex
// field of a stripe struct, returning the op name and a stable textual
// key for the lock-holder expression ("sh", "s.shards[ix]").
func stripeLockOp(info *types.Info, stripes map[*types.Named]bool, call *ast.CallExpr) (op, key string, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil || funcPkgPath(fn) != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "TryLock", "RLock":
		op = "Lock"
		if fn.Name() == "TryLock" {
			op = "TryLock"
		}
	case "Unlock", "RUnlock":
		op = "Unlock"
	default:
		return "", "", false
	}
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	mutexExpr, okSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false // a bare mutex variable is not a stripe field
	}
	base := mutexExpr.X
	tv, okT := info.Types[base]
	if !okT || tv.Type == nil {
		return "", "", false
	}
	t := tv.Type
	if p, okP := t.(*types.Pointer); okP {
		t = p.Elem()
	}
	named, okN := t.(*types.Named)
	if !okN || !stripes[named] {
		return "", "", false
	}
	return op, exprKey(base), true
}

// exprKey renders an expression as a stable identity string for
// held-lock tracking.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprKey(e.X) + "[" + exprKey(e.Index) + "]"
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.UnaryExpr:
		return exprKey(e.X)
	case *ast.CallExpr:
		return exprKey(e.Fun) + "()"
	case *ast.BasicLit:
		return e.Value
	}
	return fmt.Sprintf("expr@%d", e.Pos())
}

// lockWalker tracks held stripe locks through one function body.
type lockWalker struct {
	pass        *Pass
	g           *CallGraph
	stripes     map[*types.Named]bool
	blockReach  *Reacher
	stripeReach *Reacher
	decl        *ast.FuncDecl
	loops       []ast.Stmt // enclosing for/range statements, innermost last
}

func (w *lockWalker) walkList(list []ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	for _, stmt := range list {
		held = w.walkStmt(stmt, held)
	}
	return held
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	switch s := stmt.(type) {
	case *ast.DeferStmt:
		// A deferred Unlock releases at return; the lock stays held for
		// the rest of the body, so leave state untouched and skip the
		// deferred call itself.
		return held
	case *ast.BlockStmt:
		return w.walkList(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.scan(s.Cond, held)
		thenHeld := w.walkList(s.Body.List, copyHeld(held))
		var elseHeld map[string]token.Pos
		elseTerm := true
		if s.Else != nil {
			elseHeld = w.walkStmt(s.Else, copyHeld(held))
			elseTerm = stmtTerminates(s.Else)
		}
		// Adopt the effects of a branch the fall-through path actually
		// merges with (the TryLock-fallback Lock must persist; a branch
		// ending in return contributes nothing downstream).
		if !blockTerminates(s.Body) {
			return thenHeld
		}
		if s.Else != nil && !elseTerm {
			return elseHeld
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.scan(s.Cond, held)
		w.loops = append(w.loops, s)
		bodyHeld := w.walkList(s.Body.List, copyHeld(held))
		w.loops = w.loops[:len(w.loops)-1]
		if !blockTerminates(s.Body) {
			return bodyHeld
		}
		return held
	case *ast.RangeStmt:
		w.scan(s.X, held)
		w.loops = append(w.loops, s)
		bodyHeld := w.walkList(s.Body.List, copyHeld(held))
		w.loops = w.loops[:len(w.loops)-1]
		if !blockTerminates(s.Body) {
			return bodyHeld
		}
		return held
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		w.scan(stmt, held) // tags and case bodies: scan conservatively in place
		return held
	case *ast.SelectStmt:
		if len(held) > 0 {
			w.reportBlocking(s.Pos(), "select statement", held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				w.walkList(cc.Body, copyHeld(held))
			}
		}
		return held
	case *ast.SendStmt:
		if len(held) > 0 {
			w.reportBlocking(s.Arrow, "channel send", held)
		}
		w.scan(s.Value, held)
		return held
	default:
		w.scan(stmt, held)
		return held
	}
}

// scan applies lock events and checks blocking/nested-acquire hazards
// in an expression (or simple-statement) subtree, in source order.
func (w *lockWalker) scan(n ast.Node, held map[string]token.Pos) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			if len(held) > 0 {
				w.reportBlocking(n.Arrow, "channel send", held)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				w.reportBlocking(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			w.scanCall(n, held)
		}
		return true
	})
}

func (w *lockWalker) scanCall(call *ast.CallExpr, held map[string]token.Pos) {
	if op, key, ok := stripeLockOp(w.pass.TypesInfo, w.stripes, call); ok {
		switch op {
		case "Lock", "TryLock":
			if _, same := held[key]; !same && len(held) > 0 {
				w.pass.Reportf(call.Pos(),
					"stripe mutex %s.mu acquired while stripe %s.mu is already held: stripes are "+
						"leaf locks — hold at most one, or use the sorted ascending index loop idiom "+
						"(registerIDs) for multi-shard sections (DESIGN.md §16)",
					key, minKey(held))
			}
			w.checkSortedLoopAcquire(call)
			held[key] = call.Pos()
		case "Unlock":
			delete(held, key)
		}
		return
	}
	if len(held) == 0 {
		return
	}
	callee := w.g.Callee(call)
	if callee == nil {
		return
	}
	if culprit := w.blockReach.FromFunc(callee); culprit != "" {
		what := "call reaching " + culprit
		if w.blockReach.classify(callee) != "" {
			what = "call to " + culprit // the callee itself is the blocking API
		}
		w.reportBlocking(call.Pos(), what, held)
		return
	}
	if w.g.Decl(callee) != nil {
		if locker := w.stripeReach.FromFunc(callee); locker != "" {
			w.pass.Reportf(call.Pos(),
				"call reaches %s, which acquires a stripe mutex, while a stripe lock is already "+
					"held: nested stripe acquisition through calls can deadlock against the sorted "+
					"multi-acquire path (DESIGN.md §16)",
				locker)
		}
	}
}

// checkSortedLoopAcquire enforces rule 2: a stripe acquire inside a
// range over a function-local index slice requires the slice to have
// been sorted earlier in the function.
func (w *lockWalker) checkSortedLoopAcquire(call *ast.CallExpr) {
	if len(w.loops) == 0 {
		return
	}
	rng, ok := w.loops[len(w.loops)-1].(*ast.RangeStmt)
	if !ok {
		return
	}
	id, ok := ast.Unparen(rng.X).(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := w.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Parent() == obj.Pkg().Scope() {
		return // package-level or field-backed slices iterate in index order
	}
	if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
		return
	}
	if sortedBeforePos(w.pass, w.decl, obj, rng.Pos()) {
		return
	}
	w.pass.Reportf(call.Pos(),
		"stripe mutexes acquired in a loop over %q, which is not sorted before the loop: "+
			"concurrent multi-acquires in different orders deadlock — slices.Sort the index "+
			"slice first (the registerIDs idiom, DESIGN.md §16)",
		obj.Name())
}

// sortedBeforePos reports whether obj is passed to a sort/slices
// ordering function before pos in the enclosing function.
func sortedBeforePos(pass *Pass, decl *ast.FuncDecl, obj *types.Var, pos token.Pos) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		pkg := funcPkgPath(fn)
		if (pkg != "sort" && pkg != "slices") || !sortFuncs[fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

func (w *lockWalker) reportBlocking(pos token.Pos, what string, held map[string]token.Pos) {
	w.pass.Reportf(pos,
		"%s while stripe mutex %s.mu is held: a blocked stripe holder stalls every "+
			"caller hashed to that stripe and can deadlock the virtual clock — move the "+
			"blocking operation outside the critical section (DESIGN.md §16)",
		what, minKey(held))
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// minKey picks the lexically smallest held key so reports stay
// deterministic regardless of map iteration order.
func minKey(held map[string]token.Pos) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

func blockTerminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return blockTerminates(s)
	case *ast.IfStmt:
		return blockTerminates(s.Body) && s.Else != nil && stmtTerminates(s.Else)
	}
	return false
}
