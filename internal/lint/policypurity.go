package lint

import (
	"go/ast"
	"go/types"
)

// PolicyPurity guards the pluggable scheduling surface (DESIGN.md §15):
// every implementation of core.QueuePolicy or exec.AdmissionPolicy —
// current and future, detected by interface satisfaction rather than a
// name list — must stay deterministic and vclock-pure, because policy
// decisions feed the simulated timeline directly. Transitively (over
// the shared call graph), policy methods may not:
//
//   - read the wall clock (time.Now and friends) or draw from the
//     global math/rand generator — byte-identical replays break;
//   - spawn goroutines — a policy that races its own bookkeeping makes
//     admission order schedule-dependent;
//   - pick through map iteration — returning, breaking, or mutating
//     state reached outside the loop from inside a map range makes the
//     chosen query follow Go's randomized map order. The blessed
//     collect-append-then-slices.Sort pattern (simMix) stays allowed.
var PolicyPurity = &Analyzer{
	Name: "policypurity",
	Doc: "QueuePolicy/AdmissionPolicy implementations must be deterministic: no wall " +
		"clock, no global rand, no goroutine spawns, no map-range-ordered picks",
	Run: runPolicyPurity,
}

// policyInterfaces are the scheduling extension points, located by
// declaring-package suffix so fixture packages resolve the same way
// the real tree does.
var policyInterfaces = []struct{ pkgSuffix, name string }{
	{"internal/core", "QueuePolicy"},
	{"internal/exec", "AdmissionPolicy"},
}

func runPolicyPurity(pass *Pass) error {
	ifaces := visiblePolicyInterfaces(pass.Pkg)
	if len(ifaces) == 0 {
		return nil
	}
	impls := policyImpls(pass.Pkg, ifaces)
	if len(impls) == 0 {
		return nil
	}
	g := pass.CallGraph()
	var roots []*types.Func
	for _, fn := range g.Funcs() {
		if impls[recvBaseName(fn)] {
			roots = append(roots, fn)
		}
	}
	reach := g.Reach(roots...)
	for _, fn := range g.Funcs() {
		if !reach[fn] {
			continue
		}
		decl := g.Decl(fn)
		if decl == nil || decl.Body == nil {
			continue
		}
		checkPolicyBody(pass, decl)
	}
	return nil
}

// visiblePolicyInterfaces resolves the policy interface types
// reachable from this package (declared here or in a direct import).
func visiblePolicyInterfaces(pkg *types.Package) []*types.Interface {
	var out []*types.Interface
	candidates := append([]*types.Package{pkg}, pkg.Imports()...)
	for _, want := range policyInterfaces {
		for _, p := range candidates {
			if !pathHasSuffix(p.Path(), want.pkgSuffix) {
				continue
			}
			tn, ok := p.Scope().Lookup(want.name).(*types.TypeName)
			if !ok {
				continue
			}
			if iface, ok := tn.Type().Underlying().(*types.Interface); ok && iface.NumMethods() > 0 {
				out = append(out, iface)
			}
		}
	}
	return out
}

// policyImpls returns the receiver base names of this package's named
// non-interface types satisfying any policy interface (by value or
// pointer receiver).
func policyImpls(pkg *types.Package, ifaces []*types.Interface) map[string]bool {
	out := make(map[string]bool)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.IsInterface(t) {
			continue
		}
		for _, iface := range ifaces {
			if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
				out[name] = true
				break
			}
		}
	}
	return out
}

// checkPolicyBody scans one policy-reachable function for the banned
// constructs.
func checkPolicyBody(pass *Pass, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"goroutine spawned in code reachable from a scheduling policy: policy decisions "+
					"must be deterministic — racing bookkeeping makes admission order "+
					"schedule-dependent (DESIGN.md §16)")
		case *ast.RangeStmt:
			if isMapRange(pass.TypesInfo, n) {
				checkPolicyMapRange(pass, decl, n)
			}
		case *ast.Ident:
			fn, ok := pass.TypesInfo.Uses[n].(*types.Func)
			if !ok {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch funcPkgPath(fn) {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(n.Pos(),
						"time.%s reached from a scheduling policy: policies must be replayable "+
							"byte-identically, so all time flows through the scheduler's clock "+
							"(DESIGN.md §16)", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededRandConstructors[fn.Name()] {
					pass.Reportf(n.Pos(),
						"%s.%s reached from a scheduling policy: the global generator breaks "+
							"deterministic replay — plumb a seeded *rand.Rand through the policy "+
							"instead (DESIGN.md §16)", funcPkgPath(fn), fn.Name())
				}
			}
		}
		return true
	})
}

// checkPolicyMapRange flags order-dependent picks inside a map range:
// returning from the loop, breaking out of it, or assigning to state
// declared outside it (except the blessed collect-then-sort append).
func checkPolicyMapRange(pass *Pass, enclosing *ast.FuncDecl, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if n != rng && isMapRange(pass.TypesInfo, n) {
				return false // nested map range gets its own visit
			}
		case *ast.ReturnStmt:
			pass.Reportf(n.Pos(),
				"return from inside a map range in policy code: a first-match pick follows "+
					"Go's randomized map order — collect candidates, slices.Sort them, then pick "+
					"(DESIGN.md §16)")
		case *ast.BranchStmt:
			if n.Tok.String() == "break" {
				pass.Reportf(n.Pos(),
					"break out of a map range in policy code: an early-exit pick follows Go's "+
						"randomized map order — collect candidates, slices.Sort them, then pick "+
						"(DESIGN.md §16)")
			}
		case *ast.AssignStmt:
			checkPolicyOuterAssign(pass, enclosing, rng, n)
		}
		return true
	})
}

func checkPolicyOuterAssign(pass *Pass, enclosing *ast.FuncDecl, rng *ast.RangeStmt, assign *ast.AssignStmt) {
	for i, lhs := range assign.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			if obj, ok = pass.TypesInfo.Defs[id].(*types.Var); !ok {
				continue
			}
		}
		if declaredWithin(pass, obj, rng) {
			continue // loop-local scratch
		}
		// The blessed pattern: append into a collector that is sorted
		// after the loop.
		if i < len(assign.Rhs) || len(assign.Rhs) == 1 {
			ri := i
			if len(assign.Rhs) == 1 {
				ri = 0
			}
			if call, okC := ast.Unparen(assign.Rhs[ri]).(*ast.CallExpr); okC &&
				isBuiltinAppend(pass.TypesInfo, call) && sortedAfter(pass, enclosing, rng, obj) {
				continue
			}
		}
		pass.Reportf(assign.Pos(),
			"assignment to %q (declared outside the loop) inside a map range in policy code: "+
				"the final value depends on Go's randomized map order — collect into a slice, "+
				"slices.Sort it, then reduce (DESIGN.md §16)", obj.Name())
	}
}
