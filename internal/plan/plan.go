// Package plan represents XPRS sequential execution plans and their
// decomposition into plan fragments.
//
// A sequential plan is a binary tree of the basic relational operations
// (§2.1): sequential scan, index scan, nestloop join, merge join and hash
// join. The parallelizer decomposes a plan at its blocking edges — edges
// where one operation must wait for the other to finish producing all its
// tuples — into plan fragments, the maximal pipelineable subgraphs. Plan
// fragments are the units of parallel execution; they are the "tasks"
// fed to the scheduler.
//
// Blocking edges in this node algebra arise at:
//   - the output of a Sort (its parent cannot start until the sort ends),
//   - the build side of a HashJoin (probing waits for the full table),
//   - the output of a Material (explicit materialization for rescans).
//
// Decompose rewrites the plan, replacing each cut subtree with a FragScan
// leaf referring to the producing fragment, and returns the fragment
// dependency graph.
package plan

import (
	"fmt"
	"strings"

	"xprs/internal/btree"
	"xprs/internal/expr"
	"xprs/internal/storage"
)

// Node is one operator of a sequential plan tree.
type Node interface {
	// OutSchema is the schema of the tuples the node produces.
	OutSchema() storage.Schema
	// Children returns the input operators, outer (left) first.
	Children() []Node
	// Label renders a one-line description for EXPLAIN output.
	Label() string
}

// SeqScan reads a base relation page by page, applying an optional
// qualification. Parallelized by page partitioning.
type SeqScan struct {
	Rel    *storage.Relation
	Filter expr.Expr
}

// OutSchema implements Node.
func (s *SeqScan) OutSchema() storage.Schema { return s.Rel.Schema }

// Children implements Node.
func (s *SeqScan) Children() []Node { return nil }

// Label implements Node.
func (s *SeqScan) Label() string {
	if s.Filter != nil {
		return fmt.Sprintf("SeqScan(%s) filter: %s", s.Rel.Name, s.Filter.String())
	}
	return fmt.Sprintf("SeqScan(%s)", s.Rel.Name)
}

// IndexScan reads tuples whose indexed key lies in [Lo, Hi], following
// index pointers to heap pages. Parallelized by range partitioning.
type IndexScan struct {
	Rel    *storage.Relation
	Index  *btree.Index
	Lo, Hi int32
	Filter expr.Expr // residual qualification beyond the key range
}

// OutSchema implements Node.
func (s *IndexScan) OutSchema() storage.Schema { return s.Rel.Schema }

// Children implements Node.
func (s *IndexScan) Children() []Node { return nil }

// Label implements Node.
func (s *IndexScan) Label() string {
	l := fmt.Sprintf("IndexScan(%s.%s in [%d,%d])", s.Rel.Name, s.Index.KeyColumn(), s.Lo, s.Hi)
	if s.Filter != nil {
		l += " filter: " + s.Filter.String()
	}
	return l
}

// FragScan reads the materialized output of another fragment. Created by
// Decompose; it never appears in optimizer-built trees.
type FragScan struct {
	Frag   *Fragment
	Schema storage.Schema
}

// OutSchema implements Node.
func (s *FragScan) OutSchema() storage.Schema { return s.Schema }

// Children implements Node.
func (s *FragScan) Children() []Node { return nil }

// Label implements Node.
func (s *FragScan) Label() string { return fmt.Sprintf("FragScan(f%d)", s.Frag.ID) }

// NestLoop joins by rescanning the inner input for every outer tuple.
// The inner child must be rescannable: a scan leaf or a Material.
type NestLoop struct {
	Outer, Inner Node
	Pred         expr.Expr // over the concatenated (outer, inner) schema
}

// OutSchema implements Node.
func (j *NestLoop) OutSchema() storage.Schema {
	return j.Outer.OutSchema().Concat(j.Inner.OutSchema())
}

// Children implements Node.
func (j *NestLoop) Children() []Node { return []Node{j.Outer, j.Inner} }

// Label implements Node.
func (j *NestLoop) Label() string {
	if j.Pred != nil {
		return "NestLoop on " + j.Pred.String()
	}
	return "NestLoop (cartesian)"
}

// HashJoin builds a hash table on its right child's RCol and probes it
// with left tuples' LCol. The build edge is blocking.
type HashJoin struct {
	Left, Right Node
	LCol, RCol  int
}

// OutSchema implements Node.
func (j *HashJoin) OutSchema() storage.Schema {
	return j.Left.OutSchema().Concat(j.Right.OutSchema())
}

// Children implements Node.
func (j *HashJoin) Children() []Node { return []Node{j.Left, j.Right} }

// Label implements Node.
func (j *HashJoin) Label() string {
	return fmt.Sprintf("HashJoin L.$%d = R.$%d (build right)", j.LCol, j.RCol)
}

// MergeJoin merges two inputs sorted on the join columns. The optimizer
// places Sort nodes under it as needed.
type MergeJoin struct {
	Left, Right Node
	LCol, RCol  int
}

// OutSchema implements Node.
func (j *MergeJoin) OutSchema() storage.Schema {
	return j.Left.OutSchema().Concat(j.Right.OutSchema())
}

// Children implements Node.
func (j *MergeJoin) Children() []Node { return []Node{j.Left, j.Right} }

// Label implements Node.
func (j *MergeJoin) Label() string {
	return fmt.Sprintf("MergeJoin L.$%d = R.$%d", j.LCol, j.RCol)
}

// Sort orders its input by one int4 column. Its output edge is blocking.
type Sort struct {
	Child Node
	Col   int
}

// OutSchema implements Node.
func (s *Sort) OutSchema() storage.Schema { return s.Child.OutSchema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// Label implements Node.
func (s *Sort) Label() string { return fmt.Sprintf("Sort by $%d", s.Col) }

// Material materializes its input so a NestLoop can rescan it cheaply.
// Its output edge is blocking.
type Material struct {
	Child Node
}

// OutSchema implements Node.
func (m *Material) OutSchema() storage.Schema { return m.Child.OutSchema() }

// Children implements Node.
func (m *Material) Children() []Node { return []Node{m.Child} }

// Label implements Node.
func (m *Material) Label() string { return "Material" }

// Walk visits n and all descendants pre-order.
func Walk(n Node, fn func(Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// Explain renders the plan tree, one node per line, indented by depth.
func Explain(n Node) string {
	var b strings.Builder
	var rec func(Node, int)
	rec = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Label())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}

// Validate checks structural invariants the executor relies on:
// NestLoop inners are rescannable, MergeJoin inputs are sorted on the
// join columns, join columns are in range, and column types are int4
// where sort/hash/merge require it.
func Validate(n Node) error {
	switch x := n.(type) {
	case *SeqScan, *FragScan:
	case *IndexScan:
		if x.Lo > x.Hi {
			return fmt.Errorf("plan: IndexScan range [%d,%d] is empty", x.Lo, x.Hi)
		}
	case *NestLoop:
		switch inner := x.Inner.(type) {
		case *SeqScan, *IndexScan, *FragScan, *Material:
			_ = inner
		default:
			return fmt.Errorf("plan: NestLoop inner %T is not rescannable", x.Inner)
		}
	case *HashJoin:
		if err := checkJoinCols(x.Left, x.Right, x.LCol, x.RCol); err != nil {
			return fmt.Errorf("plan: HashJoin: %w", err)
		}
	case *MergeJoin:
		if err := checkJoinCols(x.Left, x.Right, x.LCol, x.RCol); err != nil {
			return fmt.Errorf("plan: MergeJoin: %w", err)
		}
		if !sortedOn(x.Left, x.LCol) {
			return fmt.Errorf("plan: MergeJoin left input not sorted on $%d", x.LCol)
		}
		if !sortedOn(x.Right, x.RCol) {
			return fmt.Errorf("plan: MergeJoin right input not sorted on $%d", x.RCol)
		}
	case *Sort:
		if x.Col < 0 || x.Col >= x.Child.OutSchema().Len() {
			return fmt.Errorf("plan: Sort column $%d out of range", x.Col)
		}
		if x.Child.OutSchema().Cols[x.Col].Typ != storage.Int4 {
			return fmt.Errorf("plan: Sort column $%d is not int4", x.Col)
		}
	case *Material:
	case *Agg:
		if err := validateAgg(x); err != nil {
			return err
		}
	default:
		return fmt.Errorf("plan: unknown node %T", n)
	}
	for _, c := range n.Children() {
		if err := Validate(c); err != nil {
			return err
		}
	}
	return nil
}

func checkJoinCols(l, r Node, lc, rc int) error {
	if lc < 0 || lc >= l.OutSchema().Len() {
		return fmt.Errorf("left column $%d out of range", lc)
	}
	if rc < 0 || rc >= r.OutSchema().Len() {
		return fmt.Errorf("right column $%d out of range", rc)
	}
	if l.OutSchema().Cols[lc].Typ != storage.Int4 || r.OutSchema().Cols[rc].Typ != storage.Int4 {
		return fmt.Errorf("join columns must be int4")
	}
	return nil
}

// sortedOn reports whether a node's output is known-sorted on col.
func sortedOn(n Node, col int) bool {
	switch x := n.(type) {
	case *Sort:
		return x.Col == col
	case *FragScan:
		return x.Frag != nil && x.Frag.Out == SortedOut && x.Frag.SortCol == col
	case *IndexScan:
		// Index scans emit in key order.
		return x.Index != nil && x.Index.Col == col
	default:
		return false
	}
}
