package plan

import (
	"fmt"
	"strings"
)

// OutKind describes how a fragment's output is consumed.
type OutKind int

const (
	// RootOut is the query's final result stream.
	RootOut OutKind = iota
	// TempOut materializes into an unordered temporary.
	TempOut
	// SortedOut materializes into a temporary sorted on SortCol.
	SortedOut
	// HashOut materializes into a hash table keyed on HashCol, consumed
	// by a HashJoin probe in the parent fragment.
	HashOut
)

// String implements fmt.Stringer.
func (k OutKind) String() string {
	switch k {
	case RootOut:
		return "root"
	case TempOut:
		return "temp"
	case SortedOut:
		return "sorted-temp"
	case HashOut:
		return "hash-table"
	default:
		return fmt.Sprintf("OutKind(%d)", int(k))
	}
}

// Fragment is one plan fragment: a maximal pipelineable operator subtree,
// the paper's unit of parallel execution (a "task"). Its Root tree
// contains no blocking edges; all blocking inputs have been replaced by
// FragScan leaves referencing the producing fragments listed in Inputs.
type Fragment struct {
	ID     int
	Root   Node
	Inputs []*Fragment
	Out    OutKind
	// SortCol is the output order column when Out == SortedOut.
	SortCol int
	// HashCol is the key column (in the fragment's output schema) when
	// Out == HashOut.
	HashCol int
	// HashParts is the build-side radix partition count hint when Out ==
	// HashOut; 0 lets the executor choose. Cost estimation stamps it from
	// the estimated build cardinality (see SuggestHashParts). Like the
	// executor's batch size it is purely a wall-clock knob: results and
	// virtual-clock totals are independent of its value.
	HashParts int
}

// SuggestHashParts picks a build-side partition count from the estimated
// build cardinality: roughly one partition per 4K build rows keeps each
// partition's open-addressed table cache-resident, clamped to [1, 64]
// and rounded to a power of two by the executor.
func SuggestHashParts(rows float64) int {
	parts := 1
	for parts < 64 && rows > 4096*float64(parts) {
		parts *= 2
	}
	return parts
}

// Ready reports whether all input fragments are in the done set.
func (f *Fragment) Ready(done map[int]bool) bool {
	for _, in := range f.Inputs {
		if !done[in.ID] {
			return false
		}
	}
	return true
}

// Graph is the fragment dependency DAG of one plan. Fragments are listed
// in a valid bottom-up execution order (inputs before consumers); Root is
// always the last entry.
type Graph struct {
	Fragments []*Fragment
	Root      *Fragment
}

// Decompose cuts a sequential plan at its blocking edges and returns the
// fragment graph. The input tree is not modified; cut points are
// reconstructed with FragScan leaves in fresh parent nodes.
func Decompose(root Node) (*Graph, error) {
	if err := Validate(root); err != nil {
		return nil, err
	}
	g := &Graph{}
	f, err := g.newFragment(root, RootOut, 0)
	if err != nil {
		return nil, err
	}
	g.Root = f
	return g, nil
}

// newFragment creates the fragment whose pipeline is rooted at n. If n is
// itself a blocking node (Sort, Material), it stays the fragment's root:
// a Sort pipelines with its input and blocks its consumer.
func (g *Graph) newFragment(n Node, out OutKind, meta int) (*Fragment, error) {
	f := &Fragment{Out: out}
	switch out {
	case SortedOut:
		f.SortCol = meta
	case HashOut:
		f.HashCol = meta
	}
	rewritten, err := g.rewrite(n, f, true)
	if err != nil {
		return nil, err
	}
	f.Root = rewritten
	f.ID = len(g.Fragments)
	g.Fragments = append(g.Fragments, f)
	return f, nil
}

// rewrite copies the pipelined part of the subtree at n into fragment f,
// creating child fragments at blocking edges. atRoot marks n as the
// fragment's own root, where a Sort/Material is absorbed rather than cut.
func (g *Graph) rewrite(n Node, f *Fragment, atRoot bool) (Node, error) {
	switch x := n.(type) {
	case *SeqScan:
		return x, nil
	case *IndexScan:
		return x, nil
	case *FragScan:
		return nil, fmt.Errorf("plan: FragScan in optimizer tree")
	case *Sort:
		if atRoot {
			child, err := g.rewrite(x.Child, f, false)
			if err != nil {
				return nil, err
			}
			return &Sort{Child: child, Col: x.Col}, nil
		}
		// Cut: the sort runs in its own fragment (pipelining with its
		// input), materializing a sorted temp.
		cf, err := g.newFragment(x, SortedOut, x.Col)
		if err != nil {
			return nil, err
		}
		f.Inputs = append(f.Inputs, cf)
		return &FragScan{Frag: cf, Schema: x.OutSchema()}, nil
	case *Agg:
		if atRoot {
			child, err := g.rewrite(x.Child, f, false)
			if err != nil {
				return nil, err
			}
			return &Agg{Child: child, GroupCol: x.GroupCol, Funcs: x.Funcs}, nil
		}
		// Cut: aggregation consumes its input pipeline in its own
		// fragment and materializes the per-group results.
		cf, err := g.newFragment(x, TempOut, 0)
		if err != nil {
			return nil, err
		}
		f.Inputs = append(f.Inputs, cf)
		return &FragScan{Frag: cf, Schema: x.OutSchema()}, nil
	case *Material:
		if atRoot {
			child, err := g.rewrite(x.Child, f, false)
			if err != nil {
				return nil, err
			}
			return child, nil // materialization is the fragment output itself
		}
		cf, err := g.newFragment(x.Child, TempOut, 0)
		if err != nil {
			return nil, err
		}
		f.Inputs = append(f.Inputs, cf)
		return &FragScan{Frag: cf, Schema: x.OutSchema()}, nil
	case *NestLoop:
		outer, err := g.rewrite(x.Outer, f, false)
		if err != nil {
			return nil, err
		}
		inner, err := g.rewrite(x.Inner, f, false)
		if err != nil {
			return nil, err
		}
		return &NestLoop{Outer: outer, Inner: inner, Pred: x.Pred}, nil
	case *HashJoin:
		// Build side is a blocking edge: it becomes its own fragment whose
		// output is the shared hash table.
		bf, err := g.newFragment(x.Right, HashOut, x.RCol)
		if err != nil {
			return nil, err
		}
		f.Inputs = append(f.Inputs, bf)
		left, err := g.rewrite(x.Left, f, false)
		if err != nil {
			return nil, err
		}
		return &HashJoin{
			Left:  left,
			Right: &FragScan{Frag: bf, Schema: x.Right.OutSchema()},
			LCol:  x.LCol,
			RCol:  x.RCol,
		}, nil
	case *MergeJoin:
		left, err := g.rewrite(x.Left, f, false)
		if err != nil {
			return nil, err
		}
		right, err := g.rewrite(x.Right, f, false)
		if err != nil {
			return nil, err
		}
		return &MergeJoin{Left: left, Right: right, LCol: x.LCol, RCol: x.RCol}, nil
	default:
		return nil, fmt.Errorf("plan: cannot decompose node %T", n)
	}
}

// DriverKind tells the executor how a fragment is partitioned for
// intra-operation parallelism (§2.4): page partitioning for sequential
// scans, range partitioning for index scans.
type DriverKind int

const (
	// PageDriver partitions the driving scan's pages (p mod n = i).
	PageDriver DriverKind = iota
	// RangeDriver partitions the driving index scan's key range.
	RangeDriver
	// MergeDriver partitions a merge join by key ranges of its sorted
	// inputs.
	MergeDriver
)

// String implements fmt.Stringer.
func (d DriverKind) String() string {
	switch d {
	case PageDriver:
		return "page-partitioned"
	case RangeDriver:
		return "range-partitioned"
	case MergeDriver:
		return "merge-range-partitioned"
	default:
		return fmt.Sprintf("DriverKind(%d)", int(d))
	}
}

// Driver returns the fragment's driving leaf — the pipelined input whose
// partitioning determines the fragment's parallelization — and the
// partitioning kind. For joins the driver is the outer (probe) side,
// matching XPRS ("joins are parallelized using either page partitioning
// or range partitioning depending on the type of scans in their inner
// and outer plans").
func (f *Fragment) Driver() (Node, DriverKind) {
	n := f.Root
	for {
		switch x := n.(type) {
		case *Sort:
			n = x.Child
		case *Agg:
			n = x.Child
		case *NestLoop:
			n = x.Outer
		case *HashJoin:
			n = x.Left
		case *MergeJoin:
			return x, MergeDriver
		case *IndexScan:
			return x, RangeDriver
		case *SeqScan:
			return x, PageDriver
		case *FragScan:
			return x, PageDriver
		default:
			panic(fmt.Sprintf("plan: fragment with unexpected node %T", n))
		}
	}
}

// ExplainGraph renders the fragment graph for EXPLAIN output.
func ExplainGraph(g *Graph) string {
	var b strings.Builder
	for _, f := range g.Fragments {
		deps := make([]string, len(f.Inputs))
		for i, in := range f.Inputs {
			deps[i] = fmt.Sprintf("f%d", in.ID)
		}
		dep := "-"
		if len(deps) > 0 {
			dep = strings.Join(deps, ",")
		}
		_, kind := f.Driver()
		fmt.Fprintf(&b, "fragment f%d (out: %s, driver: %s, inputs: %s)\n", f.ID, f.Out, kind, dep)
		for _, line := range strings.Split(strings.TrimRight(Explain(f.Root), "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}
