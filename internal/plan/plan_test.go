package plan

import (
	"strings"
	"testing"

	"xprs/internal/btree"
	"xprs/internal/expr"
	"xprs/internal/storage"
)

func testRel(t *testing.T, id int32, name string, n int) *storage.Relation {
	t.Helper()
	b := storage.NewBuilder(id, name, storage.NewSchema(
		storage.Column{Name: "a", Typ: storage.Int4},
		storage.Column{Name: "b", Typ: storage.Text},
	))
	for i := 0; i < n; i++ {
		if err := b.Append(storage.NewTuple(storage.IntVal(int32(i)), storage.TextVal("x"))); err != nil {
			t.Fatal(err)
		}
	}
	return b.Finalize()
}

func testIndex(t *testing.T, rel *storage.Relation) *btree.Index {
	t.Helper()
	ix, err := btree.BuildIndex(rel.Name+"_a", rel, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestNodeSchemasAndLabels(t *testing.T) {
	r1 := testRel(t, 1, "r1", 10)
	r2 := testRel(t, 2, "r2", 10)
	ix := testIndex(t, r2)

	ss := &SeqScan{Rel: r1, Filter: expr.ColEqConst(0, "a", 3)}
	if ss.OutSchema().Len() != 2 || len(ss.Children()) != 0 {
		t.Fatal("seqscan shape")
	}
	if !strings.Contains(ss.Label(), "r1") || !strings.Contains(ss.Label(), "a = 3") {
		t.Fatalf("label = %q", ss.Label())
	}
	if (&SeqScan{Rel: r1}).Label() != "SeqScan(r1)" {
		t.Fatal("plain seqscan label")
	}

	is := &IndexScan{Rel: r2, Index: ix, Lo: 1, Hi: 5, Filter: expr.ColEqConst(1, "b", 0)}
	if !strings.Contains(is.Label(), "r2.a in [1,5]") || !strings.Contains(is.Label(), "filter") {
		t.Fatalf("label = %q", is.Label())
	}

	nl := &NestLoop{Outer: ss, Inner: is, Pred: expr.ColEqConst(0, "", 1)}
	if nl.OutSchema().Len() != 4 || len(nl.Children()) != 2 {
		t.Fatal("nestloop shape")
	}
	if !strings.Contains(nl.Label(), "NestLoop") {
		t.Fatal("nestloop label")
	}
	if !strings.Contains((&NestLoop{Outer: ss, Inner: is}).Label(), "cartesian") {
		t.Fatal("cartesian label")
	}

	hj := &HashJoin{Left: ss, Right: &SeqScan{Rel: r2}, LCol: 0, RCol: 0}
	if hj.OutSchema().Len() != 4 {
		t.Fatal("hashjoin schema")
	}
	mj := &MergeJoin{Left: &Sort{Child: ss, Col: 0}, Right: &Sort{Child: &SeqScan{Rel: r2}, Col: 0}}
	if mj.OutSchema().Len() != 4 {
		t.Fatal("mergejoin schema")
	}
	srt := &Sort{Child: ss, Col: 0}
	if srt.OutSchema().Len() != 2 || len(srt.Children()) != 1 {
		t.Fatal("sort shape")
	}
	mat := &Material{Child: ss}
	if mat.OutSchema().Len() != 2 || mat.Label() != "Material" {
		t.Fatal("material shape")
	}
}

func TestWalkAndExplain(t *testing.T) {
	r1 := testRel(t, 1, "r1", 10)
	r2 := testRel(t, 2, "r2", 10)
	tree := &HashJoin{
		Left:  &SeqScan{Rel: r1},
		Right: &SeqScan{Rel: r2},
		LCol:  0, RCol: 0,
	}
	count := 0
	Walk(tree, func(Node) { count++ })
	if count != 3 {
		t.Fatalf("walked %d nodes", count)
	}
	Walk(nil, func(Node) { t.Fatal("walk(nil) visited") })
	out := Explain(tree)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[1], "  SeqScan") {
		t.Fatalf("explain = %q", out)
	}
}

func TestValidate(t *testing.T) {
	r1 := testRel(t, 1, "r1", 10)
	r2 := testRel(t, 2, "r2", 10)
	ix := testIndex(t, r2)

	good := []Node{
		&SeqScan{Rel: r1},
		&IndexScan{Rel: r2, Index: ix, Lo: 0, Hi: 5},
		&NestLoop{Outer: &SeqScan{Rel: r1}, Inner: &IndexScan{Rel: r2, Index: ix, Lo: 0, Hi: 9}},
		&NestLoop{Outer: &SeqScan{Rel: r1}, Inner: &Material{Child: &SeqScan{Rel: r2}}},
		&HashJoin{Left: &SeqScan{Rel: r1}, Right: &SeqScan{Rel: r2}, LCol: 0, RCol: 0},
		&MergeJoin{
			Left:  &Sort{Child: &SeqScan{Rel: r1}, Col: 0},
			Right: &Sort{Child: &SeqScan{Rel: r2}, Col: 0},
			LCol:  0, RCol: 0,
		},
		&MergeJoin{
			Left:  &IndexScan{Rel: r2, Index: ix, Lo: 0, Hi: 9},
			Right: &Sort{Child: &SeqScan{Rel: r1}, Col: 0},
			LCol:  0, RCol: 0,
		},
	}
	for i, n := range good {
		if err := Validate(n); err != nil {
			t.Errorf("good[%d]: %v", i, err)
		}
	}

	bad := []Node{
		&IndexScan{Rel: r2, Index: ix, Lo: 5, Hi: 1},
		&NestLoop{Outer: &SeqScan{Rel: r1}, Inner: &HashJoin{Left: &SeqScan{Rel: r1}, Right: &SeqScan{Rel: r2}}},
		&HashJoin{Left: &SeqScan{Rel: r1}, Right: &SeqScan{Rel: r2}, LCol: 9, RCol: 0},
		&HashJoin{Left: &SeqScan{Rel: r1}, Right: &SeqScan{Rel: r2}, LCol: 0, RCol: 9},
		&HashJoin{Left: &SeqScan{Rel: r1}, Right: &SeqScan{Rel: r2}, LCol: 1, RCol: 0}, // text col
		&MergeJoin{Left: &SeqScan{Rel: r1}, Right: &Sort{Child: &SeqScan{Rel: r2}, Col: 0}, LCol: 0, RCol: 0},
		&MergeJoin{Left: &Sort{Child: &SeqScan{Rel: r1}, Col: 0}, Right: &SeqScan{Rel: r2}, LCol: 0, RCol: 0},
		&Sort{Child: &SeqScan{Rel: r1}, Col: 7},
		&Sort{Child: &SeqScan{Rel: r1}, Col: 1}, // text col
	}
	for i, n := range bad {
		if err := Validate(n); err == nil {
			t.Errorf("bad[%d] accepted: %s", i, n.Label())
		}
	}
	// Errors inside subtrees propagate.
	if err := Validate(&Sort{Child: &IndexScan{Rel: r2, Index: ix, Lo: 5, Hi: 1}, Col: 0}); err == nil {
		t.Error("nested invalid accepted")
	}
}

func TestDecomposeSingleScan(t *testing.T) {
	r1 := testRel(t, 1, "r1", 10)
	g, err := Decompose(&SeqScan{Rel: r1})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Fragments) != 1 || g.Root != g.Fragments[0] {
		t.Fatalf("fragments = %d", len(g.Fragments))
	}
	if g.Root.Out != RootOut || len(g.Root.Inputs) != 0 {
		t.Fatal("root fragment shape")
	}
	_, kind := g.Root.Driver()
	if kind != PageDriver {
		t.Fatalf("driver = %v", kind)
	}
}

func TestDecomposeHashJoinCutsBuildSide(t *testing.T) {
	r1 := testRel(t, 1, "r1", 10)
	r2 := testRel(t, 2, "r2", 10)
	tree := &HashJoin{Left: &SeqScan{Rel: r1}, Right: &SeqScan{Rel: r2}, LCol: 0, RCol: 0}
	g, err := Decompose(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Fragments) != 2 {
		t.Fatalf("fragments = %d, want 2", len(g.Fragments))
	}
	build := g.Fragments[0]
	if build.Out != HashOut || build.HashCol != 0 {
		t.Fatalf("build fragment = %+v", build)
	}
	if _, ok := build.Root.(*SeqScan); !ok {
		t.Fatalf("build root = %T", build.Root)
	}
	root := g.Root
	if len(root.Inputs) != 1 || root.Inputs[0] != build {
		t.Fatal("root inputs")
	}
	hj, ok := root.Root.(*HashJoin)
	if !ok {
		t.Fatalf("root node = %T", root.Root)
	}
	fs, ok := hj.Right.(*FragScan)
	if !ok || fs.Frag != build {
		t.Fatalf("probe right = %T", hj.Right)
	}
	// The original tree is untouched.
	if _, ok := tree.Right.(*SeqScan); !ok {
		t.Fatal("decompose mutated input tree")
	}
}

func TestDecomposeMergeJoinWithSorts(t *testing.T) {
	r1 := testRel(t, 1, "r1", 10)
	r2 := testRel(t, 2, "r2", 10)
	tree := &MergeJoin{
		Left:  &Sort{Child: &SeqScan{Rel: r1}, Col: 0},
		Right: &Sort{Child: &SeqScan{Rel: r2}, Col: 0},
		LCol:  0, RCol: 0,
	}
	g, err := Decompose(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Fragments) != 3 {
		t.Fatalf("fragments = %d, want 3 (two sorts + merge)", len(g.Fragments))
	}
	for _, f := range g.Fragments[:2] {
		if f.Out != SortedOut || f.SortCol != 0 {
			t.Fatalf("sort fragment = %+v", f)
		}
		if _, ok := f.Root.(*Sort); !ok {
			t.Fatalf("sort fragment root = %T", f.Root)
		}
	}
	if len(g.Root.Inputs) != 2 {
		t.Fatal("merge fragment inputs")
	}
	_, kind := g.Root.Driver()
	if kind != MergeDriver {
		t.Fatalf("driver = %v", kind)
	}
	// The rewritten merge join children are sorted FragScans and still
	// pass validation.
	if err := Validate(g.Root.Root); err != nil {
		t.Fatalf("rewritten tree invalid: %v", err)
	}
}

func TestDecomposeNestLoopStaysOneFragment(t *testing.T) {
	r1 := testRel(t, 1, "r1", 10)
	r2 := testRel(t, 2, "r2", 10)
	ix := testIndex(t, r2)
	tree := &NestLoop{
		Outer: &SeqScan{Rel: r1},
		Inner: &IndexScan{Rel: r2, Index: ix, Lo: 0, Hi: 9},
	}
	g, err := Decompose(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Fragments) != 1 {
		t.Fatalf("fragments = %d, want 1 (nestloop pipelines)", len(g.Fragments))
	}
	_, kind := g.Root.Driver()
	if kind != PageDriver {
		t.Fatalf("driver = %v (outer seqscan)", kind)
	}
}

func TestDecomposeNestLoopMaterializedInner(t *testing.T) {
	r1 := testRel(t, 1, "r1", 10)
	r2 := testRel(t, 2, "r2", 10)
	tree := &NestLoop{
		Outer: &SeqScan{Rel: r1},
		Inner: &Material{Child: &SeqScan{Rel: r2}},
	}
	g, err := Decompose(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Fragments) != 2 {
		t.Fatalf("fragments = %d, want 2", len(g.Fragments))
	}
	if g.Fragments[0].Out != TempOut {
		t.Fatalf("inner fragment out = %v", g.Fragments[0].Out)
	}
	nl := g.Root.Root.(*NestLoop)
	if _, ok := nl.Inner.(*FragScan); !ok {
		t.Fatalf("inner = %T", nl.Inner)
	}
}

func TestDecomposeBushyTree(t *testing.T) {
	// (r1 ⋈H r2) ⋈H (r3 ⋈H r4): the classic bushy shape of §1. Expect
	// fragments for: build(r2), build(r3⋈r4 subtree's build r4), the
	// right subtree probe (as build of the top join), and the top probe.
	rels := make([]*storage.Relation, 4)
	for i := range rels {
		rels[i] = testRel(t, int32(i+1), string(rune('a'+i)), 10)
	}
	left := &HashJoin{Left: &SeqScan{Rel: rels[0]}, Right: &SeqScan{Rel: rels[1]}, LCol: 0, RCol: 0}
	right := &HashJoin{Left: &SeqScan{Rel: rels[2]}, Right: &SeqScan{Rel: rels[3]}, LCol: 0, RCol: 0}
	top := &HashJoin{Left: left, Right: right, LCol: 0, RCol: 0}
	g, err := Decompose(top)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Fragments) != 4 {
		t.Fatalf("fragments = %d, want 4", len(g.Fragments))
	}
	// The two leaf build fragments are independent: neither lists the
	// other among its inputs, so the scheduler may run them in parallel —
	// this is exactly the paper's inter-operation parallelism opportunity.
	var hashFrags []*Fragment
	for _, f := range g.Fragments {
		if f.Out == HashOut {
			hashFrags = append(hashFrags, f)
		}
	}
	if len(hashFrags) != 3 {
		t.Fatalf("hash fragments = %d, want 3", len(hashFrags))
	}
	if len(g.Root.Inputs) != 2 {
		t.Fatalf("root inputs = %d, want 2", len(g.Root.Inputs))
	}
	// Fragment IDs are a valid bottom-up order.
	for _, f := range g.Fragments {
		for _, in := range f.Inputs {
			if in.ID >= f.ID {
				t.Fatalf("fragment f%d depends on later f%d", f.ID, in.ID)
			}
		}
	}
}

func TestDecomposeRejectsInvalid(t *testing.T) {
	r2 := testRel(t, 2, "r2", 10)
	ix := testIndex(t, r2)
	if _, err := Decompose(&IndexScan{Rel: r2, Index: ix, Lo: 9, Hi: 0}); err == nil {
		t.Fatal("invalid plan decomposed")
	}
}

func TestFragmentReady(t *testing.T) {
	f0 := &Fragment{ID: 0}
	f1 := &Fragment{ID: 1, Inputs: []*Fragment{f0}}
	done := map[int]bool{}
	if f1.Ready(done) {
		t.Fatal("not ready")
	}
	if !f0.Ready(done) {
		t.Fatal("leaf always ready")
	}
	done[0] = true
	if !f1.Ready(done) {
		t.Fatal("ready after input done")
	}
}

func TestExplainGraph(t *testing.T) {
	r1 := testRel(t, 1, "r1", 10)
	r2 := testRel(t, 2, "r2", 10)
	g, err := Decompose(&HashJoin{Left: &SeqScan{Rel: r1}, Right: &SeqScan{Rel: r2}, LCol: 0, RCol: 0})
	if err != nil {
		t.Fatal(err)
	}
	out := ExplainGraph(g)
	if !strings.Contains(out, "fragment f0 (out: hash-table") ||
		!strings.Contains(out, "fragment f1 (out: root") ||
		!strings.Contains(out, "inputs: f0") {
		t.Fatalf("explain graph:\n%s", out)
	}
}

func TestOutKindAndDriverStrings(t *testing.T) {
	for _, k := range []OutKind{RootOut, TempOut, SortedOut, HashOut, OutKind(9)} {
		if k.String() == "" {
			t.Fatal("empty OutKind string")
		}
	}
	for _, d := range []DriverKind{PageDriver, RangeDriver, MergeDriver, DriverKind(9)} {
		if d.String() == "" {
			t.Fatal("empty DriverKind string")
		}
	}
}

func TestDriverThroughSortAndJoins(t *testing.T) {
	r1 := testRel(t, 1, "r1", 10)
	r2 := testRel(t, 2, "r2", 10)
	ix := testIndex(t, r1)
	// Fragment rooted at a Sort over a nestloop over an index scan: the
	// driver is the outer index scan, so the fragment range-partitions.
	tree := &Sort{
		Child: &NestLoop{
			Outer: &IndexScan{Rel: r1, Index: ix, Lo: 0, Hi: 9},
			Inner: &SeqScan{Rel: r2},
		},
		Col: 0,
	}
	g, err := Decompose(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Fragments) != 1 {
		t.Fatalf("fragments = %d", len(g.Fragments))
	}
	d, kind := g.Root.Driver()
	if kind != RangeDriver {
		t.Fatalf("driver kind = %v", kind)
	}
	if _, ok := d.(*IndexScan); !ok {
		t.Fatalf("driver node = %T", d)
	}
}

func TestAggNode(t *testing.T) {
	r1 := testRel(t, 1, "r1", 10)
	agg := &Agg{
		Child:    &SeqScan{Rel: r1},
		GroupCol: 0,
		Funcs:    []AggFunc{{Kind: CountAll}, {Kind: Sum, Col: 0}},
	}
	if err := Validate(agg); err != nil {
		t.Fatal(err)
	}
	out := agg.OutSchema()
	if out.Len() != 3 || out.Cols[0].Name != "a" || out.Cols[1].Name != "count" {
		t.Fatalf("schema = %+v", out)
	}
	if !strings.Contains(agg.Label(), "count(*)") || !strings.Contains(agg.Label(), "group by") {
		t.Fatalf("label = %q", agg.Label())
	}
	global := &Agg{Child: &SeqScan{Rel: r1}, GroupCol: -1, Funcs: []AggFunc{{Kind: Max, Col: 0}}}
	if global.OutSchema().Len() != 1 {
		t.Fatal("global agg schema")
	}
	if strings.Contains(global.Label(), "group by") {
		t.Fatal("global agg label")
	}
	for _, k := range []AggKind{CountAll, Sum, Min, Max, AggKind(9)} {
		if k.String() == "" {
			t.Fatal("agg kind string")
		}
	}

	bad := []*Agg{
		{Child: &SeqScan{Rel: r1}, GroupCol: 9, Funcs: []AggFunc{{Kind: CountAll}}},
		{Child: &SeqScan{Rel: r1}, GroupCol: 1, Funcs: []AggFunc{{Kind: CountAll}}}, // text group
		{Child: &SeqScan{Rel: r1}, GroupCol: -1},                                    // no funcs
		{Child: &SeqScan{Rel: r1}, GroupCol: -1, Funcs: []AggFunc{{Kind: Sum, Col: 1}}},
		{Child: &SeqScan{Rel: r1}, GroupCol: -1, Funcs: []AggFunc{{Kind: Sum, Col: 9}}},
	}
	for i, a := range bad {
		if err := Validate(a); err == nil {
			t.Errorf("bad agg %d accepted", i)
		}
	}
}

func TestDecomposeAggAtRootAndBelow(t *testing.T) {
	r1 := testRel(t, 1, "r1", 10)
	r2 := testRel(t, 2, "r2", 10)
	// Agg at root: absorbed into the fragment.
	g, err := Decompose(&Agg{Child: &SeqScan{Rel: r1}, GroupCol: 0, Funcs: []AggFunc{{Kind: CountAll}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Fragments) != 1 {
		t.Fatalf("fragments = %d", len(g.Fragments))
	}
	if _, ok := g.Root.Root.(*Agg); !ok {
		t.Fatalf("root = %T", g.Root.Root)
	}
	_, kind := g.Root.Driver()
	if kind != PageDriver {
		t.Fatalf("driver = %v", kind)
	}
	// Agg below a join: cut into its own fragment.
	tree := &HashJoin{
		Left:  &SeqScan{Rel: r1},
		Right: &Material{Child: &SeqScan{Rel: r2}}, // placeholder to satisfy types below
		LCol:  0, RCol: 0,
	}
	_ = tree
	nested := &NestLoop{
		Outer: &SeqScan{Rel: r1},
		Inner: &Material{Child: &Agg{Child: &SeqScan{Rel: r2}, GroupCol: 0, Funcs: []AggFunc{{Kind: CountAll}}}},
	}
	g2, err := Decompose(nested)
	if err != nil {
		t.Fatal(err)
	}
	// Material's child (the Agg) becomes its own TempOut fragment.
	if len(g2.Fragments) != 2 {
		t.Fatalf("fragments = %d", len(g2.Fragments))
	}
	if _, ok := g2.Fragments[0].Root.(*Agg); !ok {
		t.Fatalf("agg fragment root = %T", g2.Fragments[0].Root)
	}
}
