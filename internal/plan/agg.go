package plan

import (
	"fmt"
	"strings"

	"xprs/internal/storage"
)

// AggKind is an aggregate function.
type AggKind int

const (
	// CountAll is COUNT(*).
	CountAll AggKind = iota
	// Sum is SUM(col) over an int4 column.
	Sum
	// Min is MIN(col) over an int4 column.
	Min
	// Max is MAX(col) over an int4 column.
	Max
)

// String implements fmt.Stringer.
func (k AggKind) String() string {
	switch k {
	case CountAll:
		return "count(*)"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// AggFunc is one aggregate of an Agg node.
type AggFunc struct {
	Kind AggKind
	// Col is the input column for Sum/Min/Max; ignored for CountAll.
	Col int
}

// Agg groups its input on GroupCol (-1 for a single global group) and
// computes the aggregate functions per group. Like Sort, its output edge
// is blocking: consumers wait for the full input. Aggregation
// parallelizes naturally — each slave accumulates partial states over
// its partition and the partials merge when the fragment finalizes.
type Agg struct {
	Child    Node
	GroupCol int
	Funcs    []AggFunc
}

// OutSchema implements Node: the group column (when grouping) followed
// by one int4 column per aggregate.
func (a *Agg) OutSchema() storage.Schema {
	var cols []storage.Column
	if a.GroupCol >= 0 {
		in := a.Child.OutSchema()
		cols = append(cols, in.Cols[a.GroupCol])
	}
	for _, f := range a.Funcs {
		cols = append(cols, storage.Column{Name: aggColName(f), Typ: storage.Int4})
	}
	return storage.Schema{Cols: cols}
}

func aggColName(f AggFunc) string {
	if f.Kind == CountAll {
		return "count"
	}
	return fmt.Sprintf("%s_%d", f.Kind, f.Col)
}

// Children implements Node.
func (a *Agg) Children() []Node { return []Node{a.Child} }

// Label implements Node.
func (a *Agg) Label() string {
	var parts []string
	for _, f := range a.Funcs {
		if f.Kind == CountAll {
			parts = append(parts, "count(*)")
		} else {
			parts = append(parts, fmt.Sprintf("%s($%d)", f.Kind, f.Col))
		}
	}
	if a.GroupCol >= 0 {
		return fmt.Sprintf("Agg %s group by $%d", strings.Join(parts, ", "), a.GroupCol)
	}
	return "Agg " + strings.Join(parts, ", ")
}

// validateAgg checks an Agg node's columns.
func validateAgg(a *Agg) error {
	in := a.Child.OutSchema()
	if a.GroupCol >= in.Len() {
		return fmt.Errorf("plan: Agg group column $%d out of range", a.GroupCol)
	}
	if a.GroupCol >= 0 && in.Cols[a.GroupCol].Typ != storage.Int4 {
		return fmt.Errorf("plan: Agg group column $%d is not int4", a.GroupCol)
	}
	if len(a.Funcs) == 0 {
		return fmt.Errorf("plan: Agg with no aggregate functions")
	}
	for _, f := range a.Funcs {
		if f.Kind == CountAll {
			continue
		}
		if f.Col < 0 || f.Col >= in.Len() {
			return fmt.Errorf("plan: %v column $%d out of range", f.Kind, f.Col)
		}
		if in.Cols[f.Col].Typ != storage.Int4 {
			return fmt.Errorf("plan: %v column $%d is not int4", f.Kind, f.Col)
		}
	}
	return nil
}
