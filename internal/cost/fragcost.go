package cost

import (
	"fmt"
	"math"

	"xprs/internal/expr"
	"xprs/internal/plan"
	"xprs/internal/storage"
)

// FragEstimate is the conventional cost estimate of one plan fragment —
// the T_i and D_i of §4 ("using the cost estimation methods in
// conventional query optimization, we can estimate the sequential
// execution time of each task i, T_i ... the number of i/o's of each
// task i, D_i ... thus the i/o rate of each task i as C_i = D_i/T_i").
type FragEstimate struct {
	// T is the sequential execution time in seconds.
	T float64
	// D is the number of disk IOs.
	D float64
	// Rows is the number of output tuples.
	Rows float64
	// RowSize is the average output tuple payload in bytes.
	RowSize float64
	// SeqIO reports whether the fragment's IO stream is sequential
	// (drives the §2.3 effective-bandwidth refinement). Fragments with
	// no IO at all report true (they never interfere at the disks).
	SeqIO bool
	// MemBytes is the fragment's working-set estimate: the hash table a
	// HashOut fragment builds or the sort heap of a SortedOut fragment.
	// Feeds the scheduler's memory budget (§5 extension).
	MemBytes int64
}

// Rate returns the fragment's sequential IO rate C = D/T in io/s.
func (e FragEstimate) Rate() float64 {
	if e.T <= 0 {
		return 0
	}
	return e.D / e.T
}

// nodeEstimate is the internal accumulator while walking a fragment's
// pipeline.
type nodeEstimate struct {
	rows    float64
	rowSize float64
	cpu     float64 // seconds
	ioTime  float64 // seconds
	ios     float64
}

// EstimateFragment costs one fragment given the estimates of its input
// fragments (keyed by fragment ID). Every fragment of a graph must be
// estimated in bottom-up order; EstimateGraph does that for a whole plan.
func EstimateFragment(p Params, f *plan.Fragment, inputs map[int]FragEstimate) (FragEstimate, error) {
	ne, err := estimateNode(p, f.Root, inputs)
	if err != nil {
		return FragEstimate{}, err
	}
	// Fragment output handling.
	var mem float64
	switch f.Out {
	case plan.HashOut:
		ne.cpu += ne.rows * p.HashInsertCPU
		// Stamp the build-side partition-count hint from the estimated
		// cardinality; the executor falls back to its default when no
		// estimate ran.
		if f.HashParts == 0 {
			f.HashParts = plan.SuggestHashParts(ne.rows)
		}
		// Hash table: tuples plus per-entry bucket overhead.
		mem = ne.rows * (ne.rowSize + 48)
	case plan.SortedOut:
		// Sort heap holds the whole materialized input.
		mem = ne.rows * (ne.rowSize + 24)
	}
	_, kind := f.Driver()
	est := FragEstimate{
		T:        ne.cpu + ne.ioTime,
		D:        ne.ios,
		Rows:     ne.rows,
		RowSize:  ne.rowSize,
		SeqIO:    kind != plan.RangeDriver || ne.ios == 0,
		MemBytes: int64(mem),
	}
	return est, nil
}

// EstimateGraph estimates every fragment of a decomposed plan bottom-up
// and returns the per-fragment estimates.
func EstimateGraph(p Params, g *plan.Graph) (map[int]FragEstimate, error) {
	out := make(map[int]FragEstimate, len(g.Fragments))
	for _, f := range g.Fragments {
		e, err := EstimateFragment(p, f, out)
		if err != nil {
			return nil, err
		}
		out[f.ID] = e
	}
	return out, nil
}

func estimateNode(p Params, n plan.Node, inputs map[int]FragEstimate) (nodeEstimate, error) {
	switch x := n.(type) {
	case *plan.SeqScan:
		st := x.Rel.Stats()
		sel := expr.Selectivity(x.Filter, st)
		return nodeEstimate{
			rows:    float64(st.NTuples) * sel,
			rowSize: st.AvgTupleSize,
			cpu:     float64(st.NTuples) * p.TupleCPU(st.AvgTupleSize),
			ioTime:  float64(st.NPages) * p.SeqPageService,
			ios:     float64(st.NPages),
		}, nil

	case *plan.IndexScan:
		st := x.Rel.Stats()
		frac := rangeFraction(st, x.Index.Col, x.Lo, x.Hi)
		fetched := float64(st.NTuples) * frac
		resSel := expr.Selectivity(x.Filter, st)
		ne := nodeEstimate{
			rows:    fetched * resSel,
			rowSize: st.AvgTupleSize,
			cpu:     fetched * (p.IndexProbeCPU + p.TupleCPU(st.AvgTupleSize)),
		}
		if x.Index.Clustered {
			pages := math.Ceil(float64(st.NPages) * frac)
			ne.ioTime = pages * p.SeqPageService
			ne.ios = pages
		} else {
			ne.ioTime = fetched * p.RandPageService
			ne.ios = fetched
		}
		return ne, nil

	case *plan.FragScan:
		in, ok := inputs[x.Frag.ID]
		if !ok {
			return nodeEstimate{}, fmt.Errorf("cost: fragment f%d estimated before its input f%d", -1, x.Frag.ID)
		}
		return nodeEstimate{
			rows:    in.Rows,
			rowSize: in.RowSize,
			cpu:     in.Rows * p.TempReadCPU,
		}, nil

	case *plan.NestLoop:
		outer, err := estimateNode(p, x.Outer, inputs)
		if err != nil {
			return nodeEstimate{}, err
		}
		inner, err := estimateNode(p, x.Inner, inputs)
		if err != nil {
			return nodeEstimate{}, err
		}
		sel := nestLoopSelectivity(x)
		out := outer.rows * inner.rows * sel
		ne := nodeEstimate{
			rows:    out,
			rowSize: outer.rowSize + inner.rowSize,
			// The inner is re-executed once per outer tuple.
			cpu:    outer.cpu + outer.rows*(inner.cpu+p.RescanSetupCPU) + out*p.EmitCPU,
			ioTime: outer.ioTime + outer.rows*inner.ioTime,
			ios:    outer.ios + outer.rows*inner.ios,
		}
		return ne, nil

	case *plan.HashJoin:
		probe, err := estimateNode(p, x.Left, inputs)
		if err != nil {
			return nodeEstimate{}, err
		}
		build, err := estimateNode(p, x.Right, inputs)
		if err != nil {
			return nodeEstimate{}, err
		}
		// The build side of a decomposed plan is a FragScan over a hash
		// table: probing does not re-read it, so only probe CPU counts
		// here. (Insert cost was charged to the build fragment.)
		sel := 1.0 / math.Max(1, math.Max(probe.rows, build.rows)) // fallback
		if s, ok := equiJoinSel(x.Left, x.Right, x.LCol, x.RCol); ok {
			sel = s
		}
		out := probe.rows * build.rows * sel
		return nodeEstimate{
			rows:    out,
			rowSize: probe.rowSize + build.rowSize,
			cpu:     probe.cpu + probe.rows*p.HashProbeCPU + out*p.EmitCPU,
			ioTime:  probe.ioTime,
			ios:     probe.ios,
		}, nil

	case *plan.MergeJoin:
		l, err := estimateNode(p, x.Left, inputs)
		if err != nil {
			return nodeEstimate{}, err
		}
		r, err := estimateNode(p, x.Right, inputs)
		if err != nil {
			return nodeEstimate{}, err
		}
		sel := 1.0 / math.Max(1, math.Max(l.rows, r.rows))
		if s, ok := equiJoinSel(x.Left, x.Right, x.LCol, x.RCol); ok {
			sel = s
		}
		out := l.rows * r.rows * sel
		return nodeEstimate{
			rows:    out,
			rowSize: l.rowSize + r.rowSize,
			cpu:     l.cpu + r.cpu + (l.rows+r.rows)*p.MergeStepCPU + out*p.EmitCPU,
			ioTime:  l.ioTime + r.ioTime,
			ios:     l.ios + r.ios,
		}, nil

	case *plan.Sort:
		in, err := estimateNode(p, x.Child, inputs)
		if err != nil {
			return nodeEstimate{}, err
		}
		n := math.Max(in.rows, 2)
		in.cpu += in.rows * math.Log2(n) * p.SortCmpCPU
		return in, nil

	case *plan.Agg:
		in, err := estimateNode(p, x.Child, inputs)
		if err != nil {
			return nodeEstimate{}, err
		}
		groups := 1.0
		if x.GroupCol >= 0 {
			// Group count from the grouping column's distinct values when
			// traceable, else the square-root heuristic.
			if cs, ok := colStatsOf(x.Child, x.GroupCol); ok && cs.NDistinct > 0 {
				groups = math.Min(in.rows, float64(cs.NDistinct))
			} else {
				groups = math.Sqrt(math.Max(in.rows, 1))
			}
		}
		in.cpu += in.rows * p.HashInsertCPU
		in.rows = groups
		in.rowSize = float64(4 * (len(x.Funcs) + 1))
		return in, nil

	default:
		return nodeEstimate{}, fmt.Errorf("cost: cannot estimate node %T", n)
	}
}

// rangeFraction estimates the fraction of tuples with key in [lo, hi]
// from column statistics, assuming a uniform distribution.
func rangeFraction(st storage.RelStats, col int, lo, hi int32) float64 {
	if lo > hi {
		return 0
	}
	if col < 0 || col >= len(st.Cols) {
		return 1.0 / 3.0
	}
	cs := st.Cols[col]
	if cs.Max < cs.Min {
		return 1.0 / 3.0
	}
	width := float64(cs.Max) - float64(cs.Min) + 1
	l := math.Max(float64(lo), float64(cs.Min))
	h := math.Min(float64(hi), float64(cs.Max))
	if h < l {
		return 0
	}
	return (h - l + 1) / width
}

// equiJoinSel estimates an equi-join selectivity from the distinct counts
// of the join columns when both sides expose base-relation statistics.
func equiJoinSel(l, r plan.Node, lc, rc int) (float64, bool) {
	ls, lok := colStatsOf(l, lc)
	rs, rok := colStatsOf(r, rc)
	if !lok || !rok {
		return 0, false
	}
	return expr.JoinSelectivity(ls, rs), true
}

// colStatsOf digs the column statistics for an output column of a node,
// following pass-through operators. It gives up (ok=false) on computed
// columns it cannot trace to a base relation.
func colStatsOf(n plan.Node, col int) (storage.ColStats, bool) {
	switch x := n.(type) {
	case *plan.SeqScan:
		st := x.Rel.Stats()
		if col < len(st.Cols) {
			return st.Cols[col], true
		}
	case *plan.IndexScan:
		st := x.Rel.Stats()
		if col < len(st.Cols) {
			return st.Cols[col], true
		}
	case *plan.Sort:
		return colStatsOf(x.Child, col)
	case *plan.Material:
		return colStatsOf(x.Child, col)
	case *plan.FragScan:
		// Follow the cut edge back into the producing fragment's pipeline.
		if x.Frag != nil && x.Frag.Root != nil {
			return colStatsOf(x.Frag.Root, col)
		}
	case *plan.NestLoop:
		lw := x.Outer.OutSchema().Len()
		if col < lw {
			return colStatsOf(x.Outer, col)
		}
		return colStatsOf(x.Inner, col-lw)
	case *plan.HashJoin:
		lw := x.Left.OutSchema().Len()
		if col < lw {
			return colStatsOf(x.Left, col)
		}
		return colStatsOf(x.Right, col-lw)
	case *plan.MergeJoin:
		lw := x.Left.OutSchema().Len()
		if col < lw {
			return colStatsOf(x.Left, col)
		}
		return colStatsOf(x.Right, col-lw)
	}
	return storage.ColStats{}, false
}

// nestLoopSelectivity derives the output fraction of a nestloop's
// cartesian product from its predicate; a nil predicate keeps everything.
func nestLoopSelectivity(x *plan.NestLoop) float64 {
	if x.Pred == nil {
		return 1
	}
	// Without combined statistics, use the System-R default for an
	// arbitrary predicate unless it is a simple equi-join comparison.
	if c, ok := x.Pred.(expr.Cmp); ok && c.Op == expr.EQ {
		lcol, lok := c.L.(expr.Col)
		rcol, rok := c.R.(expr.Col)
		if lok && rok {
			lw := x.Outer.OutSchema().Len()
			li, ri := lcol.Idx, rcol.Idx
			if li > ri {
				li, ri = ri, li
			}
			if li < lw && ri >= lw {
				ls, ok1 := colStatsOf(x.Outer, li)
				rs, ok2 := colStatsOf(x.Inner, ri-lw)
				if ok1 && ok2 {
					return expr.JoinSelectivity(ls, rs)
				}
			}
		}
		return 0.005
	}
	return 1.0 / 3.0
}

// SeqCost is the conventional seqcost(p) of §4: the total sequential
// execution time of a plan, i.e. the sum of its fragments' T. The sum
// runs in fragment order so float rounding is identical across runs
// (map-order summation would let rounding noise flip optimizer
// tie-breaks).
func SeqCost(p Params, g *plan.Graph) (float64, error) {
	ests, err := EstimateGraph(p, g)
	if err != nil {
		return 0, err
	}
	return SumT(g, ests), nil
}

// SumT adds the fragments' sequential times in fragment order.
func SumT(g *plan.Graph, ests map[int]FragEstimate) float64 {
	total := 0.0
	for _, f := range g.Fragments {
		total += ests[f.ID].T
	}
	return total
}
