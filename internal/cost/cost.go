// Package cost implements the conventional cost estimation XPRS's
// two-phase optimizer runs on, plus the calibration constants that tie
// the reproduction to the paper's measured hardware.
//
// Calibration (§3 of the paper, see DESIGN.md §3):
//
// The paper measures, on a Sequent Symmetry with 4 striped disks, the
// sequential-scan IO rate of two extreme relations: rmin (b attribute
// NULL, maximum tuples per page) at 5 io/s and rmax (one 8 KB tuple per
// page) at 70 io/s, with per-disk read service rates of 97 io/s
// (sequential), 60 (almost sequential) and 35 (random). The time between
// two IO requests of a sequential scan is
//
//	1/C = pageService + tuplesPerPage × tupleCPU(size)
//
// Fitting the linear per-tuple CPU model tupleCPU(size) = a + b·size to
// the two measured endpoints gives a ≈ 274.5 µs and b ≈ 0.454 µs/byte.
// Those two constants, together with the disk service rates, reproduce
// every IO rate in the paper's workload table.
package cost

import (
	"math"
	"time"

	"xprs/internal/diskmodel"
	"xprs/internal/storage"
)

// Params carries every constant of the cost model. Durations are in
// seconds (analytic side); the executor converts through time.Duration.
type Params struct {
	// NProcs is the number of processors the scheduler plans for
	// (the paper's experiments use 8 of the machine's 12).
	NProcs int

	// SeqPageService is the per-page read time of a dedicated sequential
	// stream (1/97 s).
	SeqPageService float64
	// AlmostSeqPageService is the per-page read time seen by parallel
	// sequential scans (1/60 s).
	AlmostSeqPageService float64
	// RandPageService is a random page read (1/35 s).
	RandPageService float64

	// B is the planning IO bandwidth in io/s: what the array sustains
	// under parallel scans (NumDisks × almost-sequential rate = 240).
	// The IO-bound/CPU-bound threshold is B/NProcs (§2.2).
	B float64
	// Bs and Br are the endpoints of the effective-bandwidth equation for
	// concurrent sequential-IO tasks (§2.3): Bs when one stream dominates
	// the disks, Br when two streams interleave evenly. Br is amortized
	// by readahead: an even interleave pays one seek per ReadaheadDepth
	// batch, not per request.
	Bs, Br float64
	// BrRand is the raw random-read floor (140 io/s), the bandwidth of
	// streams readahead cannot help (unclustered index scans).
	BrRand float64
	// ReadaheadDepth is the number of page reads a sequential scan keeps
	// in flight (OS readahead); it sets the seek amortization of Br and
	// the executor's prefetch window.
	ReadaheadDepth int

	// TupleCPUBase and TupleCPUPerByte define the per-tuple qualification
	// CPU cost: tupleCPU(size) = TupleCPUBase + TupleCPUPerByte × size.
	TupleCPUBase    float64
	TupleCPUPerByte float64

	// Executor CPU constants (calibration choices, documented in
	// DESIGN.md; the paper's experiments are selection-only, so these
	// only shape the §4 optimizer studies).
	HashInsertCPU  float64 // per build tuple
	HashProbeCPU   float64 // per probe tuple
	MergeStepCPU   float64 // per input tuple of a merge join
	SortCmpCPU     float64 // per comparison of a sort
	TempReadCPU    float64 // per tuple read from a materialized temp
	EmitCPU        float64 // per output tuple of a join
	IndexProbeCPU  float64 // per index descent
	RescanSetupCPU float64 // per nestloop inner rescan
}

// DefaultParams returns parameters calibrated to the paper's measured
// constants, deriving the disk-dependent entries from cfg.
func DefaultParams(cfg diskmodel.Config, nprocs int) Params {
	const readahead = 8
	// A slave's readahead burst strides across the whole array, so each
	// disk sees runs of about depth/NumDisks consecutive same-stream
	// requests; an even interleave pays one seek per run.
	runLen := float64(readahead) / float64(cfg.NumDisks)
	if runLen < 1 {
		runLen = 1
	}
	amortized := (cfg.RandomService.Seconds() + (runLen-1)*cfg.AlmostSeqService.Seconds()) / runLen
	p := Params{
		NProcs:               nprocs,
		SeqPageService:       cfg.SeqService.Seconds(),
		AlmostSeqPageService: cfg.AlmostSeqService.Seconds(),
		RandPageService:      cfg.RandomService.Seconds(),
		B:                    cfg.AlmostSeqBandwidth(),
		Bs:                   cfg.AlmostSeqBandwidth(),
		Br:                   float64(cfg.NumDisks) / amortized,
		BrRand:               cfg.RandomBandwidth(),
		ReadaheadDepth:       readahead,
		HashInsertCPU:        100e-6,
		HashProbeCPU:         100e-6,
		MergeStepCPU:         50e-6,
		SortCmpCPU:           10e-6,
		TempReadCPU:          50e-6,
		EmitCPU:              50e-6,
		IndexProbeCPU:        200e-6,
		RescanSetupCPU:       100e-6,
	}
	p.TupleCPUBase, p.TupleCPUPerByte = calibrateTupleCPU(p.SeqPageService)
	return p
}

// Paper-measured calibration endpoints (§3).
const (
	// rminRate and rmaxRate are the measured sequential-scan IO rates of
	// the smallest-tuple and largest-tuple relations.
	rminRate = 5.0
	rmaxRate = 70.0
	// rminTupleSize is the payload of (a int4, b text('')): 4 + 4 bytes.
	rminTupleSize = 8.0
	// rmaxTupleSize is the one-tuple-per-page payload: a full page minus
	// the slot entry and heap tuple header.
	rmaxTupleSize = 8144.0
)

// calibrateTupleCPU fits tupleCPU(size) = a + b·size to the two measured
// endpoints given the sequential page service time.
func calibrateTupleCPU(pageService float64) (a, b float64) {
	kMin := float64(storage.TuplesPerPage(int(rminTupleSize)))
	tMin := (1/rminRate - pageService) / kMin // per-tuple CPU at size 8
	tMax := 1/rmaxRate - pageService          // per-tuple CPU at size 8150 (k = 1)
	b = (tMax - tMin) / (rmaxTupleSize - rminTupleSize)
	a = tMin - rminTupleSize*b
	return a, b
}

// TupleCPU returns the qualification CPU cost of one tuple of the given
// payload size, in seconds.
func (p Params) TupleCPU(size float64) float64 {
	return p.TupleCPUBase + p.TupleCPUPerByte*size
}

// TupleCPUDuration is TupleCPU as a time.Duration for the executor.
func (p Params) TupleCPUDuration(size int) time.Duration {
	return time.Duration(p.TupleCPU(float64(size)) * float64(time.Second))
}

// Seconds converts an analytic cost to a Duration.
func Seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// SeqScanRate returns the sequential-execution IO rate (io/s) of a
// sequential scan over tuples of the given payload size — the C_i of
// §2.2. It inverts to the paper's measured 5 and 70 io/s at the two
// calibration endpoints.
func (p Params) SeqScanRate(tupleSize float64) float64 {
	k := float64(storage.TuplesPerPage(int(tupleSize)))
	return 1 / (p.SeqPageService + k*p.TupleCPU(tupleSize))
}

// TupleSizeForRate inverts SeqScanRate: it returns the tuple payload size
// whose sequential scan runs closest to the target IO rate. This is
// exactly the §3 methodology ("we adjust the i/o rate of each task by
// varying the size of tuples"). Because tuples-per-page is an integer,
// the rate curve is a sawtooth; the inversion searches the integer
// tuples-per-page count k and solves the per-tuple CPU equation within
// each k's feasible size band, keeping the best match. Rates outside the
// feasible band clamp to the calibration endpoints.
func (p Params) TupleSizeForRate(rate float64) float64 {
	if rate <= p.SeqScanRate(rminTupleSize) {
		return rminTupleSize
	}
	// Tuple sizes are integers on a page, and the rate curve's sawtooth
	// (from integer tuples-per-page) defeats closed-form inversion, so
	// search the whole integer size band directly. 8K evaluations of a
	// few float operations is negligible against building the relation.
	bestSize := rmaxTupleSize
	bestErr := math.Abs(p.SeqScanRate(rmaxTupleSize) - rate)
	for size := int(rminTupleSize); size <= int(rmaxTupleSize); size++ {
		if err := math.Abs(p.SeqScanRate(float64(size)) - rate); err < bestErr {
			bestErr, bestSize = err, float64(size)
		}
	}
	return bestSize
}

// ScanEstimate summarizes the sequential cost of one scan task as the
// scheduler consumes it: T (sequential execution time), D (number of
// IOs) and the derived rate C = D/T.
type ScanEstimate struct {
	T float64
	D float64
}

// Rate returns D/T, the task's sequential IO rate (C_i of §2.2).
func (e ScanEstimate) Rate() float64 {
	if e.T <= 0 {
		return 0
	}
	return e.D / e.T
}

// SeqScan estimates a full sequential scan of a relation: one IO per
// page, CPU per tuple.
func (p Params) SeqScan(st storage.RelStats) ScanEstimate {
	d := float64(st.NPages)
	t := d*p.SeqPageService + float64(st.NTuples)*p.TupleCPU(st.AvgTupleSize)
	return ScanEstimate{T: t, D: d}
}

// IndexScan estimates an unclustered index scan fetching frac of the
// relation's tuples: one random heap IO per fetched tuple (§3: "index
// scans can follow the pointer in an index to a qualified tuple ... the
// time between two i/o requests is small").
func (p Params) IndexScan(st storage.RelStats, frac float64) ScanEstimate {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	m := float64(st.NTuples) * frac
	d := m
	t := m * (p.RandPageService + p.IndexProbeCPU + p.TupleCPU(st.AvgTupleSize))
	return ScanEstimate{T: t, D: d}
}

// ClusteredIndexScan estimates a clustered index scan of frac of the
// relation: sequential page reads of the qualifying prefix ("for index
// scans on a clustered index, it is more or less the same situation as
// that of sequential scans").
func (p Params) ClusteredIndexScan(st storage.RelStats, frac float64) ScanEstimate {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	pages := math.Ceil(float64(st.NPages) * frac)
	tuples := float64(st.NTuples) * frac
	t := pages*p.SeqPageService + tuples*(p.IndexProbeCPU+p.TupleCPU(st.AvgTupleSize))
	return ScanEstimate{T: t, D: pages}
}
