package cost

import (
	"math"
	"testing"
	"testing/quick"

	"xprs/internal/btree"
	"xprs/internal/diskmodel"
	"xprs/internal/expr"
	"xprs/internal/plan"
	"xprs/internal/storage"
)

func params() Params { return DefaultParams(diskmodel.DefaultConfig(), 8) }

func TestCalibrationEndpoints(t *testing.T) {
	p := params()
	// The calibrated model must reproduce the paper's measured rates:
	// rmin scans at 5 io/s, rmax at 70 io/s.
	if got := p.SeqScanRate(8); math.Abs(got-5) > 0.1 {
		t.Fatalf("rmin rate = %f, want 5", got)
	}
	if got := p.SeqScanRate(8150); math.Abs(got-70) > 1.0 {
		t.Fatalf("rmax rate = %f, want 70", got)
	}
	// Threshold: B/N = 240/8 = 30 io/s.
	if got := p.B / float64(p.NProcs); math.Abs(got-30) > 0.2 {
		t.Fatalf("threshold = %f, want 30", got)
	}
}

func TestSeqScanRateTrend(t *testing.T) {
	// Integer tuples-per-page makes the rate curve a sawtooth, but the
	// trend over coarse size steps is increasing: bigger tuples mean
	// fewer per page, less CPU per page, hence a higher IO rate.
	p := params()
	anchors := []float64{8, 64, 256, 1024, 4092}
	prev := 0.0
	for _, size := range anchors {
		r := p.SeqScanRate(size)
		if r <= prev {
			t.Fatalf("rate trend broken at size %f: %f <= %f", size, r, prev)
		}
		prev = r
	}
	// The single-tuple-per-page region peaks above 70 for partially
	// filled pages and lands at the paper's 70 io/s when the page fills.
	if peak := p.SeqScanRate(4093); peak <= p.SeqScanRate(8150) {
		t.Fatalf("k=1 region not decreasing: %f <= %f", peak, p.SeqScanRate(8150))
	}
}

func TestTupleSizeForRateInverts(t *testing.T) {
	p := params()
	for _, rate := range []float64{5, 10, 15, 20, 25, 30, 35, 40, 50, 60, 65} {
		size := p.TupleSizeForRate(rate)
		got := p.SeqScanRate(size)
		// Integer tuples-per-page quantizes the achievable rates; accept
		// 15% relative error.
		if math.Abs(got-rate)/rate > 0.15 {
			t.Errorf("rate %f -> size %f -> rate %f", rate, size, got)
		}
	}
	// Clamping at the extremes.
	if p.TupleSizeForRate(1) != 8 {
		t.Errorf("rate below band must clamp to rmin size")
	}
	if got := p.SeqScanRate(p.TupleSizeForRate(1000)); got < 69 {
		t.Errorf("rate above band must clamp near the top: got %f", got)
	}
}

func TestScanEstimates(t *testing.T) {
	p := params()
	st := storage.RelStats{NTuples: 10000, NPages: 100, AvgTupleSize: 60}
	seq := p.SeqScan(st)
	if seq.D != 100 {
		t.Fatalf("seqscan D = %f", seq.D)
	}
	wantT := 100*p.SeqPageService + 10000*p.TupleCPU(60)
	if math.Abs(seq.T-wantT) > 1e-9 {
		t.Fatalf("seqscan T = %f, want %f", seq.T, wantT)
	}
	if seq.Rate() <= 0 {
		t.Fatal("rate must be positive")
	}

	idx := p.IndexScan(st, 0.1)
	if idx.D != 1000 {
		t.Fatalf("indexscan D = %f", idx.D)
	}
	// Unclustered index scans are IO-bound for any reasonable tuple size.
	if idx.Rate() < 30 {
		t.Fatalf("indexscan rate = %f, want > 30 (IO-bound)", idx.Rate())
	}
	if got := p.IndexScan(st, -1).D; got != 0 {
		t.Fatalf("negative frac D = %f", got)
	}
	if got := p.IndexScan(st, 2).D; got != 10000 {
		t.Fatalf("clamped frac D = %f", got)
	}

	cl := p.ClusteredIndexScan(st, 0.25)
	if cl.D != 25 {
		t.Fatalf("clustered D = %f", cl.D)
	}
	if p.ClusteredIndexScan(st, -1).D != 0 || p.ClusteredIndexScan(st, 2).D != 100 {
		t.Fatal("clustered clamping")
	}
	if (ScanEstimate{}).Rate() != 0 {
		t.Fatal("zero estimate rate")
	}
}

func buildRel(t *testing.T, id int32, name string, n int, distinct int32) *storage.Relation {
	t.Helper()
	b := storage.NewBuilder(id, name, storage.NewSchema(
		storage.Column{Name: "a", Typ: storage.Int4},
		storage.Column{Name: "b", Typ: storage.Text},
	))
	for i := 0; i < n; i++ {
		if err := b.Append(storage.NewTuple(
			storage.IntVal(int32(i)%distinct),
			storage.TextVal("0123456789012345678901234567890123456789"),
		)); err != nil {
			t.Fatal(err)
		}
	}
	return b.Finalize()
}

func TestEstimateSeqScanFragment(t *testing.T) {
	p := params()
	r := buildRel(t, 1, "r", 2000, 1000)
	g, err := plan.Decompose(&plan.SeqScan{Rel: r, Filter: expr.ColRange(0, "a", 0, 99)})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := EstimateGraph(p, g)
	if err != nil {
		t.Fatal(err)
	}
	e := ests[g.Root.ID]
	if e.D != float64(r.NPages()) {
		t.Fatalf("D = %f, want %f", e.D, float64(r.NPages()))
	}
	// 100 of 1000 distinct values, 2000 tuples -> ~200 rows.
	if e.Rows < 150 || e.Rows > 250 {
		t.Fatalf("rows = %f, want ~200", e.Rows)
	}
	if !e.SeqIO {
		t.Fatal("seqscan fragment must be sequential IO")
	}
	if e.Rate() <= 0 || e.T <= 0 {
		t.Fatal("degenerate estimate")
	}
}

func TestEstimateIndexScanFragment(t *testing.T) {
	p := params()
	r := buildRel(t, 1, "r", 2000, 2000)
	ix, err := btree.BuildIndex("r_a", r, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	g, err := plan.Decompose(&plan.IndexScan{Rel: r, Index: ix, Lo: 0, Hi: 199})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := EstimateGraph(p, g)
	if err != nil {
		t.Fatal(err)
	}
	e := ests[g.Root.ID]
	if e.D < 150 || e.D > 250 {
		t.Fatalf("D = %f, want ~200 (one IO per fetched tuple)", e.D)
	}
	if e.SeqIO {
		t.Fatal("unclustered index scan is random IO")
	}
	// Clustered variant reads far fewer pages.
	cix, _ := btree.BuildIndex("r_a_c", r, 0, true)
	g2, _ := plan.Decompose(&plan.IndexScan{Rel: r, Index: cix, Lo: 0, Hi: 199})
	ests2, err := EstimateGraph(p, g2)
	if err != nil {
		t.Fatal(err)
	}
	if e2 := ests2[g2.Root.ID]; e2.D >= e.D {
		t.Fatalf("clustered D = %f >= unclustered %f", e2.D, e.D)
	}
}

func TestEstimateHashJoinGraph(t *testing.T) {
	p := params()
	r1 := buildRel(t, 1, "r1", 3000, 1000)
	r2 := buildRel(t, 2, "r2", 1000, 1000)
	g, err := plan.Decompose(&plan.HashJoin{
		Left:  &plan.SeqScan{Rel: r1},
		Right: &plan.SeqScan{Rel: r2},
		LCol:  0, RCol: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := EstimateGraph(p, g)
	if err != nil {
		t.Fatal(err)
	}
	build := ests[g.Fragments[0].ID]
	probe := ests[g.Root.ID]
	if build.Rows != 1000 {
		t.Fatalf("build rows = %f", build.Rows)
	}
	// Join sel = 1/1000; 3000 * 1000 / 1000 = 3000 output rows.
	if probe.Rows < 2500 || probe.Rows > 3500 {
		t.Fatalf("probe rows = %f, want ~3000", probe.Rows)
	}
	if probe.RowSize <= build.RowSize {
		t.Fatal("join output wider than inputs")
	}
	// Probe fragment IO is only the probe-side scan.
	if probe.D != float64(r1.NPages()) {
		t.Fatalf("probe D = %f", probe.D)
	}
}

func TestEstimateMergeJoinAndSort(t *testing.T) {
	p := params()
	r1 := buildRel(t, 1, "r1", 2000, 500)
	r2 := buildRel(t, 2, "r2", 1000, 500)
	g, err := plan.Decompose(&plan.MergeJoin{
		Left:  &plan.Sort{Child: &plan.SeqScan{Rel: r1}, Col: 0},
		Right: &plan.Sort{Child: &plan.SeqScan{Rel: r2}, Col: 0},
		LCol:  0, RCol: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := EstimateGraph(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 {
		t.Fatalf("estimates = %d", len(ests))
	}
	// Sort fragments carry the scan IO; merge fragment reads temps (no IO).
	if ests[g.Root.ID].D != 0 {
		t.Fatalf("merge fragment D = %f, want 0", ests[g.Root.ID].D)
	}
	if ests[g.Root.ID].Rows < 2000 || ests[g.Root.ID].Rows > 6000 {
		t.Fatalf("merge rows = %f", ests[g.Root.ID].Rows)
	}
	// A sort fragment costs more than the bare scan underneath it.
	scanOnly, _ := plan.Decompose(&plan.SeqScan{Rel: r1})
	scanEsts, err := EstimateGraph(p, scanOnly)
	if err != nil {
		t.Fatal(err)
	}
	if ests[g.Fragments[0].ID].T <= scanEsts[scanOnly.Root.ID].T {
		t.Fatal("sort fragment must cost more than its scan")
	}
}

func TestEstimateNestLoopFragment(t *testing.T) {
	p := params()
	r1 := buildRel(t, 1, "r1", 200, 100)
	r2 := buildRel(t, 2, "r2", 100, 100)
	pred := expr.Cmp{Op: expr.EQ, L: expr.Col{Idx: 0}, R: expr.Col{Idx: 2}}
	g, err := plan.Decompose(&plan.NestLoop{
		Outer: &plan.SeqScan{Rel: r1},
		Inner: &plan.SeqScan{Rel: r2},
		Pred:  pred,
	})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := EstimateGraph(p, g)
	if err != nil {
		t.Fatal(err)
	}
	e := ests[g.Root.ID]
	// Inner rescans: D = outerPages + outerRows * innerPages.
	wantD := float64(r1.NPages()) + 200*float64(r2.NPages())
	if math.Abs(e.D-wantD) > 1 {
		t.Fatalf("nestloop D = %f, want %f", e.D, wantD)
	}
	// ~1/100 join selectivity: 200*100/100 = 200 rows.
	if e.Rows < 100 || e.Rows > 400 {
		t.Fatalf("nestloop rows = %f", e.Rows)
	}
	// Cartesian product keeps everything.
	g2, _ := plan.Decompose(&plan.NestLoop{
		Outer: &plan.SeqScan{Rel: r1},
		Inner: &plan.SeqScan{Rel: r2},
	})
	ests2, err := EstimateGraph(p, g2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ests2[g2.Root.ID].Rows; got != 200*100 {
		t.Fatalf("cartesian rows = %f", got)
	}
}

func TestEstimateMaterializedNestLoop(t *testing.T) {
	p := params()
	r1 := buildRel(t, 1, "r1", 200, 100)
	r2 := buildRel(t, 2, "r2", 100, 100)
	g, err := plan.Decompose(&plan.NestLoop{
		Outer: &plan.SeqScan{Rel: r1},
		Inner: &plan.Material{Child: &plan.SeqScan{Rel: r2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := EstimateGraph(p, g)
	if err != nil {
		t.Fatal(err)
	}
	// Rescanning a temp costs CPU, not IO: root fragment D is just the
	// outer scan's pages.
	if got := ests[g.Root.ID].D; got != float64(r1.NPages()) {
		t.Fatalf("materialized nestloop D = %f", got)
	}
}

func TestSeqCost(t *testing.T) {
	p := params()
	r1 := buildRel(t, 1, "r1", 1000, 500)
	g, err := plan.Decompose(&plan.SeqScan{Rel: r1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := SeqCost(p, g)
	if err != nil {
		t.Fatal(err)
	}
	est := p.SeqScan(r1.Stats())
	if math.Abs(c-est.T) > 1e-9 {
		t.Fatalf("seqcost = %f, scan estimate = %f", c, est.T)
	}
}

func TestRangeFraction(t *testing.T) {
	st := storage.RelStats{Cols: []storage.ColStats{{Min: 0, Max: 99, NDistinct: 100}}}
	cases := []struct {
		lo, hi int32
		want   float64
	}{
		{0, 99, 1}, {0, 49, 0.5}, {50, 149, 0.5}, {200, 300, 0}, {10, 5, 0}, {-50, -10, 0},
	}
	for _, c := range cases {
		if got := rangeFraction(st, 0, c.lo, c.hi); math.Abs(got-c.want) > 0.011 {
			t.Errorf("rangeFraction(%d,%d) = %f, want %f", c.lo, c.hi, got, c.want)
		}
	}
	if got := rangeFraction(st, 5, 0, 10); got != 1.0/3.0 {
		t.Errorf("missing col stats = %f", got)
	}
}

func TestTupleCPUDurationAndSeconds(t *testing.T) {
	p := params()
	d := p.TupleCPUDuration(100)
	if d <= 0 {
		t.Fatal("non-positive duration")
	}
	if Seconds(1.5).Seconds() != 1.5 {
		t.Fatal("Seconds conversion")
	}
}

// Property: the calibrated rate stays within the paper's [5,70] band for
// all valid tuple sizes, and TupleSizeForRate round-trips into the band.
func TestPropertyRateBand(t *testing.T) {
	p := params()
	f := func(raw uint16) bool {
		size := 8 + float64(raw%8142)
		r := p.SeqScanRate(size)
		// Partially-filled single-tuple pages peak near 80 io/s (a
		// half-empty page costs half the CPU of the measured full-page
		// rmax tuple); the floor stays at the rmin calibration.
		return r >= 4.5 && r <= 85
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateAggFragment(t *testing.T) {
	p := params()
	r := buildRel(t, 1, "r", 2000, 100) // 100 groups
	g, err := plan.Decompose(&plan.Agg{
		Child:    &plan.SeqScan{Rel: r},
		GroupCol: 0,
		Funcs:    []plan.AggFunc{{Kind: plan.CountAll}, {Kind: plan.Sum, Col: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := EstimateGraph(p, g)
	if err != nil {
		t.Fatal(err)
	}
	e := ests[g.Root.ID]
	// Output rows = group count from the column's distinct statistics.
	if e.Rows < 90 || e.Rows > 110 {
		t.Fatalf("agg rows = %f, want ~100", e.Rows)
	}
	// IO unchanged (the scan drives), CPU above the bare scan.
	if e.D != float64(r.NPages()) {
		t.Fatalf("agg D = %f", e.D)
	}
	scanG, _ := plan.Decompose(&plan.SeqScan{Rel: r})
	scanEsts, err := EstimateGraph(p, scanG)
	if err != nil {
		t.Fatal(err)
	}
	if e.T <= scanEsts[scanG.Root.ID].T {
		t.Fatal("agg fragment must cost more than its scan")
	}
	// Global aggregate: one output row.
	g2, _ := plan.Decompose(&plan.Agg{
		Child:    &plan.SeqScan{Rel: r},
		GroupCol: -1,
		Funcs:    []plan.AggFunc{{Kind: plan.CountAll}},
	})
	ests2, err := EstimateGraph(p, g2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ests2[g2.Root.ID].Rows; got != 1 {
		t.Fatalf("global agg rows = %f", got)
	}
}
