package storage

import (
	"encoding/binary"
	"fmt"
)

// Physical page layout (all integers little-endian):
//
//	offset 0: uint16 tuple count
//	offset 2: uint16 lower bound of free space (end of slot array)
//	offset 4: slot array, 4 bytes per slot: uint16 data offset, uint16 length
//	...free space...
//	data region grows downward from PageSize
//
// This is the classic Postgres-style slotted page; XPRS inherits it.
const (
	pageHeaderSize = 4
	slotSize       = 4
)

// SlotOverhead is the per-tuple page overhead of one slot entry.
const SlotOverhead = slotSize

// TupleHeader is the per-tuple heap header overhead. Postgres-era heap
// tuples carry roughly 40 bytes of header (xmin/xmax/ctid/infomask...);
// XPRS inherits that layout. This constant is load-bearing for the §3
// calibration: it sets how many minimal tuples fit on an rmin page and
// hence the per-tuple CPU cost derived from the measured 5 io/s rate.
const TupleHeader = 40

// PageCapacity is the payload capacity of a page: everything but the
// page header. A tuple of payload size s consumes
// s + SlotOverhead + TupleHeader of it.
const PageCapacity = PageSize - pageHeaderSize

// TuplesPerPage returns how many tuples of the given payload size fit on
// one page (at least 1: XPRS's rmax relation stores one oversized tuple
// per page, so the page abstraction must admit a single tuple whose
// payload fills the page).
func TuplesPerPage(tupleSize int) int {
	if tupleSize <= 0 {
		tupleSize = 1
	}
	n := PageCapacity / (tupleSize + SlotOverhead + TupleHeader)
	if n < 1 {
		n = 1
	}
	return n
}

// pageBuf is a mutable physical page image under construction.
type pageBuf struct {
	data []byte
	free int // bytes of free space remaining
	end  int // current end of the data region (grows downward)
}

func newPageBuf() *pageBuf {
	b := &pageBuf{data: make([]byte, PageSize), end: PageSize}
	b.free = PageCapacity
	return b
}

func (b *pageBuf) count() int {
	return int(binary.LittleEndian.Uint16(b.data[0:2]))
}

// fits reports whether a tuple with the given payload size can be added.
// Space accounting reserves the heap tuple header alongside the payload
// and slot so physical pages agree with TuplesPerPage.
func (b *pageBuf) fits(size int) bool {
	return size+slotSize+TupleHeader <= b.free
}

// add appends the encoded tuple to the page. It panics if the tuple does
// not fit; callers must check fits first.
func (b *pageBuf) add(enc []byte) {
	n := b.count()
	need := len(enc) + slotSize + TupleHeader
	if need > b.free {
		panic(fmt.Sprintf("storage: tuple of %d bytes does not fit (%d free)", len(enc), b.free))
	}
	b.end -= len(enc)
	copy(b.data[b.end:], enc)
	slot := pageHeaderSize + n*slotSize
	binary.LittleEndian.PutUint16(b.data[slot:], uint16(b.end))
	binary.LittleEndian.PutUint16(b.data[slot+2:], uint16(len(enc)))
	binary.LittleEndian.PutUint16(b.data[0:2], uint16(n+1))
	binary.LittleEndian.PutUint16(b.data[2:4], uint16(slot+slotSize))
	b.free -= need
	// The reserved header bytes live conceptually at the front of the
	// tuple payload; they carry no simulated content, so only the space
	// accounting moves.
	b.end -= TupleHeader
}

// encodeTuple serializes a tuple according to the schema: int4 as 4 bytes,
// text as uint32 length prefix plus bytes.
func encodeTuple(s Schema, t Tuple) ([]byte, error) {
	if len(t.Vals) != len(s.Cols) {
		return nil, fmt.Errorf("storage: tuple has %d values, schema has %d columns", len(t.Vals), len(s.Cols))
	}
	buf := make([]byte, 0, t.Size())
	for i, v := range t.Vals {
		if v.Typ != s.Cols[i].Typ {
			return nil, fmt.Errorf("storage: column %q is %v, value is %v", s.Cols[i].Name, s.Cols[i].Typ, v.Typ)
		}
		switch v.Typ {
		case Int4:
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(v.Int))
			buf = append(buf, b[:]...)
		case Text:
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(len(v.Str)))
			buf = append(buf, b[:]...)
			buf = append(buf, v.Str...)
		}
	}
	return buf, nil
}

// decodeTuple parses one encoded tuple.
func decodeTuple(s Schema, data []byte) (Tuple, error) {
	vals := make([]Value, len(s.Cols))
	off := 0
	for i, c := range s.Cols {
		switch c.Typ {
		case Int4:
			if off+4 > len(data) {
				return Tuple{}, fmt.Errorf("storage: truncated int4 in column %q", c.Name)
			}
			vals[i] = IntVal(int32(binary.LittleEndian.Uint32(data[off:])))
			off += 4
		case Text:
			if off+4 > len(data) {
				return Tuple{}, fmt.Errorf("storage: truncated text length in column %q", c.Name)
			}
			n := int(binary.LittleEndian.Uint32(data[off:]))
			off += 4
			if off+n > len(data) {
				return Tuple{}, fmt.Errorf("storage: truncated text body in column %q", c.Name)
			}
			vals[i] = TextVal(string(data[off : off+n]))
			off += n
		}
	}
	if off != len(data) {
		return Tuple{}, fmt.Errorf("storage: %d trailing bytes after tuple", len(data)-off)
	}
	return Tuple{Vals: vals}, nil
}

// decodePageCols appends every tuple of a physical page image to dst's
// column vectors. Unlike decodeTuple it allocates nothing per tuple:
// int4 values land directly in the []int32 vector and text bytes are
// copied into the shared column buffer.
func decodePageCols(s Schema, data []byte, dst *ColBatch) error {
	if len(data) != PageSize {
		return fmt.Errorf("storage: page image is %d bytes, want %d", len(data), PageSize)
	}
	n := int(binary.LittleEndian.Uint16(data[0:2]))
	for i := 0; i < n; i++ {
		slot := pageHeaderSize + i*slotSize
		off := int(binary.LittleEndian.Uint16(data[slot:]))
		ln := int(binary.LittleEndian.Uint16(data[slot+2:]))
		if off+ln > PageSize {
			return fmt.Errorf("storage: slot %d points outside page", i)
		}
		tup := data[off : off+ln]
		pos := 0
		for c := range s.Cols {
			v := &dst.Vecs[c]
			switch s.Cols[c].Typ {
			case Int4:
				if pos+4 > len(tup) {
					return fmt.Errorf("storage: slot %d: truncated int4 in column %q", i, s.Cols[c].Name)
				}
				v.Ints = append(v.Ints, int32(binary.LittleEndian.Uint32(tup[pos:])))
				pos += 4
			case Text:
				if pos+4 > len(tup) {
					return fmt.Errorf("storage: slot %d: truncated text length in column %q", i, s.Cols[c].Name)
				}
				tn := int(binary.LittleEndian.Uint32(tup[pos:]))
				pos += 4
				if pos+tn > len(tup) {
					return fmt.Errorf("storage: slot %d: truncated text body in column %q", i, s.Cols[c].Name)
				}
				v.appendText(tup[pos : pos+tn])
				pos += tn
			}
		}
		if pos != len(tup) {
			return fmt.Errorf("storage: slot %d: %d trailing bytes after tuple", i, len(tup)-pos)
		}
		dst.N++
	}
	return nil
}

// decodePage extracts all tuples from a physical page image.
func decodePage(s Schema, data []byte) ([]Tuple, error) {
	if len(data) != PageSize {
		return nil, fmt.Errorf("storage: page image is %d bytes, want %d", len(data), PageSize)
	}
	n := int(binary.LittleEndian.Uint16(data[0:2]))
	out := make([]Tuple, n)
	for i := 0; i < n; i++ {
		slot := pageHeaderSize + i*slotSize
		off := int(binary.LittleEndian.Uint16(data[slot:]))
		ln := int(binary.LittleEndian.Uint16(data[slot+2:]))
		if off+ln > PageSize {
			return nil, fmt.Errorf("storage: slot %d points outside page", i)
		}
		t, err := decodeTuple(s, data[off:off+ln])
		if err != nil {
			return nil, fmt.Errorf("slot %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}
