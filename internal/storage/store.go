package storage

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"xprs/internal/diskmodel"
	"xprs/internal/vclock"
)

// BufferPool tracks page residency with LRU replacement. Page contents
// always live in the Relation (this is a simulation of IO, not of memory
// pressure on data); the pool decides whether a read is charged to the
// disk model. A zero-capacity pool disables caching, which is how the
// §3 experiments run so that every scan pays its IO.
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recent; values are pageKey
	pages    map[pageKey]*list.Element

	hits, misses int64
}

type pageKey struct {
	rel  int32
	page int64
}

// NewBufferPool creates a pool holding up to capacity pages.
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 0 {
		capacity = 0
	}
	return &BufferPool{
		capacity: capacity,
		lru:      list.New(),
		pages:    make(map[pageKey]*list.Element),
	}
}

// touch records an access; it returns true on a hit.
func (bp *BufferPool) touch(k pageKey) bool {
	if bp.capacity == 0 {
		bp.mu.Lock()
		bp.misses++
		bp.mu.Unlock()
		return false
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if el, ok := bp.pages[k]; ok {
		bp.lru.MoveToFront(el)
		bp.hits++
		return true
	}
	bp.misses++
	el := bp.lru.PushFront(k)
	bp.pages[k] = el
	for bp.lru.Len() > bp.capacity {
		old := bp.lru.Back()
		bp.lru.Remove(old)
		delete(bp.pages, old.Value.(pageKey))
	}
	return false
}

// Stats returns hit and miss counts.
func (bp *BufferPool) Stats() (hits, misses int64) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.hits, bp.misses
}

// Invalidate drops all cached residency (e.g. between experiments).
func (bp *BufferPool) Invalidate() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.lru.Init()
	bp.pages = make(map[pageKey]*list.Element)
}

// Store is the shared storage manager: the catalog of relations plus the
// clock, disk array and buffer pool every reader goes through.
type Store struct {
	Clock vclock.Clock
	Disks *diskmodel.Array
	Pool  *BufferPool

	mu     sync.Mutex
	byName map[string]*Relation
	byID   map[int32]*Relation
	nextID int32
}

// NewStore creates a store on the given clock and disk array. poolPages
// sets the buffer pool capacity (0 disables caching).
func NewStore(clock vclock.Clock, disks *diskmodel.Array, poolPages int) *Store {
	return &Store{
		Clock:  clock,
		Disks:  disks,
		Pool:   NewBufferPool(poolPages),
		byName: make(map[string]*Relation),
		byID:   make(map[int32]*Relation),
		nextID: 1,
	}
}

// NextID reserves a relation ID for an externally built relation.
func (s *Store) NextID() int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	return id
}

// Add registers a finished relation. Names must be unique.
func (s *Store) Add(r *Relation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byName[r.Name]; dup {
		return fmt.Errorf("storage: relation %q already exists", r.Name)
	}
	if _, dup := s.byID[r.ID]; dup {
		return fmt.Errorf("storage: relation ID %d already exists", r.ID)
	}
	s.byName[r.Name] = r
	s.byID[r.ID] = r
	return nil
}

// Relation looks a relation up by name.
func (s *Store) Relation(name string) (*Relation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byName[name]
	return r, ok
}

// RelationByID looks a relation up by ID.
func (s *Store) RelationByID(id int32) (*Relation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byID[id]
	return r, ok
}

// Relations returns all registered relations (unordered).
func (s *Store) Relations() []*Relation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Relation, 0, len(s.byName))
	for _, r := range s.byName {
		out = append(out, r)
	}
	return out
}

// Drop removes a relation (used for temporaries holding fragment results).
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.byName[name]; ok {
		delete(s.byName, name)
		delete(s.byID, r.ID)
	}
}

// EnqueuePage reserves the IO for page p of rel (unless the buffer pool
// holds it) and returns the virtual instant the page is available,
// without blocking. Sequential scans use it to model OS readahead;
// parallel marks multi-slave scans, whose de-ordered request streams see
// at most almost-sequential disk service (§3).
func (s *Store) EnqueuePage(rel *Relation, p int64, parallel bool) time.Duration {
	if s.Pool.touch(pageKey{rel: rel.ID, page: p}) {
		return s.Clock.Now()
	}
	return s.Disks.Enqueue(rel.ID, p, parallel)
}

// ReadPage charges the IO for page p of rel (unless the buffer pool holds
// it), blocks until it is served, and returns the page's tuples. This is
// the single-stream path (inner rescans, utilities); parallel scans go
// through EnqueuePage.
func (s *Store) ReadPage(rel *Relation, p int64) ([]Tuple, error) {
	s.Clock.SleepUntil(s.EnqueuePage(rel, p, false))
	return rel.PageTuples(p)
}

// ReadTID charges the IO for the page holding tid and returns the tuple.
// Unclustered index scans use this: one (usually random) page read per
// qualifying tuple, which is why such scans are IO-bound (§3).
func (s *Store) ReadTID(rel *Relation, tid TID) (Tuple, error) {
	if !s.Pool.touch(pageKey{rel: rel.ID, page: tid.Page}) {
		s.Disks.Read(rel.ID, tid.Page)
	}
	return rel.TupleAt(tid)
}
