package storage

import (
	"container/list"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"xprs/internal/diskmodel"
	"xprs/internal/obs"
	"xprs/internal/vclock"
)

// BufferPool tracks page residency with LRU replacement, sharded by
// page-key hash so parallel scan slaves do not serialize on a single
// mutex. Page contents always live in the Relation (this is a simulation
// of IO, not of memory pressure on data); the pool decides whether a
// read is charged to the disk model. A zero-capacity pool disables
// caching, which is how the §3 experiments run so that every scan pays
// its IO.
//
// Each shard runs an independent LRU over its slice of the capacity,
// which approximates global LRU under hashing. Small pools stay at one
// shard so eviction order is exactly global LRU (tests and experiments
// with tiny capacities depend on that); sharding kicks in only when the
// per-shard capacity stays meaningful.
type BufferPool struct {
	shards []poolShard
	mask   uint64

	hits, misses atomic.Int64
}

// poolShard is one independently locked LRU. The trailing pad keeps
// adjacent shards off one cache line.
type poolShard struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recent; values are pageKey
	pages map[pageKey]*list.Element
	_     [64]byte
}

type pageKey struct {
	rel  int32
	page int64
}

// minShardCapacity is the smallest per-shard capacity worth splitting
// into: below it, hash imbalance would make eviction behavior diverge
// too far from global LRU.
const minShardCapacity = 8

// poolShardCount picks the shard count: the largest power of two that
// is at most GOMAXPROCS and leaves every shard at least
// minShardCapacity pages.
func poolShardCount(capacity int) int {
	n := 1
	for n*2 <= runtime.GOMAXPROCS(0) && capacity/(n*2) >= minShardCapacity {
		n *= 2
	}
	return n
}

// NewBufferPool creates a pool holding up to capacity pages.
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 0 {
		capacity = 0
	}
	n := 1
	if capacity > 0 {
		n = poolShardCount(capacity)
	}
	bp := &BufferPool{shards: make([]poolShard, n), mask: uint64(n - 1)}
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.cap = capacity / n
		if i < capacity%n {
			sh.cap++
		}
		sh.lru = list.New()
		sh.pages = make(map[pageKey]*list.Element)
	}
	return bp
}

// hash mixes a page key into a shard index (splitmix64-style finalizer;
// rel and page alone are both sequential, so raw bits would pile onto a
// few shards).
func (k pageKey) hash() uint64 {
	x := uint64(k.page)*0x9E3779B97F4A7C15 ^ uint64(uint32(k.rel))*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// touch records an access; it returns true on a hit.
func (bp *BufferPool) touch(k pageKey) bool {
	sh := &bp.shards[k.hash()&bp.mask]
	if sh.cap == 0 {
		// Caching disabled: count the miss without taking any lock.
		bp.misses.Add(1)
		return false
	}
	sh.mu.Lock()
	if el, ok := sh.pages[k]; ok {
		sh.lru.MoveToFront(el)
		sh.mu.Unlock()
		bp.hits.Add(1)
		return true
	}
	if sh.lru.Len() >= sh.cap {
		// Recycle the evicted element so steady-state misses allocate
		// nothing.
		el := sh.lru.Back()
		delete(sh.pages, el.Value.(pageKey))
		el.Value = k
		sh.lru.MoveToFront(el)
		sh.pages[k] = el
	} else {
		sh.pages[k] = sh.lru.PushFront(k)
	}
	sh.mu.Unlock()
	bp.misses.Add(1)
	return false
}

// Touch records an access to page p of relation rel, returning true on
// a hit. It is the public probe used by benchmarks and diagnostics; the
// store's read paths go through it implicitly.
func (bp *BufferPool) Touch(rel int32, page int64) bool {
	return bp.touch(pageKey{rel: rel, page: page})
}

// Stats returns hit and miss counts.
func (bp *BufferPool) Stats() (hits, misses int64) {
	return bp.hits.Load(), bp.misses.Load()
}

// RegisterMetrics exposes the pool's hit/miss counters through a metrics
// registry. The registry reads the pool's own atomics at snapshot time;
// the hot path is untouched. A nil registry is a no-op.
func (bp *BufferPool) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterFunc("bufferpool.hits", bp.hits.Load)
	reg.RegisterFunc("bufferpool.misses", bp.misses.Load)
}

// Invalidate drops all cached residency (e.g. between experiments).
func (bp *BufferPool) Invalidate() {
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		sh.lru.Init()
		sh.pages = make(map[pageKey]*list.Element)
		sh.mu.Unlock()
	}
}

// Store is the shared storage manager: the catalog of relations plus the
// clock, disk array and buffer pool every reader goes through.
type Store struct {
	Clock vclock.Clock
	Disks *diskmodel.Array
	Pool  *BufferPool

	mu     sync.Mutex
	byName map[string]*Relation
	byID   map[int32]*Relation
	nextID int32
}

// NewStore creates a store on the given clock and disk array. poolPages
// sets the buffer pool capacity (0 disables caching).
func NewStore(clock vclock.Clock, disks *diskmodel.Array, poolPages int) *Store {
	return &Store{
		Clock:  clock,
		Disks:  disks,
		Pool:   NewBufferPool(poolPages),
		byName: make(map[string]*Relation),
		byID:   make(map[int32]*Relation),
		nextID: 1,
	}
}

// RegisterMetrics exposes the store's buffer-pool counters through a
// metrics registry (nil is a no-op).
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	s.Pool.RegisterMetrics(reg)
}

// NextID reserves a relation ID for an externally built relation.
func (s *Store) NextID() int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	return id
}

// Add registers a finished relation. Names must be unique.
func (s *Store) Add(r *Relation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byName[r.Name]; dup {
		return fmt.Errorf("storage: relation %q already exists", r.Name)
	}
	if _, dup := s.byID[r.ID]; dup {
		return fmt.Errorf("storage: relation ID %d already exists", r.ID)
	}
	s.byName[r.Name] = r
	s.byID[r.ID] = r
	return nil
}

// Relation looks a relation up by name.
func (s *Store) Relation(name string) (*Relation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byName[name]
	return r, ok
}

// RelationByID looks a relation up by ID.
func (s *Store) RelationByID(id int32) (*Relation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byID[id]
	return r, ok
}

// Relations returns all registered relations in ID order, so callers
// that iterate it feed deterministic sequences downstream.
func (s *Store) Relations() []*Relation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Relation, 0, len(s.byName))
	for _, r := range s.byName {
		out = append(out, r)
	}
	slices.SortFunc(out, func(a, b *Relation) int { return int(a.ID) - int(b.ID) })
	return out
}

// Drop removes a relation (used for temporaries holding fragment results).
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.byName[name]; ok {
		delete(s.byName, name)
		delete(s.byID, r.ID)
	}
}

// EnqueuePage reserves the IO for page p of rel (unless the buffer pool
// holds it) and returns the virtual instant the page is available,
// without blocking. Sequential scans use it to model OS readahead;
// parallel marks multi-slave scans, whose de-ordered request streams see
// at most almost-sequential disk service (§3).
func (s *Store) EnqueuePage(rel *Relation, p int64, parallel bool) time.Duration {
	if s.Pool.touch(pageKey{rel: rel.ID, page: p}) {
		return s.Clock.Now()
	}
	return s.Disks.Enqueue(rel.ID, p, parallel)
}

// ReadPage charges the IO for page p of rel (unless the buffer pool holds
// it), blocks until it is served, and returns the page's tuples. This is
// the single-stream path (inner rescans, utilities); parallel scans go
// through EnqueuePage.
func (s *Store) ReadPage(rel *Relation, p int64) ([]Tuple, error) {
	s.Clock.SleepUntil(s.EnqueuePage(rel, p, false))
	return rel.PageTuples(p)
}

// ReadTID charges the IO for the page holding tid and returns the tuple.
// Unclustered index scans use this: one (usually random) page read per
// qualifying tuple, which is why such scans are IO-bound (§3).
func (s *Store) ReadTID(rel *Relation, tid TID) (Tuple, error) {
	if !s.Pool.touch(pageKey{rel: rel.ID, page: tid.Page}) {
		s.Disks.Read(rel.ID, tid.Page)
	}
	return rel.TupleAt(tid)
}
