package storage

import (
	"fmt"
	"math"
)

// ColStats holds optimizer statistics for one column, computed when the
// relation is finalized. Only int4 columns carry value statistics; text
// columns carry the average width (the IO-rate knob of §3).
type ColStats struct {
	// Min and Max bound the column's values (int4 only).
	Min, Max int32
	// NDistinct approximates the number of distinct values.
	NDistinct int64
	// AvgWidth is the average on-page width of the column in bytes.
	AvgWidth float64
}

// RelStats holds relation-level statistics used by the cost model.
type RelStats struct {
	NTuples int64
	NPages  int64
	// AvgTupleSize is the mean tuple payload size in bytes.
	AvgTupleSize float64
	Cols         []ColStats
}

// TuplesPerPage returns the average number of tuples on one page.
func (s RelStats) TuplesPerPage() float64 {
	if s.NPages == 0 {
		return 0
	}
	return float64(s.NTuples) / float64(s.NPages)
}

// Generator produces row i of a synthetic relation. It must be a pure
// function of i so that rescans and parallel scans see identical data.
type Generator func(row int64) Tuple

// Relation is a heap relation striped block-by-block across the disk
// array. It is immutable once built (XPRS query-processing experiments
// are read-only).
type Relation struct {
	ID     int32
	Name   string
	Schema Schema

	// exactly one of the two storage forms is populated
	phys [][]byte  // physical: one 8 KB image per page
	gen  Generator // synthetic: deterministic row source
	// decoded caches the tuples of every physical page, built once at
	// Finalize. Pages of a sealed relation are immutable, so readers
	// share these slices; they must never be written through.
	decoded [][]Tuple
	// decodedCols caches the same pages in columnar layout (one owned
	// ColBatch per page, no selection vector), also built at Finalize.
	// Shared and read-only like decoded.
	decodedCols []*ColBatch
	// synthetic layout
	rowsPerPage int
	nrows       int64

	stats RelStats
}

// NPages returns the number of pages in the relation.
func (r *Relation) NPages() int64 {
	if r.gen != nil {
		if r.nrows == 0 {
			return 0
		}
		return (r.nrows + int64(r.rowsPerPage) - 1) / int64(r.rowsPerPage)
	}
	return int64(len(r.phys))
}

// NTuples returns the number of tuples in the relation.
func (r *Relation) NTuples() int64 { return r.stats.NTuples }

// Stats returns the relation's statistics.
func (r *Relation) Stats() RelStats { return r.stats }

// Synthetic reports whether the relation is generator-backed.
func (r *Relation) Synthetic() bool { return r.gen != nil }

// PageTuples returns all tuples of page p. It performs no IO accounting;
// callers go through Store.ReadPage to charge the disk model first.
// Physical pages come from the relation's decode cache: the returned
// slice is shared and read-only.
func (r *Relation) PageTuples(p int64) ([]Tuple, error) {
	if p < 0 || p >= r.NPages() {
		return nil, fmt.Errorf("storage: page %d out of range [0,%d) in %q", p, r.NPages(), r.Name)
	}
	if r.gen != nil {
		lo := p * int64(r.rowsPerPage)
		hi := lo + int64(r.rowsPerPage)
		if hi > r.nrows {
			hi = r.nrows
		}
		out := make([]Tuple, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, r.gen(i))
		}
		return out, nil
	}
	if r.decoded != nil {
		return r.decoded[p], nil
	}
	return decodePage(r.Schema, r.phys[p])
}

// PageTuplesInto returns all tuples of page p, materializing
// generator-backed pages into buf (which should have length 0) instead
// of a fresh slice. Physical pages ignore buf and return the shared
// decode cache. Either way the result is read-only, and for synthetic
// relations it is valid only until buf's next reuse.
func (r *Relation) PageTuplesInto(p int64, buf []Tuple) ([]Tuple, error) {
	if r.gen == nil {
		return r.PageTuples(p)
	}
	if p < 0 || p >= r.NPages() {
		return nil, fmt.Errorf("storage: page %d out of range [0,%d) in %q", p, r.NPages(), r.Name)
	}
	lo := p * int64(r.rowsPerPage)
	hi := lo + int64(r.rowsPerPage)
	if hi > r.nrows {
		hi = r.nrows
	}
	for i := lo; i < hi; i++ {
		buf = append(buf, r.gen(i))
	}
	return buf, nil
}

// PageCols returns page p in columnar form. Physical pages come from
// the relation's shared columnar decode cache (read-only); synthetic
// pages require caller scratch and must go through PageColsInto.
func (r *Relation) PageCols(p int64) (*ColBatch, error) {
	if p < 0 || p >= r.NPages() {
		return nil, fmt.Errorf("storage: page %d out of range [0,%d) in %q", p, r.NPages(), r.Name)
	}
	if r.gen != nil {
		return nil, fmt.Errorf("storage: PageCols on synthetic relation %q (use PageColsInto)", r.Name)
	}
	if r.decodedCols != nil {
		return r.decodedCols[p], nil
	}
	dst := NewColBatch(r.Schema, TuplesPerPage(int(r.stats.AvgTupleSize)))
	if err := decodePageCols(r.Schema, r.phys[p], dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// PageColsInto materializes page p into dst (an owned, empty batch
// shaped for the relation's schema): generator-backed pages are
// generated straight into the vectors, physical pages are returned from
// the shared cache without touching dst. Either way the result is
// read-only; for synthetic relations it is valid until dst's next reuse.
func (r *Relation) PageColsInto(p int64, dst *ColBatch) (*ColBatch, error) {
	if r.gen == nil {
		return r.PageCols(p)
	}
	if p < 0 || p >= r.NPages() {
		return nil, fmt.Errorf("storage: page %d out of range [0,%d) in %q", p, r.NPages(), r.Name)
	}
	lo := p * int64(r.rowsPerPage)
	hi := lo + int64(r.rowsPerPage)
	if hi > r.nrows {
		hi = r.nrows
	}
	for i := lo; i < hi; i++ {
		dst.AppendTuple(r.gen(i))
	}
	return dst, nil
}

// TupleAt returns the tuple addressed by a TID.
func (r *Relation) TupleAt(tid TID) (Tuple, error) {
	if r.gen != nil {
		row := tid.Page*int64(r.rowsPerPage) + int64(tid.Slot)
		if tid.Slot < 0 || int(tid.Slot) >= r.rowsPerPage || row >= r.nrows {
			return Tuple{}, fmt.Errorf("storage: TID %v out of range in %q", tid, r.Name)
		}
		return r.gen(row), nil
	}
	tuples, err := r.PageTuples(tid.Page)
	if err != nil {
		return Tuple{}, err
	}
	if tid.Slot < 0 || int(tid.Slot) >= len(tuples) {
		return Tuple{}, fmt.Errorf("storage: slot %d out of range on page %d of %q", tid.Slot, tid.Page, r.Name)
	}
	return tuples[tid.Slot], nil
}

// Builder accumulates tuples into a physical relation.
type Builder struct {
	rel  *Relation
	page *pageBuf
	agg  statsAgg
}

// NewBuilder starts building a physical relation. The relation becomes
// usable after Finalize.
func NewBuilder(id int32, name string, schema Schema) *Builder {
	return &Builder{
		rel: &Relation{ID: id, Name: name, Schema: schema},
		agg: newStatsAgg(schema),
	}
}

// Append adds one tuple, starting a new page when the current one is full.
func (b *Builder) Append(t Tuple) error {
	enc, err := encodeTuple(b.rel.Schema, t)
	if err != nil {
		return err
	}
	if len(enc)+SlotOverhead+TupleHeader > PageCapacity {
		return fmt.Errorf("storage: tuple of %d bytes exceeds page capacity", len(enc))
	}
	if b.page == nil || !b.page.fits(len(enc)) {
		b.flush()
		b.page = newPageBuf()
	}
	b.page.add(enc)
	b.agg.observe(t, len(enc))
	return nil
}

func (b *Builder) flush() {
	if b.page != nil && b.page.count() > 0 {
		b.rel.phys = append(b.rel.phys, b.page.data)
		b.page = nil
	}
}

// Finalize seals the relation and computes its statistics. Sealing
// decodes every page once into the relation's shared tuple cache, so
// scans (and nestloop rescans in particular) stop paying a fresh decode
// per page read.
func (b *Builder) Finalize() *Relation {
	b.flush()
	b.rel.stats = b.agg.finish(int64(len(b.rel.phys)))
	dec := make([][]Tuple, len(b.rel.phys))
	cols := make([]*ColBatch, len(b.rel.phys))
	perPage := TuplesPerPage(int(b.rel.stats.AvgTupleSize))
	for p := range b.rel.phys {
		ts, err := decodePage(b.rel.Schema, b.rel.phys[p])
		if err != nil {
			// A page the builder itself wrote cannot be corrupt; if it
			// somehow is, leave the cache off and let readers surface the
			// decode error.
			return b.rel
		}
		dec[p] = ts
		cb := NewColBatch(b.rel.Schema, perPage)
		if err := decodePageCols(b.rel.Schema, b.rel.phys[p], cb); err != nil {
			return b.rel
		}
		cols[p] = cb
	}
	b.rel.decoded = dec
	b.rel.decodedCols = cols
	return b.rel
}

// NewSynthetic creates a generator-backed relation. rowsPerPage fixes the
// page layout; gen(i) must be pure. Statistics are computed by sampling
// the generator, plus exact bounds supplied by the caller through the
// returned relation's stats (computed over a full pass if ntuples is
// small, otherwise over a deterministic sample).
func NewSynthetic(id int32, name string, schema Schema, ntuples int64, rowsPerPage int, gen Generator) (*Relation, error) {
	if rowsPerPage <= 0 {
		return nil, fmt.Errorf("storage: rowsPerPage = %d, need > 0", rowsPerPage)
	}
	if ntuples < 0 {
		return nil, fmt.Errorf("storage: ntuples = %d, need >= 0", ntuples)
	}
	r := &Relation{ID: id, Name: name, Schema: schema, gen: gen, rowsPerPage: rowsPerPage, nrows: ntuples}
	agg := newStatsAgg(schema)
	// Sample at most 4096 rows, stride-spaced, to estimate stats.
	const maxSample = 4096
	step := int64(1)
	if ntuples > maxSample {
		step = ntuples / maxSample
	}
	sampled := int64(0)
	for i := int64(0); i < ntuples; i += step {
		t := gen(i)
		enc, err := encodeTuple(schema, t)
		if err != nil {
			return nil, fmt.Errorf("storage: synthetic row %d: %w", i, err)
		}
		agg.observe(t, len(enc))
		sampled++
	}
	st := agg.finish(r.NPages())
	// Scale sampled counts back to the full relation.
	if sampled > 0 && ntuples != sampled {
		scale := float64(ntuples) / float64(sampled)
		st.NTuples = ntuples
		for i := range st.Cols {
			est := int64(float64(st.Cols[i].NDistinct) * scale)
			if est > ntuples {
				est = ntuples
			}
			if st.Cols[i].NDistinct > 0 && est < st.Cols[i].NDistinct {
				est = st.Cols[i].NDistinct
			}
			st.Cols[i].NDistinct = est
		}
	}
	r.stats = st
	return r, nil
}

// statsAgg accumulates column statistics during a build.
type statsAgg struct {
	schema    Schema
	n         int64
	sizeSum   int64
	mins      []int32
	maxs      []int32
	distincts []map[int32]struct{}
	widthSums []float64
}

func newStatsAgg(s Schema) statsAgg {
	a := statsAgg{
		schema:    s,
		mins:      make([]int32, s.Len()),
		maxs:      make([]int32, s.Len()),
		distincts: make([]map[int32]struct{}, s.Len()),
		widthSums: make([]float64, s.Len()),
	}
	for i := range a.mins {
		a.mins[i] = math.MaxInt32
		a.maxs[i] = math.MinInt32
		a.distincts[i] = make(map[int32]struct{})
	}
	return a
}

func (a *statsAgg) observe(t Tuple, encSize int) {
	a.n++
	a.sizeSum += int64(encSize)
	for i, v := range t.Vals {
		a.widthSums[i] += float64(v.Size())
		if v.Typ == Int4 {
			if v.Int < a.mins[i] {
				a.mins[i] = v.Int
			}
			if v.Int > a.maxs[i] {
				a.maxs[i] = v.Int
			}
			// Cap the exact-distinct tracking to bound memory.
			if len(a.distincts[i]) < 1<<16 {
				a.distincts[i][v.Int] = struct{}{}
			}
		}
	}
}

func (a *statsAgg) finish(npages int64) RelStats {
	st := RelStats{NTuples: a.n, NPages: npages, Cols: make([]ColStats, a.schema.Len())}
	if a.n > 0 {
		st.AvgTupleSize = float64(a.sizeSum) / float64(a.n)
	}
	for i := range st.Cols {
		cs := &st.Cols[i]
		if a.n > 0 {
			cs.AvgWidth = a.widthSums[i] / float64(a.n)
		}
		if a.schema.Cols[i].Typ == Int4 && a.n > 0 {
			cs.Min, cs.Max = a.mins[i], a.maxs[i]
			cs.NDistinct = int64(len(a.distincts[i]))
		}
	}
	return st
}
