package storage

import "fmt"

// Columnar batch layout. A ColBatch holds one column vector per schema
// column: int4 columns are flat []int32, text columns are a shared byte
// buffer plus per-row (start, end) spans. Spans are allowed to ALIAS:
// appending a payload byte-identical to the previous row reuses its span
// instead of copying, so runs of repeated values (padded synthetic
// tuples, a probe fanning one build row over many matches) cost two
// int32s per row rather than the payload bytes. A selection vector marks
// the live rows of a batch without moving any data, so a filter touches
// one []int32 instead of rewriting the batch.
//
// Ownership convention: a batch either OWNS its vectors (appends
// allowed) or is a VIEW over a row range of another batch (created by
// Slice; read-only). Views share the underlying Buf, which is why text
// spans are absolute rather than Buf-relative.
//
// Pruned columns are represented by a placeholder vector that keeps its
// Typ but has nil storage: logical column indexes stay stable through a
// projection, so compiled operators never remap indices. Reading a pruned
// column is a bug and panics.

// Vec is one column vector of a ColBatch.
type Vec struct {
	Typ Type
	// Ints holds the values of an Int4 column, one per row.
	Ints []int32
	// Off, End and Buf hold a Text column: row i spans Buf[Off[i]:End[i]].
	// len(Off) == len(End) == rows. Spans are absolute into Buf so
	// row-range views can share the buffer, and may alias each other
	// (identical consecutive payloads share one span).
	Off []int32
	End []int32
	Buf []byte
}

// Pruned reports whether the vector is a placeholder for a projected-out
// column.
func (v *Vec) Pruned() bool {
	return v.Ints == nil && v.Off == nil
}

// Bytes returns the text payload of the given row without copying.
func (v *Vec) Bytes(row int) []byte {
	return v.Buf[v.Off[row]:v.End[row]]
}

// appendText appends one text payload. When the payload is byte-identical
// to the previously appended row, the new row aliases the previous span
// instead of copying — the string comparison compiles to an allocation-
// free memequal and exits on the first differing byte, so distinct
// payloads pay one comparison step, not a scan.
func (v *Vec) appendText(b []byte) {
	if n := len(v.Off); n > 0 {
		s, e := v.Off[n-1], v.End[n-1]
		if int(e-s) == len(b) && string(v.Buf[s:e]) == string(b) {
			v.Off = append(v.Off, s)
			v.End = append(v.End, e)
			return
		}
	}
	s := int32(len(v.Buf))
	v.Buf = append(v.Buf, b...)
	v.Off = append(v.Off, s)
	v.End = append(v.End, int32(len(v.Buf)))
}

// appendTextStr is appendText for a string payload.
func (v *Vec) appendTextStr(b string) {
	if n := len(v.Off); n > 0 {
		s, e := v.Off[n-1], v.End[n-1]
		if int(e-s) == len(b) && string(v.Buf[s:e]) == b {
			v.Off = append(v.Off, s)
			v.End = append(v.End, e)
			return
		}
	}
	s := int32(len(v.Buf))
	v.Buf = append(v.Buf, b...)
	v.Off = append(v.Off, s)
	v.End = append(v.End, int32(len(v.Buf)))
}

// Str returns the text payload of the given row as a string (copies).
func (v *Vec) Str(row int) string {
	return string(v.Bytes(row))
}

// ColBatch is a batch of N rows in columnar layout with an optional
// selection vector.
type ColBatch struct {
	// N is the number of physical rows in the vectors.
	N int
	// Vecs has one entry per schema column.
	Vecs []Vec
	// Sel lists the live row indexes in ascending order; nil means all N
	// rows are live. Sel never aliases batch storage and is not carried
	// into Slice views.
	Sel []int32
}

// NewColBatch returns an owned batch shaped for the schema with row
// capacity capRows.
func NewColBatch(s Schema, capRows int) *ColBatch {
	b := &ColBatch{}
	b.Init(s, capRows)
	return b
}

// Init (re)shapes the batch for the schema, reusing vector storage when
// the capacity is already there. The batch comes out empty and owned.
func (b *ColBatch) Init(s Schema, capRows int) {
	if cap(b.Vecs) < len(s.Cols) {
		b.Vecs = make([]Vec, len(s.Cols))
	}
	b.Vecs = b.Vecs[:len(s.Cols)]
	for i := range b.Vecs {
		v := &b.Vecs[i]
		typ := s.Cols[i].Typ
		switch typ {
		case Int4:
			if v.Typ != Int4 || v.Ints == nil {
				v.Ints = make([]int32, 0, capRows)
			} else {
				v.Ints = v.Ints[:0]
			}
			v.Off, v.End, v.Buf = nil, nil, nil
		case Text:
			if v.Typ != Text || v.Off == nil {
				v.Off = make([]int32, 0, capRows)
				v.End = make([]int32, 0, capRows)
				v.Buf = make([]byte, 0, capRows*8)
			} else {
				v.Off = v.Off[:0]
				v.End = v.End[:0]
				v.Buf = v.Buf[:0]
			}
			v.Ints = nil
		}
		v.Typ = typ
	}
	b.N = 0
	b.Sel = nil
}

// InitPruned is Init for a projection output: the columns listed in
// prune stay placeholder vectors with no storage, so recycling a
// pruned batch never allocates (and then discards) their buffers.
// prune must be ascending.
func (b *ColBatch) InitPruned(s Schema, capRows int, prune []int) {
	if cap(b.Vecs) < len(s.Cols) {
		b.Vecs = make([]Vec, len(s.Cols))
	}
	b.Vecs = b.Vecs[:len(s.Cols)]
	pi := 0
	for i := range b.Vecs {
		v := &b.Vecs[i]
		typ := s.Cols[i].Typ
		if pi < len(prune) && prune[pi] == i {
			pi++
			v.Typ = typ
			v.Ints, v.Off, v.End, v.Buf = nil, nil, nil, nil
			continue
		}
		switch typ {
		case Int4:
			if v.Typ != Int4 || v.Ints == nil {
				v.Ints = make([]int32, 0, capRows)
			} else {
				v.Ints = v.Ints[:0]
			}
			v.Off, v.End, v.Buf = nil, nil, nil
		case Text:
			if v.Typ != Text || v.Off == nil {
				v.Off = make([]int32, 0, capRows)
				v.End = make([]int32, 0, capRows)
				v.Buf = make([]byte, 0, capRows*8)
			} else {
				v.Off = v.Off[:0]
				v.End = v.End[:0]
				v.Buf = v.Buf[:0]
			}
			v.Ints = nil
		}
		v.Typ = typ
	}
	b.N = 0
	b.Sel = nil
}

// Reset empties an owned batch in place, keeping vector capacity and the
// column shape.
func (b *ColBatch) Reset() {
	for i := range b.Vecs {
		v := &b.Vecs[i]
		if v.Pruned() {
			continue
		}
		switch v.Typ {
		case Int4:
			v.Ints = v.Ints[:0]
		case Text:
			v.Off = v.Off[:0]
			v.End = v.End[:0]
			v.Buf = v.Buf[:0]
		}
	}
	b.N = 0
	b.Sel = nil
}

// Prune replaces column col with a placeholder vector (Typ kept, storage
// dropped). Only meaningful on owned, empty batches used as projection
// outputs.
func (b *ColBatch) Prune(col int) {
	v := &b.Vecs[col]
	v.Ints, v.Off, v.End, v.Buf = nil, nil, nil, nil
}

// Live returns the number of live rows (selection-vector aware).
func (b *ColBatch) Live() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// RowAt maps a live-row ordinal to a physical row index.
func (b *ColBatch) RowAt(i int) int {
	if b.Sel != nil {
		return int(b.Sel[i])
	}
	return i
}

// AppendRow appends physical row `row` of src, copying every un-pruned
// column src has; columns pruned in src stay pruned in b if b is empty,
// and must already be pruned in b otherwise.
func (b *ColBatch) AppendRow(src *ColBatch, row int) {
	for c := range src.Vecs {
		b.appendVal(c, &src.Vecs[c], row)
	}
	b.N++
}

// AppendJoined appends the concatenation of l's row lrow and r's row
// rrow: b's columns 0..len(l.Vecs)-1 come from l, the rest from r.
func (b *ColBatch) AppendJoined(l *ColBatch, lrow int, r *ColBatch, rrow int) {
	nl := len(l.Vecs)
	for c := range l.Vecs {
		b.appendVal(c, &l.Vecs[c], lrow)
	}
	for c := range r.Vecs {
		b.appendVal(nl+c, &r.Vecs[c], rrow)
	}
	b.N++
}

// AppendJoinedTuple appends the concatenation of l's row lrow and the
// row-form tuple t: the columnar probe's bridge over a row-layout build
// table. b's columns past len(l.Vecs) must match t's shape.
func (b *ColBatch) AppendJoinedTuple(l *ColBatch, lrow int, t Tuple) {
	nl := len(l.Vecs)
	for c := range l.Vecs {
		b.appendVal(c, &l.Vecs[c], lrow)
	}
	for c := nl; c < len(b.Vecs); c++ {
		dst := &b.Vecs[c]
		if dst.Pruned() {
			continue
		}
		v := t.Vals[c-nl]
		switch dst.Typ {
		case Int4:
			dst.Ints = append(dst.Ints, v.Int)
		case Text:
			dst.appendTextStr(v.Str)
		}
	}
	b.N++
}

// appendVal copies one value of src row `row` into b's column c. A
// pruned source column prunes (or matches) the destination column.
func (b *ColBatch) appendVal(c int, src *Vec, row int) {
	dst := &b.Vecs[c]
	if src.Pruned() || dst.Pruned() {
		if !dst.Pruned() {
			if b.N != 0 {
				panic("storage: appending pruned column into populated vector")
			}
			b.Prune(c)
		}
		return
	}
	switch src.Typ {
	case Int4:
		dst.Ints = append(dst.Ints, src.Ints[row])
	case Text:
		dst.appendText(src.Bytes(row))
	}
}

// AppendTuple appends a row-form tuple. The tuple must match the batch's
// column shape.
func (b *ColBatch) AppendTuple(t Tuple) {
	for c := range b.Vecs {
		dst := &b.Vecs[c]
		if dst.Pruned() {
			continue
		}
		v := t.Vals[c]
		switch dst.Typ {
		case Int4:
			dst.Ints = append(dst.Ints, v.Int)
		case Text:
			dst.appendTextStr(v.Str)
		}
	}
	b.N++
}

// Value materializes one value (physical row index). Text values copy.
func (b *ColBatch) Value(col, row int) Value {
	v := &b.Vecs[col]
	if v.Pruned() {
		panic(fmt.Sprintf("storage: reading pruned column %d", col))
	}
	if v.Typ == Int4 {
		return IntVal(v.Ints[row])
	}
	return TextVal(v.Str(row))
}

// TupleTo materializes physical row `row` into vals (which must have
// len(b.Vecs) capacity) and returns it as a Tuple.
func (b *ColBatch) TupleTo(row int, vals []Value) Tuple {
	vals = vals[:0]
	for c := range b.Vecs {
		vals = append(vals, b.Value(c, row))
	}
	return Tuple{Vals: vals}
}

// Slice returns a read-only view of physical rows [lo, hi). vecs is
// caller scratch for the view's vector headers (grown as needed). The
// receiver must not have a selection vector.
func (b *ColBatch) Slice(lo, hi int, vecs []Vec) (ColBatch, []Vec) {
	if b.Sel != nil {
		panic("storage: Slice over a batch with a selection vector")
	}
	if cap(vecs) < len(b.Vecs) {
		vecs = make([]Vec, len(b.Vecs))
	}
	vecs = vecs[:len(b.Vecs)]
	for c := range b.Vecs {
		src := &b.Vecs[c]
		v := Vec{Typ: src.Typ}
		if !src.Pruned() {
			switch src.Typ {
			case Int4:
				v.Ints = src.Ints[lo:hi]
			case Text:
				v.Off = src.Off[lo:hi]
				v.End = src.End[lo:hi]
				v.Buf = src.Buf
			}
		}
		vecs[c] = v
	}
	return ColBatch{N: hi - lo, Vecs: vecs}, vecs
}

// AppendBatchTuples materializes every live row into out (row form,
// freshly allocated Vals) and returns the extended slice. Compatibility
// bridge for row-oriented consumers; not a hot path.
func (b *ColBatch) AppendBatchTuples(out []Tuple) []Tuple {
	for i := 0; i < b.Live(); i++ {
		row := b.RowAt(i)
		vals := make([]Value, len(b.Vecs))
		for c := range b.Vecs {
			vals[c] = b.Value(c, row)
		}
		out = append(out, Tuple{Vals: vals})
	}
	return out
}
