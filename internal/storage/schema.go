// Package storage implements the XPRS storage substrate: schemas, tuples,
// 8 KB slotted pages, heap relations striped block-by-block across the
// disk array, a buffer pool, and per-column statistics for the optimizer.
//
// The paper's experiments use relations of schema r(a int4, b text) where
// the text attribute's size is the knob that controls a sequential scan's
// IO rate (§3). Large experiment relations can therefore reach hundreds of
// megabytes of page images; to keep the reproduction laptop-friendly, a
// relation can be stored either physically (real slotted page images, the
// default) or synthetically (a deterministic row generator plus layout
// metadata). Both forms present identical page-granular read behaviour to
// the executor and charge identical disk traffic.
package storage

import "fmt"

// PageSize is the XPRS disk page size (paper §3: 8K bytes).
const PageSize = 8192

// Type identifies a column type. XPRS's experiment schema only needs the
// Postgres types int4 and text.
type Type uint8

const (
	// Int4 is a 32-bit signed integer.
	Int4 Type = iota
	// Text is a variable-length string.
	Text
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Int4:
		return "int4"
	case Text:
		return "text"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Column is one attribute of a schema.
type Column struct {
	Name string
	Typ  Type
}

// Schema describes the attributes of a relation or of an intermediate
// result flowing between plan operators.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from alternating name/type pairs.
func NewSchema(cols ...Column) Schema { return Schema{Cols: cols} }

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Cols) }

// Concat returns the schema of a join result: the columns of s followed by
// the columns of o. Duplicate names are qualified by position, matching
// how the executor addresses columns (by index, never by name).
func (s Schema) Concat(o Schema) Schema {
	out := Schema{Cols: make([]Column, 0, len(s.Cols)+len(o.Cols))}
	out.Cols = append(out.Cols, s.Cols...)
	out.Cols = append(out.Cols, o.Cols...)
	return out
}

// Value is one typed datum. The zero Value is the int4 zero.
type Value struct {
	Typ Type
	Int int32
	Str string
}

// IntVal constructs an int4 value.
func IntVal(v int32) Value { return Value{Typ: Int4, Int: v} }

// TextVal constructs a text value.
func TextVal(v string) Value { return Value{Typ: Text, Str: v} }

// Size returns the datum's on-page size in bytes: 4 for int4, 4+len for
// text (length prefix plus bytes).
func (v Value) Size() int {
	if v.Typ == Int4 {
		return 4
	}
	return 4 + len(v.Str)
}

// Compare orders two values of the same type: -1, 0 or +1. Comparing
// values of different types panics; plans are type-checked before running.
func (v Value) Compare(o Value) int {
	if v.Typ != o.Typ {
		panic(fmt.Sprintf("storage: comparing %v with %v", v.Typ, o.Typ))
	}
	switch v.Typ {
	case Int4:
		switch {
		case v.Int < o.Int:
			return -1
		case v.Int > o.Int:
			return 1
		default:
			return 0
		}
	default:
		switch {
		case v.Str < o.Str:
			return -1
		case v.Str > o.Str:
			return 1
		default:
			return 0
		}
	}
}

// String implements fmt.Stringer.
func (v Value) String() string {
	if v.Typ == Int4 {
		return fmt.Sprintf("%d", v.Int)
	}
	if len(v.Str) > 16 {
		return fmt.Sprintf("%q...(%dB)", v.Str[:16], len(v.Str))
	}
	return fmt.Sprintf("%q", v.Str)
}

// Tuple is a decoded row. Tuples flowing between operators share backing
// values; operators never mutate a tuple in place.
type Tuple struct {
	Vals []Value
}

// NewTuple builds a tuple from values.
func NewTuple(vals ...Value) Tuple { return Tuple{Vals: vals} }

// Size returns the tuple's on-page payload size.
func (t Tuple) Size() int {
	n := 0
	for _, v := range t.Vals {
		n += v.Size()
	}
	return n
}

// Concat returns the join of two tuples (values of t then of o).
func (t Tuple) Concat(o Tuple) Tuple {
	vals := make([]Value, 0, len(t.Vals)+len(o.Vals))
	vals = append(vals, t.Vals...)
	vals = append(vals, o.Vals...)
	return Tuple{Vals: vals}
}

// TID addresses a tuple inside a relation: page number and slot within
// the page. Indexes map keys to TIDs.
type TID struct {
	Page int64
	Slot int32
}
