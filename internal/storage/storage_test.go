package storage

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"xprs/internal/diskmodel"
	"xprs/internal/vclock"
)

func expSchema() Schema {
	return NewSchema(Column{"a", Int4}, Column{"b", Text})
}

func TestTypeAndValueStrings(t *testing.T) {
	if Int4.String() != "int4" || Text.String() != "text" {
		t.Fatal("type strings")
	}
	if Type(9).String() == "" {
		t.Fatal("unknown type must stringify")
	}
	if got := IntVal(42).String(); got != "42" {
		t.Fatalf("IntVal string = %q", got)
	}
	if got := TextVal("hi").String(); got != `"hi"` {
		t.Fatalf("TextVal string = %q", got)
	}
	long := TextVal(strings.Repeat("x", 100))
	if !strings.Contains(long.String(), "100B") {
		t.Fatalf("long text string = %q", long.String())
	}
}

func TestValueCompare(t *testing.T) {
	if IntVal(1).Compare(IntVal(2)) != -1 ||
		IntVal(2).Compare(IntVal(1)) != 1 ||
		IntVal(3).Compare(IntVal(3)) != 0 {
		t.Fatal("int compare")
	}
	if TextVal("a").Compare(TextVal("b")) != -1 ||
		TextVal("b").Compare(TextVal("a")) != 1 ||
		TextVal("a").Compare(TextVal("a")) != 0 {
		t.Fatal("text compare")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-type compare must panic")
		}
	}()
	IntVal(1).Compare(TextVal("x"))
}

func TestSchemaHelpers(t *testing.T) {
	s := expSchema()
	if s.Len() != 2 || s.ColIndex("a") != 0 || s.ColIndex("b") != 1 || s.ColIndex("zz") != -1 {
		t.Fatal("schema helpers")
	}
	j := s.Concat(NewSchema(Column{"c", Int4}))
	if j.Len() != 3 || j.Cols[2].Name != "c" {
		t.Fatal("concat")
	}
	tp := NewTuple(IntVal(1), TextVal("xy")).Concat(NewTuple(IntVal(2)))
	if len(tp.Vals) != 3 || tp.Vals[2].Int != 2 {
		t.Fatal("tuple concat")
	}
	if got := NewTuple(IntVal(1), TextVal("xy")).Size(); got != 4+4+2 {
		t.Fatalf("tuple size = %d", got)
	}
}

func TestTupleEncodeDecodeRoundTrip(t *testing.T) {
	s := expSchema()
	cases := []Tuple{
		NewTuple(IntVal(0), TextVal("")),
		NewTuple(IntVal(-1), TextVal("hello")),
		NewTuple(IntVal(1<<30), TextVal(strings.Repeat("z", 5000))),
	}
	for _, tc := range cases {
		enc, err := encodeTuple(s, tc)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := decodeTuple(s, enc)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Vals[0].Int != tc.Vals[0].Int || dec.Vals[1].Str != tc.Vals[1].Str {
			t.Fatalf("round trip mismatch: %v vs %v", dec, tc)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	s := expSchema()
	if _, err := encodeTuple(s, NewTuple(IntVal(1))); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := encodeTuple(s, NewTuple(TextVal("x"), TextVal("y"))); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	s := expSchema()
	if _, err := decodeTuple(s, []byte{1, 2}); err == nil {
		t.Fatal("truncated int accepted")
	}
	if _, err := decodeTuple(s, []byte{1, 2, 3, 4, 9, 0, 0, 0, 'x'}); err == nil {
		t.Fatal("truncated text accepted")
	}
	enc, _ := encodeTuple(s, NewTuple(IntVal(1), TextVal("a")))
	if _, err := decodeTuple(s, append(enc, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := decodePage(s, make([]byte, 10)); err == nil {
		t.Fatal("short page accepted")
	}
}

func TestTuplesPerPage(t *testing.T) {
	if got := TuplesPerPage(8150); got != 1 {
		t.Fatalf("huge tuple: %d per page, want 1", got)
	}
	// Even a 1-byte payload pays the 44-byte header+slot overhead.
	if got := TuplesPerPage(0); got != (PageSize-4)/(1+SlotOverhead+TupleHeader) {
		t.Fatalf("tiny tuple: %d per page", got)
	}
	// A 40-byte tuple: (8192-4)/(40+4+40) = 97 with the heap header.
	if got := TuplesPerPage(40); got != (PageSize-4)/(40+SlotOverhead+TupleHeader) {
		t.Fatalf("40B tuple: %d per page", got)
	}
}

func TestBuilderPagination(t *testing.T) {
	s := expSchema()
	b := NewBuilder(1, "r", s)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := b.Append(NewTuple(IntVal(int32(i)), TextVal(strings.Repeat("a", 36)))); err != nil {
			t.Fatal(err)
		}
	}
	r := b.Finalize()
	if r.NTuples() != n {
		t.Fatalf("ntuples = %d", r.NTuples())
	}
	// tuple payload = 4 + 4 + 36 = 44 plus slot and heap header.
	perPage := TuplesPerPage(44)
	wantPages := int64((n + perPage - 1) / perPage)
	if r.NPages() != wantPages {
		t.Fatalf("npages = %d, want %d", r.NPages(), wantPages)
	}
	// Every tuple readable, in insertion order across pages.
	seen := 0
	for p := int64(0); p < r.NPages(); p++ {
		tuples, err := r.PageTuples(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range tuples {
			if tp.Vals[0].Int != int32(seen) {
				t.Fatalf("tuple %d has a=%d", seen, tp.Vals[0].Int)
			}
			seen++
		}
	}
	if seen != n {
		t.Fatalf("read back %d tuples", seen)
	}
	st := r.Stats()
	if st.Cols[0].Min != 0 || st.Cols[0].Max != n-1 || st.Cols[0].NDistinct != n {
		t.Fatalf("col stats = %+v", st.Cols[0])
	}
	if st.AvgTupleSize != 44 {
		t.Fatalf("avg tuple size = %f", st.AvgTupleSize)
	}
}

func TestBuilderOneHugeTuplePerPage(t *testing.T) {
	s := expSchema()
	b := NewBuilder(1, "rmax", s)
	body := strings.Repeat("b", 8100)
	for i := 0; i < 5; i++ {
		if err := b.Append(NewTuple(IntVal(int32(i)), TextVal(body))); err != nil {
			t.Fatal(err)
		}
	}
	r := b.Finalize()
	if r.NPages() != 5 {
		t.Fatalf("npages = %d, want 5 (one tuple per page)", r.NPages())
	}
}

func TestBuilderRejectsOversizedTuple(t *testing.T) {
	b := NewBuilder(1, "r", expSchema())
	if err := b.Append(NewTuple(IntVal(1), TextVal(strings.Repeat("x", PageSize)))); err == nil {
		t.Fatal("oversized tuple accepted")
	}
}

func TestTupleAtPhysical(t *testing.T) {
	b := NewBuilder(1, "r", expSchema())
	for i := 0; i < 400; i++ {
		_ = b.Append(NewTuple(IntVal(int32(i)), TextVal("pad-pad-pad-pad-pad-pad-pad-pad-pad!")))
	}
	r := b.Finalize()
	perPage := TuplesPerPage(44)
	tid := TID{Page: 1, Slot: 3}
	got, err := r.TupleAt(tid)
	if err != nil {
		t.Fatal(err)
	}
	if want := int32(perPage + 3); got.Vals[0].Int != want {
		t.Fatalf("TupleAt = %d, want %d", got.Vals[0].Int, want)
	}
	if _, err := r.TupleAt(TID{Page: 99, Slot: 0}); err == nil {
		t.Fatal("bad page accepted")
	}
	if _, err := r.TupleAt(TID{Page: 0, Slot: 9999}); err == nil {
		t.Fatal("bad slot accepted")
	}
}

func TestSyntheticRelation(t *testing.T) {
	s := expSchema()
	gen := func(i int64) Tuple { return NewTuple(IntVal(int32(i)), TextVal("xx")) }
	r, err := NewSynthetic(7, "syn", s, 1000, 64, gen)
	if err != nil {
		t.Fatal(err)
	}
	if r.NPages() != 16 { // ceil(1000/64)
		t.Fatalf("npages = %d, want 16", r.NPages())
	}
	if !r.Synthetic() {
		t.Fatal("not synthetic")
	}
	// Last page is short.
	tuples, err := r.PageTuples(15)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1000-15*64 {
		t.Fatalf("last page has %d tuples", len(tuples))
	}
	got, err := r.TupleAt(TID{Page: 3, Slot: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got.Vals[0].Int != 3*64+5 {
		t.Fatalf("TupleAt = %d", got.Vals[0].Int)
	}
	if _, err := r.TupleAt(TID{Page: 15, Slot: 63}); err == nil {
		t.Fatal("row past end accepted")
	}
	st := r.Stats()
	if st.NTuples != 1000 {
		t.Fatalf("ntuples = %d", st.NTuples)
	}
	if st.Cols[0].Min != 0 {
		t.Fatalf("min = %d", st.Cols[0].Min)
	}
}

func TestSyntheticValidation(t *testing.T) {
	s := expSchema()
	gen := func(i int64) Tuple { return NewTuple(IntVal(0), TextVal("")) }
	if _, err := NewSynthetic(1, "x", s, 10, 0, gen); err == nil {
		t.Fatal("rowsPerPage 0 accepted")
	}
	if _, err := NewSynthetic(1, "x", s, -1, 4, gen); err == nil {
		t.Fatal("negative ntuples accepted")
	}
	bad := func(i int64) Tuple { return NewTuple(TextVal("wrong")) }
	if _, err := NewSynthetic(1, "x", s, 10, 4, bad); err == nil {
		t.Fatal("schema-violating generator accepted")
	}
}

func TestSyntheticStatsScaling(t *testing.T) {
	s := NewSchema(Column{"a", Int4})
	n := int64(100000)
	r, err := NewSynthetic(1, "big", s, n, 100, func(i int64) Tuple {
		return NewTuple(IntVal(int32(i)))
	})
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.NTuples != n {
		t.Fatalf("ntuples = %d", st.NTuples)
	}
	// All values distinct; the scaled estimate must be within 2x.
	if st.Cols[0].NDistinct < n/2 || st.Cols[0].NDistinct > n {
		t.Fatalf("ndistinct = %d, want near %d", st.Cols[0].NDistinct, n)
	}
}

func TestPageTuplesOutOfRange(t *testing.T) {
	b := NewBuilder(1, "r", expSchema())
	_ = b.Append(NewTuple(IntVal(1), TextVal("x")))
	r := b.Finalize()
	if _, err := r.PageTuples(-1); err == nil {
		t.Fatal("negative page accepted")
	}
	if _, err := r.PageTuples(1); err == nil {
		t.Fatal("past-end page accepted")
	}
}

func newTestStore(poolPages int) (*vclock.Virtual, *Store) {
	v := vclock.NewVirtual()
	disks := diskmodel.New(v, diskmodel.DefaultConfig())
	return v, NewStore(v, disks, poolPages)
}

func TestStoreCatalog(t *testing.T) {
	_, st := newTestStore(0)
	b := NewBuilder(st.NextID(), "r1", expSchema())
	_ = b.Append(NewTuple(IntVal(1), TextVal("x")))
	r := b.Finalize()
	if err := st.Add(r); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(r); err == nil {
		t.Fatal("duplicate add accepted")
	}
	r2 := NewBuilder(r.ID, "other", expSchema()).Finalize()
	if err := st.Add(r2); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if got, ok := st.Relation("r1"); !ok || got != r {
		t.Fatal("lookup by name")
	}
	if got, ok := st.RelationByID(r.ID); !ok || got != r {
		t.Fatal("lookup by ID")
	}
	if len(st.Relations()) != 1 {
		t.Fatal("Relations()")
	}
	st.Drop("r1")
	if _, ok := st.Relation("r1"); ok {
		t.Fatal("drop did not remove")
	}
	st.Drop("absent") // no-op
}

func TestStoreReadChargesIO(t *testing.T) {
	v, st := newTestStore(0)
	b := NewBuilder(st.NextID(), "r", expSchema())
	for i := 0; i < 500; i++ {
		_ = b.Append(NewTuple(IntVal(int32(i)), TextVal(strings.Repeat("q", 36))))
	}
	r := b.Finalize()
	_ = st.Add(r)
	v.Run(func() {
		for p := int64(0); p < r.NPages(); p++ {
			if _, err := st.ReadPage(r, p); err != nil {
				t.Error(err)
			}
		}
	})
	if got := st.Disks.Stats().TotalReads(); got != r.NPages() {
		t.Fatalf("disk reads = %d, want %d", got, r.NPages())
	}
}

func TestBufferPoolHitsSkipDisk(t *testing.T) {
	v, st := newTestStore(100)
	b := NewBuilder(st.NextID(), "r", expSchema())
	for i := 0; i < 200; i++ {
		_ = b.Append(NewTuple(IntVal(int32(i)), TextVal(strings.Repeat("q", 36))))
	}
	r := b.Finalize()
	_ = st.Add(r)
	v.Run(func() {
		for pass := 0; pass < 2; pass++ {
			for p := int64(0); p < r.NPages(); p++ {
				if _, err := st.ReadPage(r, p); err != nil {
					t.Error(err)
				}
			}
		}
	})
	if got := st.Disks.Stats().TotalReads(); got != r.NPages() {
		t.Fatalf("disk reads = %d, want %d (second pass cached)", got, r.NPages())
	}
	hits, misses := st.Pool.Stats()
	if hits != r.NPages() || misses != r.NPages() {
		t.Fatalf("pool hits/misses = %d/%d", hits, misses)
	}
	st.Pool.Invalidate()
	v.Run(func() { _, _ = st.ReadPage(r, 0) })
	if got := st.Disks.Stats().TotalReads(); got != r.NPages()+1 {
		t.Fatalf("invalidate did not drop residency")
	}
}

func TestBufferPoolLRUEviction(t *testing.T) {
	bp := NewBufferPool(2)
	k := func(p int64) pageKey { return pageKey{rel: 1, page: p} }
	if bp.touch(k(0)) || bp.touch(k(1)) {
		t.Fatal("cold touches hit")
	}
	if !bp.touch(k(0)) {
		t.Fatal("resident page missed")
	}
	bp.touch(k(2)) // evicts 1 (LRU)
	if bp.touch(k(1)) {
		t.Fatal("evicted page hit")
	}
	if !bp.touch(k(2)) {
		t.Fatal("recent page missed")
	}
}

func TestBufferPoolNegativeCapacity(t *testing.T) {
	bp := NewBufferPool(-5)
	if bp.touch(pageKey{1, 0}) {
		t.Fatal("disabled pool reported hit")
	}
}

func TestReadTIDUnclusteredPattern(t *testing.T) {
	v, st := newTestStore(0)
	b := NewBuilder(st.NextID(), "r", expSchema())
	for i := 0; i < 400; i++ {
		_ = b.Append(NewTuple(IntVal(int32(i)), TextVal(strings.Repeat("q", 36))))
	}
	r := b.Finalize()
	_ = st.Add(r)
	v.Run(func() {
		// Jumping between distant pages must be charged as random IO.
		pages := []int64{0, 2, 0, 2, 1, 0}
		for _, p := range pages {
			if _, err := st.ReadTID(r, TID{Page: p, Slot: 0}); err != nil {
				t.Error(err)
			}
		}
	})
	s := st.Disks.Stats()
	if s.TotalReads() != 6 {
		t.Fatalf("reads = %d", s.TotalReads())
	}
}

// Property: build a physical relation from arbitrary int/short-text rows
// and read back exactly the same multiset in order.
func TestPropertyBuildReadRoundTrip(t *testing.T) {
	f := func(ints []int32) bool {
		if len(ints) > 300 {
			ints = ints[:300]
		}
		b := NewBuilder(1, "r", expSchema())
		for i, v := range ints {
			if err := b.Append(NewTuple(IntVal(v), TextVal(fmt.Sprintf("row-%d", i)))); err != nil {
				return false
			}
		}
		r := b.Finalize()
		if r.NTuples() != int64(len(ints)) {
			return false
		}
		idx := 0
		for p := int64(0); p < r.NPages(); p++ {
			tuples, err := r.PageTuples(p)
			if err != nil {
				return false
			}
			for _, tp := range tuples {
				if tp.Vals[0].Int != ints[idx] || tp.Vals[1].Str != fmt.Sprintf("row-%d", idx) {
					return false
				}
				idx++
			}
		}
		return idx == len(ints)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: TuplesPerPage is monotonically non-increasing in tuple size
// and never returns less than 1.
func TestPropertyTuplesPerPageMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a%9000), int(b%9000)
		if x > y {
			x, y = y, x
		}
		return TuplesPerPage(x) >= TuplesPerPage(y) && TuplesPerPage(y) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRelationsDeterministicOrder pins the Relations contract audited
// under the lockorder/maporder rules: the snapshot is collected from
// the name map (randomized iteration) and must come back in ascending
// ID order on every call, regardless of registration order.
func TestRelationsDeterministicOrder(t *testing.T) {
	_, st := newTestStore(0)
	// Register in an order unrelated to either name or ID sequence.
	for _, name := range []string{"zeta", "alpha", "mid", "omega", "beta"} {
		b := NewBuilder(st.NextID(), name, expSchema())
		_ = b.Append(NewTuple(IntVal(1), TextVal(name)))
		if err := st.Add(b.Finalize()); err != nil {
			t.Fatal(err)
		}
	}
	var first []int32
	for round := 0; round < 10; round++ {
		rels := st.Relations()
		ids := make([]int32, len(rels))
		for i, r := range rels {
			ids[i] = r.ID
			if i > 0 && ids[i-1] >= ids[i] {
				t.Fatalf("round %d: IDs not strictly ascending: %v", round, ids)
			}
		}
		if first == nil {
			first = ids
			continue
		}
		for i := range ids {
			if ids[i] != first[i] {
				t.Fatalf("round %d: order changed: %v vs %v", round, ids, first)
			}
		}
	}
}
