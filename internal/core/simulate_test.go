package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestSimulateSingleTask(t *testing.T) {
	// One CPU-bound task, T=8s, maxp=8: elapsed = 1s.
	res, err := Simulate(paperEnv(), InterAdj, Options{}, MakeSimTasks([]*Task{mkTask(1, 10, 8, true)}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Elapsed-1) > 1e-9 {
		t.Fatalf("elapsed = %f, want 1", res.Elapsed)
	}
	if res.Finish[1] != res.Elapsed {
		t.Fatal("finish time mismatch")
	}
}

func TestSimulatePairHandComputed(t *testing.T) {
	// Flat env, io C=60 T=10, cpu C=10 T=10. Integer degrees (3, 5):
	// cpu ends at 10/5 = 2; io has 10 - 3*2 = 4 left, adjusted to maxp
	// degree 4 -> 1 more second. Elapsed = 3.
	res, err := Simulate(flatEnv(), InterAdj, Options{},
		MakeSimTasks([]*Task{mkTask(1, 60, 10, true), mkTask(2, 10, 10, true)}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Elapsed-3) > 1e-6 {
		t.Fatalf("elapsed = %f, want 3", res.Elapsed)
	}
	if math.Abs(res.Finish[2]-2) > 1e-6 {
		t.Fatalf("cpu finish = %f, want 2", res.Finish[2])
	}
	// Trace contains the start pair, the adjustment and both completions.
	var kinds []string
	for _, ev := range res.Trace {
		kinds = append(kinds, ev.Kind)
	}
	joined := strings.Join(kinds, ",")
	if !strings.Contains(joined, "adjust") {
		t.Fatalf("trace lacks adjustment: %v", res.Trace)
	}
	for _, ev := range res.Trace {
		if ev.String() == "" {
			t.Fatal("empty trace string")
		}
	}
}

func TestSimulateIntraOnlySerial(t *testing.T) {
	// INTRA-ONLY on the same pair: 10/4 + 10/8 = 3.75.
	res, err := Simulate(flatEnv(), IntraOnly, Options{},
		MakeSimTasks([]*Task{mkTask(1, 60, 10, true), mkTask(2, 10, 10, true)}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Elapsed-3.75) > 1e-6 {
		t.Fatalf("elapsed = %f, want 3.75", res.Elapsed)
	}
}

func TestSimulateInterBeatsIntraOnMixedLoad(t *testing.T) {
	// The paper's headline: on mixed IO/CPU workloads INTER-WITH-ADJ
	// beats INTRA-ONLY (by ~25% in their measurements) and
	// INTER-WITHOUT-ADJ trails INTER-WITH-ADJ.
	rng := rand.New(rand.NewSource(42))
	var tasks []*Task
	for i := 0; i < 10; i++ {
		var rate float64
		if i%2 == 0 {
			rate = 60 + rng.Float64()*10 // extremely IO-bound
		} else {
			rate = 5 + rng.Float64()*10 // extremely CPU-bound
		}
		tasks = append(tasks, mkTask(i, rate, 5+rng.Float64()*10, true))
	}
	elapsed := map[Policy]float64{}
	for _, pol := range []Policy{IntraOnly, InterNoAdj, InterAdj} {
		res, err := Simulate(paperEnv(), pol, Options{}, MakeSimTasks(tasks))
		if err != nil {
			t.Fatal(err)
		}
		elapsed[pol] = res.Elapsed
	}
	if !(elapsed[InterAdj] < elapsed[IntraOnly]) {
		t.Fatalf("INTER-WITH-ADJ %f !< INTRA-ONLY %f", elapsed[InterAdj], elapsed[IntraOnly])
	}
	if !(elapsed[InterAdj] <= elapsed[InterNoAdj]) {
		t.Fatalf("INTER-WITH-ADJ %f > INTER-WITHOUT-ADJ %f", elapsed[InterAdj], elapsed[InterNoAdj])
	}
	improvement := 1 - elapsed[InterAdj]/elapsed[IntraOnly]
	if improvement < 0.05 {
		t.Fatalf("improvement = %.1f%%, want noticeable", improvement*100)
	}
}

func TestSimulateDependencies(t *testing.T) {
	// Chain: 1 -> 2 -> 3 (each depends on the previous). All CPU-bound
	// with T=8 and maxp 8: serial chain of 1s each.
	tasks := []SimTask{
		{Task: mkTask(1, 10, 8, true)},
		{Task: mkTask(2, 10, 8, true), DependsOn: []int{1}},
		{Task: mkTask(3, 10, 8, true), DependsOn: []int{2}},
	}
	res, err := Simulate(paperEnv(), InterAdj, Options{}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Elapsed-3) > 1e-6 {
		t.Fatalf("elapsed = %f, want 3", res.Elapsed)
	}
	if !(res.Finish[1] < res.Finish[2] && res.Finish[2] < res.Finish[3]) {
		t.Fatal("dependency order violated")
	}
}

func TestSimulateBushyDependencies(t *testing.T) {
	// Two independent leaf fragments (one IO-bound, one CPU-bound)
	// followed by a root that needs both: the leaves must overlap.
	tasks := []SimTask{
		{Task: mkTask(1, 60, 10, true)},
		{Task: mkTask(2, 10, 10, true)},
		{Task: mkTask(3, 10, 8, true), DependsOn: []int{1, 2}},
	}
	res, err := Simulate(flatEnv(), InterAdj, Options{}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	// Leaves finish at 3 (pair example), root runs 1s more.
	if math.Abs(res.Elapsed-4) > 1e-6 {
		t.Fatalf("elapsed = %f, want 4", res.Elapsed)
	}
}

func TestSimulateArrivals(t *testing.T) {
	// A CPU task arrives at t=5 into an idle system.
	tasks := []SimTask{
		{Task: mkTask(1, 10, 8, true), Arrival: 5},
	}
	res, err := Simulate(paperEnv(), InterAdj, Options{}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Elapsed-6) > 1e-6 {
		t.Fatalf("elapsed = %f, want 6 (5 idle + 1 run)", res.Elapsed)
	}
	// A late IO arrival forces an adjustment of the running CPU task.
	tasks2 := []SimTask{
		{Task: mkTask(1, 10, 80, true)},
		{Task: mkTask(2, 60, 10, true), Arrival: 1},
	}
	res2, err := Simulate(flatEnv(), InterAdj, Options{}, tasks2)
	if err != nil {
		t.Fatal(err)
	}
	sawAdjust := false
	for _, ev := range res2.Trace {
		if ev.Kind == "adjust" && ev.Time >= 1 {
			sawAdjust = true
		}
	}
	if !sawAdjust {
		t.Fatalf("late arrival did not trigger adjustment: %v", res2.Trace)
	}
}

func TestSimulateSJFImprovesResponseTime(t *testing.T) {
	long := mkTask(1, 10, 50, true)
	short := mkTask(2, 10, 1, true)
	mean := func(opts Options) float64 {
		res, err := Simulate(paperEnv(), IntraOnly, opts, MakeSimTasks([]*Task{long, short}))
		if err != nil {
			t.Fatal(err)
		}
		return (res.Finish[1] + res.Finish[2]) / 2
	}
	if !(mean(Options{SJF: true}) < mean(Options{})) {
		t.Fatal("SJF did not improve mean response time")
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(Env{}, InterAdj, Options{}, nil); err == nil {
		t.Fatal("bad env accepted")
	}
	if _, err := Simulate(paperEnv(), InterAdj, Options{}, []SimTask{{Task: nil}}); err == nil {
		t.Fatal("nil task accepted")
	}
	if _, err := Simulate(paperEnv(), InterAdj, Options{},
		[]SimTask{{Task: mkTask(1, 10, 10, true)}, {Task: mkTask(1, 10, 10, true)}}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
	if _, err := Simulate(paperEnv(), InterAdj, Options{},
		[]SimTask{{Task: mkTask(1, 10, 0, true)}}); err == nil {
		t.Fatal("zero-T task accepted")
	}
	if _, err := Simulate(paperEnv(), InterAdj, Options{},
		[]SimTask{{Task: mkTask(1, 10, 10, true), DependsOn: []int{9}}}); err == nil {
		t.Fatal("unknown dependency accepted")
	}
	// Dependency cycle.
	if _, err := Simulate(paperEnv(), InterAdj, Options{}, []SimTask{
		{Task: mkTask(1, 10, 10, true), DependsOn: []int{2}},
		{Task: mkTask(2, 10, 10, true), DependsOn: []int{1}},
	}); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var tasks []*Task
	for i := 0; i < 12; i++ {
		tasks = append(tasks, mkTask(i, 5+rng.Float64()*65, 1+rng.Float64()*20, i%3 != 0))
	}
	first := -1.0
	for run := 0; run < 3; run++ {
		res, err := Simulate(paperEnv(), InterAdj, Options{}, MakeSimTasks(tasks))
		if err != nil {
			t.Fatal(err)
		}
		if first < 0 {
			first = res.Elapsed
		} else if res.Elapsed != first {
			t.Fatalf("run %d: elapsed %f != %f", run, res.Elapsed, first)
		}
	}
}

// Property: for random mixed workloads, every policy's makespan is at
// least the critical lower bound max(total_work/N, max_i TIntra_i), and
// INTER-WITH-ADJ never loses badly to INTRA-ONLY (the worthwhile test
// guards every pairing).
func TestPropertySimulateBounds(t *testing.T) {
	env := paperEnv()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(8)
		var tasks []*Task
		totalWork := 0.0
		maxIntra := 0.0
		for i := 0; i < n; i++ {
			task := mkTask(i, 5+rng.Float64()*65, 0.5+rng.Float64()*10, rng.Intn(2) == 0)
			tasks = append(tasks, task)
			totalWork += task.T
			if ti := env.TIntra(task); ti > maxIntra {
				maxIntra = ti
			}
		}
		lower := math.Max(totalWork/float64(env.NProcs), maxIntra)
		for _, pol := range []Policy{IntraOnly, InterNoAdj, InterAdj} {
			res, err := Simulate(env, pol, Options{}, MakeSimTasks(tasks))
			if err != nil {
				t.Fatal(err)
			}
			if res.Elapsed < lower-1e-6 {
				t.Fatalf("trial %d policy %v: elapsed %f below lower bound %f", trial, pol, res.Elapsed, lower)
			}
		}
		intra, _ := Simulate(env, IntraOnly, Options{}, MakeSimTasks(tasks))
		adj, _ := Simulate(env, InterAdj, Options{}, MakeSimTasks(tasks))
		if adj.Elapsed > intra.Elapsed*1.25+1e-6 {
			t.Fatalf("trial %d: INTER-WITH-ADJ %f much worse than INTRA-ONLY %f", trial, adj.Elapsed, intra.Elapsed)
		}
	}
}
