package core

import (
	"cmp"
	"fmt"
	"math"
	"slices"
)

// Policy selects one of the three scheduling algorithms evaluated in §3.
type Policy int

const (
	// IntraOnly executes tasks one by one using intra-operation
	// parallelism only.
	IntraOnly Policy = iota
	// InterNoAdj runs IO/CPU pairs but never adjusts a running task's
	// degree; on a completion it merely starts the queued task that gets
	// closest to the maximum-utilization point with the processors left.
	InterNoAdj
	// InterAdj is the paper's algorithm: pairs at the balance point with
	// dynamic parallelism adjustment on every completion and arrival.
	InterAdj
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case IntraOnly:
		return "INTRA-ONLY"
	case InterNoAdj:
		return "INTER-WITHOUT-ADJ"
	case InterAdj:
		return "INTER-WITH-ADJ"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// PairingHeuristic selects which IO-bound and CPU-bound tasks to pair.
type PairingHeuristic int

const (
	// MostExtreme pairs the most IO-bound with the most CPU-bound task
	// (§2.5: keeps the residual queues near the diagonal).
	MostExtreme PairingHeuristic = iota
	// FIFOPairing pairs queue heads in arrival order (the ablation).
	FIFOPairing
)

// String implements fmt.Stringer.
func (p PairingHeuristic) String() string {
	switch p {
	case MostExtreme:
		return "most-extreme"
	case FIFOPairing:
		return "fifo"
	default:
		return fmt.Sprintf("PairingHeuristic(%d)", int(p))
	}
}

// Options tune the controller beyond the policy.
type Options struct {
	// SJF orders queues shortest-job-first, the §2.5 multi-user
	// heuristic for minimizing individual response times.
	SJF bool
	// Pairing selects the pairing heuristic (default MostExtreme).
	Pairing PairingHeuristic
	// MemoryBudget caps the combined MemBytes of concurrently running
	// tasks (the §5 future-work extension: "we cannot run two hashjoins
	// in parallel unless there is enough memory for both hash tables").
	// Zero disables the constraint. A single task always runs.
	MemoryBudget int64
	// Queue overrides the S_io/S_cpu ordering. Nil installs the paper
	// default derived from SJF and Pairing, which reproduces the
	// pre-QueuePolicy controller bit for bit (the identity-default
	// contract, DESIGN.md §15).
	Queue QueuePolicy
}

// Start instructs the engine to launch a task with the given degree of
// intra-operation parallelism.
type Start struct {
	Task   *Task
	Degree int
	// Reason explains the decision for traces: the balance-point solve
	// behind a paired start, or why the task runs solo.
	Reason string
}

// Adjust instructs the engine to change a running task's degree through
// the §2.4 dynamic-adjustment protocol.
type Adjust struct {
	Task   *Task
	Degree int
	// Reason explains the adjustment (partner completion, rebalance with
	// a new partner, intra-only fallback).
	Reason string
}

// Note is an observability record the controller attaches to a decision:
// classifications, balance-point solves, pairing rejections — the "why"
// behind (or instead of) the Starts and Adjusts. TaskID is -1 for notes
// about the whole queue state.
type Note struct {
	TaskID int
	Kind   string // "classify", "balance", "reject", "solo", "defer"
	Detail string
}

// Decision is the controller's response to an event: tasks to start and
// running tasks to adjust, to be applied in order, plus explanatory
// notes for the trace.
type Decision struct {
	Starts  []Start
	Adjusts []Adjust
	Notes   []Note
}

// Empty reports whether the decision contains no actions (notes do not
// count).
func (d Decision) Empty() bool { return len(d.Starts) == 0 && len(d.Adjusts) == 0 }

// runningInfo tracks one task the engine is currently executing.
type runningInfo struct {
	task   *Task
	degree int
}

// Controller is the scheduler's state machine. The engine reports
// arrivals (Submit) and completions (Complete); the controller answers
// with Decisions. It works equally for a fixed task set and a continuous
// arrival sequence (§2.5: "all we need to do is to represent S_io and
// S_cpu as queues").
type Controller struct {
	env    Env
	policy Policy
	opts   Options
	// queue is the resolved Options.Queue (never nil): every pop from
	// S_io/S_cpu goes through it.
	queue QueuePolicy
	// sio and scpu are the paper's §2.5 queues as first-class state:
	// tasks arrive online through Submit and wait here until the policy
	// picks them.
	sio     TaskQueue // queued IO-bound tasks
	scpu    TaskQueue // queued CPU-bound tasks
	running []runningInfo
}

// NewController creates a controller. It panics on an invalid Env
// (construction errors are programmer errors).
func NewController(env Env, policy Policy, opts Options) *Controller {
	if err := env.Validate(); err != nil {
		panic(err)
	}
	q := opts.Queue
	if q == nil {
		q = PaperQueuePolicy(opts)
	}
	return &Controller{env: env, policy: policy, opts: opts, queue: q}
}

// Env returns the planning environment.
func (c *Controller) Env() Env { return c.env }

// Policy returns the active policy.
func (c *Controller) Policy() Policy { return c.policy }

// Options returns the controller's options (with Queue resolved to the
// installed policy), so predictors can re-simulate under the exact
// configuration the live controller runs.
func (c *Controller) Options() Options {
	o := c.opts
	o.Queue = c.queue
	return o
}

// Submit enqueues tasks (classifying each as IO- or CPU-bound) and
// reschedules. The returned decision carries one classification note
// per task.
func (c *Controller) Submit(tasks ...*Task) Decision {
	var notes []Note
	for _, t := range tasks {
		class := "CPU-bound"
		queue := "S_cpu"
		if c.env.IOBound(t) {
			c.sio.Push(t)
			class, queue = "IO-bound", "S_io"
		} else {
			c.scpu.Push(t)
		}
		notes = append(notes, Note{TaskID: t.ID, Kind: "classify", Detail: fmt.Sprintf(
			"%s: C=%.1f io/s vs threshold B/N=%.1f; queued on %s (queues io=%d cpu=%d)",
			class, t.Rate(), c.env.Threshold(), queue, c.sio.Len(), c.scpu.Len())})
	}
	d := c.schedule()
	d.Notes = append(notes, d.Notes...)
	return d
}

// Complete reports that a running task finished and reschedules.
func (c *Controller) Complete(t *Task) Decision {
	found := false
	for i, r := range c.running {
		if r.task.ID == t.ID {
			c.running = append(c.running[:i], c.running[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		panic(fmt.Sprintf("core: Complete(%d) for a task that is not running", t.ID))
	}
	return c.schedule()
}

// Idle reports whether nothing is running and nothing is queued.
func (c *Controller) Idle() bool {
	return len(c.running) == 0 && c.sio.Empty() && c.scpu.Empty()
}

// QueueLengths returns the numbers of queued IO-bound and CPU-bound
// tasks.
func (c *Controller) QueueLengths() (io, cpu int) { return c.sio.Len(), c.scpu.Len() }

// Running returns the running tasks and their degrees in start order.
func (c *Controller) Running() []Start {
	out := make([]Start, len(c.running))
	for i, r := range c.running {
		out[i] = Start{Task: r.task, Degree: r.degree}
	}
	return out
}

// schedule applies the active policy to the current state.
func (c *Controller) schedule() Decision {
	switch c.policy {
	case IntraOnly:
		return c.scheduleIntraOnly()
	case InterNoAdj:
		return c.scheduleInterNoAdj()
	default:
		return c.scheduleInterAdj()
	}
}

// --- INTRA-ONLY -----------------------------------------------------------

func (c *Controller) scheduleIntraOnly() Decision {
	var d Decision
	if len(c.running) > 0 {
		return d
	}
	t := c.popAny()
	if t == nil {
		return d
	}
	d.Starts = append(d.Starts, c.start(t, c.env.DegreeFor(c.env.MaxParallelism(t)),
		fmt.Sprintf("intra-only: tasks run serially, each at maxp=%.2f", c.env.MaxParallelism(t))))
	return d
}

// soloReason explains running a task alone at maximum parallelism.
func (c *Controller) soloReason(t *Task, why string) string {
	return fmt.Sprintf("%s; solo at maxp=%.2f (queues io=%d cpu=%d)",
		why, c.env.MaxParallelism(t), c.sio.Len(), c.scpu.Len())
}

// pairReason renders the §2.3 balance-point solve behind a paired start.
func (c *Controller) pairReason(p Pair) string {
	return fmt.Sprintf(
		"%s pairing io=task %d cpu=task %d: balance x_i=%.2f x_j=%.2f → n_i=%d n_j=%d at B_eff=%.0f io/s; T_inter=%.2fs < T_intra=%.2fs+%.2fs",
		c.opts.Pairing, p.IO.ID, p.CPU.ID, p.Xi, p.Xj, p.Ni, p.Nj, p.B,
		p.TInter, c.env.TIntra(p.IO), c.env.TIntra(p.CPU))
}

// rejectReason explains why a candidate pair was not run side by side.
func (c *Controller) rejectReason(a, b *Task, p Pair, ok bool) string {
	if !ok {
		return fmt.Sprintf("pair task %d + task %d has no balance point (same class, or C_i <= C_j)", a.ID, b.ID)
	}
	return fmt.Sprintf(
		"pair io=task %d cpu=task %d not worthwhile: T_inter=%.2fs >= T_intra=%.2fs+%.2fs (or integer split exceeds B_eff)",
		p.IO.ID, p.CPU.ID, p.TInter, c.env.TIntra(p.IO), c.env.TIntra(p.CPU))
}

// --- INTER-WITH-ADJ (§2.5) -------------------------------------------------

func (c *Controller) scheduleInterAdj() Decision {
	var d Decision
	switch len(c.running) {
	case 2:
		return d
	case 1:
		r := &c.running[0]
		partner := c.popOppositeWithMem(r.task)
		if partner == nil {
			// Step 8 territory: no partner available — run the survivor
			// at its own maximum parallelism (the dynamic adjustment that
			// INTER-WITHOUT-ADJ lacks).
			c.adjustTo(&d, r, c.env.DegreeFor(c.env.MaxParallelism(r.task)),
				c.soloReason(r.task, "no opposite-class partner (or none fits memory budget); expand survivor"))
			return d
		}
		pair, ok := c.env.EvaluatePair(r.task, partner)
		if ok && pair.Worthwhile {
			nr, np := pair.Ni, pair.Nj
			if pair.IO != r.task {
				nr, np = pair.Nj, pair.Ni
			}
			reason := c.pairReason(pair)
			c.adjustTo(&d, r, nr, "rebalance with new partner: "+reason)
			d.Starts = append(d.Starts, c.start(partner, np, reason))
			return d
		}
		// Pairing rejected: the survivor takes the machine; the partner
		// returns to its queue head to run alone later (step 4's serial
		// order).
		d.Notes = append(d.Notes, Note{TaskID: partner.ID, Kind: "reject",
			Detail: c.rejectReason(r.task, partner, pair, ok) + "; partner re-queued"})
		c.pushFront(partner)
		c.adjustTo(&d, r, c.env.DegreeFor(c.env.MaxParallelism(r.task)),
			c.soloReason(r.task, "pairing rejected; expand survivor"))
		return d
	default:
		ti := c.popIO()
		tj := c.popCPU()
		switch {
		case ti != nil && tj != nil:
			pair, ok := c.env.EvaluatePair(ti, tj)
			if ok && pair.Worthwhile && ti.MemBytes+tj.MemBytes <= c.memBudgetOrMax() {
				reason := c.pairReason(pair)
				d.Starts = append(d.Starts,
					c.start(pair.IO, pair.Ni, reason),
					c.start(pair.CPU, pair.Nj, reason))
				return d
			}
			// Step 4 else-branch: execute f_i alone with maxp until
			// completion, then f_j alone (f_j re-queues; the next
			// completion reschedules it).
			d.Notes = append(d.Notes, Note{TaskID: tj.ID, Kind: "reject",
				Detail: c.pairOrMemReject(ti, tj, pair, ok) + "; run IO task first, partner re-queued"})
			c.pushFront(tj)
			d.Starts = append(d.Starts, c.start(ti, c.env.DegreeFor(c.env.MaxParallelism(ti)),
				c.soloReason(ti, "pairing rejected; IO task runs first")))
			return d
		case ti != nil:
			d.Starts = append(d.Starts, c.start(ti, c.env.DegreeFor(c.env.MaxParallelism(ti)),
				c.soloReason(ti, "S_cpu empty")))
			return d
		case tj != nil:
			d.Starts = append(d.Starts, c.start(tj, c.env.DegreeFor(c.env.MaxParallelism(tj)),
				c.soloReason(tj, "S_io empty")))
			return d
		}
		return d
	}
}

// pairOrMemReject folds the memory-budget veto into the pair-reject
// explanation (the fresh-start path checks both at once).
func (c *Controller) pairOrMemReject(a, b *Task, p Pair, ok bool) string {
	if ok && p.Worthwhile {
		return fmt.Sprintf("pair task %d + task %d exceeds memory budget (%d+%d > %d bytes)",
			a.ID, b.ID, a.MemBytes, b.MemBytes, c.opts.MemoryBudget)
	}
	return c.rejectReason(a, b, p, ok)
}

// --- INTER-WITHOUT-ADJ (§3) -------------------------------------------------

func (c *Controller) scheduleInterNoAdj() Decision {
	var d Decision
	switch len(c.running) {
	case 2:
		return d
	case 1:
		// "The master backend will simply start the task that can get
		// closest to the maximum utilization point if executed using the
		// currently available processors in parallel with the running
		// task" — and never touches the running task's degree.
		r := c.running[0]
		avail := c.env.NProcs - r.degree
		if avail < 1 {
			return d
		}
		t := c.popBestFill(r, avail)
		if t == nil {
			return d
		}
		deg := c.env.DegreeFor(math.Min(float64(avail), c.env.MaxParallelism(t)))
		d.Starts = append(d.Starts, c.start(t, deg, fmt.Sprintf(
			"best-fill: closest to max-utilization corner (N=%d, B=%.0f io/s) alongside running task %d (degree %d, %d procs free); no adjustment under %s",
			c.env.NProcs, c.env.B, r.task.ID, r.degree, avail, c.policy)))
		return d
	default:
		// Fresh start: same pairing as INTER-WITH-ADJ.
		ti := c.popIO()
		tj := c.popCPU()
		switch {
		case ti != nil && tj != nil:
			pair, ok := c.env.EvaluatePair(ti, tj)
			if ok && pair.Worthwhile && ti.MemBytes+tj.MemBytes <= c.memBudgetOrMax() {
				reason := c.pairReason(pair)
				d.Starts = append(d.Starts,
					c.start(pair.IO, pair.Ni, reason),
					c.start(pair.CPU, pair.Nj, reason))
				return d
			}
			d.Notes = append(d.Notes, Note{TaskID: tj.ID, Kind: "reject",
				Detail: c.pairOrMemReject(ti, tj, pair, ok) + "; run IO task first, partner re-queued"})
			c.pushFront(tj)
			d.Starts = append(d.Starts, c.start(ti, c.env.DegreeFor(c.env.MaxParallelism(ti)),
				c.soloReason(ti, "pairing rejected; IO task runs first")))
			return d
		case ti != nil:
			d.Starts = append(d.Starts, c.start(ti, c.env.DegreeFor(c.env.MaxParallelism(ti)),
				c.soloReason(ti, "S_cpu empty")))
			return d
		case tj != nil:
			d.Starts = append(d.Starts, c.start(tj, c.env.DegreeFor(c.env.MaxParallelism(tj)),
				c.soloReason(tj, "S_io empty")))
			return d
		}
		return d
	}
}

// popBestFill removes and returns the queued task that, started at the
// available degree, lands the system closest to the maximum-utilization
// corner (N, B) alongside the running task.
func (c *Controller) popBestFill(r runningInfo, avail int) *Task {
	best := -1
	bestQueue := 0 // 0 = sio, 1 = scpu
	bestDist := math.Inf(1)
	consider := func(queue int, idx int, t *Task) {
		if !c.memFits(t) {
			return
		}
		x := math.Min(float64(avail), c.env.MaxParallelism(t))
		deg := float64(c.env.DegreeFor(x))
		procs := float64(r.degree) + deg
		ios := r.task.Rate()*float64(r.degree) + t.Rate()*deg
		// Normalized distance to the corner (N, B).
		dn := (float64(c.env.NProcs) - procs) / float64(c.env.NProcs)
		db := (c.env.B - ios) / c.env.B
		if db < 0 {
			db = -db // overshooting bandwidth is as bad as undershooting
		}
		dist := dn*dn + db*db
		if dist < bestDist {
			bestDist, best, bestQueue = dist, idx, queue
		}
	}
	for i, t := range c.sio.Tasks() {
		consider(0, i, t)
	}
	for i, t := range c.scpu.Tasks() {
		consider(1, i, t)
	}
	if best < 0 {
		return nil
	}
	if bestQueue == 0 {
		return c.sio.RemoveAt(best)
	}
	return c.scpu.RemoveAt(best)
}

// --- queue helpers ----------------------------------------------------------

func (c *Controller) start(t *Task, degree int, reason string) Start {
	c.running = append(c.running, runningInfo{task: t, degree: degree})
	return Start{Task: t, Degree: degree, Reason: reason}
}

func (c *Controller) adjustTo(d *Decision, r *runningInfo, degree int, reason string) {
	if r.degree == degree {
		return
	}
	r.degree = degree
	d.Adjusts = append(d.Adjusts, Adjust{Task: r.task, Degree: degree, Reason: reason})
}

// popOpposite removes the next task from the class opposite to t's:
// steps 6-7 of §2.5 (when the IO-bound task finishes, draw a new one
// from S_io to pair with the still-running CPU-bound task, and vice
// versa).
func (c *Controller) popOpposite(t *Task) *Task {
	if c.env.IOBound(t) {
		return c.popCPU()
	}
	return c.popIO()
}

// pushFront returns a popped task to the head of its queue.
func (c *Controller) pushFront(t *Task) {
	if c.env.IOBound(t) {
		c.sio.PushFront(t)
	} else {
		c.scpu.PushFront(t)
	}
}

// popIO removes the next IO-bound pairing candidate per the queue
// policy (paper default: the most IO-bound, greatest rate).
func (c *Controller) popIO() *Task {
	return c.popPolicy(PickPair, ClassIO)
}

// popCPU removes the next CPU-bound pairing candidate per the queue
// policy (paper default: the most CPU-bound, smallest rate).
func (c *Controller) popCPU() *Task {
	return c.popPolicy(PickPair, ClassCPU)
}

// popPolicy removes the policy's pick from one class's queue.
func (c *Controller) popPolicy(ctx PickContext, class QueueClass) *Task {
	q := &c.sio
	if class == ClassCPU {
		q = &c.scpu
	}
	if q.Empty() {
		return nil
	}
	i := c.queue.Pick(ctx, class, q.Tasks())
	if i < 0 || i >= q.Len() {
		return nil
	}
	return q.RemoveAt(i)
}

// popAny removes the next task regardless of class (INTRA-ONLY order).
// Merge view preserving arrival order by ID is not possible (IDs are
// caller-assigned), so each queue nominates its serial candidate and
// the policy's PreferIO arbitrates (paper default: IO first, or the
// shorter job under SJF).
func (c *Controller) popAny() *Task {
	if c.sio.Empty() {
		return c.popCPUHead()
	}
	if c.scpu.Empty() {
		return c.popIOHead()
	}
	ii := c.queue.Pick(PickSerial, ClassIO, c.sio.Tasks())
	ic := c.queue.Pick(PickSerial, ClassCPU, c.scpu.Tasks())
	switch {
	case ii < 0 || ii >= c.sio.Len():
		return c.popCPUHead()
	case ic < 0 || ic >= c.scpu.Len():
		return c.popIOHead()
	case c.queue.PreferIO(c.sio.At(ii), c.scpu.At(ic)):
		return c.sio.RemoveAt(ii)
	default:
		return c.scpu.RemoveAt(ic)
	}
}

func (c *Controller) popIOHead() *Task {
	return c.popPolicy(PickSerial, ClassIO)
}

func (c *Controller) popCPUHead() *Task {
	return c.popPolicy(PickSerial, ClassCPU)
}

func shorter(a, b *Task) bool {
	if a.T != b.T {
		return a.T < b.T
	}
	return a.ID < b.ID
}

// sortTasksByID orders tasks deterministically (test helper shared by
// Simulate traces).
func sortTasksByID(ts []*Task) {
	slices.SortFunc(ts, func(a, b *Task) int { return cmp.Compare(a.ID, b.ID) })
}
