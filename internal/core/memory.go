package core

// Memory constraints on inter-operation parallelism — the extension the
// paper names as future work in §5: "we cannot run two hashjoins in
// parallel unless there is enough memory for both hash tables. As
// future work, we will integrate memory constraints into our scheduling
// and optimization algorithms."
//
// The integration point is deliberately small: every Task may declare
// its working-set requirement (hash tables, sort heaps), and the
// controller refuses to run a pair whose combined requirement exceeds
// the memory budget. A single task always runs (spilling or not, it
// must make progress); the constraint only gates ADDING a second task,
// which is exactly where the paper locates the problem.

// MemoryBudget is configured through Options.MemoryBudget; zero means
// unconstrained (the paper's §2-§4 setting).

// memFits reports whether starting next alongside the running tasks'
// combined working set stays within the budget.
func (c *Controller) memFits(next *Task) bool {
	if c.opts.MemoryBudget <= 0 {
		return true
	}
	total := next.MemBytes
	for _, r := range c.running {
		total += r.task.MemBytes
	}
	return total <= c.opts.MemoryBudget
}

// popOppositeWithMem is popOpposite restricted to partners that fit in
// memory next to the running tasks. Tasks that do not fit stay queued
// (they will run once memory frees), preserving arrival order among
// themselves.
func (c *Controller) popOppositeWithMem(t *Task) *Task {
	if c.opts.MemoryBudget <= 0 {
		return c.popOpposite(t)
	}
	q := &c.scpu
	if !c.env.IOBound(t) {
		q = &c.sio
	}
	// Collect the candidate per the heuristic but skip over-budget ones.
	skipped := make([]*Task, 0, q.Len())
	defer func() {
		// Skipped tasks return to the queue head in their original order.
		q.PushFrontAll(skipped)
	}()
	for q.Len() > 0 {
		var cand *Task
		if c.env.IOBound(t) {
			cand = c.popCPU()
		} else {
			cand = c.popIO()
		}
		if cand == nil {
			return nil
		}
		if c.memFits(cand) {
			return cand
		}
		skipped = append(skipped, cand)
	}
	return nil
}

// memBudgetOrMax returns the budget, or a practically-infinite value
// when the constraint is disabled.
func (c *Controller) memBudgetOrMax() int64 {
	if c.opts.MemoryBudget <= 0 {
		return 1 << 62
	}
	return c.opts.MemoryBudget
}
