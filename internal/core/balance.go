package core

import (
	"math"
)

// Pair is the scheduler's evaluation of running an IO-bound task and a
// CPU-bound task side by side (§2.3, §2.5).
type Pair struct {
	// IO and CPU are the two tasks, classified.
	IO, CPU *Task
	// Xi and Xj are the continuous balance-point degrees for IO and CPU.
	Xi, Xj float64
	// Ni and Nj are the integer degrees execution uses.
	Ni, Nj int
	// B is the effective aggregate disk bandwidth at the balance point
	// (equals Env.B unless the sequential-IO refinement lowered it).
	B float64
	// TInter is the §2.5 estimate of the pair's elapsed time.
	TInter float64
	// Worthwhile is the §2.5 step-4 test: TInter < TIntra(i)+TIntra(j).
	Worthwhile bool
}

// EffectiveBandwidth evaluates the §2.3 refinement: the aggregate
// bandwidth the array sustains when two tasks issue ioI and ioJ io/s.
// For two sequential streams the paper interpolates linearly in the
// demand ratio: B = Br + (1-ratio)(Bs-Br) with ratio = min/max, so a
// dominant stream sees Bs and an even interleave sees Br. Two random
// streams always see Br-class service. A mixed pair degrades the
// sequential stream by the random stream's share f (an extension the
// paper sketches: "similarly, we can also compute the correct IO-CPU
// balance point between a sequential i/o task and a random i/o task").
func (e Env) EffectiveBandwidth(ioI, ioJ float64, seqI, seqJ bool) float64 {
	switch {
	case seqI && seqJ:
		lo, hi := ioI, ioJ
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi <= 0 {
			return e.Bs
		}
		ratio := lo / hi
		return e.Br + (1-ratio)*(e.Bs-e.Br)
	case !seqI && !seqJ:
		return e.brRand()
	default:
		// One sequential, one random stream. f is the random stream's
		// demand share; the sequential stream keeps (1-f) of the head's
		// locality. Random streams defeat readahead, so the floor is the
		// raw random bandwidth.
		rnd := ioI
		if seqI {
			rnd = ioJ
		}
		total := ioI + ioJ
		if total <= 0 {
			return e.Bs
		}
		f := rnd / total
		br := e.brRand()
		return br + (1-f)*(1-f)*(e.Bs-br)
	}
}

// BalancePoint solves the §2.3 system for one IO-bound and one CPU-bound
// task:
//
//	x_i + x_j = N
//	C_i·x_i + C_j·x_j = B
//
// which gives x_i = (B - C_j·N)/(C_i - C_j), x_j = (C_i·N - B)/(C_i - C_j).
// When either task does disk IO, B itself depends on the split (§2.3's
// third equation); the combined system is solved by damped fixed-point
// iteration on B, which converges because x_i is monotone in B and the
// effective bandwidth is a bounded monotone map of the demand ratio.
//
// ok is false when no positive solution exists — which per §2.3 happens
// exactly when the tasks are not on opposite sides of the (effective)
// threshold, i.e. inter-operation parallelism cannot reach the corner.
func (e Env) BalancePoint(io, cpu *Task) (xi, xj, b float64, ok bool) {
	ci, cj := io.Rate(), cpu.Rate()
	if ci <= cj {
		return 0, 0, 0, false
	}
	n := float64(e.NProcs)
	b = e.B
	for iter := 0; iter < 100; iter++ {
		xi = (b - cj*n) / (ci - cj)
		xj = n - xi
		if xi <= 0 || xj <= 0 {
			// The pair cannot balance at this bandwidth. Try once with
			// the bandwidth the clamped split would actually see; if it
			// still fails, give up.
			return 0, 0, b, false
		}
		bNew := e.EffectiveBandwidth(ci*xi, cj*xj, io.SeqIO, cpu.SeqIO)
		if math.Abs(bNew-b) < 1e-3 {
			b = bNew
			break
		}
		b = (b + bNew) / 2
	}
	xi = (b - cj*n) / (ci - cj)
	xj = n - xi
	if xi <= 0 || xj <= 0 {
		return 0, 0, b, false
	}
	return xi, xj, b, true
}

// TInter estimates the elapsed time of running the pair at degrees
// (xi, xj) per §2.5:
//
//	TInter(fi, fj) = min(Ti/xi, Tj/xj) + Tij/maxp_ij
//
// where Tij is the sequential-time remainder of whichever task survives
// and maxp_ij its maximum intra-operation parallelism — i.e. after one
// task ends, the survivor is immediately adjusted to run alone at full
// tilt (the INTER-WITH-ADJ behaviour this estimate prices).
func (e Env) TInter(io, cpu *Task, xi, xj float64) float64 {
	if xi <= 0 || xj <= 0 {
		return math.Inf(1)
	}
	ti, tj := io.T/xi, cpu.T/xj
	first := math.Min(ti, tj)
	var rem float64
	var survivor *Task
	if ti > tj {
		// CPU task finishes first; the IO task has consumed xi·tj of its
		// Ti sequential seconds.
		rem = io.T - xi*tj
		survivor = io
	} else {
		rem = cpu.T - xj*ti
		survivor = cpu
	}
	if rem < 0 {
		rem = 0
	}
	return first + rem/e.MaxParallelism(survivor)
}

// EvaluatePair classifies two tasks, computes their balance point and
// prices inter- versus intra-operation execution (§2.5 steps 3-4). The
// returned Pair orders the tasks as (IO, CPU). ok is false when the two
// tasks are on the same side of the threshold or no balance point
// exists; such pairs run serially with intra-operation parallelism.
func (e Env) EvaluatePair(a, b *Task) (Pair, bool) {
	var io, cpu *Task
	switch {
	case e.IOBound(a) && !e.IOBound(b):
		io, cpu = a, b
	case e.IOBound(b) && !e.IOBound(a):
		io, cpu = b, a
	default:
		return Pair{}, false
	}
	xi, xj, beff, ok := e.BalancePoint(io, cpu)
	if !ok {
		return Pair{}, false
	}
	ni, nj := e.RoundDegrees(xi, xj)
	// Integer-feasibility: rounding the balance point up can push the
	// pair's IO demand past the effective bandwidth (a marginal x_i < 1
	// becomes a whole slave), in which case the pair would thrash the
	// disks instead of balancing them. Shifting a processor from the
	// IO-bound side to the CPU-bound side strictly lowers demand (C_i >
	// C_j), so walk down until the split fits or the IO side is empty.
	feasible := false
	for ni >= 1 {
		demand := io.Rate()*float64(ni) + cpu.Rate()*float64(nj)
		cap_ := e.EffectiveBandwidth(io.Rate()*float64(ni), cpu.Rate()*float64(nj), io.SeqIO, cpu.SeqIO)
		if demand <= 1.02*cap_ {
			feasible = true
			break
		}
		if ni == 1 || nj >= e.NProcs {
			break
		}
		ni--
		nj++
	}
	p := Pair{
		IO: io, CPU: cpu,
		Xi: xi, Xj: xj,
		Ni: ni, Nj: nj,
		B:      beff,
		TInter: e.TInter(io, cpu, float64(ni), float64(nj)),
	}
	// The §2.5 step-4 test, evaluated at the integer degrees execution
	// will actually use.
	p.Worthwhile = feasible && p.TInter < e.TIntra(io)+e.TIntra(cpu)
	return p, true
}

// RoundDegrees converts the continuous balance point into integer
// degrees with ni + nj <= N and both at least 1 (DESIGN.md §5.4).
func (e Env) RoundDegrees(xi, xj float64) (ni, nj int) {
	ni = int(math.Floor(xi + 0.5))
	nj = int(math.Floor(xj + 0.5))
	if ni < 1 {
		ni = 1
	}
	if nj < 1 {
		nj = 1
	}
	for ni+nj > e.NProcs {
		if ni >= nj && ni > 1 {
			ni--
		} else if nj > 1 {
			nj--
		} else {
			break
		}
	}
	return ni, nj
}
