package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// paperEnv is the §3 machine: 8 processors, B = 4 disks x 60 io/s = 240,
// effective-bandwidth endpoints Bs = 240, Br = 4 x 35 = 140.
func paperEnv() Env { return Env{NProcs: 8, B: 240, Bs: 240, Br: 140} }

// flatEnv disables the §2.3 effective-bandwidth refinement (Bs = Br = B)
// so tests can check the basic §2.3 closed form in isolation.
func flatEnv() Env { return Env{NProcs: 8, B: 240, Bs: 240, Br: 240} }

// mkTask builds a task with the given IO rate and sequential time.
func mkTask(id int, rate, t float64, seq bool) *Task {
	return &Task{ID: id, Name: "t", T: t, D: rate * t, SeqIO: seq}
}

func TestEnvValidate(t *testing.T) {
	good := paperEnv()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Env{
		{NProcs: 0, B: 240, Bs: 240, Br: 140},
		{NProcs: 8, B: 0, Bs: 240, Br: 140},
		{NProcs: 8, B: 240, Bs: 100, Br: 140}, // Bs < Br
		{NProcs: 8, B: 240, Bs: 240, Br: 0},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad[%d] validated", i)
		}
	}
}

func TestClassificationThreshold(t *testing.T) {
	e := paperEnv()
	if got := e.Threshold(); got != 30 {
		t.Fatalf("threshold = %f, want 30 (240/8, §3)", got)
	}
	if e.IOBound(mkTask(1, 30, 10, true)) {
		t.Fatal("rate 30 must be CPU-bound (not strictly above B/N)")
	}
	if !e.IOBound(mkTask(2, 31, 10, true)) {
		t.Fatal("rate 31 must be IO-bound")
	}
	if e.IOBound(mkTask(3, 5, 10, true)) {
		t.Fatal("rmin-rate task must be CPU-bound")
	}
	if !e.IOBound(mkTask(4, 70, 10, true)) {
		t.Fatal("rmax-rate task must be IO-bound")
	}
}

func TestTaskRateAndString(t *testing.T) {
	task := &Task{ID: 1, Name: "scan", T: 10, D: 600}
	if task.Rate() != 60 {
		t.Fatalf("rate = %f", task.Rate())
	}
	if (&Task{T: 0, D: 5}).Rate() != 0 {
		t.Fatal("zero-T rate")
	}
	if !strings.Contains(task.String(), "scan") {
		t.Fatal("task string")
	}
}

func TestMaxParallelism(t *testing.T) {
	e := paperEnv()
	// IO-bound: maxp = B/C (§2.2). C=60 -> 4.
	if got := e.MaxParallelism(mkTask(1, 60, 10, true)); math.Abs(got-4) > 1e-9 {
		t.Fatalf("maxp(C=60) = %f, want 4", got)
	}
	// CPU-bound: maxp = N.
	if got := e.MaxParallelism(mkTask(2, 10, 10, true)); got != 8 {
		t.Fatalf("maxp(C=10) = %f, want 8", got)
	}
	// Degenerate rate.
	if got := e.MaxParallelism(&Task{T: 1, D: 0}); got != 8 {
		t.Fatalf("maxp(C=0) = %f", got)
	}
}

func TestDegreeFor(t *testing.T) {
	e := paperEnv()
	cases := []struct {
		x    float64
		want int
	}{{0.2, 1}, {1.4, 1}, {1.6, 2}, {4, 4}, {7.9, 8}, {100, 8}, {-3, 1}}
	for _, c := range cases {
		if got := e.DegreeFor(c.x); got != c.want {
			t.Errorf("DegreeFor(%f) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestBalancePointClosedForm(t *testing.T) {
	// With the refinement disabled, the §2.3 closed form must hold:
	// Ci=60, Cj=10, N=8, B=240 -> xi = (240-80)/50 = 3.2, xj = 4.8.
	e := flatEnv()
	io := mkTask(1, 60, 10, true)
	cpu := mkTask(2, 10, 10, true)
	xi, xj, b, ok := e.BalancePoint(io, cpu)
	if !ok {
		t.Fatal("no balance point")
	}
	if math.Abs(xi-3.2) > 1e-6 || math.Abs(xj-4.8) > 1e-6 {
		t.Fatalf("balance = (%f, %f), want (3.2, 4.8)", xi, xj)
	}
	if math.Abs(b-240) > 1e-6 {
		t.Fatalf("B = %f", b)
	}
	// The solution sits exactly on both resource bounds.
	if math.Abs(xi+xj-8) > 1e-9 {
		t.Fatal("processor equation violated")
	}
	if math.Abs(60*xi+10*xj-240) > 1e-6 {
		t.Fatal("bandwidth equation violated")
	}
}

func TestBalancePointRequiresOppositeClasses(t *testing.T) {
	e := flatEnv()
	// Two IO-bound tasks: xj would be negative.
	if _, _, _, ok := e.BalancePoint(mkTask(1, 60, 10, true), mkTask(2, 40, 10, true)); ok {
		t.Fatal("balance point for two IO-bound tasks")
	}
	// Two CPU-bound tasks: xi would be negative or Ci <= Cj.
	if _, _, _, ok := e.BalancePoint(mkTask(1, 10, 10, true), mkTask(2, 20, 10, true)); ok {
		t.Fatal("balance point with Ci <= Cj")
	}
	if _, _, _, ok := e.BalancePoint(mkTask(1, 20, 10, true), mkTask(2, 10, 10, true)); ok {
		t.Fatal("balance point for two CPU-bound tasks")
	}
}

func TestEffectiveBandwidthSeqSeq(t *testing.T) {
	e := paperEnv()
	// Dominant stream: ratio -> 0 gives Bs.
	if got := e.EffectiveBandwidth(200, 0, true, true); got != 240 {
		t.Fatalf("dominant = %f", got)
	}
	// Even split: ratio = 1 gives Br (§2.3: "the disks have to seek ...
	// so B ~ Br").
	if got := e.EffectiveBandwidth(100, 100, true, true); got != 140 {
		t.Fatalf("even = %f", got)
	}
	// Midpoint: ratio = 0.5 -> Br + 0.5(Bs-Br) = 190.
	if got := e.EffectiveBandwidth(100, 50, true, true); math.Abs(got-190) > 1e-9 {
		t.Fatalf("half = %f", got)
	}
	// Symmetric in the arguments.
	if e.EffectiveBandwidth(30, 90, true, true) != e.EffectiveBandwidth(90, 30, true, true) {
		t.Fatal("asymmetric")
	}
}

func TestEffectiveBandwidthOtherClasses(t *testing.T) {
	e := paperEnv()
	// Two random streams: always Br.
	if got := e.EffectiveBandwidth(50, 80, false, false); got != 140 {
		t.Fatalf("random+random = %f", got)
	}
	// Mixed: degrades with the random share, staying within [Br, Bs].
	b1 := e.EffectiveBandwidth(100, 10, true, false) // small random share
	b2 := e.EffectiveBandwidth(100, 100, true, false)
	if !(b1 > b2) || b1 > 240 || b2 < 140 {
		t.Fatalf("mixed bandwidths: %f, %f", b1, b2)
	}
	// Order of (seq, random) arguments must not matter.
	if e.EffectiveBandwidth(10, 100, false, true) != e.EffectiveBandwidth(100, 10, true, false) {
		t.Fatal("mixed asymmetric")
	}
	// Degenerate zero demand.
	if got := e.EffectiveBandwidth(0, 0, true, true); got != 240 {
		t.Fatalf("zero demand seq = %f", got)
	}
	if got := e.EffectiveBandwidth(0, 0, true, false); got != 240 {
		t.Fatalf("zero demand mixed = %f", got)
	}
}

func TestBalancePointWithSeqRefinement(t *testing.T) {
	// The §2.3 extreme pair from the paper's workload: C=65 vs C=10,
	// both sequential scans. The fixed point must settle strictly below
	// the nominal 240 (interleaving costs seeks) and above Br.
	e := paperEnv()
	io := mkTask(1, 65, 10, true)
	cpu := mkTask(2, 10, 10, true)
	xi, xj, b, ok := e.BalancePoint(io, cpu)
	if !ok {
		t.Fatal("no balance point")
	}
	if b >= 240 || b <= 140 {
		t.Fatalf("effective B = %f, want in (140, 240)", b)
	}
	// Hand iteration converges near B ~ 200, xi ~ 2.2 (DESIGN.md).
	if xi < 1.8 || xi > 2.7 {
		t.Fatalf("xi = %f, want ~2.2", xi)
	}
	if math.Abs(xi+xj-8) > 1e-6 {
		t.Fatal("processor equation violated")
	}
	// The solution is consistent: demand equals the effective bandwidth
	// at the solution's own ratio.
	if math.Abs(65*xi+10*xj-b) > 1 {
		t.Fatalf("demand %f != effective %f", 65*xi+10*xj, b)
	}
}

func TestTInterFormula(t *testing.T) {
	e := flatEnv()
	io := mkTask(1, 60, 10, true)  // maxp 4
	cpu := mkTask(2, 10, 10, true) // maxp 8
	// At (3.2, 4.8): Ti/xi = 3.125, Tj/xj = 2.083..; CPU ends first;
	// remaining IO work = 10 - 3.2*2.0833 = 3.3333 at maxp 4 -> 0.8333.
	got := e.TInter(io, cpu, 3.2, 4.8)
	want := 10.0/4.8 + (10-3.2*(10.0/4.8))/4
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("TInter = %f, want %f", got, want)
	}
	// Symmetric case: IO ends first.
	io2 := mkTask(3, 60, 1, true) // very short
	got2 := e.TInter(io2, cpu, 3.2, 4.8)
	first := 1.0 / 3.2
	rem := 10 - 4.8*first
	want2 := first + rem/8
	if math.Abs(got2-want2) > 1e-9 {
		t.Fatalf("TInter short-io = %f, want %f", got2, want2)
	}
	// Degenerate degrees.
	if !math.IsInf(e.TInter(io, cpu, 0, 4), 1) {
		t.Fatal("zero degree must be +inf")
	}
}

func TestTIntra(t *testing.T) {
	e := paperEnv()
	if got := e.TIntra(mkTask(1, 60, 10, true)); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("TIntra = %f, want 10/4", got)
	}
	if got := e.TIntra(mkTask(2, 10, 16, true)); math.Abs(got-2) > 1e-9 {
		t.Fatalf("TIntra = %f, want 16/8", got)
	}
}

func TestEvaluatePair(t *testing.T) {
	e := flatEnv()
	io := mkTask(1, 60, 10, true)
	cpu := mkTask(2, 10, 10, true)
	p, ok := e.EvaluatePair(cpu, io) // order must not matter
	if !ok {
		t.Fatal("pair rejected")
	}
	if p.IO != io || p.CPU != cpu {
		t.Fatal("pair misclassified")
	}
	if p.Ni != 3 || p.Nj != 5 {
		t.Fatalf("degrees = (%d, %d), want (3, 5)", p.Ni, p.Nj)
	}
	if !p.Worthwhile {
		t.Fatal("classic mixed pair must be worthwhile")
	}
	// Same-class pairs are not pairs.
	if _, ok := e.EvaluatePair(io, mkTask(3, 50, 10, true)); ok {
		t.Fatal("two IO-bound accepted")
	}
	if _, ok := e.EvaluatePair(cpu, mkTask(4, 20, 10, true)); ok {
		t.Fatal("two CPU-bound accepted")
	}
}

func TestEvaluatePairSeqSeqCanDecline(t *testing.T) {
	// Two sequential scans whose demands interleave so badly that
	// inter-operation parallelism loses to serial intra-only execution
	// (§2.3: "inter-operation parallelism may lose its advantage").
	// An aggressive Br makes the penalty sharp.
	e := Env{NProcs: 8, B: 240, Bs: 240, Br: 30}
	io := mkTask(1, 31, 10, true) // barely IO-bound
	cpu := mkTask(2, 29, 10, true)
	p, ok := e.EvaluatePair(io, cpu)
	if ok && p.Worthwhile {
		t.Fatalf("near-identical seq scans should not pair: TInter=%f vs %f",
			p.TInter, e.TIntra(io)+e.TIntra(cpu))
	}
}

func TestRoundDegrees(t *testing.T) {
	e := paperEnv()
	cases := []struct {
		xi, xj float64
		ni, nj int
	}{
		{3.2, 4.8, 3, 5},
		{0.4, 7.6, 1, 7},
		{4.5, 3.5, 4, 4}, // 5+4 > 8 -> larger decremented
		{7.7, 0.2, 7, 1},
		{0.1, 0.1, 1, 1},
	}
	for _, c := range cases {
		ni, nj := e.RoundDegrees(c.xi, c.xj)
		if ni != c.ni || nj != c.nj {
			t.Errorf("RoundDegrees(%f,%f) = (%d,%d), want (%d,%d)", c.xi, c.xj, ni, nj, c.ni, c.nj)
		}
		if ni+nj > e.NProcs || ni < 1 || nj < 1 {
			t.Errorf("RoundDegrees(%f,%f) violates bounds", c.xi, c.xj)
		}
	}
}

// Property: rounded degrees never exceed either resource bound by more
// than one task's worth of slack, and always stay in [1, N].
func TestPropertyRoundDegreesBounds(t *testing.T) {
	e := paperEnv()
	f := func(a, b uint16) bool {
		xi := float64(a%1000) / 100
		xj := float64(b%1000) / 100
		ni, nj := e.RoundDegrees(xi, xj)
		return ni >= 1 && nj >= 1 && ni+nj <= e.NProcs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the balance point always satisfies the processor equation
// and lands demand exactly on the effective bandwidth.
func TestPropertyBalanceConsistency(t *testing.T) {
	e := paperEnv()
	f := func(a, b uint16) bool {
		ci := 31 + float64(a%390)/10 // IO-bound: 31..70
		cj := 5 + float64(b%250)/10  // CPU-bound: 5..30
		io := mkTask(1, ci, 10, true)
		cpu := mkTask(2, cj, 10, true)
		xi, xj, beff, ok := e.BalancePoint(io, cpu)
		if !ok {
			return true // declining is always allowed
		}
		if math.Abs(xi+xj-8) > 1e-6 {
			return false
		}
		return math.Abs(ci*xi+cj*xj-beff) < 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyStrings(t *testing.T) {
	if IntraOnly.String() != "INTRA-ONLY" ||
		InterNoAdj.String() != "INTER-WITHOUT-ADJ" ||
		InterAdj.String() != "INTER-WITH-ADJ" {
		t.Fatal("policy strings")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy string")
	}
}
