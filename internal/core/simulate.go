package core

import (
	"cmp"
	"fmt"
	"math"
	"slices"
)

// SimTask describes one task for the analytic simulator: the scheduler
// Task plus its readiness constraints and arrival time.
type SimTask struct {
	Task *Task
	// DependsOn lists task IDs that must complete before this task is
	// runable (order-dependencies between fragments of one plan, §4).
	DependsOn []int
	// Arrival is when the task enters the system (multi-user streams);
	// zero for a fixed set.
	Arrival float64
}

// TraceEvent records one scheduling action for explain output and tests.
type TraceEvent struct {
	Time   float64
	Kind   string // "start", "adjust", "complete", or a note kind ("classify", "reject", ...)
	TaskID int
	Degree int // -1 for note events, which carry no degree
	// Reason is the controller's explanation: the balance-point solve, the
	// pairing heuristic's choice, or why a pair was rejected. Empty on
	// events predating observability and on completions.
	Reason string
}

// String implements fmt.Stringer. The prefix matches the historical
// format exactly; the reason, when present, is appended after a dash.
func (ev TraceEvent) String() string {
	s := fmt.Sprintf("t=%8.3fs %-8s task %d", ev.Time, ev.Kind, ev.TaskID)
	if ev.Degree >= 0 {
		s += fmt.Sprintf(" (degree %d)", ev.Degree)
	}
	if ev.Reason != "" {
		s += " — " + ev.Reason
	}
	return s
}

// SimResult is the outcome of a simulation.
type SimResult struct {
	// Elapsed is the makespan: when the last task finished.
	Elapsed float64
	// Finish maps task ID to completion time (per-task response times
	// for the SJF studies).
	Finish map[int]float64
	// Trace is the ordered list of scheduling events.
	Trace []TraceEvent
}

// Simulate runs the controller against an analytic machine model in
// which a task running at degree x completes x seconds of sequential
// work per second (the model behind the paper's T_n(S) recursion, §4),
// except that the disks saturate: when the running tasks' combined IO
// demand sum(C_k·x_k) exceeds the effective bandwidth of the moment, all
// progress is throttled proportionally. Without the cap, policies that
// overcommit the array (INTER-WITHOUT-ADJ filling processors regardless
// of bandwidth) would look better than physics allows; with it, the
// analytic results track the executor's measurements.
// Simulate generalizes the paper's formula to dependencies, arrivals and
// all three policies, and is the engine of parcost(p, n).
func Simulate(env Env, policy Policy, opts Options, tasks []SimTask) (SimResult, error) {
	if err := env.Validate(); err != nil {
		return SimResult{}, err
	}
	ctl := NewController(env, policy, opts)
	res := SimResult{Finish: make(map[int]float64, len(tasks))}

	type state struct {
		sim       SimTask
		remaining float64
		degree    int
		running   bool
		done      bool
		submitted bool
	}
	states := make(map[int]*state, len(tasks))
	order := make([]*state, 0, len(tasks))
	for _, st := range tasks {
		if st.Task == nil {
			return SimResult{}, fmt.Errorf("core: nil task in simulation")
		}
		if _, dup := states[st.Task.ID]; dup {
			return SimResult{}, fmt.Errorf("core: duplicate task ID %d", st.Task.ID)
		}
		if st.Task.T <= 0 {
			return SimResult{}, fmt.Errorf("core: task %d has non-positive T", st.Task.ID)
		}
		s := &state{sim: st, remaining: st.Task.T}
		states[st.Task.ID] = s
		order = append(order, s)
	}
	// Validate dependencies.
	for _, s := range order {
		for _, dep := range s.sim.DependsOn {
			if _, ok := states[dep]; !ok {
				return SimResult{}, fmt.Errorf("core: task %d depends on unknown task %d", s.sim.Task.ID, dep)
			}
		}
	}

	now := 0.0
	apply := func(d Decision) {
		for _, n := range d.Notes {
			res.Trace = append(res.Trace, TraceEvent{Time: now, Kind: n.Kind, TaskID: n.TaskID, Degree: -1, Reason: n.Detail})
		}
		for _, a := range d.Adjusts {
			states[a.Task.ID].degree = a.Degree
			res.Trace = append(res.Trace, TraceEvent{Time: now, Kind: "adjust", TaskID: a.Task.ID, Degree: a.Degree, Reason: a.Reason})
		}
		for _, st := range d.Starts {
			s := states[st.Task.ID]
			s.running = true
			s.degree = st.Degree
			res.Trace = append(res.Trace, TraceEvent{Time: now, Kind: "start", TaskID: st.Task.ID, Degree: st.Degree, Reason: st.Reason})
		}
	}

	ready := func(s *state) bool {
		if s.submitted || s.done || s.sim.Arrival > now {
			return false
		}
		for _, dep := range s.sim.DependsOn {
			if !states[dep].done {
				return false
			}
		}
		return true
	}

	submitReady := func() {
		// Deterministic submission order: by task ID. The whole batch is
		// submitted in one call so ordering heuristics (SJF, most-extreme
		// pairing) see all simultaneous arrivals at once.
		var batch []*state
		for _, s := range order {
			if ready(s) {
				batch = append(batch, s)
			}
		}
		if len(batch) == 0 {
			return
		}
		slices.SortFunc(batch, func(a, b *state) int { return cmp.Compare(a.sim.Task.ID, b.sim.Task.ID) })
		ts := make([]*Task, len(batch))
		for i, s := range batch {
			s.submitted = true
			ts[i] = s.sim.Task
		}
		apply(ctl.Submit(ts...))
	}

	// progressRates returns each running task's work rate, throttled by
	// the instantaneous effective disk bandwidth.
	progressRates := func() map[int]float64 {
		type run struct {
			s      *state
			demand float64
		}
		var runs []run
		for _, s := range order {
			if s.running && s.degree > 0 {
				runs = append(runs, run{s, s.sim.Task.Rate() * float64(s.degree)})
			}
		}
		rates := make(map[int]float64, len(runs))
		if len(runs) == 0 {
			return rates
		}
		var cap_ float64
		switch len(runs) {
		case 1:
			if runs[0].s.sim.Task.SeqIO {
				cap_ = env.Bs
			} else {
				cap_ = env.brRand()
			}
		default:
			// Use the pairwise effective-bandwidth model on the two
			// largest demands (the scheduler never runs more than two
			// tasks, so this is exact in practice).
			a, b := 0, 1
			if runs[b].demand > runs[a].demand {
				a, b = b, a
			}
			for i := 2; i < len(runs); i++ {
				if runs[i].demand > runs[a].demand {
					b = a
					a = i
				} else if runs[i].demand > runs[b].demand {
					b = i
				}
			}
			cap_ = env.EffectiveBandwidth(runs[a].demand, runs[b].demand,
				runs[a].s.sim.Task.SeqIO, runs[b].s.sim.Task.SeqIO)
		}
		total := 0.0
		for _, r := range runs {
			total += r.demand
		}
		throttle := 1.0
		if total > cap_ && total > 0 {
			throttle = cap_ / total
		}
		for _, r := range runs {
			rates[r.s.sim.Task.ID] = float64(r.s.degree) * throttle
		}
		return rates
	}

	const eps = 1e-9
	for guard := 0; ; guard++ {
		if guard > 1000000 {
			return SimResult{}, fmt.Errorf("core: simulation did not terminate")
		}
		submitReady()

		// Next completion among running tasks at current throttled rates.
		rates := progressRates()
		nextDone := math.Inf(1)
		for _, s := range order {
			if s.running {
				if rate := rates[s.sim.Task.ID]; rate > 0 {
					if t := now + s.remaining/rate; t < nextDone {
						nextDone = t
					}
				}
			}
		}
		// Next arrival of a not-yet-submitted task whose arrival gates it.
		nextArrive := math.Inf(1)
		for _, s := range order {
			if !s.submitted && !s.done && s.sim.Arrival > now && s.sim.Arrival < nextArrive {
				nextArrive = s.sim.Arrival
			}
		}

		next := math.Min(nextDone, nextArrive)
		if math.IsInf(next, 1) {
			// Nothing running and nothing arriving: done, or stuck on
			// dependencies (a cycle).
			for _, s := range order {
				if !s.done {
					if !s.submitted {
						return SimResult{}, fmt.Errorf("core: task %d never became ready (dependency cycle?)", s.sim.Task.ID)
					}
					return SimResult{}, fmt.Errorf("core: task %d submitted but never run", s.sim.Task.ID)
				}
			}
			break
		}

		dt := next - now
		for _, s := range order {
			if s.running {
				s.remaining -= dt * rates[s.sim.Task.ID]
			}
		}
		now = next

		// Complete every task that hit zero (ties complete deterministically
		// in ID order, each triggering a scheduling round).
		var finished []*state
		for _, s := range order {
			if s.running && s.remaining <= eps*math.Max(1, s.sim.Task.T) {
				finished = append(finished, s)
			}
		}
		slices.SortFunc(finished, func(a, b *state) int { return cmp.Compare(a.sim.Task.ID, b.sim.Task.ID) })
		for _, s := range finished {
			s.running = false
			s.done = true
			s.remaining = 0
			res.Finish[s.sim.Task.ID] = now
			res.Trace = append(res.Trace, TraceEvent{Time: now, Kind: "complete", TaskID: s.sim.Task.ID, Degree: s.degree})
			// The controller learns about the completion before the tasks
			// it unblocked are submitted, keeping its running-set exact.
			apply(ctl.Complete(s.sim.Task))
			submitReady()
		}
	}
	res.Elapsed = now
	return res, nil
}

// MakeSimTasks wraps plain tasks with no dependencies or arrivals.
func MakeSimTasks(tasks []*Task) []SimTask {
	ts := make([]*Task, len(tasks))
	copy(ts, tasks)
	sortTasksByID(ts)
	out := make([]SimTask, len(ts))
	for i, t := range ts {
		out[i] = SimTask{Task: t}
	}
	return out
}
